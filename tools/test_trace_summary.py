#!/usr/bin/env python3
"""Unit tests for trace_summary.py: both input formats must produce the
same summary for equivalent content, and the headline numbers (busiest
cores, stall counts, longest critical section, fault timeline) must be
exact on hand-built traces."""

import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import trace_summary  # noqa: E402

T = trace_summary.TICKS_PER_CYCLE


def csv_text(rows):
    out = ["vtime_ticks,core,event,sub,dst,a,b"]
    for r in rows:
        out.append(",".join(str(x) for x in r))
    return "\n".join(out) + "\n"


class CsvSummaryTest(unittest.TestCase):
    def summarize(self, rows, **kw):
        events = trace_summary.events_from_csv(
            io.StringIO(csv_text(rows)))
        return trace_summary.summarize_events(events, **kw)

    def test_busiest_cores_ranked_by_busy_time(self):
        rows = [
            (0 * T, 0, "task_start", "", 0, 0, 0),
            (100 * T, 0, "task_end", "", 0, 0, 0),
            (0 * T, 1, "task_start", "", 0, 0, 0),
            (300 * T, 1, "task_end", "", 0, 0, 0),
            (0 * T, 2, "task_start", "", 0, 0, 0),
            (200 * T, 2, "task_end", "", 0, 0, 0),
        ]
        s = self.summarize(rows, top=2)
        self.assertEqual([r["core"] for r in s["top_cores"]], [1, 2])
        self.assertEqual(s["top_cores"][0]["busy_cycles"], 300.0)
        self.assertAlmostEqual(s["top_cores"][0]["busy_share"], 0.5)
        self.assertEqual(s["top_cores"][0]["tasks"], 1)

    def test_unmatched_task_start_ignored(self):
        rows = [(0, 0, "task_start", "", 0, 0, 0)]
        s = self.summarize(rows)
        self.assertEqual(s["top_cores"], [])
        self.assertEqual(s["events"], 1)

    def test_stall_counts(self):
        rows = [
            (10 * T, 3, "stall", "", 0, 0, 0),
            (20 * T, 3, "stall", "", 0, 0, 0),
            (20 * T, 4, "stall", "", 0, 0, 0),
            (1000 * T, 3, "task_start", "", 0, 0, 0),
            (2000 * T, 3, "task_end", "", 0, 0, 0),
        ]
        s = self.summarize(rows)
        self.assertEqual(s["stalls"]["total"], 3)
        self.assertEqual(s["stalls"]["cores_affected"], 2)
        self.assertEqual(s["stalls"]["max_per_core"], 2)
        self.assertAlmostEqual(s["stalls"]["per_kilocycle"], 1.5)

    def test_longest_critical_section(self):
        rows = [
            (0, 0, "lock_acquire", "", 0, 7, 0),
            (50 * T, 0, "lock_release", "", 0, 7, 0),
            (0, 1, "cell_acquire", "READ", 0, 9, 0),
            (90 * T, 1, "cell_release", "", 0, 9, 0),
        ]
        s = self.summarize(rows)
        lc = s["longest_critical"]
        self.assertEqual(lc["core"], 1)
        self.assertEqual(lc["object"], "cell 9")
        self.assertEqual(lc["dur_cycles"], 90.0)

    def test_fault_timeline_ordered_and_capped(self):
        rows = [(i * T, i % 2, "fault", "CORE_STALL", 0, 40, 0)
                for i in range(5)]
        s = self.summarize(rows, faults=3)
        self.assertEqual(s["faults_total"], 5)
        self.assertEqual(len(s["faults"]), 3)
        self.assertEqual(s["faults"][0]["kind"], "CORE_STALL")
        self.assertEqual(s["faults"][0]["magnitude"], 40)


class ChromeEquivalenceTest(unittest.TestCase):
    def test_chrome_and_csv_agree(self):
        rows = [
            (0, 0, "task_start", "", 0, 0, 0),
            (100 * T, 0, "task_end", "", 0, 0, 0),
            (5 * T, 0, "lock_acquire", "", 0, 11, 0),
            (25 * T, 0, "lock_release", "", 0, 11, 0),
            (30 * T, 1, "stall", "", 0, 0, 0),
            (60 * T, 1, "fault", "MEM_SPIKE", 0, 500, 0),
        ]
        chrome = {"traceEvents": [
            {"ph": "M", "pid": 1, "name": "process_name",
             "args": {"name": "simulated cores"}},
            {"ph": "X", "pid": 1, "tid": 0, "cat": "task", "name": "task",
             "ts": 0.0, "dur": 100.0},
            {"ph": "X", "pid": 1, "tid": 0, "cat": "critical",
             "name": "lock b", "ts": 5.0, "dur": 20.0},
            {"ph": "X", "pid": 1, "tid": 1, "cat": "sync", "name": "stall",
             "ts": 30.0, "dur": 0.0},
            {"ph": "i", "pid": 1, "tid": 1, "cat": "fault",
             "name": "fault:MEM_SPIKE", "ts": 60.0, "s": "t"},
            # host track: must be ignored
            {"ph": "X", "pid": 2, "tid": 0, "cat": "host",
             "name": "execute", "ts": 0.0, "dur": 9999.0},
        ]}
        s_csv = trace_summary.summarize_events(
            trace_summary.events_from_csv(io.StringIO(csv_text(rows))))
        s_chrome = trace_summary.summarize_events(
            trace_summary.events_from_chrome(chrome))
        for key in ("top_cores", "stalls", "longest_critical",
                    "faults_total"):
            self.assertEqual(s_csv[key], s_chrome[key], key)
        self.assertEqual(s_chrome["faults"][0]["kind"], "MEM_SPIKE")


class LoadAndRenderTest(unittest.TestCase):
    def test_load_detects_format_and_render_mentions_faults(self):
        rows = [
            (0, 0, "task_start", "", 0, 0, 0),
            (100 * T, 0, "task_end", "", 0, 0, 0),
            (50 * T, 0, "fault", "MSG_DROP", 0, 1, 0),
        ]
        with tempfile.TemporaryDirectory() as d:
            cpath = os.path.join(d, "t.csv")
            with open(cpath, "w") as f:
                f.write(csv_text(rows))
            jpath = os.path.join(d, "t.json")
            with open(jpath, "w") as f:
                json.dump({"traceEvents": [
                    {"ph": "X", "pid": 1, "tid": 0, "cat": "task",
                     "name": "task", "ts": 0.0, "dur": 100.0},
                    {"ph": "i", "pid": 1, "tid": 0, "cat": "fault",
                     "name": "fault:MSG_DROP", "ts": 50.0, "s": "t"},
                ]}, f)
            s1 = trace_summary.summarize_events(
                trace_summary.load_events(cpath))
            s2 = trace_summary.summarize_events(
                trace_summary.load_events(jpath))
        self.assertEqual(s1["top_cores"], s2["top_cores"])
        text = trace_summary.render(s1)
        self.assertIn("MSG_DROP", text)
        self.assertIn("busiest cores", text)
        self.assertIn("core 0", text)


def crash_doc():
    return {
        "schema": "simany-crash-report-v1",
        "error": {"code": "livelock", "cause": "livelock",
                  "message": "simulation aborted: livelock after 12 host "
                             "rounds", "transient": False, "core": 3,
                  "peer": None, "shard": 1, "at_tick": 4800,
                  "detail": 0, "fault_seed": 7},
        "run": {"cores": 16, "host_rounds": 12, "host_threads": 4,
                "tasks_spawned": 40, "messages": 120, "sync_stalls": 9,
                "faults_injected": 1, "fault_core_wedges": 1,
                "guard_inbox_overflows": 0, "guard_fiber_overflows": 0,
                "inbox_depth_peak": 5, "live_fibers_peak": 6},
        "progress": {"min_core_cycles": 10, "max_core_cycles": 400,
                     "live_tasks": 4, "inflight_messages": 2,
                     "per_core": [
                         {"id": 0, "now_cycles": 400, "state": "running",
                          "queue": 1, "inbox": 0, "resumables": 0,
                          "hold_depth": 0},
                         {"id": 3, "now_cycles": 10,
                          "state": "sync-stalled", "queue": 0, "inbox": 2,
                          "resumables": 0, "hold_depth": 0},
                     ]},
        "diagnosis": {"kind": "livelock",
                      "summary": "cores hold pending work but no wait "
                                 "edge explains the stall",
                      "wait_edges": [], "cycle": []},
    }


class CrashReportTest(unittest.TestCase):
    def test_summary_fields(self):
        s = trace_summary.summarize_crash_report(crash_doc())
        self.assertEqual(s["error"]["code"], "livelock")
        self.assertFalse(s["error"]["transient"])
        self.assertEqual(s["error"]["shard"], 1)
        self.assertEqual(s["run"]["host_rounds"], 12)
        self.assertEqual(s["progress"]["core_states"],
                         {"running": 1, "sync-stalled": 1})
        self.assertEqual(s["progress"]["laggard"]["core"], 3)
        self.assertEqual(s["diagnosis"]["kind"], "livelock")
        self.assertEqual(s["diagnosis"]["wait_edges"], 0)

    def test_render_mentions_diagnosis_and_laggard(self):
        text = trace_summary.render_crash_report(
            trace_summary.summarize_crash_report(crash_doc()))
        self.assertIn("livelock", text)
        self.assertIn("laggard", text)
        self.assertIn("core 3", text)
        self.assertIn("12 host rounds", text)

    def test_malformed_document_rejected(self):
        with self.assertRaises((KeyError, ValueError)):
            trace_summary.summarize_crash_report({"schema": "nope"})
        doc = crash_doc()
        del doc["diagnosis"]
        with self.assertRaises(KeyError):
            trace_summary.summarize_crash_report(doc)

    def test_load_any_dispatches_on_schema(self):
        with tempfile.TemporaryDirectory() as d:
            cpath = os.path.join(d, "crash.json")
            with open(cpath, "w") as f:
                json.dump(crash_doc(), f)
            tpath = os.path.join(d, "trace.json")
            with open(tpath, "w") as f:
                json.dump({"traceEvents": []}, f)
            kind_c, doc = trace_summary.load_any(cpath)
            kind_t, events = trace_summary.load_any(tpath)
        self.assertEqual(kind_c, "crash")
        self.assertEqual(doc["error"]["code"], "livelock")
        self.assertEqual(kind_t, "events")
        self.assertEqual(events, [])


def critpath_doc():
    zero = {"ticks": 0, "share": 0.0}
    return {
        "schema": "simany-critpath-v1",
        "total_ticks": 20664, "total_cycles": 1722,
        "terminal_core": 5, "truncated": False,
        "causes": {
            "compute": {"ticks": 14280, "share": 0.691},
            "runtime": {"ticks": 1464, "share": 0.071},
            "noc": {"ticks": 2124, "share": 0.103},
            "memory": dict(zero), "lock_contention": dict(zero),
            "cell_contention": dict(zero), "fault": dict(zero),
            "imbalance": {"ticks": 2796, "share": 0.135},
        },
        "top_cores": [{"core": 5, "ticks": 12000, "share": 0.581},
                      {"core": 2, "ticks": 5000, "share": 0.242}],
        "top_links": [{"src": 3, "dst": 7, "ticks": 1200}],
        "top_objects": [{"kind": "lock", "id": 7, "ticks": 300}],
        "segment_count": 42,
        "segments": [],
        "fingerprint": "00123456789abcde",
    }


class CritPathSummaryTest(unittest.TestCase):
    def test_causes_ranked_and_zero_causes_dropped(self):
        s = trace_summary.summarize_critpath(critpath_doc(), top=1)
        self.assertEqual([c["cause"] for c in s["causes"]],
                         ["compute", "imbalance", "noc", "runtime"])
        self.assertEqual(s["total_cycles"], 1722)
        self.assertEqual(s["terminal_core"], 5)
        self.assertEqual(s["segments"], 42)
        self.assertEqual(len(s["top_cores"]), 1)  # top= honoured
        self.assertFalse(s["truncated"])

    def test_render_mentions_causes_links_and_fingerprint(self):
        text = trace_summary.render_critpath(
            trace_summary.summarize_critpath(critpath_doc()))
        self.assertIn("1722 cycles", text)
        self.assertIn("compute", text)
        self.assertIn("3->7", text)
        self.assertIn("lock 7", text)
        self.assertIn("00123456789abcde", text)
        self.assertNotIn("TRUNCATED", text)

    def test_truncated_flag_surfaces(self):
        doc = critpath_doc()
        doc["truncated"] = True
        text = trace_summary.render_critpath(
            trace_summary.summarize_critpath(doc))
        self.assertIn("TRUNCATED", text)

    def test_malformed_document_rejected(self):
        with self.assertRaises(ValueError):
            trace_summary.summarize_critpath({"schema": "nope"})
        doc = critpath_doc()
        del doc["causes"]
        with self.assertRaises(KeyError):
            trace_summary.summarize_critpath(doc)


def status_doc(state="running"):
    return {
        "schema": "simany-status-v1",
        "state": state, "wall_ms": 1500.0, "rounds": 12, "quanta": 96,
        "quanta_per_sec": 64.0, "events": 4000,
        "events_per_sec": 2666.7,
        "vtime_cycles": {"min": 400, "max": 512},
        "drift_gap_cycles": 112, "live_tasks": 5,
        "inflight_messages": 2, "mail_pending": 1, "imbalance": 1.28,
        "shards": [
            {"id": 0, "quanta": 48, "now_min_cycles": 500,
             "now_max_cycles": 512, "live_tasks": 3},
            {"id": 1, "quanta": 48, "now_min_cycles": 400,
             "now_max_cycles": 480, "live_tasks": 2},
        ],
        "guard": {"deadline_ms": 0, "elapsed_ms": 1500.0,
                  "max_vtime_cycles": 0, "budget_fraction": 0.0},
        "eta_ms": None,
    }


class StatusSummaryTest(unittest.TestCase):
    def test_summary_fields_and_laggard_shard(self):
        s = trace_summary.summarize_status(status_doc())
        self.assertEqual(s["state"], "running")
        self.assertEqual(s["vtime_min_cycles"], 400)
        self.assertEqual(s["drift_gap_cycles"], 112)
        self.assertEqual(s["shards"], 2)
        self.assertEqual(s["laggard_shard"]["id"], 1)
        self.assertEqual(s["laggard_shard"]["now_min_cycles"], 400)
        self.assertIsNone(s["eta_ms"])

    def test_render_mentions_state_progress_and_laggard(self):
        text = trace_summary.render_status(
            trace_summary.summarize_status(status_doc("finished")))
        self.assertIn("finished", text)
        self.assertIn("400..512 cycles", text)
        self.assertIn("shard 1", text)
        self.assertNotIn("eta", text)

    def test_eta_rendered_when_budgeted(self):
        doc = status_doc()
        doc["eta_ms"] = 2500.0
        text = trace_summary.render_status(
            trace_summary.summarize_status(doc))
        self.assertIn("eta", text)
        self.assertIn("2500", text)

    def test_malformed_document_rejected(self):
        with self.assertRaises(ValueError):
            trace_summary.summarize_status({"schema": "nope"})
        doc = status_doc()
        del doc["vtime_cycles"]
        with self.assertRaises(KeyError):
            trace_summary.summarize_status(doc)


class SchemaDispatchTest(unittest.TestCase):
    def test_load_any_routes_all_three_schemas(self):
        with tempfile.TemporaryDirectory() as d:
            paths = {}
            for name, doc in (("crash", crash_doc()),
                              ("critpath", critpath_doc()),
                              ("status", status_doc())):
                paths[name] = os.path.join(d, name + ".json")
                with open(paths[name], "w") as f:
                    json.dump(doc, f)
            for name, path in paths.items():
                kind, doc = trace_summary.load_any(path)
                self.assertEqual(kind, name)
                self.assertEqual(doc["schema"], "simany-%s-v1"
                                 % ("crash-report" if name == "crash"
                                    else name))


if __name__ == "__main__":
    unittest.main()
