// Seeded violations for the io-unchecked-write rule, plus the shapes
// that must stay silent: a checked stream, a stream handed to another
// function (ownership escapes), and an inline allow.
#include <fstream>
#include <string>

namespace fixture {

// VIOLATION: written with <<, failure state never consulted — a full
// disk becomes silent data loss.
void dump_report(const std::string& path) {
  std::ofstream out(path);
  out << "report line\n";
  out << "another line\n";
}

// VIOLATION: method-spelled write, same silent loss.
void dump_blob(const std::string& path, const char* data) {
  std::ofstream blob(path, std::ios::binary);
  blob.write(data, 16);
}

// Clean: the failure state is consulted after the writes.
bool dump_checked(const std::string& path) {
  std::ofstream out(path);
  out << "checked line\n";
  out.flush();
  return out.good();
}

// Clean: the !stream idiom is a check too.
int dump_bang_checked(const std::string& path) {
  std::ofstream out(path);
  out << "checked line\n";
  if (!out) return 1;
  return 0;
}

void fill(std::ofstream& sink) { sink << "elsewhere\n"; }

// Clean: the stream escapes into fill(), which owns the handling —
// the rule errs toward silence on shared ownership.
void dump_delegated(const std::string& path) {
  std::ofstream out(path);
  fill(out);
  out << "trailer\n";
}

// Clean: explicitly allowed (scratch output, loss is acceptable).
void dump_scratch(const std::string& path) {
  std::ofstream out(path);
  // simlint: allow(io-unchecked-write) throwaway debug dump
  out << "scratch\n";
}

}  // namespace fixture
