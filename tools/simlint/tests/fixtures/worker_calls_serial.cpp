// Fixture: a worker-phase function reaching a serial-only function
// through an intermediate hop. simlint must report phase-serial-escape
// at the hop's call site with the full call path.
#include "core/phase_annotations.h"

namespace fx {

class MiniEngine {
 public:
  SIMANY_WORKER_PHASE void round();
  void hop();  // unannotated middle of the chain
  SIMANY_SERIAL_ONLY void commit();
};

void MiniEngine::round() { hop(); }

void MiniEngine::hop() {
  commit();  // VIOLATION: worker-phase root -> serial-only
}

void MiniEngine::commit() {}

}  // namespace fx
