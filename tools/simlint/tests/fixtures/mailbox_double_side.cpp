// Fixture: mailbox side discipline. One function pushes AND pops the
// same mailbox type without being serial-only (mailbox-double-side);
// another is annotated as producer yet pops (mailbox-side); a third
// seals outside the serial phase (mailbox-side).
#include "core/phase_annotations.h"
#include "host/spsc_mailbox.h"

namespace fx {

struct Msg {
  int payload = 0;
};

class Router {
 public:
  void shuffle();                              // double-side violation
  SIMANY_MAILBOX_PRODUCER void feed(Msg m);    // wrong-side violation
  SIMANY_WORKER_PHASE void early_seal();       // seal outside barrier
  SIMANY_SERIAL_ONLY void barrier();           // fine: barrier owns both

 private:
  simany::host::SpscMailbox<Msg> box_;
};

void Router::shuffle() {
  Msg m;
  box_.push(Msg{1});
  box_.pop(m);  // VIOLATION: both ends, not serial-only
}

void Router::feed(Msg m) {
  box_.push(std::move(m));
  Msg back;
  box_.pop(back);  // VIOLATION: producer side pops
}

void Router::early_seal() {
  box_.seal();  // VIOLATION: seal is barrier-only
}

void Router::barrier() {
  Msg m;
  box_.seal();
  while (box_.pop(m)) {
  }
}

}  // namespace fx
