// Fixture: the round/serial split's proxy-commit contract. Workers
// publish proxy snapshots into their own tiles of the back buffer; the
// front/back flip that commits them is serial-only (it retargets every
// shard's reads at once). A worker flipping directly must surface as
// phase-serial-escape.
#include "core/phase_annotations.h"

namespace fx {

class ProxyEngine {
 public:
  SIMANY_WORKER_PHASE void publish_round();
  SIMANY_SERIAL_ONLY void flip_proxies();
};

void ProxyEngine::publish_round() {
  flip_proxies();  // VIOLATION: worker flips the shared proxy buffers
}

void ProxyEngine::flip_proxies() {}

}  // namespace fx
