// Fixture: lock-discipline lint. One member mutex with no
// SIMANY_GUARDED_BY reference (violation), one annotated (clean).
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/phase_annotations.h"

namespace fx {

struct Bare {
  std::mutex mu;  // VIOLATION: det-mutex-unannotated
  std::vector<std::uint64_t> rows;
};

struct Disciplined {
  std::mutex mu;
  std::vector<std::uint64_t> rows SIMANY_GUARDED_BY(mu);
};

}  // namespace fx
