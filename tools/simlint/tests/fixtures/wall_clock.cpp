// Fixture: wall-clock and thread_local determinism violations, plus an
// inline allow showing the escape hatch works.
#include <chrono>
#include <cstdint>

namespace fx {

std::uint64_t stamp() {
  // VIOLATION: det-wall-clock
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

double budget_left(double limit_s) {
  // simlint: allow(det-wall-clock) fixture: deadline anchor, by design
  static const auto t0 = std::chrono::steady_clock::now();
  // simlint: allow(det-wall-clock) fixture: deadline check, by design
  const auto dt = std::chrono::steady_clock::now() - t0;
  return limit_s - std::chrono::duration<double>(dt).count();
}

std::uint64_t bump() {
  thread_local std::uint64_t counter = 0;  // VIOLATION: det-thread-local
  return ++counter;
}

}  // namespace fx
