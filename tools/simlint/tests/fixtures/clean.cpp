// Fixture: a clean file exercising the same shapes the rules inspect —
// annotated phases that respect the discipline, a consumer that only
// pops, ordered iteration, seeded randomness. simlint must report
// nothing here (the zero-false-positive guarantee in miniature).
#include <cstdint>
#include <map>
#include <vector>

#include "core/phase_annotations.h"
#include "host/spsc_mailbox.h"

namespace fx {

struct Msg {
  int payload = 0;
};

class CleanEngine {
 public:
  SIMANY_WORKER_PHASE void round();
  SIMANY_WORKER_PHASE SIMANY_MAILBOX_CONSUMER void drain();
  SIMANY_MAILBOX_PRODUCER void send(Msg m);
  SIMANY_SERIAL_ONLY void barrier();
  std::uint64_t checksum() const;

 private:
  void step();  // unannotated helper, worker-reachable, calls nothing serial
  simany::host::SpscMailbox<Msg> box_;
  std::map<std::uint64_t, std::uint64_t> cells_;
  std::uint64_t state_ = 1;
};

void CleanEngine::round() {
  drain();
  step();
}

void CleanEngine::drain() {
  Msg m;
  while (box_.pop(m)) {
    state_ += static_cast<std::uint64_t>(m.payload);
  }
}

void CleanEngine::send(Msg m) { box_.push(std::move(m)); }

void CleanEngine::barrier() { box_.seal(); }

void CleanEngine::step() {
  // xorshift from the config-seeded state: deterministic by design.
  state_ ^= state_ << 13;
  state_ ^= state_ >> 7;
  state_ ^= state_ << 17;
}

std::uint64_t CleanEngine::checksum() const {
  std::uint64_t h = 0;
  for (const auto& [k, v] : cells_) {  // std::map: ordered, fine
    h = h * 31 + v;
  }
  return h;
}

}  // namespace fx
