// Fixture: determinism lints — unordered iteration feeding state, an
// allowed order-independent loop, and a libc randomness source.
#include <cstdint>
#include <cstdlib>
#include <unordered_map>
#include <vector>

namespace fx {

class Table {
 public:
  std::uint64_t checksum() const;
  void clear_flags();
  int jitter() const;

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> cells_;
  std::unordered_map<std::uint64_t, bool> flags_;
};

std::uint64_t Table::checksum() const {
  std::uint64_t h = 0;
  for (const auto& [k, v] : cells_) {  // VIOLATION: order feeds result
    h = h * 31 + v;
  }
  return h;
}

void Table::clear_flags() {
  // simlint: allow(det-unordered-iter) per-entry reset, order-free
  for (auto& [k, f] : flags_) {
    f = false;
  }
}

int Table::jitter() const {
  return std::rand();  // VIOLATION: det-libc-rand
}

}  // namespace fx
