#!/usr/bin/env python3
"""simlint acceptance tests.

Three layers:
  * fixtures — every seeded violation class is detected, the clean
    fixture and the real headers contribute nothing, and the inline
    allow escapes suppress exactly their own line;
  * contract — exit codes (0 clean / 1 findings / 2 usage) and the
    baseline write/suppress round trip;
  * regression — stripping a real allow from a copy of the real
    engine source resurfaces the finding (guards against the analyzer
    silently going blind on the production tree).

Run directly (python3 tools/simlint/tests/test_simlint.py) or via
ctest -L lint.
"""

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.abspath(os.path.join(TESTS_DIR, "..", "..", ".."))
SIMLINT = os.path.join(REPO, "tools", "simlint", "simlint.py")
FIXTURES = os.path.join(TESTS_DIR, "fixtures")

# Real headers the fixtures depend on: SpscMailbox supplies the
# annotated push/pop/seal methods, phase_annotations.h the macros.
REAL_HEADERS = [
    os.path.join("src", "host", "spsc_mailbox.h"),
    os.path.join("src", "core", "phase_annotations.h"),
]


def run_simlint(args, cwd=REPO):
    proc = subprocess.run(
        [sys.executable, SIMLINT] + args,
        cwd=cwd, capture_output=True, text=True, timeout=120)
    return proc


def fixture_report(tmpdir):
    report = os.path.join(tmpdir, "report.json")
    proc = run_simlint(
        ["--root", REPO, "--paths", FIXTURES] +
        [os.path.join(REPO, h) for h in REAL_HEADERS] +
        ["--report", report])
    with open(report, encoding="utf-8") as f:
        doc = json.load(f)
    return proc, doc


class FixtureDetection(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.tmp = tempfile.mkdtemp(prefix="simlint_test_")
        cls.proc, cls.doc = fixture_report(cls.tmp)
        cls.findings = cls.doc["findings"]

    @classmethod
    def tearDownClass(cls):
        shutil.rmtree(cls.tmp, ignore_errors=True)

    def by_rule(self, rule):
        return [f for f in self.findings if f["rule"] == rule]

    def in_file(self, name):
        return [f for f in self.findings
                if os.path.basename(f["path"]) == name]

    def test_exit_signals_findings(self):
        self.assertEqual(self.proc.returncode, 1, self.proc.stderr)

    def test_phase_serial_escape(self):
        hits = self.by_rule("phase-serial-escape")
        # worker_calls_serial: round -> hop -> commit; mailbox fixture:
        # early_seal -> SpscMailbox::seal (seal is serial-only);
        # worker_commits_proxy: publish_round -> flip_proxies (the
        # proxy-commit contract behind the engine's double buffer).
        self.assertEqual(len(hits), 3, hits)
        proxy = [f for f in hits if "flip_proxies" in f["message"]]
        self.assertEqual(len(proxy), 1, hits)
        chained = [f for f in hits if "commit" in f["message"]]
        self.assertEqual(len(chained), 1, hits)
        self.assertIn("round", chained[0]["message"])  # full call path
        self.assertIn("hop", chained[0]["message"])

    def test_mailbox_sides(self):
        sides = self.by_rule("mailbox-side")
        self.assertEqual(len(sides), 2, sides)  # feed pops; early_seal seals
        symbols = {f["symbol"] for f in sides}
        self.assertIn("Router::feed:pop", symbols)
        self.assertIn("Router::early_seal:seal", symbols)
        double = self.by_rule("mailbox-double-side")
        self.assertEqual(len(double), 1, double)
        self.assertIn("shuffle", double[0]["symbol"])

    def test_determinism_rules(self):
        self.assertEqual(len(self.by_rule("det-wall-clock")), 1)
        self.assertEqual(len(self.by_rule("det-libc-rand")), 1)
        self.assertEqual(len(self.by_rule("det-unordered-iter")), 1)
        self.assertEqual(len(self.by_rule("det-thread-local")), 1)
        self.assertEqual(len(self.by_rule("det-mutex-unannotated")), 1)
        self.assertIn("Bare::mu",
                      self.by_rule("det-mutex-unannotated")[0]["symbol"])

    def test_clean_fixture_and_real_headers_are_silent(self):
        self.assertEqual(self.in_file("clean.cpp"), [])
        self.assertEqual(self.in_file("spsc_mailbox.h"), [])
        self.assertEqual(self.in_file("phase_annotations.h"), [])

    def test_inline_allows_suppress(self):
        # unordered_iteration.cpp: only the checksum loop and rand() are
        # flagged; the allowed clear_flags loop is not.
        unordered = self.in_file("unordered_iteration.cpp")
        self.assertEqual(len(unordered), 2, unordered)
        self.assertNotIn("clear_flags", str(unordered))
        # wall_clock.cpp: stamp + thread_local, not the allowed deadline.
        wall = self.in_file("wall_clock.cpp")
        self.assertEqual(len(wall), 2, wall)
        self.assertNotIn("budget_left", str(wall))

    def test_io_unchecked_write(self):
        hits = self.by_rule("io-unchecked-write")
        self.assertEqual(len(hits), 2, hits)
        symbols = {f["symbol"] for f in hits}
        self.assertIn("fixture::dump_report:out", symbols)
        self.assertIn("fixture::dump_blob:blob", symbols)
        # The checked, delegated (stream escapes into fill()) and
        # allow-annotated shapes stay silent.
        io_file = self.in_file("io_unchecked_write.cpp")
        self.assertEqual(len(io_file), 2, io_file)
        self.assertNotIn("dump_checked", str(io_file))
        self.assertNotIn("dump_bang_checked", str(io_file))
        self.assertNotIn("dump_delegated", str(io_file))
        self.assertNotIn("dump_scratch", str(io_file))

    def test_total_matches_expectation(self):
        # Exactly the seeded violations — anything extra is a false
        # positive, anything fewer a regression.
        self.assertEqual(len(self.findings), 13, self.findings)


class CliContract(unittest.TestCase):
    def test_usage_error_exits_2(self):
        proc = run_simlint(["--compile-db", "/nonexistent/db.json"])
        self.assertEqual(proc.returncode, 2, proc.stderr)
        proc = run_simlint(["--root", "/nonexistent-root-xyz",
                            "--paths", "also-missing"])
        self.assertEqual(proc.returncode, 2, proc.stderr)

    def test_clean_input_exits_0(self):
        clean = os.path.join(FIXTURES, "clean.cpp")
        proc = run_simlint(
            ["--root", REPO, "--paths", clean] +
            [os.path.join(REPO, h) for h in REAL_HEADERS])
        self.assertEqual(proc.returncode, 0,
                         proc.stdout + proc.stderr)

    def test_baseline_roundtrip(self):
        with tempfile.TemporaryDirectory(prefix="simlint_bl_") as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            args = (["--root", REPO, "--paths", FIXTURES] +
                    [os.path.join(REPO, h) for h in REAL_HEADERS])
            wrote = run_simlint(args + ["--write-baseline", baseline])
            self.assertEqual(wrote.returncode, 0, wrote.stderr)
            with open(baseline, encoding="utf-8") as f:
                doc = json.load(f)
            self.assertEqual(len(doc["suppressions"]), 13)
            # All findings suppressed -> clean exit.
            again = run_simlint(args + ["--baseline", baseline])
            self.assertEqual(again.returncode, 0, again.stdout)
            self.assertIn("suppressed", again.stdout)
            # Fingerprints are line-independent: a stale line number in
            # the baseline must not matter (they key on rule|path|symbol).
            for s in doc["suppressions"]:
                self.assertNotIn("line", s)


class RealTreeRegression(unittest.TestCase):
    """Strip a real inline allow from a copy of engine.cpp and check the
    finding resurfaces — proves the production tree's clean bill of
    health comes from the documented escapes, not analyzer blindness."""

    def test_removing_allow_resurfaces_finding(self):
        src = os.path.join(REPO, "src", "core", "engine.cpp")
        with open(src, encoding="utf-8") as f:
            text = f.read()
        stripped = re.sub(r"// simlint: allow\(det-thread-local\)[^\n]*",
                          "//", text)
        self.assertNotEqual(stripped, text,
                            "expected det-thread-local allows in engine.cpp")
        with tempfile.TemporaryDirectory(prefix="simlint_rt_") as tmp:
            copy = os.path.join(tmp, "engine_stripped.cpp")
            with open(copy, "w", encoding="utf-8") as f:
                f.write(stripped)
            proc = run_simlint(["--root", tmp, "--paths", copy])
            self.assertEqual(proc.returncode, 1, proc.stdout)
            self.assertEqual(proc.stdout.count("det-thread-local"), 2,
                             proc.stdout)

    def test_real_tree_is_clean(self):
        proc = run_simlint(["--root", REPO, "--paths", "src"])
        self.assertEqual(proc.returncode, 0,
                         proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
