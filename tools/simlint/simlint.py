#!/usr/bin/env python3
"""simlint — static enforcement of simany's phase-discipline and
determinism contracts.

The simulator's two load-bearing contracts (results are a pure function
of config+seed+workload regardless of shard count; shared state is only
touched in the right host-round phase) are annotated in the source with
the SIMANY_* vocabulary from src/core/phase_annotations.h. simlint
reads the compile database to find the code, extracts a source model
with its built-in frontend (no compiler needed — works on GCC-only
hosts; see docs/static_analysis.md), and enforces:

  * serial-only functions are unreachable from worker-phase roots,
  * each SPSC mailbox end is touched from exactly one annotated side,
  * no nondeterminism sources in engine code (wall clock, libc rand,
    unordered-container iteration, thread_local, unannotated mutexes),
    with a path allowlist (src/guard wall-clock deadlines, src/obs host
    profiling) plus inline `// simlint: allow(rule) reason` escapes,
  * no unchecked artifact writes (an ofstream written and dropped
    without ever consulting its failure state — io-unchecked-write;
    artifact writers belong on io/atomic_write.h).

Exit status (uniform across tools/, see docs/static_analysis.md):
  0  clean (or all findings suppressed by --baseline)
  1  findings
  2  usage / input error

Usage:
  simlint.py [--compile-db build/compile_commands.json] [--root DIR]
             [--paths src ...] [--baseline FILE] [--write-baseline FILE]
             [--report FILE] [--quiet]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import checks  # noqa: E402
import cpp_model  # noqa: E402

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

DEFAULT_CONFIG = {
    # Determinism rules apply under these path prefixes (relative to
    # --root)...
    "engine_paths": ["src/"],
    # ...except these, where the "nondeterminism" is the point. Each
    # entry documents why (printed by --explain-allowlist).
    "det_exempt_paths": {
        "src/guard/": "wall-clock deadlines and crash-report timestamps "
                      "are wall-clock by design; guard trips funnel to "
                      "the serial phase and never feed simulated state",
        "src/obs/": "host-round profiling measures real time on purpose; "
                    "profiler output is diagnostic, never an input to "
                    "the simulation",
    },
    # The artifact-I/O rule (io-unchecked-write) skips these: their
    # writes are throwaway scaffolding, not run artifacts.
    "io_exempt_paths": {
        "tests/": "test scaffolding writes temp files whose loss the "
                  "assertions themselves would catch",
        "bench/": "benchmark output is advisory, not a run artifact",
        "tools/": "host-side python/tooling trees, not artifact I/O",
    },
    # ...except simlint's own fixtures, which seed the violation on
    # purpose.
    "io_include_paths": ["tools/simlint/tests/fixtures/"],
    # Phase/mailbox rules apply to everything that was parsed.
}


def die_usage(msg):
    print(f"simlint: error: {msg}", file=sys.stderr)
    sys.exit(EXIT_USAGE)


def source_files(args):
    """Files to lint: TUs from the compile database plus headers under
    the engine paths (headers never appear in compile_commands.json but
    carry the annotations and the inline methods)."""
    root = os.path.abspath(args.root)
    files = []
    seen = set()

    def add(path):
        path = os.path.abspath(path)
        rel = os.path.relpath(path, root)
        if rel.startswith(".."):
            return  # outside the tree (system headers, external TUs)
        if rel in seen:
            return
        seen.add(rel)
        files.append((path, rel))

    if args.compile_db:
        try:
            with open(args.compile_db, encoding="utf-8") as f:
                db = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            die_usage(f"compile database {args.compile_db} unusable: {e}")
        if not isinstance(db, list):
            die_usage(f"compile database {args.compile_db}: expected a "
                      f"JSON array of entries")
        for entry in db:
            src = entry.get("file", "")
            if not src:
                continue
            if not os.path.isabs(src):
                src = os.path.join(entry.get("directory", root), src)
            if os.path.exists(src):
                add(src)
    scan_paths = args.paths or (["src"] if args.compile_db is None
                                else [])
    # Headers always come from the tree walk (the db holds only TUs).
    header_roots = args.paths or ["src"]
    for p in scan_paths + header_roots:
        base = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(base):
            add(base)
            continue
        if not os.path.isdir(base):
            continue
        for dirpath, _dirs, names in os.walk(base):
            for name in sorted(names):
                if name.endswith((".h", ".hpp", ".hh")):
                    add(os.path.join(dirpath, name))
                elif p in scan_paths and name.endswith(
                        (".cpp", ".cc", ".cxx")):
                    add(os.path.join(dirpath, name))
    if not files:
        die_usage("no source files found (bad --root / --paths, or an "
                  "empty compile database)")
    return files


def load_baseline(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die_usage(f"baseline {path} unusable: {e}")
    entries = doc.get("suppressions", [])
    return {e["fingerprint"] for e in entries if "fingerprint" in e}


def write_baseline(path, findings):
    doc = {
        "simlint_baseline_version": 1,
        "comment": "Accepted pre-existing findings; new findings still "
                   "fail. Regenerate with --write-baseline.",
        "suppressions": [
            {"fingerprint": f.fingerprint(), "rule": f.rule,
             "path": f.path, "symbol": f.symbol, "message": f.message}
            for f in findings
        ],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="simlint.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--compile-db",
                    help="compile_commands.json to derive the TU list "
                         "from (headers are walked from --paths)")
    ap.add_argument("--root", default=".",
                    help="repository root; findings are reported "
                         "relative to it (default: cwd)")
    ap.add_argument("--paths", nargs="*",
                    help="directories/files to lint when no compile db "
                         "is given, and where headers are discovered "
                         "(default: src)")
    ap.add_argument("--baseline",
                    help="JSON baseline of accepted findings to "
                         "suppress (see --write-baseline)")
    ap.add_argument("--write-baseline", metavar="FILE",
                    help="write the current findings as the accepted "
                         "baseline and exit 0")
    ap.add_argument("--report", metavar="FILE",
                    help="write findings as JSON (CI artifact)")
    ap.add_argument("--explain-allowlist", action="store_true",
                    help="print the path allowlist with reasons and "
                         "exit")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the per-finding lines (summary only)")
    args = ap.parse_args(argv)

    config = dict(DEFAULT_CONFIG)
    if args.explain_allowlist:
        print("simlint path allowlist (determinism rules only):")
        for prefix, reason in config["det_exempt_paths"].items():
            print(f"  {prefix}\n      {reason}")
        return EXIT_CLEAN

    models = []
    for path, rel in source_files(args):
        try:
            model = cpp_model.parse_file(path)
        except OSError as e:
            die_usage(f"cannot read {path}: {e}")
        model.path = rel
        for f in model.functions:
            f.path = rel
        for cls in model.classes.values():
            cls.path = rel
        models.append(model)

    project = checks.Project(models)
    findings = checks.run_all(project, config)

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(f"simlint: wrote baseline with {len(findings)} "
              f"suppression(s) to {args.write_baseline}")
        return EXIT_CLEAN

    suppressed = 0
    if args.baseline:
        accepted = load_baseline(args.baseline)
        kept = []
        for f in findings:
            if f.fingerprint() in accepted:
                suppressed += 1
            else:
                kept.append(f)
        findings = kept

    if args.report:
        doc = {
            "tool": "simlint",
            "files_scanned": len(models),
            "functions_modeled": len(project.functions),
            "suppressed_by_baseline": suppressed,
            "findings": [
                {"rule": f.rule, "path": f.path, "line": f.line,
                 "symbol": f.symbol, "message": f.message,
                 "fingerprint": f.fingerprint()}
                for f in findings
            ],
        }
        with open(args.report, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")

    if not args.quiet:
        for f in findings:
            print(f.render())
    tail = f", {suppressed} suppressed by baseline" if suppressed else ""
    print(f"simlint: {len(models)} files, {len(project.functions)} "
          f"functions modeled, {len(findings)} finding(s){tail}")
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
