"""Heuristic C++ source-model extractor for simlint.

simlint needs far less than a real C++ frontend: which functions exist,
which SIMANY_* phase annotations they carry, what they call, which class
members have which (textual) types, and where a handful of banned tokens
appear. This module builds that model with a hand-rolled lexer and a
brace-tracking scope scanner — no compiler invocation, so it works on
the GCC-only container exactly as it does under clang. The extraction
is deliberately conservative: anything it cannot resolve (an unknown
receiver type, an ambiguous overload) produces *no* call edge and *no*
finding, so false positives come only from explicit annotations being
wrong, never from parser guesswork.

The seam for an exact frontend is FileModel: a clang-AST-JSON backend
producing the same FileModel objects can be dropped in without touching
the checks (see docs/static_analysis.md, "Frontends").
"""

import re
from dataclasses import dataclass, field

# Phase/discipline annotation macros (see src/core/phase_annotations.h).
ANNOTATION_MACROS = {
    "SIMANY_SERIAL_ONLY": "serial_only",
    "SIMANY_WORKER_PHASE": "worker_phase",
    "SIMANY_SHARD_AFFINE": "shard_affine",
    "SIMANY_MAILBOX_PRODUCER": "mailbox_producer",
    "SIMANY_MAILBOX_CONSUMER": "mailbox_consumer",
}

# Thread-safety macros whose argument names a mutex member.
TS_REF_MACROS = {
    "SIMANY_GUARDED_BY",
    "SIMANY_PT_GUARDED_BY",
    "SIMANY_REQUIRES",
    "SIMANY_ACQUIRE",
    "SIMANY_RELEASE",
    "SIMANY_EXCLUDES",
}

KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "return", "break", "continue", "goto", "try", "catch", "throw",
    "new", "delete", "sizeof", "alignof", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "co_await", "co_return", "co_yield",
    "static_assert", "decltype", "noexcept", "operator", "template",
    "typename", "using", "typedef", "friend", "public", "private",
    "protected", "virtual", "override", "final", "explicit", "inline",
    "constexpr", "consteval", "constinit", "static", "extern", "mutable",
    "volatile", "const", "auto", "register", "thread_local", "class",
    "struct", "union", "enum", "namespace", "concept", "requires",
}

_DIRECTIVE_RE = re.compile(
    r"simlint:\s*(allow|role)\(\s*([A-Za-z0-9_,\-\s]+?)\s*\)")


@dataclass
class Token:
    kind: str  # "id" | "num" | "punct" | "str" | "chr"
    text: str
    line: int


@dataclass
class CallSite:
    name: str          # callee short name
    line: int
    receiver: str      # "" for plain calls, else base identifier/call name
    receiver_op: str   # "", ".", "->", "::"
    qualifier: str     # "A::B" prefix for qualified plain calls, else ""


@dataclass
class RangeFor:
    line: int
    range_tokens: list  # tokens of the range expression
    decl_tokens: list = field(default_factory=list)  # loop-var declaration


@dataclass
class FunctionModel:
    short: str
    qualified: str
    cls: str            # enclosing class short name, "" for free functions
    path: str
    line: int
    annotations: set = field(default_factory=set)
    calls: list = field(default_factory=list)      # [CallSite]
    range_fors: list = field(default_factory=list)  # [RangeFor]
    locals: dict = field(default_factory=dict)     # name -> type/init text
    params: dict = field(default_factory=dict)     # name -> type text


@dataclass
class ClassModel:
    name: str
    path: str
    line: int
    members: dict = field(default_factory=dict)        # name -> type text
    methods: dict = field(default_factory=dict)        # short -> annotations
    method_returns: dict = field(default_factory=dict)  # short -> return text
    mutex_members: dict = field(default_factory=dict)  # name -> line
    ts_refs: set = field(default_factory=set)  # idents named in TS macros


@dataclass
class FileModel:
    path: str
    tokens: list = field(default_factory=list)
    functions: list = field(default_factory=list)
    classes: dict = field(default_factory=dict)  # short name -> ClassModel
    allows: dict = field(default_factory=dict)   # line -> set of rule ids
    roles: dict = field(default_factory=dict)    # line -> role string

    def allowed(self, rule, line):
        """True when an inline `// simlint: allow(rule)` covers `line`.

        A directive suppresses findings on its own line and on the line
        directly below it (the own-line comment idiom)."""
        for probe in (line, line - 1):
            rules = self.allows.get(probe)
            if rules and (rule in rules or "*" in rules):
                return True
        return False


# ---------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------

def lex(text, path=""):
    """Tokens plus comment directives. Strings/chars are collapsed to
    placeholder tokens; preprocessor lines are skipped entirely."""
    tokens = []
    allows = {}
    roles = {}
    i = 0
    n = len(text)
    line = 1
    at_line_start = True

    def record_directives(comment, cline):
        for m in _DIRECTIVE_RE.finditer(comment):
            what, arg = m.group(1), m.group(2)
            if what == "allow":
                rules = {r.strip() for r in arg.split(",") if r.strip()}
                allows.setdefault(cline, set()).update(rules)
            else:
                roles[cline] = arg.strip()

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "#" and at_line_start:
            # Preprocessor directive: skip, honoring continuations.
            while i < n:
                j = text.find("\n", i)
                if j == -1:
                    i = n
                    break
                seg = text[i:j]
                line += 1
                i = j + 1
                if not seg.rstrip().endswith("\\"):
                    break
            at_line_start = True
            continue
        at_line_start = False
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            record_directives(text[i:j], line)
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j == -1:
                j = n - 2
            comment = text[i:j]
            record_directives(comment, line)
            line += comment.count("\n")
            i = j + 2
            continue
        if c == '"':
            # Possibly a raw string if preceded by R (handled below when
            # lexing identifiers); here: ordinary string literal.
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                elif text[j] == "\n":
                    line += 1
                j += 1
            tokens.append(Token("str", '""', line))
            i = j + 1
            continue
        if c == "'":
            prev = tokens[-1] if tokens else None
            if prev is not None and prev.kind == "num":
                # Digit separator inside a number (1'000): glue on.
                j = i + 1
                while j < n and (text[j].isalnum() or text[j] in "'."):
                    j += 1
                prev.text += text[i:j]
                i = j
                continue
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            tokens.append(Token("chr", "''", line))
            i = j + 1
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if j < n and text[j] == '"' and word in ("R", "LR", "uR", "UR",
                                                     "u8R"):
                # Raw string literal R"delim( ... )delim".
                k = text.find("(", j)
                delim = text[j + 1:k]
                endmark = ")" + delim + '"'
                e = text.find(endmark, k + 1)
                if e == -1:
                    e = n - len(endmark)
                line += text.count("\n", j, e)
                tokens.append(Token("str", '""', line))
                i = e + len(endmark)
                continue
            tokens.append(Token("id", word, line))
            i = j
            continue
        if c.isdigit():
            j = i
            while j < n and (text[j].isalnum() or text[j] in "."):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        if c == ":" and i + 1 < n and text[i + 1] == ":":
            tokens.append(Token("punct", "::", line))
            i += 2
            continue
        if c == "-" and i + 1 < n and text[i + 1] == ">":
            tokens.append(Token("punct", "->", line))
            i += 2
            continue
        tokens.append(Token("punct", c, line))
        i += 1

    model = FileModel(path=path, tokens=tokens, allows=allows, roles=roles)
    return model


# ---------------------------------------------------------------------
# Scope scanner
# ---------------------------------------------------------------------

_TYPE_PUNCT = {"::", "<", ">", ",", "*", "&", "(", ")", "[", "]"}


def _join(tokens):
    return "".join(
        t.text if t.kind != "id" else t.text + " " for t in tokens).strip()


def _match_paren(tokens, i):
    """Index of the ')' matching tokens[i] == '(', or len(tokens)."""
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j].text
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return j
    return len(tokens)


def _function_header(stmt):
    """(name_tokens, lparen_index) when `stmt` looks like a function
    definition header, else (None, -1). `stmt` is everything between the
    previous ';'/'{'/'}' and the '{' that opened this scope."""
    # Find the parameter-list '(' — the first depth-0 '(' directly
    # preceded by an identifier (or operator symbol run).
    depth = 0
    for i, t in enumerate(stmt):
        x = t.text
        if x in "<":
            continue
        if x == "(":
            prev = stmt[i - 1] if i > 0 else None
            if prev is not None and (prev.kind == "id"
                                     or prev.text in (">", "]", "=")):
                if prev.kind == "id" and prev.text in (
                        "if", "for", "while", "switch", "catch", "return",
                        "sizeof", "alignof", "decltype", "noexcept",
                        "static_assert", "requires", "new", "delete",
                        "throw", "case", "alignas"):
                    return None, -1
                # Walk back the qualified-name chain.
                j = i - 1
                name = [stmt[j]]
                j -= 1
                while j >= 1 and stmt[j].text == "::" and stmt[j - 1].kind \
                        == "id":
                    name = [stmt[j - 1], stmt[j]] + name
                    j -= 2
                if name[-1].kind != "id":
                    return None, -1
                # Reject macro-call statements like MACRO(x) { — require
                # either a return type / ctor context before the name, or
                # qualification (Engine::f). A bare `name(...) {` with
                # nothing before it at class scope is a constructor.
                return name, i
        if x == "(":
            depth += 1
    return None, -1


def _param_names(stmt, lp, rp):
    """{name: type_text} for the parameter list stmt[lp+1:rp]."""
    params = {}
    depth = 0
    start = lp + 1
    groups = []
    for i in range(lp + 1, rp):
        t = stmt[i].text
        if t in "(<[":
            depth += 1
        elif t in ")>]":
            depth -= 1
        elif t == "," and depth == 0:
            groups.append(stmt[start:i])
            start = i + 1
    if start < rp:
        groups.append(stmt[start:rp])
    for g in groups:
        # Drop default arguments.
        for i, t in enumerate(g):
            if t.text == "=" and i > 0:
                g = g[:i]
                break
        ids = [t for t in g if t.kind == "id" and t.text not in KEYWORDS]
        if len(ids) >= 2:
            params[ids[-1].text] = _join(g[:-1])
    return params


def scan(model):
    """Populates model.functions / model.classes from model.tokens."""
    tokens = model.tokens
    path = model.path
    # Scope stack entries: dict(kind=ns|class|fn|block|enum, name, obj).
    stack = []
    stmt_start = 0
    i = 0
    n = len(tokens)

    def cur_kind():
        return stack[-1]["kind"] if stack else "file"

    def cur_class():
        for frame in reversed(stack):
            if frame["kind"] == "class":
                return frame["obj"]
            if frame["kind"] == "fn":
                return None
        return None

    def cur_fn():
        for frame in reversed(stack):
            if frame["kind"] == "fn":
                return frame["obj"]
            if frame["kind"] == "class":
                return None
        return None

    def ns_prefix():
        parts = [f["name"] for f in stack
                 if f["kind"] in ("ns", "class") and f["name"]]
        return "::".join(parts)

    while i < n:
        t = tokens[i]
        x = t.text
        if x == "{":
            stmt = tokens[stmt_start:i]
            frame = {"kind": "block", "name": "", "obj": None}
            words = [s.text for s in stmt if s.kind == "id"]
            fn = cur_fn()
            if fn is not None:
                # Inside a function body: check for a named lambda
                # (`auto name = [..](..) {`); everything else is a block.
                if any(s.text == "[" for s in stmt) and len(words) >= 2 \
                        and words[0] == "auto" and "=" in \
                        [s.text for s in stmt]:
                    sub = FunctionModel(
                        short=words[1],
                        qualified=fn.qualified + "::" + words[1],
                        cls=fn.cls, path=path, line=t.line)
                    role = _role_for(model, stmt, t.line)
                    if role:
                        sub.annotations.add(role)
                    sub.params = dict(fn.params)
                    sub.locals = fn.locals  # shared: lambdas capture scope
                    model.functions.append(sub)
                    frame = {"kind": "fn", "name": sub.short, "obj": sub}
            elif "namespace" in words:
                name = words[words.index("namespace") + 1] if \
                    words.index("namespace") + 1 < len(words) else ""
                frame = {"kind": "ns", "name": name, "obj": None}
            elif words and words[0] == "enum" or \
                    ("enum" in words[:2] and "class" in words[:3]):
                frame = {"kind": "enum", "name": "", "obj": None}
            elif any(w in ("class", "struct", "union") for w in words) \
                    and "(" not in [s.text for s in stmt]:
                kw = next(w for w in words if w in ("class", "struct",
                                                    "union"))
                after = words[words.index(kw) + 1:]
                after = [w for w in after
                         if w not in ("final", "alignas", "public",
                                      "private", "protected", "virtual")
                         and w not in ANNOTATION_MACROS]
                cname = after[0] if after else ""
                cls = ClassModel(name=cname, path=path, line=t.line)
                if cname:
                    model.classes.setdefault(cname, cls)
                    cls = model.classes[cname]
                frame = {"kind": "class", "name": cname, "obj": cls}
            elif cur_kind() in ("file", "ns", "class"):
                name_toks, lp = _function_header(stmt)
                if name_toks is not None:
                    rp = _match_paren(stmt, lp)
                    short = name_toks[-1].text
                    qual = _join(name_toks).replace(" ", "")
                    prefix = ns_prefix()
                    if prefix and "::" not in qual:
                        qual = prefix + "::" + qual
                    owner = cur_class()
                    cls_name = owner.name if owner is not None else ""
                    if owner is None and "::" in qual:
                        # Out-of-class definition Engine::f — attribute
                        # to the class named right before the last ::.
                        parts = qual.split("::")
                        if len(parts) >= 2:
                            cls_name = parts[-2]
                    fnm = FunctionModel(short=short, qualified=qual,
                                        cls=cls_name, path=path,
                                        line=t.line)
                    for s in stmt:
                        if s.kind == "id" and s.text in ANNOTATION_MACROS:
                            fnm.annotations.add(ANNOTATION_MACROS[s.text])
                    role = _role_for(model, stmt, t.line)
                    if role:
                        fnm.annotations.add(role)
                    fnm.params = _param_names(stmt, lp, rp)
                    model.functions.append(fnm)
                    if owner is not None:
                        owner.methods[short] = fnm.annotations
                        owner.method_returns[short] = _join(stmt[:max(
                            0, lp - len(name_toks))])
                    frame = {"kind": "fn", "name": short, "obj": fnm}
            stack.append(frame)
            stmt_start = i + 1
        elif x == "}":
            if stack:
                stack.pop()
            stmt_start = i + 1
        elif x == ";":
            stmt = tokens[stmt_start:i]
            owner = cur_class()
            if owner is not None and cur_fn() is None:
                _class_member(owner, model, stmt)
            elif cur_fn() is not None:
                _fn_statement(cur_fn(), stmt)
            stmt_start = i + 1
        i += 1

    # Second pass: call sites and range-fors per function body. Re-walk
    # with the same scope logic was already done; cheaper: functions
    # recorded their token spans implicitly — instead, attribute calls by
    # re-scanning with a lightweight frame tracker.
    _attach_calls(model)
    return model


def _role_for(model, stmt, brace_line):
    """Role from a `// simlint: role(x)` directive adjacent to the
    function header (any line from the header start to the brace)."""
    first = stmt[0].line if stmt else brace_line
    for ln in range(first - 1, brace_line + 1):
        if ln in model.roles:
            return model.roles[ln]
    return None


def _class_member(cls, model, stmt):
    """Records a class-scope declaration statement."""
    words = [s.text for s in stmt if s.kind == "id"]
    if not words:
        return
    for idx, s in enumerate(stmt):
        if s.kind == "id" and s.text in TS_REF_MACROS:
            # SIMANY_GUARDED_BY(mu) — record the referenced idents.
            if idx + 1 < len(stmt) and stmt[idx + 1].text == "(":
                rp = _match_paren(stmt, idx + 1)
                for a in stmt[idx + 2:rp]:
                    if a.kind == "id":
                        cls.ts_refs.add(a.text)
    has_paren = any(s.text == "(" for s in stmt)
    if has_paren and "=" not in [s.text for s in stmt]:
        # Method declaration (no body) — record annotations + return.
        name_toks, lp = _function_header(stmt)
        if name_toks is not None:
            short = name_toks[-1].text
            anns = {ANNOTATION_MACROS[w] for w in words
                    if w in ANNOTATION_MACROS}
            cls.methods.setdefault(short, set()).update(anns)
            cls.method_returns.setdefault(short, _join(
                stmt[:max(0, lp - len(name_toks))]))
            role = _role_for(model, stmt, stmt[-1].line)
            if role:
                cls.methods[short].add(role)
        return
    # Data member: TYPE NAME [= init] ;  (possibly TYPE NAME{init}).
    cut = len(stmt)
    for i, s in enumerate(stmt):
        if s.text in ("=", "{"):
            cut = i
            break
    decl = stmt[:cut]
    ids = [s for s in decl if s.kind == "id" and s.text not in KEYWORDS
           and s.text not in ANNOTATION_MACROS
           and s.text not in TS_REF_MACROS]
    if len(ids) >= 2:
        name = ids[-1].text
        type_text = _join(decl[:-1]) if decl and decl[-1].kind == "id" \
            else _join(decl)
        cls.members[name] = type_text
        if re.search(r"\bmutex\b", type_text) and "lock_guard" not in \
                type_text and "unique_lock" not in type_text:
            cls.mutex_members[name] = decl[0].line


def _fn_statement(fn, stmt):
    """Records local declarations of interest inside a function body."""
    # `auto[&] name = expr;` — keep the initializer text for type-ish
    # resolution (e.g. `auto& mb = mailbox(src, id)`).
    words = [s.text for s in stmt]
    if not stmt:
        return
    eq = words.index("=") if "=" in words else -1
    decl = stmt[:eq] if eq != -1 else stmt
    ids = [s for s in decl if s.kind == "id" and s.text not in KEYWORDS]
    if len(ids) >= 1 and eq != -1 and stmt[0].text == "auto":
        name = ids[-1].text
        fn.locals[name] = _join(stmt[eq + 1:])
        return
    if len(ids) >= 2 and all(s.kind in ("id", "punct") for s in decl):
        # Plausible `Type name;` / `Type name = init;` declaration.
        bad = any(s.text in ("(", ")", "[", "]", "return", "throw")
                  for s in decl[:-1] if s is not decl[-1])
        if not bad and decl[-1].kind == "id":
            fn.locals[decl[-1].text] = _join(decl[:-1])


def _attach_calls(model):
    """Third pass: walk tokens again tracking which function body we are
    inside (by brace depth replay) and record call sites + range-fors."""
    tokens = model.tokens
    # Rebuild the frame walk exactly as scan() did, but only to know the
    # active FunctionModel at each token index.
    stack = []
    stmt_start = 0
    active = []  # parallel array: function model at token i (or None)
    cur = None

    def innermost_fn():
        for frame in reversed(stack):
            if frame[0] == "fn":
                return frame[1]
            if frame[0] == "class":
                return None
        return None

    n = len(tokens)
    i = 0
    while i < n:
        x = tokens[i].text
        if x == "{":
            stmt = tokens[stmt_start:i]
            kind = "block"
            obj = None
            words = [s.text for s in stmt if s.kind == "id"]
            fn = innermost_fn()
            line = tokens[i].line
            if fn is not None:
                if any(s.text == "[" for s in stmt) and len(words) >= 2 \
                        and words[0] == "auto" and "=" in \
                        [s.text for s in stmt]:
                    obj = _find_fn(model, fn.qualified + "::" + words[1],
                                   line)
                    kind = "fn" if obj is not None else "block"
            elif "namespace" in words:
                kind = "ns"
            elif words and (words[0] == "enum"
                            or ("enum" in words[:2])):
                kind = "enum"
            elif any(w in ("class", "struct", "union") for w in words) \
                    and "(" not in [s.text for s in stmt]:
                kind = "class"
            else:
                name_toks, _lp = _function_header(stmt)
                if name_toks is not None:
                    obj = _find_fn_by_line(model, line)
                    kind = "fn" if obj is not None else "block"
            stack.append((kind, obj))
            stmt_start = i + 1
        elif x == "}":
            if stack:
                stack.pop()
            stmt_start = i + 1
        elif x == ";":
            stmt_start = i + 1
        active.append(innermost_fn())
        i += 1
    # active[] was appended after push/pop handling; re-walk for calls.
    for i in range(n):
        fn = active[i]
        if fn is None:
            continue
        t = tokens[i]
        if t.kind == "id" and i + 1 < n and tokens[i + 1].text == "(":
            if t.text in KEYWORDS:
                if t.text == "for":
                    rf = _range_for(tokens, i)
                    if rf is not None:
                        fn.range_fors.append(rf)
                        # The loop variable is a local whose "type" is
                        # the range expression (`for (auto& mb : mail_)`
                        # gives mb the resolvable pseudo-type `mail_`).
                        ids = [s for s in rf.decl_tokens
                               if s.kind == "id" and s.text not in KEYWORDS]
                        if ids:
                            fn.locals[ids[-1].text] = _join(rf.range_tokens)
                continue
            prev = tokens[i - 1] if i > 0 else None
            receiver = ""
            receiver_op = ""
            qualifier = ""
            if prev is not None and prev.text in (".", "->"):
                receiver_op = prev.text
                receiver = _receiver_base(tokens, i - 2)
            elif prev is not None and prev.text == "::":
                receiver_op = "::"
                j = i - 2
                quals = []
                while j >= 0 and tokens[j].kind == "id":
                    quals.insert(0, tokens[j].text)
                    j -= 1
                    if j >= 0 and tokens[j].text == "::":
                        j -= 1
                    else:
                        break
                qualifier = "::".join(quals)
            fn.calls.append(CallSite(name=t.text, line=t.line,
                                     receiver=receiver,
                                     receiver_op=receiver_op,
                                     qualifier=qualifier))


def _find_fn(model, qualified, line):
    for f in model.functions:
        if f.qualified == qualified and abs(f.line - line) <= 1:
            return f
    for f in model.functions:
        if f.qualified == qualified:
            return f
    return None


def _find_fn_by_line(model, line):
    for f in model.functions:
        if f.line == line:
            return f
    return None


def _receiver_base(tokens, i):
    """Base identifier of the receiver expression ending at index i
    (the token before '.'/'->'): `e` for `e.f(`, `mailbox` for
    `mailbox(a,b).f(`, `sh` for `sh.stats.f(` (outermost base)."""
    if i < 0:
        return ""
    t = tokens[i]
    if t.text == ")":
        depth = 0
        j = i
        while j >= 0:
            if tokens[j].text == ")":
                depth += 1
            elif tokens[j].text == "(":
                depth -= 1
                if depth == 0:
                    break
            j -= 1
        if j > 0 and tokens[j - 1].kind == "id":
            return tokens[j - 1].text + "()"
        return ""
    if t.text == "]":
        depth = 0
        j = i
        while j >= 0:
            if tokens[j].text == "]":
                depth += 1
            elif tokens[j].text == "[":
                depth -= 1
                if depth == 0:
                    break
            j -= 1
        if j > 0 and tokens[j - 1].kind == "id":
            return tokens[j - 1].text
        return ""
    if t.kind == "id":
        # Walk left through a member chain to the outermost base.
        base = t.text
        j = i - 1
        while j >= 1 and tokens[j].text in (".", "->") and \
                tokens[j - 1].kind == "id":
            base = tokens[j - 1].text
            j -= 2
        return base
    return ""


def _range_for(tokens, i):
    """RangeFor when tokens[i] == 'for' opens a range-based for."""
    lp = i + 1
    rp = _match_paren(tokens, lp)
    colon = -1
    depth = 0
    for j in range(lp + 1, rp):
        x = tokens[j].text
        if x in ("(", "<", "["):
            depth += 1
        elif x in (")", ">", "]"):
            depth -= 1
        elif x == ":" and depth == 0:
            colon = j
            break
    if colon == -1:
        return None
    return RangeFor(line=tokens[i].line, range_tokens=tokens[colon + 1:rp],
                    decl_tokens=tokens[lp + 1:colon])


def parse_file(path, text=None):
    if text is None:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    model = lex(text, path)
    scan(model)
    return model
