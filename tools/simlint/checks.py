"""simlint rules over the merged project model.

Every rule errs toward silence: a finding requires either an explicit
annotation being contradicted or a banned token appearing outright.
Unresolvable receivers/overloads produce no edges and no findings, so
the clean-tree zero-false-positive guarantee does not depend on the
heuristic frontend being a full C++ parser.

Rules (ids are stable: baselines and inline allows key on them):
  phase-serial-escape   SIMANY_SERIAL_ONLY function reachable from a
                        SIMANY_WORKER_PHASE root through the call graph
  mailbox-side          a function annotated as one SPSC mailbox side
                        touches the other side's methods, or seals
                        outside the serial phase
  mailbox-double-side   one (non-serial) function touches both mailbox
                        ends
  det-wall-clock        wall-clock source in engine code
  det-libc-rand         rand()/srand()/std::random_device in engine code
  det-unordered-iter    range-for over an unordered container
  det-thread-local      thread_local in engine code
  det-mutex-unannotated member std::mutex with no SIMANY_GUARDED_BY /
                        SIMANY_REQUIRES/... referencing it
  io-unchecked-write    a function-local ofstream is written but its
                        failure state is never consulted (route artifact
                        writes through io/atomic_write.h or
                        recover::write_artifact, or check the stream)
"""

import hashlib
import re
from dataclasses import dataclass

from cpp_model import _join

WALL_CLOCK_IDENTS = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday", "clock_gettime", "timespec_get", "ftime", "utimes",
}

LIBC_RAND_IDENTS = {"rand", "srand", "random_device", "random_shuffle",
                    "rand_r", "drand48", "lrand48"}

UNORDERED_MARKERS = ("unordered_map", "unordered_set", "unordered_multimap",
                     "unordered_multiset")

# Stream-state accessors that count as consulting an ofstream's failure
# state. flush() deliberately does not: flushing without looking at the
# result is exactly the silent-loss pattern the rule exists to catch.
IO_CHECK_METHODS = {"good", "fail", "bad", "is_open", "rdstate",
                    "exceptions"}

# Method spellings of a stream write (operator<< is caught at the token
# level).
IO_WRITE_METHODS = {"write", "put"}

# Mailbox API surface: only SpscMailbox uses exactly these names in-tree
# (the deques/inboxes use push_back/pop_front), so a match against a
# mailbox-typed receiver is unambiguous.
PRODUCER_METHODS = {"push"}
CONSUMER_METHODS = {"pop"}
BARRIER_METHODS = {"seal"}


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str
    symbol: str = ""  # stable context for baseline fingerprints

    def fingerprint(self):
        """Line-number-independent identity, so baselines survive
        unrelated edits above the finding."""
        h = hashlib.sha1()
        h.update(f"{self.rule}|{self.path}|{self.symbol}".encode())
        return h.hexdigest()[:16]

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Project:
    """Merged view over per-file models."""

    def __init__(self, file_models):
        self.files = file_models
        self.by_path = {m.path: m for m in file_models}
        # Class tables merged by short name across files (Engine is
        # declared in engine.h, defined in engine.cpp).
        self.classes = {}
        for m in file_models:
            for name, cls in m.classes.items():
                into = self.classes.setdefault(name, [])
                into.append(cls)
        # Function index: short name -> [FunctionModel].
        self.functions = []
        self.by_short = {}
        for m in file_models:
            for f in m.functions:
                self.functions.append(f)
                self.by_short.setdefault(f.short, []).append(f)

    # -- class/annotation lookups ------------------------------------

    def class_method_annotations(self, cls_name, method):
        anns = set()
        for cls in self.classes.get(cls_name, []):
            anns |= cls.methods.get(method, set())
        return anns

    def effective_annotations(self, fn):
        """A definition inherits annotations from its declaration
        (engine.h carries the macro, engine.cpp the body)."""
        anns = set(fn.annotations)
        if fn.cls:
            anns |= self.class_method_annotations(fn.cls, fn.short)
        return anns

    def member_type(self, cls_name, member):
        for cls in self.classes.get(cls_name, []):
            t = cls.members.get(member)
            if t is not None:
                return t
        return None

    def method_return(self, cls_name, method):
        for cls in self.classes.get(cls_name, []):
            t = cls.method_returns.get(method)
            if t is not None:
                return t
        return None

    def any_member_type(self, member):
        """Member type when the name resolves identically in every class
        that declares it; None when absent or conflicting (conservative:
        a name like `cells` that is unordered in one class and a vector
        in another must not be resolved by name alone)."""
        found = []
        for classes in self.classes.values():
            for cls in classes:
                t = cls.members.get(member)
                if t is not None:
                    found.append(t)
        if not found:
            return None
        unordered = [any(u in t for u in UNORDERED_MARKERS) for t in found]
        if all(unordered) or not any(unordered):
            return found[0]
        return None

    # -- type resolution ----------------------------------------------

    def _return_type(self, ctx_cls, fname):
        """Return-type text of a function callable as `fname(...)` from
        a method of `ctx_cls` (own class first, then any unambiguous
        project-wide method/function of that name)."""
        if ctx_cls:
            r = self.method_return(ctx_cls, fname)
            if r:
                return r
        returns = set()
        for classes in self.classes.values():
            for cls in classes:
                r = cls.method_returns.get(fname)
                if r:
                    returns.add(r)
        if len(returns) == 1:
            return next(iter(returns))
        return ""

    def _class_in_type(self, type_text):
        """First known class named (word-boundary) in a type string."""
        if not type_text:
            return ""
        best = ""
        best_pos = len(type_text) + 1
        for name in self.classes:
            if not name:
                continue
            m = re.search(rf"\b{re.escape(name)}\b", type_text)
            if m and m.start() < best_pos:
                best = name
                best_pos = m.start()
        return best

    def type_of_expr(self, fn, text, depth=0):
        """Best-effort textual type of an expression: walks the member
        chain through locals, params, enclosing-class members and
        function return types. Returns "" when unknown (never guesses).
        """
        if depth > 5 or not text:
            return ""
        text = text.strip()
        if "SpscMailbox" in text or any(u in text for u in
                                        UNORDERED_MARKERS):
            return text
        parts = [p.strip() for p in re.split(r"\.|->", text) if p.strip()]
        if not parts:
            return ""
        head = parts[0]
        if "(" in head:
            fname = head.split("(")[0].split("::")[-1].strip()
            cur = self._return_type(fn.cls, fname)
        else:
            base = head.split("[")[0].strip().lstrip("*&( ").strip()
            if not base.isidentifier():
                return ""
            declared = ""
            if base in fn.locals:
                declared = fn.locals[base]
            elif base in fn.params:
                declared = fn.params[base]
            elif fn.cls:
                declared = self.member_type(fn.cls, base) or ""
            if not declared:
                return ""
            # `auto` locals store their initializer expression; typed
            # declarations store a type. A string naming a known class
            # or container is already a type; otherwise resolve it as
            # an expression.
            if self._class_in_type(declared) or \
                    any(u in declared for u in UNORDERED_MARKERS):
                cur = declared
            else:
                cur = self.type_of_expr(fn, declared, depth + 1)
        for member in parts[1:]:
            if not cur:
                return ""
            mname = member.split("(")[0].split("[")[0].strip()
            cls = self._class_in_type(cur)
            if not cls or not mname.isidentifier():
                return ""
            if "(" in member:
                cur = self.method_return(cls, mname) or ""
            else:
                cur = self.member_type(cls, mname) or ""
        return cur or ""

    def resolve_receiver_class(self, fn, call):
        """Class short name for a method call's receiver, or ""."""
        recv = call.receiver
        if not recv:
            return fn.cls  # unqualified member call context
        if recv.endswith("()"):
            return self._class_in_type(
                self._return_type(fn.cls, recv[:-2]))
        return self._class_in_type(self.type_of_expr(fn, recv))

    def is_mailbox_receiver(self, fn, call):
        """True when the receiver of `call` is an SPSC mailbox."""
        recv = call.receiver
        if not recv:
            return False
        if recv.endswith("()"):
            return "SpscMailbox" in self._return_type(fn.cls, recv[:-2])
        return "SpscMailbox" in self.type_of_expr(fn, recv)


def _file_of(project, fn):
    return project.by_path[fn.path]


# ---------------------------------------------------------------------
# Rule: phase-serial-escape
# ---------------------------------------------------------------------

def _call_edges(project, fn):
    """[(callee FunctionModel, CallSite)] resolved conservatively."""
    edges = []
    for call in fn.calls:
        if call.receiver_op in (".", "->"):
            cls = project.resolve_receiver_class(fn, call)
            if not cls:
                continue
            for cand in project.by_short.get(call.name, []):
                if cand.cls == cls:
                    edges.append((cand, call))
        elif call.receiver_op == "::":
            qual_cls = call.qualifier.split("::")[-1] if call.qualifier \
                else ""
            for cand in project.by_short.get(call.name, []):
                if qual_cls and cand.cls == qual_cls:
                    edges.append((cand, call))
        else:
            cands = project.by_short.get(call.name, [])
            same_class = [c for c in cands if fn.cls and c.cls == fn.cls]
            if same_class:
                for cand in same_class:
                    edges.append((cand, call))
            elif len({(c.qualified, c.cls) for c in cands}) == 1:
                edges.append((cands[0], call))
    return edges


def check_phase(project):
    findings = []
    roots = [f for f in project.functions
             if "worker_phase" in project.effective_annotations(f)]
    for root in roots:
        # BFS over resolved call edges; serial-only nodes are findings,
        # not traversal states.
        seen = {id(root)}
        frontier = [(root, [])]
        while frontier:
            fn, chain = frontier.pop()
            for callee, call in _call_edges(project, fn):
                anns = project.effective_annotations(callee)
                if "serial_only" in anns:
                    fm = _file_of(project, fn)
                    if fm.allowed("phase-serial-escape", call.line) or \
                            fm.allowed("phase", call.line):
                        continue
                    path_str = " -> ".join(
                        [root.qualified] + chain + [callee.qualified])
                    findings.append(Finding(
                        rule="phase-serial-escape",
                        path=fn.path, line=call.line,
                        symbol=f"{root.qualified}->{callee.qualified}",
                        message=(
                            f"serial-only '{callee.qualified}' is "
                            f"reachable from worker-phase root "
                            f"'{root.qualified}' (call path: {path_str})")))
                    continue
                if id(callee) in seen:
                    continue
                seen.add(id(callee))
                frontier.append((callee, chain + [callee.qualified]))
    return findings


# ---------------------------------------------------------------------
# Rules: mailbox-side / mailbox-double-side
# ---------------------------------------------------------------------

def check_mailbox(project):
    findings = []
    for fn in project.functions:
        anns = project.effective_annotations(fn)
        if "serial_only" in anns:
            continue  # the barrier owns both ends (workers are parked)
        produced = []
        consumed = []
        sealed = []
        for call in fn.calls:
            if call.receiver_op not in (".", "->"):
                continue
            if call.name in PRODUCER_METHODS | CONSUMER_METHODS | \
                    BARRIER_METHODS and \
                    project.is_mailbox_receiver(fn, call):
                if call.name in PRODUCER_METHODS:
                    produced.append(call)
                elif call.name in CONSUMER_METHODS:
                    consumed.append(call)
                else:
                    sealed.append(call)
        if not (produced or consumed or sealed):
            continue
        fm = _file_of(project, fn)

        def emit(rule, call, msg):
            if fm.allowed(rule, call.line) or fm.allowed("mailbox",
                                                        call.line):
                return
            findings.append(Finding(rule=rule, path=fn.path,
                                    line=call.line,
                                    symbol=f"{fn.qualified}:{call.name}",
                                    message=msg))

        if "mailbox_producer" in anns:
            for call in consumed:
                emit("mailbox-side", call,
                     f"'{fn.qualified}' is annotated "
                     f"SIMANY_MAILBOX_PRODUCER but pops a mailbox")
            for call in sealed:
                emit("mailbox-side", call,
                     f"'{fn.qualified}' is annotated "
                     f"SIMANY_MAILBOX_PRODUCER but seals a mailbox "
                     f"(seal is barrier-only)")
        elif "mailbox_consumer" in anns:
            for call in produced:
                emit("mailbox-side", call,
                     f"'{fn.qualified}' is annotated "
                     f"SIMANY_MAILBOX_CONSUMER but pushes to a mailbox")
            for call in sealed:
                emit("mailbox-side", call,
                     f"'{fn.qualified}' is annotated "
                     f"SIMANY_MAILBOX_CONSUMER but seals a mailbox "
                     f"(seal is barrier-only)")
        else:
            if produced and consumed:
                emit("mailbox-double-side", consumed[0],
                     f"'{fn.qualified}' touches both mailbox ends "
                     f"(push at line {produced[0].line}, pop at line "
                     f"{consumed[0].line}) without being serial-only")
            for call in sealed:
                emit("mailbox-side", call,
                     f"'{fn.qualified}' seals a mailbox but is not "
                     f"SIMANY_SERIAL_ONLY (seal is barrier-only)")
    return findings


# ---------------------------------------------------------------------
# Determinism rules (token level)
# ---------------------------------------------------------------------

def _det_scope(model, path, config):
    rel = path
    for prefix, _reason in config.get("det_exempt_paths", {}).items():
        if rel.startswith(prefix):
            return False
    return True


def check_determinism_tokens(model, config):
    """Token-level bans in one file (already filtered to engine scope)."""
    findings = []
    tokens = model.tokens
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "id":
            continue
        prev = tokens[i - 1] if i > 0 else None
        if t.text in WALL_CLOCK_IDENTS:
            if not model.allowed("det-wall-clock", t.line):
                findings.append(Finding(
                    rule="det-wall-clock", path=model.path, line=t.line,
                    symbol=t.text,
                    message=(f"wall-clock source '{t.text}' in engine "
                             f"code (results must be a pure function of "
                             f"config, seed and workload)")))
        elif t.text in LIBC_RAND_IDENTS:
            # Method calls named `rand` (obj.rand()) and qualified names
            # other than std:: are someone else's API, not libc.
            if prev is not None and prev.text in (".", "->"):
                continue
            if prev is not None and prev.text == "::":
                qual = tokens[i - 2].text if i >= 2 else ""
                if qual != "std":
                    continue
            if i + 1 < n and tokens[i + 1].text != "(" and \
                    t.text in ("rand", "srand", "rand_r"):
                continue  # an identifier merely named rand
            if not model.allowed("det-libc-rand", t.line):
                findings.append(Finding(
                    rule="det-libc-rand", path=model.path, line=t.line,
                    symbol=t.text,
                    message=(f"unseeded randomness source '{t.text}' in "
                             f"engine code (use core/rng.h streams "
                             f"derived from the config seed)")))
        elif t.text == "thread_local":
            if not model.allowed("det-thread-local", t.line):
                findings.append(Finding(
                    rule="det-thread-local", path=model.path, line=t.line,
                    symbol=f"thread_local@{_next_ident(tokens, i)}",
                    message=("thread_local in engine code: fiber-resident "
                             "state must not depend on which host thread "
                             "resumes the fiber")))
    return findings


def _next_ident(tokens, i):
    for t in tokens[i + 1:i + 8]:
        if t.kind == "id" and t.text not in KEYWORD_TYPEISH:
            return t.text
    return "?"


KEYWORD_TYPEISH = {"static", "std", "const", "constexpr", "auto", "vector",
                   "pair", "uint32_t", "uint64_t", "size_t", "int"}


def check_unordered_iteration(project, model):
    findings = []
    for fn in model.functions:
        for rf in fn.range_fors:
            text = _join(rf.range_tokens)
            flagged = any(u in text for u in UNORDERED_MARKERS)
            symbol = text
            if not flagged:
                t = project.type_of_expr(fn, text)
                if t and any(u in t for u in UNORDERED_MARKERS):
                    flagged = True
            if flagged and not model.allowed("det-unordered-iter",
                                             rf.line):
                findings.append(Finding(
                    rule="det-unordered-iter", path=model.path,
                    line=rf.line, symbol=f"{fn.qualified}:{symbol}",
                    message=(f"range-for over unordered container "
                             f"'{text}' in '{fn.qualified}': iteration "
                             f"order is pointer/hash dependent; sort "
                             f"keys first or use an ordered container "
                             f"(allow with // simlint: "
                             f"allow(det-unordered-iter) if the loop is "
                             f"order-independent)")))
    return findings


def check_mutex_annotations(model):
    findings = []
    for cls in model.classes.values():
        for name, line in cls.mutex_members.items():
            if name in cls.ts_refs:
                continue
            if model.allowed("det-mutex-unannotated", line):
                continue
            findings.append(Finding(
                rule="det-mutex-unannotated", path=model.path, line=line,
                symbol=f"{cls.name}::{name}",
                message=(f"member mutex '{cls.name}::{name}' has no "
                         f"SIMANY_GUARDED_BY/SIMANY_REQUIRES annotation "
                         f"naming it: the lock discipline is invisible "
                         f"to -Wthread-safety")))
    return findings


# ---------------------------------------------------------------------
# Rule: io-unchecked-write
# ---------------------------------------------------------------------

def _io_scope(model, config):
    rel = model.path
    for inc in config.get("io_include_paths", []):
        if rel.startswith(inc):
            return True
    for prefix in config.get("io_exempt_paths", {}):
        if rel.startswith(prefix):
            return False
    return True


def check_io_unchecked_write(model):
    """A function-local ofstream written with << (or .write/.put) whose
    failure state is never consulted in the same function. A stream
    passed by name into another call escapes the function's ownership
    and is skipped (err toward silence): the callee may own the failure
    handling. Declarations are found at the token level (`ofstream NAME`)
    because constructor-style locals never reach fn.locals; a reference
    parameter (`ofstream& sink`) does not match — the caller owns it."""
    findings = []
    fns = sorted(model.functions, key=lambda f: f.line)
    for idx, fn in enumerate(fns):
        end = fns[idx + 1].line if idx + 1 < len(fns) else float("inf")
        toks = [t for t in model.tokens if fn.line <= t.line < end]
        streams = []
        for i, t in enumerate(toks):
            if t.kind == "id" and t.text == "ofstream" and \
                    i + 1 < len(toks) and toks[i + 1].kind == "id":
                streams.append(toks[i + 1].text)
        for name in sorted(set(streams)):
            first_write = None
            checked = False
            escaped = False
            for i, t in enumerate(toks):
                if t.kind != "id" or t.text != name:
                    continue
                prv = toks[i - 1] if i > 0 else None
                nxt = toks[i + 1] if i + 1 < len(toks) else None
                if prv is not None and prv.text in (".", "->", "::"):
                    continue  # someone else's member sharing the name
                # The lexer splits "<<" into two "<" tokens.
                if nxt is not None and nxt.text in ("<<", "<") and \
                        (nxt.text == "<<" or
                         (i + 2 < len(toks) and toks[i + 2].text == "<")):
                    if first_write is None:
                        first_write = t
                    continue
                if nxt is not None and nxt.text in (".", "->"):
                    mname = toks[i + 2].text if i + 2 < len(toks) else ""
                    if mname in IO_CHECK_METHODS:
                        checked = True
                    elif mname in IO_WRITE_METHODS and first_write is None:
                        first_write = t
                    continue
                if prv is not None and prv.text == "!":
                    checked = True  # if (!out) ...
                    continue
                if prv is not None and prv.text == "(" and i >= 2 and \
                        toks[i - 2].text in ("if", "while"):
                    checked = True  # bool conversion as a condition
                    continue
                if (prv is not None and prv.text in ("(", ",")) or \
                        (nxt is not None and nxt.text in (",", ")")):
                    escaped = True
            if first_write is None or checked or escaped:
                continue
            if model.allowed("io-unchecked-write", first_write.line) or \
                    model.allowed("io-unchecked-write", fn.line):
                continue
            findings.append(Finding(
                rule="io-unchecked-write", path=model.path,
                line=first_write.line, symbol=f"{fn.qualified}:{name}",
                message=(
                    f"'{fn.qualified}' writes to ofstream '{name}' but "
                    f"never consults its failure state: a full disk "
                    f"becomes silent data loss (route artifact writes "
                    f"through io/atomic_write.h or "
                    f"recover::write_artifact, or check the stream)")))
    return findings


def run_all(project, config):
    findings = []
    findings += check_phase(project)
    findings += check_mailbox(project)
    for model in project.files:
        findings += check_mutex_annotations(model)
        if _det_scope(model, model.path, config):
            findings += check_determinism_tokens(model, config)
            findings += check_unordered_iteration(project, model)
        if _io_scope(model, config):
            findings += check_io_unchecked_write(model)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
