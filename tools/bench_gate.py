#!/usr/bin/env python3
"""Fail when a benchmark run regresses versus a committed baseline.

Two input formats:

  --mode micro   google-benchmark JSON (BENCH_micro.json). Per-benchmark
                 real_time is normalized by a reference benchmark from
                 the same file (default BM_CostModelBlock) so the
                 comparison is insensitive to absolute machine speed;
                 counters (e.g. inbox_heap_allocs_per_run) are compared
                 directly because they are machine-independent.
  --mode fig07   fig07_simtime --json output (BENCH_fig07.json). The
                 metric is simulation wall time over native wall time on
                 the same host, which already cancels machine speed; the
                 gate compares each series' geometric mean.

Exit status (uniform across tools/, see docs/static_analysis.md):
  0  all metrics within threshold
  1  findings: a metric regressed more than --threshold (default 15%)
  2  usage / input error (unreadable current run, missing reference)
New benchmarks (absent from the baseline) pass; benchmarks that
disappeared fail, so a rename forces a baseline update.
"""

import argparse
import json
import math
import sys


def die_usage(msg):
    print(f"bench_gate: error: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path, role):
    """Parsed JSON, or None (with a warning) when a *baseline* is
    absent or unreadable — a fresh branch has no baseline yet and must
    not crash the gate. A missing *current* run means the benchmarks
    never ran: that is always a hard error."""
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        if role == "baseline":
            print(f"warning: baseline {path} unusable ({e}); "
                  "skipping gate", file=sys.stderr)
            return None
        die_usage(f"current run {path} unusable: {e}")


class Gate:
    def __init__(self, threshold):
        self.threshold = threshold
        self.failures = []
        self.lines = []

    def check(self, name, base, cur):
        """Higher is worse; both must be >= 0."""
        if base <= 0.0:
            worse = cur > 0.0
            ratio = math.inf if worse else 1.0
        else:
            ratio = cur / base
            worse = ratio > 1.0 + self.threshold
        flag = "FAIL" if worse else "ok"
        delta = f" ({ratio - 1.0:+.1%} vs baseline)" if ratio != math.inf else ""
        self.lines.append(
            f"  {flag:4s} {name}: baseline {base:.4g}, current {cur:.4g}"
            + delta)
        if worse:
            self.failures.append(name)

    def report(self, label):
        print(f"bench gate [{label}] (threshold +{self.threshold:.0%}):")
        for line in self.lines:
            print(line)
        if self.failures:
            print(f"REGRESSION: {len(self.failures)} metric(s) regressed: "
                  + ", ".join(self.failures))
            return 1
        print("all metrics within threshold")
        return 0


def micro_metrics(doc, reference, role):
    """{name: normalized_time} and {name/counter: value} maps."""
    times = {}
    counters = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        # Entries without a name or timing are malformed; a crash here
        # would hide every healthy metric in the same file.
        if "name" not in b or "real_time" not in b:
            print(f"warning: {role} entry missing name/real_time, "
                  f"skipped: {b}", file=sys.stderr)
            continue
        times[b["name"]] = float(b["real_time"])
        for key, val in b.items():
            if key in ("inbox_heap_allocs_per_run", "host_rounds_per_run",
                       "obs_events_per_run"):
                counters[f"{b['name']}/{key}"] = float(val)
    ref = times.get(reference)
    if ref is None or ref <= 0.0:
        if role == "baseline":
            print(f"warning: reference benchmark '{reference}' missing "
                  "from baseline; skipping gate", file=sys.stderr)
            return None, None
        die_usage(f"reference benchmark '{reference}' missing from run")
    normalized = {n: t / ref for n, t in times.items() if n != reference}
    return normalized, counters


def gate_micro(args):
    base_doc = load(args.baseline, "baseline")
    if base_doc is None:
        return 0
    base_norm, base_ctr = micro_metrics(base_doc, args.reference, "baseline")
    if base_norm is None:
        return 0
    cur_norm, cur_ctr = micro_metrics(load(args.current, "current"),
                                      args.reference, "current")
    gate = Gate(args.threshold)
    for name, base in sorted(base_norm.items()):
        if name not in cur_norm:
            gate.failures.append(name)
            gate.lines.append(f"  FAIL {name}: missing from current run")
            continue
        gate.check(name, base, cur_norm[name])
    for name, base in sorted(base_ctr.items()):
        if name in cur_ctr:
            gate.check(name, base, cur_ctr[name])
    return gate.report("micro")


def fig07_series(doc, role):
    out = {}
    series = doc.get("table", {}).get("series")
    if not series:
        print(f"warning: {role} has no table.series data", file=sys.stderr)
        return out
    for s in series:
        if "name" not in s or "y" not in s:
            print(f"warning: {role} series missing name/y, skipped: {s}",
                  file=sys.stderr)
            continue
        ys = [y for y in s["y"] if y > 0.0]
        if ys:
            out[s["name"]] = math.exp(sum(math.log(y) for y in ys) / len(ys))
    return out


def gate_fig07(args):
    base_doc = load(args.baseline, "baseline")
    if base_doc is None:
        return 0
    base = fig07_series(base_doc, "baseline")
    if not base:
        print("warning: baseline holds no usable series; skipping gate",
              file=sys.stderr)
        return 0
    cur = fig07_series(load(args.current, "current"), "current")
    gate = Gate(args.threshold)
    for name, b in sorted(base.items()):
        if name not in cur:
            gate.failures.append(name)
            gate.lines.append(f"  FAIL {name}: missing from current run")
            continue
        gate.check(name, b, cur[name])
    return gate.report("fig07")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--mode", choices=["micro", "fig07"], required=True)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--threshold", type=float, default=0.15)
    ap.add_argument("--reference", default="BM_CostModelBlock",
                    help="micro mode: benchmark used as the machine-speed "
                         "yardstick")
    args = ap.parse_args()
    if args.mode == "micro":
        sys.exit(gate_micro(args))
    sys.exit(gate_fig07(args))


if __name__ == "__main__":
    main()
