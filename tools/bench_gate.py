#!/usr/bin/env python3
"""Fail when a benchmark run regresses versus a committed baseline.

Two input formats:

  --mode micro   google-benchmark JSON (BENCH_micro.json). Per-benchmark
                 real_time is normalized by a reference benchmark from
                 the same file (default BM_CostModelBlock) so the
                 comparison is insensitive to absolute machine speed;
                 counters (e.g. inbox_heap_allocs_per_run) are compared
                 directly because they are machine-independent.
  --mode fig07   fig07_simtime --json output (BENCH_fig07.json). The
                 metric is simulation wall time over native wall time on
                 the same host, which already cancels machine speed; the
                 gate compares each series' geometric mean.

Exit status (uniform across tools/, see docs/static_analysis.md):
  0  all metrics within threshold
  1  findings: a metric regressed more than --threshold (default 15%)
  2  usage / input error (unreadable current run, missing reference)
New benchmarks (absent from the baseline) pass; benchmarks that
disappeared fail, so a rename forces a baseline update.
"""

import argparse
import json
import math
import sys


def die_usage(msg):
    print(f"bench_gate: error: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path, role):
    """Parsed JSON, or None (with a warning) when a *baseline* is
    absent or unreadable — a fresh branch has no baseline yet and must
    not crash the gate. A missing *current* run means the benchmarks
    never ran: that is always a hard error."""
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        if role == "baseline":
            print(f"warning: baseline {path} unusable ({e}); "
                  "skipping gate", file=sys.stderr)
            return None
        die_usage(f"current run {path} unusable: {e}")


class Gate:
    def __init__(self, threshold):
        self.threshold = threshold
        self.failures = []
        self.lines = []
        self.rows = []  # (name, base, cur, ratio, flag) for --report

    def check(self, name, base, cur):
        """Higher is worse; both must be >= 0."""
        if base <= 0.0:
            worse = cur > 0.0
            ratio = math.inf if worse else 1.0
        else:
            ratio = cur / base
            worse = ratio > 1.0 + self.threshold
        flag = "FAIL" if worse else "ok"
        delta = f" ({ratio - 1.0:+.1%} vs baseline)" if ratio != math.inf else ""
        self.lines.append(
            f"  {flag:4s} {name}: baseline {base:.4g}, current {cur:.4g}"
            + delta)
        self.rows.append((name, base, cur, ratio, flag))
        if worse:
            self.failures.append(name)

    def missing(self, name):
        self.failures.append(name)
        self.lines.append(f"  FAIL {name}: missing from current run")
        self.rows.append((name, None, None, None, "FAIL"))

    def report(self, label):
        print(f"bench gate [{label}] (threshold +{self.threshold:.0%}):")
        for line in self.lines:
            print(line)
        if self.failures:
            print(f"REGRESSION: {len(self.failures)} metric(s) regressed: "
                  + ", ".join(self.failures))
            return 1
        print("all metrics within threshold")
        return 0

    def write_report(self, path, label):
        """Markdown comparison table, one row per metric — the artifact
        CI uploads so before/after numbers survive the job logs."""
        with open(path, "w") as f:
            f.write(f"# bench gate report [{label}]\n\n")
            f.write(f"threshold: +{self.threshold:.0%}\n\n")
            f.write("| metric | baseline | current | delta | status |\n")
            f.write("|---|---|---|---|---|\n")
            for name, base, cur, ratio, flag in self.rows:
                if base is None:
                    f.write(f"| {name} | — | missing | — | {flag} |\n")
                    continue
                delta = ("n/a" if ratio is None or ratio == math.inf
                         else f"{ratio - 1.0:+.1%}")
                f.write(f"| {name} | {base:.4g} | {cur:.4g} "
                        f"| {delta} | {flag} |\n")
            if self.failures:
                f.write(f"\n**REGRESSION**: {len(self.failures)} "
                        "metric(s) regressed: "
                        + ", ".join(self.failures) + "\n")
            else:
                f.write("\nall metrics within threshold\n")


def write_skip_report(args, label, reason):
    """Even a skipped gate leaves an artifact saying why."""
    path = getattr(args, "report", None)
    if path:
        with open(path, "w") as f:
            f.write(f"# bench gate report [{label}]\n\n"
                    f"gate skipped: {reason}\n")


def micro_metrics(doc, reference, role):
    """{name: normalized_time} and {name/counter: value} maps."""
    times = {}
    counters = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        # Entries without a name or timing are malformed; a crash here
        # would hide every healthy metric in the same file.
        if "name" not in b or "real_time" not in b:
            print(f"warning: {role} entry missing name/real_time, "
                  f"skipped: {b}", file=sys.stderr)
            continue
        times[b["name"]] = float(b["real_time"])
        for key, val in b.items():
            if key in ("inbox_heap_allocs_per_run", "host_rounds_per_run",
                       "obs_events_per_run", "critpath_segments_per_run"):
                counters[f"{b['name']}/{key}"] = float(val)
    ref = times.get(reference)
    if ref is None or ref <= 0.0:
        if role == "baseline":
            print(f"warning: reference benchmark '{reference}' missing "
                  "from baseline; skipping gate", file=sys.stderr)
            return None, None
        die_usage(f"reference benchmark '{reference}' missing from run")
    normalized = {n: t / ref for n, t in times.items() if n != reference}
    return normalized, counters


def gate_micro(args):
    base_doc = load(args.baseline, "baseline")
    if base_doc is None:
        write_skip_report(args, "micro", "baseline unusable")
        return 0
    base_norm, base_ctr = micro_metrics(base_doc, args.reference, "baseline")
    if base_norm is None:
        write_skip_report(args, "micro", "reference missing from baseline")
        return 0
    cur_norm, cur_ctr = micro_metrics(load(args.current, "current"),
                                      args.reference, "current")
    gate = Gate(args.threshold)
    for name, base in sorted(base_norm.items()):
        if name not in cur_norm:
            gate.missing(name)
            continue
        gate.check(name, base, cur_norm[name])
    for name, base in sorted(base_ctr.items()):
        if name in cur_ctr:
            gate.check(name, base, cur_ctr[name])
    rc = gate.report("micro")
    if getattr(args, "report", None):
        gate.write_report(args.report, "micro")
    return rc


def fig07_series(doc, role):
    out = {}
    series = doc.get("table", {}).get("series")
    if not series:
        print(f"warning: {role} has no table.series data", file=sys.stderr)
        return out
    for s in series:
        if "name" not in s or "y" not in s:
            print(f"warning: {role} series missing name/y, skipped: {s}",
                  file=sys.stderr)
            continue
        ys = [y for y in s["y"] if y > 0.0]
        if ys:
            out[s["name"]] = math.exp(sum(math.log(y) for y in ys) / len(ys))
    return out


def gate_fig07(args):
    base_doc = load(args.baseline, "baseline")
    if base_doc is None:
        write_skip_report(args, "fig07", "baseline unusable")
        return 0
    base = fig07_series(base_doc, "baseline")
    if not base:
        print("warning: baseline holds no usable series; skipping gate",
              file=sys.stderr)
        write_skip_report(args, "fig07", "baseline holds no usable series")
        return 0
    cur = fig07_series(load(args.current, "current"), "current")
    gate = Gate(args.threshold)
    for name, b in sorted(base.items()):
        if name not in cur:
            gate.missing(name)
            continue
        gate.check(name, b, cur[name])
    rc = gate.report("fig07")
    if getattr(args, "report", None):
        gate.write_report(args.report, "fig07")
    return rc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--mode", choices=["micro", "fig07"], required=True)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--threshold", type=float, default=0.15)
    ap.add_argument("--reference", default="BM_CostModelBlock",
                    help="micro mode: benchmark used as the machine-speed "
                         "yardstick")
    ap.add_argument("--report", default=None, metavar="PATH",
                    help="also write the comparison as a markdown table "
                         "(written even when the gate is skipped, so CI "
                         "always has an artifact)")
    args = ap.parse_args()
    if args.mode == "micro":
        sys.exit(gate_micro(args))
    sys.exit(gate_fig07(args))


if __name__ == "__main__":
    main()
