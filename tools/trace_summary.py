#!/usr/bin/env python3
"""Summarize a simany telemetry trace or crash report.

Consumes any of the machine-readable artifacts the simulator writes:

  * the flat event CSV written by `simany_cli --trace-csv`
    (vtime_ticks,core,event,sub,dst,a,b — see src/obs/export.cpp),
  * the Perfetto / Chrome trace-event JSON written by `--trace-json`
    (pid 1 = simulated cores, 1 cycle = 1 us on the trace axis),
  * the simany-crash-report-v1 JSON written by `--crash-report` on an
    aborted run (schema in docs/robustness.md),
  * the simany-critpath-v1 JSON written by `--critpath-out` (ranked
    causal critical path, schema in docs/observability.md), or
  * the simany-status-v1 heartbeat written by `--status-out`.

and prints the run's shape at a glance: the top-N busiest cores, the
sync-stall distribution, the longest critical section, and the fault
timeline. Sync stalls are zero-width in *virtual* time by construction
(a stalled core's clock does not advance), so stalls are reported as
counts, not durations. Crash reports instead print the structured
error, progress spread, and the stall diagnosis; critical-path reports
print the cause breakdown and top cores/links/objects; status
heartbeats print the run state, progress, and throughput.

Exit status (uniform across tools/, see docs/static_analysis.md):
  0  summary printed
  2  usage / input error (missing or unparseable trace)

Usage:
  trace_summary.py TRACE [--top N] [--faults N] [--json]
"""

import argparse
import csv
import json
import sys

TICKS_PER_CYCLE = 12


def summarize_events(events, top=5, faults=10):
    """Summary dict from an iterable of event dicts with keys
    t_cycles (float), core (int), kind (str), sub (str), a (int)."""
    busy = {}       # core -> busy cycles (task slices)
    tasks = {}      # core -> completed task count
    stalls = {}     # core -> stall count
    open_task = {}  # core -> start t
    open_obj = {}   # (core, object) -> (kind, start t)
    longest = None  # (dur, t0, core, label)
    fault_rows = []
    t_max = 0.0
    total = 0

    for e in events:
        total += 1
        t = e["t_cycles"]
        core = e["core"]
        kind = e["kind"]
        t_max = max(t_max, t)
        if kind == "task_start":
            open_task[core] = t
        elif kind == "task_end":
            t0 = open_task.pop(core, None)
            if t0 is not None:
                busy[core] = busy.get(core, 0.0) + (t - t0)
                tasks[core] = tasks.get(core, 0) + 1
        elif kind == "stall":
            stalls[core] = stalls.get(core, 0) + 1
        elif kind in ("lock_acquire", "cell_acquire"):
            open_obj[(core, e["a"])] = (kind.split("_")[0], t)
        elif kind in ("lock_release", "cell_release"):
            entry = open_obj.pop((core, e["a"]), None)
            if entry is not None:
                label = "%s %x" % (entry[0], e["a"])
                cand = (t - entry[1], entry[1], core, label)
                if longest is None or cand[0] > longest[0]:
                    longest = cand
        elif kind == "fault":
            fault_rows.append({"t_cycles": t, "core": core,
                               "kind": e["sub"], "magnitude": e["a"]})

    cores = sorted(busy, key=lambda c: (-busy[c], c))
    total_busy = sum(busy.values())
    top_rows = [{
        "core": c,
        "busy_cycles": busy[c],
        "busy_share": busy[c] / total_busy if total_busy else 0.0,
        "tasks": tasks.get(c, 0),
        "stalls": stalls.get(c, 0),
    } for c in cores[:top]]

    total_stalls = sum(stalls.values())
    summary = {
        "events": total,
        "span_cycles": t_max,
        "top_cores": top_rows,
        "stalls": {
            "total": total_stalls,
            "cores_affected": len(stalls),
            "max_per_core": max(stalls.values()) if stalls else 0,
            "per_kilocycle":
                1000.0 * total_stalls / t_max if t_max else 0.0,
        },
        "faults": fault_rows[:faults],
        "faults_total": len(fault_rows),
    }
    if longest is not None:
        summary["longest_critical"] = {
            "object": longest[3], "core": longest[2],
            "start_cycles": longest[1], "dur_cycles": longest[0],
        }
    return summary


def events_from_csv(lines):
    reader = csv.DictReader(lines)
    for row in reader:
        yield {
            "t_cycles": int(row["vtime_ticks"]) / TICKS_PER_CYCLE,
            "core": int(row["core"]),
            "kind": row["event"],
            "sub": row["sub"],
            "a": int(row["a"]),
        }


def events_from_chrome(doc):
    """Re-derive flat events from the Chrome trace's pid-1 slices, so
    both exporter formats feed the same summarizer. Host wall-clock
    tracks (pid 2) are skipped: they measure the simulator, not the
    simulated machine."""
    for e in doc.get("traceEvents", []):
        if e.get("pid") != 1:
            continue
        ph, cat = e.get("ph"), e.get("cat", "")
        core = int(e.get("tid", 0))
        ts = float(e.get("ts", 0.0))
        if ph == "X" and cat == "task":
            yield {"t_cycles": ts, "core": core, "kind": "task_start",
                   "sub": "", "a": 0}
            yield {"t_cycles": ts + float(e.get("dur", 0.0)), "core": core,
                   "kind": "task_end", "sub": "", "a": 0}
        elif ph == "X" and cat == "sync":
            yield {"t_cycles": ts, "core": core, "kind": "stall",
                   "sub": "", "a": 0}
        elif ph == "X" and cat == "critical":
            what, _, obj = e.get("name", "").partition(" ")
            oid = int(obj, 16) if obj else 0
            yield {"t_cycles": ts, "core": core,
                   "kind": what + "_acquire", "sub": "", "a": oid}
            yield {"t_cycles": ts + float(e.get("dur", 0.0)), "core": core,
                   "kind": what + "_release", "sub": "", "a": oid}
        elif ph == "i" and cat == "fault":
            kind = e.get("name", "fault:?").partition(":")[2]
            yield {"t_cycles": ts, "core": core, "kind": "fault",
                   "sub": kind, "a": 0}


CRASH_SCHEMA = "simany-crash-report-v1"
CRITPATH_SCHEMA = "simany-critpath-v1"
STATUS_SCHEMA = "simany-status-v1"


def load_events(path):
    with open(path) as f:
        head = f.read(1)
        f.seek(0)
        if head == "{":
            return list(events_from_chrome(json.load(f)))
        return list(events_from_csv(f))


def load_any(path):
    """Returns ("crash" | "critpath" | "status", doc) for the schema'd
    JSON artifacts, ("events", list) for either trace format."""
    with open(path) as f:
        head = f.read(1)
        f.seek(0)
        if head == "{":
            doc = json.load(f)
            schema = doc.get("schema")
            if schema == CRASH_SCHEMA:
                return "crash", doc
            if schema == CRITPATH_SCHEMA:
                return "critpath", doc
            if schema == STATUS_SCHEMA:
                return "status", doc
            return "events", list(events_from_chrome(doc))
        return "events", list(events_from_csv(f))


def summarize_crash_report(doc):
    """Headline dict from a simany-crash-report-v1 document. Raises
    KeyError/ValueError on documents that do not match the schema, so
    CI catches a malformed report instead of printing garbage."""
    if doc.get("schema") != CRASH_SCHEMA:
        raise ValueError("not a %s document" % CRASH_SCHEMA)
    err = doc["error"]
    run = doc["run"]
    prog = doc["progress"]
    diag = doc["diagnosis"]
    per_core = prog["per_core"]
    states = {}
    for c in per_core:
        states[c["state"]] = states.get(c["state"], 0) + 1
    laggard = min(per_core, key=lambda c: c["now_cycles"]) if per_core \
        else None
    return {
        "schema": CRASH_SCHEMA,
        "error": {
            "code": err["code"],
            "cause": err["cause"],
            "message": err["message"],
            "transient": bool(err["transient"]),
            "core": err["core"],
            "shard": err["shard"],
            "at_tick": err["at_tick"],
        },
        "run": {
            "cores": run["cores"],
            "host_rounds": run["host_rounds"],
            "tasks_spawned": run["tasks_spawned"],
            "faults_injected": run["faults_injected"],
        },
        "progress": {
            "min_core_cycles": prog["min_core_cycles"],
            "max_core_cycles": prog["max_core_cycles"],
            "live_tasks": prog["live_tasks"],
            "core_states": states,
            "laggard": None if laggard is None else {
                "core": laggard["id"],
                "now_cycles": laggard["now_cycles"],
                "state": laggard["state"],
            },
        },
        "diagnosis": {
            "kind": diag["kind"],
            "summary": diag["summary"],
            "wait_edges": len(diag["wait_edges"]),
            "cycle": diag["cycle"],
        },
    }


def render_crash_report(s):
    e, r, p, d = s["error"], s["run"], s["progress"], s["diagnosis"]
    lines = []
    lines.append("crash report : %s%s"
                 % (e["code"], " (transient)" if e["transient"] else ""))
    lines.append("message      : %s" % e["message"])
    where = []
    if e["core"] is not None:
        where.append("core %d" % e["core"])
    if e["shard"] is not None:
        where.append("shard %d" % e["shard"])
    if where:
        lines.append("where        : %s @ tick %d"
                     % (", ".join(where), e["at_tick"]))
    lines.append("run          : %d cores, %d host rounds, "
                 "%d tasks spawned, %d faults injected"
                 % (r["cores"], r["host_rounds"], r["tasks_spawned"],
                    r["faults_injected"]))
    lines.append("progress     : cores at %d..%d cycles, %d live tasks"
                 % (p["min_core_cycles"], p["max_core_cycles"],
                    p["live_tasks"]))
    states = ", ".join("%d %s" % (n, k)
                       for k, n in sorted(p["core_states"].items()))
    if states:
        lines.append("core states  : %s" % states)
    if p["laggard"] is not None:
        lines.append("laggard      : core %d (%s) at %d cycles"
                     % (p["laggard"]["core"], p["laggard"]["state"],
                        p["laggard"]["now_cycles"]))
    lines.append("diagnosis    : %s (%d wait edges%s)"
                 % (d["kind"], d["wait_edges"],
                    ", cycle %s" % d["cycle"] if d["cycle"] else ""))
    lines.append("  %s" % d["summary"])
    return "\n".join(lines)


def summarize_critpath(doc, top=5):
    """Headline dict from a simany-critpath-v1 document (the causal
    critical-path report of src/obs/critpath). Raises
    KeyError/ValueError on documents that do not match the schema."""
    if doc.get("schema") != CRITPATH_SCHEMA:
        raise ValueError("not a %s document" % CRITPATH_SCHEMA)
    causes = [{"cause": name, "ticks": c["ticks"], "share": c["share"]}
              for name, c in doc["causes"].items() if c["ticks"] > 0]
    causes.sort(key=lambda c: (-c["ticks"], c["cause"]))
    return {
        "schema": CRITPATH_SCHEMA,
        "total_cycles": doc["total_cycles"],
        "terminal_core": doc["terminal_core"],
        "truncated": bool(doc["truncated"]),
        "segments": doc["segment_count"],
        "causes": causes,
        "top_cores": doc["top_cores"][:top],
        "top_links": doc["top_links"][:top],
        "top_objects": doc["top_objects"][:top],
        "fingerprint": doc["fingerprint"],
    }


def render_critpath(s):
    lines = []
    lines.append("critical path : %d cycles, %d segments, ends on "
                 "core %d%s"
                 % (s["total_cycles"], s["segments"], s["terminal_core"],
                    " (TRUNCATED)" if s["truncated"] else ""))
    lines.append("fingerprint   : %s" % s["fingerprint"])
    lines.append("causes        :")
    for c in s["causes"]:
        lines.append("  %-16s %5.1f%%  (%d ticks)"
                     % (c["cause"], 100.0 * c["share"], c["ticks"]))
    if s["top_cores"]:
        lines.append("top cores     : "
                     + ", ".join("core %d (%.1f%%)"
                                 % (c["core"], 100.0 * c["share"])
                                 for c in s["top_cores"]))
    if s["top_links"]:
        lines.append("top links     : "
                     + ", ".join("%d->%d (%d ticks)"
                                 % (l["src"], l["dst"], l["ticks"])
                                 for l in s["top_links"]))
    if s["top_objects"]:
        lines.append("top objects   : "
                     + ", ".join("%s %x (%d ticks)"
                                 % (o["kind"], o["id"], o["ticks"])
                                 for o in s["top_objects"]))
    return "\n".join(lines)


def summarize_status(doc):
    """Headline dict from a simany-status-v1 heartbeat (src/obs/status).
    Raises KeyError/ValueError on non-conforming documents."""
    if doc.get("schema") != STATUS_SCHEMA:
        raise ValueError("not a %s document" % STATUS_SCHEMA)
    vt = doc["vtime_cycles"]
    laggard = None
    shards = doc["shards"]
    if shards:
        laggard = min(shards, key=lambda s: (s["now_min_cycles"], s["id"]))
    return {
        "schema": STATUS_SCHEMA,
        "state": doc["state"],
        "wall_ms": doc["wall_ms"],
        "rounds": doc["rounds"],
        "quanta": doc["quanta"],
        "quanta_per_sec": doc["quanta_per_sec"],
        "events": doc["events"],
        "vtime_min_cycles": vt["min"],
        "vtime_max_cycles": vt["max"],
        "drift_gap_cycles": doc["drift_gap_cycles"],
        "live_tasks": doc["live_tasks"],
        "inflight_messages": doc["inflight_messages"],
        "mail_pending": doc["mail_pending"],
        "imbalance": doc["imbalance"],
        "shards": len(shards),
        "laggard_shard": None if laggard is None else {
            "id": laggard["id"],
            "now_min_cycles": laggard["now_min_cycles"],
            "live_tasks": laggard["live_tasks"],
        },
        "eta_ms": doc["eta_ms"],
    }


def render_status(s):
    lines = []
    lines.append("run status   : %s after %.0f ms wall"
                 % (s["state"], s["wall_ms"]))
    lines.append("progress     : vtime %d..%d cycles (drift gap %d), "
                 "%d rounds, %d quanta"
                 % (s["vtime_min_cycles"], s["vtime_max_cycles"],
                    s["drift_gap_cycles"], s["rounds"], s["quanta"]))
    lines.append("work         : %d live tasks, %d inflight messages, "
                 "%d mail pending, imbalance %.2f"
                 % (s["live_tasks"], s["inflight_messages"],
                    s["mail_pending"], s["imbalance"]))
    lines.append("throughput   : %.3g quanta/s, %d events recorded"
                 % (s["quanta_per_sec"], s["events"]))
    if s["laggard_shard"] is not None:
        lines.append("laggard shard: shard %d at %d cycles "
                     "(%d live tasks), %d shards total"
                     % (s["laggard_shard"]["id"],
                        s["laggard_shard"]["now_min_cycles"],
                        s["laggard_shard"]["live_tasks"], s["shards"]))
    if s["eta_ms"] is not None:
        lines.append("eta          : ~%.0f ms to budget" % s["eta_ms"])
    return "\n".join(lines)


def render(s):
    lines = []
    lines.append("events       : %d over %.1f cycles"
                 % (s["events"], s["span_cycles"]))
    lines.append("busiest cores:")
    for r in s["top_cores"]:
        lines.append("  core %-4d busy %.1f cycles (%.1f%%), "
                     "%d tasks, %d stalls"
                     % (r["core"], r["busy_cycles"],
                        100.0 * r["busy_share"], r["tasks"], r["stalls"]))
    st = s["stalls"]
    lines.append("sync stalls  : %d on %d cores (max %d on one core, "
                 "%.2f per kilocycle)"
                 % (st["total"], st["cores_affected"], st["max_per_core"],
                    st["per_kilocycle"]))
    lc = s.get("longest_critical")
    if lc:
        lines.append("longest crit : %s held %.1f cycles by core %d "
                     "(from %.1f)"
                     % (lc["object"], lc["dur_cycles"], lc["core"],
                        lc["start_cycles"]))
    if s["faults_total"]:
        lines.append("faults       : %d injected; timeline:"
                     % s["faults_total"])
        for fr in s["faults"]:
            lines.append("  %10.1f  core %-4d %s (magnitude %d)"
                         % (fr["t_cycles"], fr["core"], fr["kind"],
                            fr["magnitude"]))
    else:
        lines.append("faults       : none")
    return "\n".join(lines)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace",
                    help="event CSV, Chrome trace JSON, or crash report")
    ap.add_argument("--top", type=int, default=5,
                    help="busiest cores to list (default 5)")
    ap.add_argument("--faults", type=int, default=10,
                    help="fault-timeline rows to list (default 10)")
    ap.add_argument("--json", action="store_true",
                    help="emit the summary as JSON instead of text")
    args = ap.parse_args()
    try:
        kind, payload = load_any(args.trace)
    except (OSError, json.JSONDecodeError, ValueError, csv.Error) as e:
        print(f"trace_summary: error: {args.trace} unusable: {e}",
              file=sys.stderr)
        return 2
    if kind in ("crash", "critpath", "status"):
        try:
            if kind == "crash":
                summary = summarize_crash_report(payload)
                text = render_crash_report(summary)
            elif kind == "critpath":
                summary = summarize_critpath(payload, top=args.top)
                text = render_critpath(summary)
            else:
                summary = summarize_status(payload)
                text = render_status(summary)
        except (KeyError, ValueError, TypeError) as e:
            print(f"trace_summary: error: {args.trace} malformed "
                  f"{kind} document: {e!r}", file=sys.stderr)
            return 2
        if args.json:
            json.dump(summary, sys.stdout, indent=2)
            print()
        else:
            print(text)
        return 0
    summary = summarize_events(payload, top=args.top, faults=args.faults)
    if args.json:
        json.dump(summary, sys.stdout, indent=2)
        print()
    else:
        print(render(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main())
