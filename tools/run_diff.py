#!/usr/bin/env python3
"""Diff two simany runs from their metrics exports.

Consumes the machine-readable metrics artifacts the simulator writes —
either the JSON written by `simany_cli --metrics-out`
({"counters":…,"gauges":…,"histograms":…,"series":…}, see
src/obs/metrics.cpp) or the flat CSV written by `--metrics-csv`
(series,t_cycles,core,value, histogram percentiles riding along as
`<name>.p50` rows at core -1) — and aligns run B against run A on
*virtual* time:

  * counters / gauges: per-metric delta and relative change,
  * histograms: exact percentile shifts (p50/p90/p99/p99.9) and
    population change,
  * time series: merged on (t_cycles, core); reports the first virtual
    time at which the runs diverge per series and the largest
    point-wise delta,
  * per-core attribution: the cores whose summed series values
    regressed the most (largest increase run A -> run B).

Because both exports are deterministic functions of the run, two runs
of the same binary/config/seed diff clean; any reported divergence is
a real behavioural difference, not noise.

Exit status (uniform across tools/, see docs/static_analysis.md):
  0  runs equivalent within --rel-tol
  1  findings: at least one metric/series diverged beyond --rel-tol
  2  usage / input error (missing or unparseable export)

Usage:
  run_diff.py A B [--rel-tol F] [--top N] [--json]
"""

import argparse
import csv
import json
import sys

PERCENTILE_SUFFIXES = (".p50", ".p90", ".p99", ".p99.9")


def _percentile_split(name):
    """("hist", "p50") if `name` is a synthetic CSV percentile row,
    else None. Checked longest-suffix-first so `.p99.9` wins."""
    for suf in sorted(PERCENTILE_SUFFIXES, key=len, reverse=True):
        if name.endswith(suf):
            return name[: -len(suf)], suf[1:]
    return None


def load_metrics(path):
    """Canonical run dict from either export format:
    {"counters": {name: num}, "gauges": {name: num},
     "percentiles": {hist: {p50: v, ...}}, "hist_totals": {hist: n},
     "series": {name: {(t_cycles, core): value}}}"""
    with open(path) as f:
        head = f.read(1)
        f.seek(0)
        if head == "{":
            return _from_json(json.load(f))
        return _from_csv(f)


def _from_json(doc):
    run = {"counters": {}, "gauges": {}, "percentiles": {},
           "hist_totals": {}, "series": {}}
    for name, v in doc.get("counters", {}).items():
        run["counters"][name] = float(v)
    for name, v in doc.get("gauges", {}).items():
        run["gauges"][name] = float(v)
    for name, h in doc.get("histograms", {}).items():
        run["hist_totals"][name] = int(h.get("total", 0))
        pcts = {}
        for suf in PERCENTILE_SUFFIXES:
            key = suf[1:]
            if key in h:
                pcts[key] = float(h[key])
        if pcts:
            run["percentiles"][name] = pcts
    for name, rows in doc.get("series", {}).items():
        pts = {}
        for r in rows:
            pts[(float(r["t"]), int(r["core"]))] = float(r["value"])
        run["series"][name] = pts
    return run


def _from_csv(lines):
    run = {"counters": {}, "gauges": {}, "percentiles": {},
           "hist_totals": {}, "series": {}}
    for row in csv.DictReader(lines):
        name = row["series"]
        split = _percentile_split(name)
        if split is not None and int(row["core"]) == -1:
            hist, key = split
            run["percentiles"].setdefault(hist, {})[key] = \
                float(row["value"])
            continue
        pts = run["series"].setdefault(name, {})
        pts[(float(row["t_cycles"]), int(row["core"]))] = \
            float(row["value"])
    return run


def differs(a, b, rel_tol):
    if a == b:
        return False
    denom = max(abs(a), abs(b))
    return abs(a - b) > rel_tol * denom


def rel_change(a, b):
    if a == 0.0:
        return float("inf") if b != 0.0 else 0.0
    return (b - a) / abs(a)


def _diff_scalars(da, db, rel_tol):
    """Rows for every name in either map that differs beyond rel_tol;
    a name missing from one run always counts as divergent."""
    rows = []
    for name in sorted(set(da) | set(db)):
        if name not in da or name not in db:
            rows.append({"name": name,
                         "a": da.get(name), "b": db.get(name),
                         "rel": None, "missing": True})
        elif differs(da[name], db[name], rel_tol):
            rows.append({"name": name, "a": da[name], "b": db[name],
                         "rel": rel_change(da[name], db[name]),
                         "missing": False})
    return rows


def _diff_series(sa, sb, rel_tol):
    """Per-series divergence rows plus per-core summed deltas."""
    rows = []
    core_delta = {}  # core -> (sum_a, sum_b) over all series
    for name in sorted(set(sa) | set(sb)):
        pa = sa.get(name, {})
        pb = sb.get(name, {})
        for (_, core), v in pa.items():
            s = core_delta.setdefault(core, [0.0, 0.0])
            s[0] += v
        for (_, core), v in pb.items():
            s = core_delta.setdefault(core, [0.0, 0.0])
            s[1] += v
        first_t = None
        max_delta = 0.0
        mismatches = 0
        for key in set(pa) | set(pb):
            va, vb = pa.get(key), pb.get(key)
            if va is not None and vb is not None \
                    and not differs(va, vb, rel_tol):
                continue
            mismatches += 1
            t = key[0]
            if first_t is None or t < first_t:
                first_t = t
            delta = abs((vb or 0.0) - (va or 0.0))
            max_delta = max(max_delta, delta)
        if mismatches:
            rows.append({"name": name, "first_divergence_cycles": first_t,
                         "mismatched_points": mismatches,
                         "points_a": len(pa), "points_b": len(pb),
                         "max_abs_delta": max_delta})
    return rows, core_delta


def _top_regressed(core_delta, rel_tol, top):
    """Cores whose summed series value grew the most A -> B."""
    rows = []
    for core, (a, b) in core_delta.items():
        if b > a and differs(a, b, rel_tol):
            rows.append({"core": core, "a": a, "b": b,
                         "delta": b - a, "rel": rel_change(a, b)})
    rows.sort(key=lambda r: (-r["delta"], r["core"]))
    return rows[:top]


def diff_runs(ra, rb, rel_tol=0.0, top=5):
    counters = _diff_scalars(ra["counters"], rb["counters"], rel_tol)
    gauges = _diff_scalars(ra["gauges"], rb["gauges"], rel_tol)
    pct_rows = []
    hists = set(ra["percentiles"]) | set(rb["percentiles"])
    for hist in sorted(hists):
        pa = ra["percentiles"].get(hist, {})
        pb = rb["percentiles"].get(hist, {})
        for key in sorted(set(pa) | set(pb)):
            va, vb = pa.get(key), pb.get(key)
            if va is None or vb is None or differs(va, vb, rel_tol):
                pct_rows.append({
                    "name": f"{hist}.{key}", "a": va, "b": vb,
                    "rel": None if va is None or vb is None
                    else rel_change(va, vb)})
    pop_rows = _diff_scalars(
        {k: float(v) for k, v in ra["hist_totals"].items()},
        {k: float(v) for k, v in rb["hist_totals"].items()}, rel_tol)
    series_rows, core_delta = _diff_series(
        ra["series"], rb["series"], rel_tol)
    diff = {
        "counters": counters,
        "gauges": gauges,
        "percentiles": pct_rows,
        "hist_populations": pop_rows,
        "series": series_rows,
        "top_regressed_cores": _top_regressed(core_delta, rel_tol, top),
        "series_total": len(set(ra["series"]) | set(rb["series"])),
    }
    diff["divergent"] = bool(counters or gauges or pct_rows or pop_rows
                             or series_rows)
    return diff


def _fmt_rel(rel):
    if rel is None:
        return "missing"
    if rel == float("inf"):
        return "new"
    return "%+.1f%%" % (100.0 * rel)


def render(d, a_label="A", b_label="B"):
    lines = ["run diff: %s vs %s" % (a_label, b_label)]
    if not d["divergent"]:
        lines.append("runs equivalent within tolerance")
        return "\n".join(lines)
    for section, title in (("counters", "counters"),
                           ("gauges", "gauges"),
                           ("percentiles", "percentile shifts"),
                           ("hist_populations", "histogram populations")):
        rows = d[section]
        if not rows:
            continue
        lines.append("%s:" % title)
        for r in rows:
            lines.append("  %-28s %s -> %s (%s)"
                         % (r["name"],
                            "-" if r["a"] is None else "%g" % r["a"],
                            "-" if r["b"] is None else "%g" % r["b"],
                            _fmt_rel(r["rel"])))
    if d["series"]:
        lines.append("series divergence (%d of %d diverge):"
                     % (len(d["series"]), d["series_total"]))
        for r in d["series"]:
            lines.append(
                "  %-28s first at %.1f cycles, %d/%d points differ, "
                "max |delta| %g"
                % (r["name"], r["first_divergence_cycles"],
                   r["mismatched_points"],
                   max(r["points_a"], r["points_b"]),
                   r["max_abs_delta"]))
    if d["top_regressed_cores"]:
        lines.append("top regressed cores:")
        for r in d["top_regressed_cores"]:
            lines.append("  core %-4d summed value %g -> %g (%s)"
                         % (r["core"], r["a"], r["b"],
                            _fmt_rel(r["rel"])))
    return "\n".join(lines)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("run_a", help="baseline metrics export (JSON or CSV)")
    ap.add_argument("run_b", help="candidate metrics export (JSON or CSV)")
    ap.add_argument("--rel-tol", type=float, default=0.0,
                    help="relative tolerance below which a delta is "
                         "noise (default 0: exact)")
    ap.add_argument("--top", type=int, default=5,
                    help="regressed cores to list (default 5)")
    ap.add_argument("--json", action="store_true",
                    help="emit the diff as JSON instead of text")
    args = ap.parse_args(argv)
    try:
        ra = load_metrics(args.run_a)
        rb = load_metrics(args.run_b)
    except (OSError, json.JSONDecodeError, ValueError, KeyError,
            csv.Error) as e:
        print(f"run_diff: error: unusable input: {e}", file=sys.stderr)
        return 2
    d = diff_runs(ra, rb, rel_tol=args.rel_tol, top=args.top)
    if args.json:
        json.dump(d, sys.stdout, indent=2)
        print()
    else:
        print(render(d, args.run_a, args.run_b))
    return 1 if d["divergent"] else 0


if __name__ == "__main__":
    sys.exit(main())
