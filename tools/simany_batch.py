#!/usr/bin/env python3
"""Retry harness for simany runs.

Runs the command after `--` and reruns it with exponential backoff
while it exits with a *transient* failure code (simany_cli exits 3
when a transient SimError survived its own in-process retries, and
130 when cancelled — only the former is worth rerunning). Writes a
machine-readable JSON run report so CI and sweep drivers can tell
"passed first try" from "passed after 2 retries" from "gave up".

  simany_batch.py --retries 3 --report runs.json -- \\
      ./simany_cli --dwarf spmxv --deadline-ms 2000

Multiple runs of the same command are supported with --runs N; the
literal token {run} in the command is replaced by the run index, so a
seed sweep is one invocation:

  simany_batch.py --runs 4 -- ./simany_cli --seed {run}

Exit code: 0 when every run succeeded, otherwise the exit code of the
first run that failed permanently (or exhausted its retries); usage
errors exit 2 (the uniform tools/ convention, see
docs/static_analysis.md — this tool intentionally forwards the wrapped
command's code instead of collapsing failures to 1, so CI can
distinguish failure classes).

Report schema (simany-batch-report-v1):
  {"schema": ..., "command": [...], "retries": N, "backoff_ms": B,
   "runs": [{"run": i, "outcome": "success|failed|transient-exhausted|
             cancelled", "final_exit_code": rc,
             "attempts": [{"attempt": k, "exit_code": rc,
                           "wall_ms": w, "backoff_ms": b}]}],
   "failed_runs": n}
"""

import argparse
import json
import subprocess
import sys
import time

SCHEMA = "simany-batch-report-v1"
TRANSIENT_EXITS = (3,)
CANCELLED_EXITS = (130, 131)


def classify(rc):
    if rc == 0:
        return "success"
    if rc in CANCELLED_EXITS:
        return "cancelled"
    if rc in TRANSIENT_EXITS:
        return "transient"
    return "failed"


def run_with_retries(cmd, retries, backoff_ms, runner=None, sleeper=None):
    """One command through the retry loop; returns the run record.
    `runner` and `sleeper` are injection points for tests."""
    runner = runner or (lambda c: subprocess.call(c))
    sleeper = sleeper or time.sleep
    attempts = []
    attempt = 0
    while True:
        t0 = time.monotonic()
        rc = runner(cmd)
        wall_ms = (time.monotonic() - t0) * 1000.0
        outcome = classify(rc)
        record = {"attempt": attempt, "exit_code": rc,
                  "wall_ms": round(wall_ms, 3), "backoff_ms": 0}
        attempts.append(record)
        if outcome != "transient" or attempt >= retries:
            if outcome == "transient":
                outcome = "transient-exhausted"
            return {"outcome": outcome, "final_exit_code": rc,
                    "attempts": attempts}
        backoff = backoff_ms * (1 << attempt)
        record["backoff_ms"] = backoff
        sleeper(backoff / 1000.0)
        attempt += 1


def run_batch(cmd, runs, retries, backoff_ms, runner=None, sleeper=None):
    report = {"schema": SCHEMA, "command": cmd, "retries": retries,
              "backoff_ms": backoff_ms, "runs": [], "failed_runs": 0}
    for i in range(runs):
        concrete = [tok.replace("{run}", str(i)) for tok in cmd]
        rec = run_with_retries(concrete, retries, backoff_ms,
                               runner=runner, sleeper=sleeper)
        rec["run"] = i
        report["runs"].append(rec)
        if rec["outcome"] != "success":
            report["failed_runs"] += 1
    return report


def batch_exit_code(report):
    for rec in report["runs"]:
        if rec["outcome"] != "success":
            return rec["final_exit_code"]
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--retries", type=int, default=2,
                    help="max reruns per run on transient failure "
                         "(default 2)")
    ap.add_argument("--retry-backoff-ms", type=int, default=250,
                    dest="backoff_ms",
                    help="initial backoff, doubled per retry "
                         "(default 250)")
    ap.add_argument("--runs", type=int, default=1,
                    help="times to run the command; {run} in the "
                         "command expands to the run index")
    ap.add_argument("--report", help="write the JSON run report here")
    ap.add_argument("cmd", nargs=argparse.REMAINDER,
                    help="-- followed by the command to run")
    args = ap.parse_args()

    cmd = args.cmd
    if cmd and cmd[0] == "--":
        cmd = cmd[1:]
    if not cmd:
        ap.error("no command given (expected: ... -- cmd args)")

    report = run_batch(cmd, args.runs, args.retries, args.backoff_ms)
    if args.report:
        with open(args.report, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
    ok = len(report["runs"]) - report["failed_runs"]
    print("simany_batch: %d/%d runs succeeded" % (ok, len(report["runs"])),
          file=sys.stderr)
    return batch_exit_code(report)


if __name__ == "__main__":
    sys.exit(main())
