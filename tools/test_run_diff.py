#!/usr/bin/env python3
"""Unit tests for run_diff.py: both export formats must load to the
same canonical run, identical runs must diff clean, and every
divergence class (counter delta, percentile shift, series mismatch,
per-core regression) must be detected and exactly quantified."""

import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import run_diff  # noqa: E402


def metrics_doc(messages=120, p99=410.0, occ3=10.0):
    return {
        "counters": {"messages": messages, "tasks": 40},
        "gauges": {"imbalance": 1.25},
        "histograms": {
            "task_cycles": {"bounds": [100, 1000], "counts": [3, 1, 0],
                            "total": 4, "sum": 900.0,
                            "p50": 200.0, "p90": p99, "p99": p99,
                            "p99.9": p99},
        },
        "series": {
            "occ": [
                {"t": 100, "core": 2, "value": 1.0},
                {"t": 480, "core": 3, "value": occ3},
                {"t": 900, "core": 3, "value": 2.0},
            ],
        },
    }


def csv_text(doc):
    """Flat CSV equivalent of metrics_doc's series + percentile rows,
    mirroring MetricsRegistry::write_csv."""
    out = ["series,t_cycles,core,value"]
    for name, rows in doc["series"].items():
        for r in rows:
            out.append("%s,%d,%d,%g"
                       % (name, r["t"], r["core"], r["value"]))
    for hist, h in doc["histograms"].items():
        for key in ("p50", "p90", "p99", "p99.9"):
            out.append("%s.%s,0,-1,%g" % (hist, key, h[key]))
    return "\n".join(out) + "\n"


def load_doc(doc):
    return run_diff._from_json(doc)


class LoadTest(unittest.TestCase):
    def test_csv_and_json_series_agree(self):
        doc = metrics_doc()
        rj = run_diff._from_json(doc)
        rc = run_diff._from_csv(io.StringIO(csv_text(doc)))
        self.assertEqual(rj["series"], rc["series"])
        self.assertEqual(rj["percentiles"], rc["percentiles"])

    def test_p99_9_suffix_wins_over_p9(self):
        rc = run_diff._from_csv(io.StringIO(
            "series,t_cycles,core,value\nlat.p99.9,0,-1,5.5\n"))
        self.assertEqual(rc["percentiles"], {"lat": {"p99.9": 5.5}})
        self.assertEqual(rc["series"], {})


class DiffTest(unittest.TestCase):
    def test_identical_runs_diff_clean(self):
        d = run_diff.diff_runs(load_doc(metrics_doc()),
                               load_doc(metrics_doc()))
        self.assertFalse(d["divergent"])
        self.assertEqual(d["counters"], [])
        self.assertEqual(d["series"], [])
        self.assertIn("equivalent", run_diff.render(d))

    def test_counter_delta_detected_and_quantified(self):
        d = run_diff.diff_runs(load_doc(metrics_doc(messages=120)),
                               load_doc(metrics_doc(messages=132)))
        self.assertTrue(d["divergent"])
        row = next(r for r in d["counters"] if r["name"] == "messages")
        self.assertEqual((row["a"], row["b"]), (120.0, 132.0))
        self.assertAlmostEqual(row["rel"], 0.1)

    def test_percentile_shift_detected(self):
        d = run_diff.diff_runs(load_doc(metrics_doc(p99=410.0)),
                               load_doc(metrics_doc(p99=520.0)))
        names = [r["name"] for r in d["percentiles"]]
        self.assertIn("task_cycles.p99", names)
        self.assertIn("task_cycles.p99.9", names)
        self.assertNotIn("task_cycles.p50", names)

    def test_series_first_divergence_at_earliest_cycle(self):
        d = run_diff.diff_runs(load_doc(metrics_doc(occ3=10.0)),
                               load_doc(metrics_doc(occ3=14.0)))
        (row,) = d["series"]
        self.assertEqual(row["name"], "occ")
        self.assertEqual(row["first_divergence_cycles"], 480.0)
        self.assertEqual(row["mismatched_points"], 1)
        self.assertEqual(row["max_abs_delta"], 4.0)

    def test_top_regressed_cores_ranked_by_delta(self):
        d = run_diff.diff_runs(load_doc(metrics_doc(occ3=10.0)),
                               load_doc(metrics_doc(occ3=14.0)))
        (row,) = d["top_regressed_cores"]
        self.assertEqual(row["core"], 3)
        self.assertEqual(row["delta"], 4.0)
        text = run_diff.render(d)
        self.assertIn("top regressed cores", text)
        self.assertIn("core 3", text)

    def test_rel_tol_suppresses_noise(self):
        a = load_doc(metrics_doc(messages=1000))
        b = load_doc(metrics_doc(messages=1001))
        self.assertTrue(run_diff.diff_runs(a, b)["divergent"])
        self.assertFalse(
            run_diff.diff_runs(a, b, rel_tol=0.01)["divergent"])

    def test_missing_metric_always_divergent(self):
        a = load_doc(metrics_doc())
        b = load_doc(metrics_doc())
        del b["counters"]["tasks"]
        d = run_diff.diff_runs(a, b, rel_tol=0.5)
        row = next(r for r in d["counters"] if r["name"] == "tasks")
        self.assertTrue(row["missing"])
        self.assertTrue(d["divergent"])


class MainExitCodeTest(unittest.TestCase):
    def write(self, d, name, doc):
        path = os.path.join(d, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def test_exit_codes(self):
        with tempfile.TemporaryDirectory() as d:
            a = self.write(d, "a.json", metrics_doc())
            b = self.write(d, "b.json", metrics_doc(messages=999))
            with open(os.path.join(d, "bad.json"), "w") as f:
                f.write("{not json")
            self.assertEqual(run_diff.main([a, a]), 0)
            self.assertEqual(run_diff.main([a, b]), 1)
            self.assertEqual(
                run_diff.main([a, os.path.join(d, "bad.json")]), 2)
            self.assertEqual(
                run_diff.main([a, os.path.join(d, "absent.json")]), 2)


if __name__ == "__main__":
    unittest.main()
