#!/usr/bin/env python3
"""Unit tests for bench_gate.py: the gate must skip-with-warning on a
missing or degenerate baseline, survive malformed entries, and still
catch real regressions."""

import argparse
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_gate  # noqa: E402


def micro_doc(times, counters=None):
    benchmarks = []
    for name, t in times.items():
        b = {"name": name, "real_time": t}
        b.update((counters or {}).get(name, {}))
        benchmarks.append(b)
    return {"benchmarks": benchmarks}


def fig07_doc(series):
    return {"table": {"series": [{"name": n, "y": ys}
                                 for n, ys in series.items()]}}


class TempJson:
    """Writes docs to a temp dir and hands back their paths."""

    def __init__(self):
        self.dir = tempfile.TemporaryDirectory()

    def write(self, name, doc):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def path(self, name):  # a path that never exists
        return os.path.join(self.dir.name, name)


def micro_args(baseline, current, threshold=0.15, report=None):
    return argparse.Namespace(baseline=baseline, current=current,
                              threshold=threshold,
                              reference="BM_CostModelBlock",
                              report=report)


def fig07_args(baseline, current, threshold=0.15, report=None):
    return argparse.Namespace(baseline=baseline, current=current,
                              threshold=threshold, report=report)


class MicroGateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = TempJson()
        self.addCleanup(self.tmp.dir.cleanup)

    def test_missing_baseline_file_skips_with_warning(self):
        cur = self.tmp.write("cur.json", micro_doc(
            {"BM_CostModelBlock": 1.0, "BM_Spawn": 2.0}))
        rc = bench_gate.gate_micro(
            micro_args(self.tmp.path("absent.json"), cur))
        self.assertEqual(rc, 0)

    def test_corrupt_baseline_file_skips_with_warning(self):
        bad = self.tmp.path("bad.json")
        with open(bad, "w") as f:
            f.write("{not json")
        cur = self.tmp.write("cur.json", micro_doc(
            {"BM_CostModelBlock": 1.0}))
        self.assertEqual(bench_gate.gate_micro(micro_args(bad, cur)), 0)

    def test_empty_baseline_skips_with_warning(self):
        base = self.tmp.write("base.json", {"benchmarks": []})
        cur = self.tmp.write("cur.json", micro_doc(
            {"BM_CostModelBlock": 1.0, "BM_Spawn": 2.0}))
        self.assertEqual(bench_gate.gate_micro(micro_args(base, cur)), 0)

    def test_malformed_baseline_entry_is_skipped_not_fatal(self):
        base = micro_doc({"BM_CostModelBlock": 1.0, "BM_Spawn": 2.0})
        base["benchmarks"].append({"run_type": "iteration"})  # no name/time
        basep = self.tmp.write("base.json", base)
        cur = self.tmp.write("cur.json", micro_doc(
            {"BM_CostModelBlock": 1.0, "BM_Spawn": 2.0}))
        self.assertEqual(bench_gate.gate_micro(micro_args(basep, cur)), 0)

    def test_missing_current_file_is_fatal(self):
        base = self.tmp.write("base.json", micro_doc(
            {"BM_CostModelBlock": 1.0, "BM_Spawn": 2.0}))
        with self.assertRaises(SystemExit) as ctx:
            bench_gate.gate_micro(
                micro_args(base, self.tmp.path("absent.json")))
        # Input errors use the uniform tools/ usage exit code, distinct
        # from exit 1 (= a metric actually regressed).
        self.assertEqual(ctx.exception.code, 2)

    def test_regression_still_detected(self):
        base = self.tmp.write("base.json", micro_doc(
            {"BM_CostModelBlock": 1.0, "BM_Spawn": 2.0}))
        cur = self.tmp.write("cur.json", micro_doc(
            {"BM_CostModelBlock": 1.0, "BM_Spawn": 3.0}))  # +50%
        self.assertEqual(bench_gate.gate_micro(micro_args(base, cur)), 1)

    def test_within_threshold_passes(self):
        base = self.tmp.write("base.json", micro_doc(
            {"BM_CostModelBlock": 1.0, "BM_Spawn": 2.0}))
        cur = self.tmp.write("cur.json", micro_doc(
            {"BM_CostModelBlock": 1.0, "BM_Spawn": 2.1}))  # +5%
        self.assertEqual(bench_gate.gate_micro(micro_args(base, cur)), 0)

    def test_report_written_with_comparison_rows(self):
        base = self.tmp.write("base.json", micro_doc(
            {"BM_CostModelBlock": 1.0, "BM_Spawn": 2.0, "BM_Gone": 1.0}))
        cur = self.tmp.write("cur.json", micro_doc(
            {"BM_CostModelBlock": 1.0, "BM_Spawn": 3.0}))  # +50%, one gone
        report = self.tmp.path("report.md")
        rc = bench_gate.gate_micro(
            micro_args(base, cur, report=report))
        self.assertEqual(rc, 1)
        with open(report) as f:
            text = f.read()
        self.assertIn("| metric | baseline | current | delta | status |",
                      text)
        self.assertIn("| BM_Spawn | 2 | 3 | +50.0% | FAIL |", text)
        self.assertIn("| BM_Gone | — | missing | — | FAIL |", text)
        self.assertIn("REGRESSION", text)

    def test_report_written_even_when_gate_skipped(self):
        cur = self.tmp.write("cur.json", micro_doc(
            {"BM_CostModelBlock": 1.0}))
        report = self.tmp.path("report.md")
        rc = bench_gate.gate_micro(
            micro_args(self.tmp.path("absent.json"), cur, report=report))
        self.assertEqual(rc, 0)
        with open(report) as f:
            self.assertIn("gate skipped", f.read())

    def test_clean_report_marks_all_ok(self):
        base = self.tmp.write("base.json", micro_doc(
            {"BM_CostModelBlock": 1.0, "BM_Spawn": 2.0}))
        cur = self.tmp.write("cur.json", micro_doc(
            {"BM_CostModelBlock": 1.0, "BM_Spawn": 1.0}))  # improved
        report = self.tmp.path("report.md")
        rc = bench_gate.gate_micro(micro_args(base, cur, report=report))
        self.assertEqual(rc, 0)
        with open(report) as f:
            text = f.read()
        self.assertIn("| BM_Spawn | 2 | 1 | -50.0% | ok |", text)
        self.assertIn("all metrics within threshold", text)


class Fig07GateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = TempJson()
        self.addCleanup(self.tmp.dir.cleanup)

    def test_missing_baseline_file_skips_with_warning(self):
        cur = self.tmp.write("cur.json", fig07_doc({"mesh": [1.0, 2.0]}))
        rc = bench_gate.gate_fig07(
            fig07_args(self.tmp.path("absent.json"), cur))
        self.assertEqual(rc, 0)

    def test_baseline_without_series_skips_with_warning(self):
        base = self.tmp.write("base.json", {"table": {}})
        cur = self.tmp.write("cur.json", fig07_doc({"mesh": [1.0]}))
        self.assertEqual(bench_gate.gate_fig07(fig07_args(base, cur)), 0)

    def test_malformed_series_entry_is_skipped_not_fatal(self):
        doc = fig07_doc({"mesh": [1.0, 2.0]})
        doc["table"]["series"].append({"y": [3.0]})  # nameless series
        base = self.tmp.write("base.json", doc)
        cur = self.tmp.write("cur.json", fig07_doc({"mesh": [1.0, 2.0]}))
        self.assertEqual(bench_gate.gate_fig07(fig07_args(base, cur)), 0)

    def test_regression_still_detected(self):
        base = self.tmp.write("base.json", fig07_doc({"mesh": [1.0, 1.0]}))
        cur = self.tmp.write("cur.json", fig07_doc({"mesh": [2.0, 2.0]}))
        self.assertEqual(bench_gate.gate_fig07(fig07_args(base, cur)), 1)

    def test_disappeared_series_fails(self):
        base = self.tmp.write("base.json",
                              fig07_doc({"mesh": [1.0], "ring": [1.0]}))
        cur = self.tmp.write("cur.json", fig07_doc({"mesh": [1.0]}))
        self.assertEqual(bench_gate.gate_fig07(fig07_args(base, cur)), 1)


if __name__ == "__main__":
    unittest.main()
