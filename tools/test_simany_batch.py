#!/usr/bin/env python3
"""Unit tests for simany_batch.py: retry-on-transient semantics,
exponential backoff, exit-code propagation and the report schema."""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import simany_batch  # noqa: E402


class FakeRunner:
    """Returns scripted exit codes in sequence, recording commands."""

    def __init__(self, codes):
        self.codes = list(codes)
        self.calls = []

    def __call__(self, cmd):
        self.calls.append(list(cmd))
        return self.codes.pop(0)


class RetryTest(unittest.TestCase):
    def run_one(self, codes, retries=3, backoff_ms=100):
        runner = FakeRunner(codes)
        sleeps = []
        rec = simany_batch.run_with_retries(
            ["prog"], retries, backoff_ms,
            runner=runner, sleeper=sleeps.append)
        return rec, runner, sleeps

    def test_success_first_try_no_sleep(self):
        rec, runner, sleeps = self.run_one([0])
        self.assertEqual(rec["outcome"], "success")
        self.assertEqual(rec["final_exit_code"], 0)
        self.assertEqual(len(rec["attempts"]), 1)
        self.assertEqual(sleeps, [])

    def test_transient_then_success_retries_with_backoff(self):
        rec, runner, sleeps = self.run_one([3, 3, 0], backoff_ms=100)
        self.assertEqual(rec["outcome"], "success")
        self.assertEqual(len(rec["attempts"]), 3)
        # Exponential: 100 ms then 200 ms.
        self.assertEqual(sleeps, [0.1, 0.2])
        self.assertEqual(rec["attempts"][0]["backoff_ms"], 100)
        self.assertEqual(rec["attempts"][1]["backoff_ms"], 200)
        self.assertEqual(rec["attempts"][2]["backoff_ms"], 0)

    def test_transient_exhausted_keeps_exit_code(self):
        rec, runner, sleeps = self.run_one([3, 3, 3], retries=2)
        self.assertEqual(rec["outcome"], "transient-exhausted")
        self.assertEqual(rec["final_exit_code"], 3)
        self.assertEqual(len(rec["attempts"]), 3)

    def test_permanent_failure_not_retried(self):
        rec, runner, sleeps = self.run_one([1, 0])
        self.assertEqual(rec["outcome"], "failed")
        self.assertEqual(len(rec["attempts"]), 1)
        self.assertEqual(sleeps, [])

    def test_cancelled_not_retried(self):
        rec, runner, sleeps = self.run_one([130, 0])
        self.assertEqual(rec["outcome"], "cancelled")
        self.assertEqual(rec["final_exit_code"], 130)
        self.assertEqual(len(rec["attempts"]), 1)


class BatchTest(unittest.TestCase):
    def test_run_placeholder_substitution(self):
        runner = FakeRunner([0, 0, 0])
        report = simany_batch.run_batch(
            ["prog", "--seed", "{run}"], runs=3, retries=0, backoff_ms=1,
            runner=runner, sleeper=lambda s: None)
        self.assertEqual([c[2] for c in runner.calls], ["0", "1", "2"])
        self.assertEqual(report["failed_runs"], 0)
        self.assertEqual(simany_batch.batch_exit_code(report), 0)

    def test_report_schema_and_first_failure_exit(self):
        runner = FakeRunner([0, 1, 0])
        report = simany_batch.run_batch(
            ["prog"], runs=3, retries=0, backoff_ms=1,
            runner=runner, sleeper=lambda s: None)
        self.assertEqual(report["schema"], "simany-batch-report-v1")
        self.assertEqual(report["failed_runs"], 1)
        self.assertEqual(len(report["runs"]), 3)
        self.assertEqual(report["runs"][1]["outcome"], "failed")
        self.assertEqual(simany_batch.batch_exit_code(report), 1)

    def test_subprocess_end_to_end(self):
        # Real subprocess, no fakes: python exits with the given code.
        report = simany_batch.run_batch(
            [sys.executable, "-c", "import sys; sys.exit(0)"],
            runs=1, retries=0, backoff_ms=1)
        self.assertEqual(report["runs"][0]["outcome"], "success")
        self.assertGreaterEqual(report["runs"][0]["attempts"][0]["wall_ms"],
                                0.0)


if __name__ == "__main__":
    unittest.main()
