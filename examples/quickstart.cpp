// Quickstart: simulate a small task-parallel program on a 16-core mesh.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Demonstrates the core programming model: timing annotations
// (compute / InstMix), conditional spawning (probe + spawn / join),
// annotated memory accesses, and reading the simulation statistics.

#include <cstdio>

#include "config/arch_config.h"
#include "core/engine.h"
#include "runtime/data.h"

using namespace simany;

namespace {

// A toy parallel reduction: recursively split a range, spawn one half
// when a neighbor core has room, sum elements with annotated reads.
void sum_range(TaskCtx& ctx, runtime::OwnedVector<std::int64_t>& data,
               std::size_t lo, std::size_t hi, GroupId group,
               std::int64_t* out) {
  ctx.function_boundary();
  while (hi - lo > 256) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (ctx.probe()) {
      // A neighbor accepted the reservation: ship the right half.
      ctx.spawn(group, [&data, mid, hi, group, out](TaskCtx& c) {
        sum_range(c, data, mid, hi, group, out);
      });
      hi = mid;
    } else {
      // No room anywhere nearby: keep the whole range sequential.
      break;
    }
  }
  data.read_range(ctx, lo, hi - lo);
  ctx.compute(timing::InstMix{.int_alu = 2, .branches = 1} *
              static_cast<std::uint32_t>(hi - lo));
  std::int64_t local = 0;
  for (std::size_t i = lo; i < hi; ++i) local += data.raw(i);
  *out += local;  // single-threaded engine: no host race
}

}  // namespace

int main() {
  // The paper's optimistic shared-memory architecture: 16 cores in a
  // 4x4 mesh, 1-cycle L1, 10-cycle shared memory, drift bound T = 100.
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.drift_t_cycles = 100;

  Engine sim(cfg);

  constexpr std::size_t kN = 64 * 1024;
  std::int64_t total = 0;
  std::int64_t expected = 0;

  const SimStats stats = sim.run([&](TaskCtx& ctx) {
    runtime::OwnedVector<std::int64_t> data(kN);
    for (std::size_t i = 0; i < kN; ++i) {
      data.raw(i) = static_cast<std::int64_t>(i % 97);
      expected += data.raw(i);
    }
    const GroupId g = ctx.make_group();
    sum_range(ctx, data, 0, kN, g, &total);
    ctx.join(g);
  });

  std::printf("sum           : %lld (%s)\n",
              static_cast<long long>(total),
              total == expected ? "correct" : "WRONG");
  std::printf("virtual time  : %llu cycles\n",
              static_cast<unsigned long long>(stats.completion_cycles()));
  std::printf("tasks spawned : %llu (+%llu run inline)\n",
              static_cast<unsigned long long>(stats.tasks_spawned),
              static_cast<unsigned long long>(stats.tasks_inlined));
  std::printf("messages      : %llu\n",
              static_cast<unsigned long long>(stats.messages));
  std::printf("sync stalls   : %llu\n",
              static_cast<unsigned long long>(stats.sync_stalls));
  std::printf("host wall time: %.3f ms\n", stats.wall_seconds * 1e3);
  return total == expected ? 0 : 1;
}
