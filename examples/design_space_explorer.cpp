// Design-space exploration: the use case SiMany was built for
// (paper SS I, SS VI) — quickly comparing coarse architecture choices
// for a fixed workload.
//
// Sweeps one dwarf benchmark (default: dijkstra) across:
//   * memory organization  (optimistic shared vs distributed cells)
//   * interconnect shape   (flat mesh, 4-cluster mesh, torus)
//   * core mix             (uniform vs polymorphic)
// at several machine sizes, and prints virtual-time speedups so an
// architect can see which organization wins where.
//
// Usage: design_space_explorer [dwarf-name] [factor]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "config/arch_config.h"
#include "core/engine.h"
#include "dwarfs/dwarfs.h"

using namespace simany;

namespace {

Tick run_vt(ArchConfig cfg, const dwarfs::DwarfSpec& spec, double factor) {
  Engine sim(std::move(cfg));
  return sim.run(spec.make_root(/*seed=*/7, factor)).completion_ticks;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "dijkstra";
  const double factor = argc > 2 ? std::atof(argv[2]) : 0.08;
  const auto& spec = dwarfs::dwarf_by_name(name);

  struct Variant {
    const char* label;
    ArchConfig (*make)(std::uint32_t cores);
  };
  const Variant variants[] = {
      {"shared flat mesh",
       [](std::uint32_t c) { return ArchConfig::shared_mesh(c); }},
      {"distributed flat mesh",
       [](std::uint32_t c) { return ArchConfig::distributed_mesh(c); }},
      {"distributed 4-cluster",
       [](std::uint32_t c) {
         return ArchConfig::clustered(ArchConfig::distributed_mesh(c), 4);
       }},
      {"distributed torus",
       [](std::uint32_t c) {
         ArchConfig cfg = ArchConfig::distributed_mesh(c);
         cfg.topology = net::Topology::torus2d(c);
         return cfg;
       }},
      {"distributed polymorphic",
       [](std::uint32_t c) {
         return ArchConfig::polymorphic(ArchConfig::distributed_mesh(c));
       }},
  };

  std::printf("Design-space exploration: %s (factor %.3g)\n\n",
              name.c_str(), factor);
  std::printf("%-26s", "architecture");
  const std::uint32_t sizes[] = {16, 64, 256};
  for (std::uint32_t c : sizes) std::printf("  %8uc", c);
  std::printf("   (virtual-time speedup vs 1-core shared)\n");

  const Tick base = run_vt(ArchConfig::shared_mesh(1), spec, factor);
  for (const auto& v : variants) {
    std::printf("%-26s", v.label);
    for (std::uint32_t c : sizes) {
      const Tick t = run_vt(v.make(c), spec, factor);
      std::printf("  %9.2f", double(base) / double(t));
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: higher is better; compare rows to pick an "
      "organization for this workload.\n");
  return 0;
}
