// Multiprogramming study: two task-parallel programs sharing one
// many-core machine. The root launches both benchmark roots as
// concurrent task subtrees; they compete for cores, task-queue slots
// and network links. Comparing co-run virtual times against solo runs
// quantifies consolidation interference — a design question (how many
// programs per chip?) the simulator answers directly.
//
// Usage: multiprogramming [cores] [factor]

#include <cstdio>
#include <cstdlib>

#include "config/arch_config.h"
#include "core/engine.h"
#include "dwarfs/dwarfs.h"

using namespace simany;

namespace {

Tick solo(const char* dwarf, std::uint32_t cores, double factor) {
  Engine sim(ArchConfig::shared_mesh(cores));
  return sim.run(dwarfs::dwarf_by_name(dwarf).make_root(1, factor))
      .completion_ticks;
}

struct CoRun {
  Tick total;      // completion of the whole co-schedule
  Tick a_done;     // virtual time when program A finished
  Tick b_done;
};

CoRun corun(const char* a, const char* b, std::uint32_t cores,
            double factor) {
  Engine sim(ArchConfig::shared_mesh(cores));
  Cycles a_done = 0, b_done = 0;
  const auto stats = sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    TaskFn prog_a = dwarfs::dwarf_by_name(a).make_root(1, factor);
    TaskFn prog_b = dwarfs::dwarf_by_name(b).make_root(1, factor);
    // Launch both programs as concurrent subtrees; run inline if the
    // machine is too busy to accept them (1-core case).
    spawn_or_run(ctx, g, [&a_done, prog_a](TaskCtx& c) {
      prog_a(c);
      a_done = c.now_cycles();
    });
    spawn_or_run(ctx, g, [&b_done, prog_b](TaskCtx& c) {
      prog_b(c);
      b_done = c.now_cycles();
    });
    ctx.join(g);
  });
  return CoRun{stats.completion_ticks, ticks(a_done), ticks(b_done)};
}

}  // namespace

int main(int argc, char** argv) {
  const auto cores =
      static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1]) : 64);
  const double factor = argc > 2 ? std::atof(argv[2]) : 0.1;

  const char* a = "spmxv";
  const char* b = "dijkstra";
  std::printf("Co-scheduling %s + %s on a %u-core shared-memory mesh "
              "(factor %.3g)\n\n", a, b, cores, factor);

  const Tick solo_a = solo(a, cores, factor);
  const Tick solo_b = solo(b, cores, factor);
  const CoRun both = corun(a, b, cores, factor);

  auto cyc = [](Tick t) {
    return static_cast<unsigned long long>(cycles_floor(t));
  };
  std::printf("%-28s %12llu cycles\n", "spmxv alone", cyc(solo_a));
  std::printf("%-28s %12llu cycles\n", "dijkstra alone", cyc(solo_b));
  std::printf("%-28s %12llu cycles (%+.1f%% vs alone)\n",
              "spmxv co-run", cyc(both.a_done),
              (double(both.a_done) / double(solo_a) - 1.0) * 100.0);
  std::printf("%-28s %12llu cycles (%+.1f%% vs alone)\n",
              "dijkstra co-run", cyc(both.b_done),
              (double(both.b_done) / double(solo_b) - 1.0) * 100.0);
  std::printf("%-28s %12llu cycles\n", "co-schedule makespan",
              cyc(both.total));
  const double serial =
      double(cycles_floor(solo_a) + cycles_floor(solo_b));
  std::printf("\nco-scheduling vs running back-to-back: %.2fx makespan "
              "improvement\n",
              serial / double(cycles_floor(both.total)));
  return 0;
}
