// Renders an ASCII per-core activity timeline from the trace API —
// a quick way to see how work diffuses through the mesh over virtual
// time (who computes when, where the stalls cluster).
//
// Usage: trace_timeline [dwarf] [cores] [factor]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "config/arch_config.h"
#include "core/engine.h"
#include "dwarfs/dwarfs.h"

using namespace simany;

namespace {

/// Records [start, end) execution intervals per core.
class IntervalRecorder final : public TraceSink {
 public:
  explicit IntervalRecorder(std::uint32_t cores)
      : open_(cores, kNone), intervals_(cores) {}

  void on_task_start(CoreId core, Tick at) override { open_[core] = at; }
  void on_task_end(CoreId core, Tick at) override {
    if (open_[core] != kNone) {
      intervals_[core].emplace_back(open_[core], at);
      open_[core] = kNone;
    }
  }
  void on_stall(CoreId core, Tick at) override {
    stalls_.emplace_back(core, at);
  }

  [[nodiscard]] const auto& intervals() const { return intervals_; }
  [[nodiscard]] const auto& stalls() const { return stalls_; }

 private:
  static constexpr Tick kNone = ~Tick{0};
  std::vector<Tick> open_;
  std::vector<std::vector<std::pair<Tick, Tick>>> intervals_;
  std::vector<std::pair<CoreId, Tick>> stalls_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string dwarf = argc > 1 ? argv[1] : "octree";
  const auto cores =
      static_cast<std::uint32_t>(argc > 2 ? std::atoi(argv[2]) : 16);
  const double factor = argc > 3 ? std::atof(argv[3]) : 0.08;

  Engine sim(ArchConfig::shared_mesh(cores));
  IntervalRecorder recorder(cores);
  sim.set_trace(&recorder);
  const auto stats =
      sim.run(dwarfs::dwarf_by_name(dwarf).make_root(1, factor));

  constexpr int kWidth = 72;
  const Tick total = std::max<Tick>(stats.completion_ticks, 1);
  std::printf("%s on %u cores — %llu virtual cycles "
              "(each column = %.0f cycles; '#' executing, '.' idle)\n\n",
              dwarf.c_str(), cores,
              static_cast<unsigned long long>(stats.completion_cycles()),
              cycles_fp(total) / kWidth);

  for (std::uint32_t c = 0; c < cores; ++c) {
    std::string row(kWidth, '.');
    for (const auto& [s, e] : recorder.intervals()[c]) {
      const int b0 = static_cast<int>(s * kWidth / total);
      const int b1 =
          std::min<int>(kWidth - 1, static_cast<int>(e * kWidth / total));
      for (int b = b0; b <= b1; ++b) row[static_cast<std::size_t>(b)] = '#';
    }
    std::printf("core %3u |%s|\n", c, row.c_str());
  }
  std::printf("\nstalls: %zu   tasks: %llu spawned + %llu inline   "
              "avg parallelism: %.1f\n",
              recorder.stalls().size(),
              static_cast<unsigned long long>(stats.tasks_spawned),
              static_cast<unsigned long long>(stats.tasks_inlined),
              stats.avg_parallelism());
  return 0;
}
