// Heterogeneity-aware scheduling on polymorphic machines — the paper's
// future-work suggestion (SS VIII): "the results we obtained for the
// polymorphic ... architectures could be improved substantially with
// specific scheduling policies that would take into account the ...
// computing power disparity among cores."
//
// SiMany's run-time implements that policy behind
// RuntimeCosts::speed_aware_dispatch: probe targets and migration
// victims are scored by load / speed instead of load alone. This
// example measures what the policy buys on polymorphic meshes.

#include <cstdio>

#include "config/arch_config.h"
#include "core/engine.h"
#include "dwarfs/dwarfs.h"

using namespace simany;

namespace {

Tick run(std::uint32_t cores, bool polymorphic, bool speed_aware,
         const dwarfs::DwarfSpec& spec, double factor) {
  ArchConfig cfg = ArchConfig::shared_mesh(cores);
  if (polymorphic) cfg = ArchConfig::polymorphic(std::move(cfg));
  cfg.runtime.speed_aware_dispatch = speed_aware;
  Engine sim(std::move(cfg));
  return sim.run(spec.make_root(/*seed=*/21, factor)).completion_ticks;
}

}  // namespace

int main(int argc, char** argv) {
  const double factor = argc > 1 ? std::atof(argv[1]) : 0.1;
  std::printf("Polymorphic meshes: naive vs speed-aware dispatch "
              "(factor %.3g)\n\n", factor);
  std::printf("%-22s %6s %14s %14s %14s %9s\n", "dwarf", "cores",
              "uniform", "poly naive", "poly aware", "gain");
  for (const auto& spec : dwarfs::all_dwarfs()) {
    for (std::uint32_t cores : {16u, 64u}) {
      const Tick uni = run(cores, false, false, spec, factor);
      const Tick naive = run(cores, true, false, spec, factor);
      const Tick aware = run(cores, true, true, spec, factor);
      std::printf("%-22s %6u %14llu %14llu %14llu %8.1f%%\n",
                  spec.name.c_str(), cores,
                  static_cast<unsigned long long>(cycles_floor(uni)),
                  static_cast<unsigned long long>(cycles_floor(naive)),
                  static_cast<unsigned long long>(cycles_floor(aware)),
                  (double(naive) / double(aware) - 1.0) * 100.0);
    }
  }
  std::printf(
      "\n'gain' is the execution-time improvement of speed-aware "
      "dispatch over the naive run-time on the same polymorphic "
      "machine.\n");
  return 0;
}
