// simany_cli — run any dwarf benchmark on any architecture from the
// command line, the way an architect would drive the simulator.
//
//   simany_cli --dwarf dijkstra --cores 64 --distributed --factor 0.1
//   simany_cli --config my_arch.cfg --dwarf spmxv --trace events.csv
//   simany_cli --save-config out.cfg --cores 256 --clusters 4
//
// Flags:
//   --dwarf <name>        benchmark (default spmxv); 'list' to list
//   --config <file>       load a full ArchConfig (config_io format)
//   --save-config <file>  write the effective config and exit
//   --cores <n>           preset mesh size (default 16)
//   --distributed         distributed-memory architecture
//   --clusters <n>        clustered mesh preset
//   --polymorphic         alternating 1/2, 3/2 core speeds
//   --t <cycles>          drift bound T (default 100)
//   --factor <f>          dataset scale (default 0.1)
//   --seed <s>            dataset seed (default 1)
//   --cycle-level         run the conservative reference simulator
//   --trace <file>        write a CSV event trace (sequential host only;
//                         see --trace-json for the parallel backend)
//   --trace-json <file>   write a Perfetto/Chrome trace-event JSON file
//                         (works under both host backends)
//   --trace-csv <file>    write the merged telemetry event stream as CSV
//   --metrics-out <file>  write the metrics registry (.json or .csv)
//   --metrics-interval <c> virtual-time metric sampling period, cycles
//   --profile-host        add wall-clock host-round tracks to the trace
//   --critpath-out <file> write the causal critical-path report
//                         (simany-critpath-v1 JSON); with --trace-json
//                         the path is also rendered as its own track
//   --critpath-top <k>    ranking depth of the critpath report (default 10)
//   --status-out <file>   maintain a live simany-status-v1 heartbeat
//                         file (atomically replaced at barriers)
//   --status-interval-ms <n> heartbeat period in wall-clock ms
//                         (default 1000; 0 writes at every barrier)
//   --messages            print the message-kind histogram
//   --lint                lint the configuration and exit (nonzero on
//                         errors)
//   --checked             run with the invariant checker attached
//   --host-threads <n>    host worker threads (n>1 selects the parallel
//                         backend; simulated timing depends only on the
//                         shard count, not the thread count)
//   --host-shards <n>     shard count override (default: one per thread)
//                         (aborts with a diagnostic on any violation)
//   --fault-seed <s>      fault-plan seed (default 0; faults fire only
//                         when a probability below is nonzero)
//   --fault-drop <p>      message-drop probability (masked by retries)
//   --fault-delay <p>     message-delay probability
//   --fault-dup <p>       message-duplication probability
//   --fault-stall <p>     transient core-stall probability per task
//   --fault-spawn-fail <p> spawn-probe denial probability
//   --fault-mem-spike <p> memory-latency spike probability
//   --fault-dead <n>      permanently disable n seed-chosen cores
//   --fault-wedge <c>     wedge core c into a non-charging spin
//                         (repeatable; tripped by the livelock watchdog)
//   --deadline-ms <ms>    wall-clock budget; exceeding it aborts the run
//                         with a structured deadline-exceeded error
//   --max-vtime <cycles>  virtual-time budget (deterministic abort)
//   --watchdog-rounds <n> no-progress polls before declaring livelock
//   --crash-report <file> on failure, write a simany-crash-report-v1
//                         JSON document (error, progress, diagnosis)
//   --retries <n>         rerun transient failures up to n times
//   --retry-backoff-ms <ms> initial backoff, doubled per retry
//   --snapshot-out <file> write a simany-snapshot-v1 checkpoint; with
//                         no cursor flag, captures the final state
//   --snapshot-at <q>     one-shot capture at the quiesce barrier where
//                         total scheduling quanta reach q
//   --snapshot-every <q>  periodic capture cadence in quanta (the file
//                         is overwritten in place)
//   --resume-from <file>  restore a checkpoint of the same (config,
//                         dwarf, seed, factor) and finish the run;
//                         refuses mismatched identity with a
//                         structured error (see docs/snapshot.md)
//   --autosave-dir <dir>  autosave ring directory (run.autosave.N.snap
//                         generations + manifest; docs/robustness.md)
//   --autosave-every <q>  autosave cadence in scheduling quanta
//   --autosave-wall-ms <n> autosave cadence in wall-clock ms (captures
//                         ride natural barriers; combinable with
//                         --autosave-every)
//   --autosave-keep <n>   ring bound: generations kept (default 4)
//   --auto-resume <dir>   scan the ring at startup, resume from the
//                         newest valid generation (torn generations
//                         are skipped with a warning); also sets the
//                         autosave dir unless --autosave-dir differs.
//                         An empty ring is a fresh start, so the same
//                         command line survives any number of crashes
//   --fingerprint         print the run's arch-stats and telemetry
//                         fingerprints (the determinism oracle the
//                         kill-chaos recovery tests compare)
//
// All numeric flags use checked parsing: "3x" is a usage error, not 3.
// Exit codes: 0 success, 1 permanent failure, 2 usage error,
// 3 transient failure with retries exhausted, 130 cancelled by signal.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "check/config_lint.h"
#include "check/invariant_checker.h"
#include "config/arch_config.h"
#include "config/config_io.h"
#include "core/engine.h"
#include "core/sim_error.h"
#include "dwarfs/dwarfs.h"
#include "check/critpath_check.h"
#include "guard/crash_report.h"
#include "obs/critpath.h"
#include "obs/event.h"
#include "obs/export.h"
#include "obs/status.h"
#include "obs/telemetry.h"
#include "recover/artifacts.h"
#include "recover/supervisor.h"
#include "snapshot/plan.h"
#include "snapshot/snapshot.h"
#include "stats/trace_sinks.h"

using namespace simany;

namespace {

// Signal handling: the handler may only touch async-signal-safe state.
// Engine::request_cancel() is a single relaxed atomic CAS, so the
// handler forwards straight to whichever engine is live; the flag
// distinguishes "cancelled" from "engine failed on its own" afterwards.
std::atomic<Engine*> g_engine{nullptr};
std::atomic<bool> g_signalled{false};

extern "C" void on_cancel_signal(int) {
  g_signalled.store(true, std::memory_order_relaxed);
  Engine* e = g_engine.load(std::memory_order_relaxed);
  if (e != nullptr) e->request_cancel();
}

// Arch-stats fingerprint for --fingerprint: FNV-1a64 over the purely
// architectural SimStats counters (plus per-core busy time). Host-side
// observations (wall time, rounds, parallelism samples) are excluded —
// they may legitimately differ between an uninterrupted run and its
// auto-resumed twin, and the recovery tests compare exactly this value.
std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t arch_stats_fingerprint(const SimStats& st) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv_u64(h, st.completion_ticks);
  h = fnv_u64(h, st.tasks_spawned);
  h = fnv_u64(h, st.tasks_inlined);
  h = fnv_u64(h, st.tasks_migrated);
  h = fnv_u64(h, st.probes_sent);
  h = fnv_u64(h, st.probes_denied);
  h = fnv_u64(h, st.messages);
  h = fnv_u64(h, st.sync_stalls);
  h = fnv_u64(h, st.joins_suspended);
  h = fnv_u64(h, st.faults_injected);
  h = fnv_u64(h, st.fault_msgs_delayed);
  h = fnv_u64(h, st.fault_msgs_duplicated);
  h = fnv_u64(h, st.fault_msgs_dropped);
  h = fnv_u64(h, st.fault_msg_retries);
  h = fnv_u64(h, st.fault_msgs_reordered);
  h = fnv_u64(h, st.fault_core_stalls);
  h = fnv_u64(h, st.fault_spawn_denials);
  h = fnv_u64(h, st.fault_mem_spikes);
  h = fnv_u64(h, st.fault_core_wedges);
  h = fnv_u64(h, st.fault_dead_cores);
  h = fnv_u64(h, st.guard_inbox_overflows);
  h = fnv_u64(h, st.guard_fiber_overflows);
  h = fnv_u64(h, st.network.bytes);
  h = fnv_u64(h, st.network.hops);
  for (const Tick t : st.core_busy_ticks) h = fnv_u64(h, t);
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dwarf_name = "spmxv";
  std::optional<std::string> config_path;
  std::optional<std::string> save_config_path;
  std::optional<std::string> trace_path;
  std::optional<std::string> trace_json_path;
  std::optional<std::string> trace_csv_path;
  std::optional<std::string> metrics_path;
  std::optional<std::string> critpath_path;
  std::size_t critpath_top = 10;
  std::optional<std::string> status_path;
  std::uint64_t status_interval_ms = 1000;
  std::uint64_t metrics_interval = 0;
  bool profile_host = false;
  std::uint32_t cores = 16;
  std::uint32_t clusters = 0;
  bool distributed = false;
  bool polymorphic = false;
  bool cycle_level = false;
  bool show_messages = false;
  bool lint_only = false;
  bool checked = false;
  Cycles drift_t = 100;
  double factor = 0.1;
  std::uint32_t host_threads = 0;
  std::uint32_t host_shards = 0;
  std::uint64_t seed = 1;
  std::uint64_t fault_seed = 0;
  double fault_drop = 0.0;
  double fault_delay = 0.0;
  double fault_dup = 0.0;
  double fault_stall = 0.0;
  double fault_spawn_fail = 0.0;
  double fault_mem_spike = 0.0;
  std::uint32_t fault_dead = 0;
  std::vector<std::uint32_t> fault_wedge;
  std::uint64_t deadline_ms = 0;
  std::uint64_t max_vtime = 0;
  std::uint32_t watchdog_rounds = 0;
  std::optional<std::string> crash_report_path;
  std::uint32_t retries = 0;
  std::uint64_t retry_backoff_ms = 100;
  std::optional<std::string> snapshot_out;
  std::uint64_t snapshot_at = 0;
  std::uint64_t snapshot_every = 0;
  std::optional<std::string> resume_from;
  std::string autosave_dir;
  std::uint64_t autosave_every = 0;
  std::uint64_t autosave_wall_ms = 0;
  std::uint32_t autosave_keep = 4;
  std::optional<std::string> auto_resume;
  bool fingerprint = false;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    // Checked numeric parsing (config_io discipline): "--retries 3x"
    // is a usage error, not a silent 3.
    auto need_u64 = [&](const char* flag) -> std::uint64_t {
      const std::string v = need(flag);
      std::uint64_t out = 0;
      if (!try_parse_u64(v, out)) {
        std::fprintf(stderr, "invalid value for %s: '%s' (expected an "
                             "unsigned integer)\n",
                     flag, v.c_str());
        std::exit(2);
      }
      return out;
    };
    auto need_u32 = [&](const char* flag) -> std::uint32_t {
      const std::string v = need(flag);
      std::uint32_t out = 0;
      if (!try_parse_u32(v, out)) {
        std::fprintf(stderr, "invalid value for %s: '%s' (expected an "
                             "unsigned 32-bit integer)\n",
                     flag, v.c_str());
        std::exit(2);
      }
      return out;
    };
    auto need_f64 = [&](const char* flag) -> double {
      const std::string v = need(flag);
      double out = 0.0;
      if (!try_parse_f64(v, out)) {
        std::fprintf(stderr, "invalid value for %s: '%s' (expected a "
                             "number)\n",
                     flag, v.c_str());
        std::exit(2);
      }
      return out;
    };
    if (!std::strcmp(argv[i], "--dwarf")) {
      dwarf_name = need("--dwarf");
    } else if (!std::strcmp(argv[i], "--config")) {
      config_path = need("--config");
    } else if (!std::strcmp(argv[i], "--save-config")) {
      save_config_path = need("--save-config");
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace_path = need("--trace");
    } else if (!std::strcmp(argv[i], "--trace-json")) {
      trace_json_path = need("--trace-json");
    } else if (!std::strcmp(argv[i], "--trace-csv")) {
      trace_csv_path = need("--trace-csv");
    } else if (!std::strcmp(argv[i], "--metrics-out")) {
      metrics_path = need("--metrics-out");
    } else if (!std::strcmp(argv[i], "--critpath-out")) {
      critpath_path = need("--critpath-out");
    } else if (!std::strcmp(argv[i], "--critpath-top")) {
      critpath_top = static_cast<std::size_t>(need_u64("--critpath-top"));
    } else if (!std::strcmp(argv[i], "--status-out")) {
      status_path = need("--status-out");
    } else if (!std::strcmp(argv[i], "--status-interval-ms")) {
      status_interval_ms = need_u64("--status-interval-ms");
    } else if (!std::strcmp(argv[i], "--metrics-interval")) {
      metrics_interval = need_u64("--metrics-interval");
    } else if (!std::strcmp(argv[i], "--profile-host")) {
      profile_host = true;
    } else if (!std::strcmp(argv[i], "--cores")) {
      cores = need_u32("--cores");
    } else if (!std::strcmp(argv[i], "--clusters")) {
      clusters = need_u32("--clusters");
    } else if (!std::strcmp(argv[i], "--distributed")) {
      distributed = true;
    } else if (!std::strcmp(argv[i], "--polymorphic")) {
      polymorphic = true;
    } else if (!std::strcmp(argv[i], "--cycle-level")) {
      cycle_level = true;
    } else if (!std::strcmp(argv[i], "--messages")) {
      show_messages = true;
    } else if (!std::strcmp(argv[i], "--lint")) {
      lint_only = true;
    } else if (!std::strcmp(argv[i], "--checked")) {
      checked = true;
    } else if (!std::strcmp(argv[i], "--host-threads")) {
      host_threads = need_u32("--host-threads");
    } else if (!std::strcmp(argv[i], "--host-shards")) {
      host_shards = need_u32("--host-shards");
    } else if (!std::strcmp(argv[i], "--fault-seed")) {
      fault_seed = need_u64("--fault-seed");
    } else if (!std::strcmp(argv[i], "--fault-drop")) {
      fault_drop = need_f64("--fault-drop");
    } else if (!std::strcmp(argv[i], "--fault-delay")) {
      fault_delay = need_f64("--fault-delay");
    } else if (!std::strcmp(argv[i], "--fault-dup")) {
      fault_dup = need_f64("--fault-dup");
    } else if (!std::strcmp(argv[i], "--fault-stall")) {
      fault_stall = need_f64("--fault-stall");
    } else if (!std::strcmp(argv[i], "--fault-spawn-fail")) {
      fault_spawn_fail = need_f64("--fault-spawn-fail");
    } else if (!std::strcmp(argv[i], "--fault-mem-spike")) {
      fault_mem_spike = need_f64("--fault-mem-spike");
    } else if (!std::strcmp(argv[i], "--fault-dead")) {
      fault_dead = need_u32("--fault-dead");
    } else if (!std::strcmp(argv[i], "--fault-wedge")) {
      fault_wedge.push_back(need_u32("--fault-wedge"));
    } else if (!std::strcmp(argv[i], "--deadline-ms")) {
      deadline_ms = need_u64("--deadline-ms");
    } else if (!std::strcmp(argv[i], "--max-vtime")) {
      max_vtime = need_u64("--max-vtime");
    } else if (!std::strcmp(argv[i], "--watchdog-rounds")) {
      watchdog_rounds = need_u32("--watchdog-rounds");
    } else if (!std::strcmp(argv[i], "--crash-report")) {
      crash_report_path = need("--crash-report");
    } else if (!std::strcmp(argv[i], "--retries")) {
      retries = need_u32("--retries");
    } else if (!std::strcmp(argv[i], "--retry-backoff-ms")) {
      retry_backoff_ms = need_u64("--retry-backoff-ms");
    } else if (!std::strcmp(argv[i], "--snapshot-out")) {
      snapshot_out = need("--snapshot-out");
    } else if (!std::strcmp(argv[i], "--snapshot-at")) {
      snapshot_at = need_u64("--snapshot-at");
    } else if (!std::strcmp(argv[i], "--snapshot-every")) {
      snapshot_every = need_u64("--snapshot-every");
    } else if (!std::strcmp(argv[i], "--resume-from")) {
      resume_from = need("--resume-from");
    } else if (!std::strcmp(argv[i], "--autosave-dir")) {
      autosave_dir = need("--autosave-dir");
    } else if (!std::strcmp(argv[i], "--autosave-every")) {
      autosave_every = need_u64("--autosave-every");
    } else if (!std::strcmp(argv[i], "--autosave-wall-ms")) {
      autosave_wall_ms = need_u64("--autosave-wall-ms");
    } else if (!std::strcmp(argv[i], "--autosave-keep")) {
      autosave_keep = need_u32("--autosave-keep");
    } else if (!std::strcmp(argv[i], "--auto-resume")) {
      auto_resume = need("--auto-resume");
    } else if (!std::strcmp(argv[i], "--fingerprint")) {
      fingerprint = true;
    } else if (!std::strcmp(argv[i], "--t")) {
      drift_t = need_u64("--t");
    } else if (!std::strcmp(argv[i], "--factor")) {
      factor = need_f64("--factor");
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = need_u64("--seed");
    } else {
      std::fprintf(stderr, "unknown flag %s (see header comment)\n",
                   argv[i]);
      return 2;
    }
  }

  if (dwarf_name == "list") {
    for (const auto& spec : dwarfs::all_dwarfs()) {
      std::printf("%s\n", spec.name.c_str());
    }
    return 0;
  }

  ArchConfig cfg;
  if (config_path) {
    cfg = load_config_file(*config_path);
  } else {
    cfg = distributed ? ArchConfig::distributed_mesh(cores)
                      : ArchConfig::shared_mesh(cores);
    if (clusters > 0) cfg = ArchConfig::clustered(std::move(cfg), clusters);
    if (polymorphic) cfg = ArchConfig::polymorphic(std::move(cfg));
    cfg.drift_t_cycles = drift_t;
  }
  if (host_threads > 0) {
    cfg.host.threads = host_threads;
    if (host_threads > 1) cfg.host.mode = HostMode::kParallel;
  }
  if (host_shards > 0) {
    cfg.host.shards = host_shards;
    cfg.host.mode = HostMode::kParallel;
  }
  if (metrics_interval > 0) cfg.obs.metrics_interval_cycles = metrics_interval;
  if (profile_host) cfg.obs.profile_host = true;

  // TraceSink / observer instrumentation pins the engine to the
  // sequential host. Refuse the contradictory combination loudly
  // instead of silently dropping the requested parallelism.
  if ((trace_path || show_messages || checked) &&
      (host_threads > 1 || host_shards > 1)) {
    const char* flag = trace_path ? "--trace"
                      : checked   ? "--checked"
                                  : "--messages";
    std::fprintf(
        stderr,
        "error: %s attaches a sequential-host observer and cannot run "
        "with --host-threads/--host-shards > 1.\n"
        "hint : the shard-aware telemetry works under the parallel "
        "backend: use --trace-json / --trace-csv / --metrics-out.\n",
        flag);
    return 2;
  }

  // Flags layer on top of a loaded config; untouched flags (still at
  // their zero defaults) leave the config's own fault plan alone.
  if (fault_seed != 0) cfg.fault.seed = fault_seed;
  if (fault_drop > 0.0) cfg.fault.msg_drop_prob = fault_drop;
  if (fault_delay > 0.0) cfg.fault.msg_delay_prob = fault_delay;
  if (fault_dup > 0.0) cfg.fault.msg_dup_prob = fault_dup;
  if (fault_stall > 0.0) cfg.fault.stall_prob = fault_stall;
  if (fault_spawn_fail > 0.0) cfg.fault.spawn_fail_prob = fault_spawn_fail;
  if (fault_mem_spike > 0.0) cfg.fault.mem_spike_prob = fault_mem_spike;
  if (fault_dead > 0) cfg.fault.dead_cores = fault_dead;
  for (const std::uint32_t c : fault_wedge) {
    cfg.fault.wedge_core_list.push_back(c);
  }
  if (deadline_ms > 0) cfg.guard.deadline_ms = deadline_ms;
  if (max_vtime > 0) cfg.guard.max_vtime_cycles = max_vtime;
  if (watchdog_rounds > 0) cfg.guard.watchdog_rounds = watchdog_rounds;

  if (lint_only) {
    const auto diags = check::lint_config(cfg);
    if (diags.empty()) {
      std::printf("configuration is clean (%u cores)\n", cfg.num_cores());
      return 0;
    }
    std::fputs(check::format_diags(diags).c_str(), stdout);
    return check::has_errors(diags) ? 1 : 0;
  }

  if (save_config_path) {
    const bool ok = recover::write_artifact(
        *save_config_path, "config", recover::FailPolicy::kDegrade,
        [&](std::ostream& out) { save_config(cfg, out); });
    if (!ok) return 1;
    std::printf("wrote %s\n", save_config_path->c_str());
    return 0;
  }

  if ((snapshot_at > 0 || snapshot_every > 0) && !snapshot_out) {
    std::fprintf(stderr,
                 "error: --snapshot-at/--snapshot-every need "
                 "--snapshot-out <file>.\n");
    return 2;
  }

  // Durable-run flag surface (src/recover). --auto-resume names the
  // ring directory too, so one directory serves scan and capture; an
  // explicit --autosave-dir wins if both are given.
  const std::string ring_dir =
      !autosave_dir.empty() ? autosave_dir
      : auto_resume         ? *auto_resume
                            : std::string{};
  const bool autosave_requested =
      autosave_every > 0 || autosave_wall_ms > 0;
  if (autosave_requested && ring_dir.empty()) {
    std::fprintf(stderr,
                 "error: --autosave-every/--autosave-wall-ms need a ring "
                 "directory (--autosave-dir or --auto-resume).\n");
    return 2;
  }
  if (!autosave_dir.empty() && !autosave_requested) {
    std::fprintf(stderr,
                 "error: --autosave-dir needs a cadence "
                 "(--autosave-every <quanta> or --autosave-wall-ms <ms>).\n");
    return 2;
  }
  if (resume_from && auto_resume) {
    std::fprintf(stderr,
                 "error: --resume-from and --auto-resume are two answers "
                 "to the same question; pick one.\n");
    return 2;
  }
  if (snapshot_out && (auto_resume || autosave_requested)) {
    std::fprintf(stderr,
                 "error: --snapshot-out cannot be combined with "
                 "--auto-resume/--autosave-* — the one-shot snapshot "
                 "plan and the autosave ring would fight over the "
                 "barrier schedule (chain --resume-from instead).\n");
    return 2;
  }

  const auto& spec = dwarfs::dwarf_by_name(dwarf_name);

  std::signal(SIGINT, on_cancel_signal);
  std::signal(SIGTERM, on_cancel_signal);

  SimStats st;
  std::uint32_t attempt = 0;
  for (;;) {
    // Each attempt gets a fresh engine and fresh sinks: a failed run's
    // partial telemetry must not bleed into its retry.
    Engine sim(cfg, cycle_level ? ExecutionMode::kCycleLevel
                                : ExecutionMode::kVirtualTime);

    std::ofstream trace_file;
    std::optional<stats::CsvTrace> csv;
    stats::MessageHistogram histogram;
    stats::TeeTrace tee;
    if (trace_path) {
      trace_file.open(*trace_path);
      csv.emplace(trace_file);
      tee.add(&*csv);
    }
    if (show_messages) tee.add(&histogram);
    if (trace_path || show_messages) sim.set_trace(&tee);

    check::InvariantChecker invariants;
    if (checked) invariants.attach(sim);

    std::optional<obs::Telemetry> telemetry;
    if (trace_json_path || trace_csv_path || metrics_path || critpath_path ||
        fingerprint || cfg.obs.profile_host ||
        cfg.obs.metrics_interval_cycles > 0) {
      obs::TelemetryOptions topt;
      topt.metrics_interval_cycles = cfg.obs.metrics_interval_cycles;
      topt.profile_host = cfg.obs.profile_host;
      telemetry.emplace(topt);
      sim.set_telemetry(&*telemetry);
    }

    std::optional<obs::StatusReporter> status;
    if (status_path) {
      status.emplace(*status_path, status_interval_ms);
      sim.set_status(&*status);
    }

    // Checkpoint/restore (src/snapshot): the workload fingerprint
    // binds the file to this exact (dwarf, seed, factor), and restore
    // additionally checks the config fingerprint from the header.
    const std::uint64_t workload_fp =
        snapshot::workload_fingerprint(dwarf_name, seed, factor);
    if (snapshot_out) {
      snapshot::SnapshotPlan plan;
      plan.path = *snapshot_out;
      plan.at_quanta = snapshot_at;
      plan.every_quanta = snapshot_every;
      plan.workload_fp = workload_fp;
      sim.snapshot_to(plan);
    }
    if (resume_from) {
      try {
        sim.restore_from(*resume_from, workload_fp);
      } catch (const SimError& e) {
        std::fprintf(stderr, "cannot resume: %s\n", e.what());
        return 1;
      }
    }

    // Durable runs (src/recover): scan the autosave ring, restore the
    // newest valid generation, arm the autosave hook so the
    // continuation keeps checkpointing. Re-armed per attempt — a
    // transient failure's emergency capture becomes the next attempt's
    // resume point, turning --retries incremental.
    recover::ArmInfo arm_info;
    if (!ring_dir.empty()) {
      recover::DurableOptions dopt;
      dopt.dir = ring_dir;
      dopt.every_quanta = autosave_every;
      dopt.wall_ms = autosave_wall_ms;
      dopt.keep = autosave_keep;
      dopt.auto_resume = auto_resume.has_value();
      dopt.workload_fp = workload_fp;
      recover::RunSupervisor supervisor(dopt);
      try {
        arm_info = supervisor.arm(sim);
      } catch (const SimError& e) {
        std::fprintf(stderr, "cannot arm durable run: %s\n", e.what());
        return 1;
      }
      for (const auto& w : arm_info.warnings) {
        std::fprintf(stderr, "simany: warning: %s\n", w.c_str());
      }
      if (arm_info.resumed) {
        // stderr, so even an attempt that later fails leaves the
        // resumed cursor in the log (the retry test greps for it).
        std::fprintf(stderr,
                     "resuming from autosave generation %llu at quanta "
                     "%llu\n",
                     static_cast<unsigned long long>(arm_info.generation),
                     static_cast<unsigned long long>(arm_info.cursor));
      }
    }

    g_engine.store(&sim, std::memory_order_relaxed);
    try {
      st = sim.run(spec.make_root(seed, factor));
    } catch (const SimError& e) {
      g_engine.store(nullptr, std::memory_order_relaxed);
      const SimError::Context& c = e.context();
      std::fprintf(stderr,
                   "simulated machine failed: %s\n  error      : %s\n"
                   "  cause      : %s\n  cores      : %u -> %u\n"
                   "  shard      : %u\n  at tick    : %llu\n"
                   "  fault seed : %llu\n",
                   e.what(), to_string(e.code()), c.cause.c_str(), c.core,
                   c.peer, c.shard,
                   static_cast<unsigned long long>(c.at_tick),
                   static_cast<unsigned long long>(c.fault_seed));

      // The guard flushed partial stats/telemetry before unwinding, so
      // the requested exports still get whatever the run produced.
      // All of them degrade on I/O failure: a full disk must not turn
      // a diagnosable crash into a second crash.
      if (telemetry) {
        if (trace_json_path) {
          const bool ok = recover::write_artifact(
              *trace_json_path, "trace json", recover::FailPolicy::kDegrade,
              [&](std::ostream& out) {
                obs::ChromeTraceOptions copt;
                copt.host_threads =
                    static_cast<unsigned>(sim.stats().host_threads_used);
                obs::write_chrome_trace(out, *telemetry, copt);
              });
          if (ok) {
            std::fprintf(stderr, "  partial trace json: %s\n",
                         trace_json_path->c_str());
          }
        }
        if (trace_csv_path) {
          recover::write_artifact(
              *trace_csv_path, "trace csv", recover::FailPolicy::kDegrade,
              [&](std::ostream& out) {
                obs::write_events_csv(out, *telemetry);
              });
        }
        if (metrics_path) {
          recover::write_artifact(
              *metrics_path, "metrics", recover::FailPolicy::kDegrade,
              [&](std::ostream& out) {
                telemetry->metrics().write_json(out);
              });
        }
        if (critpath_path) {
          // Partial stream: the report covers whatever timeline the run
          // produced before the abort (no conservation check — the run
          // has no completion time to conserve against).
          const obs::CritPathReport partial =
              obs::analyze_critical_path(telemetry->events(), critpath_top);
          const bool ok = recover::write_artifact(
              *critpath_path, "critpath", recover::FailPolicy::kDegrade,
              [&](std::ostream& out) {
                obs::write_critpath_json(out, partial);
              });
          if (ok) {
            std::fprintf(stderr, "  partial critpath: %s\n",
                         critpath_path->c_str());
          }
        }
      }
      if (crash_report_path) {
        const bool ok = recover::write_artifact(
            *crash_report_path, "crash report",
            recover::FailPolicy::kDegrade, [&](std::ostream& out) {
              guard::CrashReportInfo info;
              info.error = e.context();
              info.message = e.what();
              info.stats = sim.stats();
              info.num_cores = cfg.num_cores();
              guard::write_crash_report(out, info, sim.inspect(),
                                        cfg.topology);
            });
        if (ok) {
          std::fprintf(stderr, "  crash report: %s\n",
                       crash_report_path->c_str());
        }
      }

      if (e.code() == SimErrorCode::kCancelled ||
          g_signalled.load(std::memory_order_relaxed)) {
        return 130;
      }
      if (e.transient() && attempt < retries) {
        ++attempt;
        const std::uint64_t backoff = retry_backoff_ms << (attempt - 1);
        std::fprintf(stderr,
                     "transient failure, retrying (%u/%u) in %llu ms\n",
                     attempt, retries,
                     static_cast<unsigned long long>(backoff));
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        continue;
      }
      return e.transient() ? 3 : 1;
    }
    g_engine.store(nullptr, std::memory_order_relaxed);

    std::printf("dwarf           : %s (seed %llu, factor %g)\n",
                dwarf_name.c_str(), static_cast<unsigned long long>(seed),
                factor);
    if (snapshot_out) {
      std::printf("snapshot        : %s\n", snapshot_out->c_str());
    }
    if (resume_from) {
      std::printf("resumed from    : %s (replay-verified)\n",
                  resume_from->c_str());
    }
    if (arm_info.resumed) {
      std::printf("auto-resumed    : generation %llu at quanta %llu "
                  "(replay-verified)\n",
                  static_cast<unsigned long long>(arm_info.generation),
                  static_cast<unsigned long long>(arm_info.cursor));
    }
    std::printf("architecture    : %u cores, %s, T=%llu%s%s\n",
                cfg.num_cores(),
                cfg.mem.model == mem::MemoryModel::kShared ? "shared"
                                                           : "distributed",
                static_cast<unsigned long long>(cfg.drift_t_cycles),
                polymorphic ? ", polymorphic" : "",
                cycle_level ? ", cycle-level" : "");
    std::printf("virtual time    : %llu cycles\n",
                static_cast<unsigned long long>(st.completion_cycles()));
    std::printf("tasks           : %llu spawned, %llu inline, %llu migrated\n",
                static_cast<unsigned long long>(st.tasks_spawned),
                static_cast<unsigned long long>(st.tasks_inlined),
                static_cast<unsigned long long>(st.tasks_migrated));
    std::printf("messages        : %llu (%llu bytes over %llu hops)\n",
                static_cast<unsigned long long>(st.messages),
                static_cast<unsigned long long>(st.network.bytes),
                static_cast<unsigned long long>(st.network.hops));
    std::printf("sync stalls     : %llu (avg parallelism %.1f)\n",
                static_cast<unsigned long long>(st.sync_stalls),
                st.avg_parallelism());
    std::printf("drift high-water: %llu cycles\n",
                static_cast<unsigned long long>(st.drift_max_cycles()));
    std::printf("host wall time  : %.3f ms (%llu threads, %llu rounds)\n",
                st.wall_seconds * 1e3,
                static_cast<unsigned long long>(st.host_threads_used),
                static_cast<unsigned long long>(st.host_rounds));
    if (cfg.fault.enabled()) {
      std::printf("faults          : %llu injected (seed %llu; %llu msg "
                  "delayed, %llu dup, %llu dropped, %llu stalls, %llu spawn "
                  "denials, %llu mem spikes, %u dead cores)\n",
                  static_cast<unsigned long long>(st.faults_injected),
                  static_cast<unsigned long long>(cfg.fault.seed),
                  static_cast<unsigned long long>(st.fault_msgs_delayed),
                  static_cast<unsigned long long>(st.fault_msgs_duplicated),
                  static_cast<unsigned long long>(st.fault_msgs_dropped),
                  static_cast<unsigned long long>(st.fault_core_stalls),
                  static_cast<unsigned long long>(st.fault_spawn_denials),
                  static_cast<unsigned long long>(st.fault_mem_spikes),
                  st.fault_dead_cores);
    }
    if (checked) {
      std::printf("invariants      : %llu checks, no violations\n",
                  static_cast<unsigned long long>(
                      invariants.checks_performed()));
    }
    if (show_messages) {
      std::printf("-- message kinds --\n");
      histogram.print(std::cout);
    }
    if (trace_path) {
      // The CSV trace streams row-by-row (it cannot be composed in
      // memory), so failures surface through the stream state instead
      // of the atomic writer — same degrade policy, checked at the end.
      trace_file.flush();
      if (!trace_file.good()) {
        std::fprintf(stderr,
                     "simany: warning: trace export to '%s' failed "
                     "(stream error); continuing without it\n",
                     trace_path->c_str());
      } else {
        std::printf("trace           : %s (%llu rows)\n",
                    trace_path->c_str(),
                    static_cast<unsigned long long>(csv->rows()));
      }
    }
    bool critpath_ok = true;
    if (telemetry) {
      std::optional<obs::CritPathReport> critpath;
      if (critpath_path) {
        critpath = obs::analyze_critical_path(telemetry->events(),
                                              critpath_top);
        // Conservation audit (simcheck): every tick of the completion
        // time must be attributed to exactly one cause segment.
        const auto violations =
            check::check_critpath(*critpath, st.completion_ticks);
        for (const auto& v : violations) {
          std::fprintf(stderr, "critpath check: %s\n", v.detail.c_str());
        }
        const bool ok = recover::write_artifact(
            *critpath_path, "critpath", recover::FailPolicy::kDegrade,
            [&](std::ostream& out) {
              obs::write_critpath_json(out, *critpath);
            });
        if (ok) {
          std::printf(
              "critical path   : %s (%zu segments, fp %016llx)\n",
              critpath_path->c_str(), critpath->segments.size(),
              static_cast<unsigned long long>(critpath->fingerprint()));
        }
        critpath_ok = violations.empty();
      }
      if (trace_json_path) {
        const bool ok = recover::write_artifact(
            *trace_json_path, "trace json", recover::FailPolicy::kDegrade,
            [&](std::ostream& out) {
              obs::ChromeTraceOptions copt;
              copt.host_threads =
                  static_cast<unsigned>(st.host_threads_used);
              if (critpath) copt.critpath = &*critpath;
              obs::write_chrome_trace(out, *telemetry, copt);
            });
        if (ok) {
          std::printf("trace json      : %s (%llu events)\n",
                      trace_json_path->c_str(),
                      static_cast<unsigned long long>(
                          telemetry->events().size()));
        }
      }
      if (trace_csv_path) {
        const bool ok = recover::write_artifact(
            *trace_csv_path, "trace csv", recover::FailPolicy::kDegrade,
            [&](std::ostream& out) {
              obs::write_events_csv(out, *telemetry);
            });
        if (ok) {
          std::printf("trace csv       : %s (%llu events)\n",
                      trace_csv_path->c_str(),
                      static_cast<unsigned long long>(
                          telemetry->events().size()));
        }
      }
      if (metrics_path) {
        const bool as_csv = metrics_path->size() >= 4 &&
                            metrics_path->compare(metrics_path->size() - 4, 4,
                                                  ".csv") == 0;
        const bool ok = recover::write_artifact(
            *metrics_path, "metrics", recover::FailPolicy::kDegrade,
            [&](std::ostream& out) {
              if (as_csv) {
                telemetry->metrics().write_csv(out);
              } else {
                telemetry->metrics().write_json(out);
              }
            });
        if (ok) {
          std::printf("metrics         : %s (%s)\n", metrics_path->c_str(),
                      as_csv ? "csv" : "json");
        }
      }
    }
    if (fingerprint) {
      // The determinism oracle: these three values must be bit-equal
      // between an uninterrupted run and any kill/resume chain of it.
      std::printf("fingerprint arch-stats : %016llx\n",
                  static_cast<unsigned long long>(
                      arch_stats_fingerprint(st)));
      if (telemetry) {
        std::printf("fingerprint telemetry  : arch %016llx all %016llx\n",
                    static_cast<unsigned long long>(telemetry->fingerprint(
                        obs::EventClass::kArchitectural)),
                    static_cast<unsigned long long>(
                        telemetry->fingerprint()));
      }
    }
    if (status) {
      std::printf("status          : %s (%llu heartbeats)\n",
                  status->path().c_str(),
                  static_cast<unsigned long long>(status->writes()));
    }
    return critpath_ok ? 0 : 1;
  }
}
