// simany_cli — run any dwarf benchmark on any architecture from the
// command line, the way an architect would drive the simulator.
//
//   simany_cli --dwarf dijkstra --cores 64 --distributed --factor 0.1
//   simany_cli --config my_arch.cfg --dwarf spmxv --trace events.csv
//   simany_cli --save-config out.cfg --cores 256 --clusters 4
//
// Flags:
//   --dwarf <name>        benchmark (default spmxv); 'list' to list
//   --config <file>       load a full ArchConfig (config_io format)
//   --save-config <file>  write the effective config and exit
//   --cores <n>           preset mesh size (default 16)
//   --distributed         distributed-memory architecture
//   --clusters <n>        clustered mesh preset
//   --polymorphic         alternating 1/2, 3/2 core speeds
//   --t <cycles>          drift bound T (default 100)
//   --factor <f>          dataset scale (default 0.1)
//   --seed <s>            dataset seed (default 1)
//   --cycle-level         run the conservative reference simulator
//   --trace <file>        write a CSV event trace (sequential host only;
//                         see --trace-json for the parallel backend)
//   --trace-json <file>   write a Perfetto/Chrome trace-event JSON file
//                         (works under both host backends)
//   --trace-csv <file>    write the merged telemetry event stream as CSV
//   --metrics-out <file>  write the metrics registry (.json or .csv)
//   --metrics-interval <c> virtual-time metric sampling period, cycles
//   --profile-host        add wall-clock host-round tracks to the trace
//   --critpath-out <file> write the causal critical-path report
//                         (simany-critpath-v1 JSON); with --trace-json
//                         the path is also rendered as its own track
//   --critpath-top <k>    ranking depth of the critpath report (default 10)
//   --status-out <file>   maintain a live simany-status-v1 heartbeat
//                         file (atomically replaced at barriers)
//   --status-interval-ms <n> heartbeat period in wall-clock ms
//                         (default 1000; 0 writes at every barrier)
//   --messages            print the message-kind histogram
//   --lint                lint the configuration and exit (nonzero on
//                         errors)
//   --checked             run with the invariant checker attached
//   --host-threads <n>    host worker threads (n>1 selects the parallel
//                         backend; simulated timing depends only on the
//                         shard count, not the thread count)
//   --host-shards <n>     shard count override (default: one per thread)
//                         (aborts with a diagnostic on any violation)
//   --fault-seed <s>      fault-plan seed (default 0; faults fire only
//                         when a probability below is nonzero)
//   --fault-drop <p>      message-drop probability (masked by retries)
//   --fault-delay <p>     message-delay probability
//   --fault-dup <p>       message-duplication probability
//   --fault-stall <p>     transient core-stall probability per task
//   --fault-spawn-fail <p> spawn-probe denial probability
//   --fault-mem-spike <p> memory-latency spike probability
//   --fault-dead <n>      permanently disable n seed-chosen cores
//   --fault-wedge <c>     wedge core c into a non-charging spin
//                         (repeatable; tripped by the livelock watchdog)
//   --deadline-ms <ms>    wall-clock budget; exceeding it aborts the run
//                         with a structured deadline-exceeded error
//   --max-vtime <cycles>  virtual-time budget (deterministic abort)
//   --watchdog-rounds <n> no-progress polls before declaring livelock
//   --crash-report <file> on failure, write a simany-crash-report-v1
//                         JSON document (error, progress, diagnosis)
//   --retries <n>         rerun transient failures up to n times
//   --retry-backoff-ms <ms> initial backoff, doubled per retry
//   --snapshot-out <file> write a simany-snapshot-v1 checkpoint; with
//                         no cursor flag, captures the final state
//   --snapshot-at <q>     one-shot capture at the quiesce barrier where
//                         total scheduling quanta reach q
//   --snapshot-every <q>  periodic capture cadence in quanta (the file
//                         is overwritten in place)
//   --resume-from <file>  restore a checkpoint of the same (config,
//                         dwarf, seed, factor) and finish the run;
//                         refuses mismatched identity with a
//                         structured error (see docs/snapshot.md)
//
// Exit codes: 0 success, 1 permanent failure, 2 usage error,
// 3 transient failure with retries exhausted, 130 cancelled by signal.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "check/config_lint.h"
#include "check/invariant_checker.h"
#include "config/arch_config.h"
#include "config/config_io.h"
#include "core/engine.h"
#include "core/sim_error.h"
#include "dwarfs/dwarfs.h"
#include "check/critpath_check.h"
#include "guard/crash_report.h"
#include "obs/critpath.h"
#include "obs/export.h"
#include "obs/status.h"
#include "obs/telemetry.h"
#include "snapshot/plan.h"
#include "snapshot/snapshot.h"
#include "stats/trace_sinks.h"

using namespace simany;

namespace {

// Signal handling: the handler may only touch async-signal-safe state.
// Engine::request_cancel() is a single relaxed atomic CAS, so the
// handler forwards straight to whichever engine is live; the flag
// distinguishes "cancelled" from "engine failed on its own" afterwards.
std::atomic<Engine*> g_engine{nullptr};
std::atomic<bool> g_signalled{false};

extern "C" void on_cancel_signal(int) {
  g_signalled.store(true, std::memory_order_relaxed);
  Engine* e = g_engine.load(std::memory_order_relaxed);
  if (e != nullptr) e->request_cancel();
}

}  // namespace

int main(int argc, char** argv) {
  std::string dwarf_name = "spmxv";
  std::optional<std::string> config_path;
  std::optional<std::string> save_config_path;
  std::optional<std::string> trace_path;
  std::optional<std::string> trace_json_path;
  std::optional<std::string> trace_csv_path;
  std::optional<std::string> metrics_path;
  std::optional<std::string> critpath_path;
  std::size_t critpath_top = 10;
  std::optional<std::string> status_path;
  std::uint64_t status_interval_ms = 1000;
  std::uint64_t metrics_interval = 0;
  bool profile_host = false;
  std::uint32_t cores = 16;
  std::uint32_t clusters = 0;
  bool distributed = false;
  bool polymorphic = false;
  bool cycle_level = false;
  bool show_messages = false;
  bool lint_only = false;
  bool checked = false;
  Cycles drift_t = 100;
  double factor = 0.1;
  std::uint32_t host_threads = 0;
  std::uint32_t host_shards = 0;
  std::uint64_t seed = 1;
  std::uint64_t fault_seed = 0;
  double fault_drop = 0.0;
  double fault_delay = 0.0;
  double fault_dup = 0.0;
  double fault_stall = 0.0;
  double fault_spawn_fail = 0.0;
  double fault_mem_spike = 0.0;
  std::uint32_t fault_dead = 0;
  std::vector<std::uint32_t> fault_wedge;
  std::uint64_t deadline_ms = 0;
  std::uint64_t max_vtime = 0;
  std::uint32_t watchdog_rounds = 0;
  std::optional<std::string> crash_report_path;
  std::uint32_t retries = 0;
  std::uint64_t retry_backoff_ms = 100;
  std::optional<std::string> snapshot_out;
  std::uint64_t snapshot_at = 0;
  std::uint64_t snapshot_every = 0;
  std::optional<std::string> resume_from;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--dwarf")) {
      dwarf_name = need("--dwarf");
    } else if (!std::strcmp(argv[i], "--config")) {
      config_path = need("--config");
    } else if (!std::strcmp(argv[i], "--save-config")) {
      save_config_path = need("--save-config");
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace_path = need("--trace");
    } else if (!std::strcmp(argv[i], "--trace-json")) {
      trace_json_path = need("--trace-json");
    } else if (!std::strcmp(argv[i], "--trace-csv")) {
      trace_csv_path = need("--trace-csv");
    } else if (!std::strcmp(argv[i], "--metrics-out")) {
      metrics_path = need("--metrics-out");
    } else if (!std::strcmp(argv[i], "--critpath-out")) {
      critpath_path = need("--critpath-out");
    } else if (!std::strcmp(argv[i], "--critpath-top")) {
      critpath_top = std::strtoull(need("--critpath-top"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--status-out")) {
      status_path = need("--status-out");
    } else if (!std::strcmp(argv[i], "--status-interval-ms")) {
      status_interval_ms =
          std::strtoull(need("--status-interval-ms"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--metrics-interval")) {
      metrics_interval =
          std::strtoull(need("--metrics-interval"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--profile-host")) {
      profile_host = true;
    } else if (!std::strcmp(argv[i], "--cores")) {
      cores = static_cast<std::uint32_t>(std::atoi(need("--cores")));
    } else if (!std::strcmp(argv[i], "--clusters")) {
      clusters = static_cast<std::uint32_t>(std::atoi(need("--clusters")));
    } else if (!std::strcmp(argv[i], "--distributed")) {
      distributed = true;
    } else if (!std::strcmp(argv[i], "--polymorphic")) {
      polymorphic = true;
    } else if (!std::strcmp(argv[i], "--cycle-level")) {
      cycle_level = true;
    } else if (!std::strcmp(argv[i], "--messages")) {
      show_messages = true;
    } else if (!std::strcmp(argv[i], "--lint")) {
      lint_only = true;
    } else if (!std::strcmp(argv[i], "--checked")) {
      checked = true;
    } else if (!std::strcmp(argv[i], "--host-threads")) {
      host_threads =
          static_cast<std::uint32_t>(std::atoi(need("--host-threads")));
    } else if (!std::strcmp(argv[i], "--host-shards")) {
      host_shards =
          static_cast<std::uint32_t>(std::atoi(need("--host-shards")));
    } else if (!std::strcmp(argv[i], "--fault-seed")) {
      fault_seed = std::strtoull(need("--fault-seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--fault-drop")) {
      fault_drop = std::atof(need("--fault-drop"));
    } else if (!std::strcmp(argv[i], "--fault-delay")) {
      fault_delay = std::atof(need("--fault-delay"));
    } else if (!std::strcmp(argv[i], "--fault-dup")) {
      fault_dup = std::atof(need("--fault-dup"));
    } else if (!std::strcmp(argv[i], "--fault-stall")) {
      fault_stall = std::atof(need("--fault-stall"));
    } else if (!std::strcmp(argv[i], "--fault-spawn-fail")) {
      fault_spawn_fail = std::atof(need("--fault-spawn-fail"));
    } else if (!std::strcmp(argv[i], "--fault-mem-spike")) {
      fault_mem_spike = std::atof(need("--fault-mem-spike"));
    } else if (!std::strcmp(argv[i], "--fault-dead")) {
      fault_dead =
          static_cast<std::uint32_t>(std::atoi(need("--fault-dead")));
    } else if (!std::strcmp(argv[i], "--fault-wedge")) {
      fault_wedge.push_back(
          static_cast<std::uint32_t>(std::atoi(need("--fault-wedge"))));
    } else if (!std::strcmp(argv[i], "--deadline-ms")) {
      deadline_ms = std::strtoull(need("--deadline-ms"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--max-vtime")) {
      max_vtime = std::strtoull(need("--max-vtime"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--watchdog-rounds")) {
      watchdog_rounds =
          static_cast<std::uint32_t>(std::atoi(need("--watchdog-rounds")));
    } else if (!std::strcmp(argv[i], "--crash-report")) {
      crash_report_path = need("--crash-report");
    } else if (!std::strcmp(argv[i], "--retries")) {
      retries = static_cast<std::uint32_t>(std::atoi(need("--retries")));
    } else if (!std::strcmp(argv[i], "--retry-backoff-ms")) {
      retry_backoff_ms =
          std::strtoull(need("--retry-backoff-ms"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--snapshot-out")) {
      snapshot_out = need("--snapshot-out");
    } else if (!std::strcmp(argv[i], "--snapshot-at")) {
      snapshot_at = std::strtoull(need("--snapshot-at"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--snapshot-every")) {
      snapshot_every = std::strtoull(need("--snapshot-every"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--resume-from")) {
      resume_from = need("--resume-from");
    } else if (!std::strcmp(argv[i], "--t")) {
      drift_t = std::strtoull(need("--t"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--factor")) {
      factor = std::atof(need("--factor"));
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(need("--seed"), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s (see header comment)\n",
                   argv[i]);
      return 2;
    }
  }

  if (dwarf_name == "list") {
    for (const auto& spec : dwarfs::all_dwarfs()) {
      std::printf("%s\n", spec.name.c_str());
    }
    return 0;
  }

  ArchConfig cfg;
  if (config_path) {
    cfg = load_config_file(*config_path);
  } else {
    cfg = distributed ? ArchConfig::distributed_mesh(cores)
                      : ArchConfig::shared_mesh(cores);
    if (clusters > 0) cfg = ArchConfig::clustered(std::move(cfg), clusters);
    if (polymorphic) cfg = ArchConfig::polymorphic(std::move(cfg));
    cfg.drift_t_cycles = drift_t;
  }
  if (host_threads > 0) {
    cfg.host.threads = host_threads;
    if (host_threads > 1) cfg.host.mode = HostMode::kParallel;
  }
  if (host_shards > 0) {
    cfg.host.shards = host_shards;
    cfg.host.mode = HostMode::kParallel;
  }
  if (metrics_interval > 0) cfg.obs.metrics_interval_cycles = metrics_interval;
  if (profile_host) cfg.obs.profile_host = true;

  // TraceSink / observer instrumentation pins the engine to the
  // sequential host. Refuse the contradictory combination loudly
  // instead of silently dropping the requested parallelism.
  if ((trace_path || show_messages || checked) &&
      (host_threads > 1 || host_shards > 1)) {
    const char* flag = trace_path ? "--trace"
                      : checked   ? "--checked"
                                  : "--messages";
    std::fprintf(
        stderr,
        "error: %s attaches a sequential-host observer and cannot run "
        "with --host-threads/--host-shards > 1.\n"
        "hint : the shard-aware telemetry works under the parallel "
        "backend: use --trace-json / --trace-csv / --metrics-out.\n",
        flag);
    return 2;
  }

  // Flags layer on top of a loaded config; untouched flags (still at
  // their zero defaults) leave the config's own fault plan alone.
  if (fault_seed != 0) cfg.fault.seed = fault_seed;
  if (fault_drop > 0.0) cfg.fault.msg_drop_prob = fault_drop;
  if (fault_delay > 0.0) cfg.fault.msg_delay_prob = fault_delay;
  if (fault_dup > 0.0) cfg.fault.msg_dup_prob = fault_dup;
  if (fault_stall > 0.0) cfg.fault.stall_prob = fault_stall;
  if (fault_spawn_fail > 0.0) cfg.fault.spawn_fail_prob = fault_spawn_fail;
  if (fault_mem_spike > 0.0) cfg.fault.mem_spike_prob = fault_mem_spike;
  if (fault_dead > 0) cfg.fault.dead_cores = fault_dead;
  for (const std::uint32_t c : fault_wedge) {
    cfg.fault.wedge_core_list.push_back(c);
  }
  if (deadline_ms > 0) cfg.guard.deadline_ms = deadline_ms;
  if (max_vtime > 0) cfg.guard.max_vtime_cycles = max_vtime;
  if (watchdog_rounds > 0) cfg.guard.watchdog_rounds = watchdog_rounds;

  if (lint_only) {
    const auto diags = check::lint_config(cfg);
    if (diags.empty()) {
      std::printf("configuration is clean (%u cores)\n", cfg.num_cores());
      return 0;
    }
    std::fputs(check::format_diags(diags).c_str(), stdout);
    return check::has_errors(diags) ? 1 : 0;
  }

  if (save_config_path) {
    std::ofstream out(*save_config_path);
    save_config(cfg, out);
    std::printf("wrote %s\n", save_config_path->c_str());
    return 0;
  }

  if ((snapshot_at > 0 || snapshot_every > 0) && !snapshot_out) {
    std::fprintf(stderr,
                 "error: --snapshot-at/--snapshot-every need "
                 "--snapshot-out <file>.\n");
    return 2;
  }

  const auto& spec = dwarfs::dwarf_by_name(dwarf_name);

  std::signal(SIGINT, on_cancel_signal);
  std::signal(SIGTERM, on_cancel_signal);

  SimStats st;
  std::uint32_t attempt = 0;
  for (;;) {
    // Each attempt gets a fresh engine and fresh sinks: a failed run's
    // partial telemetry must not bleed into its retry.
    Engine sim(cfg, cycle_level ? ExecutionMode::kCycleLevel
                                : ExecutionMode::kVirtualTime);

    std::ofstream trace_file;
    std::optional<stats::CsvTrace> csv;
    stats::MessageHistogram histogram;
    stats::TeeTrace tee;
    if (trace_path) {
      trace_file.open(*trace_path);
      csv.emplace(trace_file);
      tee.add(&*csv);
    }
    if (show_messages) tee.add(&histogram);
    if (trace_path || show_messages) sim.set_trace(&tee);

    check::InvariantChecker invariants;
    if (checked) invariants.attach(sim);

    std::optional<obs::Telemetry> telemetry;
    if (trace_json_path || trace_csv_path || metrics_path || critpath_path ||
        cfg.obs.profile_host || cfg.obs.metrics_interval_cycles > 0) {
      obs::TelemetryOptions topt;
      topt.metrics_interval_cycles = cfg.obs.metrics_interval_cycles;
      topt.profile_host = cfg.obs.profile_host;
      telemetry.emplace(topt);
      sim.set_telemetry(&*telemetry);
    }

    std::optional<obs::StatusReporter> status;
    if (status_path) {
      status.emplace(*status_path, status_interval_ms);
      sim.set_status(&*status);
    }

    // Checkpoint/restore (src/snapshot): the workload fingerprint
    // binds the file to this exact (dwarf, seed, factor), and restore
    // additionally checks the config fingerprint from the header.
    const std::uint64_t workload_fp =
        snapshot::workload_fingerprint(dwarf_name, seed, factor);
    if (snapshot_out) {
      snapshot::SnapshotPlan plan;
      plan.path = *snapshot_out;
      plan.at_quanta = snapshot_at;
      plan.every_quanta = snapshot_every;
      plan.workload_fp = workload_fp;
      sim.snapshot_to(plan);
    }
    if (resume_from) {
      try {
        sim.restore_from(*resume_from, workload_fp);
      } catch (const SimError& e) {
        std::fprintf(stderr, "cannot resume: %s\n", e.what());
        return 1;
      }
    }

    g_engine.store(&sim, std::memory_order_relaxed);
    try {
      st = sim.run(spec.make_root(seed, factor));
    } catch (const SimError& e) {
      g_engine.store(nullptr, std::memory_order_relaxed);
      const SimError::Context& c = e.context();
      std::fprintf(stderr,
                   "simulated machine failed: %s\n  error      : %s\n"
                   "  cause      : %s\n  cores      : %u -> %u\n"
                   "  shard      : %u\n  at tick    : %llu\n"
                   "  fault seed : %llu\n",
                   e.what(), to_string(e.code()), c.cause.c_str(), c.core,
                   c.peer, c.shard,
                   static_cast<unsigned long long>(c.at_tick),
                   static_cast<unsigned long long>(c.fault_seed));

      // The guard flushed partial stats/telemetry before unwinding, so
      // the requested exports still get whatever the run produced.
      if (telemetry) {
        if (trace_json_path) {
          std::ofstream out(*trace_json_path);
          obs::ChromeTraceOptions copt;
          copt.host_threads =
              static_cast<unsigned>(sim.stats().host_threads_used);
          obs::write_chrome_trace(out, *telemetry, copt);
          std::fprintf(stderr, "  partial trace json: %s\n",
                       trace_json_path->c_str());
        }
        if (trace_csv_path) {
          std::ofstream out(*trace_csv_path);
          obs::write_events_csv(out, *telemetry);
        }
        if (metrics_path) {
          std::ofstream out(*metrics_path);
          telemetry->metrics().write_json(out);
        }
        if (critpath_path) {
          // Partial stream: the report covers whatever timeline the run
          // produced before the abort (no conservation check — the run
          // has no completion time to conserve against).
          const obs::CritPathReport partial =
              obs::analyze_critical_path(telemetry->events(), critpath_top);
          std::ofstream out(*critpath_path);
          obs::write_critpath_json(out, partial);
          std::fprintf(stderr, "  partial critpath: %s\n",
                       critpath_path->c_str());
        }
      }
      if (crash_report_path) {
        std::ofstream out(*crash_report_path);
        guard::CrashReportInfo info;
        info.error = e.context();
        info.message = e.what();
        info.stats = sim.stats();
        info.num_cores = cfg.num_cores();
        guard::write_crash_report(out, info, sim.inspect(), cfg.topology);
        std::fprintf(stderr, "  crash report: %s\n",
                     crash_report_path->c_str());
      }

      if (e.code() == SimErrorCode::kCancelled ||
          g_signalled.load(std::memory_order_relaxed)) {
        return 130;
      }
      if (e.transient() && attempt < retries) {
        ++attempt;
        const std::uint64_t backoff = retry_backoff_ms << (attempt - 1);
        std::fprintf(stderr,
                     "transient failure, retrying (%u/%u) in %llu ms\n",
                     attempt, retries,
                     static_cast<unsigned long long>(backoff));
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        continue;
      }
      return e.transient() ? 3 : 1;
    }
    g_engine.store(nullptr, std::memory_order_relaxed);

    std::printf("dwarf           : %s (seed %llu, factor %g)\n",
                dwarf_name.c_str(), static_cast<unsigned long long>(seed),
                factor);
    if (snapshot_out) {
      std::printf("snapshot        : %s\n", snapshot_out->c_str());
    }
    if (resume_from) {
      std::printf("resumed from    : %s (replay-verified)\n",
                  resume_from->c_str());
    }
    std::printf("architecture    : %u cores, %s, T=%llu%s%s\n",
                cfg.num_cores(),
                cfg.mem.model == mem::MemoryModel::kShared ? "shared"
                                                           : "distributed",
                static_cast<unsigned long long>(cfg.drift_t_cycles),
                polymorphic ? ", polymorphic" : "",
                cycle_level ? ", cycle-level" : "");
    std::printf("virtual time    : %llu cycles\n",
                static_cast<unsigned long long>(st.completion_cycles()));
    std::printf("tasks           : %llu spawned, %llu inline, %llu migrated\n",
                static_cast<unsigned long long>(st.tasks_spawned),
                static_cast<unsigned long long>(st.tasks_inlined),
                static_cast<unsigned long long>(st.tasks_migrated));
    std::printf("messages        : %llu (%llu bytes over %llu hops)\n",
                static_cast<unsigned long long>(st.messages),
                static_cast<unsigned long long>(st.network.bytes),
                static_cast<unsigned long long>(st.network.hops));
    std::printf("sync stalls     : %llu (avg parallelism %.1f)\n",
                static_cast<unsigned long long>(st.sync_stalls),
                st.avg_parallelism());
    std::printf("drift high-water: %llu cycles\n",
                static_cast<unsigned long long>(st.drift_max_cycles()));
    std::printf("host wall time  : %.3f ms (%llu threads, %llu rounds)\n",
                st.wall_seconds * 1e3,
                static_cast<unsigned long long>(st.host_threads_used),
                static_cast<unsigned long long>(st.host_rounds));
    if (cfg.fault.enabled()) {
      std::printf("faults          : %llu injected (seed %llu; %llu msg "
                  "delayed, %llu dup, %llu dropped, %llu stalls, %llu spawn "
                  "denials, %llu mem spikes, %u dead cores)\n",
                  static_cast<unsigned long long>(st.faults_injected),
                  static_cast<unsigned long long>(cfg.fault.seed),
                  static_cast<unsigned long long>(st.fault_msgs_delayed),
                  static_cast<unsigned long long>(st.fault_msgs_duplicated),
                  static_cast<unsigned long long>(st.fault_msgs_dropped),
                  static_cast<unsigned long long>(st.fault_core_stalls),
                  static_cast<unsigned long long>(st.fault_spawn_denials),
                  static_cast<unsigned long long>(st.fault_mem_spikes),
                  st.fault_dead_cores);
    }
    if (checked) {
      std::printf("invariants      : %llu checks, no violations\n",
                  static_cast<unsigned long long>(
                      invariants.checks_performed()));
    }
    if (show_messages) {
      std::printf("-- message kinds --\n");
      histogram.print(std::cout);
    }
    if (trace_path) {
      std::printf("trace           : %s (%llu rows)\n", trace_path->c_str(),
                  static_cast<unsigned long long>(csv->rows()));
    }
    bool critpath_ok = true;
    if (telemetry) {
      std::optional<obs::CritPathReport> critpath;
      if (critpath_path) {
        critpath = obs::analyze_critical_path(telemetry->events(),
                                              critpath_top);
        // Conservation audit (simcheck): every tick of the completion
        // time must be attributed to exactly one cause segment.
        const auto violations =
            check::check_critpath(*critpath, st.completion_ticks);
        for (const auto& v : violations) {
          std::fprintf(stderr, "critpath check: %s\n", v.detail.c_str());
        }
        std::ofstream out(*critpath_path);
        obs::write_critpath_json(out, *critpath);
        std::printf("critical path   : %s (%zu segments, fp %016llx)\n",
                    critpath_path->c_str(), critpath->segments.size(),
                    static_cast<unsigned long long>(critpath->fingerprint()));
        critpath_ok = violations.empty();
      }
      if (trace_json_path) {
        std::ofstream out(*trace_json_path);
        obs::ChromeTraceOptions copt;
        copt.host_threads = static_cast<unsigned>(st.host_threads_used);
        if (critpath) copt.critpath = &*critpath;
        obs::write_chrome_trace(out, *telemetry, copt);
        const auto n_events =
            static_cast<unsigned long long>(telemetry->events().size());
        std::printf("trace json      : %s (%llu events)\n",
                    trace_json_path->c_str(), n_events);
      }
      if (trace_csv_path) {
        std::ofstream out(*trace_csv_path);
        obs::write_events_csv(out, *telemetry);
        const auto n_events =
            static_cast<unsigned long long>(telemetry->events().size());
        std::printf("trace csv       : %s (%llu events)\n",
                    trace_csv_path->c_str(), n_events);
      }
      if (metrics_path) {
        std::ofstream out(*metrics_path);
        const bool as_csv = metrics_path->size() >= 4 &&
                            metrics_path->compare(metrics_path->size() - 4, 4,
                                                  ".csv") == 0;
        if (as_csv) {
          telemetry->metrics().write_csv(out);
        } else {
          telemetry->metrics().write_json(out);
        }
        std::printf("metrics         : %s (%s)\n", metrics_path->c_str(),
                    as_csv ? "csv" : "json");
      }
    }
    if (status) {
      std::printf("status          : %s (%llu heartbeats)\n",
                  status->path().c_str(),
                  static_cast<unsigned long long>(status->writes()));
    }
    return critpath_ok ? 0 : 1;
  }
}
