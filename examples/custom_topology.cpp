// Arbitrary interconnects from a configuration file (paper SS III:
// "Network topology is specified in a configuration file as an
// adjacency matrix ... SiMany can handle arbitrary network
// organizations").
//
// Builds an asymmetric two-island topology joined by one slow
// bottleneck link, writes it to a file, loads it back, and shows how
// link contention on the bottleneck shapes a fan-out workload.

#include <cstdio>
#include <fstream>

#include "config/arch_config.h"
#include "core/engine.h"
#include "net/topology.h"

using namespace simany;

namespace {

// 2x4-core islands bridged by one link; the bridge is slow and narrow.
net::Topology make_dumbbell(Tick bridge_latency,
                            std::uint32_t bridge_bw) {
  net::Topology t(8);
  const net::LinkProps fast{ticks(1), 128};
  // Island A: 0-1-2-3 ring; Island B: 4-5-6-7 ring.
  for (std::uint32_t base : {0u, 4u}) {
    t.add_link(base + 0, base + 1, fast);
    t.add_link(base + 1, base + 2, fast);
    t.add_link(base + 2, base + 3, fast);
    t.add_link(base + 3, base + 0, fast);
  }
  t.add_link(3, 4, net::LinkProps{bridge_latency, bridge_bw});
  return t;
}

Tick run_fanout(net::Topology topo) {
  ArchConfig cfg = ArchConfig::distributed_mesh(topo.num_cores());
  cfg.topology = std::move(topo);
  Engine sim(std::move(cfg));
  const auto stats = sim.run([](TaskCtx& ctx) {
    // The shared data lives on the far island (cores 4..7): every
    // cell acquisition from island A drags 1 KiB across the bridge.
    const GroupId g = ctx.make_group();
    std::vector<CellId> cells;
    for (std::uint32_t i = 0; i < 8; ++i) {
      cells.push_back(ctx.make_cell_at(1024, 4 + i % 4));
    }
    for (int i = 0; i < 64; ++i) {
      const CellId cell = cells[i % cells.size()];
      spawn_or_run(ctx, g, [cell](TaskCtx& c) {
        c.cell_acquire(cell, AccessMode::kRead);
        c.compute(500);
        c.cell_release(cell);
      });
    }
    ctx.join(g);
  });
  std::printf("  virtual time %8llu cycles | messages %5llu | "
              "link queueing %.0f cycles\n",
              static_cast<unsigned long long>(stats.completion_cycles()),
              static_cast<unsigned long long>(stats.messages),
              cycles_fp(stats.network.contention_ticks));
  return stats.completion_ticks;
}

}  // namespace

int main() {
  // Save and reload through the text format, as a user would.
  const char* path = "dumbbell.topo";
  {
    std::ofstream out(path);
    make_dumbbell(ticks(8), 16).save(out);
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot write '%s'\n", path);
      return 1;
    }
  }
  const auto loaded = net::Topology::load_file(path);
  std::printf("loaded '%s': %u cores, %u links, diameter %u\n", path,
              loaded.num_cores(), loaded.num_links(), loaded.diameter());

  std::printf("\nslow bridge (8 cycles, 16 B/c):\n");
  const Tick slow = run_fanout(loaded);
  std::printf("\nfast bridge (1 cycle, 128 B/c):\n");
  const Tick fast = run_fanout(make_dumbbell(ticks(1), 128));
  std::printf("\nbottleneck slows the workload by %.1f%%\n",
              (double(slow) / double(fast) - 1.0) * 100.0);
  std::remove(path);
  return 0;
}
