#include "guard/crash_report.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <ostream>

namespace simany::guard {

namespace {

/// Minimal JSON string escape (the report carries summaries with
/// arbitrary core ids and reason text, never binary data).
std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::uint64_t u64(std::uint64_t v) { return v; }

/// A core id rendered as JSON: kInvalidCore becomes null.
void put_core(std::ostream& out, std::uint32_t c) {
  if (c == net::kInvalidCore || c == ~0u) {
    out << "null";
  } else {
    out << c;
  }
}

/// True when `holder` can still run its critical section to the end:
/// it has an installed fiber and is not itself parked on a reply or a
/// spatial stall that nothing will release.
bool holder_runnable(const EngineInspect& state, CoreId holder) {
  for (const CoreInspect& c : state.cores) {
    if (c.id != holder) continue;
    // A sync-stalled holder is woken by normal drift-limit motion; a
    // reply-waiting holder depends on its peer, which the wait-for
    // edges already model. Either way a live fiber on a non-dead core
    // means the section can complete.
    return c.has_fiber && !c.dead;
  }
  return false;
}

}  // namespace

const char* to_string(StallKind k) noexcept {
  switch (k) {
    case StallKind::kProtocolDeadlock: return "protocol-deadlock";
    case StallKind::kDeadPartition: return "dead-partition";
    case StallKind::kHolderProgress: return "holder-progress";
    case StallKind::kLivelock: return "livelock";
    case StallKind::kNoStall: return "no-stall";
  }
  return "no-stall";
}

StallDiagnosis diagnose_stall(const EngineInspect& state,
                              const net::Topology& topo) {
  StallDiagnosis d;
  d.report = check::analyze_deadlock(state, topo);
  if (d.report.all_dead_partition) {
    d.kind = StallKind::kDeadPartition;
    d.summary =
        "all pending work is on fault-plan-dead cores (injected outage, "
        "not a protocol failure)";
    return d;
  }
  if (d.report.has_cycle()) {
    d.kind = StallKind::kProtocolDeadlock;
    d.summary = "wait-for cycle: " + d.report.summary;
    return d;
  }
  // No cycle. If some lock/cell is held by a core that can still run,
  // the system is in a (possibly long) critical section, not wedged.
  for (const LockInspect& l : state.locks) {
    if (l.held && !l.waiters.empty() && holder_runnable(state, l.holder)) {
      d.kind = StallKind::kHolderProgress;
      d.summary = "lock " + std::to_string(l.id) + " held by runnable core " +
                  std::to_string(l.holder) +
                  " (long critical section, not livelock)";
      return d;
    }
  }
  for (const CellInspect& c : state.cells) {
    if (c.locked && !c.waiters.empty() && holder_runnable(state, c.holder)) {
      d.kind = StallKind::kHolderProgress;
      d.summary = "cell " + std::to_string(c.id) + " held by runnable core " +
                  std::to_string(c.holder) +
                  " (long critical section, not livelock)";
      return d;
    }
  }
  if (d.report.edges.empty()) {
    const bool any_pending = std::any_of(
        state.cores.begin(), state.cores.end(), [](const CoreInspect& c) {
          return c.has_fiber || c.queue_len > 0 || c.resumables > 0;
        });
    if (!any_pending) {
      d.kind = StallKind::kNoStall;
      d.summary = "no core is waiting (run interrupted, not stalled)";
      return d;
    }
  }
  d.kind = StallKind::kLivelock;
  d.summary = d.report.edges.empty()
                  ? "cores hold pending work but no wait edge explains the "
                    "stall (livelock or lost wake)"
                  : "acyclic waits with no runnable holder (livelock or "
                    "lost wake): " +
                        d.report.summary;
  return d;
}

void write_crash_report(std::ostream& out, const CrashReportInfo& info,
                        const EngineInspect& state,
                        const net::Topology& topo) {
  const StallDiagnosis diag = diagnose_stall(state, topo);

  Tick min_now = std::numeric_limits<Tick>::max();
  Tick max_now = 0;
  for (const CoreInspect& c : state.cores) {
    min_now = std::min(min_now, c.now);
    max_now = std::max(max_now, c.now);
  }
  if (state.cores.empty()) min_now = 0;

  out << "{\n";
  out << "  \"schema\": \"simany-crash-report-v1\",\n";

  const SimError::Context& e = info.error;
  out << "  \"error\": {\n";
  out << "    \"code\": \"" << to_string(e.code) << "\",\n";
  out << "    \"cause\": \"" << esc(e.cause) << "\",\n";
  out << "    \"message\": \"" << esc(info.message) << "\",\n";
  out << "    \"transient\": " << (is_transient(e.code) ? "true" : "false")
      << ",\n";
  out << "    \"core\": ";
  put_core(out, e.core);
  out << ",\n    \"peer\": ";
  put_core(out, e.peer);
  out << ",\n    \"shard\": ";
  put_core(out, e.shard);
  out << ",\n    \"at_tick\": " << u64(e.at_tick) << ",\n";
  out << "    \"detail\": " << u64(e.detail) << ",\n";
  out << "    \"fault_seed\": " << u64(e.fault_seed) << "\n  },\n";

  const SimStats& st = info.stats;
  out << "  \"run\": {\n";
  out << "    \"cores\": " << info.num_cores << ",\n";
  out << "    \"host_rounds\": " << u64(st.host_rounds) << ",\n";
  out << "    \"host_threads\": " << u64(st.host_threads_used) << ",\n";
  out << "    \"tasks_spawned\": " << u64(st.tasks_spawned) << ",\n";
  out << "    \"messages\": " << u64(st.messages) << ",\n";
  out << "    \"sync_stalls\": " << u64(st.sync_stalls) << ",\n";
  out << "    \"faults_injected\": " << u64(st.faults_injected) << ",\n";
  out << "    \"fault_core_wedges\": " << u64(st.fault_core_wedges) << ",\n";
  out << "    \"guard_inbox_overflows\": " << u64(st.guard_inbox_overflows)
      << ",\n";
  out << "    \"guard_fiber_overflows\": " << u64(st.guard_fiber_overflows)
      << ",\n";
  out << "    \"inbox_depth_peak\": " << u64(st.inbox_depth_peak) << ",\n";
  out << "    \"live_fibers_peak\": " << u64(st.live_fibers_peak) << "\n";
  out << "  },\n";

  out << "  \"progress\": {\n";
  out << "    \"min_core_cycles\": " << cycles_floor(min_now) << ",\n";
  out << "    \"max_core_cycles\": " << cycles_floor(max_now) << ",\n";
  out << "    \"live_tasks\": " << u64(state.live_tasks) << ",\n";
  out << "    \"inflight_messages\": " << u64(state.inflight_messages)
      << ",\n";
  out << "    \"per_core\": [\n";
  for (std::size_t i = 0; i < state.cores.size(); ++i) {
    const CoreInspect& c = state.cores[i];
    const char* st_name = c.dead            ? "dead"
                          : c.sync_stalled  ? "sync-stalled"
                          : c.waiting_reply ? "waiting-reply"
                          : c.has_fiber     ? "running"
                                            : "idle";
    out << "      {\"id\": " << c.id << ", \"now_cycles\": "
        << cycles_floor(c.now) << ", \"state\": \"" << st_name
        << "\", \"queue\": " << c.queue_len << ", \"inbox\": " << c.inbox_len
        << ", \"resumables\": " << c.resumables
        << ", \"hold_depth\": " << c.hold_depth << "}"
        << (i + 1 < state.cores.size() ? "," : "") << "\n";
  }
  out << "    ]\n  },\n";

  out << "  \"diagnosis\": {\n";
  out << "    \"kind\": \"" << to_string(diag.kind) << "\",\n";
  out << "    \"summary\": \"" << esc(diag.summary) << "\",\n";
  out << "    \"wait_edges\": [\n";
  for (std::size_t i = 0; i < diag.report.edges.size(); ++i) {
    const check::WaitEdge& w = diag.report.edges[i];
    out << "      {\"from\": ";
    put_core(out, w.from);
    out << ", \"to\": ";
    put_core(out, w.to);
    out << ", \"reason\": \"" << esc(w.reason) << "\"}"
        << (i + 1 < diag.report.edges.size() ? "," : "") << "\n";
  }
  out << "    ],\n";
  out << "    \"cycle\": [";
  for (std::size_t i = 0; i < diag.report.cycle.size(); ++i) {
    out << (i ? ", " : "") << diag.report.cycle[i];
  }
  out << "]\n  }\n";
  out << "}\n";
}

}  // namespace simany::guard
