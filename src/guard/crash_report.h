// Post-mortem layer of the supervision subsystem: classify why a run
// stopped making progress and leave a machine-readable artifact.
//
// The engine enforces guard limits itself (guard_config.h); this
// library runs *after* the abort, on a frozen Engine::inspect()
// snapshot, and is what the CLI and tests consume. It reuses the PR 1
// wait-for-graph analyzer to tell a protocol deadlock / injected dead
// partition apart from a livelock or a legitimately long critical
// section.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/deadlock.h"
#include "core/inspect.h"
#include "core/sim_error.h"
#include "core/sim_stats.h"
#include "net/topology.h"

namespace simany::guard {

/// What the wait-for analysis says about a stopped run.
enum class StallKind : std::uint8_t {
  /// Circular wait among cores: a true protocol deadlock.
  kProtocolDeadlock,
  /// Every core with pending work is fault-plan dead: injected outage.
  kDeadPartition,
  /// A lock/cell holder exists and is runnable — the "stall" is a long
  /// critical section, not a livelock; the watchdog must not flag it.
  kHolderProgress,
  /// Cores are non-idle, no cycle, no runnable holder: livelock or
  /// lost wake.
  kLivelock,
  /// Nothing is waiting at all (e.g. a wall deadline fired mid-run).
  kNoStall,
};

[[nodiscard]] const char* to_string(StallKind k) noexcept;

struct StallDiagnosis {
  StallKind kind = StallKind::kNoStall;
  /// Underlying wait-for-graph report (edges, cycle, summary).
  check::DeadlockReport report;
  /// One-line human classification.
  std::string summary;
};

/// Classifies a frozen snapshot. Pure function; usable on fabricated
/// EngineInspect states in tests.
[[nodiscard]] StallDiagnosis diagnose_stall(const EngineInspect& state,
                                            const net::Topology& topo);

/// Everything a crash report needs beyond the snapshot itself.
struct CrashReportInfo {
  /// Structured error context (SimError::context() of the abort).
  SimError::Context error;
  /// The exception's what() text.
  std::string message;
  /// Counters as of the abort (partial — the run did not finish).
  SimStats stats;
  std::uint32_t num_cores = 0;
};

/// Writes the simany-crash-report-v1 JSON document: the structured
/// error, per-core progress, and the stall diagnosis. The schema is
/// documented in docs/robustness.md and parsed by
/// tools/trace_summary.py.
void write_crash_report(std::ostream& out, const CrashReportInfo& info,
                        const EngineInspect& state,
                        const net::Topology& topo);

}  // namespace simany::guard
