// Supervision limits for one simulation run.
//
// GuardConfig is a plain value embedded in ArchConfig; the engine
// enforces every limit natively (see engine.cpp guard_* methods), and
// the src/guard library adds only the post-mortem layer on top
// (diagnosis + crash reports). Keeping the struct header-only breaks
// what would otherwise be a core -> guard -> check -> core link cycle.
//
// All limits default to "off" (0), so an unconfigured run behaves
// bit-identically to a pre-guard build: the poll sites reduce to one
// predictable branch per round.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace simany::guard {

struct GuardConfig {
  /// Wall-clock budget for the whole run, in milliseconds; 0 = none.
  /// Trips cooperative cancellation (SimErrorCode::kDeadlineExceeded).
  std::uint64_t deadline_ms = 0;

  /// Virtual-time budget, in cycles; 0 = none. The run aborts with
  /// kVtimeBudgetExceeded once any core's clock passes it. Unlike the
  /// wall deadline this is deterministic: a rerun trips identically.
  std::uint64_t max_vtime_cycles = 0;

  /// Watchdog window: abort with kLivelock when cores are non-idle but
  /// the sum of core clocks is unchanged across this many consecutive
  /// host rounds (sequential host: poll intervals). 0 = off. Lock
  /// holders inside long critical sections are exempt by construction:
  /// a critical section is charged on the holder's clock in one
  /// quantum, so a making-progress holder always moves the sum.
  std::uint32_t watchdog_rounds = 0;

  /// Quanta between in-round guard polls (sequential host and CL
  /// mode). Smaller = tighter deadline latency, more poll overhead.
  std::uint32_t poll_quanta = 1024;

  /// Per-core inbox depth limit; exceeding it converts runaway message
  /// buildup into SimErrorCode::kResourceExhausted with backpressure
  /// counters instead of unbounded host memory growth. 0 = unlimited.
  std::uint32_t max_inbox_depth = 0;

  /// Per-shard live-fiber limit (created minus recycled); trips
  /// kResourceExhausted before fiber stacks exhaust host memory.
  /// 0 = unlimited.
  std::uint32_t max_live_fibers = 0;

  /// True when any limit is active (the engine skips all guard state
  /// otherwise).
  [[nodiscard]] bool enabled() const noexcept {
    return deadline_ms != 0 || max_vtime_cycles != 0 ||
           watchdog_rounds != 0 || max_inbox_depth != 0 ||
           max_live_fibers != 0;
  }

  /// True when guard_poll must run inside host rounds (cheap limits
  /// only; resource guards are checked at their own sites).
  [[nodiscard]] bool polling() const noexcept {
    return deadline_ms != 0 || max_vtime_cycles != 0 || watchdog_rounds != 0;
  }

  void validate() const {
    if (poll_quanta == 0) {
      throw std::invalid_argument("guard: poll_quanta must be positive");
    }
  }
};

}  // namespace simany::guard
