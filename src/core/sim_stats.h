// Aggregated simulation results.
#pragma once

#include <cstdint>
#include <vector>

#include "core/vtime.h"
#include "net/network.h"

namespace simany {

struct SimStats {
  /// Virtual time at which the last task completed.
  Tick completion_ticks = 0;
  [[nodiscard]] Cycles completion_cycles() const noexcept {
    return cycles_floor(completion_ticks);
  }

  std::uint64_t tasks_spawned = 0;   // dispatched through TASK_SPAWN
  std::uint64_t tasks_inlined = 0;   // probe failed, ran sequentially
  std::uint64_t tasks_migrated = 0;  // forwarded off an overloaded core
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_denied = 0;
  std::uint64_t messages = 0;        // architectural messages
  std::uint64_t sync_stalls = 0;     // spatial-synchronization stalls
  std::uint64_t fiber_switches = 0;
  std::uint64_t joins_suspended = 0;
  std::uint64_t limit_recomputes = 0;

  // Fault-injection accounting (src/fault). All zero unless the run's
  // ArchConfig carried an enabled FaultPlan; deterministic for a fixed
  // (config, fault plan, shard count).
  std::uint64_t faults_injected = 0;       // total events, all kinds
  std::uint64_t fault_msgs_delayed = 0;
  std::uint64_t fault_msgs_duplicated = 0;
  std::uint64_t fault_msgs_dropped = 0;    // messages with >= 1 lost attempt
  std::uint64_t fault_msg_retries = 0;     // lost attempts retransmitted
  std::uint64_t fault_msgs_reordered = 0;  // sends overtaking delayed ones
  std::uint64_t fault_core_stalls = 0;
  std::uint64_t fault_spawn_denials = 0;
  std::uint64_t fault_mem_spikes = 0;
  /// Cores wedged into a permanent no-progress spin by the plan (the
  /// watchdog's fabricated-livelock test vector).
  std::uint64_t fault_core_wedges = 0;
  /// Cores permanently disabled by the plan (set at run end, per run).
  std::uint32_t fault_dead_cores = 0;

  // Guard/backpressure accounting (src/guard limits, engine-enforced).
  /// Deliveries rejected by the max_inbox_depth resource guard.
  std::uint64_t guard_inbox_overflows = 0;
  /// Fiber creations rejected by the max_live_fibers resource guard.
  std::uint64_t guard_fiber_overflows = 0;
  /// High-water marks feeding guard tuning (max-merged across shards).
  std::uint64_t inbox_depth_peak = 0;
  std::uint64_t live_fibers_peak = 0;

  /// Available host parallelism, sampled periodically during the run:
  /// the number of simulated cores that could be advanced concurrently
  /// (actionable and not drift-capped). The paper (SS VIII) reports a
  /// preliminary study of exactly this quantity.
  std::uint64_t parallelism_samples = 0;
  std::uint64_t parallelism_sum = 0;
  std::uint64_t parallelism_max = 0;

  /// Drift high-water mark (paper SS VI): the largest lead any active
  /// core held over an active topological neighbor, sampled on the
  /// parallelism cadence through the same view the drift limiter uses
  /// (live same-shard state, frozen proxies across shard boundaries).
  /// Deterministic for a fixed shard count; a host-side observation,
  /// so the value may differ — deterministically — across shard
  /// counts, like host_rounds.
  Tick drift_max_ticks = 0;
  [[nodiscard]] Cycles drift_max_cycles() const noexcept {
    return cycles_floor(drift_max_ticks);
  }
  [[nodiscard]] double avg_parallelism() const noexcept {
    return parallelism_samples == 0
               ? 0.0
               : static_cast<double>(parallelism_sum) /
                     static_cast<double>(parallelism_samples);
  }

  /// Host wall-clock seconds spent inside run().
  double wall_seconds = 0.0;

  // Host-execution backend accounting (parallel backend; a sequential
  // run reports 1 thread and one "round" per serial-phase check).
  std::uint64_t host_rounds = 0;
  std::uint64_t host_threads_used = 1;
  /// Times any core inbox outgrew its inline buffer onto the heap.
  std::uint64_t inbox_heap_allocs = 0;

  /// Per-core busy virtual time (task execution + runtime handling).
  std::vector<Tick> core_busy_ticks;

  net::NetworkStats network;

  /// Accumulates another shard's counter block into this one (used when
  /// merging per-shard stats at the end of a parallel run). Only the
  /// additive counters; completion/wall/network/core fields are
  /// assembled separately by the engine.
  void merge_counters(const SimStats& o) noexcept {
    tasks_spawned += o.tasks_spawned;
    tasks_inlined += o.tasks_inlined;
    tasks_migrated += o.tasks_migrated;
    probes_sent += o.probes_sent;
    probes_denied += o.probes_denied;
    messages += o.messages;
    sync_stalls += o.sync_stalls;
    fiber_switches += o.fiber_switches;
    joins_suspended += o.joins_suspended;
    limit_recomputes += o.limit_recomputes;
    faults_injected += o.faults_injected;
    fault_msgs_delayed += o.fault_msgs_delayed;
    fault_msgs_duplicated += o.fault_msgs_duplicated;
    fault_msgs_dropped += o.fault_msgs_dropped;
    fault_msg_retries += o.fault_msg_retries;
    fault_msgs_reordered += o.fault_msgs_reordered;
    fault_core_stalls += o.fault_core_stalls;
    fault_spawn_denials += o.fault_spawn_denials;
    fault_mem_spikes += o.fault_mem_spikes;
    fault_core_wedges += o.fault_core_wedges;
    guard_inbox_overflows += o.guard_inbox_overflows;
    guard_fiber_overflows += o.guard_fiber_overflows;
    inbox_depth_peak = inbox_depth_peak > o.inbox_depth_peak
                           ? inbox_depth_peak
                           : o.inbox_depth_peak;
    live_fibers_peak = live_fibers_peak > o.live_fibers_peak
                           ? live_fibers_peak
                           : o.live_fibers_peak;
    parallelism_samples += o.parallelism_samples;
    parallelism_sum += o.parallelism_sum;
    parallelism_max = parallelism_max > o.parallelism_max
                          ? parallelism_max
                          : o.parallelism_max;
    drift_max_ticks =
        drift_max_ticks > o.drift_max_ticks ? drift_max_ticks
                                            : o.drift_max_ticks;
  }
};

}  // namespace simany
