// Phase-discipline and lock-discipline annotation vocabulary.
//
// The engine's correctness rests on two contracts that nothing used to
// enforce at compile time:
//
//  * Phase discipline. The parallel host alternates worker rounds
//    (every shard's worker thread runs host_round over its own shards)
//    with a single-threaded serial barrier phase (commit, seal,
//    termination detection, guard aborts). Functions that touch global
//    or cross-shard state may only run in the serial phase; functions
//    reachable from a worker round must stay shard-local.
//
//  * Mailbox sides. Each SPSC mailbox (src, dst) has exactly one
//    producer (src's worker) and one consumer (dst's worker); the
//    barrier seals. Touching the wrong end from the wrong side is a
//    race that only shows up as a nondeterministic simulation result.
//
// The macros below name those roles in the source. Under clang they
// expand to [[clang::annotate]] attributes, so an AST-based tool can
// read them exactly; under any compiler (including GCC, which this
// repo's default toolchain uses) tools/simlint's internal frontend
// recognizes the macro tokens themselves. Either way the annotations
// compile to nothing: annotated and unannotated builds are
// bit-identical (acceptance-tested by the tier-1 suite).
//
// tools/simlint enforces, from compile_commands.json:
//   rule phase-serial-escape  no SIMANY_SERIAL_ONLY function is
//                             reachable from a SIMANY_WORKER_PHASE root
//   rule mailbox-side         push()/pop()/seal() are called only from
//                             the matching annotated side (serial-only
//                             code may touch both ends: workers are
//                             parked at the barrier)
//   rule det-*                determinism lints (wall clock, libc rand,
//                             unordered iteration, thread_local,
//                             unannotated member mutexes)
//
// See docs/static_analysis.md for the full vocabulary and policy.
#pragma once

#if defined(__clang__)
#define SIMANY_ANNOTATE(x) [[clang::annotate(x)]]
#else
#define SIMANY_ANNOTATE(x)
#endif

/// Only callable from the single-threaded serial barrier phase (or
/// before/after the run, when no worker exists). Owns all shard state.
#define SIMANY_SERIAL_ONLY SIMANY_ANNOTATE("simany::serial_only")

/// Runs inside a shard worker's round, concurrently with other shards.
/// Must stay shard-local; simlint uses these as reachability roots.
#define SIMANY_WORKER_PHASE SIMANY_ANNOTATE("simany::worker_phase")

/// Touches state owned by exactly one shard (the shard passed in or the
/// shard owning the core argument). Callable from that shard's round or
/// from the serial phase.
#define SIMANY_SHARD_AFFINE SIMANY_ANNOTATE("simany::shard_affine")

/// The producer end of an SPSC mailbox: may push(), must not pop() or
/// seal(). On SpscMailbox itself this marks the producer-side method.
#define SIMANY_MAILBOX_PRODUCER SIMANY_ANNOTATE("simany::mailbox_producer")

/// The consumer end of an SPSC mailbox: may pop(), must not push() or
/// seal(). On SpscMailbox itself this marks the consumer-side method.
#define SIMANY_MAILBOX_CONSUMER SIMANY_ANNOTATE("simany::mailbox_consumer")

// ---------------------------------------------------------------------
// Clang -Wthread-safety vocabulary (no-ops elsewhere). The CI
// static-analysis job builds with clang, where these become the real
// capability attributes; simlint's det-mutex-unannotated rule requires
// every member std::mutex to be referenced by at least one of them.
// ---------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SIMANY_TS_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef SIMANY_TS_ATTR
#define SIMANY_TS_ATTR(x)
#endif

#define SIMANY_CAPABILITY(x) SIMANY_TS_ATTR(capability(x))
#define SIMANY_GUARDED_BY(x) SIMANY_TS_ATTR(guarded_by(x))
#define SIMANY_PT_GUARDED_BY(x) SIMANY_TS_ATTR(pt_guarded_by(x))
#define SIMANY_REQUIRES(...) SIMANY_TS_ATTR(requires_capability(__VA_ARGS__))
#define SIMANY_ACQUIRE(...) SIMANY_TS_ATTR(acquire_capability(__VA_ARGS__))
#define SIMANY_RELEASE(...) SIMANY_TS_ATTR(release_capability(__VA_ARGS__))
#define SIMANY_EXCLUDES(...) SIMANY_TS_ATTR(locks_excluded(__VA_ARGS__))
#define SIMANY_NO_THREAD_SAFETY_ANALYSIS \
  SIMANY_TS_ATTR(no_thread_safety_analysis)
