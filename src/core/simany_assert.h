// Checked-build assertions with simulation context.
//
// SIMANY_ASSERT behaves like assert() but (a) stays active in Release
// builds configured with -DSIMANY_CHECKED=ON and (b) prints a stream
// of context values (core id, virtual time, event) before aborting, so
// a violated engine invariant deep into a long run is diagnosable from
// the message alone:
//
//   SIMANY_ASSERT(live_tasks_ > 0, "task_done on core ", c.id,
//                 " at vt=", c.now, " with zero live tasks");
//
// When inactive the macro compiles to nothing (the condition is not
// evaluated), so hot-path checks are free in plain Release builds.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#if !defined(NDEBUG) || defined(SIMANY_CHECKED)
#define SIMANY_ASSERT_ACTIVE 1
#else
#define SIMANY_ASSERT_ACTIVE 0
#endif

namespace simany::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& context) {
  std::cerr << file << ":" << line << ": SIMANY_ASSERT(" << expr
            << ") failed";
  if (!context.empty()) std::cerr << ": " << context;
  std::cerr << std::endl;
  std::abort();
}

template <typename... Ts>
[[nodiscard]] std::string assert_context(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

}  // namespace simany::detail

#if SIMANY_ASSERT_ACTIVE
#define SIMANY_ASSERT(cond, ...)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::simany::detail::assert_fail(                                      \
          #cond, __FILE__, __LINE__,                                      \
          ::simany::detail::assert_context(__VA_ARGS__));                 \
    }                                                                     \
  } while (0)
#else
#define SIMANY_ASSERT(cond, ...) ((void)0)
#endif
