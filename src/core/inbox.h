// Per-core message inbox with inline storage.
//
// The previous std::deque<Message> paid a heap allocation for its first
// chunk on practically every core and churned chunks under load. Inbox
// depth is tiny in steady state (the paper's task queues hold ~2 slots;
// control traffic adds a few more), so a ring buffer whose first
// kInlineCapacity slots live inside the CoreSim itself makes the common
// path allocation-free. The ring only touches the heap when a burst
// exceeds the inline capacity, and every such growth is counted so
// bench/micro_engine can report allocation behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "core/message.h"
#include "core/simany_assert.h"
#include "core/vtime.h"

namespace simany {

class InboxQueue {
 public:
  static constexpr std::size_t kInlineCapacity = 8;

  InboxQueue() = default;
  InboxQueue(const InboxQueue&) = delete;
  InboxQueue& operator=(const InboxQueue&) = delete;
  InboxQueue(InboxQueue&&) = delete;
  InboxQueue& operator=(InboxQueue&&) = delete;

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void push_back(Message&& m) {
    if (size_ == cap_) grow();
    slot(size_) = std::move(m);
    ++size_;
    min_dirty_ = true;
  }

  [[nodiscard]] Message& front() noexcept {
    SIMANY_ASSERT(size_ > 0, "front() on empty inbox");
    return slot(0);
  }

  [[nodiscard]] Message pop_front() {
    SIMANY_ASSERT(size_ > 0, "pop_front() on empty inbox");
    Message m = std::move(slot(0));
    head_ = (head_ + 1) % cap_;
    --size_;
    min_dirty_ = true;
    return m;
  }

  /// Earliest arrival tick of any queued message; kTickInfinity when
  /// empty. Cached between mutations (satellite hot-path: the drift
  /// check consults this every scheduling decision).
  [[nodiscard]] Tick min_arrival() const noexcept {
    if (min_dirty_) {
      Tick lo = kTickInfinity;
      for (std::size_t i = 0; i < size_; ++i) {
        const Tick a = slot(i).arrival;
        if (a < lo) lo = a;
      }
      min_arrival_ = lo;
      min_dirty_ = false;
    }
    return min_arrival_;
  }

  /// Visits every queued message in FIFO order (inspect/audit paths).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) fn(slot(i));
  }

  /// Number of times this inbox had to grow onto the heap.
  [[nodiscard]] std::uint64_t heap_allocs() const noexcept { return allocs_; }

 private:
  [[nodiscard]] Message& slot(std::size_t i) noexcept {
    return buf_[(head_ + i) % cap_];
  }
  [[nodiscard]] const Message& slot(std::size_t i) const noexcept {
    return buf_[(head_ + i) % cap_];
  }

  void grow() {
    const std::size_t new_cap = cap_ * 2;
    auto fresh = std::make_unique<Message[]>(new_cap);
    for (std::size_t i = 0; i < size_; ++i) fresh[i] = std::move(slot(i));
    heap_ = std::move(fresh);
    buf_ = heap_.get();
    cap_ = new_cap;
    head_ = 0;
    ++allocs_;
  }

  Message inline_[kInlineCapacity];
  std::unique_ptr<Message[]> heap_;
  Message* buf_ = inline_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t cap_ = kInlineCapacity;
  std::uint64_t allocs_ = 0;
  mutable Tick min_arrival_ = kTickInfinity;
  mutable bool min_dirty_ = false;
};

}  // namespace simany
