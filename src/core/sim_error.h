// Structured error for simulations aborted by a simulated condition.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace simany {

/// Thrown when the *simulated* machine fails in a way the run-time
/// cannot mask — e.g. a message whose retransmission budget is
/// exhausted under an injected-fault plan — as opposed to a host-side
/// logic error. Carries structured context so harnesses can report
/// what failed (and reproduce it) without parsing what().
class SimError : public std::runtime_error {
 public:
  struct Context {
    /// Short machine-readable cause, e.g. "msg-retry-exhausted".
    std::string cause;
    std::uint32_t core = ~0u;  // primary core involved
    std::uint32_t peer = ~0u;  // counterpart core, if any
    std::uint64_t at_tick = 0;
    /// Cause-specific magnitude (e.g. transmission attempts made).
    std::uint64_t detail = 0;
    /// Seed of the fault plan that produced the condition (0 if none).
    std::uint64_t fault_seed = 0;
  };

  SimError(const std::string& msg, Context ctx)
      : std::runtime_error(msg), ctx_(std::move(ctx)) {}

  [[nodiscard]] const Context& context() const noexcept { return ctx_; }

 private:
  Context ctx_;
};

}  // namespace simany
