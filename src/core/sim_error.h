// Structured error for simulations aborted by a simulated condition.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace simany {

/// Failure taxonomy for aborted runs. Retry harnesses branch on this:
/// a *transient* code depends on host wall-clock conditions and may
/// succeed on a rerun; everything else is a deterministic property of
/// (config, workload, shard count) and will fail identically again.
enum class SimErrorCode : std::uint8_t {
  kUnknown = 0,
  /// Injected message loss exhausted the retransmission budget.
  kMsgRetryExhausted,
  /// Wall-clock budget (--deadline-ms) expired; run was cancelled.
  kDeadlineExceeded,
  /// Virtual-time budget (--max-vtime) exceeded.
  kVtimeBudgetExceeded,
  /// Watchdog: cores non-idle but global virtual time frozen.
  kLivelock,
  /// No core can make progress (circular wait or lost wake).
  kDeadlock,
  /// Exception escaped a shard worker thread; contained and rethrown
  /// on the serial phase with shard context.
  kWorkerException,
  /// A resource guard tripped (inbox depth / fiber pool exhaustion).
  kResourceExhausted,
  /// Exception thrown by a task body inside a fiber; transported to
  /// the host stack and wrapped with core/task context.
  kTaskException,
  /// Cooperative cancellation requested externally (SIGINT/SIGTERM or
  /// Engine::request_cancel).
  kCancelled,
  /// Snapshot file is structurally invalid: truncated, bad magic,
  /// unknown version, digest mismatch, oversized length prefix
  /// (src/snapshot reader; never UB on arbitrary bytes).
  kSnapshotCorrupt,
  /// Snapshot is well-formed but does not belong to this run: config /
  /// workload / seed fingerprint differs, or the replayed state
  /// diverged from the stored image at the cursor.
  kSnapshotMismatch,
  /// Host filesystem rejected an artifact write for lack of space
  /// (ENOSPC / EDQUOT). Freeing space and rerunning can succeed, but
  /// the code is kept non-transient: a blind rerun on the same full
  /// disk fails identically, so the operator must act first.
  kIoNoSpace,
  /// Artifact destination is not writable (EROFS / EACCES / EPERM).
  kIoReadOnly,
  /// Any other host I/O failure on an artifact write (EIO, short
  /// write, stream failure without a telling errno).
  kIoError,
};

[[nodiscard]] constexpr const char* to_string(SimErrorCode c) noexcept {
  switch (c) {
    case SimErrorCode::kUnknown: return "unknown";
    case SimErrorCode::kMsgRetryExhausted: return "msg-retry-exhausted";
    case SimErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case SimErrorCode::kVtimeBudgetExceeded: return "vtime-budget-exceeded";
    case SimErrorCode::kLivelock: return "livelock";
    case SimErrorCode::kDeadlock: return "deadlock";
    case SimErrorCode::kWorkerException: return "worker-exception";
    case SimErrorCode::kResourceExhausted: return "resource-exhausted";
    case SimErrorCode::kTaskException: return "task-exception";
    case SimErrorCode::kCancelled: return "cancelled";
    case SimErrorCode::kSnapshotCorrupt: return "snapshot-corrupt";
    case SimErrorCode::kSnapshotMismatch: return "snapshot-mismatch";
    case SimErrorCode::kIoNoSpace: return "io-no-space";
    case SimErrorCode::kIoReadOnly: return "io-read-only";
    case SimErrorCode::kIoError: return "io-error";
  }
  return "unknown";
}

/// Only wall-clock-dependent failures are worth retrying: a rerun on a
/// less loaded host can beat a deadline it previously missed. Every
/// other code is a pure function of the run's inputs.
[[nodiscard]] constexpr bool is_transient(SimErrorCode c) noexcept {
  return c == SimErrorCode::kDeadlineExceeded;
}

/// Thrown when the *simulated* machine fails in a way the run-time
/// cannot mask — e.g. a message whose retransmission budget is
/// exhausted under an injected-fault plan — as opposed to a host-side
/// logic error. Carries structured context so harnesses can report
/// what failed (and reproduce it) without parsing what().
class SimError : public std::runtime_error {
 public:
  struct Context {
    /// Short machine-readable cause, e.g. "msg-retry-exhausted".
    std::string cause;
    std::uint32_t core = ~0u;  // primary core involved
    std::uint32_t peer = ~0u;  // counterpart core, if any
    std::uint64_t at_tick = 0;
    /// Cause-specific magnitude (e.g. transmission attempts made).
    std::uint64_t detail = 0;
    /// Seed of the fault plan that produced the condition (0 if none).
    std::uint64_t fault_seed = 0;
    /// Taxonomy code; `cause` is its human-oriented twin.
    SimErrorCode code = SimErrorCode::kUnknown;
    /// Shard on which the failure surfaced (~0u if not shard-scoped).
    std::uint32_t shard = ~0u;
  };

  SimError(const std::string& msg, Context ctx)
      : std::runtime_error(msg), ctx_(std::move(ctx)) {}

  [[nodiscard]] const Context& context() const noexcept { return ctx_; }
  [[nodiscard]] SimErrorCode code() const noexcept { return ctx_.code; }
  [[nodiscard]] bool transient() const noexcept {
    return is_transient(ctx_.code);
  }

  /// Mutable context access for containment layers that annotate an
  /// in-flight error with where it surfaced (shard, core) without
  /// rebuilding the exception.
  [[nodiscard]] Context& mutable_context() noexcept { return ctx_; }

 private:
  Context ctx_;
};

}  // namespace simany
