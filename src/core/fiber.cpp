#include "core/fiber.h"

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "core/simany_assert.h"

#if SIMANY_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif
#if SIMANY_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

#if SIMANY_FIBER_FAST_AVAILABLE
extern "C" {
// Defined in fiber_switch.S: saves the callee-saved register frame on
// the current stack, publishes the resulting stack pointer through
// *save_sp, installs load_sp, restores the frame found there and
// "returns" through its return-address slot. Never fails.
void simany_fiber_switch(void** save_sp, void* load_sp);
}
#endif

namespace simany {

namespace {
// The fiber being executed right now, per host thread. Each parallel
// host worker runs its own scheduler loop and resumes fibers for its
// shard only, so a thread_local keeps the fast single-threaded lookup
// while making concurrent shard loops safe. Not fiber-resident state:
// it is written on every resume/park, never read across a yield.
// simlint: allow(det-thread-local) per-host-thread scheduler pointer
thread_local Fiber* g_current = nullptr;
}  // namespace

Fiber* Fiber::current() noexcept { return g_current; }

FiberBackend Fiber::resolve_backend(FiberBackend backend) {
  if (backend == FiberBackend::kAuto) {
#if SIMANY_FIBER_FAST_AVAILABLE && !defined(SIMANY_FIBER_DEFAULT_UCONTEXT)
    return FiberBackend::kFast;
#else
    return FiberBackend::kUcontext;
#endif
  }
  if (backend == FiberBackend::kFast && !SIMANY_FIBER_FAST_AVAILABLE) {
    throw std::invalid_argument(
        "FiberBackend::kFast is not available on this architecture");
  }
  return backend;
}

Fiber::Fiber(Fn fn, std::unique_ptr<std::byte[]> stack,
             std::size_t stack_bytes, FiberBackend backend)
    : fn_(std::move(fn)), stack_(std::move(stack)), stack_bytes_(stack_bytes),
      backend_(backend) {}

Fiber::~Fiber() {
  // Destroying a suspended, unfinished fiber leaks whatever its stack
  // owned; the engine only destroys fibers after completion or at
  // simulation teardown where leaked task state is acceptable.
#if SIMANY_TSAN_FIBERS
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

// First code on the fiber stack, shared by both backends: complete the
// sanitizer hand-off and pick up the fiber pointer parked in g_current
// by resume().
Fiber* Fiber::enter_fiber() noexcept {
  Fiber* self = g_current;
#if SIMANY_ASAN_FIBERS
  // First instruction on this stack: tell ASan the switch completed and
  // learn the scheduler stack's bounds for the switches back.
  __sanitizer_finish_switch_fiber(nullptr, &self->asan_sched_stack_,
                                  &self->asan_sched_size_);
#endif
  SIMANY_ASSERT(self != nullptr,
                "fiber trampoline entered with no current fiber");
  return self;
}

// Runs the task body, absorbing cancellation and transporting any other
// exception back to the scheduler. Exceptions never cross a switch.
void Fiber::run_task(Fiber* self) noexcept {
  try {
    self->fn_();
  } catch (const FiberUnwind&) {
    // Cooperative cancellation unwinding the task stack: expected, not
    // an error worth transporting back to the scheduler.
  } catch (...) {
    self->exception_ = std::current_exception();
  }
}

// Last shared code before a finished fiber transfers back for good.
void Fiber::leave_fiber(Fiber* self) noexcept {
  self->finished_ = true;
  // TSan note: no __tsan_switch_to_fiber here. Instrumented code (the
  // enclosing entry function's tail, including its compiler-inserted
  // func-exit under ucontext) still runs on the fiber stack after this
  // point, so switching TSan's shadow state now would pop a frame the
  // scheduler's shadow stack never pushed (and corrupt it — observed
  // as a TSan-internal SEGV). The scheduler side switches back right
  // after its switch call returns; see resume().
#if SIMANY_ASAN_FIBERS
  // Null fake-stack pointer = this fiber is terminating; ASan releases
  // its fake frames instead of keeping them for a return that never
  // happens.
  __sanitizer_start_switch_fiber(nullptr, self->asan_sched_stack_,
                                 self->asan_sched_size_);
#endif
}

void Fiber::trampoline() {
  Fiber* self = enter_fiber();
  run_task(self);
  leave_fiber(self);
  // Fall through: returning from the makecontext entry point resumes
  // uc_link, which we point at return_ctx_ before every resume.
}

#if SIMANY_FIBER_FAST_AVAILABLE

void Fiber::fast_entry() {
  Fiber* self = enter_fiber();
  run_task(self);
  leave_fiber(self);
  // A finished fiber is never resumed (the scheduler recycles it), so
  // this switch is one-way; abort guards the impossible return.
  simany_fiber_switch(&self->fast_sp_, self->fast_sched_sp_);
  std::abort();
}

void Fiber::prepare_fast_frame() {
  auto top = reinterpret_cast<std::uintptr_t>(stack_.get()) + stack_bytes_;
  top &= ~std::uintptr_t{15};
  const auto entry = reinterpret_cast<std::uintptr_t>(&Fiber::fast_entry);
#if defined(__x86_64__)
  // Mirror of simany_fiber_switch's save area, low to high:
  // [fcw|mxcsr][r15][r14][r13][r12][rbx][rbp][return address], with a
  // zero caller slot above as a backtrace terminator. The return
  // address sits on a 16-byte boundary, so the restore path's `ret`
  // enters fast_entry with the ABI's call-entry alignment
  // (rsp % 16 == 8).
  auto* frame = reinterpret_cast<std::uintptr_t*>(top - 72);
  frame[0] = 0x00001F80'0000037F;  // default x87 control word + mxcsr
  for (int i = 1; i <= 6; ++i) frame[i] = 0;
  frame[7] = entry;
  frame[8] = 0;
#elif defined(__aarch64__)
  // Mirror of the 160-byte aarch64 save area: x19..x28 at 0, x29 (fp,
  // zero terminates backtraces) at 80, x30 (lr — the restore path's
  // `ret` target, i.e. our entry) at 88, d8..d15 at 96.
  auto* frame = reinterpret_cast<std::uintptr_t*>(top - 160);
  for (int i = 0; i < 20; ++i) frame[i] = 0;
  frame[11] = entry;
#endif
  fast_sp_ = frame;
}

#endif  // SIMANY_FIBER_FAST_AVAILABLE

void Fiber::resume() {
  SIMANY_ASSERT(g_current == nullptr,
                "nested fiber resume is not supported (resume from inside "
                "fiber ", static_cast<const void*>(g_current), ")");
  SIMANY_ASSERT(!finished_, "resume of a finished fiber ",
                static_cast<const void*>(this));
  const bool fast = backend_ == FiberBackend::kFast;
  if (!started_) {
    started_ = true;
    if (fast) {
#if SIMANY_FIBER_FAST_AVAILABLE
      prepare_fast_frame();
#endif
    } else {
      if (getcontext(&ctx_) != 0) {
        throw std::runtime_error("getcontext failed");
      }
      ctx_.uc_stack.ss_sp = stack_.get();
      ctx_.uc_stack.ss_size = stack_bytes_;
      ctx_.uc_link = &return_ctx_;
      makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
    }
  }
  if (!fast) ctx_.uc_link = &return_ctx_;
  g_current = this;
#if SIMANY_ASAN_FIBERS
  void* sched_fake_stack = nullptr;
  __sanitizer_start_switch_fiber(&sched_fake_stack, stack_.get(),
                                 stack_bytes_);
#endif
#if SIMANY_TSAN_FIBERS
  if (tsan_fiber_ == nullptr) tsan_fiber_ = __tsan_create_fiber(0);
  // Re-learned on every resume: a parked joiner may migrate and be
  // resumed by a different host thread than the one that created it.
  tsan_sched_fiber_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  int rc = 0;
  if (fast) {
#if SIMANY_FIBER_FAST_AVAILABLE
    simany_fiber_switch(&fast_sched_sp_, fast_sp_);
#endif
  } else {
    rc = swapcontext(&return_ctx_, &ctx_);
  }
#if SIMANY_TSAN_FIBERS
  // A yield already switched TSan back before its own switch; the
  // terminating path of a finishing fiber could not (see
  // leave_fiber()), so the scheduler restores its own shadow state
  // here.
  if (finished_) __tsan_switch_to_fiber(tsan_sched_fiber_, 0);
#endif
#if SIMANY_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(sched_fake_stack, nullptr, nullptr);
#endif
  if (rc != 0) {
    g_current = nullptr;
    throw std::runtime_error("swapcontext into fiber failed");
  }
  g_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = g_current;
  SIMANY_ASSERT(self != nullptr, "Fiber::yield outside of fiber context");
  g_current = nullptr;
#if SIMANY_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&self->asan_fiber_fake_stack_,
                                 self->asan_sched_stack_,
                                 self->asan_sched_size_);
#endif
#if SIMANY_TSAN_FIBERS
  __tsan_switch_to_fiber(self->tsan_sched_fiber_, 0);
#endif
  int rc = 0;
  if (self->backend_ == FiberBackend::kFast) {
#if SIMANY_FIBER_FAST_AVAILABLE
    simany_fiber_switch(&self->fast_sp_, self->fast_sched_sp_);
#endif
  } else {
    rc = swapcontext(&self->ctx_, &self->return_ctx_);
  }
#if SIMANY_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(self->asan_fiber_fake_stack_,
                                  &self->asan_sched_stack_,
                                  &self->asan_sched_size_);
#endif
  if (rc != 0) {
    throw std::runtime_error("swapcontext out of fiber failed");
  }
  // Back inside the fiber: restore the current pointer.
  g_current = self;
}

FiberPool::FiberPool(std::size_t stack_bytes, FiberBackend backend)
    : stack_bytes_(stack_bytes), backend_(Fiber::resolve_backend(backend)) {}

std::unique_ptr<Fiber> FiberPool::create(Fiber::Fn fn) {
  std::unique_ptr<std::byte[]> stack;
  if (!free_stacks_.empty()) {
    stack = std::move(free_stacks_.back());
    free_stacks_.pop_back();
  } else {
    stack = std::make_unique<std::byte[]>(stack_bytes_);
  }
  ++created_;
  return std::unique_ptr<Fiber>(
      new Fiber(std::move(fn), std::move(stack), stack_bytes_, backend_));
}

void FiberPool::recycle(std::unique_ptr<Fiber> fiber) {
  if (!fiber) return;
  ++returned_;
  if (fiber->finished() && fiber->stack_bytes_ == stack_bytes_) {
    free_stacks_.push_back(std::move(fiber->stack_));
  }
}

}  // namespace simany
