#include "core/fiber.h"

#include <cstdint>
#include <stdexcept>
#include <utility>

#include "core/simany_assert.h"

#if SIMANY_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif
#if SIMANY_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace simany {

namespace {
// The fiber being executed right now, per host thread. Each parallel
// host worker runs its own scheduler loop and resumes fibers for its
// shard only, so a thread_local keeps the fast single-threaded lookup
// while making concurrent shard loops safe. Not fiber-resident state:
// it is written on every resume/park, never read across a yield.
// simlint: allow(det-thread-local) per-host-thread scheduler pointer
thread_local Fiber* g_current = nullptr;
}  // namespace

Fiber* Fiber::current() noexcept { return g_current; }

Fiber::Fiber(Fn fn, std::unique_ptr<std::byte[]> stack,
             std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_(std::move(stack)), stack_bytes_(stack_bytes) {}

Fiber::~Fiber() {
  // Destroying a suspended, unfinished fiber leaks whatever its stack
  // owned; the engine only destroys fibers after completion or at
  // simulation teardown where leaked task state is acceptable.
#if SIMANY_TSAN_FIBERS
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

void Fiber::trampoline() {
  Fiber* self = g_current;
#if SIMANY_ASAN_FIBERS
  // First instruction on this stack: tell ASan the switch completed and
  // learn the scheduler stack's bounds for the switches back.
  __sanitizer_finish_switch_fiber(nullptr, &self->asan_sched_stack_,
                                  &self->asan_sched_size_);
#endif
  SIMANY_ASSERT(self != nullptr,
                "fiber trampoline entered with no current fiber");
  try {
    self->fn_();
  } catch (const FiberUnwind&) {
    // Cooperative cancellation unwinding the task stack: expected, not
    // an error worth transporting back to the scheduler.
  } catch (...) {
    self->exception_ = std::current_exception();
  }
  self->finished_ = true;
  // TSan note: no __tsan_switch_to_fiber here. The compiler-inserted
  // func-exit of this very function still runs on the fiber stack after
  // any code written here, so switching TSan's shadow state now would
  // pop a frame the scheduler's shadow stack never pushed (and corrupt
  // it — observed as a TSan-internal SEGV). The scheduler side switches
  // back right after swapcontext returns; see resume().
#if SIMANY_ASAN_FIBERS
  // Null fake-stack pointer = this fiber is terminating; ASan releases
  // its fake frames instead of keeping them for a return that never
  // happens.
  __sanitizer_start_switch_fiber(nullptr, self->asan_sched_stack_,
                                 self->asan_sched_size_);
#endif
  // Fall through: returning from the makecontext entry point resumes
  // uc_link, which we point at return_ctx_ before every resume.
}

void Fiber::resume() {
  SIMANY_ASSERT(g_current == nullptr,
                "nested fiber resume is not supported (resume from inside "
                "fiber ", static_cast<const void*>(g_current), ")");
  SIMANY_ASSERT(!finished_, "resume of a finished fiber ",
                static_cast<const void*>(this));
  if (!started_) {
    started_ = true;
    if (getcontext(&ctx_) != 0) {
      throw std::runtime_error("getcontext failed");
    }
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_bytes_;
    ctx_.uc_link = &return_ctx_;
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
  }
  ctx_.uc_link = &return_ctx_;
  g_current = this;
#if SIMANY_ASAN_FIBERS
  void* sched_fake_stack = nullptr;
  __sanitizer_start_switch_fiber(&sched_fake_stack, stack_.get(),
                                 stack_bytes_);
#endif
#if SIMANY_TSAN_FIBERS
  if (tsan_fiber_ == nullptr) tsan_fiber_ = __tsan_create_fiber(0);
  // Re-learned on every resume: a parked joiner may migrate and be
  // resumed by a different host thread than the one that created it.
  tsan_sched_fiber_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  const int rc = swapcontext(&return_ctx_, &ctx_);
#if SIMANY_TSAN_FIBERS
  // A yield already switched TSan back before its swapcontext; the
  // uc_link fall-through of a finishing fiber could not (see
  // trampoline()), so the scheduler restores its own shadow state here.
  if (finished_) __tsan_switch_to_fiber(tsan_sched_fiber_, 0);
#endif
#if SIMANY_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(sched_fake_stack, nullptr, nullptr);
#endif
  if (rc != 0) {
    g_current = nullptr;
    throw std::runtime_error("swapcontext into fiber failed");
  }
  g_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = g_current;
  SIMANY_ASSERT(self != nullptr, "Fiber::yield outside of fiber context");
  g_current = nullptr;
#if SIMANY_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&self->asan_fiber_fake_stack_,
                                 self->asan_sched_stack_,
                                 self->asan_sched_size_);
#endif
#if SIMANY_TSAN_FIBERS
  __tsan_switch_to_fiber(self->tsan_sched_fiber_, 0);
#endif
  const int rc = swapcontext(&self->ctx_, &self->return_ctx_);
#if SIMANY_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(self->asan_fiber_fake_stack_,
                                  &self->asan_sched_stack_,
                                  &self->asan_sched_size_);
#endif
  if (rc != 0) {
    throw std::runtime_error("swapcontext out of fiber failed");
  }
  // Back inside the fiber: restore the current pointer.
  g_current = self;
}

FiberPool::FiberPool(std::size_t stack_bytes) : stack_bytes_(stack_bytes) {}

std::unique_ptr<Fiber> FiberPool::create(Fiber::Fn fn) {
  std::unique_ptr<std::byte[]> stack;
  if (!free_stacks_.empty()) {
    stack = std::move(free_stacks_.back());
    free_stacks_.pop_back();
  } else {
    stack = std::make_unique<std::byte[]>(stack_bytes_);
  }
  ++created_;
  return std::unique_ptr<Fiber>(
      new Fiber(std::move(fn), std::move(stack), stack_bytes_));
}

void FiberPool::recycle(std::unique_ptr<Fiber> fiber) {
  if (!fiber) return;
  ++returned_;
  if (fiber->finished() && fiber->stack_bytes_ == stack_bytes_) {
    free_stacks_.push_back(std::move(fiber->stack_));
  }
}

}  // namespace simany
