#include "core/fiber.h"

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <utility>

namespace simany {

namespace {
// The fiber being executed right now. The engine is single-threaded by
// design (paper SS III), so a plain static is sufficient and fast.
Fiber* g_current = nullptr;
}  // namespace

Fiber* Fiber::current() noexcept { return g_current; }

Fiber::Fiber(Fn fn, std::unique_ptr<std::byte[]> stack,
             std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_(std::move(stack)), stack_bytes_(stack_bytes) {}

Fiber::~Fiber() {
  // Destroying a suspended, unfinished fiber leaks whatever its stack
  // owned; the engine only destroys fibers after completion or at
  // simulation teardown where leaked task state is acceptable.
}

void Fiber::trampoline() {
  Fiber* self = g_current;
  assert(self != nullptr);
  try {
    self->fn_();
  } catch (...) {
    self->exception_ = std::current_exception();
  }
  self->finished_ = true;
  // Fall through: returning from the makecontext entry point resumes
  // uc_link, which we point at return_ctx_ before every resume.
}

void Fiber::resume() {
  assert(g_current == nullptr && "nested fiber resume is not supported");
  assert(!finished_);
  if (!started_) {
    started_ = true;
    if (getcontext(&ctx_) != 0) {
      throw std::runtime_error("getcontext failed");
    }
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_bytes_;
    ctx_.uc_link = &return_ctx_;
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
  }
  ctx_.uc_link = &return_ctx_;
  g_current = this;
  if (swapcontext(&return_ctx_, &ctx_) != 0) {
    g_current = nullptr;
    throw std::runtime_error("swapcontext into fiber failed");
  }
  g_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = g_current;
  assert(self != nullptr && "yield outside of fiber context");
  g_current = nullptr;
  if (swapcontext(&self->ctx_, &self->return_ctx_) != 0) {
    throw std::runtime_error("swapcontext out of fiber failed");
  }
  // Back inside the fiber: restore the current pointer.
  g_current = self;
}

FiberPool::FiberPool(std::size_t stack_bytes) : stack_bytes_(stack_bytes) {}

std::unique_ptr<Fiber> FiberPool::create(Fiber::Fn fn) {
  std::unique_ptr<std::byte[]> stack;
  if (!free_stacks_.empty()) {
    stack = std::move(free_stacks_.back());
    free_stacks_.pop_back();
  } else {
    stack = std::make_unique<std::byte[]>(stack_bytes_);
  }
  ++created_;
  return std::unique_ptr<Fiber>(
      new Fiber(std::move(fn), std::move(stack), stack_bytes_));
}

void FiberPool::recycle(std::unique_ptr<Fiber> fiber) {
  if (fiber && fiber->finished() && fiber->stack_bytes_ == stack_bytes_) {
    free_stacks_.push_back(std::move(fiber->stack_));
  }
}

}  // namespace simany
