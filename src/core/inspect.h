// Structured snapshot of complete engine state, for validators,
// deadlock diagnostics and debugging dumps.
//
// Engine::inspect() is deliberately allocation-heavy and slow — it is
// meant for on-demand use (periodic audits, deadlock reports), never
// for the hot path. The structs are plain data so external checkers
// and unit tests can fabricate states without a live engine (this is
// how the negative invariant-injection tests work).
#pragma once

#include <cstdint>
#include <vector>

#include "core/sim_types.h"
#include "core/vtime.h"

namespace simany {

struct CoreInspect {
  CoreId id = 0;
  Tick now = 0;
  /// Anchored: a running fiber, queued task or resumable joiner pins
  /// this core's virtual time (idle cores are shadow-transparent).
  bool anchor = false;
  /// A task fiber is installed (running, stalled or blocked).
  bool has_fiber = false;
  bool sync_stalled = false;
  bool waiting_reply = false;
  /// Permanently disabled by the run's fault plan ("core-dead,
  /// NoC-alive": it executes no tasks but its network interface and
  /// homed tables stay serviced).
  bool dead = false;
  int hold_depth = 0;
  std::size_t inbox_len = 0;
  std::size_t queue_len = 0;
  std::size_t resumables = 0;
  std::uint32_t reserved = 0;
  /// Birth times of in-flight spawns sent from this core.
  std::vector<Tick> births;
};

struct LockInspect {
  LockId id = 0;
  CoreId home = 0;
  bool held = false;
  CoreId holder = net::kInvalidCore;
  std::vector<CoreId> waiters;
};

struct CellInspect {
  CellId id = 0;
  CoreId home = 0;
  bool locked = false;
  CoreId holder = net::kInvalidCore;
  std::vector<CoreId> waiters;
};

struct GroupInspect {
  GroupId id = 0;
  std::uint32_t active = 0;
  std::vector<CoreId> joiner_cores;
};

struct EngineInspect {
  /// Drift bound T in ticks.
  Tick drift_ticks = 0;
  std::uint64_t live_tasks = 0;
  std::uint64_t inflight_messages = 0;
  /// TASK_SPAWN messages currently in flight; they carry live tasks,
  /// which conservation accounting must include.
  std::uint64_t inflight_spawns = 0;
  std::vector<CoreInspect> cores;
  std::vector<LockInspect> locks;
  std::vector<CellInspect> cells;
  std::vector<GroupInspect> groups;
};

}  // namespace simany
