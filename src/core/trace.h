// Simulation event tracing.
//
// A TraceSink observes engine events as they are simulated (in
// simulation order, with virtual-time stamps). Sinks pay only a null
// check when tracing is off. Concrete sinks live in src/stats
// (CSV export, activity summaries, message histograms).
#pragma once

#include "core/message.h"
#include "core/sim_types.h"
#include "core/vtime.h"

namespace simany {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// A task began executing on `core` at virtual time `at`.
  virtual void on_task_start(CoreId core, Tick at) { (void)core, (void)at; }
  /// A task completed on `core` at virtual time `at`.
  virtual void on_task_end(CoreId core, Tick at) { (void)core, (void)at; }
  /// An architectural message entered the network.
  virtual void on_message(const Message& m) { (void)m; }
  /// `core` stalled on the drift bound at virtual time `at`.
  virtual void on_stall(CoreId core, Tick at) { (void)core, (void)at; }
  /// `core` resumed after a stall; its limit rose to `new_limit`.
  virtual void on_wake(CoreId core, Tick at, Tick new_limit) {
    (void)core, (void)at, (void)new_limit;
  }
};

}  // namespace simany
