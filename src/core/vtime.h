// Virtual-time representation for the SiMany discrete-event engine.
//
// The paper expresses all architectural delays in cycles, but needs
// sub-cycle resolution in two places: clustered meshes use 0.5-cycle
// intra-cluster link latencies (paper SS V) and polymorphic cores scale
// instruction-block costs by rational speed factors (x1/2 and x3/2).
// We therefore keep virtual time as an integer count of *ticks*, with
// kTicksPerCycle ticks per cycle. 12 divides evenly by 2, 3, 4 and 6,
// so every delay the paper uses is exact and runs stay deterministic.
#pragma once

#include <cstdint>
#include <limits>

namespace simany {

/// One tick is 1/kTicksPerCycle of a cycle.
using Tick = std::uint64_t;

/// Whole cycles, the unit used by public APIs and the paper.
using Cycles = std::uint64_t;

inline constexpr Tick kTicksPerCycle = 12;

inline constexpr Tick kTickInfinity = std::numeric_limits<Tick>::max();

/// Saturating tick addition. kTickInfinity means "unconstrained", and
/// drift-limit arithmetic routinely adds offsets to times that may be
/// infinite — wrapping there would turn "no constraint" into a tiny
/// (maximally binding) limit, so sums pin at infinity instead.
[[nodiscard]] constexpr Tick sat_add(Tick a, Tick b) noexcept {
  return a > kTickInfinity - b ? kTickInfinity : a + b;
}

/// Saturating tick multiplication (see sat_add).
[[nodiscard]] constexpr Tick sat_mul(Tick a, Tick b) noexcept {
  if (a == 0 || b == 0) return 0;
  return a > kTickInfinity / b ? kTickInfinity : a * b;
}

[[nodiscard]] constexpr Tick ticks(Cycles c) noexcept {
  return sat_mul(static_cast<Tick>(c), kTicksPerCycle);
}

/// Converts ticks back to whole cycles, rounding down.
[[nodiscard]] constexpr Cycles cycles_floor(Tick t) noexcept {
  return t / kTicksPerCycle;
}

/// Converts ticks back to cycles as a double, for reporting.
[[nodiscard]] constexpr double cycles_fp(Tick t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kTicksPerCycle);
}

/// Rational core speed factor. A core "twice slower" than base is {1, 2};
/// one "faster by 3/2" is {3, 2}. Costs are divided by the speed.
struct Speed {
  std::uint32_t num = 1;
  std::uint32_t den = 1;

  [[nodiscard]] constexpr bool is_unit() const noexcept {
    return num == den;
  }
  [[nodiscard]] constexpr double as_double() const noexcept {
    return static_cast<double>(num) / static_cast<double>(den);
  }
  friend constexpr bool operator==(Speed, Speed) = default;
};

/// Cost in ticks of a block of `c` cycles on a core of speed `s`
/// (rounded up so a nonzero cost never becomes free; saturating at
/// kTickInfinity so absurd annotations near the representable maximum
/// clamp instead of wrapping).
[[nodiscard]] constexpr Tick scaled_cost(Cycles c, Speed s) noexcept {
  const auto raw = static_cast<unsigned __int128>(c) * kTicksPerCycle * s.den;
  const auto scaled = (raw + s.num - 1) / s.num;
  return scaled >= static_cast<unsigned __int128>(kTickInfinity)
             ? kTickInfinity
             : static_cast<Tick>(scaled);
}

}  // namespace simany
