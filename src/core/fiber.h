// Userland cooperative fibers.
//
// SiMany executes sequential code blocks natively inside non-preemptive
// userland threads (paper SS III): a task must be able to suspend at an
// arbitrary call depth (probe, data access, lock, spatial-sync stall)
// while the engine switches to another simulated core. Stackful fibers
// give exactly that without making benchmark code coroutine-shaped.
//
// All switches go through a scheduler context: the engine resumes a
// fiber with Fiber::resume(), and the fiber returns control with
// Fiber::yield(). Stacks are recycled through a FiberPool because a
// 1024-core run creates and destroys tens of thousands of tasks.
//
// Two switch backends share this interface (see FiberBackend): the
// portable POSIX ucontext one, and a hand-rolled callee-saved-register
// switch (src/core/fiber_switch.S) that skips swapcontext's sigmask
// syscall — the difference between ~590 ns and well under 100 ns per
// switch, paid on every task activation. Both are always compiled on
// supported architectures; the SIMANY_FIBER_BACKEND CMake option only
// picks the default. docs/internals.md has the full rationale.
#pragma once

#include <csignal>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <ucontext.h>
#include <vector>

// The fast backend needs ~30 lines of per-architecture assembly; on
// anything else the ucontext fallback is the only choice.
#if defined(__x86_64__) || defined(__aarch64__)
#define SIMANY_FIBER_FAST_AVAILABLE 1
#else
#define SIMANY_FIBER_FAST_AVAILABLE 0
#endif

// AddressSanitizer must be told about every stack switch, or its
// fake-stack bookkeeping (and __asan_handle_no_return, hit whenever an
// exception unwinds across a fiber) corrupts the shadow for our
// heap-allocated stacks.
#if defined(__SANITIZE_ADDRESS__)
#define SIMANY_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SIMANY_ASAN_FIBERS 1
#endif
#endif
#ifndef SIMANY_ASAN_FIBERS
#define SIMANY_ASAN_FIBERS 0
#endif

// ThreadSanitizer likewise needs explicit fiber-switch annotations, or
// it attributes one host thread's fiber stacks to another and reports
// false races when the parallel host migrates a parked joiner.
#if defined(__SANITIZE_THREAD__)
#define SIMANY_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SIMANY_TSAN_FIBERS 1
#endif
#endif
#ifndef SIMANY_TSAN_FIBERS
#define SIMANY_TSAN_FIBERS 0
#endif

namespace simany {

class FiberPool;

/// Thrown through a suspended fiber by the engine's cooperative
/// cancellation: every yield point rechecks the cancel flag on resume
/// and unwinds the task's stack with this, running destructors so the
/// fiber finishes cleanly and its stack can be recycled leak-free.
/// Deliberately *not* derived from std::exception — task code catching
/// `std::exception&` (or anything short of `...` without rethrow) must
/// not be able to swallow a cancellation. The trampoline's catch-all
/// still stops it at the fiber boundary.
struct FiberUnwind {};

/// Which context-switch implementation a fiber uses. Behavior is
/// identical (same trampoline contract, exception transport, sanitizer
/// annotations); only the switch mechanics differ.
enum class FiberBackend : std::uint8_t {
  /// The build-configured default: kFast where available, else
  /// kUcontext. Resolved at FiberPool construction.
  kAuto,
  /// POSIX swapcontext. Portable, but every switch saves and restores
  /// the signal mask via rt_sigprocmask — a syscall per switch.
  kUcontext,
  /// Hand-rolled switch (fiber_switch.S): callee-saved registers and
  /// the stack pointer only, no syscall. x86-64 and aarch64.
  kFast,
};

/// A single suspendable execution context running `fn` on its own stack.
class Fiber {
 public:
  using Fn = std::function<void()>;

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber();

  /// Switches from the scheduler into this fiber. Must not be called
  /// from inside a fiber. Returns when the fiber yields or finishes.
  void resume();

  /// Switches from inside the currently running fiber back to the
  /// scheduler. Must be called from fiber context.
  static void yield();

  /// True once `fn` has returned (normally or by throwing).
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// Exception that escaped `fn`, if any. Exceptions cannot propagate
  /// across a context switch, so the scheduler rethrows them.
  [[nodiscard]] std::exception_ptr exception() const noexcept {
    return exception_;
  }

  /// The fiber currently executing, or nullptr when in scheduler context.
  [[nodiscard]] static Fiber* current() noexcept;

  /// The switch implementation this fiber was created with (never
  /// kAuto: resolved by the pool).
  [[nodiscard]] FiberBackend backend() const noexcept { return backend_; }

  /// Resolves kAuto to the build default and validates availability.
  /// Throws std::invalid_argument for kFast on an unsupported
  /// architecture.
  [[nodiscard]] static FiberBackend resolve_backend(FiberBackend backend);

 private:
  friend class FiberPool;
  Fiber(Fn fn, std::unique_ptr<std::byte[]> stack, std::size_t stack_bytes,
        FiberBackend backend);
  static void trampoline();
#if SIMANY_FIBER_FAST_AVAILABLE
  static void fast_entry();
  void prepare_fast_frame();
#endif
  static Fiber* enter_fiber() noexcept;
  static void run_task(Fiber* self) noexcept;
  static void leave_fiber(Fiber* self) noexcept;

  Fn fn_;
  ucontext_t ctx_{};
  ucontext_t return_ctx_{};
  std::unique_ptr<std::byte[]> stack_;
  std::size_t stack_bytes_ = 0;
  FiberBackend backend_ = FiberBackend::kUcontext;
  bool started_ = false;
  bool finished_ = false;
  std::exception_ptr exception_;
#if SIMANY_FIBER_FAST_AVAILABLE
  void* fast_sp_ = nullptr;        // fiber's saved sp while parked
  void* fast_sched_sp_ = nullptr;  // scheduler's saved sp while running
#endif
#if SIMANY_ASAN_FIBERS
  void* asan_fiber_fake_stack_ = nullptr;  // fiber's fake stack while parked
  const void* asan_sched_stack_ = nullptr;  // scheduler stack bounds, learned
  std::size_t asan_sched_size_ = 0;         // on first entry into the fiber
#endif
#if SIMANY_TSAN_FIBERS
  void* tsan_fiber_ = nullptr;       // TSan's shadow state for this fiber
  void* tsan_sched_fiber_ = nullptr;  // resuming thread's shadow, per switch
#endif
};

/// Recycles fiber stacks. Finished fibers handed back to the pool have
/// their stack reused by the next allocation of the same size.
class FiberPool {
 public:
  explicit FiberPool(std::size_t stack_bytes = kDefaultStackBytes,
                     FiberBackend backend = FiberBackend::kAuto);

  /// Creates (or recycles) a fiber that will run `fn` when resumed.
  [[nodiscard]] std::unique_ptr<Fiber> create(Fiber::Fn fn);

  /// Returns a finished fiber's stack to the pool.
  void recycle(std::unique_ptr<Fiber> fiber);

  [[nodiscard]] std::size_t stack_bytes() const noexcept {
    return stack_bytes_;
  }
  /// The resolved backend every fiber from this pool uses (never kAuto).
  [[nodiscard]] FiberBackend backend() const noexcept { return backend_; }
  [[nodiscard]] std::size_t pooled() const noexcept {
    return free_stacks_.size();
  }
  [[nodiscard]] std::size_t created() const noexcept { return created_; }
  /// Fibers created and not yet handed back: each one pins a live
  /// stack, so this is what the guard's max_live_fibers limit bounds.
  /// Saturating: a migrated fiber may be recycled into a different
  /// shard's pool than the one that created it.
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return created_ > returned_ ? created_ - returned_ : 0;
  }

  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

 private:
  std::size_t stack_bytes_;
  FiberBackend backend_;
  std::vector<std::unique_ptr<std::byte[]>> free_stacks_;
  std::size_t created_ = 0;
  std::size_t returned_ = 0;
};

}  // namespace simany
