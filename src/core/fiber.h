// Userland cooperative fibers built on POSIX ucontext.
//
// SiMany executes sequential code blocks natively inside non-preemptive
// userland threads (paper SS III): a task must be able to suspend at an
// arbitrary call depth (probe, data access, lock, spatial-sync stall)
// while the engine switches to another simulated core. Stackful fibers
// give exactly that without making benchmark code coroutine-shaped.
//
// All switches go through a scheduler context: the engine resumes a
// fiber with Fiber::resume(), and the fiber returns control with
// Fiber::yield(). Stacks are recycled through a FiberPool because a
// 1024-core run creates and destroys tens of thousands of tasks.
#pragma once

#include <csignal>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <ucontext.h>
#include <vector>

// AddressSanitizer must be told about every stack switch, or its
// fake-stack bookkeeping (and __asan_handle_no_return, hit whenever an
// exception unwinds across a fiber) corrupts the shadow for our
// heap-allocated stacks.
#if defined(__SANITIZE_ADDRESS__)
#define SIMANY_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SIMANY_ASAN_FIBERS 1
#endif
#endif
#ifndef SIMANY_ASAN_FIBERS
#define SIMANY_ASAN_FIBERS 0
#endif

// ThreadSanitizer likewise needs explicit fiber-switch annotations, or
// it attributes one host thread's fiber stacks to another and reports
// false races when the parallel host migrates a parked joiner.
#if defined(__SANITIZE_THREAD__)
#define SIMANY_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SIMANY_TSAN_FIBERS 1
#endif
#endif
#ifndef SIMANY_TSAN_FIBERS
#define SIMANY_TSAN_FIBERS 0
#endif

namespace simany {

class FiberPool;

/// Thrown through a suspended fiber by the engine's cooperative
/// cancellation: every yield point rechecks the cancel flag on resume
/// and unwinds the task's stack with this, running destructors so the
/// fiber finishes cleanly and its stack can be recycled leak-free.
/// Deliberately *not* derived from std::exception — task code catching
/// `std::exception&` (or anything short of `...` without rethrow) must
/// not be able to swallow a cancellation. The trampoline's catch-all
/// still stops it at the fiber boundary.
struct FiberUnwind {};

/// A single suspendable execution context running `fn` on its own stack.
class Fiber {
 public:
  using Fn = std::function<void()>;

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber();

  /// Switches from the scheduler into this fiber. Must not be called
  /// from inside a fiber. Returns when the fiber yields or finishes.
  void resume();

  /// Switches from inside the currently running fiber back to the
  /// scheduler. Must be called from fiber context.
  static void yield();

  /// True once `fn` has returned (normally or by throwing).
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// Exception that escaped `fn`, if any. Exceptions cannot propagate
  /// across a context switch, so the scheduler rethrows them.
  [[nodiscard]] std::exception_ptr exception() const noexcept {
    return exception_;
  }

  /// The fiber currently executing, or nullptr when in scheduler context.
  [[nodiscard]] static Fiber* current() noexcept;

 private:
  friend class FiberPool;
  Fiber(Fn fn, std::unique_ptr<std::byte[]> stack, std::size_t stack_bytes);
  static void trampoline();

  Fn fn_;
  ucontext_t ctx_{};
  ucontext_t return_ctx_{};
  std::unique_ptr<std::byte[]> stack_;
  std::size_t stack_bytes_ = 0;
  bool started_ = false;
  bool finished_ = false;
  std::exception_ptr exception_;
#if SIMANY_ASAN_FIBERS
  void* asan_fiber_fake_stack_ = nullptr;  // fiber's fake stack while parked
  const void* asan_sched_stack_ = nullptr;  // scheduler stack bounds, learned
  std::size_t asan_sched_size_ = 0;         // on first entry into the fiber
#endif
#if SIMANY_TSAN_FIBERS
  void* tsan_fiber_ = nullptr;       // TSan's shadow state for this fiber
  void* tsan_sched_fiber_ = nullptr;  // resuming thread's shadow, per switch
#endif
};

/// Recycles fiber stacks. Finished fibers handed back to the pool have
/// their stack reused by the next allocation of the same size.
class FiberPool {
 public:
  explicit FiberPool(std::size_t stack_bytes = kDefaultStackBytes);

  /// Creates (or recycles) a fiber that will run `fn` when resumed.
  [[nodiscard]] std::unique_ptr<Fiber> create(Fiber::Fn fn);

  /// Returns a finished fiber's stack to the pool.
  void recycle(std::unique_ptr<Fiber> fiber);

  [[nodiscard]] std::size_t stack_bytes() const noexcept {
    return stack_bytes_;
  }
  [[nodiscard]] std::size_t pooled() const noexcept {
    return free_stacks_.size();
  }
  [[nodiscard]] std::size_t created() const noexcept { return created_; }
  /// Fibers created and not yet handed back: each one pins a live
  /// stack, so this is what the guard's max_live_fibers limit bounds.
  /// Saturating: a migrated fiber may be recycled into a different
  /// shard's pool than the one that created it.
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return created_ > returned_ ? created_ - returned_ : 0;
  }

  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

 private:
  std::size_t stack_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> free_stacks_;
  std::size_t created_ = 0;
  std::size_t returned_ = 0;
};

}  // namespace simany
