#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/simany_assert.h"

namespace simany {

namespace {

[[nodiscard]] std::uint64_t mix_hash(const timing::InstMix& m) noexcept {
  // FNV-1a over the mix fields: identical annotated blocks map to the
  // same synthetic i-cache region, so loops hit after their cold miss.
  std::uint64_t h = 1469598103934665603ULL;
  const std::uint32_t fields[] = {m.int_alu,    m.int_mul,  m.fp_alu,
                                  m.fp_mul_div, m.branches, m.branches_static};
  for (std::uint32_t f : fields) {
    h = (h ^ f) * 1099511628211ULL;
  }
  return h;
}

[[nodiscard]] std::uint32_t mix_instructions(const timing::InstMix& m) noexcept {
  return m.int_alu + m.int_mul + m.fp_alu + m.fp_mul_div + m.branches +
         m.branches_static;
}

[[nodiscard]] bool is_reply_kind(MsgKind k) noexcept {
  return k == MsgKind::kProbeAck || k == MsgKind::kProbeNack ||
         k == MsgKind::kDataResponse || k == MsgKind::kLockGrant;
}

/// Run-time message processing: the core jumps to the arrival time if
/// behind, then spends the handling cost.
inline void sync_to_arrival(Tick arrival, Tick& now) {
  if (arrival > now) now = arrival;
}

}  // namespace

// ---------------------------------------------------------------------
// TaskCtx implementation bound to one simulated core.
// ---------------------------------------------------------------------

class Engine::Ctx final : public TaskCtx {
 public:
  Ctx(Engine& e, CoreSim& c) : e_(e), c_(c) {}

  void compute(Cycles cycles) override { e_.ctx_compute_cycles(c_, cycles); }
  void compute(const timing::InstMix& mix) override {
    e_.ctx_compute_mix(c_, mix);
  }
  void function_boundary() override { e_.ctx_function_boundary(c_); }
  void mem_read(std::uint64_t addr, std::uint32_t bytes) override {
    e_.ctx_mem_access(c_, addr, bytes, /*write=*/false);
  }
  void mem_write(std::uint64_t addr, std::uint32_t bytes) override {
    e_.ctx_mem_access(c_, addr, bytes, /*write=*/true);
  }
  GroupId make_group() override { return e_.ctx_make_group(); }
  bool probe() override { return e_.ctx_probe(c_); }
  void spawn(GroupId group, TaskFn fn, std::uint32_t arg_bytes) override {
    e_.ctx_spawn(c_, group, std::move(fn), arg_bytes);
  }
  void join(GroupId group) override { e_.ctx_join(c_, group); }
  LockId make_lock() override { return e_.ctx_make_lock(c_); }
  void lock(LockId id) override { e_.ctx_lock(c_, id); }
  void unlock(LockId id) override { e_.ctx_unlock(c_, id); }
  CellId make_cell(std::uint32_t bytes) override {
    return e_.ctx_make_cell(bytes, c_.id);
  }
  CellId make_cell_at(std::uint32_t bytes, CoreId home) override {
    if (home >= e_.cfg_.num_cores()) {
      throw std::out_of_range("make_cell_at: home core out of range");
    }
    return e_.ctx_make_cell(bytes, home);
  }
  void cell_acquire(CellId cell, AccessMode mode) override {
    e_.ctx_cell_acquire(c_, cell, mode);
  }
  void cell_release(CellId cell) override { e_.ctx_cell_release(c_, cell); }
  CoreId core_id() const override { return c_.id; }
  std::uint32_t num_cores() const override { return e_.cfg_.num_cores(); }
  Cycles now_cycles() const override { return cycles_floor(c_.now); }
  mem::MemoryModel memory_model() const override {
    return e_.cfg_.mem.model;
  }
  Rng& rng() override { return c_.rng; }

 private:
  Engine& e_;
  CoreSim& c_;
};

// ---------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------

Engine::Engine(ArchConfig cfg, ExecutionMode mode)
    : cfg_(std::move(cfg)),
      mode_(mode),
      drift_ticks_(cfg_.drift_ticks()),
      network_(cfg_.topology, cfg_.network),
      cost_model_(cfg_.cost_table, cfg_.branch),
      fiber_pool_(cfg_.fiber_stack_bytes),
      directory_(cfg_.num_cores()),
      bfs_epoch_(cfg_.num_cores(), 0) {
  cfg_.validate();
  const std::uint32_t n = cfg_.num_cores();
  cores_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto c = std::make_unique<CoreSim>();
    c->id = i;
    c->speed = cfg_.speed_of(i);
    c->rng = Rng(cfg_.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    c->l1 = mem::PessimisticL1(cfg_.mem.line_bytes);
    if (mode_ == ExecutionMode::kCycleLevel) {
      mem::SetAssocCache::Config cache_cfg;
      cache_cfg.line_bytes = cfg_.mem.line_bytes;
      c->dcache = std::make_unique<mem::SetAssocCache>(cache_cfg);
      c->icache = std::make_unique<mem::SetAssocCache>(cache_cfg);
    }
    c->occ_proxy.assign(cfg_.topology.neighbors(i).size(),
                        cfg_.runtime.task_queue_capacity);
    c->ctx = std::make_unique<Ctx>(*this, *c);
    cores_.push_back(std::move(c));
  }
}

Engine::~Engine() = default;

// ---------------------------------------------------------------------
// Top-level run
// ---------------------------------------------------------------------

SimStats Engine::run(TaskFn root) {
  if (ran_) throw std::logic_error("Engine::run called twice");
  ran_ = true;
  live_tasks_ = 1;
  core(0).task_queue.push_back(PendingTask{std::move(root), kInvalidGroup, 0});
  mark_ready(core(0));
  if (obs_ != nullptr) obs_->on_run_begin(*this);

  const auto t0 = std::chrono::steady_clock::now();
  main_loop();
  const auto t1 = std::chrono::steady_clock::now();
  audit_counters();
  if (obs_ != nullptr) obs_->on_run_end(*this);

  stats_.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  stats_.completion_ticks = max_task_end_;
  stats_.network = network_.stats();
  stats_.core_busy_ticks.resize(cores_.size());
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    stats_.core_busy_ticks[i] = cores_[i]->busy;
  }
  return stats_;
}

void Engine::main_loop() {
  const bool cl = (mode_ == ExecutionMode::kCycleLevel);
  while (live_tasks_ > 0 || inflight_messages_ > 0) {
    if (cl) {
      const CoreId id = pick_min_time_core();
      if (id == net::kInvalidCore) {
        if (obs_ != nullptr) obs_->on_deadlock(*this);
        throw std::runtime_error(
            "simulation deadlock (cycle-level): live_tasks=" +
            std::to_string(live_tasks_));
      }
      run_core_cl(core(id));
      if (obs_ != nullptr) obs_->on_quantum_end(*this);
      continue;
    }
    if (ready_.empty()) {
      if (!wake_sweep()) {
        // Defensive rebuild: anything actionable re-enters the queue.
        bool any = false;
        for (auto& cptr : cores_) {
          if (!cptr->in_ready && actionable(*cptr)) {
            mark_ready(*cptr);
            any = true;
          }
        }
        if (!any) {
          if (obs_ != nullptr) obs_->on_deadlock(*this);
          throw std::runtime_error(
              "simulation deadlock: live_tasks=" +
              std::to_string(live_tasks_) +
              " inflight=" + std::to_string(inflight_messages_) +
              " stalled=" + std::to_string(stalled_.size()));
        }
      }
      continue;
    }
    const CoreId id = ready_.front();
    ready_.pop_front();
    CoreSim& c = core(id);
    c.in_ready = false;
    if (!actionable(c)) continue;
    run_core_vt(c);
    ++quantum_count_;
    if (obs_ != nullptr) obs_->on_quantum_end(*this);
    if (quantum_count_ % 64 == 0) sample_parallelism();
    if (quantum_count_ % 4096 == 0) {
      refresh_gmin();
#if SIMANY_ASSERT_ACTIVE
      audit_counters();
#endif
    }
  }
}

// ---------------------------------------------------------------------
// Introspection & self-audit
// ---------------------------------------------------------------------

EngineInspect Engine::inspect() const {
  EngineInspect s;
  s.drift_ticks = drift_ticks_;
  s.live_tasks = live_tasks_;
  s.inflight_messages = inflight_messages_;
  s.cores.reserve(cores_.size());
  for (const auto& cptr : cores_) {
    const CoreSim& c = *cptr;
    CoreInspect ci;
    ci.id = c.id;
    ci.now = c.now;
    ci.anchor = is_anchor(c);
    ci.has_fiber = (c.fiber != nullptr);
    ci.sync_stalled = c.sync_stalled;
    ci.waiting_reply = c.waiting_reply;
    ci.hold_depth = c.hold_depth;
    ci.inbox_len = c.inbox.size();
    ci.queue_len = c.task_queue.size();
    ci.resumables = c.resumables.size();
    ci.reserved = c.reserved;
    ci.births.assign(c.births.begin(), c.births.end());
    for (const Message& m : c.inbox) {
      if (m.kind == MsgKind::kTaskSpawn) ++s.inflight_spawns;
    }
    s.cores.push_back(std::move(ci));
  }
  for (std::size_t i = 0; i < locks_.size(); ++i) {
    const Lock& lk = locks_[i];
    LockInspect li;
    li.id = static_cast<LockId>(i);
    li.home = lk.home;
    li.held = lk.held;
    li.holder = lk.holder;
    li.waiters.assign(lk.waiters.begin(), lk.waiters.end());
    s.locks.push_back(std::move(li));
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Cell& cell = cells_[i];
    CellInspect ci;
    ci.id = static_cast<CellId>(i);
    ci.home = cell.home;
    ci.locked = cell.locked;
    ci.holder = cell.holder;
    for (const Cell::Waiter& w : cell.waiters) ci.waiters.push_back(w.core);
    s.cells.push_back(std::move(ci));
  }
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    const Group& g = groups_[i];
    GroupInspect gi;
    gi.id = static_cast<GroupId>(i);
    gi.active = g.active;
    for (const Group::Joiner& j : g.joiners) gi.joiner_cores.push_back(j.core);
    s.groups.push_back(std::move(gi));
  }
  return s;
}

void Engine::audit_counters() const {
#if SIMANY_ASSERT_ACTIVE
  // Conservation audit, called only from safe points (between quanta):
  // every live task is either running, queued, parked on a group,
  // resumable, or riding a TASK_SPAWN message; every in-flight message
  // sits in exactly one inbox.
  std::uint64_t inbox_total = 0;
  std::uint64_t carried_tasks = 0;
  for (const auto& cptr : cores_) {
    const CoreSim& c = *cptr;
    SIMANY_ASSERT(c.hold_depth >= 0, "core ", c.id, " at vt=", c.now,
                  " has negative hold_depth ", c.hold_depth);
    inbox_total += c.inbox.size();
    carried_tasks += (c.fiber ? 1 : 0) + c.task_queue.size() +
                     c.resumables.size();
    for (const Message& m : c.inbox) {
      if (m.kind == MsgKind::kTaskSpawn) ++carried_tasks;
    }
  }
  for (const Group& g : groups_) carried_tasks += g.joiners.size();
  SIMANY_ASSERT(inbox_total == inflight_messages_, "inbox total ",
                inbox_total, " != inflight_messages_ ", inflight_messages_);
  SIMANY_ASSERT(carried_tasks == live_tasks_, "carried tasks ",
                carried_tasks, " != live_tasks_ ", live_tasks_);
#endif
}

// ---------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------

bool Engine::actionable(const CoreSim& c) const {
  if (!c.inbox.empty()) return true;
  if (c.fiber) {
    if (c.waiting_reply) return c.reply_ready;
    return !c.sync_stalled;
  }
  return !c.resumables.empty() || !c.task_queue.empty();
}

void Engine::mark_ready(CoreSim& c) {
  if (!c.in_ready) {
    c.in_ready = true;
    ready_.push_back(c.id);
  }
}

void Engine::run_core_vt(CoreSim& c) {
  for (;;) {
    process_inbox(c);
    if (c.fiber) {
      if (c.waiting_reply) {
        if (!c.reply_ready) return;
        resume_fiber(c);
      } else if (c.sync_stalled) {
        return;
      } else {
        resume_fiber(c);
      }
    } else if (!start_next_work(c)) {
      return;
    }
  }
}

void Engine::run_core_cl(CoreSim& c) {
  process_inbox(c);
  if (c.fiber) {
    if (c.waiting_reply && !c.reply_ready) return;
    resume_fiber(c);
    return;
  }
  if (start_next_work(c)) {
    resume_fiber(c);
  }
}

CoreId Engine::pick_min_time_core() const {
  CoreId best = net::kInvalidCore;
  Tick best_key = kTickInfinity;
  for (const auto& cptr : cores_) {
    const CoreSim& c = *cptr;
    if (!actionable(c)) continue;
    Tick key = c.now;
    if (!c.fiber && c.resumables.empty() && c.task_queue.empty() &&
        !c.inbox.empty()) {
      // Idle core whose only work is a future message: it acts at the
      // message arrival time.
      Tick first = kTickInfinity;
      for (const Message& m : c.inbox) first = std::min(first, m.arrival);
      key = std::max(key, first);
    }
    if (key < best_key) {
      best_key = key;
      best = c.id;
    }
  }
  return best;
}

void Engine::resume_fiber(CoreSim& c) {
  ++stats_.fiber_switches;
  c.fiber->resume();
  if (c.fiber->finished() && c.fiber->exception()) {
    // A simulated task threw (program bug or failed self-verification):
    // surface it to the caller of run().
    std::rethrow_exception(c.fiber->exception());
  }
  after_fiber_return(c);
}

void Engine::after_fiber_return(CoreSim& c) {
  if (c.fiber->finished()) {
    task_done(c);
    return;
  }
  if (c.park_pending) {
    c.park_pending = false;
    Group& grp = groups_[c.park_group];
    grp.joiners.push_back(
        Group::Joiner{c.id, std::move(c.fiber), c.fiber_group, c.now});
    c.park_group = kInvalidGroup;
    c.fiber_group = kInvalidGroup;
  }
  // Otherwise the fiber yielded for a stall / reply wait and simply
  // stays installed on the core.
}

bool Engine::start_next_work(CoreSim& c) {
  if (!c.resumables.empty()) {
    ParkedFiber p = std::move(c.resumables.front());
    c.resumables.pop_front();
    if (p.parked_at > c.now) c.now = p.parked_at;
    charge(c, scaled_cost(cfg_.runtime.join_switch_cycles, c.speed));
    c.fiber = std::move(p.fiber);
    c.fiber_group = p.task_group;
    return true;
  }
  if (!c.task_queue.empty()) {
    PendingTask t = std::move(c.task_queue.front());
    c.task_queue.pop_front();
    if (t.arrival > c.now) c.now = t.arrival;
    charge(c, scaled_cost(cfg_.runtime.task_start_cycles, c.speed));
    broadcast_occupancy_update(c);
    if (trace_ != nullptr) trace_->on_task_start(c.id, c.now);
    if (obs_ != nullptr) obs_->on_task_start(*this, c.id, c.now);
    Ctx* ctx = c.ctx.get();
    c.fiber =
        fiber_pool_.create([fn = std::move(t.fn), ctx]() { fn(*ctx); });
    c.fiber_group = t.group;
    return true;
  }
  return false;
}

void Engine::task_done(CoreSim& c) {
  SIMANY_ASSERT(live_tasks_ > 0, "task_done on core ", c.id,
                " at vt=", c.now, " with zero live tasks");
  --live_tasks_;
  max_task_end_ = std::max(max_task_end_, c.now);
  if (trace_ != nullptr) trace_->on_task_end(c.id, c.now);
  if (obs_ != nullptr) obs_->on_task_end(*this, c.id, c.now);
  fiber_pool_.recycle(std::move(c.fiber));
  const GroupId g = c.fiber_group;
  c.fiber_group = kInvalidGroup;
  if (g == kInvalidGroup) return;
  Group& grp = groups_[g];
  SIMANY_ASSERT(grp.active > 0, "group ", g, " underflow: task on core ",
                c.id, " at vt=", c.now, " completed into an empty group");
  --grp.active;
  if (grp.active == 0 && !grp.joiners.empty()) {
    for (const auto& joiner : grp.joiners) {
      post(MsgKind::kJoinerRequest, c, joiner.core,
           cfg_.runtime.ctrl_msg_bytes, g);
    }
    // Fibers stay parked in the group until each JOINER_REQUEST is
    // processed at its destination core.
  }
}

bool Engine::wake_sweep() {
  refresh_gmin();
  bool any = false;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < stalled_.size(); ++i) {
    CoreSim& c = core(stalled_[i]);
    if (!c.sync_stalled) continue;  // already woken elsewhere
    const Tick lim = drift_limit(c);
    if (lim > c.now) {
      c.sync_stalled = false;
      c.cached_limit = lim;
      c.limit_epoch = limit_epoch_;
      if (trace_ != nullptr) trace_->on_wake(c.id, c.now, lim);
      if (obs_ != nullptr) obs_->on_wake(*this, c.id, c.now, lim);
      mark_ready(c);
      any = true;
    } else {
      stalled_[kept++] = stalled_[i];
    }
  }
  stalled_.resize(kept);
  return any;
}

// ---------------------------------------------------------------------
// Spatial synchronization
// ---------------------------------------------------------------------

bool Engine::is_anchor(const CoreSim& c) const {
  return c.fiber != nullptr || !c.task_queue.empty() ||
         !c.resumables.empty();
}

void Engine::refresh_gmin() {
  Tick g = kTickInfinity;
  for (const auto& cptr : cores_) {
    const CoreSim& c = *cptr;
    if (is_anchor(c)) g = std::min(g, c.now);
    for (Tick b : c.births) g = std::min(g, sat_add(b, drift_ticks_));
  }
  gmin_lb_ = g;
}

void Engine::sample_parallelism() {
  std::uint64_t available = 0;
  for (const auto& cptr : cores_) {
    if (actionable(*cptr)) ++available;
  }
  ++stats_.parallelism_samples;
  stats_.parallelism_sum += available;
  stats_.parallelism_max = std::max(stats_.parallelism_max, available);
}

Tick Engine::bounded_slack_limit() const {
  // SlackSim-style global window: the slowest active entity (core or
  // in-flight task birth) plus T.
  Tick gmin = kTickInfinity;
  for (const auto& cptr : cores_) {
    const CoreSim& c = *cptr;
    if (is_anchor(c)) gmin = std::min(gmin, c.now);
    for (Tick b : c.births) gmin = std::min(gmin, b);
  }
  if (gmin == kTickInfinity) return kTickInfinity;
  return sat_add(gmin, drift_ticks_);
}

std::uint32_t Engine::free_slots(const CoreSim& c) const {
  const std::uint32_t occupied =
      static_cast<std::uint32_t>(c.task_queue.size()) + c.reserved;
  return occupied >= cfg_.runtime.task_queue_capacity
             ? 0
             : cfg_.runtime.task_queue_capacity - occupied;
}

void Engine::broadcast_occupancy_update(CoreSim& c) {
  if (!cfg_.runtime.broadcast_occupancy) return;
  const std::uint32_t free = free_slots(c);
  for (CoreId nb : cfg_.topology.neighbors(c.id)) {
    post(MsgKind::kOccUpdate, c, nb, cfg_.runtime.ctrl_msg_bytes, free);
  }
}

void Engine::on_occ_update(CoreSim& c, const Message& m) {
  sync_to_arrival(m.arrival, c.now);
  // Proxy bookkeeping is free: the paper's run-time folds it into
  // message reception.
  const auto nbs = cfg_.topology.neighbors(c.id);
  for (std::size_t i = 0; i < nbs.size(); ++i) {
    if (nbs[i] == m.src) {
      c.occ_proxy[i] = static_cast<std::uint32_t>(m.a);
      return;
    }
  }
}

Tick Engine::drift_limit(const CoreSim& c) {
  ++stats_.limit_recomputes;
  if (cfg_.sync_scheme == SyncScheme::kBoundedSlack) {
    Tick limit = bounded_slack_limit();
    if (!c.births.empty()) {
      const Tick mb = *std::min_element(c.births.begin(), c.births.end());
      limit = std::min(limit, sat_add(mb, drift_ticks_));
    }
    return limit;
  }
  const Tick T = drift_ticks_;
  Tick best = kTickInfinity;
  if (!c.births.empty()) {
    const Tick mb = *std::min_element(c.births.begin(), c.births.end());
    best = sat_add(mb, T);
  }
  // BFS outward from c. Idle cores are transparent: passing through one
  // adds T per hop, which is exactly the paper's shadow-time fixpoint
  // (shadow = min over neighbors + T).
  if (++bfs_epoch_cur_ == 0) {
    std::fill(bfs_epoch_.begin(), bfs_epoch_.end(), 0u);
    bfs_epoch_cur_ = 1;
  }
  static thread_local std::vector<std::pair<CoreId, std::uint32_t>> queue;
  queue.clear();
  queue.emplace_back(c.id, 0);
  bfs_epoch_[c.id] = bfs_epoch_cur_;
  std::size_t head = 0;
  auto deeper_cannot_improve = [&](std::uint32_t next_depth) {
    if (best == kTickInfinity) return false;
    if (gmin_lb_ == kTickInfinity) return true;
    return sat_add(gmin_lb_, sat_mul(T, next_depth)) >= best;
  };
  while (head < queue.size()) {
    const auto [id, d] = queue[head++];
    if (d > 0) {
      const CoreSim& n = core(id);
      if (is_anchor(n)) best = std::min(best, sat_add(n.now, sat_mul(T, d)));
      if (!n.births.empty()) {
        const Tick mb = *std::min_element(n.births.begin(), n.births.end());
        best = std::min(best, sat_add(mb, sat_mul(T, d + 1)));
      }
    }
    if (deeper_cannot_improve(d + 1)) continue;
    for (CoreId nb : cfg_.topology.neighbors(id)) {
      if (bfs_epoch_[nb] != bfs_epoch_cur_) {
        bfs_epoch_[nb] = bfs_epoch_cur_;
        queue.emplace_back(nb, d + 1);
      }
    }
  }
  return best;
}

void Engine::advance_execution(CoreSim& c, Tick cost) {
  if (mode_ == ExecutionMode::kCycleLevel) {
    const Tick quantum = ticks(std::max<Cycles>(1, cfg_.cl_quantum_cycles));
    while (cost > 0) {
      const Tick step = std::min(cost, quantum);
      charge(c, step, AdvanceKind::kCompute);
      cost -= step;
      if (cost > 0) Fiber::yield();
    }
    return;
  }
  while (cost > 0) {
    if (c.hold_depth > 0) {
      // Lock/cell holder: temporarily exempt from spatial sync so it
      // can reach its release (paper SS II-B, deadlock avoidance).
      charge(c, cost, AdvanceKind::kCompute);
      return;
    }
    if (c.cached_limit <= c.now || c.limit_epoch != limit_epoch_) {
      c.cached_limit = drift_limit(c);
      c.limit_epoch = limit_epoch_;
    }
    if (c.cached_limit > c.now) {
      const Tick step = std::min(cost, c.cached_limit - c.now);
      charge(c, step, AdvanceKind::kCompute);
      cost -= step;
      continue;
    }
    ++stats_.sync_stalls;
    c.sync_stalled = true;
    stalled_.push_back(c.id);
    if (trace_ != nullptr) trace_->on_stall(c.id, c.now);
    if (obs_ != nullptr) obs_->on_stall(*this, c.id, c.now);
    Fiber::yield();
    // Woken by wake_sweep with a fresh cached_limit; loop re-checks.
  }
}

// ---------------------------------------------------------------------
// Messaging
// ---------------------------------------------------------------------

void Engine::post(MsgKind kind, CoreSim& from, CoreId to, std::uint32_t bytes,
                  std::uint64_t a, std::uint64_t b, TaskFn task,
                  GroupId group, Tick birth) {
  Message m;
  m.kind = kind;
  m.src = from.id;
  m.dst = to;
  m.sent = from.now;
  m.arrival = network_.send(from.id, to, bytes, from.now);
  m.bytes = bytes;
  m.a = a;
  m.b = b;
  m.task = std::move(task);
  m.group = group;
  m.birth = birth;
  ++inflight_messages_;
  ++stats_.messages;
  if (trace_ != nullptr) trace_->on_message(m);
  if (obs_ != nullptr) obs_->on_message_posted(*this, m, /*direct=*/false);
  CoreSim& dst = core(to);
  dst.inbox.push_back(std::move(m));
  mark_ready(dst);
}

void Engine::deliver_direct(MsgKind kind, CoreId from, CoreId to,
                            Tick arrival, std::uint64_t a, std::uint64_t b) {
  Message m;
  m.kind = kind;
  m.src = from;
  m.dst = to;
  m.sent = arrival;
  m.arrival = arrival;
  m.a = a;
  m.b = b;
  ++inflight_messages_;
  if (obs_ != nullptr) obs_->on_message_posted(*this, m, /*direct=*/true);
  CoreSim& dst = core(to);
  dst.inbox.push_back(std::move(m));
  mark_ready(dst);
}

void Engine::process_inbox(CoreSim& c) {
  while (!c.inbox.empty()) {
    Message m = std::move(c.inbox.front());
    c.inbox.pop_front();
    SIMANY_ASSERT(inflight_messages_ > 0, "core ", c.id, " at vt=", c.now,
                  " popped ", to_string(m.kind),
                  " with zero in-flight messages");
    --inflight_messages_;
    if (obs_ != nullptr) obs_->on_message_handled(*this, c.id, m);
    handle_message(c, m);
  }
}

Message Engine::await_reply(CoreSim& c) {
  c.waiting_reply = true;
  c.reply_ready = false;
  Fiber::yield();
  if (!c.reply_ready) {
    throw std::logic_error("await_reply resumed without a reply");
  }
  c.waiting_reply = false;
  c.reply_ready = false;
  return std::move(c.reply);
}

void Engine::handle_message(CoreSim& c, Message& m) {
  if (is_reply_kind(m.kind)) {
    if (!c.waiting_reply || c.reply_ready) {
      throw std::logic_error(std::string("unexpected reply message ") +
                             to_string(m.kind));
    }
    c.reply = std::move(m);
    c.reply_ready = true;
    return;
  }
  switch (m.kind) {
    case MsgKind::kProbe: on_probe(c, m); break;
    case MsgKind::kTaskSpawn: on_task_spawn(c, m); break;
    case MsgKind::kJoinerRequest: on_joiner_request(c, m); break;
    case MsgKind::kDataRequest: on_data_request(c, m); break;
    case MsgKind::kCellRelease: on_cell_release(c, m); break;
    case MsgKind::kLockRequest: on_lock_request(c, m); break;
    case MsgKind::kLockRelease: on_lock_release(c, m); break;
    case MsgKind::kOccUpdate: on_occ_update(c, m); break;
    default:
      throw std::logic_error("unhandled message kind");
  }
}

// ---------------------------------------------------------------------
// Run-time protocol handlers (engine context, running on core `c`)
// ---------------------------------------------------------------------

void Engine::on_probe(CoreSim& c, const Message& m) {
  sync_to_arrival(m.arrival, c.now);
  charge(c, scaled_cost(cfg_.runtime.msg_handle_cycles, c.speed));
  const std::uint32_t occupied =
      static_cast<std::uint32_t>(c.task_queue.size()) + c.reserved;
  if (occupied < cfg_.runtime.task_queue_capacity) {
    ++c.reserved;
    post(MsgKind::kProbeAck, c, m.src, cfg_.runtime.probe_msg_bytes);
    broadcast_occupancy_update(c);
  } else {
    post(MsgKind::kProbeNack, c, m.src, cfg_.runtime.probe_msg_bytes);
  }
}

void Engine::on_task_spawn(CoreSim& c, Message& m) {
  const bool was_anchor = is_anchor(c);
  sync_to_arrival(m.arrival, c.now);
  charge(c, scaled_cost(cfg_.runtime.msg_handle_cycles, c.speed));
  if (c.reserved > 0) --c.reserved;
  c.task_queue.push_back(PendingTask{std::move(m.task), m.group, c.now});
  broadcast_occupancy_update(c);
  if (!was_anchor) {
    gmin_lb_ = std::min(gmin_lb_, c.now);
    ++limit_epoch_;
  }
  // Control message back to the parent: the task has arrived, discard
  // its birth date (paper SS II, "Time drift of dynamically created
  // tasks"). Control messages have no architectural cost.
  CoreSim& parent = core(m.src);
  auto it = std::find(parent.births.begin(), parent.births.end(), m.birth);
  SIMANY_ASSERT(it != parent.births.end(), "TASK_SPAWN at core ", c.id,
                " vt=", c.now, ": parent core ", m.src,
                " has no birth record for vt=", m.birth);
  if (it != parent.births.end()) {
    *it = parent.births.back();
    parent.births.pop_back();
  }
  if (obs_ != nullptr) obs_->on_task_arrival(*this, m.src, c.id, m.birth);
  try_migrate(c);
}

void Engine::try_migrate(CoreSim& c) {
  // Keep one task buffered when busy, two when about to become free.
  const std::size_t keep = c.fiber ? 1 : 2;
  while (c.task_queue.size() > keep) {
    const auto nbs = cfg_.topology.neighbors(c.id);
    CoreId target = net::kInvalidCore;
    const auto n = static_cast<std::uint32_t>(nbs.size());
    if (n == 0) return;
    const std::uint32_t start = c.probe_rr++ % n;
    const std::uint64_t my_load = c.task_queue.size() + (c.fiber ? 1 : 0);
    std::uint64_t best_score = ~std::uint64_t{0};
    for (std::uint32_t i = 0; i < n; ++i) {
      const CoreId nb = nbs[(start + i) % n];
      const CoreSim& t = core(nb);
      // Diffusion rule: forward only down a load gradient of at least
      // two tasks (prevents ping-pong), preferring the least-loaded —
      // and with speed-aware dispatch, fastest — neighbor.
      const std::uint64_t load =
          t.task_queue.size() + t.reserved +
          ((t.fiber || !t.resumables.empty()) ? 1 : 0);
      if (load + 2 > my_load) continue;
      std::uint64_t score = load * 64;
      if (cfg_.runtime.speed_aware_dispatch) {
        score = (load + 1) * 64 * t.speed.den / t.speed.num;
      }
      if (score < best_score) {
        best_score = score;
        target = nb;
      }
    }
    if (target == net::kInvalidCore) return;
    PendingTask task = std::move(c.task_queue.back());
    c.task_queue.pop_back();
    ++core(target).reserved;
    const Tick birth = c.now;
    c.births.push_back(birth);
    gmin_lb_ = std::min(gmin_lb_, sat_add(birth, drift_ticks_));
    ++limit_epoch_;
    ++stats_.tasks_migrated;
    if (obs_ != nullptr) obs_->on_task_birth(*this, c.id, birth);
    post(MsgKind::kTaskSpawn, c, target, cfg_.runtime.spawn_msg_bytes, 0, 0,
         std::move(task.fn), task.group, birth);
  }
}

void Engine::on_joiner_request(CoreSim& c, const Message& m) {
  const bool was_anchor = is_anchor(c);
  sync_to_arrival(m.arrival, c.now);
  charge(c, scaled_cost(cfg_.runtime.msg_handle_cycles, c.speed));
  Group& grp = groups_[static_cast<GroupId>(m.a)];
  for (auto it = grp.joiners.begin(); it != grp.joiners.end(); ++it) {
    if (it->core == c.id) {
      c.resumables.push_back(ParkedFiber{std::move(it->fiber),
                                         it->task_group,
                                         std::max(it->parked_at, c.now)});
      grp.joiners.erase(it);
      if (!was_anchor) {
        gmin_lb_ = std::min(gmin_lb_, c.now);
        ++limit_epoch_;
      }
      return;
    }
  }
  throw std::logic_error("JOINER_REQUEST with no parked joiner");
}

void Engine::on_data_request(CoreSim& c, const Message& m) {
  sync_to_arrival(m.arrival, c.now);
  charge(c, scaled_cost(cfg_.runtime.msg_handle_cycles, c.speed));
  const auto id = static_cast<CellId>(m.a);
  Cell& cell = cells_[id];
  if (!cell.locked) {
    cell.locked = true;
    cell.holder = m.src;
    cell.holder_mode = static_cast<AccessMode>(m.b);
    post(MsgKind::kDataResponse, c, m.src, cell.bytes, id);
  } else {
    cell.waiters.push_back(
        Cell::Waiter{m.src, static_cast<AccessMode>(m.b)});
  }
}

void Engine::on_cell_release(CoreSim& c, const Message& m) {
  sync_to_arrival(m.arrival, c.now);
  charge(c, scaled_cost(cfg_.runtime.msg_handle_cycles, c.speed));
  grant_next_cell_waiter(c, static_cast<CellId>(m.a));
}

void Engine::on_lock_request(CoreSim& c, const Message& m) {
  sync_to_arrival(m.arrival, c.now);
  charge(c, scaled_cost(cfg_.runtime.msg_handle_cycles, c.speed));
  const auto id = static_cast<LockId>(m.a);
  Lock& lk = locks_[id];
  if (!lk.held) {
    lk.held = true;
    lk.holder = m.src;
    post(MsgKind::kLockGrant, c, m.src, cfg_.runtime.ctrl_msg_bytes, id);
  } else {
    lk.waiters.push_back(m.src);
  }
}

void Engine::on_lock_release(CoreSim& c, const Message& m) {
  sync_to_arrival(m.arrival, c.now);
  charge(c, scaled_cost(cfg_.runtime.msg_handle_cycles, c.speed));
  grant_next_lock_waiter(c, static_cast<LockId>(m.a));
}

void Engine::grant_next_cell_waiter(CoreSim& actor, CellId id) {
  Cell& cell = cells_[id];
  if (cell.waiters.empty()) {
    cell.locked = false;
    cell.holder = net::kInvalidCore;
    return;
  }
  const Cell::Waiter w = cell.waiters.front();
  cell.waiters.pop_front();
  cell.holder = w.core;
  cell.holder_mode = w.mode;
  if (cfg_.mem.model == mem::MemoryModel::kDistributed) {
    post(MsgKind::kDataResponse, actor, w.core, cell.bytes, id);
  } else {
    // Shared memory: the waiter observes the freed flag one shared
    // access after the release.
    deliver_direct(MsgKind::kDataResponse, actor.id, w.core,
                   actor.now + ticks(cfg_.mem.shared_latency_cycles), id);
  }
}

void Engine::grant_next_lock_waiter(CoreSim& actor, LockId id) {
  Lock& lk = locks_[id];
  if (lk.waiters.empty()) {
    lk.held = false;
    lk.holder = net::kInvalidCore;
    return;
  }
  const CoreId w = lk.waiters.front();
  lk.waiters.pop_front();
  lk.holder = w;
  if (cfg_.mem.model == mem::MemoryModel::kDistributed) {
    post(MsgKind::kLockGrant, actor, w, cfg_.runtime.ctrl_msg_bytes, id);
  } else {
    deliver_direct(MsgKind::kLockGrant, actor.id, w,
                   actor.now + ticks(cfg_.mem.shared_latency_cycles), id);
  }
}

// ---------------------------------------------------------------------
// Ctx operations (fiber context)
// ---------------------------------------------------------------------

void Engine::ctx_compute_cycles(CoreSim& c, Cycles cycles) {
  advance_execution(c, scaled_cost(cycles, c.speed));
}

void Engine::ctx_compute_mix(CoreSim& c, const timing::InstMix& mix) {
  const Cycles cycles = cost_model_.block_cost(mix, c.rng);
  Tick cost = scaled_cost(cycles, c.speed);
  if (mode_ == ExecutionMode::kCycleLevel) {
    // Explicit instruction-fetch charge through the I-cache: one line
    // access per 8 instructions, at a synthetic block address.
    const std::uint32_t instrs = mix_instructions(mix);
    if (instrs > 0) {
      const std::uint64_t base = mix_hash(mix);
      const std::uint32_t lines = (instrs + 7) / 8;
      for (std::uint32_t i = 0; i < lines; ++i) {
        const auto res =
            c.icache->access((base + i) * cfg_.mem.line_bytes, false);
        cost += ticks(1);
        if (!res.hit) cost += ticks(cfg_.mem.shared_latency_cycles);
      }
    }
  }
  advance_execution(c, cost);
}

void Engine::ctx_function_boundary(CoreSim& c) {
  if (mode_ == ExecutionMode::kVirtualTime) {
    c.l1.flush();
    if (cfg_.mem.coherence_timing) directory_.drop_core(c.id);
  }
  // Cycle-level mode models real caches; function boundaries are not
  // architectural events there.
}

Tick Engine::mem_cost_l1_hit(const CoreSim& c) const {
  // SiMany scales L1 speed with core speed (paper SS VI notes this is a
  // deliberate difference from the UNISIM baseline, visible in Fig 6).
  if (mode_ == ExecutionMode::kVirtualTime) {
    return scaled_cost(cfg_.mem.l1_latency_cycles, c.speed);
  }
  return ticks(cfg_.mem.l1_latency_cycles);
}

void Engine::ctx_mem_access(CoreSim& c, std::uint64_t addr,
                            std::uint32_t bytes, bool write) {
  if (bytes == 0) bytes = 1;
  const auto& mp = cfg_.mem;
  const std::uint64_t first = addr / mp.line_bytes;
  const std::uint64_t last = (addr + bytes - 1) / mp.line_bytes;
  const Cycles next_level = (mp.model == mem::MemoryModel::kShared)
                                ? mp.shared_latency_cycles
                                : mp.l2_latency_cycles;
  const Tick l1_hit = mem_cost_l1_hit(c);

  auto coh_action_cost = [&](const mem::CohOutcome& out) -> Tick {
    switch (out.action) {
      case mem::CohAction::kRemoteDirty:
        return ticks(mp.coh_remote_transfer_cycles +
                     mp.coh_per_hop_cycles *
                         network_.routing().hops(c.id, out.peer));
      case mem::CohAction::kInvalidate:
        return ticks(mp.coh_invalidate_cycles +
                     mp.coh_per_hop_cycles *
                         network_.routing().hops(c.id, out.peer));
      default:
        return 0;
    }
  };

  Tick cost = 0;
  if (mode_ == ExecutionMode::kCycleLevel) {
    const bool coh = (mp.model == mem::MemoryModel::kShared);
    for (std::uint64_t line = first; line <= last; ++line) {
      const std::uint64_t la = line * mp.line_bytes;
      const auto res = c.dcache->access(la, write);
      cost += ticks(mp.l1_latency_cycles);
      if (!res.hit) {
        cost += ticks(next_level);
        if (coh && res.evicted_dirty) {
          directory_.evict(c.id, res.evicted_line);
        }
        if (coh && !write) {
          cost += coh_action_cost(directory_.on_read(c.id, line));
        }
      }
      if (coh && write) {
        static thread_local std::vector<net::CoreId> invalidated;
        invalidated.clear();
        const auto out = directory_.on_write(c.id, line, &invalidated);
        cost += coh_action_cost(out);
        for (net::CoreId s : invalidated) {
          if (s != c.id) core(s).dcache->invalidate_addr(la);
        }
      }
    }
  } else {
    const bool coh =
        mp.coherence_timing && mp.model == mem::MemoryModel::kShared;
    for (std::uint64_t line = first; line <= last; ++line) {
      const bool hit = c.l1.contains_line(line);
      if (!hit) c.l1.access(line * mp.line_bytes, 1);
      cost += hit ? l1_hit : l1_hit + ticks(next_level);
      if (coh) {
        if (write) {
          cost += coh_action_cost(directory_.on_write(c.id, line));
        } else if (!hit) {
          cost += coh_action_cost(directory_.on_read(c.id, line));
        }
      }
    }
  }
  advance_execution(c, cost);
}

GroupId Engine::ctx_make_group() {
  groups_.emplace_back();
  return static_cast<GroupId>(groups_.size() - 1);
}

bool Engine::ctx_probe(CoreSim& c) {
  const auto nbs = cfg_.topology.neighbors(c.id);
  if (nbs.empty()) {
    ++stats_.tasks_inlined;
    return false;
  }
  const auto n = static_cast<std::uint32_t>(nbs.size());
  CoreId target = net::kInvalidCore;
  const std::uint32_t start = c.probe_rr++ % n;
  // Pick the least-loaded neighbor (counting its running task) that
  // still has a reservable queue slot; rotate ties so successive
  // spawns diffuse work outward instead of stacking on one core. With
  // speed-aware dispatch (paper SS VIII future work) the load is
  // weighted by inverse core speed, preferring fast cores.
  const bool stale = cfg_.runtime.broadcast_occupancy;
  std::uint64_t best_score = ~std::uint64_t{0};
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t idx = (start + i) % n;
    const CoreId nb = nbs[idx];
    const CoreSim& t = core(nb);
    // Occupancy view: live state, or the stale broadcast proxy
    // (paper SS IV) when enabled.
    const std::uint32_t queued =
        stale ? cfg_.runtime.task_queue_capacity - c.occ_proxy[idx]
              : static_cast<std::uint32_t>(t.task_queue.size()) +
                    t.reserved;
    if (queued >= cfg_.runtime.task_queue_capacity) continue;
    const std::uint64_t load =
        queued + ((t.fiber || !t.resumables.empty()) ? 1 : 0);
    std::uint64_t score = load * 64;
    if (cfg_.runtime.speed_aware_dispatch) {
      // (load + 1) / speed: even among idle cores, prefer the fastest.
      score = (load + 1) * 64 * t.speed.den / t.speed.num;
    }
    if (score < best_score) {
      best_score = score;
      target = nb;
    }
  }
  if (target == net::kInvalidCore) {
    ++stats_.tasks_inlined;
#ifdef SIMANY_TRACE_PROBE
    static int probe_fail_count = 0;
    if (++probe_fail_count % 5000 == 1) {
      std::fprintf(stderr, "[probe-fail #%d] core %u now=%llu:",
                   probe_fail_count, c.id,
                   (unsigned long long)cycles_floor(c.now));
      for (CoreId nb : nbs) {
        const CoreSim& t = core(nb);
        std::fprintf(stderr,
                     " [n%u q=%zu res=%u fib=%d wait=%d stall=%d now=%llu]",
                     nb, t.task_queue.size(), t.reserved,
                     t.fiber ? 1 : 0, t.waiting_reply ? 1 : 0,
                     t.sync_stalled ? 1 : 0,
                     (unsigned long long)cycles_floor(t.now));
      }
      std::fprintf(stderr, "\n");
    }
#endif
    return false;
  }
  ++stats_.probes_sent;
  post(MsgKind::kProbe, c, target, cfg_.runtime.probe_msg_bytes);
  const Message r = await_reply(c);
  sync_to_arrival(r.arrival, c.now);
  if (r.kind == MsgKind::kProbeAck) {
    c.reserved_target = target;
    return true;
  }
  ++stats_.probes_denied;
  ++stats_.tasks_inlined;
  return false;
}

void Engine::ctx_spawn(CoreSim& c, GroupId g, TaskFn fn,
                       std::uint32_t arg_bytes) {
  if (c.reserved_target == net::kInvalidCore) {
    throw std::logic_error(
        "spawn without a successful probe reservation");
  }
  if (g != kInvalidGroup) ++groups_[g].active;
  const Tick birth = c.now;
  c.births.push_back(birth);
  gmin_lb_ = std::min(gmin_lb_, sat_add(birth, drift_ticks_));
  ++limit_epoch_;
  ++live_tasks_;
  ++stats_.tasks_spawned;
  if (obs_ != nullptr) obs_->on_task_birth(*this, c.id, birth);
  const std::uint32_t bytes =
      arg_bytes != 0 ? arg_bytes : cfg_.runtime.spawn_msg_bytes;
  const CoreId target = c.reserved_target;
  c.reserved_target = net::kInvalidCore;
  post(MsgKind::kTaskSpawn, c, target, bytes, 0, 0, std::move(fn), g, birth);
}

void Engine::ctx_join(CoreSim& c, GroupId g) {
  Group& grp = groups_[g];
  if (grp.active == 0) return;
  ++stats_.joins_suspended;
  c.park_pending = true;
  c.park_group = g;
  Fiber::yield();
  // Resumed from the core's resumables queue; the join context-switch
  // cost was charged by start_next_work.
}

LockId Engine::ctx_make_lock(CoreSim& c) {
  locks_.push_back(Lock{c.id, false, net::kInvalidCore, {}});
  return static_cast<LockId>(locks_.size() - 1);
}

void Engine::ctx_lock(CoreSim& c, LockId id) {
  const bool distributed = cfg_.mem.model == mem::MemoryModel::kDistributed;
  Lock& lk = locks_[id];
  if (distributed && lk.home != c.id) {
    if (lk.held && lk.holder == c.id) {
      throw std::logic_error(
          "recursive lock acquisition (non-reentrant)");
    }
    post(MsgKind::kLockRequest, c, lk.home, cfg_.runtime.ctrl_msg_bytes, id);
    const Message r = await_reply(c);
    sync_to_arrival(r.arrival, c.now);
    ++c.hold_depth;
    if (obs_ != nullptr) obs_->on_lock_acquired(*this, c.id, id);
    return;
  }
  if (lk.held && lk.holder == c.id) {
    throw std::logic_error("recursive lock acquisition (non-reentrant)");
  }
  // Local (or shared-memory) lock: one uncached atomic access.
  charge(c, ticks(distributed ? cfg_.mem.l2_latency_cycles
                              : cfg_.mem.shared_latency_cycles));
  if (lk.held) {
    lk.waiters.push_back(c.id);
    const Message r = await_reply(c);
    sync_to_arrival(r.arrival, c.now);
  } else {
    lk.held = true;
    lk.holder = c.id;
  }
  ++c.hold_depth;
  if (obs_ != nullptr) obs_->on_lock_acquired(*this, c.id, id);
}

void Engine::ctx_unlock(CoreSim& c, LockId id) {
  const bool distributed = cfg_.mem.model == mem::MemoryModel::kDistributed;
  Lock& lk = locks_[id];
  if (!lk.held || lk.holder != c.id) {
    throw std::logic_error("unlock of a lock this core does not hold");
  }
  SIMANY_ASSERT(c.hold_depth > 0, "core ", c.id, " at vt=", c.now,
                " unlocking lock ", id, " with hold_depth 0");
  --c.hold_depth;
  if (obs_ != nullptr) obs_->on_lock_released(*this, c.id, id);
  if (distributed && lk.home != c.id) {
    // The release travels asynchronously; clear the holder now so a
    // subsequent acquisition by this core is not mistaken for
    // recursion (per-pair FIFO delivers the release before any later
    // request from this core).
    lk.holder = net::kInvalidCore;
    post(MsgKind::kLockRelease, c, lk.home, cfg_.runtime.ctrl_msg_bytes, id);
    return;
  }
  charge(c, ticks(distributed ? cfg_.mem.l2_latency_cycles
                              : cfg_.mem.shared_latency_cycles));
  grant_next_lock_waiter(c, id);
}

CellId Engine::ctx_make_cell(std::uint32_t bytes, CoreId home) {
  Cell cell;
  cell.home = home;
  cell.bytes = bytes != 0 ? bytes : 8;
  // Cells live in their own high region of the simulated address
  // space, disjoint from runtime::synth_alloc ranges.
  const std::uint64_t span =
      (cell.bytes + cfg_.mem.line_bytes - 1) / cfg_.mem.line_bytes + 1;
  cell.synth_addr =
      (std::uint64_t{1} << 56) + synth_addr_next_ * cfg_.mem.line_bytes;
  synth_addr_next_ += span;
  cells_.push_back(std::move(cell));
  return static_cast<CellId>(cells_.size() - 1);
}

void Engine::ctx_cell_acquire(CoreSim& c, CellId id, AccessMode mode) {
  const bool distributed = cfg_.mem.model == mem::MemoryModel::kDistributed;
  Cell& cell = cells_[id];
  if (distributed && cell.home != c.id) {
    post(MsgKind::kDataRequest, c, cell.home, cfg_.runtime.ctrl_msg_bytes,
         id, static_cast<std::uint64_t>(mode));
    const Message r = await_reply(c);
    sync_to_arrival(r.arrival, c.now);
    ++c.hold_depth;
    if (obs_ != nullptr) obs_->on_cell_acquired(*this, c.id, id);
    // Data lands in the local L2 and is accessed from there.
    charge(c, ticks(cfg_.mem.l2_latency_cycles));
    return;
  }
  if (cell.locked) {
    cell.waiters.push_back(Cell::Waiter{c.id, mode});
    const Message r = await_reply(c);
    sync_to_arrival(r.arrival, c.now);
  } else {
    cell.locked = true;
    cell.holder = c.id;
    cell.holder_mode = mode;
  }
  ++c.hold_depth;
  if (obs_ != nullptr) obs_->on_cell_acquired(*this, c.id, id);
  if (distributed) {
    charge(c, ticks(cfg_.mem.l2_latency_cycles));
  } else {
    ctx_mem_access(c, cell.synth_addr, cell.bytes, /*write=*/false);
  }
}

void Engine::ctx_cell_release(CoreSim& c, CellId id) {
  const bool distributed = cfg_.mem.model == mem::MemoryModel::kDistributed;
  if (!cells_[id].locked || cells_[id].holder != c.id) {
    throw std::logic_error("release of a cell this core does not hold");
  }
  SIMANY_ASSERT(c.hold_depth > 0, "core ", c.id, " at vt=", c.now,
                " releasing cell ", id, " with hold_depth 0");
  const bool wrote = cells_[id].holder_mode == AccessMode::kWrite;
  if (distributed && cells_[id].home != c.id) {
    const std::uint32_t bytes =
        wrote ? std::max(cells_[id].bytes, cfg_.runtime.ctrl_msg_bytes)
              : cfg_.runtime.ctrl_msg_bytes;
    cells_[id].holder = net::kInvalidCore;  // release is in flight
    post(MsgKind::kCellRelease, c, cells_[id].home, bytes, id,
         wrote ? 1 : 0);
    --c.hold_depth;
    if (obs_ != nullptr) obs_->on_cell_released(*this, c.id, id);
    return;
  }
  if (!distributed && wrote) {
    // Write-back of the modified data to shared memory. The holder
    // exemption must still be in force here: the write-back may stall
    // on spatial sync, and a waiter behind us could be the very core
    // we would be waiting for (paper SS II-B).
    ctx_mem_access(c, cells_[id].synth_addr, cells_[id].bytes,
                   /*write=*/true);
  }
  grant_next_cell_waiter(c, id);
  --c.hold_depth;
  if (obs_ != nullptr) obs_->on_cell_released(*this, c.id, id);
}

}  // namespace simany
