#include "core/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/simany_assert.h"
#include "fault/fault_injector.h"
#include "host/parallel_engine.h"
#include "host/partition.h"
#include "obs/status.h"
#include "obs/telemetry.h"
#include "snapshot/run_hook.h"

namespace simany {

namespace {

[[nodiscard]] std::uint64_t mix_hash(const timing::InstMix& m) noexcept {
  // FNV-1a over the mix fields: identical annotated blocks map to the
  // same synthetic i-cache region, so loops hit after their cold miss.
  std::uint64_t h = 1469598103934665603ULL;
  const std::uint32_t fields[] = {m.int_alu,    m.int_mul,  m.fp_alu,
                                  m.fp_mul_div, m.branches, m.branches_static};
  for (std::uint32_t f : fields) {
    h = (h ^ f) * 1099511628211ULL;
  }
  return h;
}

[[nodiscard]] std::uint32_t mix_instructions(const timing::InstMix& m) noexcept {
  return m.int_alu + m.int_mul + m.fp_alu + m.fp_mul_div + m.branches +
         m.branches_static;
}

[[nodiscard]] bool is_reply_kind(MsgKind k) noexcept {
  return k == MsgKind::kProbeAck || k == MsgKind::kProbeNack ||
         k == MsgKind::kDataResponse || k == MsgKind::kLockGrant;
}

/// Run-time message processing: the core jumps to the arrival time if
/// behind, then spends the handling cost.
inline void sync_to_arrival(Tick arrival, Tick& now) {
  if (arrival > now) now = arrival;
}

}  // namespace

// ---------------------------------------------------------------------
// TaskCtx implementation bound to one simulated core.
// ---------------------------------------------------------------------

class Engine::Ctx final : public TaskCtx {
 public:
  Ctx(Engine& e, CoreSim& c) : e_(e), c_(c) {}

  void compute(Cycles cycles) override { e_.ctx_compute_cycles(c_, cycles); }
  void compute(const timing::InstMix& mix) override {
    e_.ctx_compute_mix(c_, mix);
  }
  void function_boundary() override { e_.ctx_function_boundary(c_); }
  void mem_read(std::uint64_t addr, std::uint32_t bytes) override {
    e_.ctx_mem_access(c_, addr, bytes, /*write=*/false);
  }
  void mem_write(std::uint64_t addr, std::uint32_t bytes) override {
    e_.ctx_mem_access(c_, addr, bytes, /*write=*/true);
  }
  GroupId make_group() override { return e_.ctx_make_group(c_); }
  bool probe() override { return e_.ctx_probe(c_); }
  void spawn(GroupId group, TaskFn fn, std::uint32_t arg_bytes) override {
    e_.ctx_spawn(c_, group, std::move(fn), arg_bytes);
  }
  void join(GroupId group) override { e_.ctx_join(c_, group); }
  LockId make_lock() override { return e_.ctx_make_lock(c_); }
  void lock(LockId id) override { e_.ctx_lock(c_, id); }
  void unlock(LockId id) override { e_.ctx_unlock(c_, id); }
  CellId make_cell(std::uint32_t bytes) override {
    return e_.ctx_make_cell(c_, bytes, c_.id);
  }
  CellId make_cell_at(std::uint32_t bytes, CoreId home) override {
    if (home >= e_.cfg_.num_cores()) {
      throw std::out_of_range("make_cell_at: home core out of range");
    }
    return e_.ctx_make_cell(c_, bytes, home);
  }
  void cell_acquire(CellId cell, AccessMode mode) override {
    e_.ctx_cell_acquire(c_, cell, mode);
  }
  void cell_release(CellId cell) override { e_.ctx_cell_release(c_, cell); }
  CoreId core_id() const override { return c_.id; }
  std::uint32_t num_cores() const override { return e_.cfg_.num_cores(); }
  Cycles now_cycles() const override { return cycles_floor(c_.now); }
  mem::MemoryModel memory_model() const override {
    return e_.cfg_.mem.model;
  }
  Rng& rng() override { return c_.rng; }

 private:
  Engine& e_;
  CoreSim& c_;
};

// ---------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------

Engine::Engine(ArchConfig cfg, ExecutionMode mode)
    : cfg_(std::move(cfg)),
      mode_(mode),
      drift_ticks_(cfg_.drift_ticks()),
      network_(cfg_.topology, cfg_.network),
      cost_model_(cfg_.cost_table, cfg_.branch),
      directory_(cfg_.num_cores()) {
  cfg_.validate();
  const std::uint32_t n = cfg_.num_cores();
  cores_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto c = std::make_unique<CoreSim>();
    c->id = i;
    c->speed = cfg_.speed_of(i);
    c->rng = Rng(cfg_.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    c->l1 = mem::PessimisticL1(cfg_.mem.line_bytes);
    if (mode_ == ExecutionMode::kCycleLevel) {
      mem::SetAssocCache::Config cache_cfg;
      cache_cfg.line_bytes = cfg_.mem.line_bytes;
      c->dcache = std::make_unique<mem::SetAssocCache>(cache_cfg);
      c->icache = std::make_unique<mem::SetAssocCache>(cache_cfg);
    }
    c->occ_proxy.assign(cfg_.topology.neighbors(i).size(),
                        cfg_.runtime.task_queue_capacity);
    c->ctx = std::make_unique<Ctx>(*this, *c);
    cores_.push_back(std::move(c));
  }
  if (cfg_.fault.enabled()) {
    fault_ = std::make_unique<fault::FaultInjector>(cfg_.fault, n);
    for (const net::CoreId d : fault_->dead()) cores_[d]->dead = true;
  }
}

Engine::~Engine() = default;

void Engine::tel(std::uint32_t shard, obs::EventKind k, Tick at, CoreId core,
                 std::uint8_t sub, std::uint32_t dst, std::uint64_t a,
                 std::uint64_t b) {
  telemetry_->record(shard, obs::Event{at, a, b, core, dst, k, sub});
}

// ---------------------------------------------------------------------
// Top-level run
// ---------------------------------------------------------------------

SimStats Engine::run(TaskFn root) {
  if (ran_) throw std::logic_error("Engine::run called twice");
  ran_ = true;
  // The parallel backend is a pure host-side optimization; anything
  // that assumes one global event order (observers, traces, the
  // cycle-level scheduler, live shared-directory timing) pins the run
  // to a single shard, which executes the classic sequential loop.
  const bool force_seq =
      mode_ == ExecutionMode::kCycleLevel || obs_ != nullptr ||
      trace_ != nullptr || cfg_.mem.coherence_timing ||
      cfg_.host.mode == HostMode::kSequential;
  std::uint32_t shards = 1;
  std::uint32_t workers = 1;
  if (!force_seq) {
    const std::uint32_t want =
        cfg_.host.shards != 0 ? cfg_.host.shards
                              : std::max<std::uint32_t>(1, cfg_.host.threads);
    shards = std::clamp<std::uint32_t>(want, 1, cfg_.num_cores());
    workers = std::clamp<std::uint32_t>(cfg_.host.threads, 1, shards);
  }
  host_setup(shards);
  stats_.host_threads_used = workers;
  guard_setup();

  shards_[0]->live_tasks = 1;
  core(0).task_queue.push_back(PendingTask{std::move(root), kInvalidGroup, 0});
  mark_ready(core(0));
  if (telemetry_ != nullptr) tel(0, obs::EventKind::kTaskEnqueue, 0, 0);
  if (obs_ != nullptr) obs_->on_run_begin(*this);

  // simlint: allow(det-wall-clock) host wall-time stat, output-only
  const auto t0 = std::chrono::steady_clock::now();
  try {
    if (mode_ == ExecutionMode::kCycleLevel) {
      main_loop_cl();
      // The CL loop has no barrier phase; give an armed snapshot hook
      // its end-of-run quiesce point (final capture / cursor check).
      if (snap_hook_ != nullptr) snap_hook_->at_barrier(*this, true);
    } else if (num_shards_ == 1) {
      // Sequential host: one shard, unbounded round budget — host_loop
      // only returns when the shard is blocked, so each serial-phase
      // visit is a termination / deadlock decision. An armed snapshot
      // hook may cap the budget instead, landing a barrier on an exact
      // quanta cursor; the extra serial-phase visits are state-neutral
      // (the par-1 ≡ seq contract: barriers with one shard mutate
      // nothing but round bookkeeping, which the hook replays too).
      host::ShardState& sh = *shards_[0];
      for (;;) {
        host_loop(sh, snap_hook_ != nullptr
                          ? snap_hook_->seq_budget(sh.quantum_count)
                          : ~std::uint64_t{0});
        if (host_serial_phase()) break;
      }
    } else {
      host::ParallelHost ph(*this, workers);
      ph.run();
    }
  } catch (...) {
    // Any abort path — guard trip, simulated deadlock, task exception,
    // worker failure — leaves suspended fibers behind. Unwind them so
    // their stacks (and everything those stacks own) are reclaimed,
    // then flush partial stats/telemetry for post-mortem diagnostics.
    // Both calls are idempotent; guard_abort already did them.
    unwind_all_fibers();
    guard_flush_partial();
    throw;
  }
  // simlint: allow(det-wall-clock) host wall-time stat, output-only
  const auto t1 = std::chrono::steady_clock::now();
  audit_counters();
  if (obs_ != nullptr) obs_->on_run_end(*this);

  finalize_stats();
  stats_.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (telemetry_ != nullptr) {
    telemetry_->finalize(cfg_.num_cores());
    obs::MetricsRegistry& m = telemetry_->metrics();
    m.counter("tasks_spawned") = stats_.tasks_spawned;
    m.counter("tasks_migrated") = stats_.tasks_migrated;
    m.counter("messages") = stats_.messages;
    m.counter("sync_stalls") = stats_.sync_stalls;
    m.counter("faults_injected") = stats_.faults_injected;
    m.counter("host_rounds") = stats_.host_rounds;
    m.gauge("avg_parallelism") = stats_.avg_parallelism();
    m.gauge("drift_hwm_cycles") =
        static_cast<double>(cycles_floor(stats_.drift_max_ticks));
    m.gauge("completion_cycles") =
        static_cast<double>(stats_.completion_cycles());
  }
  return stats_;
}

void Engine::host_setup(std::uint32_t shards) {
  const host::PartitionPlan plan =
      host::make_partition(cfg_.num_cores(), shards);
  num_shards_ = plan.num_shards();
  shard_id_ = plan.shard_of;
  proxy_.assign(cfg_.num_cores(), host::VtProxy{});
  proxy_next_.assign(cfg_.num_cores(), host::VtProxy{});
  shards_.clear();
  shards_.reserve(num_shards_);
  for (std::uint32_t i = 0; i < num_shards_; ++i) {
    auto sh = std::make_unique<host::ShardState>(
        i, plan.ranges[i].first, plan.ranges[i].second,
        cfg_.fiber_stack_bytes, cfg_.fiber_backend);
    sh->lane = network_.make_lane();
    sh->bfs_epoch.assign(cfg_.num_cores(), 0);
    sh->mail_touched_flag.assign(num_shards_, 0);
    sh->drain_from_flag.assign(num_shards_, 0);
    shards_.push_back(std::move(sh));
  }
  if (fault_ != nullptr) fault_->bind_shards(num_shards_);
  if (telemetry_ != nullptr) telemetry_->bind(num_shards_, cfg_.num_cores());
  mail_.clear();
  if (num_shards_ > 1) {
    const std::size_t pairs = std::size_t{num_shards_} * num_shards_;
    mail_.reserve(pairs);
    for (std::size_t i = 0; i < pairs; ++i) {
      mail_.push_back(std::make_unique<host::SpscMailbox<host::Routed>>());
    }
  }
}

void Engine::finalize_stats() {
  for (const auto& shp : shards_) {
    stats_.merge_counters(shp->stats);
    stats_.completion_ticks =
        std::max(stats_.completion_ticks, shp->max_task_end);
    stats_.network.merge(shp->lane.stats);
  }
  stats_.host_rounds = host_rounds_;
  if (fault_ != nullptr) {
    stats_.fault_dead_cores =
        static_cast<std::uint32_t>(fault_->dead().size());
  }
  stats_.core_busy_ticks.resize(cores_.size());
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    stats_.core_busy_ticks[i] = cores_[i]->busy;
    stats_.inbox_heap_allocs += cores_[i]->inbox.heap_allocs();
  }
}

// ---------------------------------------------------------------------
// Supervision: deadlines, watchdog, cooperative cancellation
// ---------------------------------------------------------------------

void Engine::guard_setup() {
  const guard::GuardConfig& g = cfg_.guard;
  guard_polling_ = g.polling();
  guard_limits_ = g.max_inbox_depth != 0 || g.max_live_fibers != 0;
  // simlint: allow(det-wall-clock) guard deadline anchor, by design
  guard_start_ = std::chrono::steady_clock::now();
  guard_max_vtime_ticks_ =
      g.max_vtime_cycles != 0 ? ticks(g.max_vtime_cycles) : 0;
  for (auto& shp : shards_) {
    shp->guard_quanta_next = g.poll_quanta;
  }
}

void Engine::guard_poll(host::ShardState& sh) {
  sh.guard_quanta_next = sh.quantum_count + cfg_.guard.poll_quanta;
  // A cancel requested elsewhere (another shard, a signal handler)
  // stops this shard's round too; the serial phase owns the abort.
  if (cancel_code_.load(std::memory_order_relaxed) != 0) {
    sh.guard_stop = true;
    return;
  }
  if (!guard_polling_) return;
  const guard::GuardConfig& g = cfg_.guard;
  const auto trip = [&](SimErrorCode code) {
    std::uint8_t expected = 0;
    cancel_code_.compare_exchange_strong(expected,
                                         static_cast<std::uint8_t>(code),
                                         std::memory_order_relaxed);
    sh.guard_stop = true;
  };
  if (g.deadline_ms != 0 &&
      // simlint: allow(det-wall-clock) guard deadline check, by design
      std::chrono::steady_clock::now() - guard_start_ >=
          std::chrono::milliseconds(g.deadline_ms)) {
    trip(SimErrorCode::kDeadlineExceeded);
    return;
  }
  if (guard_max_vtime_ticks_ != 0) {
    for (CoreId i = sh.core_begin; i < sh.core_end; ++i) {
      if (cores_[i]->now >= guard_max_vtime_ticks_) {
        trip(SimErrorCode::kVtimeBudgetExceeded);
        return;
      }
    }
  }
  if (g.watchdog_rounds != 0) {
    // Livelock watchdog, shard-local: quanta were consumed since the
    // last poll (we only poll on quantum crossings) yet no core's clock
    // moved. A core that executes anything charges at least one tick,
    // and lock/cell holders charge their whole critical section in one
    // quantum (hold-depth exemption) — so a frozen clock sum across
    // whole polls means non-charging spin (wedged fiber, lost wake
    // storm), not a long critical section.
    Tick now_sum = 0;
    for (CoreId i = sh.core_begin; i < sh.core_end; ++i) {
      now_sum = sat_add(now_sum, cores_[i]->now);
    }
    if (sh.guard_baseline && now_sum == sh.guard_now_sum) {
      if (++sh.guard_stale_polls >= g.watchdog_rounds) {
        trip(SimErrorCode::kLivelock);
        return;
      }
    } else {
      sh.guard_stale_polls = 0;
    }
    sh.guard_now_sum = now_sum;
    sh.guard_baseline = true;
  }
  sh.guard_quanta_at_poll = sh.quantum_count;
}

void Engine::guard_serial_check() {
  const auto pending = static_cast<SimErrorCode>(
      cancel_code_.load(std::memory_order_relaxed));
  if (pending != SimErrorCode::kUnknown) guard_abort(pending);
  if (!guard_polling_) return;
  const guard::GuardConfig& g = cfg_.guard;
  // Wall deadline re-checked once per round: shards whose loops exit
  // without consuming quanta (nothing runnable) never hit the in-round
  // poll, but the round barrier still turns.
  if (g.deadline_ms != 0 &&
      // simlint: allow(det-wall-clock) guard deadline check, by design
      std::chrono::steady_clock::now() - guard_start_ >=
          std::chrono::milliseconds(g.deadline_ms)) {
    guard_abort(SimErrorCode::kDeadlineExceeded);
  }
  if (g.watchdog_rounds == 0 || num_shards_ == 1) return;
  // Global cross-round watchdog for the parallel host: rounds consume
  // quanta (cores are executing) but the global clock sum is frozen.
  // Backs up the shard-local poll when the spin straddles shards.
  // Incremental: folds the per-shard clock sums host_publish computed
  // at each round tail (O(shards)) instead of rescanning every core.
  Tick now_sum = 0;
  std::uint64_t quanta = 0;
  for (const auto& shp : shards_) {
    now_sum = sat_add(now_sum, shp->round_now_sum);
    quanta += shp->quantum_count;
  }
  if (guard_round_baseline_ && now_sum == guard_round_now_sum_ &&
      quanta > guard_round_quanta_) {
    if (++guard_stale_rounds_ >= g.watchdog_rounds) {
      guard_abort(SimErrorCode::kLivelock);
    }
  } else {
    guard_stale_rounds_ = 0;
  }
  guard_round_now_sum_ = now_sum;
  guard_round_quanta_ = quanta;
  guard_round_baseline_ = true;
}

void Engine::guard_abort(SimErrorCode code) {
  // Abort notification while the fibers are still intact: the autosave
  // ring's emergency capture (src/recover) runs here, before the
  // unwind below tears the architectural state down. Hooks contain
  // their own failures — a snapshot that cannot be written must not
  // mask the abort being reported.
  if (snap_hook_ != nullptr) snap_hook_->at_abort(*this, code);
  // Progress context: the laggard core anchors stall-shaped failures
  // (its clock is what stopped moving); the leader anchors budget
  // overruns (its clock is what crossed the limit).
  Tick min_now = kTickInfinity;
  Tick max_now = 0;
  CoreId min_core = net::kInvalidCore;
  CoreId max_core = net::kInvalidCore;
  for (const auto& cp : cores_) {
    if (cp->dead) continue;
    if (cp->now < min_now) {
      min_now = cp->now;
      min_core = cp->id;
    }
    if (cp->now >= max_now) {
      max_now = cp->now;
      max_core = cp->id;
    }
  }
  const bool stall_shaped =
      code == SimErrorCode::kLivelock || code == SimErrorCode::kDeadlock;
  SimError::Context ctx;
  ctx.code = code;
  ctx.cause = to_string(code);
  ctx.core = stall_shaped ? min_core : max_core;
  ctx.at_tick = max_now;
  if (fault_ != nullptr) ctx.fault_seed = fault_->plan().seed;
  std::int64_t live = 0;
  for (const auto& shp : shards_) live += shp->live_tasks;
  std::string msg = std::string("simulation aborted: ") + to_string(code) +
                    " after " + std::to_string(host_rounds_) +
                    " host rounds (live_tasks=" + std::to_string(live) +
                    ", min core " + std::to_string(min_core) + " @" +
                    std::to_string(cycles_floor(min_now)) + "c, max core " +
                    std::to_string(max_core) + " @" +
                    std::to_string(cycles_floor(max_now)) + "c)";
  unwind_all_fibers();
  guard_flush_partial();
  throw SimError(std::move(msg), ctx);
}

void Engine::unwind_all_fibers() {
  cancelling_ = true;
  const auto unwind_one = [&](std::unique_ptr<Fiber> f,
                              host::ShardState& sh) {
    if (f == nullptr) return;
    // Resuming with cancelling_ set makes every yield point (and the
    // task entry itself) throw FiberUnwind, running destructors down
    // the task stack; the trampoline's catch-all finishes the fiber.
    if (!f->finished()) f->resume();
    sh.pool.recycle(std::move(f));
  };
  // Fibers in transit between shards ride inside mailbox messages.
  for (auto& mb : mail_) {
    mb->seal();
    host::Routed r;
    while (mb->pop(r)) {
      unwind_one(std::move(r.msg.fiber), *shards_[0]);
    }
  }
  for (auto& cp : cores_) {
    CoreSim& c = *cp;
    host::ShardState& sh = shard_of(c);
    unwind_one(std::move(c.fiber), sh);
    for (auto& p : c.resumables) unwind_one(std::move(p.fiber), sh);
    c.resumables.clear();
    for (auto& g : c.groups) {
      for (auto& j : g.joiners) unwind_one(std::move(j.fiber), sh);
      g.joiners.clear();
    }
    while (!c.inbox.empty()) {
      Message m = c.inbox.pop_front();
      unwind_one(std::move(m.fiber), sh);
    }
  }
  cancelling_ = false;
}

void Engine::guard_flush_partial() {
  if (guard_flushed_) return;
  guard_flushed_ = true;
  finalize_stats();
  if (telemetry_ != nullptr) {
    telemetry_->drain_at_barrier();
    telemetry_->finalize(cfg_.num_cores());
  }
  // Terminal heartbeat on the abort path: pollers watching the status
  // file learn the run failed instead of seeing a stale "running".
  if (status_ != nullptr) status_tick(false, /*failed=*/true);
}

void Engine::guard_rethrow_worker(std::uint32_t shard,
                                  std::exception_ptr ep) {
  unwind_all_fibers();
  guard_flush_partial();
  try {
    std::rethrow_exception(ep);
  } catch (SimError& e) {
    if (e.mutable_context().shard == ~0u) e.mutable_context().shard = shard;
    throw;
  } catch (const std::logic_error&) {
    throw;  // engine protocol misuse: not a simulated-machine failure
  } catch (const std::exception& ex) {
    SimError::Context ctx;
    ctx.code = SimErrorCode::kWorkerException;
    ctx.cause = to_string(SimErrorCode::kWorkerException);
    ctx.shard = shard;
    throw SimError(std::string("shard ") + std::to_string(shard) +
                       " worker failed: " + ex.what(),
                   ctx);
  } catch (...) {
    SimError::Context ctx;
    ctx.code = SimErrorCode::kWorkerException;
    ctx.cause = to_string(SimErrorCode::kWorkerException);
    ctx.shard = shard;
    throw SimError(std::string("shard ") + std::to_string(shard) +
                       " worker failed: unknown exception",
                   ctx);
  }
}

void Engine::guard_check_inbox(host::ShardState& sh, const CoreSim& dst) {
  if (!guard_limits_) return;
  const std::uint64_t depth = dst.inbox.size() + 1;
  if (sh.stats.inbox_depth_peak < depth) sh.stats.inbox_depth_peak = depth;
  const std::uint32_t cap = cfg_.guard.max_inbox_depth;
  if (cap != 0 && depth > cap) {
    ++sh.stats.guard_inbox_overflows;
    SimError::Context ctx;
    ctx.code = SimErrorCode::kResourceExhausted;
    ctx.cause = to_string(SimErrorCode::kResourceExhausted);
    ctx.core = dst.id;
    ctx.at_tick = dst.now;
    ctx.detail = depth;
    throw SimError("inbox depth guard tripped on core " +
                       std::to_string(dst.id) + ": " + std::to_string(depth) +
                       " > limit " + std::to_string(cap),
                   ctx);
  }
}

// ---------------------------------------------------------------------
// Host rounds (the per-shard event loop and the serial barrier phase)
// ---------------------------------------------------------------------

void Engine::host_round(host::ShardState& sh, std::uint64_t budget) {
  obs::HostProfiler* prof =
      telemetry_ != nullptr ? telemetry_->profiler() : nullptr;
  // Idle-streak bookkeeping for the publish skip below: a round that
  // consumed no quantum and applied no mail cannot have changed any
  // published field (every mutation flows through host_loop quanta or
  // host_drain ops). After two such rounds in a row, both proxy
  // buffers already hold this shard's current tiles — the previous two
  // publishes wrote identical values — so the rewrite is a no-op and
  // is skipped. This keeps relay rounds, where most shards only wait
  // for cross-shard traffic, free of the O(cores/shard) publish walk.
  const std::uint64_t q0 = sh.quantum_count;
  const std::uint64_t m0 = sh.mail_in;
  const auto tick_streak = [&] {
    if (sh.quantum_count != q0 || sh.mail_in != m0) {
      sh.publish_streak = 0;
    } else {
      ++sh.publish_streak;
    }
    return sh.publish_streak < 2;
  };
  if (prof == nullptr) {
    host_drain(sh);
    host_loop(sh, budget);
    if (tick_streak()) host_publish(sh);
    return;
  }
  std::uint64_t t0 = prof->now_ns();
  host_drain(sh);
  std::uint64_t t1 = prof->now_ns();
  prof->record(sh.id, obs::HostPhase::kDrain, t0, t1);
  host_loop(sh, budget);
  t0 = prof->now_ns();
  prof->record(sh.id, obs::HostPhase::kExecute, t1, t0);
  if (tick_streak()) host_publish(sh);
  t1 = prof->now_ns();
  prof->record(sh.id, obs::HostPhase::kPublish, t0, t1);
}

void Engine::host_drain(host::ShardState& sh) {
  if (num_shards_ == 1) return;
  // Only mailboxes the serial phase sealed with fresh traffic carry
  // anything poppable (drain_from, built at the barrier), so the other
  // num_shards - 2 probes are skipped. Sorting restores the ascending
  // source order the full scan used: deterministic for a fixed shard
  // count, and FIFO within each pair (the mailbox guarantees it).
  if (sh.drain_from.empty()) return;
  std::sort(sh.drain_from.begin(), sh.drain_from.end());
  for (const std::uint32_t src : sh.drain_from) {
    sh.drain_from_flag[src] = 0;
    auto& mb = mailbox(src, sh.id);
    host::Routed r;
    while (mb.pop(r)) {
      ++sh.mail_in;
      sh.progressed = true;
      apply_host_op(sh, std::move(r));
    }
  }
  sh.drain_from.clear();
}

void Engine::host_loop(host::ShardState& sh, std::uint64_t budget) {
  while (budget > 0) {
    if (sh.guard_stop) return;
    if (sh.ready.empty()) {
      if (!wake_sweep(sh)) return;
      continue;
    }
    const CoreId id = sh.ready.front();
    sh.ready.pop_front();
    CoreSim& c = core(id);
    c.in_ready = false;
    if (!actionable(c)) continue;
    run_core_vt(c);
    ++sh.quantum_count;
    sh.progressed = true;
    --budget;
    if (sh.quantum_count >= sh.guard_quanta_next) guard_poll(sh);
    if (obs_ != nullptr) obs_->on_quantum_end(*this);
    if (sh.quantum_count % 64 == 0) {
      sample_parallelism(sh);
      sample_drift(sh);
    }
    if (sh.quantum_count % 4096 == 0) {
      refresh_gmin(sh);
#if SIMANY_ASSERT_ACTIVE
      // simlint: allow(phase-serial-escape) single shard: no concurrency
      if (num_shards_ == 1) audit_counters();
#endif
    }
  }
}

void Engine::host_publish(host::ShardState& sh) {
  if (num_shards_ == 1) return;
  // This loop rewrites every one of the shard's proxy_next_ tiles every
  // round — the invariant that lets the serial phase commit the whole
  // snapshot with an O(1) buffer swap instead of an O(cores) copy.
  Tick now_sum = 0;
  Tick gmin = kTickInfinity;
  for (CoreId i = sh.core_begin; i < sh.core_end; ++i) {
    const CoreSim& c = *cores_[i];
    host::VtProxy p;
    p.now = c.now;
    p.births_min = c.births_min;
    p.anchor = is_anchor(c);
    p.occupied = static_cast<std::uint32_t>(c.task_queue.size()) + c.reserved;
    p.busy = (c.fiber != nullptr) || !c.resumables.empty();
    proxy_next_[i] = p;
    now_sum = sat_add(now_sum, c.now);
    if (p.anchor) gmin = std::min(gmin, c.now);
    if (c.births_min != kTickInfinity) {
      gmin = std::min(gmin, sat_add(c.births_min, drift_ticks_));
    }
  }
  // Piggybacked clock-sum for the serial phase's global watchdog: the
  // cores cannot move between this publish and the barrier, so the
  // folded sums equal what a serial rescan would have computed. The
  // drift lower bound rides along the same walk (same terms as
  // refresh_gmin) for the serial phase's global fold.
  sh.round_now_sum = now_sum;
  sh.round_gmin = gmin;
}

bool Engine::host_serial_phase() {
  ++host_rounds_;
  obs::HostProfiler* prof =
      telemetry_ != nullptr ? telemetry_->profiler() : nullptr;
  struct SerialSpan {
    obs::HostProfiler* p;
    std::uint64_t t0;
    ~SerialSpan() {
      if (p != nullptr) {
        p->record(obs::HostProfiler::kSerial, obs::HostPhase::kSerial, t0,
                  p->now_ns());
      }
    }
  } span{prof, prof != nullptr ? prof->now_ns() : 0};
  // Workers are parked at the round barrier for the whole of this
  // function, so moving the per-shard telemetry buffers into the
  // central stream here is race-free by the same argument as the
  // proxy commit below.
  if (telemetry_ != nullptr) telemetry_->drain_at_barrier();
  if (num_shards_ > 1) {
    // Commit this round's proxy snapshots and make this round's
    // cross-shard messages drainable. Both happen only here, so what a
    // shard observes in round k is a pure function of round k-1 state —
    // independent of how rounds interleave across worker threads.
    // Workers already wrote every tile of proxy_next_ in host_publish
    // (their own cores, at their own round tail), so the commit is an
    // O(1) buffer flip — the stale back buffer is fully rewritten
    // before the next flip. Likewise only mailboxes actually pushed to
    // since the last barrier need sealing (send_op tracks them), not
    // all num_shards^2: seal order across pairs is immaterial, sealing
    // an untouched mailbox is a no-op.
    proxy_.swap(proxy_next_);
    for (const auto& shp : shards_) {
      for (const std::uint32_t dst : shp->mail_touched) {
        mailbox(shp->id, dst).seal();
        shp->mail_touched_flag[dst] = 0;
        // Tell the destination which mailboxes now carry sealed
        // traffic, so its next host_drain pops only those.
        host::ShardState& d = *shards_[dst];
        if (!d.drain_from_flag[shp->id]) {
          d.drain_from_flag[shp->id] = 1;
          d.drain_from.push_back(shp->id);
        }
      }
      shp->mail_touched.clear();
    }
    // Fold the per-shard drift lower bounds (computed on the publish
    // walk) into a fresh global bound for every shard's drift-limit
    // BFS pruning. Raising gmin_lb here is safe: the fold covers every
    // anchor clock and in-flight birth as of this barrier, and the
    // global minimum is monotone, so the value stays a valid lower
    // bound until the next fold. A tight bound collapses the BFS to a
    // handful of hops instead of the whole mesh.
    Tick gfold = kTickInfinity;
    for (const auto& shp : shards_) {
      gfold = std::min(gfold, shp->round_gmin);
    }
    for (const auto& shp : shards_) {
      shp->gmin_lb = gfold;
    }
  }
  std::int64_t live = 0;
  std::uint64_t inflight = 0;
  std::uint64_t mail_out = 0;
  std::uint64_t mail_in = 0;
  std::size_t stalled = 0;
  bool progressed = false;
  for (const auto& shp : shards_) {
    if (shp->error) guard_rethrow_worker(shp->id, shp->error);
    live += shp->live_tasks;
    inflight += shp->inflight_messages;
    mail_out += shp->mail_out;
    mail_in += shp->mail_in;
    stalled += shp->stalled.size();
    progressed = progressed || shp->progressed;
    shp->progressed = false;
  }
  SIMANY_ASSERT(live >= 0, "negative global live-task count ", live);
  SIMANY_ASSERT(mail_out >= mail_in, "mailbox accounting underflow: out=",
                mail_out, " in=", mail_in);
  const std::uint64_t pending = mail_out - mail_in;
  const bool finished = live == 0 && inflight == 0 && pending == 0;
  // Snapshot quiesce point: workers are parked, mailboxes are sealed
  // and drained-or-pending is accounted, so the architectural state is
  // a pure function of the timeline here (both host backends funnel
  // through this serial phase). The hook observes, never mutates.
  if (snap_hook_ != nullptr) snap_hook_->at_barrier(*this, finished);
  // Status heartbeat: same quiesce argument as the snapshot hook —
  // read-only sampling, output-only effects (see status_tick).
  if (status_ != nullptr) status_tick(finished);
  // A run that completed beats any simultaneous guard trip.
  if (finished) return true;
  guard_serial_check();
  if (pending > 0 || progressed) return false;
  // Nothing ran, nothing is in transit: defensively rebuild the ready
  // queues; if no core is actionable anywhere, the simulation is stuck.
  bool any = false;
  for (auto& cptr : cores_) {
    if (!cptr->in_ready && actionable(*cptr)) {
      mark_ready(*cptr);
      any = true;
    }
  }
  if (any) return false;
  if (obs_ != nullptr) obs_->on_deadlock(*this);
  SimError::Context dctx;
  dctx.code = SimErrorCode::kDeadlock;
  dctx.cause = to_string(SimErrorCode::kDeadlock);
  throw SimError(
      "simulation deadlock: live_tasks=" + std::to_string(live) +
          " inflight=" + std::to_string(inflight) +
          " stalled=" + std::to_string(stalled),
      dctx);
}

void Engine::status_tick(bool finished, bool failed) {
  // Throttle by wall clock unless the run is ending: the final
  // heartbeat must always land so pollers see "finished"/"failed".
  if (!finished && !failed && !status_->due()) return;
  obs::StatusSample s;
  s.finished = finished;
  s.failed = failed;
  s.rounds = host_rounds_;
  s.deadline_ms = cfg_.guard.deadline_ms;
  s.max_vtime_ticks = guard_max_vtime_ticks_;
  if (telemetry_ != nullptr) s.events = telemetry_->events_recorded();
  std::uint64_t mail_out = 0;
  std::uint64_t mail_in = 0;
  s.shards.reserve(shards_.size());
  Tick vmin = kTickInfinity;
  Tick vmax = 0;
  for (const auto& shp : shards_) {
    obs::StatusShard ss;
    ss.id = shp->id;
    ss.quanta = shp->quantum_count;
    ss.live_tasks = shp->live_tasks;
    Tick smin = kTickInfinity;
    Tick smax = 0;
    for (CoreId c = shp->core_begin; c < shp->core_end; ++c) {
      if (core(c).dead) continue;  // a dead core's frozen clock is noise
      smin = std::min(smin, core(c).now);
      smax = std::max(smax, core(c).now);
    }
    ss.now_min = smin == kTickInfinity ? 0 : smin;
    ss.now_max = smax;
    s.shards.push_back(ss);
    s.quanta += shp->quantum_count;
    s.live_tasks += shp->live_tasks;
    s.inflight_messages += shp->inflight_messages;
    mail_out += shp->mail_out;
    mail_in += shp->mail_in;
    vmin = std::min(vmin, ss.now_min);
    vmax = std::max(vmax, ss.now_max);
  }
  s.mail_pending = mail_out >= mail_in ? mail_out - mail_in : 0;
  s.vtime_min = vmin == kTickInfinity ? 0 : vmin;
  s.vtime_max = vmax;
  status_->write(s);
}

void Engine::apply_host_op(host::ShardState& sh, host::Routed r) {
  Message& m = r.msg;
  switch (r.op) {
    case host::HostOp::kDeliver: {
      ++sh.inflight_messages;
      CoreSim& dst = core(m.dst);
      guard_check_inbox(sh, dst);
      dst.inbox.push_back(std::move(m));
      mark_ready(dst);
      break;
    }
    case host::HostOp::kBirthRetire:
      retire_birth(core(m.dst), m.birth);
      break;
    case host::HostOp::kGroupInc:
      ++group_at(m.a).active;
      break;
    case host::HostOp::kGroupDec: {
      Group& grp = group_at(m.a);
      SIMANY_ASSERT(grp.active > 0, "group ", m.a,
                    " underflow: remote completion from core ", m.src);
      --grp.active;
      if (grp.active == 0 && !grp.joiners.empty()) {
        group_complete(grp, m.a, m.src, m.sent);
      }
      break;
    }
    case host::HostOp::kJoinQuery: {
      Group& grp = group_at(m.a);
      if (grp.active == 0) {
        // The group was already empty: bounce the fiber straight back,
        // waking the joiner at its own parking time (the sequential
        // fast path, modulo the parking round-trip).
        Message w;
        w.kind = MsgKind::kJoinerRequest;
        w.src = object_home(m.a);
        w.dst = m.src;
        w.sent = m.parked_at;
        w.arrival = m.parked_at;
        w.a = m.a;
        w.fiber = std::move(m.fiber);
        w.fiber_group = m.fiber_group;
        w.parked_at = m.parked_at;
        enqueue_message(sh, std::move(w));
      } else {
        grp.joiners.push_back(Group::Joiner{m.src, std::move(m.fiber),
                                            m.fiber_group, m.parked_at});
      }
      break;
    }
    case host::HostOp::kLockAttempt: {
      Lock& lk = lock_at(m.a);
      if (lk.held && lk.holder == m.src) {
        throw std::logic_error("recursive lock acquisition (non-reentrant)");
      }
      if (!lk.held) {
        lk.held = true;
        lk.holder = m.src;
        // Requester already charged the shared access; the grant lands
        // at its send time.
        deliver_direct(MsgKind::kLockGrant, object_home(m.a), m.src, m.sent,
                       sh, m.a);
      } else {
        lk.waiters.push_back(m.src);
      }
      break;
    }
    case host::HostOp::kLockFree: {
      SIMANY_ASSERT(lock_at(m.a).held && lock_at(m.a).holder == m.src,
                    "LOCK_FREE for lock ", m.a, " not held by core ", m.src);
      grant_next_lock_waiter(m.src, m.sent, sh, m.a);
      break;
    }
    case host::HostOp::kCellCreate: {
      Cell cell;
      cell.home = object_home(m.a);
      cell.bytes = m.bytes;
      cell.synth_addr = m.b;
      core(cell.home).cells.emplace(m.a, std::move(cell));
      break;
    }
    case host::HostOp::kCellAttempt: {
      Cell& cell = cell_at(m.a);
      const auto mode = static_cast<AccessMode>(m.b);
      if (!cell.locked) {
        cell.locked = true;
        cell.holder = m.src;
        cell.holder_mode = mode;
        deliver_direct(MsgKind::kDataResponse, cell.home, m.src, m.sent, sh,
                       m.a, cell.synth_addr, cell.bytes);
      } else {
        cell.waiters.push_back(Cell::Waiter{m.src, mode});
      }
      break;
    }
    case host::HostOp::kCellFree: {
      SIMANY_ASSERT(cell_at(m.a).locked && cell_at(m.a).holder == m.src,
                    "CELL_FREE for cell ", m.a, " not held by core ", m.src);
      grant_next_cell_waiter(m.src, m.sent, sh, m.a);
      break;
    }
  }
}

void Engine::send_op(host::ShardState& ctx, host::HostOp op,
                     std::uint32_t dst_shard, Message m) {
  SIMANY_ASSERT(dst_shard != ctx.id, "send_op to own shard");
  ++ctx.mail_out;
  // First push to this destination since the barrier: remember the
  // pair so the serial phase seals only mailboxes that carry traffic.
  if (ctx.mail_touched_flag[dst_shard] == 0) {
    ctx.mail_touched_flag[dst_shard] = 1;
    ctx.mail_touched.push_back(dst_shard);
  }
  mailbox(ctx.id, dst_shard).push(host::Routed{op, std::move(m)});
}

// ---------------------------------------------------------------------
// Introspection & self-audit
// ---------------------------------------------------------------------

EngineInspect Engine::inspect() const {
  EngineInspect s;
  s.drift_ticks = drift_ticks_;
  std::int64_t live = 0;
  for (const auto& shp : shards_) {
    live += shp->live_tasks;
    s.inflight_messages += shp->inflight_messages;
  }
  s.live_tasks = live > 0 ? static_cast<std::uint64_t>(live) : 0;
  s.cores.reserve(cores_.size());
  for (const auto& cptr : cores_) {
    const CoreSim& c = *cptr;
    CoreInspect ci;
    ci.id = c.id;
    ci.now = c.now;
    ci.anchor = is_anchor(c);
    ci.has_fiber = (c.fiber != nullptr);
    ci.sync_stalled = c.sync_stalled;
    ci.waiting_reply = c.waiting_reply;
    ci.dead = c.dead;
    ci.hold_depth = c.hold_depth;
    ci.inbox_len = c.inbox.size();
    ci.queue_len = c.task_queue.size();
    ci.resumables = c.resumables.size();
    ci.reserved = c.reserved;
    ci.births.assign(c.births.begin(), c.births.end());
    c.inbox.for_each([&s](const Message& m) {
      if (m.carries_task()) ++s.inflight_spawns;
    });
    s.cores.push_back(std::move(ci));
  }
  // Homed tables, reported in (home, local index) order so snapshots
  // are deterministic (cells live in a hash map).
  for (const auto& cptr : cores_) {
    const CoreSim& h = *cptr;
    for (std::size_t i = 0; i < h.locks.size(); ++i) {
      const Lock& lk = h.locks[i];
      LockInspect li;
      li.id = make_object_id(h.id, static_cast<std::uint32_t>(i));
      li.home = lk.home;
      li.held = lk.held;
      li.holder = lk.holder;
      li.waiters.assign(lk.waiters.begin(), lk.waiters.end());
      s.locks.push_back(std::move(li));
    }
    std::vector<CellId> cell_ids;
    cell_ids.reserve(h.cells.size());
    // simlint: allow(det-unordered-iter) keys are sorted before use
    for (const auto& [id, cell] : h.cells) cell_ids.push_back(id);
    std::sort(cell_ids.begin(), cell_ids.end());
    for (CellId id : cell_ids) {
      const Cell& cell = h.cells.at(id);
      CellInspect ci;
      ci.id = id;
      ci.home = cell.home;
      ci.locked = cell.locked;
      ci.holder = cell.holder;
      for (const Cell::Waiter& w : cell.waiters) ci.waiters.push_back(w.core);
      s.cells.push_back(std::move(ci));
    }
    for (std::size_t i = 0; i < h.groups.size(); ++i) {
      const Group& g = h.groups[i];
      GroupInspect gi;
      gi.id = make_object_id(h.id, static_cast<std::uint32_t>(i));
      gi.active = g.active;
      for (const Group::Joiner& j : g.joiners) gi.joiner_cores.push_back(j.core);
      s.groups.push_back(std::move(gi));
    }
  }
  return s;
}

void Engine::audit_counters() const {
#if SIMANY_ASSERT_ACTIVE
  // Conservation audit, called only from quiescent points (between
  // quanta in a single-shard run, end of run otherwise): every live
  // task is either running, queued, parked on a group, resumable, or
  // riding a TASK_SPAWN / carried-joiner message; every in-flight
  // message sits in exactly one inbox; no mail is in transit.
  std::uint64_t inbox_total = 0;
  std::uint64_t carried_tasks = 0;
  for (const auto& cptr : cores_) {
    const CoreSim& c = *cptr;
    SIMANY_ASSERT(c.hold_depth >= 0, "core ", c.id, " at vt=", c.now,
                  " has negative hold_depth ", c.hold_depth);
    inbox_total += c.inbox.size();
    carried_tasks += (c.fiber ? 1 : 0) + c.task_queue.size() +
                     c.resumables.size();
    c.inbox.for_each([&carried_tasks](const Message& m) {
      if (m.carries_task()) ++carried_tasks;
    });
    for (const Group& g : c.groups) carried_tasks += g.joiners.size();
  }
  std::int64_t live = 0;
  std::uint64_t inflight = 0;
  std::uint64_t mail_out = 0;
  std::uint64_t mail_in = 0;
  for (const auto& shp : shards_) {
    live += shp->live_tasks;
    inflight += shp->inflight_messages;
    mail_out += shp->mail_out;
    mail_in += shp->mail_in;
  }
  SIMANY_ASSERT(mail_out == mail_in, "mail in transit at a quiescent point: ",
                mail_out, " out vs ", mail_in, " in");
  SIMANY_ASSERT(inbox_total == inflight, "inbox total ", inbox_total,
                " != inflight_messages ", inflight);
  SIMANY_ASSERT(live >= 0 &&
                    carried_tasks == static_cast<std::uint64_t>(live),
                "carried tasks ", carried_tasks, " != live_tasks ", live);
#endif
}

// ---------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------

bool Engine::actionable(const CoreSim& c) const {
  if (!c.inbox.empty()) return true;
  if (c.fiber) {
    if (c.waiting_reply) return c.reply_ready;
    return !c.sync_stalled;
  }
  return !c.resumables.empty() || !c.task_queue.empty();
}

void Engine::mark_ready(CoreSim& c) {
  if (mode_ == ExecutionMode::kCycleLevel) {
    cl_push(c);
    return;
  }
  if (!c.in_ready) {
    c.in_ready = true;
    shard_of(c).ready.push_back(c.id);
  }
}

void Engine::run_core_vt(CoreSim& c) {
  for (;;) {
    process_inbox(c);
    if (c.fiber) {
      if (c.waiting_reply) {
        if (!c.reply_ready) return;
        resume_fiber(c);
      } else if (c.sync_stalled) {
        return;
      } else {
        resume_fiber(c);
      }
    } else if (!start_next_work(c)) {
      return;
    }
  }
}

void Engine::run_core_cl(CoreSim& c) {
  process_inbox(c);
  if (c.fiber) {
    if (c.waiting_reply && !c.reply_ready) return;
    resume_fiber(c);
    return;
  }
  if (start_next_work(c)) {
    resume_fiber(c);
  }
}

void Engine::main_loop_cl() {
  host::ShardState& sh = *shards_[0];
  while (sh.live_tasks > 0 || sh.inflight_messages > 0) {
    const CoreId id = cl_pick();
    if (id == net::kInvalidCore) {
      if (obs_ != nullptr) obs_->on_deadlock(*this);
      SimError::Context dctx;
      dctx.code = SimErrorCode::kDeadlock;
      dctx.cause = to_string(SimErrorCode::kDeadlock);
      throw SimError("simulation deadlock (cycle-level): live_tasks=" +
                         std::to_string(sh.live_tasks),
                     dctx);
    }
    CoreSim& c = core(id);
    run_core_cl(c);
    if (actionable(c)) cl_push(c);
    ++sh.quantum_count;
    if (sh.quantum_count >= sh.guard_quanta_next) guard_poll(sh);
    if (sh.guard_stop) guard_serial_check();  // aborts: cancel code is set
    if (obs_ != nullptr) obs_->on_quantum_end(*this);
    // Single-threaded loop: every quantum boundary is a quiesce point.
    if (snap_hook_ != nullptr) snap_hook_->cl_quantum(*this, sh.quantum_count);
    if (status_ != nullptr) status_tick(false);
  }
  if (status_ != nullptr) status_tick(true);
}

Tick Engine::cl_key(const CoreSim& c) const {
  Tick key = c.now;
  if (!c.fiber && c.resumables.empty() && c.task_queue.empty() &&
      !c.inbox.empty()) {
    // Idle core whose only work is a future message: it acts at the
    // message arrival time.
    key = std::max(key, c.inbox.min_arrival());
  }
  return key;
}

CoreId Engine::pick_min_time_core() const {
  CoreId best = net::kInvalidCore;
  Tick best_key = kTickInfinity;
  for (const auto& cptr : cores_) {
    const CoreSim& c = *cptr;
    if (!actionable(c)) continue;
    const Tick key = cl_key(c);
    if (key < best_key) {
      best_key = key;
      best = c.id;
    }
  }
  return best;
}

// Min-heap on (key, id): std::push_heap et al. build max-heaps, so the
// comparators below order by "greater".
void Engine::cl_push(CoreSim& c) {
  ++c.cl_stamp;
  cl_heap_.push_back(ClEntry{cl_key(c), c.id, c.cl_stamp});
  std::push_heap(cl_heap_.begin(), cl_heap_.end(),
                 [](const ClEntry& x, const ClEntry& y) {
                   return x.key > y.key || (x.key == y.key && x.id > y.id);
                 });
}

CoreId Engine::cl_pick() {
  const auto after = [](const ClEntry& x, const ClEntry& y) {
    return x.key > y.key || (x.key == y.key && x.id > y.id);
  };
  while (!cl_heap_.empty()) {
    std::pop_heap(cl_heap_.begin(), cl_heap_.end(), after);
    const ClEntry e = cl_heap_.back();
    cl_heap_.pop_back();
    CoreSim& c = core(e.id);
    if (e.stamp != c.cl_stamp) continue;  // superseded entry
    if (!actionable(c)) continue;
#if SIMANY_ASSERT_ACTIVE
    SIMANY_ASSERT(e.id == pick_min_time_core(), "cycle-level heap picked ",
                  e.id, " but the reference scan picked ",
                  pick_min_time_core());
#endif
    return e.id;
  }
#if SIMANY_ASSERT_ACTIVE
  SIMANY_ASSERT(pick_min_time_core() == net::kInvalidCore,
                "cycle-level heap empty but the reference scan found core ",
                pick_min_time_core());
#endif
  return net::kInvalidCore;
}

void Engine::resume_fiber(CoreSim& c) {
  ++stats_of(c).fiber_switches;
  c.fiber->resume();
  if (c.fiber->finished() && c.fiber->exception()) {
    // A simulated task threw (program bug or failed self-verification):
    // surface it to the caller of run(). The trampoline already
    // transported it across the stack switch; structured errors and
    // engine protocol misuse pass through unchanged, anything else is
    // wrapped with core/task context.
    try {
      std::rethrow_exception(c.fiber->exception());
    } catch (const SimError&) {
      throw;
    } catch (const std::logic_error&) {
      throw;
    } catch (const std::exception& ex) {
      SimError::Context ctx;
      ctx.code = SimErrorCode::kTaskException;
      ctx.cause = to_string(SimErrorCode::kTaskException);
      ctx.core = c.id;
      ctx.at_tick = c.now;
      throw SimError(std::string("task on core ") + std::to_string(c.id) +
                         " threw: " + ex.what(),
                     ctx);
    } catch (...) {
      SimError::Context ctx;
      ctx.code = SimErrorCode::kTaskException;
      ctx.cause = to_string(SimErrorCode::kTaskException);
      ctx.core = c.id;
      ctx.at_tick = c.now;
      throw SimError(std::string("task on core ") + std::to_string(c.id) +
                         " threw a non-std exception",
                     ctx);
    }
  }
  after_fiber_return(c);
}

void Engine::after_fiber_return(CoreSim& c) {
  if (c.fiber->finished()) {
    task_done(c);
    return;
  }
  if (c.park_pending) {
    c.park_pending = false;
    const GroupId g = c.park_group;
    const CoreId home = object_home(g);
    if (same_shard(c.id, home)) {
      group_at(g).joiners.push_back(
          Group::Joiner{c.id, std::move(c.fiber), c.fiber_group, c.now});
    } else {
      // The fiber itself travels to the group's home shard inside the
      // query; it comes back in a JOINER_REQUEST once the group drains
      // (or immediately, if it is already empty).
      Message q;
      q.src = c.id;
      q.sent = c.now;
      q.a = g;
      q.fiber = std::move(c.fiber);
      q.fiber_group = c.fiber_group;
      q.parked_at = c.now;
      send_op(shard_of(c), host::HostOp::kJoinQuery, shard_id_[home],
              std::move(q));
    }
    c.park_group = kInvalidGroup;
    c.fiber_group = kInvalidGroup;
  }
  // Otherwise the fiber yielded for a stall / reply wait and simply
  // stays installed on the core.
}

bool Engine::start_next_work(CoreSim& c) {
  if (!c.resumables.empty()) {
    ParkedFiber p = std::move(c.resumables.front());
    c.resumables.pop_front();
    if (p.parked_at > c.now) c.now = p.parked_at;
    charge(c, scaled_cost(cfg_.runtime.join_switch_cycles, c.speed));
    c.fiber = std::move(p.fiber);
    c.fiber_group = p.task_group;
    return true;
  }
  if (!c.task_queue.empty()) {
    PendingTask t = std::move(c.task_queue.front());
    c.task_queue.pop_front();
    if (t.arrival > c.now) c.now = t.arrival;
    charge(c, scaled_cost(cfg_.runtime.task_start_cycles, c.speed));
    broadcast_occupancy_update(c);
    if (trace_ != nullptr) trace_->on_task_start(c.id, c.now);
    if (obs_ != nullptr) obs_->on_task_start(*this, c.id, c.now);
    if (telemetry_ != nullptr) {
      // `a` carries the enqueue time so the critical-path analyzer can
      // match this activation to its kTaskEnqueue even when migration
      // reorders the queue (try_migrate pops from the back).
      tel(shard_id_[c.id], obs::EventKind::kTaskStart, c.now, c.id, 0, 0,
          t.arrival);
    }
    // Injected transient stall: the core spends `stall` ticks of
    // virtual time making no progress before the task body runs. It
    // goes through advance_execution (inside the fiber), so spatial
    // sync throttles neighbors exactly as for real work.
    Tick stall = 0;
    if (fault_ != nullptr) {
      stall = fault_->draw_task_stall(c.id);
      if (stall > 0) {
        SimStats& st = shard_of(c).stats;
        ++st.fault_core_stalls;
        ++st.faults_injected;
        if (obs_ != nullptr) {
          obs_->on_fault(*this, fault::FaultKind::kCoreStall, c.id, c.now,
                         stall);
        }
        if (telemetry_ != nullptr) {
          tel(shard_id_[c.id], obs::EventKind::kFault, c.now, c.id,
              static_cast<std::uint8_t>(fault::FaultKind::kCoreStall), 0,
              stall);
        }
      }
    }
    host::ShardState& sh = shard_of(c);
    if (guard_limits_) {
      const std::uint32_t cap = cfg_.guard.max_live_fibers;
      const std::uint64_t live = sh.pool.outstanding() + 1;
      if (sh.stats.live_fibers_peak < live) sh.stats.live_fibers_peak = live;
      if (cap != 0 && live > cap) {
        ++sh.stats.guard_fiber_overflows;
        SimError::Context gctx;
        gctx.code = SimErrorCode::kResourceExhausted;
        gctx.cause = to_string(SimErrorCode::kResourceExhausted);
        gctx.core = c.id;
        gctx.at_tick = c.now;
        gctx.detail = live;
        throw SimError("fiber guard tripped on shard " +
                           std::to_string(sh.id) + ": " +
                           std::to_string(live) + " live fibers > limit " +
                           std::to_string(cap),
                       gctx);
      }
    }
    Ctx* ctx = c.ctx.get();
    c.fiber = sh.pool.create([this, &c, fn = std::move(t.fn), ctx, stall]() {
      // Entry check covers fibers created but never run before an
      // abort: the unwinding resume must not execute the task body.
      if (cancelling_) throw FiberUnwind{};
      if (fault_ != nullptr && fault_->core_wedged(c.id)) wedge_spin(c);
      if (stall > 0) advance_execution(c, stall);
      fn(*ctx);
    });
    c.fiber_group = t.group;
    return true;
  }
  return false;
}

void Engine::task_done(CoreSim& c) {
  host::ShardState& sh = shard_of(c);
  SIMANY_ASSERT(num_shards_ > 1 || sh.live_tasks > 0, "task_done on core ",
                c.id, " at vt=", c.now, " with zero live tasks");
  --sh.live_tasks;
  sh.max_task_end = std::max(sh.max_task_end, c.now);
  if (trace_ != nullptr) trace_->on_task_end(c.id, c.now);
  if (obs_ != nullptr) obs_->on_task_end(*this, c.id, c.now);
  if (telemetry_ != nullptr) {
    tel(shard_id_[c.id], obs::EventKind::kTaskEnd, c.now, c.id);
  }
  sh.pool.recycle(std::move(c.fiber));
  const GroupId g = c.fiber_group;
  c.fiber_group = kInvalidGroup;
  if (g == kInvalidGroup) return;
  const CoreId home = object_home(g);
  if (same_shard(c.id, home)) {
    Group& grp = group_at(g);
    SIMANY_ASSERT(grp.active > 0, "group ", g, " underflow: task on core ",
                  c.id, " at vt=", c.now, " completed into an empty group");
    --grp.active;
    if (grp.active == 0 && !grp.joiners.empty()) {
      group_complete(grp, g, c.id, c.now);
    }
  } else {
    Message d;
    d.src = c.id;
    d.sent = c.now;
    d.a = g;
    send_op(sh, host::HostOp::kGroupDec, shard_id_[home], std::move(d));
  }
}

void Engine::group_complete(Group& grp, GroupId g, CoreId completer,
                            Tick at) {
  host::ShardState& hctx = *shards_[shard_id_[object_home(g)]];
  for (auto& joiner : grp.joiners) {
    if (shard_id_[joiner.core] == hctx.id) {
      // Same-shard joiner: the fiber stays parked in the group table
      // until the JOINER_REQUEST is processed at its core (the
      // sequential engine's behavior).
      post_from(MsgKind::kJoinerRequest, completer, at, hctx, joiner.core,
                cfg_.runtime.ctrl_msg_bytes, g, 0, {}, kInvalidGroup, 0,
                nullptr, kInvalidGroup, 0);
    } else {
      // Cross-shard joiner: the fiber rides inside the wake message.
      post_from(MsgKind::kJoinerRequest, completer, at, hctx, joiner.core,
                cfg_.runtime.ctrl_msg_bytes, g, 0, {}, kInvalidGroup, 0,
                std::move(joiner.fiber), joiner.task_group, joiner.parked_at);
    }
  }
  std::erase_if(grp.joiners,
                [](const Group::Joiner& j) { return j.fiber == nullptr; });
}

bool Engine::wake_sweep(host::ShardState& sh) {
  // Nothing parked: skip the O(cores) gmin refresh. The stale gmin_lb
  // stays a valid lower bound (global min virtual time is monotonic),
  // exactly like the every-4096-quanta refresh in host_loop, so BFS
  // pruning in drift_limit merely gets more conservative. This keeps
  // message-relay rounds — where most shards are idle — O(1) per shard.
  if (sh.stalled.empty()) return false;
  refresh_gmin(sh);
  bool any = false;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < sh.stalled.size(); ++i) {
    CoreSim& c = core(sh.stalled[i]);
    if (!c.sync_stalled) continue;  // already woken elsewhere
    const Tick lim = drift_limit(c);
    if (lim > c.now) {
      c.sync_stalled = false;
      c.cached_limit = lim;
      c.limit_epoch = sh.limit_epoch;
      if (trace_ != nullptr) trace_->on_wake(c.id, c.now, lim);
      if (obs_ != nullptr) obs_->on_wake(*this, c.id, c.now, lim);
      if (telemetry_ != nullptr) {
        tel(shard_id_[c.id], obs::EventKind::kWake, c.now, c.id, 0, 0, lim);
      }
      mark_ready(c);
      any = true;
    } else {
      sh.stalled[kept++] = sh.stalled[i];
    }
  }
  sh.stalled.resize(kept);
  return any;
}

// ---------------------------------------------------------------------
// Spatial synchronization
// ---------------------------------------------------------------------

bool Engine::is_anchor(const CoreSim& c) const {
  return c.fiber != nullptr || !c.task_queue.empty() ||
         !c.resumables.empty();
}

void Engine::drift_view(const CoreSim& viewer, CoreId id, bool& anchor,
                        Tick& now, Tick& births_min) const {
  if (num_shards_ == 1 || shard_id_[id] == shard_id_[viewer.id]) {
    const CoreSim& n = core(id);
    anchor = is_anchor(n);
    now = n.now;
    births_min = n.births_min;
    return;
  }
  // Frozen snapshot, at most one round stale. Staleness only lowers
  // the resulting limits (conservative).
  const host::VtProxy& p = proxy_[id];
  anchor = p.anchor;
  now = p.now;
  births_min = p.births_min;
}

void Engine::record_birth(CoreSim& c, Tick birth) {
  c.births.push_back(birth);
  if (birth < c.births_min) c.births_min = birth;
}

void Engine::retire_birth(CoreSim& c, Tick birth) {
  auto it = std::find(c.births.begin(), c.births.end(), birth);
  SIMANY_ASSERT(it != c.births.end(), "no birth record for vt=", birth,
                " on core ", c.id);
  if (it != c.births.end()) {
    *it = c.births.back();
    c.births.pop_back();
  }
  if (birth <= c.births_min) {
    Tick lo = kTickInfinity;
    for (Tick b : c.births) lo = std::min(lo, b);
    c.births_min = lo;
  }
}

void Engine::refresh_gmin(host::ShardState& sh) {
  Tick g = kTickInfinity;
  const std::uint32_t n = cfg_.num_cores();
  for (CoreId i = 0; i < n; ++i) {
    if (num_shards_ == 1 || shard_id_[i] == sh.id) {
      const CoreSim& c = core(i);
      if (is_anchor(c)) g = std::min(g, c.now);
      if (c.births_min != kTickInfinity) {
        g = std::min(g, sat_add(c.births_min, drift_ticks_));
      }
    } else {
      const host::VtProxy& p = proxy_[i];
      if (p.anchor) g = std::min(g, p.now);
      if (p.births_min != kTickInfinity) {
        g = std::min(g, sat_add(p.births_min, drift_ticks_));
      }
    }
  }
  sh.gmin_lb = g;
}

void Engine::sample_parallelism(host::ShardState& sh) {
  // Each shard samples over its own cores; the per-shard counts merge
  // into the same global average a single-shard run reports.
  std::uint64_t available = 0;
  if (num_shards_ == 1) {
    for (const auto& cptr : cores_) {
      if (actionable(*cptr)) ++available;
    }
  } else {
    for (CoreId i = sh.core_begin; i < sh.core_end; ++i) {
      if (actionable(*cores_[i])) ++available;
    }
  }
  ++sh.stats.parallelism_samples;
  sh.stats.parallelism_sum += available;
  sh.stats.parallelism_max = std::max(sh.stats.parallelism_max, available);
}

void Engine::sample_drift(host::ShardState& sh) {
  // Drift high-water mark: the largest lead any active core in this
  // shard holds over an active topological neighbor, as seen through
  // the same view the drift limiter uses (live state inside the shard,
  // frozen proxies across the boundary). Sampled on the same cadence
  // as sample_parallelism, so it is deterministic for a fixed shard
  // count and bit-identical between the sequential host and a 1-shard
  // parallel run.
  const bool live_series =
      telemetry_ != nullptr &&
      telemetry_->options().metrics_interval_cycles != 0;
  // Live samples land at most once per crossed virtual-time boundary,
  // keyed to the shard's fastest core so idle shards do not spin rows.
  bool boundary = false;
  if (live_series) {
    Tick fastest = 0;
    for (CoreId i = sh.core_begin; i < sh.core_end; ++i) {
      fastest = std::max(fastest, cores_[i]->now);
    }
    Tick& next = telemetry_->next_sample_at(sh.id);
    if (fastest >= next) {
      boundary = true;
      const Tick step = ticks(telemetry_->options().metrics_interval_cycles);
      while (next <= fastest) next = sat_add(next, step);
    }
  }

  Tick hwm = sh.stats.drift_max_ticks;
  std::uint64_t avail = 0;
  for (CoreId i = sh.core_begin; i < sh.core_end; ++i) {
    const CoreSim& c = *cores_[i];
    if (actionable(c)) ++avail;
    if (!is_anchor(c)) continue;
    Tick max_gap = 0;
    for (const CoreId nb : cfg_.topology.neighbors(i)) {
      Tick nb_now;
      bool nb_active;
      if (same_shard(i, nb)) {
        const CoreSim& t = core(nb);
        nb_now = t.now;
        nb_active = is_anchor(t);
      } else {
        const host::VtProxy& p = proxy_[nb];
        nb_now = p.now;
        nb_active = p.anchor;
      }
      if (!nb_active || c.now <= nb_now) continue;
      max_gap = std::max(max_gap, c.now - nb_now);
    }
    hwm = std::max(hwm, max_gap);
    if (boundary && max_gap > 0) {
      telemetry_->stage_sample(
          sh.id, obs::LiveSample{cycles_floor(c.now),
                                 static_cast<std::int32_t>(i), 0,
                                 cycles_fp(max_gap)});
    }
  }
  sh.stats.drift_max_ticks = hwm;
  if (boundary) {
    Tick fastest = 0;
    for (CoreId i = sh.core_begin; i < sh.core_end; ++i) {
      fastest = std::max(fastest, cores_[i]->now);
    }
    telemetry_->stage_sample(sh.id,
                             obs::LiveSample{cycles_floor(fastest), -1, 1,
                                             static_cast<double>(avail)});
  }
}

Tick Engine::bounded_slack_limit(const CoreSim& viewer) const {
  // SlackSim-style global window: the slowest active entity (core or
  // in-flight task birth) plus T.
  Tick gmin = kTickInfinity;
  const std::uint32_t n = cfg_.num_cores();
  for (CoreId i = 0; i < n; ++i) {
    bool anchor = false;
    Tick now = 0;
    Tick births_min = kTickInfinity;
    drift_view(viewer, i, anchor, now, births_min);
    if (anchor) gmin = std::min(gmin, now);
    gmin = std::min(gmin, births_min);
  }
  if (gmin == kTickInfinity) return kTickInfinity;
  return sat_add(gmin, drift_ticks_);
}

std::uint32_t Engine::free_slots(const CoreSim& c) const {
  const std::uint32_t occupied =
      static_cast<std::uint32_t>(c.task_queue.size()) + c.reserved;
  return occupied >= cfg_.runtime.task_queue_capacity
             ? 0
             : cfg_.runtime.task_queue_capacity - occupied;
}

void Engine::broadcast_occupancy_update(CoreSim& c) {
  if (!cfg_.runtime.broadcast_occupancy) return;
  const std::uint32_t free = free_slots(c);
  for (CoreId nb : cfg_.topology.neighbors(c.id)) {
    post(MsgKind::kOccUpdate, c, nb, cfg_.runtime.ctrl_msg_bytes, free);
  }
}

void Engine::on_occ_update(CoreSim& c, const Message& m) {
  sync_to_arrival(m.arrival, c.now);
  // Proxy bookkeeping is free: the paper's run-time folds it into
  // message reception.
  const auto nbs = cfg_.topology.neighbors(c.id);
  for (std::size_t i = 0; i < nbs.size(); ++i) {
    if (nbs[i] == m.src) {
      c.occ_proxy[i] = static_cast<std::uint32_t>(m.a);
      return;
    }
  }
}

Tick Engine::drift_limit(const CoreSim& c) {
  host::ShardState& sh = shard_of(c);
  ++sh.stats.limit_recomputes;
  if (cfg_.sync_scheme == SyncScheme::kBoundedSlack) {
    Tick limit = bounded_slack_limit(c);
    if (c.births_min != kTickInfinity) {
      limit = std::min(limit, sat_add(c.births_min, drift_ticks_));
    }
    return limit;
  }
  const Tick T = drift_ticks_;
  Tick best = kTickInfinity;
  if (c.births_min != kTickInfinity) {
    best = sat_add(c.births_min, T);
  }
  // BFS outward from c. Idle cores are transparent: passing through one
  // adds T per hop, which is exactly the paper's shadow-time fixpoint
  // (shadow = min over neighbors + T). Remote cores are seen through
  // their VtProxy snapshots (drift_view).
  if (++sh.bfs_epoch_cur == 0) {
    std::fill(sh.bfs_epoch.begin(), sh.bfs_epoch.end(), 0u);
    sh.bfs_epoch_cur = 1;
  }
  // simlint: allow(det-thread-local) BFS scratch, cleared per call;
  static thread_local std::vector<std::pair<CoreId, std::uint32_t>> queue;
  queue.clear();
  queue.emplace_back(c.id, 0);
  sh.bfs_epoch[c.id] = sh.bfs_epoch_cur;
  std::size_t head = 0;
  auto deeper_cannot_improve = [&](std::uint32_t next_depth) {
    if (best == kTickInfinity) return false;
    if (sh.gmin_lb == kTickInfinity) return true;
    return sat_add(sh.gmin_lb, sat_mul(T, next_depth)) >= best;
  };
  while (head < queue.size()) {
    const auto [id, d] = queue[head++];
    if (d > 0) {
      bool anchor = false;
      Tick now = 0;
      Tick births_min = kTickInfinity;
      drift_view(c, id, anchor, now, births_min);
      if (anchor) best = std::min(best, sat_add(now, sat_mul(T, d)));
      if (births_min != kTickInfinity) {
        best = std::min(best, sat_add(births_min, sat_mul(T, d + 1)));
      }
    }
    if (deeper_cannot_improve(d + 1)) continue;
    for (CoreId nb : cfg_.topology.neighbors(id)) {
      if (sh.bfs_epoch[nb] != sh.bfs_epoch_cur) {
        sh.bfs_epoch[nb] = sh.bfs_epoch_cur;
        queue.emplace_back(nb, d + 1);
      }
    }
  }
  return best;
}

void Engine::advance_execution(CoreSim& c, Tick cost) {
  // Cancellation backstop: also catches task code that swallowed a
  // FiberUnwind with a catch-all and kept computing.
  if (cancelling_) throw FiberUnwind{};
  if (mode_ == ExecutionMode::kCycleLevel) {
    const Tick quantum = ticks(std::max<Cycles>(1, cfg_.cl_quantum_cycles));
    while (cost > 0) {
      const Tick step = std::min(cost, quantum);
      charge(c, step, AdvanceKind::kCompute);
      cost -= step;
      if (cost > 0) {
        Fiber::yield();
        if (cancelling_) throw FiberUnwind{};
      }
    }
    return;
  }
  host::ShardState& sh = shard_of(c);
  while (cost > 0) {
    if (c.hold_depth > 0) {
      // Lock/cell holder: temporarily exempt from spatial sync so it
      // can reach its release (paper SS II-B, deadlock avoidance).
      charge(c, cost, AdvanceKind::kCompute);
      return;
    }
    if (c.cached_limit <= c.now || c.limit_epoch != sh.limit_epoch) {
      c.cached_limit = drift_limit(c);
      c.limit_epoch = sh.limit_epoch;
    }
    if (c.cached_limit > c.now) {
      const Tick step = std::min(cost, c.cached_limit - c.now);
      charge(c, step, AdvanceKind::kCompute);
      cost -= step;
      continue;
    }
    ++sh.stats.sync_stalls;
    c.sync_stalled = true;
    sh.stalled.push_back(c.id);
    if (trace_ != nullptr) trace_->on_stall(c.id, c.now);
    if (obs_ != nullptr) obs_->on_stall(*this, c.id, c.now);
    if (telemetry_ != nullptr) {
      tel(shard_id_[c.id], obs::EventKind::kStall, c.now, c.id);
    }
    Fiber::yield();
    if (cancelling_) throw FiberUnwind{};
    // Woken by wake_sweep with a fresh cached_limit; loop re-checks.
  }
}

void Engine::wedge_spin(CoreSim& c) {
  if (!c.wedge_reported) {
    c.wedge_reported = true;
    SimStats& st = stats_of(c);
    ++st.fault_core_wedges;
    ++st.faults_injected;
    if (obs_ != nullptr) {
      obs_->on_fault(*this, fault::FaultKind::kCoreWedge, c.id, c.now, 0);
    }
    if (telemetry_ != nullptr) {
      tel(shard_id_[c.id], obs::EventKind::kFault, c.now, c.id,
          static_cast<std::uint8_t>(fault::FaultKind::kCoreWedge), 0, 0);
    }
  }
  host::ShardState& sh = shard_of(c);
  for (;;) {
    if (mode_ == ExecutionMode::kVirtualTime) {
      // Present exactly like a spatial-sync stall, except the clock
      // never charges: wake_sweep keeps re-waking the core, quanta are
      // consumed, the clock sum freezes — the watchdog's signature.
      ++sh.stats.sync_stalls;
      c.sync_stalled = true;
      sh.stalled.push_back(c.id);
      if (trace_ != nullptr) trace_->on_stall(c.id, c.now);
      if (obs_ != nullptr) obs_->on_stall(*this, c.id, c.now);
      if (telemetry_ != nullptr) {
        tel(shard_id_[c.id], obs::EventKind::kStall, c.now, c.id);
      }
    }
    // Cycle-level: stay actionable at a frozen clock, so the scheduler
    // re-picks this core forever and the in-loop poll fires.
    Fiber::yield();
    if (cancelling_) throw FiberUnwind{};
  }
}

// ---------------------------------------------------------------------
// Messaging
// ---------------------------------------------------------------------

void Engine::post(MsgKind kind, CoreSim& from, CoreId to, std::uint32_t bytes,
                  std::uint64_t a, std::uint64_t b, TaskFn task,
                  GroupId group, Tick birth, std::unique_ptr<Fiber> fiber,
                  GroupId fiber_group, Tick parked_at) {
  post_from(kind, from.id, from.now, shard_of(from), to, bytes, a, b,
            std::move(task), group, birth, std::move(fiber), fiber_group,
            parked_at);
}

void Engine::post_from(MsgKind kind, CoreId from, Tick from_now,
                       host::ShardState& ctx, CoreId to, std::uint32_t bytes,
                       std::uint64_t a, std::uint64_t b, TaskFn task,
                       GroupId group, Tick birth,
                       std::unique_ptr<Fiber> fiber, GroupId fiber_group,
                       Tick parked_at) {
  Message m;
  m.kind = kind;
  m.src = from;
  m.dst = to;
  m.sent = from_now;
  if (fault_ == nullptr) {
    m.arrival = network_.send_on(ctx.lane, from, to, bytes, from_now);
  } else {
    // The injector books lost attempts and duplicates on this shard's
    // lane and returns the perturbed arrival of the surviving
    // transmission (throws SimError when the retry budget runs out).
    const fault::MsgFaults f = fault_->on_message(
        network_, ctx.lane, ctx.id, from, to, bytes, from_now);
    m.arrival = f.arrival;
    record_msg_faults(f, from, from_now, ctx);
  }
  m.bytes = bytes;
  m.a = a;
  m.b = b;
  m.task = std::move(task);
  m.group = group;
  m.birth = birth;
  m.fiber = std::move(fiber);
  m.fiber_group = fiber_group;
  m.parked_at = parked_at;
  ++ctx.stats.messages;
  if (trace_ != nullptr) trace_->on_message(m);
  if (obs_ != nullptr) obs_->on_message_posted(*this, m, /*direct=*/false);
  // Fiber-carrying messages are host transport for cross-shard parked
  // fibers, not architectural traffic; they stay off the telemetry
  // stream so the trace has the same shape under every backend.
  if (telemetry_ != nullptr && m.fiber == nullptr) {
    tel(ctx.id, obs::EventKind::kMsgPost, m.sent, m.src,
        static_cast<std::uint8_t>(m.kind), m.dst, m.arrival, m.bytes);
  }
  enqueue_message(ctx, std::move(m));
}

void Engine::record_msg_faults(const fault::MsgFaults& f, CoreId src,
                               Tick sent, host::ShardState& ctx) {
  SimStats& st = ctx.stats;
  if (f.retries > 0) {
    ++st.fault_msgs_dropped;
    st.fault_msg_retries += f.retries;
    ++st.faults_injected;
    if (obs_ != nullptr) {
      obs_->on_fault(*this, fault::FaultKind::kMsgDrop, src, sent, f.retries);
    }
    if (telemetry_ != nullptr) {
      tel(ctx.id, obs::EventKind::kFault, sent, src,
          static_cast<std::uint8_t>(fault::FaultKind::kMsgDrop), 0,
          f.retries);
    }
  }
  if (f.duplicates > 0) {
    st.fault_msgs_duplicated += f.duplicates;
    ++st.faults_injected;
    if (obs_ != nullptr) {
      obs_->on_fault(*this, fault::FaultKind::kMsgDuplicate, src, sent,
                     f.duplicates);
    }
    if (telemetry_ != nullptr) {
      tel(ctx.id, obs::EventKind::kFault, sent, src,
          static_cast<std::uint8_t>(fault::FaultKind::kMsgDuplicate), 0,
          f.duplicates);
    }
  }
  if (f.delay > 0) {
    ++st.fault_msgs_delayed;
    ++st.faults_injected;
    if (obs_ != nullptr) {
      obs_->on_fault(*this, fault::FaultKind::kMsgDelay, src, sent, f.delay);
    }
    if (telemetry_ != nullptr) {
      tel(ctx.id, obs::EventKind::kFault, sent, src,
          static_cast<std::uint8_t>(fault::FaultKind::kMsgDelay), 0,
          f.delay);
    }
  }
  if (f.reordered) ++st.fault_msgs_reordered;
}

void Engine::deliver_direct(MsgKind kind, CoreId from, CoreId to,
                            Tick arrival, host::ShardState& ctx,
                            std::uint64_t a, std::uint64_t b,
                            std::uint32_t bytes) {
  Message m;
  m.kind = kind;
  m.src = from;
  m.dst = to;
  m.sent = arrival;
  m.arrival = arrival;
  m.bytes = bytes;
  m.a = a;
  m.b = b;
  m.direct = true;
  if (obs_ != nullptr) obs_->on_message_posted(*this, m, /*direct=*/true);
  enqueue_message(ctx, std::move(m));
}

void Engine::enqueue_message(host::ShardState& ctx, Message m) {
  const std::uint32_t dsh = shard_id_[m.dst];
  if (dsh == ctx.id) {
    ++ctx.inflight_messages;
    CoreSim& dst = core(m.dst);
    guard_check_inbox(ctx, dst);
    dst.inbox.push_back(std::move(m));
    mark_ready(dst);
  } else {
    // In-flight accounting transfers to the destination shard when the
    // kDeliver op is applied there. send_op also records the touched
    // mailbox pair so the serial phase seals this delivery visible.
    send_op(ctx, host::HostOp::kDeliver, dsh, std::move(m));
  }
}

void Engine::process_inbox(CoreSim& c) {
  host::ShardState& sh = shard_of(c);
  while (!c.inbox.empty()) {
    Message m = c.inbox.pop_front();
    SIMANY_ASSERT(sh.inflight_messages > 0, "core ", c.id, " at vt=", c.now,
                  " popped ", to_string(m.kind),
                  " with zero in-flight messages");
    --sh.inflight_messages;
    if (obs_ != nullptr) obs_->on_message_handled(*this, c.id, m);
    if (telemetry_ != nullptr && m.fiber == nullptr && !m.direct) {
      tel(sh.id, obs::EventKind::kMsgHandled,
          m.arrival > c.now ? m.arrival : c.now, c.id,
          static_cast<std::uint8_t>(m.kind), m.src, m.arrival);
    }
    handle_message(c, m);
  }
}

Message Engine::await_reply(CoreSim& c) {
  c.waiting_reply = true;
  c.reply_ready = false;
  Fiber::yield();
  if (cancelling_) throw FiberUnwind{};
  if (!c.reply_ready) {
    throw std::logic_error("await_reply resumed without a reply");
  }
  c.waiting_reply = false;
  c.reply_ready = false;
  return std::move(c.reply);
}

void Engine::handle_message(CoreSim& c, Message& m) {
  if (is_reply_kind(m.kind)) {
    if (!c.waiting_reply || c.reply_ready) {
      throw std::logic_error(std::string("unexpected reply message ") +
                             to_string(m.kind));
    }
    c.reply = std::move(m);
    c.reply_ready = true;
    return;
  }
  switch (m.kind) {
    case MsgKind::kProbe: on_probe(c, m); break;
    case MsgKind::kTaskSpawn: on_task_spawn(c, m); break;
    case MsgKind::kJoinerRequest: on_joiner_request(c, m); break;
    case MsgKind::kDataRequest: on_data_request(c, m); break;
    case MsgKind::kCellRelease: on_cell_release(c, m); break;
    case MsgKind::kLockRequest: on_lock_request(c, m); break;
    case MsgKind::kLockRelease: on_lock_release(c, m); break;
    case MsgKind::kOccUpdate: on_occ_update(c, m); break;
    default:
      throw std::logic_error("unhandled message kind");
  }
}

// ---------------------------------------------------------------------
// Run-time protocol handlers (engine context, running on core `c`)
// ---------------------------------------------------------------------

void Engine::on_probe(CoreSim& c, const Message& m) {
  sync_to_arrival(m.arrival, c.now);
  charge(c, scaled_cost(cfg_.runtime.msg_handle_cycles, c.speed));
  // Dead cores always answer "busy"; an enabled plan may additionally
  // deny at random, exercising the inline-fallback and migration paths.
  bool denied = c.dead;
  if (!denied && fault_ != nullptr && fault_->draw_spawn_denial(c.id)) {
    denied = true;
    SimStats& st = shard_of(c).stats;
    ++st.fault_spawn_denials;
    ++st.faults_injected;
    if (obs_ != nullptr) {
      obs_->on_fault(*this, fault::FaultKind::kSpawnDenied, c.id, c.now, 1);
    }
    if (telemetry_ != nullptr) {
      tel(shard_of(c).id, obs::EventKind::kFault, c.now, c.id,
          static_cast<std::uint8_t>(fault::FaultKind::kSpawnDenied), 0, 1);
    }
  }
  const std::uint32_t occupied =
      static_cast<std::uint32_t>(c.task_queue.size()) + c.reserved;
  if (!denied && occupied < cfg_.runtime.task_queue_capacity) {
    ++c.reserved;
    post(MsgKind::kProbeAck, c, m.src, cfg_.runtime.probe_msg_bytes);
    broadcast_occupancy_update(c);
  } else {
    post(MsgKind::kProbeNack, c, m.src, cfg_.runtime.probe_msg_bytes);
  }
}

void Engine::on_task_spawn(CoreSim& c, Message& m) {
  const bool was_anchor = is_anchor(c);
  sync_to_arrival(m.arrival, c.now);
  charge(c, scaled_cost(cfg_.runtime.msg_handle_cycles, c.speed));
  // m.a == 1 marks a cross-shard migration, which skips the remote
  // reservation (ordinary spawns and same-shard migrations hold one).
  if (m.a == 0 && c.reserved > 0) --c.reserved;
  c.task_queue.push_back(PendingTask{std::move(m.task), m.group, c.now});
  broadcast_occupancy_update(c);
  host::ShardState& sh = shard_of(c);
  if (telemetry_ != nullptr) {
    tel(sh.id, obs::EventKind::kTaskEnqueue, c.now, c.id, 0, m.src, m.birth);
  }
  if (!was_anchor) {
    sh.gmin_lb = std::min(sh.gmin_lb, c.now);
    ++sh.limit_epoch;
  }
  // Control message back to the parent: the task has arrived, discard
  // its birth date (paper SS II, "Time drift of dynamically created
  // tasks"). Control messages have no architectural cost.
  if (same_shard(c.id, m.src)) {
    retire_birth(core(m.src), m.birth);
    if (obs_ != nullptr) obs_->on_task_arrival(*this, m.src, c.id, m.birth);
  } else {
    Message r;
    r.src = c.id;
    r.dst = m.src;
    r.birth = m.birth;
    send_op(sh, host::HostOp::kBirthRetire, shard_id_[m.src], std::move(r));
  }
  try_migrate(c);
}

void Engine::try_migrate(CoreSim& c) {
  // Keep one task buffered when busy, two when about to become free.
  const std::size_t keep = c.fiber ? 1 : 2;
  while (c.task_queue.size() > keep) {
    const auto nbs = cfg_.topology.neighbors(c.id);
    CoreId target = net::kInvalidCore;
    const auto n = static_cast<std::uint32_t>(nbs.size());
    if (n == 0) return;
    const std::uint32_t start = c.probe_rr++ % n;
    const std::uint64_t my_load = c.task_queue.size() + (c.fiber ? 1 : 0);
    std::uint64_t best_score = ~std::uint64_t{0};
    for (std::uint32_t i = 0; i < n; ++i) {
      const CoreId nb = nbs[(start + i) % n];
      if (core(nb).dead) continue;  // fault plan: never a migration target
      // Diffusion rule: forward only down a load gradient of at least
      // two tasks (prevents ping-pong), preferring the least-loaded —
      // and with speed-aware dispatch, fastest — neighbor. Cross-shard
      // neighbors are judged by their frozen proxies.
      std::uint64_t load;
      if (same_shard(c.id, nb)) {
        const CoreSim& t = core(nb);
        load = t.task_queue.size() + t.reserved +
               ((t.fiber || !t.resumables.empty()) ? 1 : 0);
      } else {
        const host::VtProxy& p = proxy_[nb];
        load = p.occupied + (p.busy ? 1 : 0);
      }
      if (load + 2 > my_load) continue;
      std::uint64_t score = load * 64;
      if (cfg_.runtime.speed_aware_dispatch) {
        const Speed sp = cfg_.speed_of(nb);
        score = (load + 1) * 64 * sp.den / sp.num;
      }
      if (score < best_score) {
        best_score = score;
        target = nb;
      }
    }
    if (target == net::kInvalidCore) return;
    PendingTask task = std::move(c.task_queue.back());
    c.task_queue.pop_back();
    const bool local = same_shard(c.id, target);
    if (local) ++core(target).reserved;
    const Tick birth = c.now;
    record_birth(c, birth);
    host::ShardState& sh = shard_of(c);
    sh.gmin_lb = std::min(sh.gmin_lb, sat_add(birth, drift_ticks_));
    ++sh.limit_epoch;
    ++sh.stats.tasks_migrated;
    if (obs_ != nullptr) obs_->on_task_birth(*this, c.id, birth);
    post(MsgKind::kTaskSpawn, c, target, cfg_.runtime.spawn_msg_bytes,
         local ? 0 : 1, 0, std::move(task.fn), task.group, birth);
  }
}

void Engine::on_joiner_request(CoreSim& c, Message& m) {
  const bool was_anchor = is_anchor(c);
  sync_to_arrival(m.arrival, c.now);
  charge(c, scaled_cost(cfg_.runtime.msg_handle_cycles, c.speed));
  host::ShardState& sh = shard_of(c);
  if (m.fiber != nullptr) {
    // Cross-shard wake: the fiber traveled inside the message.
    c.resumables.push_back(ParkedFiber{std::move(m.fiber), m.fiber_group,
                                       std::max(m.parked_at, c.now)});
    if (!was_anchor) {
      sh.gmin_lb = std::min(sh.gmin_lb, c.now);
      ++sh.limit_epoch;
    }
    return;
  }
  // Same-shard wake: extract the fiber from the (local) group table.
  SIMANY_ASSERT(same_shard(c.id, object_home(m.a)),
                "fiberless JOINER_REQUEST for a remote-homed group ", m.a);
  Group& grp = group_at(m.a);
  for (auto it = grp.joiners.begin(); it != grp.joiners.end(); ++it) {
    if (it->core == c.id) {
      c.resumables.push_back(ParkedFiber{std::move(it->fiber),
                                         it->task_group,
                                         std::max(it->parked_at, c.now)});
      grp.joiners.erase(it);
      if (!was_anchor) {
        sh.gmin_lb = std::min(sh.gmin_lb, c.now);
        ++sh.limit_epoch;
      }
      return;
    }
  }
  throw std::logic_error("JOINER_REQUEST with no parked joiner");
}

void Engine::on_data_request(CoreSim& c, const Message& m) {
  sync_to_arrival(m.arrival, c.now);
  charge(c, scaled_cost(cfg_.runtime.msg_handle_cycles, c.speed));
  const auto id = static_cast<CellId>(m.a);
  Cell& cell = cell_at(id);
  if (!cell.locked) {
    cell.locked = true;
    cell.holder = m.src;
    cell.holder_mode = static_cast<AccessMode>(m.b);
    post(MsgKind::kDataResponse, c, m.src, cell.bytes, id);
  } else {
    cell.waiters.push_back(
        Cell::Waiter{m.src, static_cast<AccessMode>(m.b)});
  }
}

void Engine::on_cell_release(CoreSim& c, const Message& m) {
  sync_to_arrival(m.arrival, c.now);
  charge(c, scaled_cost(cfg_.runtime.msg_handle_cycles, c.speed));
  grant_next_cell_waiter(c.id, c.now, shard_of(c), static_cast<CellId>(m.a));
}

void Engine::on_lock_request(CoreSim& c, const Message& m) {
  sync_to_arrival(m.arrival, c.now);
  charge(c, scaled_cost(cfg_.runtime.msg_handle_cycles, c.speed));
  const auto id = static_cast<LockId>(m.a);
  Lock& lk = lock_at(id);
  if (!lk.held) {
    lk.held = true;
    lk.holder = m.src;
    post(MsgKind::kLockGrant, c, m.src, cfg_.runtime.ctrl_msg_bytes, id);
  } else {
    lk.waiters.push_back(m.src);
  }
}

void Engine::on_lock_release(CoreSim& c, const Message& m) {
  sync_to_arrival(m.arrival, c.now);
  charge(c, scaled_cost(cfg_.runtime.msg_handle_cycles, c.speed));
  grant_next_lock_waiter(c.id, c.now, shard_of(c), static_cast<LockId>(m.a));
}

void Engine::grant_next_cell_waiter(CoreId actor, Tick actor_now,
                                    host::ShardState& ctx, CellId id) {
  Cell& cell = cell_at(id);
  if (cell.waiters.empty()) {
    cell.locked = false;
    cell.holder = net::kInvalidCore;
    return;
  }
  const Cell::Waiter w = cell.waiters.front();
  cell.waiters.pop_front();
  cell.holder = w.core;
  cell.holder_mode = w.mode;
  if (cfg_.mem.model == mem::MemoryModel::kDistributed) {
    post_from(MsgKind::kDataResponse, actor, actor_now, ctx, w.core,
              cell.bytes, id, 0, {}, kInvalidGroup, 0, nullptr,
              kInvalidGroup, 0);
  } else {
    // Shared memory: the waiter observes the freed flag one shared
    // access after the release. The grant carries the cell's address
    // and size for waiters on other shards.
    deliver_direct(MsgKind::kDataResponse, actor, w.core,
                   actor_now + ticks(cfg_.mem.shared_latency_cycles), ctx,
                   id, cell.synth_addr, cell.bytes);
  }
}

void Engine::grant_next_lock_waiter(CoreId actor, Tick actor_now,
                                    host::ShardState& ctx, LockId id) {
  Lock& lk = lock_at(id);
  if (lk.waiters.empty()) {
    lk.held = false;
    lk.holder = net::kInvalidCore;
    return;
  }
  const CoreId w = lk.waiters.front();
  lk.waiters.pop_front();
  lk.holder = w;
  if (cfg_.mem.model == mem::MemoryModel::kDistributed) {
    post_from(MsgKind::kLockGrant, actor, actor_now, ctx, w,
              cfg_.runtime.ctrl_msg_bytes, id, 0, {}, kInvalidGroup, 0,
              nullptr, kInvalidGroup, 0);
  } else {
    deliver_direct(MsgKind::kLockGrant, actor, w,
                   actor_now + ticks(cfg_.mem.shared_latency_cycles), ctx,
                   id);
  }
}

// ---------------------------------------------------------------------
// Ctx operations (fiber context)
// ---------------------------------------------------------------------

void Engine::ctx_compute_cycles(CoreSim& c, Cycles cycles) {
  advance_execution(c, scaled_cost(cycles, c.speed));
}

void Engine::ctx_compute_mix(CoreSim& c, const timing::InstMix& mix) {
  const Cycles cycles = cost_model_.block_cost(mix, c.rng);
  Tick cost = scaled_cost(cycles, c.speed);
  if (mode_ == ExecutionMode::kCycleLevel) {
    // Explicit instruction-fetch charge through the I-cache: one line
    // access per 8 instructions, at a synthetic block address.
    const std::uint32_t instrs = mix_instructions(mix);
    if (instrs > 0) {
      const std::uint64_t base = mix_hash(mix);
      const std::uint32_t lines = (instrs + 7) / 8;
      for (std::uint32_t i = 0; i < lines; ++i) {
        const auto res =
            c.icache->access((base + i) * cfg_.mem.line_bytes, false);
        cost += ticks(1);
        if (!res.hit) cost += ticks(cfg_.mem.shared_latency_cycles);
      }
    }
  }
  advance_execution(c, cost);
}

void Engine::ctx_function_boundary(CoreSim& c) {
  if (mode_ == ExecutionMode::kVirtualTime) {
    c.l1.flush();
    if (cfg_.mem.coherence_timing) directory_.drop_core(c.id);
  }
  // Cycle-level mode models real caches; function boundaries are not
  // architectural events there.
}

Tick Engine::mem_cost_l1_hit(const CoreSim& c) const {
  // SiMany scales L1 speed with core speed (paper SS VI notes this is a
  // deliberate difference from the UNISIM baseline, visible in Fig 6).
  if (mode_ == ExecutionMode::kVirtualTime) {
    return scaled_cost(cfg_.mem.l1_latency_cycles, c.speed);
  }
  return ticks(cfg_.mem.l1_latency_cycles);
}

void Engine::ctx_mem_access(CoreSim& c, std::uint64_t addr,
                            std::uint32_t bytes, bool write) {
  if (bytes == 0) bytes = 1;
  const auto& mp = cfg_.mem;
  const std::uint64_t first = addr / mp.line_bytes;
  const std::uint64_t last = (addr + bytes - 1) / mp.line_bytes;
  const Cycles next_level = (mp.model == mem::MemoryModel::kShared)
                                ? mp.shared_latency_cycles
                                : mp.l2_latency_cycles;
  const Tick l1_hit = mem_cost_l1_hit(c);

  auto coh_action_cost = [&](const mem::CohOutcome& out) -> Tick {
    switch (out.action) {
      case mem::CohAction::kRemoteDirty:
        return ticks(mp.coh_remote_transfer_cycles +
                     mp.coh_per_hop_cycles *
                         network_.routing().hops(c.id, out.peer));
      case mem::CohAction::kInvalidate:
        return ticks(mp.coh_invalidate_cycles +
                     mp.coh_per_hop_cycles *
                         network_.routing().hops(c.id, out.peer));
      default:
        return 0;
    }
  };

  Tick cost = 0;
  if (mode_ == ExecutionMode::kCycleLevel) {
    const bool coh = (mp.model == mem::MemoryModel::kShared);
    for (std::uint64_t line = first; line <= last; ++line) {
      const std::uint64_t la = line * mp.line_bytes;
      const auto res = c.dcache->access(la, write);
      cost += ticks(mp.l1_latency_cycles);
      if (!res.hit) {
        cost += ticks(next_level);
        if (coh && res.evicted_dirty) {
          directory_.evict(c.id, res.evicted_line);
        }
        if (coh && !write) {
          cost += coh_action_cost(directory_.on_read(c.id, line));
        }
      }
      if (coh && write) {
        // simlint: allow(det-thread-local) scratch, overwritten per call
        static thread_local std::vector<net::CoreId> invalidated;
        invalidated.clear();
        const auto out = directory_.on_write(c.id, line, &invalidated);
        cost += coh_action_cost(out);
        for (net::CoreId s : invalidated) {
          if (s != c.id) core(s).dcache->invalidate_addr(la);
        }
      }
    }
  } else {
    // coherence_timing pins the run to a single shard (run()), so the
    // shared directory_ is never touched concurrently.
    const bool coh =
        mp.coherence_timing && mp.model == mem::MemoryModel::kShared;
    for (std::uint64_t line = first; line <= last; ++line) {
      const bool hit = c.l1.contains_line(line);
      if (!hit) c.l1.access(line * mp.line_bytes, 1);
      cost += hit ? l1_hit : l1_hit + ticks(next_level);
      if (coh) {
        if (write) {
          cost += coh_action_cost(directory_.on_write(c.id, line));
        } else if (!hit) {
          cost += coh_action_cost(directory_.on_read(c.id, line));
        }
      }
    }
  }
  if (fault_ != nullptr) {
    const Tick spike = fault_->draw_mem_spike(c.id);
    if (spike > 0) {
      SimStats& st = stats_of(c);
      ++st.fault_mem_spikes;
      ++st.faults_injected;
      if (obs_ != nullptr) {
        obs_->on_fault(*this, fault::FaultKind::kMemSpike, c.id, c.now,
                       spike);
      }
      if (telemetry_ != nullptr) {
        tel(shard_id_[c.id], obs::EventKind::kFault, c.now, c.id,
            static_cast<std::uint8_t>(fault::FaultKind::kMemSpike), 0, spike);
      }
      cost = sat_add(cost, spike);
    }
  }
  advance_execution(c, cost);
}

GroupId Engine::ctx_make_group(CoreSim& c) {
  c.groups.emplace_back();
  return make_object_id(c.id, static_cast<std::uint32_t>(c.groups.size() - 1));
}

bool Engine::ctx_probe(CoreSim& c) {
  const auto nbs = cfg_.topology.neighbors(c.id);
  if (nbs.empty()) {
    ++stats_of(c).tasks_inlined;
    return false;
  }
  const auto n = static_cast<std::uint32_t>(nbs.size());
  CoreId target = net::kInvalidCore;
  const std::uint32_t start = c.probe_rr++ % n;
  // Pick the least-loaded neighbor (counting its running task) that
  // still has a reservable queue slot; rotate ties so successive
  // spawns diffuse work outward instead of stacking on one core. With
  // speed-aware dispatch (paper SS VIII future work) the load is
  // weighted by inverse core speed, preferring fast cores.
  const bool stale = cfg_.runtime.broadcast_occupancy;
  std::uint64_t best_score = ~std::uint64_t{0};
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t idx = (start + i) % n;
    const CoreId nb = nbs[idx];
    if (core(nb).dead) continue;  // fault plan: never a spawn target
    // Occupancy view: live state for same-shard neighbors, the frozen
    // VtProxy for cross-shard ones, or the stale broadcast proxy
    // (paper SS IV) when enabled.
    std::uint32_t queued;
    bool busy;
    if (stale) {
      queued = cfg_.runtime.task_queue_capacity - c.occ_proxy[idx];
      busy = same_shard(c.id, nb)
                 ? (core(nb).fiber || !core(nb).resumables.empty())
                 : proxy_[nb].busy;
    } else if (same_shard(c.id, nb)) {
      const CoreSim& t = core(nb);
      queued = static_cast<std::uint32_t>(t.task_queue.size()) + t.reserved;
      busy = (t.fiber || !t.resumables.empty());
    } else {
      queued = proxy_[nb].occupied;
      busy = proxy_[nb].busy;
    }
    if (queued >= cfg_.runtime.task_queue_capacity) continue;
    const std::uint64_t load = queued + (busy ? 1 : 0);
    std::uint64_t score = load * 64;
    if (cfg_.runtime.speed_aware_dispatch) {
      // (load + 1) / speed: even among idle cores, prefer the fastest.
      const Speed sp = cfg_.speed_of(nb);
      score = (load + 1) * 64 * sp.den / sp.num;
    }
    if (score < best_score) {
      best_score = score;
      target = nb;
    }
  }
  if (target == net::kInvalidCore) {
    ++stats_of(c).tasks_inlined;
#ifdef SIMANY_TRACE_PROBE
    static int probe_fail_count = 0;
    if (++probe_fail_count % 5000 == 1) {
      std::fprintf(stderr, "[probe-fail #%d] core %u now=%llu:",
                   probe_fail_count, c.id,
                   (unsigned long long)cycles_floor(c.now));
      for (CoreId nb : nbs) {
        const CoreSim& t = core(nb);
        std::fprintf(stderr,
                     " [n%u q=%zu res=%u fib=%d wait=%d stall=%d now=%llu]",
                     nb, t.task_queue.size(), t.reserved,
                     t.fiber ? 1 : 0, t.waiting_reply ? 1 : 0,
                     t.sync_stalled ? 1 : 0,
                     (unsigned long long)cycles_floor(t.now));
      }
      std::fprintf(stderr, "\n");
    }
#endif
    return false;
  }
  ++stats_of(c).probes_sent;
  post(MsgKind::kProbe, c, target, cfg_.runtime.probe_msg_bytes);
  const Message r = await_reply(c);
  sync_to_arrival(r.arrival, c.now);
  if (r.kind == MsgKind::kProbeAck) {
    c.reserved_target = target;
    return true;
  }
  ++stats_of(c).probes_denied;
  ++stats_of(c).tasks_inlined;
  return false;
}

void Engine::ctx_spawn(CoreSim& c, GroupId g, TaskFn fn,
                       std::uint32_t arg_bytes) {
  if (c.reserved_target == net::kInvalidCore) {
    throw std::logic_error(
        "spawn without a successful probe reservation");
  }
  host::ShardState& sh = shard_of(c);
  if (g != kInvalidGroup) {
    const CoreId home = object_home(g);
    if (same_shard(c.id, home)) {
      ++group_at(g).active;
    } else {
      // The increment is enqueued before the spawn message below rides
      // the same FIFO (or any later completion), so the group can
      // never be observed empty while this task is in flight.
      Message inc;
      inc.src = c.id;
      inc.sent = c.now;
      inc.a = g;
      send_op(sh, host::HostOp::kGroupInc, shard_id_[home], std::move(inc));
    }
  }
  const Tick birth = c.now;
  record_birth(c, birth);
  sh.gmin_lb = std::min(sh.gmin_lb, sat_add(birth, drift_ticks_));
  ++sh.limit_epoch;
  ++sh.live_tasks;
  ++sh.stats.tasks_spawned;
  if (obs_ != nullptr) obs_->on_task_birth(*this, c.id, birth);
  const std::uint32_t bytes =
      arg_bytes != 0 ? arg_bytes : cfg_.runtime.spawn_msg_bytes;
  const CoreId target = c.reserved_target;
  c.reserved_target = net::kInvalidCore;
  post(MsgKind::kTaskSpawn, c, target, bytes, 0, 0, std::move(fn), g, birth);
}

void Engine::ctx_join(CoreSim& c, GroupId g) {
  const CoreId home = object_home(g);
  if (same_shard(c.id, home)) {
    Group& grp = group_at(g);
    if (grp.active == 0) return;
  }
  // Cross-shard joins always park: only the home shard knows whether
  // the group is empty (the kJoinQuery sent by after_fiber_return
  // bounces straight back if it is).
  ++stats_of(c).joins_suspended;
  c.park_pending = true;
  c.park_group = g;
  Fiber::yield();
  if (cancelling_) throw FiberUnwind{};
  // Resumed from the core's resumables queue; the join context-switch
  // cost was charged by start_next_work.
}

LockId Engine::ctx_make_lock(CoreSim& c) {
  c.locks.push_back(Lock{c.id, false, net::kInvalidCore, {}});
  return make_object_id(c.id, static_cast<std::uint32_t>(c.locks.size() - 1));
}

void Engine::ctx_lock(CoreSim& c, LockId id) {
  const bool distributed = cfg_.mem.model == mem::MemoryModel::kDistributed;
  const CoreId home = object_home(id);
  if (same_shard(c.id, home)) {
    Lock& lk = lock_at(id);
    if (lk.held && lk.holder == c.id) {
      throw std::logic_error(
          "recursive lock acquisition (non-reentrant)");
    }
    if (distributed && lk.home != c.id) {
      post(MsgKind::kLockRequest, c, lk.home, cfg_.runtime.ctrl_msg_bytes,
           id);
      const Message r = await_reply(c);
      sync_to_arrival(r.arrival, c.now);
      ++c.hold_depth;
      if (obs_ != nullptr) obs_->on_lock_acquired(*this, c.id, id);
      return;
    }
    // Local (or shared-memory) lock: one uncached atomic access.
    charge(c, ticks(distributed ? cfg_.mem.l2_latency_cycles
                                : cfg_.mem.shared_latency_cycles));
    if (lk.held) {
      lk.waiters.push_back(c.id);
      const Message r = await_reply(c);
      sync_to_arrival(r.arrival, c.now);
    } else {
      lk.held = true;
      lk.holder = c.id;
    }
    ++c.hold_depth;
    if (obs_ != nullptr) obs_->on_lock_acquired(*this, c.id, id);
    if (telemetry_ != nullptr) {
      tel(shard_id_[c.id], obs::EventKind::kLockAcquire, c.now, c.id, 0, 0,
          id);
    }
    return;
  }
  // Cross-shard: the home table is not readable here. Recursion is
  // detected by the home shard when it applies the attempt.
  if (distributed) {
    post(MsgKind::kLockRequest, c, home, cfg_.runtime.ctrl_msg_bytes, id);
    const Message r = await_reply(c);
    sync_to_arrival(r.arrival, c.now);
    ++c.hold_depth;
    if (obs_ != nullptr) obs_->on_lock_acquired(*this, c.id, id);
    if (telemetry_ != nullptr) {
      tel(shard_id_[c.id], obs::EventKind::kLockAcquire, c.now, c.id, 0, 0,
          id);
    }
    return;
  }
  // Shared memory: charge the atomic access locally (as the seed does
  // before touching the table), then let the home shard arbitrate.
  charge(c, ticks(cfg_.mem.shared_latency_cycles));
  Message at;
  at.src = c.id;
  at.dst = home;
  at.sent = c.now;
  at.a = id;
  send_op(shard_of(c), host::HostOp::kLockAttempt, shard_id_[home],
          std::move(at));
  const Message r = await_reply(c);
  sync_to_arrival(r.arrival, c.now);
  ++c.hold_depth;
  if (obs_ != nullptr) obs_->on_lock_acquired(*this, c.id, id);
  if (telemetry_ != nullptr) {
    tel(shard_id_[c.id], obs::EventKind::kLockAcquire, c.now, c.id, 0, 0, id);
  }
}

void Engine::ctx_unlock(CoreSim& c, LockId id) {
  const bool distributed = cfg_.mem.model == mem::MemoryModel::kDistributed;
  const CoreId home = object_home(id);
  if (same_shard(c.id, home)) {
    Lock& lk = lock_at(id);
    if (!lk.held || lk.holder != c.id) {
      throw std::logic_error("unlock of a lock this core does not hold");
    }
    SIMANY_ASSERT(c.hold_depth > 0, "core ", c.id, " at vt=", c.now,
                  " unlocking lock ", id, " with hold_depth 0");
    --c.hold_depth;
    if (obs_ != nullptr) obs_->on_lock_released(*this, c.id, id);
    if (telemetry_ != nullptr) {
      tel(shard_id_[c.id], obs::EventKind::kLockRelease, c.now, c.id, 0, 0,
          id);
    }
    if (distributed && lk.home != c.id) {
      // The release travels asynchronously; clear the holder now so a
      // subsequent acquisition by this core is not mistaken for
      // recursion (per-pair FIFO delivers the release before any later
      // request from this core).
      lk.holder = net::kInvalidCore;
      post(MsgKind::kLockRelease, c, lk.home, cfg_.runtime.ctrl_msg_bytes,
           id);
      return;
    }
    charge(c, ticks(distributed ? cfg_.mem.l2_latency_cycles
                                : cfg_.mem.shared_latency_cycles));
    grant_next_lock_waiter(c.id, c.now, shard_of(c), id);
    return;
  }
  // Cross-shard: the table lives on the home shard, which asserts that
  // this core is the holder when the release lands. hold_depth is the
  // only holder-side evidence available for the early error.
  if (c.hold_depth == 0) {
    throw std::logic_error("unlock of a lock this core does not hold");
  }
  --c.hold_depth;
  if (obs_ != nullptr) obs_->on_lock_released(*this, c.id, id);
  if (telemetry_ != nullptr) {
    tel(shard_id_[c.id], obs::EventKind::kLockRelease, c.now, c.id, 0, 0, id);
  }
  if (distributed) {
    post(MsgKind::kLockRelease, c, home, cfg_.runtime.ctrl_msg_bytes, id);
    return;
  }
  charge(c, ticks(cfg_.mem.shared_latency_cycles));
  Message f;
  f.src = c.id;
  f.dst = home;
  f.sent = c.now;
  f.a = id;
  send_op(shard_of(c), host::HostOp::kLockFree, shard_id_[home],
          std::move(f));
}

CellId Engine::ctx_make_cell(CoreSim& c, std::uint32_t bytes, CoreId home) {
  Cell cell;
  cell.home = home;
  cell.bytes = bytes != 0 ? bytes : 8;
  // Cells live in their own high region of the simulated address
  // space, disjoint from runtime::synth_alloc ranges.
  const std::uint64_t span =
      (cell.bytes + cfg_.mem.line_bytes - 1) / cfg_.mem.line_bytes + 1;
  if (num_shards_ == 1) {
    // Single shard: keep the seed's global allocation sequence so
    // cycle-level cache set indices are bit-identical to it.
    cell.synth_addr =
        (std::uint64_t{1} << 56) + synth_addr_next_ * cfg_.mem.line_bytes;
    synth_addr_next_ += span;
  } else {
    // Parallel: per-creator regions keep allocation race-free and
    // independent of cross-shard interleaving.
    SIMANY_ASSERT(c.id < (1u << 12),
                  "parallel cell allocation supports < 4096 cores");
    cell.synth_addr = (std::uint64_t{1} << 56) +
                      (static_cast<std::uint64_t>(c.id) << 44) +
                      c.synth_addr_next * cfg_.mem.line_bytes;
    c.synth_addr_next += span;
  }
  SIMANY_ASSERT(c.cell_seq < (1u << 20),
                "per-core cell id space exhausted");
  const CellId id = make_object_id(home, (c.id << 20) | c.cell_seq);
  ++c.cell_seq;
  if (same_shard(c.id, home)) {
    core(home).cells.emplace(id, std::move(cell));
  } else {
    // Per-pair FIFO: the create lands before any kDataRequest or
    // kCellAttempt this core sends for the new cell.
    Message m;
    m.src = c.id;
    m.dst = home;
    m.sent = c.now;
    m.a = id;
    m.b = cell.synth_addr;
    m.bytes = cell.bytes;
    send_op(shard_of(c), host::HostOp::kCellCreate, shard_id_[home],
            std::move(m));
  }
  return id;
}

void Engine::ctx_cell_acquire(CoreSim& c, CellId id, AccessMode mode) {
  const bool distributed = cfg_.mem.model == mem::MemoryModel::kDistributed;
  const CoreId home = object_home(id);
  if (distributed && home != c.id) {
    post(MsgKind::kDataRequest, c, home, cfg_.runtime.ctrl_msg_bytes, id,
         static_cast<std::uint64_t>(mode));
    const Message r = await_reply(c);
    sync_to_arrival(r.arrival, c.now);
    ++c.hold_depth;
    if (obs_ != nullptr) obs_->on_cell_acquired(*this, c.id, id);
    if (telemetry_ != nullptr) {
      tel(shard_id_[c.id], obs::EventKind::kCellAcquire, c.now, c.id,
          static_cast<std::uint8_t>(mode), 0, id);
    }
    if (!same_shard(c.id, home)) {
      c.held_cells[id] = CoreSim::HeldCell{mode, r.bytes, r.b};
    }
    // Data lands in the local L2 and is accessed from there.
    charge(c, ticks(cfg_.mem.l2_latency_cycles));
    return;
  }
  if (same_shard(c.id, home)) {
    Cell& cell = cell_at(id);
    if (cell.locked) {
      cell.waiters.push_back(Cell::Waiter{c.id, mode});
      const Message r = await_reply(c);
      sync_to_arrival(r.arrival, c.now);
    } else {
      cell.locked = true;
      cell.holder = c.id;
      cell.holder_mode = mode;
    }
    ++c.hold_depth;
    if (obs_ != nullptr) obs_->on_cell_acquired(*this, c.id, id);
    if (telemetry_ != nullptr) {
      tel(shard_id_[c.id], obs::EventKind::kCellAcquire, c.now, c.id,
          static_cast<std::uint8_t>(mode), 0, id);
    }
    if (distributed) {
      charge(c, ticks(cfg_.mem.l2_latency_cycles));
    } else {
      ctx_mem_access(c, cell.synth_addr, cell.bytes, /*write=*/false);
    }
    return;
  }
  // Shared memory, cross-shard home: arbitration happens at the home
  // shard; the grant carries the cell's address and size so the data
  // access (and a later write-back) need no remote table read.
  Message at;
  at.src = c.id;
  at.dst = home;
  at.sent = c.now;
  at.a = id;
  at.b = static_cast<std::uint64_t>(mode);
  send_op(shard_of(c), host::HostOp::kCellAttempt, shard_id_[home],
          std::move(at));
  const Message r = await_reply(c);
  sync_to_arrival(r.arrival, c.now);
  ++c.hold_depth;
  if (obs_ != nullptr) obs_->on_cell_acquired(*this, c.id, id);
  if (telemetry_ != nullptr) {
    tel(shard_id_[c.id], obs::EventKind::kCellAcquire, c.now, c.id,
        static_cast<std::uint8_t>(mode), 0, id);
  }
  c.held_cells[id] = CoreSim::HeldCell{mode, r.bytes, r.b};
  ctx_mem_access(c, r.b, r.bytes, /*write=*/false);
}

void Engine::ctx_cell_release(CoreSim& c, CellId id) {
  const bool distributed = cfg_.mem.model == mem::MemoryModel::kDistributed;
  const CoreId home = object_home(id);
  if (!same_shard(c.id, home)) {
    const auto it = c.held_cells.find(id);
    if (it == c.held_cells.end()) {
      throw std::logic_error("release of a cell this core does not hold");
    }
    SIMANY_ASSERT(c.hold_depth > 0, "core ", c.id, " at vt=", c.now,
                  " releasing cell ", id, " with hold_depth 0");
    const CoreSim::HeldCell held = it->second;
    c.held_cells.erase(it);
    const bool wrote = held.mode == AccessMode::kWrite;
    if (distributed) {
      const std::uint32_t bytes =
          wrote ? std::max(held.bytes, cfg_.runtime.ctrl_msg_bytes)
                : cfg_.runtime.ctrl_msg_bytes;
      post(MsgKind::kCellRelease, c, home, bytes, id, wrote ? 1 : 0);
      --c.hold_depth;
      if (obs_ != nullptr) obs_->on_cell_released(*this, c.id, id);
      if (telemetry_ != nullptr) {
        tel(shard_id_[c.id], obs::EventKind::kCellRelease, c.now, c.id, 0, 0,
            id);
      }
      return;
    }
    if (wrote) {
      // Write-back of the modified data to shared memory while the
      // holder exemption is still in force (paper SS II-B).
      ctx_mem_access(c, held.synth_addr, held.bytes, /*write=*/true);
    }
    --c.hold_depth;
    if (obs_ != nullptr) obs_->on_cell_released(*this, c.id, id);
    if (telemetry_ != nullptr) {
      tel(shard_id_[c.id], obs::EventKind::kCellRelease, c.now, c.id, 0, 0,
          id);
    }
    Message f;
    f.src = c.id;
    f.dst = home;
    f.sent = c.now;
    f.a = id;
    send_op(shard_of(c), host::HostOp::kCellFree, shard_id_[home],
            std::move(f));
    return;
  }
  Cell& cell = cell_at(id);
  if (!cell.locked || cell.holder != c.id) {
    throw std::logic_error("release of a cell this core does not hold");
  }
  SIMANY_ASSERT(c.hold_depth > 0, "core ", c.id, " at vt=", c.now,
                " releasing cell ", id, " with hold_depth 0");
  const bool wrote = cell.holder_mode == AccessMode::kWrite;
  if (distributed && cell.home != c.id) {
    const std::uint32_t bytes =
        wrote ? std::max(cell.bytes, cfg_.runtime.ctrl_msg_bytes)
              : cfg_.runtime.ctrl_msg_bytes;
    cell.holder = net::kInvalidCore;  // release is in flight
    post(MsgKind::kCellRelease, c, cell.home, bytes, id, wrote ? 1 : 0);
    --c.hold_depth;
    if (obs_ != nullptr) obs_->on_cell_released(*this, c.id, id);
    if (telemetry_ != nullptr) {
      tel(shard_id_[c.id], obs::EventKind::kCellRelease, c.now, c.id, 0, 0,
          id);
    }
    return;
  }
  if (!distributed && wrote) {
    // Write-back of the modified data to shared memory. The holder
    // exemption must still be in force here: the write-back may stall
    // on spatial sync, and a waiter behind us could be the very core
    // we would be waiting for (paper SS II-B).
    ctx_mem_access(c, cell.synth_addr, cell.bytes, /*write=*/true);
  }
  grant_next_cell_waiter(c.id, c.now, shard_of(c), id);
  --c.hold_depth;
  if (obs_ != nullptr) obs_->on_cell_released(*this, c.id, id);
  if (telemetry_ != nullptr) {
    tel(shard_id_[c.id], obs::EventKind::kCellRelease, c.now, c.id, 0, 0, id);
  }
}

}  // namespace simany
