// Deterministic pseudo-random number generation.
//
// Every source of randomness in the simulator (branch-predictor outcomes,
// workload generators, benchmark pivots) draws from an explicitly seeded
// xoshiro256** stream, so any run is exactly reproducible from its seed.
// The engine is single-threaded (paper SS III), which makes this total.
#pragma once

#include <array>
#include <cstdint>

namespace simany {

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool chance(double p) noexcept { return uniform() < p; }

  /// The raw 256-bit stream state, for checkpointing (src/snapshot):
  /// set_state(state()) round-trips, so a restored stream continues
  /// exactly where the captured one stood.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

  // UniformRandomBitGenerator interface, so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace simany
