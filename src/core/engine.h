// The SiMany discrete-event simulation engine.
//
// One Engine instance simulates one program run on one architecture.
// Simulated cores are userland fibers scheduled cooperatively (paper
// SS III), and all randomness derives from the config seed.
//
// The engine supports two execution modes sharing the same programming
// model, network and run-time protocols:
//
//  * kVirtualTime — SiMany proper. Cores run natively for as long as
//    spatial synchronization allows: a core may be ahead of the
//    anchored virtual time reachable through the topology by at most
//    T per hop (paper SS II). Idle cores are handled by the shadow-time
//    rule, realized here as BFS transparency: an idle core contributes
//    exactly min(neighbors) + T, which is what continuing the search
//    through it computes. In-flight spawned tasks constrain their
//    parent through tracked birth times, and lock/cell holders are
//    temporarily exempt from stalling (deadlock avoidance).
//
//  * kCycleLevel — the conservative reference baseline standing in for
//    the paper's UNISIM-based simulator. The scheduler always advances
//    the earliest actionable core, compute blocks are chopped into
//    small quanta, data goes through real set-associative split L1
//    caches with a full directory-coherence cost model, and
//    instruction fetch is charged explicitly.
//
// Host execution (src/host) is layered on top: cores are partitioned
// into shards, and each shard runs the event loop below over its own
// cores in bulk-synchronous rounds. With one shard this degenerates to
// exactly the classic sequential engine (HostMode::kSequential); with
// several, worker threads run rounds concurrently, exchanging
// cross-shard effects through SPSC mailboxes drained at round
// boundaries and reading remote synchronization state from frozen
// VtProxy snapshots. Every cross-core interaction keeps its direct
// code path when the peer core belongs to the same shard and takes the
// mailbox variant only across shards, so a 1-shard parallel run is
// bit-identical to the sequential engine by construction.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "config/arch_config.h"
#include "core/engine_observer.h"
#include "core/fiber.h"
#include "core/phase_annotations.h"
#include "core/inbox.h"
#include "core/inspect.h"
#include "core/message.h"
#include "core/rng.h"
#include "core/sim_error.h"
#include "core/sim_stats.h"
#include "core/sim_types.h"
#include "core/task_ctx.h"
#include "core/trace.h"
#include "core/vtime.h"
#include "host/shard.h"
#include "host/spsc_mailbox.h"
#include "mem/directory.h"
#include "mem/pessimistic_l1.h"
#include "mem/setassoc_cache.h"
#include "net/network.h"

namespace simany {

namespace host {
class ParallelHost;
}
namespace fault {
class FaultInjector;
struct MsgFaults;
}
namespace snapshot {
class RunHook;
class EngineCodec;
class Controller;
struct SnapshotPlan;
}
namespace obs {
class Telemetry;
class StatusReporter;
enum class EventKind : std::uint8_t;
}

enum class ExecutionMode : std::uint8_t {
  kVirtualTime,  // SiMany: spatial synchronization, abstract models
  kCycleLevel,   // conservative baseline: global order, detailed caches
};

class Engine {
 public:
  explicit Engine(ArchConfig cfg,
                  ExecutionMode mode = ExecutionMode::kVirtualTime);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs `root` on core 0 at virtual time 0 until every task has
  /// completed and all messages are drained. One-shot: a second call
  /// throws. Failures surface as SimError (a std::runtime_error):
  /// kDeadlock on simulated deadlock, kDeadlineExceeded /
  /// kVtimeBudgetExceeded / kLivelock when a guard budget trips
  /// (config.guard), kCancelled after request_cancel(). All live
  /// fibers are unwound (destructors run, stacks recycled) before the
  /// throw, and partial stats/telemetry are flushed.
  SimStats run(TaskFn root);

  [[nodiscard]] const ArchConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] ExecutionMode mode() const noexcept { return mode_; }
  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }

  /// Default compute-chopping quantum for kCycleLevel
  /// (ArchConfig::cl_quantum_cycles overrides).
  static constexpr Cycles kClQuantumCycles = 16;

  /// Attaches an event observer (or nullptr to detach). The sink must
  /// outlive run(). See stats/trace_sinks.h for ready-made sinks.
  /// Attaching a trace sink pins the run to sequential host execution.
  void set_trace(TraceSink* sink) noexcept { trace_ = sink; }

  /// Attaches a validation/instrumentation observer (or nullptr to
  /// detach). Observers see every engine transition — see
  /// core/engine_observer.h and the checkers in src/check. The
  /// observer must outlive run(). Costs one null-check per event when
  /// detached. Attaching an observer pins the run to sequential host
  /// execution (the checkers assume a single global event order).
  void set_observer(EngineObserver* obs) noexcept { obs_ = obs; }

  /// Attaches the shard-aware telemetry layer (or nullptr to detach).
  /// Unlike set_trace / set_observer, this does NOT pin the run to the
  /// sequential host: events are buffered per shard and merged into a
  /// canonical stream at the end of run() (src/obs, the Telemetry
  /// object must outlive run()). Costs one null-check per emission
  /// point when detached.
  void set_telemetry(obs::Telemetry* t) noexcept { telemetry_ = t; }

  /// Attaches the live run-status heartbeat (or nullptr to detach).
  /// Like telemetry, this never pins the host mode and never perturbs
  /// the simulated timeline: samples are taken read-only inside the
  /// serial barrier phase and written to the reporter's file. The
  /// reporter must outlive run().
  void set_status(obs::StatusReporter* s) noexcept { status_ = s; }

  /// Builds a structured snapshot of the complete simulation state
  /// (core clocks, births, lock/cell/group tables, counters). Slow;
  /// meant for validators and deadlock diagnostics.
  [[nodiscard]] EngineInspect inspect() const;

  // ---- Checkpoint/restore (src/snapshot; see docs/snapshot.md) -------
  // Declared here, defined in the snapshot library: the core only
  // drives the snapshot::RunHook virtuals, so programs that never
  // snapshot carry no snapshot code.

  /// Arms checkpoint capture for the coming run(): at the plan's
  /// quanta cursor(s), the quiesced engine state is serialized to the
  /// plan's path in the `simany-snapshot-v1` format. Must be called
  /// before run(); throws std::logic_error afterwards.
  void snapshot_to(const snapshot::SnapshotPlan& plan);

  /// Arms a restore for the coming run(): the snapshot at `path` is
  /// read and identity-checked (config/workload/seed/mode fingerprints
  /// must match this engine; SimError{kSnapshotCorrupt/kSnapshotMismatch}
  /// otherwise), its shard geometry is adopted, and run() then replays
  /// the identical timeline, byte-verifies the reconstructed state
  /// against the stored image at the snapshot cursor, and continues to
  /// completion. `workload_fp` is the caller's fingerprint of the root
  /// task, matched against the writer's. Attach telemetry before
  /// calling this, exactly as the capture run did.
  void restore_from(const std::string& path, std::uint64_t workload_fp,
                    const std::vector<std::uint64_t>& forced_cursors = {});

  /// Append a RunHook alongside whatever snapshot_to/restore_from
  /// armed (wrapping coexisting hooks in a snapshot::HookChain).
  /// Budgets combine by minimum; notifications fan out in arming
  /// order. The autosave ring (src/recover) registers through this so
  /// a resume's verify hook and the ongoing capture hook coexist.
  /// Must be called before run(); throws std::logic_error afterwards.
  void add_run_hook(std::unique_ptr<snapshot::RunHook> hook);

  /// FNV-1a64 digest of the canonical state image (snapshot codec).
  /// Only meaningful at quiesce points: between runs, inside a serial
  /// barrier phase, or from an observer callback on the sequential
  /// host.
  [[nodiscard]] std::uint64_t state_digest() const;

  /// Requests cooperative cancellation of a running simulation.
  /// Async-signal-safe and callable from any thread: the run aborts at
  /// the next guard poll / barrier with SimError{kCancelled}, after
  /// unwinding every live fiber (no leaked stacks). A no-op once the
  /// run has finished.
  void request_cancel() noexcept {
    std::uint8_t expected = 0;
    cancel_code_.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(SimErrorCode::kCancelled),
        std::memory_order_relaxed);
  }

 private:
  friend class host::ParallelHost;
  // Snapshot subsystem: the codec serializes engine internals, the
  // controller reads identity fields at capture (src/snapshot).
  friend class snapshot::EngineCodec;
  friend class snapshot::Controller;

  // ---- Per-core simulation state ------------------------------------

  struct PendingTask {
    TaskFn fn;
    GroupId group = kInvalidGroup;
    Tick arrival = 0;
  };

  struct ParkedFiber {
    std::unique_ptr<Fiber> fiber;
    GroupId task_group = kInvalidGroup;  // group the task decrements
    Tick parked_at = 0;
  };

  class Ctx;  // TaskCtx implementation bound to one core

  // ---- Run-time system tables (homed: each object lives in the table
  // of its home core; ids encode home + per-core sequence, see
  // sim_types.h) --------------------------------------------------------

  struct Group {
    std::uint32_t active = 0;
    struct Joiner {
      CoreId core;
      std::unique_ptr<Fiber> fiber;
      GroupId task_group;  // group of the *joining* task itself
      Tick parked_at;
    };
    std::vector<Joiner> joiners;
  };

  struct Cell {
    CoreId home = 0;
    std::uint32_t bytes = 0;
    std::uint64_t synth_addr = 0;  // synthetic address for cache models
    bool locked = false;
    CoreId holder = net::kInvalidCore;
    AccessMode holder_mode = AccessMode::kRead;
    struct Waiter {
      CoreId core;
      AccessMode mode;
    };
    std::deque<Waiter> waiters;
  };

  struct Lock {
    CoreId home = 0;
    bool held = false;
    CoreId holder = net::kInvalidCore;
    std::deque<CoreId> waiters;
  };

  struct CoreSim {
    CoreId id = 0;
    Speed speed;
    Tick now = 0;
    Tick busy = 0;

    InboxQueue inbox;
    std::deque<PendingTask> task_queue;
    std::uint32_t reserved = 0;  // probe reservations not yet arrived
    std::vector<Tick> births;    // in-flight spawns from this core
    /// Incrementally maintained min of `births` (kTickInfinity when
    /// empty) — the drift check consults this on every BFS visit.
    Tick births_min = kTickInfinity;

    std::unique_ptr<Fiber> fiber;         // current task
    GroupId fiber_group = kInvalidGroup;  // group of the current task
    std::deque<ParkedFiber> resumables;   // woken joiners

    int hold_depth = 0;  // locks/cells held -> spatial-sync exemption
    /// Permanently disabled by the fault plan: never a probe/migration
    /// target, never executes tasks; the NoC interface stays alive.
    /// Immutable after construction, so cross-shard reads are safe.
    bool dead = false;
    /// One-time accounting latch for a fault-plan wedged core (see
    /// fault::FaultInjector::core_wedged): set when the wedge loop
    /// first engages and books its fault event.
    bool wedge_reported = false;
    bool sync_stalled = false;
    bool waiting_reply = false;
    bool park_pending = false;   // fiber asked to be parked on a group
    GroupId park_group = kInvalidGroup;
    bool reply_ready = false;
    Message reply;

    CoreId reserved_target = net::kInvalidCore;  // granted probe target
    std::uint32_t probe_rr = 0;  // rotating probe start index
    /// Stale per-neighbor free-slot proxies (broadcast_occupancy mode),
    /// indexed like topology.neighbors(id).
    std::vector<std::uint32_t> occ_proxy;
    Tick cached_limit = 0;
    std::uint64_t limit_epoch = 0;  // validity tag for cached_limit

    bool in_ready = false;
    std::uint64_t cl_stamp = 0;  // validity tag for cycle-level heap
    Rng rng;
    mem::PessimisticL1 l1;
    // Cycle-level mode only:
    std::unique_ptr<mem::SetAssocCache> dcache;
    std::unique_ptr<mem::SetAssocCache> icache;

    // Homed run-time tables owned by this core (deques: element
    // references must survive growth, because fibers hold references
    // across yields while other tasks create groups/locks).
    std::deque<Group> groups;
    std::deque<Lock> locks;
    std::unordered_map<CellId, Cell> cells;
    std::uint32_t cell_seq = 0;         // this core's cell creations
    std::uint64_t synth_addr_next = 1;  // per-creator synthetic space

    /// Cells this core holds whose home lives in another shard: the
    /// release path needs the access mode / payload size / synthetic
    /// address without reading the remote home table.
    struct HeldCell {
      AccessMode mode;
      std::uint32_t bytes;
      std::uint64_t synth_addr;
    };
    std::unordered_map<CellId, HeldCell> held_cells;

    std::unique_ptr<Ctx> ctx;
  };

  // ---- Scheduling ------------------------------------------------------

  SIMANY_SERIAL_ONLY void main_loop_cl();
  SIMANY_WORKER_PHASE void run_core_vt(CoreSim& c);
  void run_core_cl(CoreSim& c);
  /// Index of the earliest actionable core (CL mode), or kInvalidCore.
  /// Reference O(n) scan, kept as the SIMANY_CHECKED oracle for the
  /// incremental heap (cl_pick).
  [[nodiscard]] CoreId pick_min_time_core() const;
  [[nodiscard]] CoreId cl_pick();
  void cl_push(CoreSim& c);
  [[nodiscard]] Tick cl_key(const CoreSim& c) const;
  [[nodiscard]] bool actionable(const CoreSim& c) const;
  void mark_ready(CoreSim& c);
  SIMANY_WORKER_PHASE void process_inbox(CoreSim& c);
  SIMANY_WORKER_PHASE void resume_fiber(CoreSim& c);
  void after_fiber_return(CoreSim& c);
  bool start_next_work(CoreSim& c);  // resumables / task queue
  void task_done(CoreSim& c);
  /// Group emptied at its home: wake every joiner. `completer`/`at`
  /// identify the finishing task (message timing source).
  void group_complete(Group& grp, GroupId g, CoreId completer, Tick at);
  SIMANY_WORKER_PHASE bool wake_sweep(host::ShardState& sh);  // woke any?

  /// Push-migration (paper SS IV): when this core is overloaded —
  /// running a task with more queued behind it — forward queued tasks
  /// to strictly idle neighbors so work diffuses through the mesh.
  SIMANY_WORKER_PHASE SIMANY_SHARD_AFFINE void try_migrate(CoreSim& c);

  // ---- Host-parallel execution (src/host layer) ------------------------

  SIMANY_SERIAL_ONLY void host_setup(std::uint32_t shards);
  /// One shard round: drain incoming mailboxes, run the event loop for
  /// up to `budget` quanta (or until the shard has nothing runnable),
  /// publish fresh VtProxy snapshots.
  SIMANY_WORKER_PHASE void host_round(host::ShardState& sh,
                                      std::uint64_t budget);
  SIMANY_WORKER_PHASE SIMANY_MAILBOX_CONSUMER
  void host_drain(host::ShardState& sh);
  SIMANY_WORKER_PHASE void host_loop(host::ShardState& sh,
                                     std::uint64_t budget);
  SIMANY_WORKER_PHASE void host_publish(host::ShardState& sh);
  /// Serial barrier phase (single-threaded): termination / deadlock
  /// resolution. Returns true when the simulation is finished.
  SIMANY_SERIAL_ONLY bool host_serial_phase();
  SIMANY_WORKER_PHASE void apply_host_op(host::ShardState& sh,
                                         host::Routed r);
  SIMANY_WORKER_PHASE SIMANY_MAILBOX_PRODUCER
  void send_op(host::ShardState& ctx, host::HostOp op, std::uint32_t dst_shard,
               Message m);
  SIMANY_SERIAL_ONLY void finalize_stats();

  // ---- Supervision / cooperative cancellation (src/guard config) --------

  /// Primes guard state at the top of run(): wall-clock anchor, budget
  /// conversions, per-shard poll cadence.
  SIMANY_SERIAL_ONLY void guard_setup();
  /// Cheap in-round check, every guard.poll_quanta quanta inside the
  /// shard's own loop: wall deadline, virtual-time budget, per-shard
  /// livelock watchdog. On a trip it only flags — the abort itself is
  /// funneled to the single-threaded serial phase.
  SIMANY_WORKER_PHASE void guard_poll(host::ShardState& sh);
  /// Serial-phase (single-threaded) side: global watchdog across
  /// rounds, and the abort when any guard flag is up.
  SIMANY_SERIAL_ONLY void guard_serial_check();
  /// Unwinds every live fiber, flushes partial stats/telemetry and
  /// throws SimError{code} with progress context. Single-threaded.
  SIMANY_SERIAL_ONLY [[noreturn]] void guard_abort(SimErrorCode code);
  /// Resumes every suspended fiber with cancelling_ set so each throws
  /// FiberUnwind through the task stack (destructors run, stacks are
  /// recycled). Covers installed fibers, resumables, parked joiners and
  /// fibers riding in mailbox messages / inboxes.
  SIMANY_SERIAL_ONLY void unwind_all_fibers();
  /// Flushes partial results (stats merge + telemetry finalize) so a
  /// failed run still yields usable diagnostics.
  SIMANY_SERIAL_ONLY void guard_flush_partial();
  /// Wraps a shard-worker exception: SimError passes through (shard
  /// annotated), std::logic_error passes through (protocol misuse),
  /// anything else becomes SimError{kWorkerException} with shard
  /// context. Rethrows after unwinding live fibers.
  SIMANY_SERIAL_ONLY [[noreturn]] void guard_rethrow_worker(
      std::uint32_t shard, std::exception_ptr ep);
  /// Inbox-depth resource guard + peak gauge, at both delivery sites
  /// (enqueue_message and apply_host_op kDeliver).
  SIMANY_WORKER_PHASE void guard_check_inbox(host::ShardState& sh,
                                             const CoreSim& dst);
  /// Fault-plan wedged core (FaultKind::kCoreWedge): books the fault
  /// once, then stalls forever without charging virtual time — the
  /// deterministic livelock vector the watchdog tests detect. Only
  /// exits by cooperative unwind.
  [[noreturn]] void wedge_spin(CoreSim& c);

  [[nodiscard]] host::ShardState& shard_of(const CoreSim& c) {
    return *shards_[shard_id_[c.id]];
  }
  [[nodiscard]] bool same_shard(CoreId a, CoreId b) const {
    return shard_id_[a] == shard_id_[b];
  }
  [[nodiscard]] SimStats& stats_of(const CoreSim& c) {
    return shards_[shard_id_[c.id]]->stats;
  }
  [[nodiscard]] host::SpscMailbox<host::Routed>& mailbox(std::uint32_t src,
                                                         std::uint32_t dst) {
    return *mail_[src * num_shards_ + dst];
  }

  // ---- Homed-table access (home must be shard-local or at a barrier) --

  [[nodiscard]] Group& group_at(GroupId id) {
    return core(object_home(id)).groups[object_index(id)];
  }
  [[nodiscard]] Lock& lock_at(LockId id) {
    return core(object_home(id)).locks[object_index(id)];
  }
  [[nodiscard]] Cell& cell_at(CellId id) {
    return core(object_home(id)).cells.at(id);
  }

  // ---- Spatial synchronization ----------------------------------------

  /// Maximum virtual time core `c` may reach right now.
  [[nodiscard]] Tick drift_limit(const CoreSim& c);
  [[nodiscard]] Tick bounded_slack_limit(const CoreSim& viewer) const;
  void sample_parallelism(host::ShardState& sh);
  [[nodiscard]] bool is_anchor(const CoreSim& c) const;
  void refresh_gmin(host::ShardState& sh);
  /// Anchor/births view of a core for drift computations: live state
  /// for same-shard cores, the frozen VtProxy snapshot otherwise.
  void drift_view(const CoreSim& viewer, CoreId id, bool& anchor,
                  Tick& now, Tick& births_min) const;

  /// Advances `c` by `cost` ticks of execution, stalling as spatial
  /// synchronization requires (VT) or chopping into quanta (CL).
  /// Must be called from `c`'s fiber.
  SIMANY_WORKER_PHASE void advance_execution(CoreSim& c, Tick cost);

  // ---- Messaging --------------------------------------------------------

  SIMANY_WORKER_PHASE
  void post(MsgKind kind, CoreSim& from, CoreId to, std::uint32_t bytes,
            std::uint64_t a = 0, std::uint64_t b = 0, TaskFn task = {},
            GroupId group = kInvalidGroup, Tick birth = 0,
            std::unique_ptr<Fiber> fiber = nullptr,
            GroupId fiber_group = kInvalidGroup, Tick parked_at = 0);
  /// post() with an explicit source clock and lane context (used when
  /// the sending core is remote, e.g. a group completion applied at the
  /// group's home shard on behalf of the finishing core).
  void post_from(MsgKind kind, CoreId from, Tick from_now,
                 host::ShardState& ctx, CoreId to, std::uint32_t bytes,
                 std::uint64_t a, std::uint64_t b, TaskFn task,
                 GroupId group, Tick birth, std::unique_ptr<Fiber> fiber,
                 GroupId fiber_group, Tick parked_at);
  /// Synthetic local delivery at an explicit arrival time (used for
  /// shared-memory lock/cell handoff, which involves no real message).
  void deliver_direct(MsgKind kind, CoreId from, CoreId to, Tick arrival,
                      host::ShardState& ctx, std::uint64_t a = 0,
                      std::uint64_t b = 0, std::uint32_t bytes = 0);
  /// Hands a finished Message to its destination: a destination inside
  /// `ctx` (the executing shard) goes straight into the inbox, anything
  /// else rides the mailbox.
  SIMANY_WORKER_PHASE SIMANY_MAILBOX_PRODUCER
  void enqueue_message(host::ShardState& ctx, Message m);
  SIMANY_WORKER_PHASE void handle_message(CoreSim& c, Message& m);

  /// Blocks the current fiber until a reply message arrives; returns it.
  Message await_reply(CoreSim& c);

  // ---- Run-time protocol handlers (engine context) -----------------------

  void on_probe(CoreSim& c, const Message& m);
  void on_occ_update(CoreSim& c, const Message& m);
  /// Broadcasts this core's queue occupancy to its neighbors
  /// (architectural messages; only in broadcast_occupancy mode).
  void broadcast_occupancy_update(CoreSim& c);
  [[nodiscard]] std::uint32_t free_slots(const CoreSim& c) const;
  void on_task_spawn(CoreSim& c, Message& m);
  void on_joiner_request(CoreSim& c, Message& m);
  void on_data_request(CoreSim& c, const Message& m);
  void on_cell_release(CoreSim& c, const Message& m);
  void on_lock_request(CoreSim& c, const Message& m);
  void on_lock_release(CoreSim& c, const Message& m);
  /// Grants the cell/lock to the next waiter (or unlocks). `actor`/
  /// `actor_now` identify the core performing the hand-off (home core
  /// in distributed mode, the releasing core in shared mode); `ctx` is
  /// the shard whose lane times any resulting message.
  void grant_next_cell_waiter(CoreId actor, Tick actor_now,
                              host::ShardState& ctx, CellId id);
  void grant_next_lock_waiter(CoreId actor, Tick actor_now,
                              host::ShardState& ctx, LockId id);

  // ---- Birth bookkeeping (satellite: incremental min cache) -------------

  void record_birth(CoreSim& c, Tick birth);
  void retire_birth(CoreSim& c, Tick birth);

  // ---- Ctx operation implementations (fiber context) ---------------------

  void ctx_compute_cycles(CoreSim& c, Cycles cycles);
  void ctx_compute_mix(CoreSim& c, const timing::InstMix& mix);
  void ctx_function_boundary(CoreSim& c);
  void ctx_mem_access(CoreSim& c, std::uint64_t addr, std::uint32_t bytes,
                      bool write);
  bool ctx_probe(CoreSim& c);
  void ctx_spawn(CoreSim& c, GroupId g, TaskFn fn, std::uint32_t arg_bytes);
  void ctx_join(CoreSim& c, GroupId g);
  GroupId ctx_make_group(CoreSim& c);
  LockId ctx_make_lock(CoreSim& c);
  void ctx_lock(CoreSim& c, LockId id);
  void ctx_unlock(CoreSim& c, LockId id);
  CellId ctx_make_cell(CoreSim& c, std::uint32_t bytes, CoreId home);
  void ctx_cell_acquire(CoreSim& c, CellId id, AccessMode mode);
  void ctx_cell_release(CoreSim& c, CellId id);

  [[nodiscard]] Tick mem_cost_l1_hit(const CoreSim& c) const;

  // ---- Fault injection (src/fault; null when the plan is disabled) ------

  /// Accounts one or more injected message faults in shard-local stats
  /// and forwards them to the observer.
  void record_msg_faults(const fault::MsgFaults& f, CoreId src, Tick sent,
                         host::ShardState& ctx);

  // ---- Telemetry (src/obs; null unless set_telemetry was called) --------

  /// Appends one event to `shard`'s telemetry buffer. Call sites guard
  /// with `telemetry_ != nullptr`, keeping the detached cost to one
  /// null check (the property bench/micro_engine asserts).
  void tel(std::uint32_t shard, obs::EventKind k, Tick at, CoreId core,
           std::uint8_t sub = 0, std::uint32_t dst = 0, std::uint64_t a = 0,
           std::uint64_t b = 0);

  /// Virtual-time-gridded live metric samples plus the drift
  /// high-water mark; piggybacks on the sample_parallelism cadence.
  void sample_drift(host::ShardState& sh);

  // ---- Status heartbeat (src/obs; null unless set_status was called) ----

  /// Builds a read-only progress sample and hands it to the status
  /// reporter. Gated on the reporter's wall-clock throttle unless the
  /// run is ending (`finished`/`failed` force a final heartbeat).
  /// Serial-phase only: every shard counter and core clock is stable.
  SIMANY_SERIAL_ONLY void status_tick(bool finished, bool failed = false);

  void charge(CoreSim& c, Tick cost,
              AdvanceKind kind = AdvanceKind::kRuntime) {
    const Tick from = c.now;
    c.now = sat_add(from, cost);
    c.busy += cost;
    if (obs_ != nullptr) {
      obs_->on_advance(*this, c.id, from, c.now, kind, c.hold_depth > 0);
    }
  }

  /// Internal self-audit of conservation counters (live tasks,
  /// in-flight messages, hold depths). Active only in SIMANY_CHECKED /
  /// Debug builds; called from quiescent points (single-shard loop,
  /// end of run).
  SIMANY_SERIAL_ONLY void audit_counters() const;

  [[nodiscard]] CoreSim& core(CoreId id) { return *cores_[id]; }
  [[nodiscard]] const CoreSim& core(CoreId id) const { return *cores_[id]; }

  // ---- Data ---------------------------------------------------------------

  ArchConfig cfg_;
  ExecutionMode mode_;
  Tick drift_ticks_ = 0;
  net::Network network_;
  timing::CostModel cost_model_;
  std::vector<std::unique_ptr<CoreSim>> cores_;
  mem::Directory directory_;
  /// Fault injector, constructed only when cfg_.fault is enabled.
  std::unique_ptr<fault::FaultInjector> fault_;

  // Host layer: shards, core->shard map, proxy snapshots, mailboxes.
  std::vector<std::unique_ptr<host::ShardState>> shards_;
  std::vector<std::uint32_t> shard_id_;
  /// Read side of the proxy snapshots: stable for the whole round,
  /// refreshed from proxy_next_ by the serial barrier phase.
  std::vector<host::VtProxy> proxy_;
  /// Write side: each shard publishes its own cores here at round end.
  std::vector<host::VtProxy> proxy_next_;
  std::vector<std::unique_ptr<host::SpscMailbox<host::Routed>>> mail_;
  std::uint32_t num_shards_ = 1;
  std::uint64_t host_rounds_ = 0;
  /// Global synthetic-address allocator used by single-shard runs (the
  /// seed engine's exact address sequence, which cycle-level set-index
  /// behavior depends on). Multi-shard runs carve per-creator regions
  /// instead — see ctx_make_cell.
  std::uint64_t synth_addr_next_ = 1;

  // Cycle-level min-core heap (lazy deletion via cl_stamp).
  struct ClEntry {
    Tick key;
    CoreId id;
    std::uint64_t stamp;
  };
  std::vector<ClEntry> cl_heap_;

  TraceSink* trace_ = nullptr;
  EngineObserver* obs_ = nullptr;
  obs::Telemetry* telemetry_ = nullptr;
  obs::StatusReporter* status_ = nullptr;
  /// Snapshot capture/verify hook, armed by snapshot_to/restore_from
  /// (null otherwise: every call site is one predictable branch).
  std::unique_ptr<snapshot::RunHook> snap_hook_;
  bool ran_ = false;

  // Guard state (src/guard/guard_config.h; see guard_setup).
  /// First tripped SimErrorCode, or 0. Written by any shard worker (or
  /// a signal handler via request_cancel); the serial phase converts it
  /// into the abort. CAS keeps the first cause.
  std::atomic<std::uint8_t> cancel_code_{0};
  /// True only while unwind_all_fibers resumes fibers; post-yield
  /// checks turn resumption into a FiberUnwind throw. Plain bool: set
  /// and read single-threaded (serial phase / sequential loop).
  bool cancelling_ = false;
  bool guard_flushed_ = false;      // partial stats/telemetry emitted
  bool guard_polling_ = false;      // any in-round guard check enabled
  bool guard_limits_ = false;       // inbox/fiber resource caps enabled
  // simlint: allow(det-wall-clock) deadline anchor; never feeds sim state
  std::chrono::steady_clock::time_point guard_start_{};
  Tick guard_max_vtime_ticks_ = 0;  // cfg_.guard.max_vtime_cycles in ticks
  // Serial-phase global watchdog (parallel host: per-round deltas).
  Tick guard_round_now_sum_ = 0;
  std::uint64_t guard_round_quanta_ = 0;
  bool guard_round_baseline_ = false;
  std::uint32_t guard_stale_rounds_ = 0;

  SimStats stats_;
};

/// Convenience alias: a SiMany simulation.
using Simulation = Engine;

}  // namespace simany
