// The SiMany discrete-event simulation engine.
//
// One Engine instance simulates one program run on one architecture.
// It is single-threaded and fully deterministic: simulated cores are
// userland fibers scheduled cooperatively (paper SS III), and all
// randomness derives from the config seed.
//
// The engine supports two execution modes sharing the same programming
// model, network and run-time protocols:
//
//  * kVirtualTime — SiMany proper. Cores run natively for as long as
//    spatial synchronization allows: a core may be ahead of the
//    anchored virtual time reachable through the topology by at most
//    T per hop (paper SS II). Idle cores are handled by the shadow-time
//    rule, realized here as BFS transparency: an idle core contributes
//    exactly min(neighbors) + T, which is what continuing the search
//    through it computes. In-flight spawned tasks constrain their
//    parent through tracked birth times, and lock/cell holders are
//    temporarily exempt from stalling (deadlock avoidance).
//
//  * kCycleLevel — the conservative reference baseline standing in for
//    the paper's UNISIM-based simulator. The scheduler always advances
//    the earliest actionable core, compute blocks are chopped into
//    small quanta, data goes through real set-associative split L1
//    caches with a full directory-coherence cost model, and
//    instruction fetch is charged explicitly.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "config/arch_config.h"
#include "core/engine_observer.h"
#include "core/fiber.h"
#include "core/inspect.h"
#include "core/message.h"
#include "core/rng.h"
#include "core/sim_stats.h"
#include "core/sim_types.h"
#include "core/task_ctx.h"
#include "core/trace.h"
#include "core/vtime.h"
#include "mem/directory.h"
#include "mem/pessimistic_l1.h"
#include "mem/setassoc_cache.h"
#include "net/network.h"

namespace simany {

enum class ExecutionMode : std::uint8_t {
  kVirtualTime,  // SiMany: spatial synchronization, abstract models
  kCycleLevel,   // conservative baseline: global order, detailed caches
};

class Engine {
 public:
  explicit Engine(ArchConfig cfg,
                  ExecutionMode mode = ExecutionMode::kVirtualTime);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs `root` on core 0 at virtual time 0 until every task has
  /// completed and all messages are drained. One-shot: a second call
  /// throws. Throws std::runtime_error on simulated deadlock.
  SimStats run(TaskFn root);

  [[nodiscard]] const ArchConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] ExecutionMode mode() const noexcept { return mode_; }
  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }

  /// Default compute-chopping quantum for kCycleLevel
  /// (ArchConfig::cl_quantum_cycles overrides).
  static constexpr Cycles kClQuantumCycles = 16;

  /// Attaches an event observer (or nullptr to detach). The sink must
  /// outlive run(). See stats/trace_sinks.h for ready-made sinks.
  void set_trace(TraceSink* sink) noexcept { trace_ = sink; }

  /// Attaches a validation/instrumentation observer (or nullptr to
  /// detach). Observers see every engine transition — see
  /// core/engine_observer.h and the checkers in src/check. The
  /// observer must outlive run(). Costs one null-check per event when
  /// detached.
  void set_observer(EngineObserver* obs) noexcept { obs_ = obs; }

  /// Builds a structured snapshot of the complete simulation state
  /// (core clocks, births, lock/cell/group tables, counters). Slow;
  /// meant for validators and deadlock diagnostics.
  [[nodiscard]] EngineInspect inspect() const;

 private:
  // ---- Per-core simulation state ------------------------------------

  struct PendingTask {
    TaskFn fn;
    GroupId group = kInvalidGroup;
    Tick arrival = 0;
  };

  struct ParkedFiber {
    std::unique_ptr<Fiber> fiber;
    GroupId task_group = kInvalidGroup;  // group the task decrements
    Tick parked_at = 0;
  };

  class Ctx;  // TaskCtx implementation bound to one core

  struct CoreSim {
    CoreId id = 0;
    Speed speed;
    Tick now = 0;
    Tick busy = 0;

    std::deque<Message> inbox;
    std::deque<PendingTask> task_queue;
    std::uint32_t reserved = 0;  // probe reservations not yet arrived
    std::vector<Tick> births;    // in-flight spawns from this core

    std::unique_ptr<Fiber> fiber;         // current task
    GroupId fiber_group = kInvalidGroup;  // group of the current task
    std::deque<ParkedFiber> resumables;   // woken joiners

    int hold_depth = 0;  // locks/cells held -> spatial-sync exemption
    bool sync_stalled = false;
    bool waiting_reply = false;
    bool park_pending = false;   // fiber asked to be parked on a group
    GroupId park_group = kInvalidGroup;
    bool reply_ready = false;
    Message reply;

    CoreId reserved_target = net::kInvalidCore;  // granted probe target
    std::uint32_t probe_rr = 0;  // rotating probe start index
    /// Stale per-neighbor free-slot proxies (broadcast_occupancy mode),
    /// indexed like topology.neighbors(id).
    std::vector<std::uint32_t> occ_proxy;
    Tick cached_limit = 0;
    std::uint64_t limit_epoch = 0;  // validity tag for cached_limit

    bool in_ready = false;
    Rng rng;
    mem::PessimisticL1 l1;
    // Cycle-level mode only:
    std::unique_ptr<mem::SetAssocCache> dcache;
    std::unique_ptr<mem::SetAssocCache> icache;

    std::unique_ptr<Ctx> ctx;
  };

  // ---- Run-time system tables ----------------------------------------

  struct Group {
    std::uint32_t active = 0;
    struct Joiner {
      CoreId core;
      std::unique_ptr<Fiber> fiber;
      GroupId task_group;  // group of the *joining* task itself
      Tick parked_at;
    };
    std::vector<Joiner> joiners;
  };

  struct Cell {
    CoreId home = 0;
    std::uint32_t bytes = 0;
    std::uint64_t synth_addr = 0;  // synthetic address for cache models
    bool locked = false;
    CoreId holder = net::kInvalidCore;
    AccessMode holder_mode = AccessMode::kRead;
    struct Waiter {
      CoreId core;
      AccessMode mode;
    };
    std::deque<Waiter> waiters;
  };

  struct Lock {
    CoreId home = 0;
    bool held = false;
    CoreId holder = net::kInvalidCore;
    std::deque<CoreId> waiters;
  };

  // ---- Scheduling ------------------------------------------------------

  void main_loop();
  void run_core_vt(CoreSim& c);
  void run_core_cl(CoreSim& c);
  /// Index of the earliest actionable core (CL mode), or kInvalidCore.
  [[nodiscard]] CoreId pick_min_time_core() const;
  [[nodiscard]] bool actionable(const CoreSim& c) const;
  void mark_ready(CoreSim& c);
  void process_inbox(CoreSim& c);
  void resume_fiber(CoreSim& c);
  void after_fiber_return(CoreSim& c);
  bool start_next_work(CoreSim& c);  // resumables / task queue
  void task_done(CoreSim& c);
  [[nodiscard]] bool wake_sweep();  // returns true if anything woke

  /// Push-migration (paper SS IV): when this core is overloaded —
  /// running a task with more queued behind it — forward queued tasks
  /// to strictly idle neighbors so work diffuses through the mesh.
  void try_migrate(CoreSim& c);

  // ---- Spatial synchronization ----------------------------------------

  /// Maximum virtual time core `c` may reach right now.
  [[nodiscard]] Tick drift_limit(const CoreSim& c);
  [[nodiscard]] Tick bounded_slack_limit() const;
  void sample_parallelism();
  [[nodiscard]] bool is_anchor(const CoreSim& c) const;
  void refresh_gmin();

  /// Advances `c` by `cost` ticks of execution, stalling as spatial
  /// synchronization requires (VT) or chopping into quanta (CL).
  /// Must be called from `c`'s fiber.
  void advance_execution(CoreSim& c, Tick cost);

  // ---- Messaging --------------------------------------------------------

  void post(MsgKind kind, CoreSim& from, CoreId to, std::uint32_t bytes,
            std::uint64_t a = 0, std::uint64_t b = 0, TaskFn task = {},
            GroupId group = kInvalidGroup, Tick birth = 0);
  /// Synthetic local delivery at an explicit arrival time (used for
  /// shared-memory lock/cell handoff, which involves no real message).
  void deliver_direct(MsgKind kind, CoreId from, CoreId to, Tick arrival,
                      std::uint64_t a = 0, std::uint64_t b = 0);
  void handle_message(CoreSim& c, Message& m);

  /// Blocks the current fiber until a reply message arrives; returns it.
  Message await_reply(CoreSim& c);

  // ---- Run-time protocol handlers (engine context) -----------------------

  void on_probe(CoreSim& c, const Message& m);
  void on_occ_update(CoreSim& c, const Message& m);
  /// Broadcasts this core's queue occupancy to its neighbors
  /// (architectural messages; only in broadcast_occupancy mode).
  void broadcast_occupancy_update(CoreSim& c);
  [[nodiscard]] std::uint32_t free_slots(const CoreSim& c) const;
  void on_task_spawn(CoreSim& c, Message& m);
  void on_joiner_request(CoreSim& c, const Message& m);
  void on_data_request(CoreSim& c, const Message& m);
  void on_cell_release(CoreSim& c, const Message& m);
  void on_lock_request(CoreSim& c, const Message& m);
  void on_lock_release(CoreSim& c, const Message& m);
  /// Grants the cell/lock to the next waiter (or unlocks). `actor` is
  /// the core performing the hand-off (home core in distributed mode,
  /// the releasing core in shared mode).
  void grant_next_cell_waiter(CoreSim& actor, CellId id);
  void grant_next_lock_waiter(CoreSim& actor, LockId id);

  // ---- Ctx operation implementations (fiber context) ---------------------

  void ctx_compute_cycles(CoreSim& c, Cycles cycles);
  void ctx_compute_mix(CoreSim& c, const timing::InstMix& mix);
  void ctx_function_boundary(CoreSim& c);
  void ctx_mem_access(CoreSim& c, std::uint64_t addr, std::uint32_t bytes,
                      bool write);
  bool ctx_probe(CoreSim& c);
  void ctx_spawn(CoreSim& c, GroupId g, TaskFn fn, std::uint32_t arg_bytes);
  void ctx_join(CoreSim& c, GroupId g);
  GroupId ctx_make_group();
  LockId ctx_make_lock(CoreSim& c);
  void ctx_lock(CoreSim& c, LockId id);
  void ctx_unlock(CoreSim& c, LockId id);
  CellId ctx_make_cell(std::uint32_t bytes, CoreId home);
  void ctx_cell_acquire(CoreSim& c, CellId id, AccessMode mode);
  void ctx_cell_release(CoreSim& c, CellId id);

  [[nodiscard]] Tick mem_cost_l1_hit(const CoreSim& c) const;

  void charge(CoreSim& c, Tick cost,
              AdvanceKind kind = AdvanceKind::kRuntime) {
    const Tick from = c.now;
    c.now = sat_add(from, cost);
    c.busy += cost;
    if (obs_ != nullptr) {
      obs_->on_advance(*this, c.id, from, c.now, kind, c.hold_depth > 0);
    }
  }

  /// Internal self-audit of conservation counters (live tasks,
  /// in-flight messages, hold depths). Active only in SIMANY_CHECKED /
  /// Debug builds; called periodically from the main loop.
  void audit_counters() const;

  [[nodiscard]] CoreSim& core(CoreId id) { return *cores_[id]; }
  [[nodiscard]] const CoreSim& core(CoreId id) const { return *cores_[id]; }

  // ---- Data ---------------------------------------------------------------

  ArchConfig cfg_;
  ExecutionMode mode_;
  Tick drift_ticks_ = 0;
  net::Network network_;
  timing::CostModel cost_model_;
  FiberPool fiber_pool_;
  std::vector<std::unique_ptr<CoreSim>> cores_;
  // deques: element references must survive growth, because fibers hold
  // references across yields while other tasks create groups/cells.
  std::deque<Group> groups_;
  std::deque<Cell> cells_;
  std::deque<Lock> locks_;
  mem::Directory directory_;

  std::deque<CoreId> ready_;
  std::vector<CoreId> stalled_;

  std::uint64_t live_tasks_ = 0;
  std::uint64_t inflight_messages_ = 0;
  Tick gmin_lb_ = 0;        // lower bound on the minimum anchored time
  /// Bumped whenever a *new* drift constraint appears (a core gains
  /// work, a task is born): cached drift limits from earlier epochs —
  /// possibly infinity — are then stale and must be recomputed.
  std::uint64_t limit_epoch_ = 1;
  Tick max_task_end_ = 0;
  std::uint64_t quantum_count_ = 0;
  std::uint64_t synth_addr_next_ = 1;  // synthetic cell address space
  TraceSink* trace_ = nullptr;
  EngineObserver* obs_ = nullptr;
  std::vector<std::uint32_t> bfs_epoch_;
  std::uint32_t bfs_epoch_cur_ = 0;
  bool ran_ = false;

  SimStats stats_;
};

/// Convenience alias: a SiMany simulation.
using Simulation = Engine;

}  // namespace simany
