// The public programming-model API presented to simulated tasks.
//
// This mirrors the paper's modified-program interface (SS III/IV): a
// program is instrumented with timing annotations (compute / InstMix),
// uses run-time primitives to spawn tasks conditionally (probe + spawn,
// join on task groups), and accesses data either through annotated
// shared-memory loads/stores or through distributed-memory cells
// acquired via links.
//
// TaskCtx is abstract so the same benchmark source runs unchanged on:
//  * the SiMany virtual-time engine        (core/engine.h)
//  * the cycle-level reference simulator   (cyclesim/)
//  * the native pass-through executor      (runtime/native_sim.h)
#pragma once

#include <cstdint>

#include "core/rng.h"
#include "core/sim_types.h"
#include "core/vtime.h"
#include "mem/mem_params.h"
#include "timing/cost_model.h"

namespace simany {

class TaskCtx {
 public:
  virtual ~TaskCtx() = default;

  // ---- Timing annotations -------------------------------------------

  /// Advances this core's virtual time by a raw cycle count (a manually
  /// timed instruction block).
  virtual void compute(Cycles cycles) = 0;

  /// Advances virtual time by the cost-model cost of an instruction
  /// mix; conditional branches go through the probabilistic predictor.
  virtual void compute(const timing::InstMix& mix) = 0;

  /// Function boundary of the simulated program: the pessimistic L1
  /// model forgets all cached lines (paper SS V).
  virtual void function_boundary() = 0;

  // ---- Shared-memory data accesses ----------------------------------
  // `addr` is any stable byte address identifying the data (benchmarks
  // pass the native address of their own structures); only timing is
  // simulated, the data itself lives in normal process memory.

  virtual void mem_read(std::uint64_t addr, std::uint32_t bytes) = 0;
  virtual void mem_write(std::uint64_t addr, std::uint32_t bytes) = 0;

  // ---- Tasking --------------------------------------------------------

  /// Creates a task group for coarse synchronization.
  virtual GroupId make_group() = 0;

  /// Resource check preceding a spawn: consults neighbor occupancy
  /// proxies and, when promising, performs the PROBE handshake.
  /// On success a slot is reserved and the next spawn() uses it.
  [[nodiscard]] virtual bool probe() = 0;

  /// Sends a new task to the neighbor reserved by the last successful
  /// probe(). Precondition: probe() returned true and no spawn happened
  /// since. `arg_bytes` sizes the TASK_SPAWN message (0 = default).
  virtual void spawn(GroupId group, TaskFn fn,
                     std::uint32_t arg_bytes = 0) = 0;

  /// Waits for all tasks in `group` to finish. May suspend this task;
  /// resumption costs the join context-switch overhead.
  virtual void join(GroupId group) = 0;

  // ---- Locks ----------------------------------------------------------

  virtual LockId make_lock() = 0;
  virtual void lock(LockId lock) = 0;
  virtual void unlock(LockId lock) = 0;

  // ---- Distributed-memory cells ---------------------------------------
  // Cells are the run-time-managed shared objects of the distributed
  // architecture (paper SS IV). On the shared-memory architecture the
  // same calls degrade to annotated memory accesses plus lock
  // semantics, so one benchmark source serves both modes.

  /// Creates a cell of `bytes` homed on the core executing this call.
  virtual CellId make_cell(std::uint32_t bytes) = 0;

  /// Creates a cell homed on an explicit core — how a program places
  /// data across the distributed banks.
  virtual CellId make_cell_at(std::uint32_t bytes, CoreId home) = 0;

  /// Acquires exclusive access; blocks while another task holds the
  /// cell. Remote acquisition triggers DATA_REQUEST/DATA_RESPONSE and
  /// installs the data in this core's L2.
  virtual void cell_acquire(CellId cell, AccessMode mode) = 0;

  /// Releases the cell (write-back to home when it was acquired for
  /// writing).
  virtual void cell_release(CellId cell) = 0;

  // ---- Introspection --------------------------------------------------

  [[nodiscard]] virtual CoreId core_id() const = 0;
  [[nodiscard]] virtual std::uint32_t num_cores() const = 0;
  [[nodiscard]] virtual Cycles now_cycles() const = 0;
  [[nodiscard]] virtual mem::MemoryModel memory_model() const = 0;

  /// Deterministic per-core random stream (branch outcomes, benchmark
  /// pivot choices, ...).
  [[nodiscard]] virtual Rng& rng() = 0;
};

/// Conditional-spawn helper (the paper's programming idiom): spawn when
/// a probe succeeds, otherwise execute the task inline, sequentially.
inline void spawn_or_run(TaskCtx& ctx, GroupId group, const TaskFn& fn,
                         std::uint32_t arg_bytes = 0) {
  if (ctx.probe()) {
    ctx.spawn(group, fn, arg_bytes);
  } else {
    fn(ctx);
  }
}

/// RAII guard for cell access.
class CellGuard {
 public:
  CellGuard(TaskCtx& ctx, CellId cell, AccessMode mode)
      : ctx_(&ctx), cell_(cell) {
    ctx_->cell_acquire(cell_, mode);
  }
  CellGuard(const CellGuard&) = delete;
  CellGuard& operator=(const CellGuard&) = delete;
  ~CellGuard() { ctx_->cell_release(cell_); }

 private:
  TaskCtx* ctx_;
  CellId cell_;
};

/// RAII guard for locks.
class LockGuard {
 public:
  LockGuard(TaskCtx& ctx, LockId lock) : ctx_(&ctx), lock_(lock) {
    ctx_->lock(lock_);
  }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;
  ~LockGuard() { ctx_->unlock(lock_); }

 private:
  TaskCtx* ctx_;
  LockId lock_;
};

}  // namespace simany
