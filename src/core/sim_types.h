// Shared identifier types for the simulation engine and runtime.
//
// Group/lock/cell identifiers are *homed*: the high half names the core
// whose tables own the object, the low half is that core's private
// sequence number. Allocation therefore never needs global coordination
// — any core (on any host shard) can mint ids deterministically — and
// every operation on an object can be routed to its home core.
#pragma once

#include <cstdint>
#include <functional>

#include "net/topology.h"

namespace simany {

using CoreId = net::CoreId;
using GroupId = std::uint64_t;
using LockId = std::uint64_t;
using CellId = std::uint64_t;

inline constexpr GroupId kInvalidGroup = ~GroupId{0};
inline constexpr CellId kInvalidCell = ~CellId{0};
inline constexpr LockId kInvalidLock = ~LockId{0};

/// Builds a homed object id from the owning core and its local sequence.
[[nodiscard]] constexpr std::uint64_t make_object_id(
    CoreId home, std::uint32_t index) noexcept {
  return (static_cast<std::uint64_t>(home) << 32) | index;
}

/// Core whose tables own the object.
[[nodiscard]] constexpr CoreId object_home(std::uint64_t id) noexcept {
  return static_cast<CoreId>(id >> 32);
}

/// Home-local sequence number of the object.
[[nodiscard]] constexpr std::uint32_t object_index(std::uint64_t id) noexcept {
  return static_cast<std::uint32_t>(id);
}

enum class AccessMode : std::uint8_t { kRead, kWrite };

class TaskCtx;

/// A task body. Runs natively; all timing comes from explicit
/// annotations and the simulated-architecture interactions on `ctx`.
using TaskFn = std::function<void(TaskCtx&)>;

}  // namespace simany
