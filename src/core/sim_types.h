// Shared identifier types for the simulation engine and runtime.
#pragma once

#include <cstdint>
#include <functional>

#include "net/topology.h"

namespace simany {

using CoreId = net::CoreId;
using GroupId = std::uint32_t;
using LockId = std::uint32_t;
using CellId = std::uint32_t;

inline constexpr GroupId kInvalidGroup = ~GroupId{0};
inline constexpr CellId kInvalidCell = ~CellId{0};
inline constexpr LockId kInvalidLock = ~LockId{0};

enum class AccessMode : std::uint8_t { kRead, kWrite };

class TaskCtx;

/// A task body. Runs natively; all timing comes from explicit
/// annotations and the simulated-architecture interactions on `ctx`.
using TaskFn = std::function<void(TaskCtx&)>;

}  // namespace simany
