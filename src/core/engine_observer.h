// Engine observation hooks for validators and instrumentation.
//
// EngineObserver is the wide sibling of TraceSink: it sees every
// semantically relevant engine transition — virtual-time advances,
// message life-cycle, task life-cycle, lock/cell ownership, stalls —
// and receives the Engine itself, so an observer can cross-examine
// global state (Engine::inspect()) at any event. The engine pays one
// pointer null-check per event when no observer is attached, so
// observation costs nothing unless explicitly enabled. The
// invariant-checking subsystem (src/check) is built on this interface.
#pragma once

#include "core/message.h"
#include "core/sim_types.h"
#include "core/vtime.h"
#include "fault/fault_plan.h"

namespace simany {

class Engine;

/// Why a core's virtual time moved forward.
enum class AdvanceKind : std::uint8_t {
  /// Annotated program execution going through the spatial-sync check
  /// (advance_execution). The drift bound applies here.
  kCompute,
  /// Run-time bookkeeping charges and arrival-time jumps; these follow
  /// message causality, not the drift bound.
  kRuntime,
};

class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  virtual void on_run_begin(const Engine&) {}
  virtual void on_run_end(const Engine&) {}

  /// Core `c` moved from `from` to `to` ticks (monotone per core).
  /// `exempt` is true while the core holds locks/cells and is thus
  /// excused from the drift bound (paper SS II-B).
  virtual void on_advance(const Engine&, CoreId /*c*/, Tick /*from*/,
                          Tick /*to*/, AdvanceKind, bool /*exempt*/) {}

  /// A message entered the network (post), or — when `direct` — was
  /// delivered without one (shared-memory lock/cell hand-off).
  virtual void on_message_posted(const Engine&, const Message&,
                                 bool /*direct*/) {}

  /// A message is about to be handled at its destination core.
  virtual void on_message_handled(const Engine&, CoreId /*c*/,
                                  const Message&) {}

  virtual void on_task_start(const Engine&, CoreId /*c*/, Tick /*at*/) {}
  virtual void on_task_end(const Engine&, CoreId /*c*/, Tick /*at*/) {}
  /// Core `parent` recorded birth time `birth` for an in-flight spawn.
  virtual void on_task_birth(const Engine&, CoreId /*parent*/,
                             Tick /*birth*/) {}
  /// The spawn born at `birth` reached `dst`; `parent` retired it.
  virtual void on_task_arrival(const Engine&, CoreId /*parent*/,
                               CoreId /*dst*/, Tick /*birth*/) {}

  virtual void on_stall(const Engine&, CoreId /*c*/, Tick /*at*/) {}
  virtual void on_wake(const Engine&, CoreId /*c*/, Tick /*at*/,
                       Tick /*new_limit*/) {}

  virtual void on_lock_acquired(const Engine&, CoreId /*c*/, LockId) {}
  virtual void on_lock_released(const Engine&, CoreId /*c*/, LockId) {}
  virtual void on_cell_acquired(const Engine&, CoreId /*c*/, CellId) {}
  virtual void on_cell_released(const Engine&, CoreId /*c*/, CellId) {}

  /// The fault injector (src/fault) fired: a fault of kind `kind` was
  /// injected at core `core` at virtual time `at`. `magnitude` is
  /// kind-specific — extra ticks for delays/stalls/spikes, lost
  /// attempts for drops, copies for duplicates, 1 otherwise. Checkers
  /// use this to verify that every invariant still holds downstream of
  /// the perturbation.
  virtual void on_fault(const Engine&, fault::FaultKind /*kind*/,
                        CoreId /*core*/, Tick /*at*/,
                        std::uint64_t /*magnitude*/) {}

  /// End of one scheduling quantum in the main loop — a safe point at
  /// which no core is mid-transition; full-state audits belong here.
  virtual void on_quantum_end(const Engine&) {}

  /// No core can advance. Called once, with full state still intact,
  /// before the engine throws its deadlock error; an observer may
  /// throw a richer diagnostic instead (see check/deadlock.h).
  virtual void on_deadlock(const Engine&) {}
};

}  // namespace simany
