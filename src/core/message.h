// Architectural messages exchanged between simulated cores.
//
// These carry both run-time-system traffic (probe handshake, task
// spawning, join notification — paper SS IV "Semantics and Messages")
// and distributed-memory data movement (cell requests/responses).
// Virtual-time *update* messages from the spatial synchronization
// scheme are NOT represented here: they are control messages with "no
// architectural existence" (paper SS II) and are realized as direct
// neighbor-proxy updates inside the engine.
#pragma once

#include <cstdint>
#include <memory>

#include "core/fiber.h"
#include "core/sim_types.h"
#include "core/vtime.h"

namespace simany {

enum class MsgKind : std::uint8_t {
  kProbe,          // reservation request for one task-queue slot
  kProbeAck,       // reservation granted
  kProbeNack,      // reservation denied
  kTaskSpawn,      // the new task itself (args payload)
  kJoinerRequest,  // wake a suspended joining task
  kDataRequest,    // acquire a remote cell
  kDataResponse,   // cell content + grant
  kCellRelease,    // release a cell at its home (with write-back)
  kLockRequest,    // acquire a remote named lock
  kLockGrant,      // named lock granted
  kLockRelease,    // release a named lock at its home
  kOccUpdate,      // task-queue occupancy broadcast to neighbors
};

[[nodiscard]] constexpr const char* to_string(MsgKind k) noexcept {
  switch (k) {
    case MsgKind::kProbe: return "PROBE";
    case MsgKind::kProbeAck: return "PROBE_ACK";
    case MsgKind::kProbeNack: return "PROBE_NACK";
    case MsgKind::kTaskSpawn: return "TASK_SPAWN";
    case MsgKind::kJoinerRequest: return "JOINER_REQUEST";
    case MsgKind::kDataRequest: return "DATA_REQUEST";
    case MsgKind::kDataResponse: return "DATA_RESPONSE";
    case MsgKind::kCellRelease: return "CELL_RELEASE";
    case MsgKind::kLockRequest: return "LOCK_REQUEST";
    case MsgKind::kLockGrant: return "LOCK_GRANT";
    case MsgKind::kLockRelease: return "LOCK_RELEASE";
    case MsgKind::kOccUpdate: return "OCC_UPDATE";
  }
  return "?";
}

struct Message {
  MsgKind kind = MsgKind::kProbe;
  CoreId src = net::kInvalidCore;
  CoreId dst = net::kInvalidCore;
  Tick sent = 0;     // sender virtual time at departure
  Tick arrival = 0;  // network-computed arrival at dst
  std::uint32_t bytes = 0;
  /// Small scalar payload: cell/lock/group id, write-back flag, ...
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  /// Only for kTaskSpawn: the task body and its group.
  TaskFn task;
  GroupId group = kInvalidGroup;
  /// Birth timestamp carried by a spawn (parent time at spawn).
  Tick birth = 0;
  /// Only for kJoinerRequest: the parked joiner travels inside its wake
  /// message, so the destination core resumes it without touching the
  /// group table (which may live on another host shard).
  std::unique_ptr<Fiber> fiber;
  GroupId fiber_group = kInvalidGroup;
  Tick parked_at = 0;
  /// True for zero-cost direct deliveries (runtime-internal control
  /// replies that never crossed the network). Telemetry skips them so
  /// the event stream has the same shape under every host backend.
  bool direct = false;

  /// True when the message carries a live task (a spawned body or a
  /// parked joiner) — conservation accounting must include it.
  [[nodiscard]] bool carries_task() const noexcept {
    return static_cast<bool>(task) || fiber != nullptr;
  }
};

}  // namespace simany
