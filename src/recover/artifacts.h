// Degrade-vs-abort policy for artifact exports.
//
// Every exporter in the tree (trace, metrics, critpath, crash report,
// config echo) is a pure `std::ostream` serializer; this shim is where
// their output meets the filesystem. The artifact is composed in
// memory and handed to the shared atomic writer, so a failure can
// never leave a truncated file at the destination — and the policy
// decides what a failure means:
//
//   kDegrade  telemetry-grade outputs: warn once on stderr with the
//             structured SimError cause, return false, keep going.
//             A full disk must not kill a simulation that can still
//             finish and report its numbers on stdout.
//   kAbort    durability-grade outputs (snapshots, autosave ring):
//             rethrow — a checkpoint that silently failed to persist
//             is worse than a loud stop.
#pragma once

#include <functional>
#include <ostream>
#include <string>

namespace simany::recover {

enum class FailPolicy : std::uint8_t { kDegrade, kAbort };

/// Composes `fill(os)` into memory and atomically writes it to `path`.
/// Returns true on success; under kDegrade a failure warns on stderr
/// (naming `what`, the path and the SimErrorCode) and returns false;
/// under kAbort the SimError propagates.
bool write_artifact(const std::string& path, const std::string& what,
                    FailPolicy policy,
                    const std::function<void(std::ostream&)>& fill);

}  // namespace simany::recover
