#include "recover/supervisor.h"

#include <sys/stat.h>

#include <cerrno>
#include <memory>
#include <utility>

#include "core/engine.h"
#include "io/atomic_write.h"
#include "recover/autosave.h"
#include "recover/ring.h"

namespace simany::recover {

namespace {

void ensure_dir(const std::string& dir) {
  struct stat st{};
  if (::stat(dir.c_str(), &st) == 0) {
    if (S_ISDIR(st.st_mode)) return;
    io::throw_io_error("mkdir", dir, ENOTDIR);
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    io::throw_io_error("mkdir", dir, errno);
  }
}

}  // namespace

RunSupervisor::RunSupervisor(DurableOptions opts) : opts_(std::move(opts)) {}

ArmInfo RunSupervisor::arm(Engine& engine) {
  ArmInfo info;
  RingScan scan;
  if (!opts_.dir.empty()) {
    if (opts_.autosave_enabled()) ensure_dir(opts_.dir);
    scan = scan_ring(opts_.dir);
    info.warnings = scan.warnings;
  }

  // Forced-cursor inheritance for the continuation: ancestors' capture
  // cursors plus the one we resume at (see SnapshotPlan's rationale).
  std::vector<std::uint64_t> forced_next;
  std::uint64_t resume_cursor = 0;

  if (opts_.auto_resume && !scan.valid.empty()) {
    const RingGeneration& newest = scan.valid.back();
    // Adopt the writer's quanta cadence: the cadence is part of the
    // barrier schedule every later generation's replay must mirror, so
    // a command-line cadence change mid-chain would poison the ring.
    if (opts_.every_quanta != newest.every_quanta) {
      info.warnings.push_back(
          "adopting autosave cadence " + std::to_string(newest.every_quanta) +
          " quanta from generation " + std::to_string(newest.gen) +
          " (command line asked for " + std::to_string(opts_.every_quanta) +
          "; the resumed chain's schedule wins)");
      opts_.every_quanta = newest.every_quanta;
    }
    // Identity mismatch (foreign config/seed/workload in the ring)
    // propagates: resuming a *different* run's state silently would be
    // worse than failing loudly.
    engine.restore_from(newest.path, opts_.workload_fp,
                        newest.forced_cursors);
    info.resumed = true;
    info.generation = newest.gen;
    info.cursor = newest.cursor;
    resume_cursor = newest.cursor;
    forced_next = newest.forced_cursors;
    forced_next.push_back(newest.cursor);
  }

  if (opts_.autosave_enabled()) {
    AutosaveHook::Options ho;
    ho.dir = opts_.dir;
    ho.every_quanta = opts_.every_quanta;
    ho.wall_ms = opts_.wall_ms;
    ho.keep = opts_.keep;
    ho.workload_fp = opts_.workload_fp;
    ho.next_gen = scan.next_gen;
    ho.resume_cursor = resume_cursor;
    ho.forced_cursors = std::move(forced_next);
    ho.existing = scan.valid;
    engine.add_run_hook(std::make_unique<AutosaveHook>(std::move(ho)));
  }
  return info;
}

}  // namespace simany::recover
