// RunSupervisor: the one place that makes a run durable.
//
// Per attempt (the CLI's retry loop constructs a fresh Engine each
// time), arm() rescans the autosave ring — picking up generations an
// earlier attempt's emergency capture just wrote — restores the newest
// valid generation into the engine (deterministic replay + byte
// verification, the `simany-snapshot-v1` contract) and arms the
// AutosaveHook so the continuation keeps checkpointing. An empty or
// absent ring is a fresh start: the same command line serves the first
// launch and every relaunch after a crash, which is what lets an
// external watchdog just re-exec the process.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace simany {
class Engine;
}

namespace simany::recover {

/// What `--autosave-*` / `--auto-resume` configured.
struct DurableOptions {
  /// Ring directory (created if missing when autosave is on).
  std::string dir;
  /// Quanta cadence for autosave captures (0 = disabled).
  std::uint64_t every_quanta = 0;
  /// Wall-clock cadence in ms (0 = disabled).
  std::uint64_t wall_ms = 0;
  /// Ring bound (generations kept on disk).
  std::uint32_t keep = 4;
  /// Scan the ring and resume from the newest valid generation.
  bool auto_resume = false;
  /// Workload fingerprint (snapshot::workload_fingerprint) — identity
  /// check against each generation's header.
  std::uint64_t workload_fp = 0;

  [[nodiscard]] bool autosave_enabled() const noexcept {
    return !dir.empty() && (every_quanta != 0 || wall_ms != 0);
  }
};

/// What arm() did, for the caller's log line and for tests.
struct ArmInfo {
  bool resumed = false;
  std::uint64_t generation = 0;  // valid when resumed
  std::uint64_t cursor = 0;      // quanta cursor resumed at
  /// Structured scan warnings (torn generations skipped, manifest
  /// anomalies) — print them, they name what was lost.
  std::vector<std::string> warnings;
};

class RunSupervisor {
 public:
  explicit RunSupervisor(DurableOptions opts);

  /// Arm durability on a fresh engine (before run()): scan + restore +
  /// autosave hook. Throws SimError{kSnapshotMismatch} if the newest
  /// valid generation belongs to a different run identity, and
  /// SimError{kIo*} if the ring directory cannot be created.
  ArmInfo arm(Engine& engine);

  [[nodiscard]] const DurableOptions& options() const noexcept {
    return opts_;
  }

 private:
  DurableOptions opts_;
};

}  // namespace simany::recover
