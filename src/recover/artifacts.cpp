#include "recover/artifacts.h"

#include <iostream>
#include <sstream>

#include "io/atomic_write.h"

namespace simany::recover {

bool write_artifact(const std::string& path, const std::string& what,
                    FailPolicy policy,
                    const std::function<void(std::ostream&)>& fill) {
  std::ostringstream os;
  fill(os);
  try {
    // No fsync: these are reporting artifacts, not recovery state; the
    // atomic rename alone guarantees a reader never sees a torn file.
    io::AtomicWriteOptions opts;
    opts.fsync = false;
    io::atomic_write_file(path, os.str(), opts);
  } catch (const SimError& e) {
    if (policy == FailPolicy::kAbort) throw;
    std::cerr << "simany: warning: " << what << " export to '" << path
              << "' failed (" << e.what() << "); continuing without it\n";
    return false;
  }
  return true;
}

}  // namespace simany::recover
