#include "recover/ring.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "io/atomic_write.h"
#include "snapshot/snapshot.h"

namespace simany::recover {

namespace {

constexpr char kPrefix[] = "run.autosave.";
constexpr char kSuffix[] = ".snap";

/// Parses the `<N>` out of `run.autosave.<N>.snap`; false otherwise.
bool parse_generation_name(const std::string& name, std::uint64_t& gen) {
  const std::size_t plen = sizeof(kPrefix) - 1;
  const std::size_t slen = sizeof(kSuffix) - 1;
  if (name.size() <= plen + slen) return false;
  if (name.compare(0, plen, kPrefix) != 0) return false;
  if (name.compare(name.size() - slen, slen, kSuffix) != 0) return false;
  const std::string digits = name.substr(plen, name.size() - plen - slen);
  if (digits.empty()) return false;
  gen = 0;
  for (const char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    const std::uint64_t next = gen * 10 + static_cast<std::uint64_t>(c - '0');
    if (next < gen) return false;  // overflow
    gen = next;
  }
  return true;
}

struct ManifestEntry {
  std::uint64_t cursor = 0;
  bool emergency = false;
  std::vector<std::uint64_t> forced;
};

/// Parses the manifest into gen -> entry. Any malformed line poisons
/// only itself (warning), not the whole manifest; a bad magic line
/// poisons the whole file.
void parse_manifest(const std::string& path,
                    std::vector<std::pair<std::uint64_t, ManifestEntry>>& out,
                    std::uint64_t& next_gen,
                    std::vector<std::string>& warnings) {
  std::ifstream in(path);
  if (!in) return;  // absent manifest: advisory, not an error
  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic) {
    warnings.push_back("autosave manifest '" + path +
                       "' has a bad magic line; ignoring it "
                       "(forced-cursor sets unavailable)");
    return;
  }
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kw, forced_field;
    std::uint64_t gen = 0;
    ManifestEntry e;
    std::string cursor_kw, emergency_kw, forced_kw;
    int emergency_val = -1;
    if (!(ls >> kw >> gen >> cursor_kw >> e.cursor >> emergency_kw >>
          emergency_val >> forced_kw >> forced_field) ||
        kw != "gen" || cursor_kw != "cursor" || emergency_kw != "emergency" ||
        forced_kw != "forced" || (emergency_val != 0 && emergency_val != 1)) {
      warnings.push_back("autosave manifest '" + path + "' line " +
                         std::to_string(lineno) + " is malformed; skipped");
      continue;
    }
    e.emergency = emergency_val == 1;
    if (forced_field != "-") {
      std::istringstream fs(forced_field);
      std::string tok;
      bool ok = true;
      while (std::getline(fs, tok, ',')) {
        try {
          std::size_t used = 0;
          const std::uint64_t v = std::stoull(tok, &used);
          if (used != tok.size()) throw std::invalid_argument(tok);
          e.forced.push_back(v);
        } catch (const std::exception&) {
          ok = false;
          break;
        }
      }
      if (!ok) {
        warnings.push_back("autosave manifest '" + path + "' line " +
                           std::to_string(lineno) +
                           " has a malformed forced-cursor list; skipped");
        continue;
      }
    }
    std::sort(e.forced.begin(), e.forced.end());
    out.emplace_back(gen, std::move(e));
    next_gen = std::max(next_gen, gen + 1);
  }
}

}  // namespace

std::string generation_path(const std::string& dir, std::uint64_t gen) {
  return dir + "/" + kPrefix + std::to_string(gen) + kSuffix;
}

std::string manifest_path(const std::string& dir) {
  return dir + "/run.autosave.manifest";
}

RingScan scan_ring(const std::string& dir) {
  RingScan scan;
  std::vector<std::pair<std::uint64_t, ManifestEntry>> manifest;
  parse_manifest(manifest_path(dir), manifest, scan.next_gen, scan.warnings);

  // Glob the directory for generation files: the manifest is advisory,
  // so a generation it failed to record (crash between file write and
  // manifest rewrite ordering changes) is still discovered here.
  std::vector<std::pair<std::uint64_t, std::string>> candidates;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* ent = ::readdir(d)) {
      std::uint64_t gen = 0;
      const std::string name = ent->d_name;
      if (!parse_generation_name(name, gen)) continue;
      candidates.emplace_back(gen, dir + "/" + name);
      scan.next_gen = std::max(scan.next_gen, gen + 1);
    }
    ::closedir(d);
  }
  std::sort(candidates.begin(), candidates.end());
  // Duplicate generation numbers cannot happen from one writer but an
  // adversarial/restored directory can hold them; keep the first path
  // (sorted order is deterministic) and warn about the rest.
  std::vector<std::pair<std::uint64_t, std::string>> unique_candidates;
  for (auto& c : candidates) {
    if (!unique_candidates.empty() &&
        unique_candidates.back().first == c.first) {
      scan.warnings.push_back("duplicate autosave generation " +
                              std::to_string(c.first) + " at '" + c.second +
                              "'; ignored");
      continue;
    }
    unique_candidates.push_back(std::move(c));
  }
  candidates = std::move(unique_candidates);

  for (const auto& [gen, path] : candidates) {
    snapshot::SnapshotFile file;
    try {
      file = snapshot::read_snapshot_file(path);
    } catch (const SimError& e) {
      // Torn or corrupt generation: skip with the reader's structured
      // cause (names the failing digest/section), keep scanning — an
      // interrupted capture must cost one generation, not the ring.
      scan.warnings.push_back("skipping autosave generation " +
                              std::to_string(gen) + " ('" + path +
                              "'): " + e.what());
      continue;
    }
    RingGeneration rg;
    rg.gen = gen;
    rg.path = path;
    rg.cursor = file.header.cursor_actual;
    rg.every_quanta = file.header.every_quanta;
    bool in_manifest = false;
    for (const auto& [mgen, me] : manifest) {
      if (mgen != gen) continue;
      rg.emergency = me.emergency;
      rg.forced_cursors = me.forced;
      in_manifest = true;
      break;
    }
    if (!in_manifest) {
      scan.warnings.push_back(
          "autosave generation " + std::to_string(gen) +
          " has no manifest entry; its forced-cursor set is lost "
          "(resume stays sound, emergency-chain replays lose slack)");
    }
    // Generations must be stale-monotone: a later generation captured
    // at an *earlier* cursor than a predecessor means the directory
    // mixes runs (or clocks ran backwards); prefer the newer file but
    // say so.
    if (!scan.valid.empty() && rg.cursor < scan.valid.back().cursor) {
      scan.warnings.push_back(
          "autosave generation " + std::to_string(gen) + " cursor " +
          std::to_string(rg.cursor) + " is older than generation " +
          std::to_string(scan.valid.back().gen) + " cursor " +
          std::to_string(scan.valid.back().cursor) +
          " — ring mixes runs? resuming from the newest generation");
    }
    scan.valid.push_back(std::move(rg));
  }
  if (scan.valid.empty() && !candidates.empty()) {
    scan.warnings.push_back("autosave ring '" + dir + "' holds " +
                            std::to_string(candidates.size()) +
                            " generation file(s) but none decoded cleanly; "
                            "starting from scratch");
  }
  return scan;
}

void write_manifest(const std::string& dir,
                    const std::vector<RingGeneration>& entries) {
  std::ostringstream os;
  os << kManifestMagic << "\n";
  for (const RingGeneration& e : entries) {
    os << "gen " << e.gen << " cursor " << e.cursor << " emergency "
       << (e.emergency ? 1 : 0) << " forced ";
    if (e.forced_cursors.empty()) {
      os << "-";
    } else {
      for (std::size_t i = 0; i < e.forced_cursors.size(); ++i) {
        if (i != 0) os << ',';
        os << e.forced_cursors[i];
      }
    }
    os << "\n";
  }
  io::AtomicWriteOptions opts;
  opts.fsync = true;
  io::atomic_write_file(manifest_path(dir), os.str(), opts);
}

}  // namespace simany::recover
