// Autosave ring: bounded, generation-numbered snapshot files plus a
// line-oriented manifest, scanned at startup for auto-resume.
//
// Layout inside the ring directory:
//   run.autosave.<N>.snap      one simany-snapshot-v1 container per
//                              generation N (monotonically increasing)
//   run.autosave.manifest      text manifest: per-generation cursor,
//                              emergency flag and forced-cursor set
//
// The manifest is *advisory*: generations are discovered by globbing
// the directory and validated by fully decoding each container
// (digest-checked), so a missing, stale or corrupt manifest degrades
// to warnings, never to a wrong resume. What only the manifest knows
// is each generation's forced-cursor set — the barrier cursors its
// replay must land exactly (see SnapshotPlan::forced_cursors); losing
// it costs replay robustness for emergency-capture chains, which the
// scan reports as a warning.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace simany::recover {

inline constexpr char kManifestMagic[] = "simany-autosave-ring-v1";

/// One validated (or manifest-declared) generation.
struct RingGeneration {
  std::uint64_t gen = 0;
  std::string path;
  /// Quanta cursor the snapshot was captured at (header.cursor_actual).
  std::uint64_t cursor = 0;
  /// Capture cadence recorded in the header — the continuation must
  /// adopt it (a changed cadence would change the barrier schedule the
  /// next generation's replay has to mirror).
  std::uint64_t every_quanta = 0;
  /// Captured by the guard-abort emergency path rather than cadence.
  bool emergency = false;
  /// Ancestor capture cursors a replay of this generation must force
  /// (sorted ascending; excludes this generation's own cursor).
  std::vector<std::uint64_t> forced_cursors;
};

/// Result of scanning a ring directory.
struct RingScan {
  /// Fully validated generations, sorted by gen ascending. Resume
  /// picks the back(); retries walk backwards on mismatch.
  std::vector<RingGeneration> valid;
  /// Human-readable structured warnings: torn/corrupt generations
  /// skipped (naming the failing digest/section), manifest anomalies.
  std::vector<std::string> warnings;
  /// One past the largest generation number seen in any candidate
  /// file or manifest line (valid or not), so new captures never
  /// overwrite evidence of a torn generation.
  std::uint64_t next_gen = 0;
};

/// `dir + "/run.autosave.<gen>.snap"`.
[[nodiscard]] std::string generation_path(const std::string& dir,
                                          std::uint64_t gen);

/// `dir + "/run.autosave.manifest"`.
[[nodiscard]] std::string manifest_path(const std::string& dir);

/// Scan `dir` for autosave generations: parse the manifest if present
/// (tolerating its absence or corruption with warnings), glob for
/// generation files, and fully decode each candidate — a torn or
/// corrupt file is skipped with a warning naming the structured cause,
/// exactly as the `simany-snapshot-v1` reader reports it. A directory
/// that does not exist scans as empty (fresh start).
[[nodiscard]] RingScan scan_ring(const std::string& dir);

/// Atomically rewrite the manifest to describe `entries`.
void write_manifest(const std::string& dir,
                    const std::vector<RingGeneration>& entries);

}  // namespace simany::recover
