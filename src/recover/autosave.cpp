#include "recover/autosave.h"

#include <unistd.h>

#include <algorithm>
#include <iostream>

#include "snapshot/controller.h"
#include "snapshot/engine_codec.h"
#include "snapshot/snapshot.h"

namespace simany::recover {

AutosaveHook::AutosaveHook(Options opts)
    : opts_(std::move(opts)),
      // simlint: allow(det-wall-clock) wall cadence anchor, output-only
      last_wall_(std::chrono::steady_clock::now()),
      entries_(opts_.existing) {
  std::sort(opts_.forced_cursors.begin(), opts_.forced_cursors.end());
  opts_.forced_cursors.erase(std::unique(opts_.forced_cursors.begin(),
                                         opts_.forced_cursors.end()),
                             opts_.forced_cursors.end());
  if (opts_.every_quanta != 0) {
    // First cadence boundary past the resume cursor: the replay phase
    // re-visits old boundaries without capturing.
    periodic_next_ =
        (opts_.resume_cursor / opts_.every_quanta + 1) * opts_.every_quanta;
  }
}

std::uint64_t AutosaveHook::seq_budget(std::uint64_t done) {
  // Only the quanta cadence steers the barrier schedule; wall-clock
  // captures ride natural barriers so the timeline stays a pure
  // function of the run's inputs.
  if (opts_.every_quanta == 0) return ~std::uint64_t{0};
  return (done / opts_.every_quanta + 1) * opts_.every_quanta - done;
}

bool AutosaveHook::due(std::uint64_t total) {
  if (total <= opts_.resume_cursor) return false;  // replay phase
  if (total == last_capture_cursor_) return false;
  if (opts_.every_quanta != 0 && total >= periodic_next_) return true;
  if (opts_.wall_ms != 0) {
    // simlint: allow(det-wall-clock) wall cadence check, output-only
    const auto now = std::chrono::steady_clock::now();
    if (now - last_wall_ >= std::chrono::milliseconds(opts_.wall_ms)) {
      return true;
    }
  }
  return false;
}

void AutosaveHook::at_barrier(Engine& engine, bool finished) {
  (void)finished;  // a completed run needs no further resume point
  const std::uint64_t total = snapshot::EngineCodec::total_quanta(engine);
  if (due(total)) capture(engine, total, /*emergency=*/false);
}

void AutosaveHook::cl_quantum(Engine& engine, std::uint64_t done) {
  if (due(done)) capture(engine, done, /*emergency=*/false);
}

void AutosaveHook::at_abort(Engine& engine, SimErrorCode code) {
  const std::uint64_t total = snapshot::EngineCodec::total_quanta(engine);
  if (total <= opts_.resume_cursor) return;  // no new ground covered
  if (total == last_capture_cursor_) return;  // cadence capture landed here
  // A guard trip mid-round on the parallel host leaves shards at
  // wall-clock-dependent quanta inside the round — not a replayable
  // point (the barrier cursor is not a pure function of the run's
  // inputs per-shard). Fall back to the newest cadence generation.
  const std::uint32_t shards =
      snapshot::EngineCodec::shard_count(engine);
  if (shards > 1) {
    std::cerr << "simany: warning: skipping emergency autosave at abort ("
              << to_string(code)
              << "): parallel-host round was interrupted mid-flight; "
                 "retries resume from the last cadence generation\n";
    return;
  }
  // An emergency capture must never mask the abort being reported:
  // contain write failures to a warning.
  try {
    capture(engine, total, /*emergency=*/true);
  } catch (const SimError& e) {
    std::cerr << "simany: warning: emergency autosave failed (" << e.what()
              << "); retries resume from the last complete generation\n";
  }
}

void AutosaveHook::capture(Engine& engine, std::uint64_t total,
                           bool emergency) {
  RingGeneration rg;
  rg.gen = opts_.next_gen;
  rg.path = generation_path(opts_.dir, rg.gen);
  rg.cursor = total;
  rg.emergency = emergency;
  rg.forced_cursors = opts_.forced_cursors;

  // Manifest first, then the container, then pruning: a crash between
  // the steps leaves either a manifest entry whose file the next scan
  // skips with a warning, or an unpruned (still valid) old generation
  // — never a valid generation whose forced-cursor set is lost.
  entries_.push_back(rg);
  std::vector<std::string> doomed;
  while (entries_.size() > opts_.keep) {
    doomed.push_back(entries_.front().path);
    entries_.erase(entries_.begin());
  }
  write_manifest(opts_.dir, entries_);

  // Header: requested cursor = this capture's own cursor, cadence =
  // ours, so a future replay mirrors this exact schedule.
  const snapshot::SnapshotFile f = snapshot::Controller::build(
      engine, opts_.workload_fp, /*at_quanta=*/total, opts_.every_quanta,
      total);
  snapshot::write_snapshot_file(rg.path, f);

  for (const std::string& p : doomed) ::unlink(p.c_str());

  ++opts_.next_gen;
  ++captures_;
  last_capture_cursor_ = total;
  if (opts_.every_quanta != 0 && total >= periodic_next_) {
    periodic_next_ =
        (total / opts_.every_quanta + 1) * opts_.every_quanta;
  }
  // simlint: allow(det-wall-clock) wall cadence re-anchor, output-only
  last_wall_ = std::chrono::steady_clock::now();
}

}  // namespace simany::recover
