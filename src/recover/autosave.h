// Crash-safe autosave: a RunHook that captures generation-numbered
// snapshots into the bounded ring (see ring.h) on a quanta cadence, a
// wall-clock cadence, or both — plus an emergency capture when the
// guard aborts the run, so `--retries` resumes from the last good
// state instead of tick zero.
//
// Determinism: cadence captures steer the sequential host's barrier
// schedule exactly like snapshot::Controller does (seq_budget on
// quanta multiples); wall-triggered and emergency captures piggyback
// on barriers that exist anyway, and every capture records its own
// cursor as the header's requested cursor, so a future replay can
// force that exact barrier. With the hook absent the engine behaves
// bit-identically to an un-hooked run (zero-perturbation contract).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "recover/ring.h"
#include "snapshot/run_hook.h"

namespace simany::recover {

class AutosaveHook final : public snapshot::RunHook {
 public:
  struct Options {
    std::string dir;
    /// Capture every N quanta (0 = disabled).
    std::uint64_t every_quanta = 0;
    /// Capture when N wall milliseconds elapsed since the last capture
    /// (0 = disabled). Lands on natural barriers; no schedule steering.
    std::uint64_t wall_ms = 0;
    /// Ring bound: oldest generations beyond this are pruned.
    std::uint32_t keep = 4;
    std::uint64_t workload_fp = 0;
    /// First generation number to write (past everything in the ring).
    std::uint64_t next_gen = 0;
    /// Resume cursor: captures are suppressed until total quanta
    /// exceed this (the replay phase re-visits old barriers).
    std::uint64_t resume_cursor = 0;
    /// Forced-cursor set new generations inherit: every ancestor
    /// generation's capture cursor plus the resumed one.
    std::vector<std::uint64_t> forced_cursors;
    /// Ring entries already on disk (from the resume scan), so the
    /// manifest rewrite preserves their metadata.
    std::vector<RingGeneration> existing;
  };

  explicit AutosaveHook(Options opts);

  [[nodiscard]] std::uint64_t seq_budget(std::uint64_t done) override;
  void at_barrier(Engine& engine, bool finished) override;
  void cl_quantum(Engine& engine, std::uint64_t done) override;
  void at_abort(Engine& engine, SimErrorCode code) override;

  [[nodiscard]] std::uint64_t captures() const noexcept { return captures_; }

 private:
  /// True when a capture is due at quanta cursor `total`.
  [[nodiscard]] bool due(std::uint64_t total);
  void capture(Engine& engine, std::uint64_t total, bool emergency);

  Options opts_;
  std::uint64_t periodic_next_ = 0;
  std::uint64_t last_capture_cursor_ = ~std::uint64_t{0};
  std::uint64_t captures_ = 0;
  // simlint: allow(det-wall-clock) wall cadence; output-only, never sim state
  std::chrono::steady_clock::time_point last_wall_;
  std::vector<RingGeneration> entries_;
};

}  // namespace simany::recover
