// Concrete trace sinks: CSV event export, per-core activity summary,
// per-kind message histogram.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/trace.h"

namespace simany::stats {

/// Streams one CSV row per event: event,core,ticks,extra.
class CsvTrace final : public TraceSink {
 public:
  explicit CsvTrace(std::ostream& out);

  void on_task_start(CoreId core, Tick at) override;
  void on_task_end(CoreId core, Tick at) override;
  void on_message(const Message& m) override;
  void on_stall(CoreId core, Tick at) override;
  void on_wake(CoreId core, Tick at, Tick new_limit) override;

  [[nodiscard]] std::uint64_t rows() const noexcept { return rows_; }

 private:
  void row(const char* event, std::uint64_t core, Tick at,
           const char* extra = "");
  std::ostream* out_;
  std::uint64_t rows_ = 0;
};

/// Per-core counters: tasks run, stalls, messages sent.
class ActivitySummary final : public TraceSink {
 public:
  explicit ActivitySummary(std::uint32_t num_cores);

  void on_task_start(CoreId core, Tick at) override;
  void on_task_end(CoreId core, Tick at) override;
  void on_message(const Message& m) override;
  void on_stall(CoreId core, Tick at) override;

  struct PerCore {
    std::uint64_t tasks_started = 0;
    std::uint64_t tasks_ended = 0;
    std::uint64_t stalls = 0;
    std::uint64_t messages_sent = 0;
    Tick last_task_end = 0;
  };

  [[nodiscard]] const PerCore& core(std::uint32_t c) const {
    return per_core_.at(c);
  }
  [[nodiscard]] std::uint64_t total_tasks() const;
  void print(std::ostream& out) const;

 private:
  std::vector<PerCore> per_core_;
};

/// Counts architectural messages by kind.
class MessageHistogram final : public TraceSink {
 public:
  void on_message(const Message& m) override;

  [[nodiscard]] std::uint64_t count(MsgKind k) const {
    return counts_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t total() const;
  void print(std::ostream& out) const;

 private:
  static constexpr std::size_t kKinds =
      static_cast<std::size_t>(MsgKind::kOccUpdate) + 1;
  std::array<std::uint64_t, kKinds> counts_{};
};

/// Fans one event stream out to several sinks.
class TeeTrace final : public TraceSink {
 public:
  void add(TraceSink* sink) { sinks_.push_back(sink); }

  void on_task_start(CoreId core, Tick at) override {
    for (auto* s : sinks_) s->on_task_start(core, at);
  }
  void on_task_end(CoreId core, Tick at) override {
    for (auto* s : sinks_) s->on_task_end(core, at);
  }
  void on_message(const Message& m) override {
    for (auto* s : sinks_) s->on_message(m);
  }
  void on_stall(CoreId core, Tick at) override {
    for (auto* s : sinks_) s->on_stall(core, at);
  }
  void on_wake(CoreId core, Tick at, Tick new_limit) override {
    for (auto* s : sinks_) s->on_wake(core, at, new_limit);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace simany::stats
