// Result aggregation and reporting shared by the benchmark harnesses.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace simany::stats {

/// Relative error |a - b| / b.
[[nodiscard]] double rel_error(double a, double b);

/// Geometric mean of strictly positive values; returns 0 for empty.
[[nodiscard]] double geo_mean(const std::vector<double>& values);

/// Arithmetic mean; returns 0 for empty.
[[nodiscard]] double mean(const std::vector<double>& values);

/// One data series for a figure: y values indexed like the shared
/// x-axis of the Figure (e.g. core counts).
struct Series {
  std::string name;
  std::vector<double> y;
};

/// A paper-figure-like table: one column per x value, one row per
/// series. Prints aligned ASCII suitable for eyeballing against the
/// paper's log-log plots.
class FigureTable {
 public:
  FigureTable(std::string title, std::string x_label,
              std::vector<double> xs);

  void add_series(Series s);
  void print(std::ostream& out) const;
  /// Machine-readable form of the same table, as one JSON object
  /// ({"title", "x_label", "xs", "series": [{"name", "y"}]}); consumed
  /// by tools/bench_gate.py.
  void print_json(std::ostream& out) const;

  [[nodiscard]] const std::vector<Series>& series() const noexcept {
    return series_;
  }
  [[nodiscard]] const std::vector<double>& xs() const noexcept {
    return xs_;
  }

 private:
  std::string title_;
  std::string x_label_;
  std::vector<double> xs_;
  std::vector<Series> series_;
};

/// Formats a double compactly (3 significant digits, scientific for
/// very large/small magnitudes).
[[nodiscard]] std::string fmt(double v);

}  // namespace simany::stats
