#include "stats/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace simany::stats {

double rel_error(double a, double b) {
  if (b == 0.0) throw std::invalid_argument("rel_error: zero reference");
  return std::abs(a - b) / std::abs(b);
}

double geo_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) {
      throw std::invalid_argument("geo_mean: non-positive value");
    }
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::string fmt(double v) {
  char buf[32];
  const double a = std::abs(v);
  if (v != 0.0 && (a >= 1e6 || a < 1e-3)) {
    std::snprintf(buf, sizeof buf, "%.2e", v);
  } else if (a >= 100.0) {
    if (v == std::floor(v)) {
      std::snprintf(buf, sizeof buf, "%.0f", v);
    } else {
      std::snprintf(buf, sizeof buf, "%.1f", v);
    }
  } else {
    std::snprintf(buf, sizeof buf, "%.3g", v);
  }
  return buf;
}

FigureTable::FigureTable(std::string title, std::string x_label,
                         std::vector<double> xs)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      xs_(std::move(xs)) {}

void FigureTable::add_series(Series s) {
  if (s.y.size() != xs_.size()) {
    throw std::invalid_argument("FigureTable: series length mismatch");
  }
  series_.push_back(std::move(s));
}

namespace {

// JSON string escaping for the small character set table titles use.
void json_string(std::ostream& out, const std::string& v) {
  out << '"';
  for (char ch : v) {
    if (ch == '"' || ch == '\\') out << '\\';
    out << ch;
  }
  out << '"';
}

void json_doubles(std::ostream& out, const std::vector<double>& vs) {
  out << '[';
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i > 0) out << ',';
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", vs[i]);
    out << buf;
  }
  out << ']';
}

}  // namespace

void FigureTable::print_json(std::ostream& out) const {
  out << "{\"title\":";
  json_string(out, title_);
  out << ",\"x_label\":";
  json_string(out, x_label_);
  out << ",\"xs\":";
  json_doubles(out, xs_);
  out << ",\"series\":[";
  for (std::size_t r = 0; r < series_.size(); ++r) {
    if (r > 0) out << ',';
    out << "{\"name\":";
    json_string(out, series_[r].name);
    out << ",\"y\":";
    json_doubles(out, series_[r].y);
    out << '}';
  }
  out << "]}";
}

void FigureTable::print(std::ostream& out) const {
  out << "== " << title_ << " ==\n";
  // Column widths: max over header cells and values.
  std::size_t name_w = x_label_.size();
  for (const Series& s : series_) name_w = std::max(name_w, s.name.size());
  std::vector<std::size_t> col_w(xs_.size(), 0);
  std::vector<std::string> headers(xs_.size());
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    headers[i] = fmt(xs_[i]);
    col_w[i] = headers[i].size();
  }
  std::vector<std::vector<std::string>> cells(series_.size());
  for (std::size_t r = 0; r < series_.size(); ++r) {
    cells[r].resize(xs_.size());
    for (std::size_t i = 0; i < xs_.size(); ++i) {
      cells[r][i] = fmt(series_[r].y[i]);
      col_w[i] = std::max(col_w[i], cells[r][i].size());
    }
  }
  auto pad = [&out](const std::string& s, std::size_t w) {
    for (std::size_t k = s.size(); k < w; ++k) out << ' ';
    out << s;
  };
  pad(x_label_, name_w);
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    out << "  ";
    pad(headers[i], col_w[i]);
  }
  out << "\n";
  for (std::size_t r = 0; r < series_.size(); ++r) {
    pad(series_[r].name, name_w);
    for (std::size_t i = 0; i < xs_.size(); ++i) {
      out << "  ";
      pad(cells[r][i], col_w[i]);
    }
    out << "\n";
  }
}

}  // namespace simany::stats
