#include "stats/trace_sinks.h"

#include <ostream>

namespace simany::stats {

CsvTrace::CsvTrace(std::ostream& out) : out_(&out) {
  *out_ << "event,core,ticks,extra\n";
}

void CsvTrace::row(const char* event, std::uint64_t core, Tick at,
                   const char* extra) {
  *out_ << event << ',' << core << ',' << at << ',' << extra << '\n';
  ++rows_;
}

void CsvTrace::on_task_start(CoreId core, Tick at) {
  row("task_start", core, at);
}
void CsvTrace::on_task_end(CoreId core, Tick at) {
  row("task_end", core, at);
}
void CsvTrace::on_message(const Message& m) {
  row("message", m.src, m.sent, to_string(m.kind));
}
void CsvTrace::on_stall(CoreId core, Tick at) { row("stall", core, at); }
void CsvTrace::on_wake(CoreId core, Tick at, Tick) {
  row("wake", core, at);
}

ActivitySummary::ActivitySummary(std::uint32_t num_cores)
    : per_core_(num_cores) {}

void ActivitySummary::on_task_start(CoreId core, Tick) {
  ++per_core_[core].tasks_started;
}
void ActivitySummary::on_task_end(CoreId core, Tick at) {
  ++per_core_[core].tasks_ended;
  per_core_[core].last_task_end = at;
}
void ActivitySummary::on_message(const Message& m) {
  ++per_core_[m.src].messages_sent;
}
void ActivitySummary::on_stall(CoreId core, Tick) {
  ++per_core_[core].stalls;
}

std::uint64_t ActivitySummary::total_tasks() const {
  std::uint64_t total = 0;
  for (const auto& pc : per_core_) total += pc.tasks_ended;
  return total;
}

void ActivitySummary::print(std::ostream& out) const {
  out << "core  tasks  stalls  msgs_sent\n";
  for (std::size_t c = 0; c < per_core_.size(); ++c) {
    const PerCore& pc = per_core_[c];
    out << c << "  " << pc.tasks_ended << "  " << pc.stalls << "  "
        << pc.messages_sent << "\n";
  }
}

void MessageHistogram::on_message(const Message& m) {
  ++counts_[static_cast<std::size_t>(m.kind)];
}

std::uint64_t MessageHistogram::total() const {
  std::uint64_t total = 0;
  for (auto c : counts_) total += c;
  return total;
}

void MessageHistogram::print(std::ostream& out) const {
  for (std::size_t k = 0; k < kKinds; ++k) {
    if (counts_[k] == 0) continue;
    out << to_string(static_cast<MsgKind>(k)) << ": " << counts_[k]
        << "\n";
  }
}

}  // namespace simany::stats
