#include "cyclesim/cycle_sim.h"

namespace simany::cyclesim {

std::unique_ptr<Engine> make_cycle_sim(ArchConfig cfg) {
  return std::make_unique<Engine>(std::move(cfg),
                                  ExecutionMode::kCycleLevel);
}

ArchConfig validation_vt_config(ArchConfig cfg) {
  if (cfg.mem.model == mem::MemoryModel::kShared) {
    cfg.mem.coherence_timing = true;
  }
  return cfg;
}

}  // namespace simany::cyclesim
