// Cycle-level reference simulator (the UNISIM-baseline stand-in).
//
// The paper validates SiMany against a hybrid cycle-level/system-level
// simulator built on UNISIM (SS V). We reproduce that reference with a
// conservative configuration of the shared engine: the scheduler always
// advances the earliest actionable core, compute blocks are chopped
// into 16-cycle quanta, data flows through real set-associative split
// I/D L1 caches, and cache coherence is fully charged per access via
// the directory model. The same task programs run unmodified.
//
// Differences from the virtual-time engine intentionally mirror the
// paper's CL-vs-VT modeling gaps:
//  * strict global event ordering instead of spatial synchronization;
//  * real LRU caches instead of the pessimistic function-scoped L1;
//  * explicit instruction-fetch charges;
//  * on polymorphic meshes the L1 latency stays uniform across cores
//    (SiMany scales it with core speed), reproducing the Fig 6 offset.
#pragma once

#include "config/arch_config.h"
#include "core/engine.h"

namespace simany::cyclesim {

/// A ready-to-run cycle-level simulation of `cfg`.
/// Shared-memory configs always model coherence (the reference
/// simulator cannot turn it off, paper SS V).
[[nodiscard]] std::unique_ptr<Engine> make_cycle_sim(ArchConfig cfg);

/// The matching SiMany configuration for validation runs: same
/// architecture with the abstract coherence-delay model enabled.
[[nodiscard]] ArchConfig validation_vt_config(ArchConfig cfg);

}  // namespace simany::cyclesim
