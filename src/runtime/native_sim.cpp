#include "runtime/native_sim.h"

#include <chrono>

namespace simany::runtime {

double run_native(const TaskFn& root, std::uint64_t seed) {
  NativeCtx ctx(seed);
  // simlint: allow(det-wall-clock) native baseline measures wall time
  const auto t0 = std::chrono::steady_clock::now();
  root(ctx);
  // simlint: allow(det-wall-clock) native baseline measures wall time
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace simany::runtime
