// Data-structure facades for simulated programs.
//
// Benchmarks keep their real data in ordinary C++ containers (the
// simulator only models time, not values) and funnel every access
// through these wrappers so the right architectural costs are charged
// on both memory models with a single benchmark source.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/task_ctx.h"

namespace simany::runtime {

/// Allocates a range in the simulated synthetic address space.
///
/// Benchmarks must not feed native pointers to mem_read/mem_write:
/// heap addresses vary run to run (allocator state, ASLR) and would
/// make cache-model timing non-reproducible. Synthetic ranges are
/// 64-byte aligned so the line-straddling behaviour of a structure is
/// identical no matter how many allocations preceded it.
[[nodiscard]] std::uint64_t synth_alloc(std::uint64_t bytes);

/// A native vector whose element accesses are annotated as simulated
/// loads/stores. In shared-memory mode these hit the L1/shared-memory
/// path; in distributed mode they model core-local data (L1/L2).
template <class T>
class OwnedVector {
 public:
  OwnedVector() = default;
  explicit OwnedVector(std::vector<T> data)
      : data_(std::move(data)),
        synth_base_(synth_alloc(data_.size() * sizeof(T))) {}
  explicit OwnedVector(std::size_t n, T init = T{})
      : data_(n, init), synth_base_(synth_alloc(n * sizeof(T))) {}

  [[nodiscard]] const T& read(TaskCtx& ctx, std::size_t i) const {
    ctx.mem_read(addr_of(i), sizeof(T));
    return data_[i];
  }
  void write(TaskCtx& ctx, std::size_t i, T value) {
    ctx.mem_write(addr_of(i), sizeof(T));
    data_[i] = std::move(value);
  }
  /// Annotated read of a contiguous range [i, i+n).
  void read_range(TaskCtx& ctx, std::size_t i, std::size_t n) const {
    if (n != 0) ctx.mem_read(addr_of(i), static_cast<std::uint32_t>(n * sizeof(T)));
  }
  /// Annotated write of a contiguous range [i, i+n) (values are
  /// mutated natively by the caller).
  void write_range(TaskCtx& ctx, std::size_t i, std::size_t n) {
    if (n != 0) ctx.mem_write(addr_of(i), static_cast<std::uint32_t>(n * sizeof(T)));
  }

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::vector<T>& raw() noexcept { return data_; }
  [[nodiscard]] const std::vector<T>& raw() const noexcept { return data_; }
  T& raw(std::size_t i) noexcept { return data_[i]; }
  const T& raw(std::size_t i) const noexcept { return data_[i]; }

  /// Simulated address of element `i`.
  [[nodiscard]] std::uint64_t addr_of(std::size_t i) const noexcept {
    return synth_base_ + i * sizeof(T);
  }

 private:
  std::vector<T> data_;
  std::uint64_t synth_base_ = 0;
};

/// How CellArray spreads cell homes across the machine.
enum class Placement : std::uint8_t {
  kRoundRobin,  // cell i homed on core i % num_cores
  kBlock,       // contiguous blocks of cells per core
  kLocal,       // everything on the creating core
};

/// One run-time cell per element, homed across the distributed banks.
/// Must be constructed inside a task (it calls make_cell_at).
class CellArray {
 public:
  CellArray(TaskCtx& ctx, std::uint32_t count, std::uint32_t bytes_per_cell,
            Placement placement = Placement::kRoundRobin) {
    cells_.reserve(count);
    const std::uint32_t cores = ctx.num_cores();
    const std::uint32_t block = (count + cores - 1) / cores;
    for (std::uint32_t i = 0; i < count; ++i) {
      CoreId home = ctx.core_id();
      switch (placement) {
        case Placement::kRoundRobin: home = i % cores; break;
        case Placement::kBlock: home = std::min(i / block, cores - 1); break;
        case Placement::kLocal: break;
      }
      cells_.push_back(ctx.make_cell_at(bytes_per_cell, home));
    }
  }

  [[nodiscard]] CellId cell(std::size_t i) const { return cells_.at(i); }
  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

 private:
  std::vector<CellId> cells_;
};

}  // namespace simany::runtime
