#include "runtime/data.h"

namespace simany::runtime {

std::uint64_t synth_alloc(std::uint64_t bytes) {
  // Single-threaded simulator; a plain counter is sufficient. Bases are
  // 64-byte aligned so line-straddle behaviour never depends on how
  // many allocations happened before (the counter survives across
  // Engine instances in one process).
  static std::uint64_t next = 64;
  const std::uint64_t base = next;
  next += (bytes + 127) & ~std::uint64_t{63};  // pad one line between
  return base;
}

}  // namespace simany::runtime
