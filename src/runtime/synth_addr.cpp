#include "runtime/data.h"

#include <atomic>

namespace simany::runtime {

std::uint64_t synth_alloc(std::uint64_t bytes) {
  // Task bodies on different shards may allocate concurrently under the
  // parallel host, so the counter is atomic. Bases stay 64-byte aligned
  // so line-straddle behaviour never depends on how many allocations
  // happened before (the counter survives across Engine instances in
  // one process, and allocation order across shards does not affect
  // simulated cost — only the span in lines does).
  static std::atomic<std::uint64_t> next{64};
  const std::uint64_t pad = (bytes + 127) & ~std::uint64_t{63};
  return next.fetch_add(pad, std::memory_order_relaxed);
}

}  // namespace simany::runtime
