// Native pass-through executor.
//
// Runs the same instrumented task code with every simulator interaction
// reduced to a no-op and every conditional spawn executed inline — i.e.
// plain sequential native execution. This is the denominator of the
// paper's "normalized simulation time" metric (Fig 7: simulation time
// normalized to native execution on a single-core machine).
#pragma once

#include <cstdint>

#include "core/task_ctx.h"

namespace simany::runtime {

/// TaskCtx whose operations cost nothing and spawn nothing.
class NativeCtx final : public TaskCtx {
 public:
  explicit NativeCtx(std::uint64_t seed = 1) : rng_(seed) {}

  void compute(Cycles) override {}
  void compute(const timing::InstMix&) override {}
  void function_boundary() override {}
  void mem_read(std::uint64_t, std::uint32_t) override {}
  void mem_write(std::uint64_t, std::uint32_t) override {}
  GroupId make_group() override { return next_group_++; }
  bool probe() override { return false; }  // every spawn runs inline
  void spawn(GroupId, TaskFn fn, std::uint32_t) override {
    // Defensive: spawn after probe()==false is an API misuse, but a
    // native inline run is still the correct semantics.
    fn(*this);
  }
  void join(GroupId) override {}
  LockId make_lock() override { return next_lock_++; }
  void lock(LockId) override {}
  void unlock(LockId) override {}
  CellId make_cell(std::uint32_t) override { return next_cell_++; }
  CellId make_cell_at(std::uint32_t, CoreId) override {
    return next_cell_++;
  }
  void cell_acquire(CellId, AccessMode) override {}
  void cell_release(CellId) override {}
  CoreId core_id() const override { return 0; }
  std::uint32_t num_cores() const override { return 1; }
  Cycles now_cycles() const override { return 0; }
  mem::MemoryModel memory_model() const override {
    return mem::MemoryModel::kShared;
  }
  Rng& rng() override { return rng_; }

 private:
  Rng rng_;
  GroupId next_group_ = 0;
  LockId next_lock_ = 0;
  CellId next_cell_ = 0;
};

/// Runs `root` natively and returns the wall-clock seconds it took.
double run_native(const TaskFn& root, std::uint64_t seed = 1);

}  // namespace simany::runtime
