// Host-round wall-clock profiler.
//
// Records, per shard, how long each phase of the bulk-synchronous host
// round took in real time: draining inbound mailboxes, executing
// quanta, publishing proxy snapshots, waiting at the epoch barrier,
// and the serial commit phase (attributed to the pseudo-shard
// kSerial). Spans become host-side tracks in the Perfetto export, so
// shard imbalance is visible next to the simulated timeline.
//
// Threading: each shard's span vector is written only by the worker
// that owns the shard (the same ownership discipline as ShardState);
// the serial vector only by the thread inside host_serial_phase. All
// vectors are read after the run ends. Timing calls cost two
// steady_clock reads per phase and exist only when --profile-host is
// set; a run without a profiler never touches a clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace simany::obs {

enum class HostPhase : std::uint8_t {
  kDrain = 0,    // applying inbound cross-shard ops
  kExecute,      // running simulation quanta
  kPublish,      // freezing VtProxy snapshots
  kBarrier,      // waiting for the round barrier
  kSerial,       // the single-threaded commit / termination phase
};

[[nodiscard]] const char* to_string(HostPhase p) noexcept;

struct HostSpan {
  std::uint64_t t0_ns = 0;  // offset from run start
  std::uint64_t t1_ns = 0;
  HostPhase phase = HostPhase::kExecute;
};

class HostProfiler {
 public:
  /// Pseudo-shard id for serial-phase spans.
  static constexpr std::uint32_t kSerial = ~std::uint32_t{0};

  void bind(std::uint32_t num_shards) {
    spans_.assign(num_shards, {});
    serial_.clear();
    t0_ = clock::now();
  }

  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             t0_)
            .count());
  }

  void record(std::uint32_t shard, HostPhase phase, std::uint64_t t0_ns,
              std::uint64_t t1_ns) {
    auto& v = shard == kSerial ? serial_ : spans_[shard].spans;
    v.push_back(HostSpan{t0_ns, t1_ns, phase});
  }

  [[nodiscard]] std::uint32_t num_shards() const noexcept {
    return static_cast<std::uint32_t>(spans_.size());
  }
  [[nodiscard]] const std::vector<HostSpan>& shard_spans(
      std::uint32_t shard) const {
    return spans_[shard].spans;
  }
  [[nodiscard]] const std::vector<HostSpan>& serial_spans() const {
    return serial_;
  }

 private:
  using clock = std::chrono::steady_clock;
  struct alignas(64) PerShard {
    std::vector<HostSpan> spans;
  };
  std::vector<PerShard> spans_;
  std::vector<HostSpan> serial_;
  clock::time_point t0_{};
};

}  // namespace simany::obs
