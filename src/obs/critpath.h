// Causal critical-path analysis over the merged telemetry stream.
//
// analyze_critical_path() reconstructs the happens-before chain that
// determined the run's completion time: starting from the last task to
// finish, it walks backwards through the canonical event stream along
// causal edges — on-core execution order, message send -> receive,
// task enqueue -> activation, and lock/cell release -> grant — until it
// reaches virtual time zero. Every tick of the run's final virtual
// time is attributed to exactly one contiguous segment with a cause
// category (compute, NoC flight, memory traffic, lock/cell contention,
// fault-induced delay, load imbalance, run-time-system overhead), so
// the attributed segments always sum to the completion time — the
// conservation property src/check/critpath_check.h re-verifies.
//
// Determinism contract: the report is a pure function of the merged
// event multiset. It consumes only architectural events (stall/wake
// records are skipped — they are zero-width in virtual time and their
// cadence is host-specific), every tie-break is the canonical event
// order, and no container with unordered iteration is used. Runs whose
// architectural timelines agree across shard counts therefore produce
// bit-identical reports on the sequential, par-1 and par-N hosts.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/vtime.h"
#include "obs/event.h"

namespace simany::obs {

/// Cause categories for critical-path segments.
enum class CritCause : std::uint8_t {
  kCompute = 0,        // task body executing on the critical core
  kRuntime,            // run-time system work (dispatch, msg handling)
  kNoc,                // control-message flight over the network
  kMemory,             // data movement (cell request/response/writeback)
  kLockContention,     // waiting for a named lock held elsewhere
  kCellContention,     // waiting for a cell held elsewhere
  kFault,              // injected stall/delay on the path
  kImbalance,          // runnable task queued behind other work
};

inline constexpr std::size_t kNumCritCauses = 8;

[[nodiscard]] const char* to_string(CritCause c) noexcept;

/// One attributed interval of the critical path. On-core segments have
/// src == core; message-flight segments run src -> core (the receiver
/// owns the arrival). `sub` carries the MsgKind for flights, the
/// FaultKind for fault segments and the AccessMode for cell waits;
/// `obj` is the lock/cell id for contention segments.
struct CritSegment {
  Tick t0 = 0;
  Tick t1 = 0;
  std::uint32_t core = 0;
  std::uint32_t src = 0;
  CritCause cause = CritCause::kCompute;
  std::uint8_t sub = 0;
  std::uint64_t obj = 0;

  [[nodiscard]] Tick len() const noexcept { return t1 - t0; }
};

struct RankedCore {
  std::uint32_t core = 0;
  Tick ticks = 0;
};

struct RankedLink {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  Tick ticks = 0;
};

struct RankedObject {
  std::uint64_t id = 0;
  bool is_cell = false;
  Tick ticks = 0;
};

struct CritPathReport {
  /// Virtual time of the terminal event == sum of all segment lengths.
  Tick total_ticks = 0;
  /// Core that executed the last task to finish (the walk's origin).
  std::uint32_t terminal_core = 0;
  /// True when the backward walk hit its step bound and folded the
  /// unexplained prefix into one kRuntime segment (defensive: a
  /// well-formed stream never trips this).
  bool truncated = false;
  /// Segments in ascending, gap-free virtual-time order.
  std::vector<CritSegment> segments;
  /// Ticks attributed to each CritCause (indexed by enum value).
  std::array<Tick, kNumCritCauses> cause_ticks{};
  /// Top-k rankings (descending ticks, ascending id tie-break).
  std::vector<RankedCore> top_cores;
  std::vector<RankedLink> top_links;
  std::vector<RankedObject> top_objects;

  /// FNV-1a64 over the full report content — the determinism-test
  /// handle (bit-identical reports <=> equal fingerprints).
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// Analyzes the canonical merged stream (Telemetry::events(), already
/// sorted by canonical_less). `top_k` bounds the ranking lists.
[[nodiscard]] CritPathReport analyze_critical_path(
    const std::vector<Event>& events, std::size_t top_k = 10);

/// Serializes the report as a single `simany-critpath-v1` JSON object
/// (consumed by tools/trace_summary.py and tools/run_diff.py).
void write_critpath_json(std::ostream& os, const CritPathReport& r);

}  // namespace simany::obs
