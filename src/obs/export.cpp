#include "obs/export.h"

#include <cstdio>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/message.h"
#include "core/vtime.h"
#include "fault/fault_plan.h"
#include "obs/critpath.h"
#include "obs/telemetry.h"

namespace simany::obs {

namespace {

/// Virtual time on the trace axis: one simulated cycle is one
/// microsecond, so drift windows measured in cycles read directly off
/// the Perfetto ruler.
[[nodiscard]] double vt_us(Tick t) noexcept { return cycles_fp(t); }

void emit_slice(std::ostream& os, bool& first, int pid, std::uint64_t tid,
                const char* cat, const std::string& name, double ts,
                double dur) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"cat\":\"" << cat << "\",\"name\":\"" << name
     << "\",\"ts\":" << ts << ",\"dur\":" << dur << '}';
}

void emit_instant(std::ostream& os, bool& first, int pid, std::uint64_t tid,
                  const char* cat, const std::string& name, double ts) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"ph\":\"i\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"cat\":\"" << cat << "\",\"name\":\"" << name
     << "\",\"ts\":" << ts << ",\"s\":\"t\"}";
}

void emit_thread_name(std::ostream& os, bool& first, int pid,
                      std::uint64_t tid, const std::string& name) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << name
     << "\"}}";
}

void emit_process_name(std::ostream& os, bool& first, int pid,
                       const char* name) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"ph\":\"M\",\"pid\":" << pid
     << ",\"name\":\"process_name\",\"args\":{\"name\":\"" << name
     << "\"}}";
}

[[nodiscard]] std::string object_label(const char* what, std::uint64_t id) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s %llx", what,
                static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Telemetry& t,
                        const ChromeTraceOptions& opt) {
  const auto& ev = t.events();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  emit_process_name(os, first, 1, "simulated cores (virtual time)");

  // Pass 1: which cores appear at all (named tracks only for those).
  std::map<std::uint32_t, bool> seen;
  for (const Event& e : ev) seen[e.core] = true;
  for (const auto& [core, _] : seen) {
    emit_thread_name(os, first, 1, core, object_label("core", core));
  }

  // Pass 2: pair events into slices. The stream is vtime-sorted, so a
  // single forward walk with per-core open markers suffices.
  std::map<std::uint32_t, Tick> open_task;
  std::map<std::uint32_t, Tick> open_stall;
  std::map<std::pair<std::uint32_t, std::uint64_t>, Tick> open_obj;
  for (const Event& e : ev) {
    switch (e.kind) {
      case EventKind::kTaskStart:
        open_task[e.core] = e.vtime;
        break;
      case EventKind::kTaskEnd: {
        const auto it = open_task.find(e.core);
        if (it != open_task.end()) {
          emit_slice(os, first, 1, e.core, "task", "task",
                     vt_us(it->second), vt_us(e.vtime - it->second));
          open_task.erase(it);
        }
        break;
      }
      case EventKind::kStall:
        open_stall[e.core] = e.vtime;
        break;
      case EventKind::kWake: {
        const auto it = open_stall.find(e.core);
        if (it != open_stall.end()) {
          emit_slice(os, first, 1, e.core, "sync", "stall",
                     vt_us(it->second), vt_us(e.vtime - it->second));
          open_stall.erase(it);
        }
        break;
      }
      case EventKind::kLockAcquire:
      case EventKind::kCellAcquire:
        open_obj[{e.core, e.a}] = e.vtime;
        break;
      case EventKind::kLockRelease:
      case EventKind::kCellRelease: {
        const auto it = open_obj.find({e.core, e.a});
        if (it != open_obj.end()) {
          const bool lock = e.kind == EventKind::kLockRelease;
          emit_slice(os, first, 1, e.core, "critical",
                     object_label(lock ? "lock" : "cell", e.a),
                     vt_us(it->second), vt_us(e.vtime - it->second));
          open_obj.erase(it);
        }
        break;
      }
      case EventKind::kFault:
        emit_instant(os, first, 1, e.core, "fault",
                     std::string("fault:") +
                         fault::to_string(
                             static_cast<fault::FaultKind>(e.sub)),
                     vt_us(e.vtime));
        break;
      default:
        break;  // messages stay in the CSV / summary form
    }
  }

  // Critical-path lane: one slice per attributed segment, named by
  // cause and labelled with the core (or link) that bound the run.
  if (opt.critpath != nullptr && !opt.critpath->segments.empty()) {
    emit_process_name(os, first, 3, "critical path (virtual time)");
    emit_thread_name(os, first, 3, 0, "binding chain");
    for (const CritSegment& seg : opt.critpath->segments) {
      std::string name = to_string(seg.cause);
      if (seg.src != seg.core) {
        name += ' ' + std::to_string(seg.src) + "->" +
                std::to_string(seg.core);
      } else {
        name += " @" + std::to_string(seg.core);
      }
      emit_slice(os, first, 3, 0, "critpath", name, vt_us(seg.t0),
                 vt_us(seg.t1 - seg.t0));
    }
  }

  // Host-side wall-clock tracks (only present under --profile-host).
  const HostProfiler& prof = t.host_profiler();
  bool have_host = !prof.serial_spans().empty();
  for (std::uint32_t s = 0; !have_host && s < prof.num_shards(); ++s) {
    have_host = !prof.shard_spans(s).empty();
  }
  if (have_host) {
    emit_process_name(os, first, 2, "host rounds (wall clock)");
    for (std::uint32_t s = 0; s < prof.num_shards(); ++s) {
      std::string name = object_label("shard", s);
      if (opt.host_threads > 1) {
        name += " / worker " + std::to_string(s % opt.host_threads);
      }
      emit_thread_name(os, first, 2, s, name);
      for (const HostSpan& sp : prof.shard_spans(s)) {
        emit_slice(os, first, 2, s, "host", to_string(sp.phase),
                   static_cast<double>(sp.t0_ns) / 1000.0,
                   static_cast<double>(sp.t1_ns - sp.t0_ns) / 1000.0);
      }
    }
    const std::uint64_t serial_tid = prof.num_shards();
    emit_thread_name(os, first, 2, serial_tid, "serial phase");
    for (const HostSpan& sp : prof.serial_spans()) {
      emit_slice(os, first, 2, serial_tid, "host", to_string(sp.phase),
                 static_cast<double>(sp.t0_ns) / 1000.0,
                 static_cast<double>(sp.t1_ns - sp.t0_ns) / 1000.0);
    }
  }

  os << "\n]}\n";
}

void write_events_csv(std::ostream& os, const Telemetry& t) {
  os << "vtime_ticks,core,event,sub,dst,a,b\n";
  for (const Event& e : t.events()) {
    const char* sub = "";
    if (e.kind == EventKind::kMsgPost || e.kind == EventKind::kMsgHandled) {
      sub = to_string(static_cast<MsgKind>(e.sub));
    } else if (e.kind == EventKind::kFault) {
      sub = fault::to_string(static_cast<fault::FaultKind>(e.sub));
    }
    os << e.vtime << ',' << e.core << ',' << to_string(e.kind) << ',' << sub
       << ',' << e.dst << ',' << e.a << ',' << e.b << '\n';
  }
}

}  // namespace simany::obs
