// MetricsRegistry: named counters, gauges, fixed-bucket histograms and
// time series, with JSON / CSV export.
//
// The registry itself is a plain single-threaded container. The engine
// never writes to it concurrently: per-shard samples are staged in the
// shard-local telemetry buffers and folded into the registry once, at
// the end of the run (obs::Telemetry::finalize). It is equally usable
// standalone — see tests/test_telemetry.cpp for the unit surface.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace simany::obs {

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of
/// each bucket; values above the last bound land in an implicit
/// overflow bucket. Bounds must be strictly increasing.
///
/// Raw values are retained alongside the bucket counts so percentiles
/// are *exact* (nearest-rank over the sorted values), not bucket
/// interpolations — the tail-latency primitive the traffic workloads
/// and tools/run_diff.py consume. Registry histograms are filled once
/// at finalize from the merged event stream, so retention costs one
/// double per recorded value, never hot-path allocation.
struct Histogram {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
  std::vector<double> values;         // every recorded value, append order
  std::uint64_t total = 0;
  double sum = 0.0;

  explicit Histogram(std::vector<double> upper_bounds);
  void record(double v);

  /// Exact nearest-rank percentile (p in [0, 100]); 0 when empty.
  [[nodiscard]] double percentile(double p) const;
};

/// The percentile set every exporter emits (p50/p90/p99/p99.9).
inline constexpr double kExportPercentiles[] = {50.0, 90.0, 99.0, 99.9};
inline constexpr const char* kExportPercentileNames[] = {"p50", "p90", "p99",
                                                         "p99.9"};

/// One time-series sample. `core` is the simulated core the sample
/// describes, or -1 for a machine-wide quantity.
struct Sample {
  std::uint64_t t_cycles = 0;
  std::int32_t core = -1;
  double value = 0.0;
};

class MetricsRegistry {
 public:
  /// Named scalar accessors create-on-first-use and return a stable
  /// reference (storage is node-based).
  std::uint64_t& counter(std::string_view name);
  double& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Appends one sample to the named series (created on first use).
  void sample(std::string_view series, std::uint64_t t_cycles,
              std::int32_t core, double value);

  /// Sorts every series by (t, core); exporters and fingerprints call
  /// this so output order never depends on append order.
  void sort_series();

  /// Full registry as a single JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{...},
  ///    "series":{"name":[{"t":..,"core":..,"value":..},...]}}
  void write_json(std::ostream& os) const;

  /// Series only, one row per sample: series,t_cycles,core,value
  void write_csv(std::ostream& os) const;

  /// FNV-1a over the sorted series content (names, timestamps, cores,
  /// value bit patterns) — the metrics counterpart of the event-stream
  /// fingerprint.
  [[nodiscard]] std::uint64_t series_fingerprint() const;

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           series_.empty();
  }
  [[nodiscard]] const std::vector<Sample>* find_series(
      std::string_view name) const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    T value;
  };
  // Small-N linear maps: a run registers a handful of metrics, and
  // node-based storage keeps references stable across registrations.
  std::vector<std::unique_ptr<Named<std::uint64_t>>> counters_;
  std::vector<std::unique_ptr<Named<double>>> gauges_;
  std::vector<std::unique_ptr<Named<Histogram>>> histograms_;
  std::vector<std::unique_ptr<Named<std::vector<Sample>>>> series_;
};

}  // namespace simany::obs
