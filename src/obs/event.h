// Telemetry event model (src/obs).
//
// Every event is a plain record of one simulation-state transition,
// stamped with the *virtual* time at which it happened. Events are
// appended to per-shard buffers as the engine runs and merged into one
// canonical stream at the end of the run. The canonical order is
// lexicographic over the full field tuple, so the merged stream is a
// pure function of the event *multiset* — it does not depend on which
// shard recorded an event, in which host round, or on how worker
// threads interleaved. Two runs whose simulated timelines agree
// therefore produce bit-identical merged traces regardless of the host
// backend (see docs/observability.md for the exact guarantee matrix).
#pragma once

#include <cstdint>
#include <tuple>

#include "core/vtime.h"

namespace simany::obs {

/// What happened. The enum order doubles as the tie-break rank for
/// events on the same core at the same virtual time: an end sorts
/// before the start that follows it, a wake before the work it
/// enables, so slice builders see well-nested streams.
enum class EventKind : std::uint8_t {
  kTaskEnd = 0,      // task finished on `core`
  kWake,             // sync-stalled core may run again; a = new limit
  kMsgHandled,       // core consumed a message; dst = src core, a = arrival
  kTaskEnqueue,      // task landed in core's queue; a = birth tick
  kTaskStart,        // core began executing a task
  kStall,            // core hit the spatial-sync drift limit
  kMsgPost,          // message entered the network; core = src, dst = dst,
                     // sub = MsgKind, a = arrival tick, b = bytes
  kLockAcquire,      // a = lock id
  kLockRelease,      // a = lock id
  kCellAcquire,      // a = cell id, sub = AccessMode
  kCellRelease,      // a = cell id
  kFault,            // sub = fault::FaultKind, a = magnitude
};

[[nodiscard]] const char* to_string(EventKind k) noexcept;

/// Classification used when fingerprinting. Architectural events are
/// facts about the simulated machine and are bit-stable whenever the
/// simulated timeline is. Sync events (stall/wake) record *where* the
/// host's drift limiter blocked a core; they are zero-width in virtual
/// time and their count can legitimately differ across shard counts
/// (the limiter consults frozen cross-shard proxies), though never
/// across thread counts at a fixed shard count.
enum class EventClass : std::uint8_t {
  kArchitectural = 1,
  kSync = 2,
  kAll = 3,
};

[[nodiscard]] constexpr bool is_sync_event(EventKind k) noexcept {
  return k == EventKind::kStall || k == EventKind::kWake;
}

[[nodiscard]] constexpr bool in_class(EventKind k, EventClass c) noexcept {
  const auto bit = is_sync_event(k) ? EventClass::kSync
                                    : EventClass::kArchitectural;
  return (static_cast<std::uint8_t>(c) & static_cast<std::uint8_t>(bit)) != 0;
}

/// One telemetry record. 32 bytes, trivially copyable; buffers of
/// these are bulk-moved at the epoch barrier.
struct Event {
  Tick vtime = 0;             // virtual timestamp (sender time for kMsgPost)
  std::uint64_t a = 0;        // kind-specific payload (see EventKind)
  std::uint64_t b = 0;        // kind-specific payload
  std::uint32_t core = 0;     // acting core (source core for kMsgPost)
  std::uint32_t dst = 0;      // destination core (messages) or 0
  EventKind kind = EventKind::kTaskStart;
  std::uint8_t sub = 0;       // MsgKind / AccessMode / FaultKind

  [[nodiscard]] auto key() const noexcept {
    return std::tie(vtime, core, kind, sub, dst, a, b);
  }
};

/// Canonical total order: lexicographic over every field. Events that
/// compare equal are indistinguishable records, so the sorted stream
/// is unique for a given multiset.
[[nodiscard]] inline bool canonical_less(const Event& x,
                                         const Event& y) noexcept {
  return x.key() < y.key();
}

/// FNV-1a over an event's fields in canonical serialization order
/// (field-by-field, not raw struct bytes, so padding never leaks in).
[[nodiscard]] std::uint64_t hash_event(std::uint64_t h,
                                       const Event& e) noexcept;

inline constexpr std::uint64_t kFingerprintSeed = 0xcbf29ce484222325ull;

}  // namespace simany::obs
