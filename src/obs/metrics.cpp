#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <ostream>
#include <stdexcept>
#include <tuple>

namespace simany::obs {

namespace {

[[nodiscard]] std::uint64_t fnv1a(std::uint64_t h, const void* data,
                                  std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Minimal JSON string escaping for metric names (ASCII identifiers in
/// practice; quotes/backslashes/control bytes handled anyway).
void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

template <typename Vec>
auto* find_named(Vec& v, std::string_view name) {
  for (auto& n : v) {
    if (n->name == name) return n.get();
  }
  return decltype(v.front().get()){nullptr};
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds(std::move(upper_bounds)), counts(bounds.size() + 1, 0) {
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      throw std::invalid_argument(
          "Histogram bounds must be strictly increasing");
    }
  }
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  ++counts[static_cast<std::size_t>(it - bounds.begin())];
  ++total;
  sum += v;
  values.push_back(v);
}

double Histogram::percentile(double p) const {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values);
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the smallest value with at least ceil(p/100 * N)
  // values at or below it. Exact, monotone in p, and p100 == max.
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(rank);
  if (static_cast<double>(idx) < rank) ++idx;  // ceil
  if (idx > 0) --idx;                          // 1-based rank -> index
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

std::uint64_t& MetricsRegistry::counter(std::string_view name) {
  if (auto* n = find_named(counters_, name)) return n->value;
  counters_.push_back(std::make_unique<Named<std::uint64_t>>(
      Named<std::uint64_t>{std::string(name), 0}));
  return counters_.back()->value;
}

double& MetricsRegistry::gauge(std::string_view name) {
  if (auto* n = find_named(gauges_, name)) return n->value;
  gauges_.push_back(std::make_unique<Named<double>>(
      Named<double>{std::string(name), 0.0}));
  return gauges_.back()->value;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  if (auto* n = find_named(histograms_, name)) return n->value;
  histograms_.push_back(std::make_unique<Named<Histogram>>(
      Named<Histogram>{std::string(name), Histogram(std::move(bounds))}));
  return histograms_.back()->value;
}

void MetricsRegistry::sample(std::string_view series, std::uint64_t t_cycles,
                             std::int32_t core, double value) {
  auto* n = find_named(series_, series);
  if (n == nullptr) {
    series_.push_back(std::make_unique<Named<std::vector<Sample>>>(
        Named<std::vector<Sample>>{std::string(series), {}}));
    n = series_.back().get();
  }
  n->value.push_back(Sample{t_cycles, core, value});
}

void MetricsRegistry::sort_series() {
  for (auto& s : series_) {
    std::stable_sort(s->value.begin(), s->value.end(),
                     [](const Sample& x, const Sample& y) {
                       return std::tie(x.t_cycles, x.core) <
                              std::tie(y.t_cycles, y.core);
                     });
  }
  std::stable_sort(series_.begin(), series_.end(),
                   [](const auto& x, const auto& y) {
                     return x->name < y->name;
                   });
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i != 0) os << ',';
    write_json_string(os, counters_[i]->name);
    os << ':' << counters_[i]->value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (i != 0) os << ',';
    write_json_string(os, gauges_[i]->name);
    os << ':' << gauges_[i]->value;
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    if (i != 0) os << ',';
    const Histogram& h = histograms_[i]->value;
    write_json_string(os, histograms_[i]->name);
    os << ":{\"bounds\":[";
    for (std::size_t j = 0; j < h.bounds.size(); ++j) {
      if (j != 0) os << ',';
      os << h.bounds[j];
    }
    os << "],\"counts\":[";
    for (std::size_t j = 0; j < h.counts.size(); ++j) {
      if (j != 0) os << ',';
      os << h.counts[j];
    }
    os << "],\"total\":" << h.total << ",\"sum\":" << h.sum;
    for (std::size_t j = 0; j < std::size(kExportPercentiles); ++j) {
      os << ",\"" << kExportPercentileNames[j]
         << "\":" << h.percentile(kExportPercentiles[j]);
    }
    os << '}';
  }
  os << "},\"series\":{";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (i != 0) os << ',';
    write_json_string(os, series_[i]->name);
    os << ":[";
    const auto& rows = series_[i]->value;
    for (std::size_t j = 0; j < rows.size(); ++j) {
      if (j != 0) os << ',';
      os << "{\"t\":" << rows[j].t_cycles << ",\"core\":" << rows[j].core
         << ",\"value\":" << rows[j].value << '}';
    }
    os << ']';
  }
  os << "}}\n";
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "series,t_cycles,core,value\n";
  for (const auto& s : series_) {
    for (const Sample& r : s->value) {
      os << s->name << ',' << r.t_cycles << ',' << r.core << ',' << r.value
         << '\n';
    }
  }
  // Histogram percentiles ride along as synthetic machine-wide rows
  // (`<name>.p50` etc. at t=0, core=-1) so CSV-only pipelines see the
  // same exact percentiles as the JSON export.
  for (const auto& hn : histograms_) {
    const Histogram& h = hn->value;
    if (h.total == 0) continue;
    for (std::size_t j = 0; j < std::size(kExportPercentiles); ++j) {
      os << hn->name << '.' << kExportPercentileNames[j] << ",0,-1,"
         << h.percentile(kExportPercentiles[j]) << '\n';
    }
  }
}

std::uint64_t MetricsRegistry::series_fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& s : series_) {
    h = fnv1a(h, s->name.data(), s->name.size());
    for (const Sample& r : s->value) {
      h = fnv1a(h, &r.t_cycles, sizeof r.t_cycles);
      h = fnv1a(h, &r.core, sizeof r.core);
      std::uint64_t bits;
      static_assert(sizeof bits == sizeof r.value);
      std::memcpy(&bits, &r.value, sizeof bits);
      h = fnv1a(h, &bits, sizeof bits);
    }
  }
  return h;
}

const std::vector<Sample>* MetricsRegistry::find_series(
    std::string_view name) const {
  for (const auto& s : series_) {
    if (s->name == name) return &s->value;
  }
  return nullptr;
}

}  // namespace simany::obs
