#include "obs/critpath.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <tuple>
#include <utility>

#include "core/message.h"
#include "fault/fault_plan.h"

namespace simany::obs {

namespace {

[[nodiscard]] std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= 0x100000001b3ull;
  }
  return h;
}

[[nodiscard]] bool is_data_msg(std::uint8_t sub) noexcept {
  switch (static_cast<MsgKind>(sub)) {
    case MsgKind::kDataRequest:
    case MsgKind::kDataResponse:
    case MsgKind::kCellRelease:
      return true;
    default:
      return false;
  }
}

/// A core-time fault instant with a virtual-time extent: kCoreStall and
/// kMemSpike charge `a` ticks of delay starting at the event's vtime.
[[nodiscard]] bool is_span_fault(std::uint8_t sub) noexcept {
  const auto k = static_cast<fault::FaultKind>(sub);
  return k == fault::FaultKind::kCoreStall || k == fault::FaultKind::kMemSpike;
}

/// A message fault recorded on the sender at send time: the flight it
/// delayed (or retried) is fault-induced rather than plain latency.
[[nodiscard]] bool is_msg_fault(std::uint8_t sub) noexcept {
  const auto k = static_cast<fault::FaultKind>(sub);
  return k == fault::FaultKind::kMsgDelay ||
         k == fault::FaultKind::kMsgDuplicate ||
         k == fault::FaultKind::kMsgDrop;
}

struct FaultSpan {
  Tick at = 0;
  Tick len = 0;
  std::uint8_t sub = 0;
};

/// All per-event indexes the backward walk consults. Built once, O(n);
/// every vector is appended in canonical stream order, so lookups that
/// take "the latest entry before position p" are deterministic binary
/// searches.
class StreamIndex {
 public:
  explicit StreamIndex(const std::vector<Event>& ev) : ev_(ev) {
    std::uint32_t max_core = 0;
    for (const Event& e : ev) {
      max_core = std::max(max_core, e.core);
    }
    by_core_.resize(std::size_t{max_core} + 1);
    open_depth_.resize(ev.size(), 0);
    faults_.resize(std::size_t{max_core} + 1);
    std::vector<int> depth(std::size_t{max_core} + 1, 0);
    for (std::uint32_t i = 0; i < ev.size(); ++i) {
      const Event& e = ev[i];
      if (is_sync_event(e.kind)) continue;  // zero-width, host-cadenced
      by_core_[e.core].push_back(i);
      switch (e.kind) {
        case EventKind::kTaskStart: ++depth[e.core]; break;
        case EventKind::kTaskEnd: --depth[e.core]; break;
        case EventKind::kMsgPost:
          posts_.push_back(i);
          break;
        case EventKind::kLockRelease:
          lock_rel_.push_back(i);
          break;
        case EventKind::kCellRelease:
          cell_rel_.push_back(i);
          break;
        case EventKind::kTaskEnqueue:
          enqueues_[e.core].push_back(i);
          break;
        case EventKind::kFault:
          if (is_span_fault(e.sub) && e.a > 0) {
            faults_[e.core].push_back(FaultSpan{e.vtime, e.a, e.sub});
          } else if (is_msg_fault(e.sub)) {
            msg_faults_.push_back(i);
          }
          break;
        default: break;
      }
      open_depth_[i] = depth[e.core] > 0 ? 1 : 0;
    }
    // Secondary sort keys for the jump lookups. stable_sort keeps
    // canonical stream order inside each key group.
    auto by_post_key = [&](std::uint32_t x, std::uint32_t y) {
      const Event& a = ev_[x];
      const Event& b = ev_[y];
      return std::tie(a.core, a.dst, a.a, a.sub) <
             std::tie(b.core, b.dst, b.a, b.sub);
    };
    std::stable_sort(posts_.begin(), posts_.end(), by_post_key);
    auto by_obj = [&](std::uint32_t x, std::uint32_t y) {
      return std::tie(ev_[x].a, x) < std::tie(ev_[y].a, y);
    };
    std::stable_sort(lock_rel_.begin(), lock_rel_.end(), by_obj);
    std::stable_sort(cell_rel_.begin(), cell_rel_.end(), by_obj);
  }

  /// Index of the latest non-sync event on `core` with stream position
  /// strictly below `pos`, or -1.
  [[nodiscard]] std::int64_t prev_on_core(std::uint32_t core,
                                          std::uint32_t pos) const {
    const auto& v = by_core_[core];
    const auto it = std::lower_bound(v.begin(), v.end(), pos);
    if (it == v.begin()) return -1;
    return *(it - 1);
  }

  /// The kMsgPost matching a handled message: same (src, dst, arrival,
  /// kind), preferring the latest post before the handler's position
  /// (fault duplicates can produce several matches).
  [[nodiscard]] std::int64_t matching_post(const Event& handled,
                                           std::uint32_t pos) const {
    const auto key = std::make_tuple(handled.dst, handled.core, handled.a,
                                     handled.sub);
    auto lo = std::lower_bound(
        posts_.begin(), posts_.end(), key, [&](std::uint32_t x, auto k) {
          const Event& e = ev_[x];
          return std::make_tuple(e.core, e.dst, e.a, e.sub) < k;
        });
    std::int64_t best = -1;
    for (auto it = lo; it != posts_.end(); ++it) {
      const Event& e = ev_[*it];
      if (std::make_tuple(e.core, e.dst, e.a, e.sub) != key) break;
      if (*it < pos && *it > best) best = *it;
    }
    if (best >= 0) return best;
    return lo != posts_.end() &&
                   std::make_tuple(ev_[*lo].core, ev_[*lo].dst, ev_[*lo].a,
                                   ev_[*lo].sub) == key
               ? static_cast<std::int64_t>(*lo)
               : -1;
  }

  /// The latest release of lock/cell `id` before stream position `pos`.
  [[nodiscard]] std::int64_t latest_release(bool cell, std::uint64_t id,
                                            std::uint32_t pos) const {
    const auto& v = cell ? cell_rel_ : lock_rel_;
    const auto key = std::make_tuple(id, pos);
    const auto it = std::lower_bound(
        v.begin(), v.end(), key, [&](std::uint32_t x, auto k) {
          return std::make_tuple(ev_[x].a, x) < k;
        });
    if (it == v.begin()) return -1;
    const std::uint32_t cand = *(it - 1);
    return ev_[cand].a == id ? static_cast<std::int64_t>(cand) : -1;
  }

  /// The kTaskEnqueue on `core` whose vtime equals the started task's
  /// queue-entry time (kTaskStart carries it in `a`); earliest match
  /// wins on per-core vtime ties.
  [[nodiscard]] std::int64_t enqueue_at(std::uint32_t core, Tick at) const {
    const auto eit = enqueues_.find(core);
    if (eit == enqueues_.end()) return -1;
    const auto& v = eit->second;
    const auto it =
        std::lower_bound(v.begin(), v.end(), at,
                         [&](std::uint32_t x, Tick t) {
                           return ev_[x].vtime < t;
                         });
    if (it == v.end() || ev_[*it].vtime != at) return -1;
    return *it;
  }

  /// Any task_end on `core` strictly inside (lo, hi]? (Distinguishes a
  /// queued-behind-other-work wait from plain dispatch overhead.)
  [[nodiscard]] bool task_end_within(std::uint32_t core, Tick lo,
                                     Tick hi) const {
    const auto& v = by_core_[core];
    auto it = std::lower_bound(v.begin(), v.end(), lo,
                               [&](std::uint32_t x, Tick t) {
                                 return ev_[x].vtime <= t;
                               });
    for (; it != v.end() && ev_[*it].vtime <= hi; ++it) {
      if (ev_[*it].kind == EventKind::kTaskEnd) return true;
    }
    return false;
  }

  /// True when the sender booked a message fault at exactly (core,
  /// sent) — the flight's latency is then fault-induced.
  [[nodiscard]] bool msg_fault_at(std::uint32_t core, Tick sent) const {
    for (const std::uint32_t i : msg_faults_) {
      const Event& e = ev_[i];
      if (e.core == core && e.vtime == sent) return true;
    }
    return false;
  }

  [[nodiscard]] bool inside_task(std::uint32_t idx) const {
    return open_depth_[idx] != 0;
  }
  [[nodiscard]] const std::vector<FaultSpan>& faults_on(
      std::uint32_t core) const {
    return faults_[core];
  }

 private:
  const std::vector<Event>& ev_;
  std::vector<std::vector<std::uint32_t>> by_core_;
  std::vector<std::uint32_t> posts_;
  std::vector<std::uint32_t> lock_rel_;
  std::vector<std::uint32_t> cell_rel_;
  // Keyed per spawning-target core; std::map iteration is ordered, and
  // the walk only ever point-queries it.
  std::map<std::uint32_t, std::vector<std::uint32_t>> enqueues_;
  std::vector<std::vector<FaultSpan>> faults_;
  std::vector<std::uint32_t> msg_faults_;
  std::vector<std::uint8_t> open_depth_;
};

/// Appends the on-core interval [lo, hi) to `out`, splitting out the
/// portions covered by span faults (core stalls / memory spikes) on
/// that core so injected delay is attributed to kFault, not the base
/// category.
void emit_core_span(std::vector<CritSegment>& out, const StreamIndex& ix,
                    std::uint32_t core, Tick lo, Tick hi, CritCause cause,
                    std::uint8_t sub = 0, std::uint64_t obj = 0) {
  if (hi <= lo) return;
  Tick pos = lo;
  for (const FaultSpan& f : ix.faults_on(core)) {
    const Tick fs = std::max(pos, f.at);
    const Tick fe = std::min(hi, sat_add(f.at, f.len));
    if (fe <= fs || f.at >= hi) continue;
    if (fs > pos) {
      out.push_back(CritSegment{pos, fs, core, core, cause, sub, obj});
    }
    out.push_back(
        CritSegment{fs, fe, core, core, CritCause::kFault, f.sub, 0});
    pos = fe;
    if (pos >= hi) break;
  }
  if (pos < hi) {
    out.push_back(CritSegment{pos, hi, core, core, cause, sub, obj});
  }
}

template <typename T, typename Key>
void rank_topk(std::vector<T>& v, std::size_t k, Key key) {
  std::sort(v.begin(), v.end(), [&](const T& a, const T& b) {
    return std::make_pair(b.ticks, key(a)) < std::make_pair(a.ticks, key(b));
  });
  if (v.size() > k) v.resize(k);
}

}  // namespace

const char* to_string(CritCause c) noexcept {
  switch (c) {
    case CritCause::kCompute: return "compute";
    case CritCause::kRuntime: return "runtime";
    case CritCause::kNoc: return "noc";
    case CritCause::kMemory: return "memory";
    case CritCause::kLockContention: return "lock_contention";
    case CritCause::kCellContention: return "cell_contention";
    case CritCause::kFault: return "fault";
    case CritCause::kImbalance: return "imbalance";
  }
  return "?";
}

CritPathReport analyze_critical_path(const std::vector<Event>& events,
                                     std::size_t top_k) {
  CritPathReport r;
  // Terminal: the last task to finish (ties resolved by canonical
  // order — the stream is sorted, so the last matching entry wins).
  std::int64_t term = -1;
  for (std::uint32_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == EventKind::kTaskEnd) term = i;
  }
  if (term < 0) {  // partial stream without a finished task: best effort
    for (std::uint32_t i = 0; i < events.size(); ++i) {
      if (!is_sync_event(events[i].kind)) term = i;
    }
  }
  if (term < 0) return r;

  const StreamIndex ix(events);
  r.total_ticks = events[term].vtime;
  r.terminal_core = events[term].core;

  std::uint32_t cur = static_cast<std::uint32_t>(term);
  Tick t = events[term].vtime;
  // Hard step bound: each step either emits a nonzero segment or moves
  // strictly backwards in the stream, so 2n + slack covers any
  // well-formed input; a malformed stream degrades to truncation, not
  // to a hang.
  std::uint64_t steps_left = 2 * events.size() + 1024;

  const auto same_core_step = [&]() {
    const Event& e = events[cur];
    const std::int64_t p = ix.prev_on_core(e.core, cur);
    if (p < 0) {
      emit_core_span(r.segments, ix, e.core, 0, t,
                     ix.inside_task(cur) ? CritCause::kCompute
                                         : CritCause::kRuntime);
      t = 0;
      return;
    }
    const CritCause cause = ix.inside_task(static_cast<std::uint32_t>(p))
                                ? CritCause::kCompute
                                : CritCause::kRuntime;
    emit_core_span(r.segments, ix, e.core, events[p].vtime, t, cause);
    t = events[p].vtime;
    cur = static_cast<std::uint32_t>(p);
  };

  while (t > 0) {
    if (steps_left-- == 0) {
      r.segments.push_back(CritSegment{0, t, events[cur].core,
                                       events[cur].core, CritCause::kRuntime,
                                       0, 0});
      r.truncated = true;
      t = 0;
      break;
    }
    const Event& e = events[cur];
    switch (e.kind) {
      case EventKind::kMsgHandled: {
        // a == vtime: the arrival set the clock — the message was the
        // binding constraint. Chase the flight back to its sender.
        if (e.a == e.vtime) {
          const std::int64_t q = ix.matching_post(e, cur);
          if (q >= 0 && events[q].vtime <= t) {
            const Event& post = events[q];
            const CritCause fc =
                ix.msg_fault_at(post.core, post.vtime)
                    ? CritCause::kFault
                    : (is_data_msg(post.sub) ? CritCause::kMemory
                                             : CritCause::kNoc);
            if (t > post.vtime) {
              r.segments.push_back(CritSegment{post.vtime, t, e.core,
                                               post.core, fc, post.sub, 0});
            }
            t = post.vtime;
            cur = static_cast<std::uint32_t>(q);
            continue;
          }
        }
        same_core_step();
        continue;
      }
      case EventKind::kTaskStart: {
        const std::int64_t q = ix.enqueue_at(e.core, e.a);
        if (q >= 0 && static_cast<std::uint32_t>(q) != cur &&
            events[q].vtime <= t) {
          // Queued behind other tasks on this core -> load imbalance;
          // otherwise the gap is the fixed dispatch cost.
          const bool queued =
              ix.task_end_within(e.core, events[q].vtime, t);
          emit_core_span(r.segments, ix, e.core, events[q].vtime, t,
                         queued ? CritCause::kImbalance
                                : CritCause::kRuntime);
          t = events[q].vtime;
          cur = static_cast<std::uint32_t>(q);
          continue;
        }
        same_core_step();
        continue;
      }
      case EventKind::kLockAcquire:
      case EventKind::kCellAcquire: {
        const bool cell = e.kind == EventKind::kCellAcquire;
        const std::int64_t rel = ix.latest_release(cell, e.a, cur);
        const std::int64_t p = ix.prev_on_core(e.core, cur);
        const Tick own = p >= 0 ? events[p].vtime : 0;
        // Contended iff the previous holder released after this core
        // was otherwise ready: the handoff, not our own request path,
        // determined the grant time.
        if (rel >= 0 && events[rel].vtime > own && events[rel].vtime <= t) {
          if (t > events[rel].vtime) {
            r.segments.push_back(CritSegment{
                events[rel].vtime, t, e.core, events[rel].core,
                cell ? CritCause::kCellContention
                     : CritCause::kLockContention,
                e.sub, e.a});
          }
          t = events[rel].vtime;
          cur = static_cast<std::uint32_t>(rel);
          continue;
        }
        same_core_step();
        continue;
      }
      default:
        same_core_step();
        continue;
    }
  }

  std::sort(r.segments.begin(), r.segments.end(),
            [](const CritSegment& a, const CritSegment& b) {
              return a.t0 < b.t0;
            });

  // Fold attributions and rankings.
  std::map<std::uint32_t, Tick> core_ticks;
  std::map<std::pair<std::uint32_t, std::uint32_t>, Tick> link_ticks;
  std::map<std::pair<bool, std::uint64_t>, Tick> obj_ticks;
  for (const CritSegment& s : r.segments) {
    r.cause_ticks[static_cast<std::size_t>(s.cause)] += s.len();
    if (s.src != s.core) {
      link_ticks[{s.src, s.core}] += s.len();
    } else {
      core_ticks[s.core] += s.len();
    }
    if (s.cause == CritCause::kLockContention ||
        s.cause == CritCause::kCellContention) {
      obj_ticks[{s.cause == CritCause::kCellContention, s.obj}] += s.len();
    }
  }
  for (const auto& [core, ticks] : core_ticks) {
    r.top_cores.push_back(RankedCore{core, ticks});
  }
  for (const auto& [link, ticks] : link_ticks) {
    r.top_links.push_back(RankedLink{link.first, link.second, ticks});
  }
  for (const auto& [obj, ticks] : obj_ticks) {
    r.top_objects.push_back(RankedObject{obj.second, obj.first, ticks});
  }
  rank_topk(r.top_cores, top_k,
            [](const RankedCore& x) { return std::make_pair(x.core, 0u); });
  rank_topk(r.top_links, top_k, [](const RankedLink& x) {
    return std::make_pair(x.src, x.dst);
  });
  rank_topk(r.top_objects, top_k, [](const RankedObject& x) {
    return std::make_pair(x.id, static_cast<std::uint64_t>(x.is_cell));
  });
  return r;
}

std::uint64_t CritPathReport::fingerprint() const noexcept {
  std::uint64_t h = kFingerprintSeed;
  h = fnv1a(h, total_ticks);
  h = fnv1a(h, terminal_core);
  h = fnv1a(h, truncated ? 1 : 0);
  for (const CritSegment& s : segments) {
    h = fnv1a(h, s.t0);
    h = fnv1a(h, s.t1);
    h = fnv1a(h, s.core);
    h = fnv1a(h, s.src);
    h = fnv1a(h, static_cast<std::uint64_t>(s.cause));
    h = fnv1a(h, s.sub);
    h = fnv1a(h, s.obj);
  }
  for (const Tick ct : cause_ticks) h = fnv1a(h, ct);
  for (const RankedCore& c : top_cores) {
    h = fnv1a(h, c.core);
    h = fnv1a(h, c.ticks);
  }
  for (const RankedLink& l : top_links) {
    h = fnv1a(h, l.src);
    h = fnv1a(h, l.dst);
    h = fnv1a(h, l.ticks);
  }
  for (const RankedObject& o : top_objects) {
    h = fnv1a(h, o.id);
    h = fnv1a(h, o.is_cell ? 1 : 0);
    h = fnv1a(h, o.ticks);
  }
  return h;
}

void write_critpath_json(std::ostream& os, const CritPathReport& r) {
  char buf[64];
  const auto share = [&](Tick ticks) -> const char* {
    const double s = r.total_ticks != 0
                         ? static_cast<double>(ticks) /
                               static_cast<double>(r.total_ticks)
                         : 0.0;
    std::snprintf(buf, sizeof buf, "%.6f", s);
    return buf;
  };
  os << "{\"schema\":\"simany-critpath-v1\"";
  os << ",\"total_ticks\":" << r.total_ticks;
  os << ",\"total_cycles\":" << cycles_floor(r.total_ticks);
  os << ",\"terminal_core\":" << r.terminal_core;
  os << ",\"truncated\":" << (r.truncated ? "true" : "false");
  os << ",\"causes\":{";
  for (std::size_t i = 0; i < kNumCritCauses; ++i) {
    if (i != 0) os << ',';
    os << '"' << to_string(static_cast<CritCause>(i))
       << "\":{\"ticks\":" << r.cause_ticks[i] << ",\"share\":"
       << share(r.cause_ticks[i]) << '}';
  }
  os << "},\"top_cores\":[";
  for (std::size_t i = 0; i < r.top_cores.size(); ++i) {
    if (i != 0) os << ',';
    os << "{\"core\":" << r.top_cores[i].core
       << ",\"ticks\":" << r.top_cores[i].ticks << ",\"share\":"
       << share(r.top_cores[i].ticks) << '}';
  }
  os << "],\"top_links\":[";
  for (std::size_t i = 0; i < r.top_links.size(); ++i) {
    if (i != 0) os << ',';
    os << "{\"src\":" << r.top_links[i].src
       << ",\"dst\":" << r.top_links[i].dst
       << ",\"ticks\":" << r.top_links[i].ticks << '}';
  }
  os << "],\"top_objects\":[";
  for (std::size_t i = 0; i < r.top_objects.size(); ++i) {
    if (i != 0) os << ',';
    os << "{\"kind\":\"" << (r.top_objects[i].is_cell ? "cell" : "lock")
       << "\",\"id\":" << r.top_objects[i].id
       << ",\"ticks\":" << r.top_objects[i].ticks << '}';
  }
  os << "],\"segment_count\":" << r.segments.size();
  os << ",\"segments\":[";
  for (std::size_t i = 0; i < r.segments.size(); ++i) {
    const CritSegment& s = r.segments[i];
    if (i != 0) os << ',';
    os << "{\"t0\":" << s.t0 << ",\"t1\":" << s.t1
       << ",\"core\":" << s.core << ",\"src\":" << s.src << ",\"cause\":\""
       << to_string(s.cause) << "\",\"sub\":" << unsigned{s.sub}
       << ",\"obj\":" << s.obj << '}';
  }
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(r.fingerprint()));
  os << "],\"fingerprint\":\"" << buf << "\"}\n";
}

}  // namespace simany::obs
