// Trace / metrics exporters.
//
// write_chrome_trace emits the Chrome trace-event JSON flavor that
// ui.perfetto.dev (and chrome://tracing) load directly:
//   * pid 1, one tid per simulated core — task slices, nested
//     critical-section slices, stall marks and fault instants, with
//     virtual time mapped 1 cycle -> 1 us,
//   * pid 2, one tid per shard (plus the serial phase) — wall-clock
//     host-round phases when the run carried --profile-host,
//   * pid 3, a single "critical path" track — one slice per attributed
//     critical-path segment when the caller supplies a CritPathReport,
//     so the binding chain reads as a highlighted lane above the cores.
//
// write_events_csv is the flat form the tools/trace_summary.py script
// and spreadsheet users consume: one canonical event per row.
#pragma once

#include <iosfwd>

namespace simany::obs {

class Telemetry;
struct CritPathReport;

struct ChromeTraceOptions {
  /// Number of worker threads the run used (labels host tracks with
  /// the worker a shard was pinned to); 0 omits the worker names.
  unsigned host_threads = 0;
  /// When non-null, the critical path is rendered as its own process
  /// track (pid 3) with one slice per attributed segment.
  const CritPathReport* critpath = nullptr;
};

void write_chrome_trace(std::ostream& os, const Telemetry& t,
                        const ChromeTraceOptions& opt = {});

void write_events_csv(std::ostream& os, const Telemetry& t);

}  // namespace simany::obs
