#include "obs/telemetry.h"

#include <algorithm>

namespace simany::obs {

namespace {

[[nodiscard]] std::uint64_t fnv1a_u64(std::uint64_t h,
                                      std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kTaskEnd: return "task_end";
    case EventKind::kWake: return "wake";
    case EventKind::kMsgHandled: return "msg_handled";
    case EventKind::kTaskEnqueue: return "task_enqueue";
    case EventKind::kTaskStart: return "task_start";
    case EventKind::kStall: return "stall";
    case EventKind::kMsgPost: return "msg_post";
    case EventKind::kLockAcquire: return "lock_acquire";
    case EventKind::kLockRelease: return "lock_release";
    case EventKind::kCellAcquire: return "cell_acquire";
    case EventKind::kCellRelease: return "cell_release";
    case EventKind::kFault: return "fault";
  }
  return "?";
}

const char* to_string(HostPhase p) noexcept {
  switch (p) {
    case HostPhase::kDrain: return "drain";
    case HostPhase::kExecute: return "execute";
    case HostPhase::kPublish: return "publish";
    case HostPhase::kBarrier: return "barrier";
    case HostPhase::kSerial: return "serial";
  }
  return "?";
}

std::uint64_t hash_event(std::uint64_t h, const Event& e) noexcept {
  h = fnv1a_u64(h, e.vtime);
  h = fnv1a_u64(h, e.core);
  h = fnv1a_u64(h, static_cast<std::uint64_t>(e.kind));
  h = fnv1a_u64(h, e.sub);
  h = fnv1a_u64(h, e.dst);
  h = fnv1a_u64(h, e.a);
  h = fnv1a_u64(h, e.b);
  return h;
}

Telemetry::Telemetry(TelemetryOptions opt) : opt_(opt) {}
Telemetry::~Telemetry() = default;

void Telemetry::bind(std::uint32_t num_shards, std::uint32_t /*num_cores*/) {
  shards_.clear();
  shards_.resize(num_shards);
  if (opt_.metrics_interval_cycles != 0) {
    const Tick step = ticks(opt_.metrics_interval_cycles);
    for (auto& sb : shards_) sb.next_sample_at = step;
  }
  merged_.clear();
  merged_digest_ = kDigestSeed;
  sorted_ = false;
  if (opt_.profile_host) profiler_.bind(num_shards);
}

void Telemetry::drain_at_barrier() {
  for (auto& sb : shards_) {
    if (sb.events.empty()) continue;
    for (const Event& e : sb.events) {
      merged_digest_ = mix_event(merged_digest_, e);
    }
    merged_.insert(merged_.end(), sb.events.begin(), sb.events.end());
    sb.events.clear();
  }
}

void Telemetry::finalize(std::uint32_t num_cores) {
  drain_at_barrier();
  std::sort(merged_.begin(), merged_.end(),
            [](const Event& x, const Event& y) {
              return canonical_less(x, y);
            });
  sorted_ = true;
  for (auto& sb : shards_) {
    for (const LiveSample& s : sb.samples) {
      metrics_.sample(kLiveSeriesNames[s.series], s.t_cycles, s.core,
                      s.value);
    }
    sb.samples.clear();
  }
  derive_series(num_cores);
  metrics_.sort_series();
}

std::uint64_t Telemetry::fingerprint(EventClass c) const {
  std::uint64_t h = kFingerprintSeed;
  for (const Event& e : merged_) {
    if (in_class(e.kind, c)) h = hash_event(h, e);
  }
  return h;
}

// Series computed from the merged stream on the virtual-time grid.
// Because the input is canonical, these are exactly as portable across
// host backends as the event stream itself.
void Telemetry::derive_series(std::uint32_t num_cores) {
  if (merged_.empty()) return;

  Histogram& task_h = metrics_.histogram(
      "task_duration_cycles",
      {1, 10, 100, 1000, 10000, 100000, 1000000});
  Histogram& lat_h = metrics_.histogram(
      "msg_latency_cycles", {1, 2, 5, 10, 20, 50, 100, 1000});

  // (t, core, delta) deltas for inbox depth; +1 at arrival, -1 when
  // handled. Kept separate because arrivals are not in `sent` order.
  struct Delta {
    Tick t;
    std::uint32_t core;
    std::int32_t d;
  };
  std::vector<Delta> inbox_deltas;

  std::vector<Tick> task_open(num_cores, kTickInfinity);
  for (const Event& e : merged_) {
    switch (e.kind) {
      case EventKind::kTaskStart:
        task_open[e.core] = e.vtime;
        break;
      case EventKind::kTaskEnd:
        if (task_open[e.core] != kTickInfinity) {
          task_h.record(
              static_cast<double>(cycles_fp(e.vtime - task_open[e.core])));
          task_open[e.core] = kTickInfinity;
        }
        break;
      case EventKind::kMsgPost:
        if (e.a >= e.vtime) {
          lat_h.record(static_cast<double>(cycles_fp(e.a - e.vtime)));
        }
        inbox_deltas.push_back(Delta{e.a, e.dst, +1});
        break;
      case EventKind::kMsgHandled:
        inbox_deltas.push_back(Delta{e.vtime, e.core, -1});
        break;
      default:
        break;
    }
  }

  const std::uint64_t interval = opt_.metrics_interval_cycles;
  if (interval == 0) return;
  const Tick step = ticks(interval);

  // -1 deltas first at equal t: a message handled at its own arrival
  // tick never shows as queued on the grid.
  std::sort(inbox_deltas.begin(), inbox_deltas.end(),
            [](const Delta& x, const Delta& y) {
              return std::tie(x.t, x.d, x.core) < std::tie(y.t, y.d, y.core);
            });

  const Tick last = merged_.back().vtime;
  std::vector<std::int64_t> running(num_cores, 0);
  std::vector<std::int64_t> queued(num_cores, 0);
  std::vector<std::int64_t> inbox(num_cores, 0);

  std::size_t ei = 0;
  std::size_t di = 0;
  for (Tick t = step; t <= last; t = sat_add(t, step)) {
    for (; ei < merged_.size() && merged_[ei].vtime <= t; ++ei) {
      const Event& e = merged_[ei];
      switch (e.kind) {
        case EventKind::kTaskEnqueue: ++queued[e.core]; break;
        case EventKind::kTaskStart:
          if (queued[e.core] > 0) --queued[e.core];
          running[e.core] = 1;
          break;
        case EventKind::kTaskEnd: running[e.core] = 0; break;
        default: break;
      }
    }
    for (; di < inbox_deltas.size() && inbox_deltas[di].t <= t; ++di) {
      const Delta& d = inbox_deltas[di];
      inbox[d.core] = std::max<std::int64_t>(0, inbox[d.core] + d.d);
    }
    const std::uint64_t tc = cycles_floor(t);
    std::int64_t runnable = 0;
    for (std::uint32_t c = 0; c < num_cores; ++c) {
      const std::int64_t occ = running[c] + queued[c];
      if (occ > 0) ++runnable;
      metrics_.sample("occupancy", tc, static_cast<std::int32_t>(c),
                      static_cast<double>(occ));
      metrics_.sample("inbox_depth", tc, static_cast<std::int32_t>(c),
                      static_cast<double>(inbox[c]));
    }
    metrics_.sample("runnable_cores", tc, -1,
                    static_cast<double>(runnable));
  }
}

}  // namespace simany::obs
