// Live run-status heartbeat (`--status-out FILE --status-interval-ms N`).
//
// The engine samples progress read-only inside the serial barrier
// phase — workers are parked, so every shard counter and core clock is
// stable — and the reporter serializes the sample into an atomically
// replaced `simany-status-v1` JSON file (write to `<path>.tmp`, then
// rename over `<path>`). External monitors (tools/trace_summary.py,
// the future simanyd daemon) poll the file; a reader never observes a
// partial write.
//
// Determinism: the reporter only *reads* simulation state and only
// *writes* to the host filesystem. Wall-clock time decides when to
// emit (simlint-allowed: output-only) and feeds the rate/ETA fields,
// but nothing flows back into the simulation — fingerprints are
// byte-identical with the reporter on or off, which
// tests/test_status.cpp proves.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/vtime.h"

namespace simany::obs {

/// Per-shard progress as of one barrier.
struct StatusShard {
  std::uint32_t id = 0;
  std::uint64_t quanta = 0;
  Tick now_min = 0;
  Tick now_max = 0;
  std::int64_t live_tasks = 0;
};

/// One read-only progress sample, filled by the engine at a barrier.
struct StatusSample {
  bool finished = false;
  bool failed = false;
  std::uint64_t rounds = 0;
  std::uint64_t quanta = 0;
  std::uint64_t events = 0;  // telemetry events recorded so far
  std::int64_t live_tasks = 0;
  std::uint64_t inflight_messages = 0;
  std::uint64_t mail_pending = 0;
  Tick vtime_min = 0;  // slowest core clock
  Tick vtime_max = 0;  // fastest core clock
  // Guard budgets (0 = not configured) for consumption / ETA fields.
  std::uint64_t deadline_ms = 0;
  Tick max_vtime_ticks = 0;
  std::vector<StatusShard> shards;
};

class StatusReporter {
 public:
  /// `interval_ms` throttles heartbeats by wall clock; 0 writes at
  /// every barrier (tests use this for exhaustive coverage).
  StatusReporter(std::string path, std::uint64_t interval_ms);

  /// Cheap wall-clock throttle check; the engine builds the (O(cores))
  /// sample only when this returns true or the run is ending.
  [[nodiscard]] bool due() const noexcept;

  /// Composes and atomically replaces the status file. Unconditional:
  /// callers gate on due() / finished / failed.
  void write(const StatusSample& s);

  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// True once a write failed (disk full, read-only destination) and
  /// the reporter degraded to a no-op. The run keeps simulating; the
  /// failure was warned once on stderr with its structured cause.
  [[nodiscard]] bool disabled() const noexcept { return disabled_; }

 private:
  std::string path_;
  std::uint64_t interval_ms_;
  // simlint: allow(det-wall-clock) heartbeat cadence; never feeds sim state
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_{};
  bool wrote_ = false;
  bool disabled_ = false;
  std::uint64_t writes_ = 0;
};

}  // namespace simany::obs
