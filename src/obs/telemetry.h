// Telemetry front-end: what the engine talks to.
//
// A Telemetry object owns
//   * one append-only event buffer per shard (written single-threaded
//     by the shard's owner, drained single-threaded at the epoch
//     barrier — lock-free by ownership, not by atomics),
//   * a MetricsRegistry fed from per-shard staged samples plus series
//     derived from the merged event stream after the run,
//   * an optional HostProfiler (--profile-host).
//
// Unlike TraceSink / EngineObserver, attaching a Telemetry does NOT
// pin the run to the sequential host: every record() call is local to
// the executing shard and adds nothing to simulated time. The merged
// stream is produced by Engine at the end of run() via finalize().
#pragma once

#include <cstdint>
#include <vector>

#include "core/phase_annotations.h"
#include "core/vtime.h"
#include "obs/event.h"
#include "obs/host_profile.h"
#include "obs/metrics.h"

namespace simany::obs {

struct TelemetryOptions {
  /// Record the event stream (task/message/lock/fault/...).
  bool events = true;
  /// Record sync (stall/wake) events alongside architectural ones.
  bool sync_events = true;
  /// Virtual-time sampling period for the live metric series, in
  /// cycles; 0 disables live sampling.
  std::uint64_t metrics_interval_cycles = 0;
  /// Wall-clock host-round profiling (adds host tracks to the trace).
  bool profile_host = false;
};

/// One staged live sample (per-shard, folded into the registry at
/// finalize). `series` indexes kLiveSeriesNames.
struct LiveSample {
  std::uint64_t t_cycles = 0;
  std::int32_t core = -1;
  std::uint8_t series = 0;
  double value = 0.0;
};

inline constexpr const char* kLiveSeriesNames[] = {
    "drift_gap_cycles",        // per-core lead over slowest neighbor view
    "available_parallelism",   // actionable cores in the shard (core = -1)
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions opt = {});
  ~Telemetry();
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] const TelemetryOptions& options() const noexcept {
    return opt_;
  }

  // ---- Engine-facing (hot path) -------------------------------------

  /// Sizes the per-shard buffers. Called from Engine::host_setup.
  SIMANY_SERIAL_ONLY void bind(std::uint32_t num_shards,
                               std::uint32_t num_cores);

  /// Appends one event to `shard`'s buffer. Must only be called from
  /// the context that owns the shard (engine call sites guarantee it).
  SIMANY_SHARD_AFFINE void record(std::uint32_t shard, const Event& e) {
    if (!opt_.events) return;
    if (!opt_.sync_events && is_sync_event(e.kind)) return;
    shards_[shard].events.push_back(e);
  }

  /// Stages one live metric sample on `shard`.
  SIMANY_SHARD_AFFINE void stage_sample(std::uint32_t shard,
                                        const LiveSample& s) {
    ShardBuf& sb = shards_[shard];
    sb.samples.push_back(s);
    // Folded into the running digest now: state_digest() must not
    // rescan a whole run's samples at every autosave capture.
    sb.sample_digest = mix_sample(sb.sample_digest, s);
    ++sb.sample_count;
  }

  /// Next virtual-time sampling boundary for `shard` (mutable: the
  /// engine advances it as it emits samples).
  [[nodiscard]] Tick& next_sample_at(std::uint32_t shard) noexcept {
    return shards_[shard].next_sample_at;
  }

  /// Moves every shard buffer's events into the central stream. Runs
  /// inside the serial barrier phase, when no worker is in a round, so
  /// per-round memory stays bounded by round activity.
  SIMANY_SERIAL_ONLY void drain_at_barrier();

  /// Final drain + canonical sort + derived metric series. Called once
  /// by Engine at the end of run().
  SIMANY_SERIAL_ONLY void finalize(std::uint32_t num_cores);

  [[nodiscard]] HostProfiler* profiler() noexcept {
    return opt_.profile_host ? &profiler_ : nullptr;
  }

  // ---- Consumer-facing ----------------------------------------------

  /// The merged, canonically sorted stream (valid after run()).
  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return merged_;
  }

  /// Events captured so far: merged stream plus every shard's pending
  /// buffer. Feeds the status heartbeat's events/sec rate.
  SIMANY_SERIAL_ONLY [[nodiscard]] std::uint64_t events_recorded()
      const noexcept {
    std::uint64_t n = merged_.size();
    for (const ShardBuf& sb : shards_) n += sb.events.size();
    return n;
  }

  /// FNV-1a fingerprint of the merged stream, restricted to an event
  /// class. Architectural-only fingerprints are shard-count-portable
  /// whenever the simulated timeline is; kAll additionally covers the
  /// stall/wake records (see event.h).
  [[nodiscard]] std::uint64_t fingerprint(
      EventClass c = EventClass::kAll) const;

  /// Digest of the event/sample progress so far (src/snapshot): the
  /// drained (merged) stream, then each shard's pending events, sample
  /// accumulator and next sampling boundary. Two runs replaying the
  /// same timeline under the same barrier schedule agree; the snapshot
  /// replay reproduces the capture run's schedule for exactly this
  /// reason. Incremental on purpose: the drained stream and the staged
  /// samples are folded into running accumulators as they arrive, so
  /// the cost here is O(current round), not O(run so far) — an
  /// autosave cadence calls this at every capture. Serial-phase only.
  SIMANY_SERIAL_ONLY [[nodiscard]] std::uint64_t state_digest()
      const noexcept {
    std::uint64_t h = merged_digest_;
    for (const ShardBuf& sb : shards_) {
      h = mix_u64(h, sb.events.size());
      for (const Event& e : sb.events) h = mix_event(h, e);
      h = mix_u64(h, sb.sample_count);
      h = mix_u64(h, sb.sample_digest);
      h = mix_u64(h, sb.next_sample_at);
    }
    return h;
  }

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] const HostProfiler& host_profiler() const noexcept {
    return profiler_;
  }

 private:
  static constexpr std::uint64_t kDigestSeed = 1469598103934665603ULL;

  static std::uint64_t mix_u64(std::uint64_t h, std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffu;
      h *= 1099511628211ULL;
    }
    return h;
  }

  static std::uint64_t mix_event(std::uint64_t h, const Event& e) noexcept {
    h = mix_u64(h, e.vtime);
    h = mix_u64(h, e.a);
    h = mix_u64(h, e.b);
    h = mix_u64(h, e.core);
    h = mix_u64(h, e.dst);
    h = mix_u64(h, static_cast<std::uint64_t>(e.kind));
    h = mix_u64(h, e.sub);
    return h;
  }

  static std::uint64_t mix_sample(std::uint64_t h,
                                  const LiveSample& s) noexcept {
    h = mix_u64(h, s.t_cycles);
    h = mix_u64(h,
                static_cast<std::uint64_t>(static_cast<std::int64_t>(s.core)));
    h = mix_u64(h, s.series);
    // Samples carry doubles; hash the bit pattern (deterministic: both
    // sides computed it through the identical expression).
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(s.value));
    __builtin_memcpy(&bits, &s.value, sizeof(bits));
    h = mix_u64(h, bits);
    return h;
  }

  void derive_series(std::uint32_t num_cores);

  struct alignas(64) ShardBuf {
    std::vector<Event> events;
    std::vector<LiveSample> samples;
    Tick next_sample_at = 0;
    /// Running FNV over this shard's staged samples (owner-written,
    /// like the buffers themselves).
    std::uint64_t sample_digest = kDigestSeed;
    std::uint64_t sample_count = 0;
  };

  TelemetryOptions opt_;
  std::vector<ShardBuf> shards_;
  std::vector<Event> merged_;
  /// Running FNV over merged_ in drain (arrival) order; maintained by
  /// drain_at_barrier so state_digest never rescans history.
  std::uint64_t merged_digest_ = kDigestSeed;
  bool sorted_ = false;
  MetricsRegistry metrics_;
  HostProfiler profiler_;
};

}  // namespace simany::obs
