// Telemetry front-end: what the engine talks to.
//
// A Telemetry object owns
//   * one append-only event buffer per shard (written single-threaded
//     by the shard's owner, drained single-threaded at the epoch
//     barrier — lock-free by ownership, not by atomics),
//   * a MetricsRegistry fed from per-shard staged samples plus series
//     derived from the merged event stream after the run,
//   * an optional HostProfiler (--profile-host).
//
// Unlike TraceSink / EngineObserver, attaching a Telemetry does NOT
// pin the run to the sequential host: every record() call is local to
// the executing shard and adds nothing to simulated time. The merged
// stream is produced by Engine at the end of run() via finalize().
#pragma once

#include <cstdint>
#include <vector>

#include "core/phase_annotations.h"
#include "core/vtime.h"
#include "obs/event.h"
#include "obs/host_profile.h"
#include "obs/metrics.h"

namespace simany::obs {

struct TelemetryOptions {
  /// Record the event stream (task/message/lock/fault/...).
  bool events = true;
  /// Record sync (stall/wake) events alongside architectural ones.
  bool sync_events = true;
  /// Virtual-time sampling period for the live metric series, in
  /// cycles; 0 disables live sampling.
  std::uint64_t metrics_interval_cycles = 0;
  /// Wall-clock host-round profiling (adds host tracks to the trace).
  bool profile_host = false;
};

/// One staged live sample (per-shard, folded into the registry at
/// finalize). `series` indexes kLiveSeriesNames.
struct LiveSample {
  std::uint64_t t_cycles = 0;
  std::int32_t core = -1;
  std::uint8_t series = 0;
  double value = 0.0;
};

inline constexpr const char* kLiveSeriesNames[] = {
    "drift_gap_cycles",        // per-core lead over slowest neighbor view
    "available_parallelism",   // actionable cores in the shard (core = -1)
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions opt = {});
  ~Telemetry();
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] const TelemetryOptions& options() const noexcept {
    return opt_;
  }

  // ---- Engine-facing (hot path) -------------------------------------

  /// Sizes the per-shard buffers. Called from Engine::host_setup.
  SIMANY_SERIAL_ONLY void bind(std::uint32_t num_shards,
                               std::uint32_t num_cores);

  /// Appends one event to `shard`'s buffer. Must only be called from
  /// the context that owns the shard (engine call sites guarantee it).
  SIMANY_SHARD_AFFINE void record(std::uint32_t shard, const Event& e) {
    if (!opt_.events) return;
    if (!opt_.sync_events && is_sync_event(e.kind)) return;
    shards_[shard].events.push_back(e);
  }

  /// Stages one live metric sample on `shard`.
  SIMANY_SHARD_AFFINE void stage_sample(std::uint32_t shard,
                                        const LiveSample& s) {
    shards_[shard].samples.push_back(s);
  }

  /// Next virtual-time sampling boundary for `shard` (mutable: the
  /// engine advances it as it emits samples).
  [[nodiscard]] Tick& next_sample_at(std::uint32_t shard) noexcept {
    return shards_[shard].next_sample_at;
  }

  /// Moves every shard buffer's events into the central stream. Runs
  /// inside the serial barrier phase, when no worker is in a round, so
  /// per-round memory stays bounded by round activity.
  SIMANY_SERIAL_ONLY void drain_at_barrier();

  /// Final drain + canonical sort + derived metric series. Called once
  /// by Engine at the end of run().
  SIMANY_SERIAL_ONLY void finalize(std::uint32_t num_cores);

  [[nodiscard]] HostProfiler* profiler() noexcept {
    return opt_.profile_host ? &profiler_ : nullptr;
  }

  // ---- Consumer-facing ----------------------------------------------

  /// The merged, canonically sorted stream (valid after run()).
  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return merged_;
  }

  /// Events captured so far: merged stream plus every shard's pending
  /// buffer. Feeds the status heartbeat's events/sec rate.
  SIMANY_SERIAL_ONLY [[nodiscard]] std::uint64_t events_recorded()
      const noexcept {
    std::uint64_t n = merged_.size();
    for (const ShardBuf& sb : shards_) n += sb.events.size();
    return n;
  }

  /// FNV-1a fingerprint of the merged stream, restricted to an event
  /// class. Architectural-only fingerprints are shard-count-portable
  /// whenever the simulated timeline is; kAll additionally covers the
  /// stall/wake records (see event.h).
  [[nodiscard]] std::uint64_t fingerprint(
      EventClass c = EventClass::kAll) const;

  /// Digest of the event/sample progress so far (src/snapshot): the
  /// merged stream followed by each shard's pending buffer and next
  /// sampling boundary. Two runs replaying the same timeline under the
  /// same barrier schedule agree byte-for-byte; the snapshot replay
  /// reproduces the capture run's schedule for exactly this reason.
  /// Serial-phase only.
  SIMANY_SERIAL_ONLY [[nodiscard]] std::uint64_t state_digest()
      const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffu;
        h *= 1099511628211ULL;
      }
    };
    const auto mix_event = [&](const Event& e) {
      mix(e.vtime);
      mix(e.a);
      mix(e.b);
      mix(e.core);
      mix(e.dst);
      mix(static_cast<std::uint64_t>(e.kind));
      mix(e.sub);
    };
    const auto mix_sample = [&](const LiveSample& s) {
      mix(s.t_cycles);
      mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(s.core)));
      mix(s.series);
      // Samples carry doubles; hash the bit pattern (deterministic:
      // both sides computed it through the identical expression).
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(s.value));
      __builtin_memcpy(&bits, &s.value, sizeof(bits));
      mix(bits);
    };
    for (const Event& e : merged_) mix_event(e);
    for (const ShardBuf& sb : shards_) {
      mix(sb.events.size());
      for (const Event& e : sb.events) mix_event(e);
      mix(sb.samples.size());
      for (const LiveSample& s : sb.samples) mix_sample(s);
      mix(sb.next_sample_at);
    }
    return h;
  }

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] const HostProfiler& host_profiler() const noexcept {
    return profiler_;
  }

 private:
  void derive_series(std::uint32_t num_cores);

  struct alignas(64) ShardBuf {
    std::vector<Event> events;
    std::vector<LiveSample> samples;
    Tick next_sample_at = 0;
  };

  TelemetryOptions opt_;
  std::vector<ShardBuf> shards_;
  std::vector<Event> merged_;
  bool sorted_ = false;
  MetricsRegistry metrics_;
  HostProfiler profiler_;
};

}  // namespace simany::obs
