#include "obs/status.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "io/atomic_write.h"

namespace simany::obs {

StatusReporter::StatusReporter(std::string path, std::uint64_t interval_ms)
    : path_(std::move(path)),
      interval_ms_(interval_ms),
      // simlint: allow(det-wall-clock) heartbeat anchor, output-only
      start_(std::chrono::steady_clock::now()) {}

bool StatusReporter::due() const noexcept {
  if (!wrote_) return true;
  // simlint: allow(det-wall-clock) heartbeat throttle, output-only
  const auto now = std::chrono::steady_clock::now();
  return now - last_ >= std::chrono::milliseconds(interval_ms_);
}

void StatusReporter::write(const StatusSample& s) {
  if (disabled_) return;
  // simlint: allow(det-wall-clock) heartbeat timestamp, output-only
  const auto now = std::chrono::steady_clock::now();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(now - start_).count();
  const double elapsed_s = elapsed_ms / 1000.0;

  const char* state = s.failed ? "failed" : (s.finished ? "finished"
                                                        : "running");
  const double qps = elapsed_s > 0.0
                         ? static_cast<double>(s.quanta) / elapsed_s
                         : 0.0;
  const double eps = elapsed_s > 0.0
                         ? static_cast<double>(s.events) / elapsed_s
                         : 0.0;
  // Shard imbalance: max quanta over mean quanta (1.0 = perfectly
  // balanced; meaningful only with >= 2 shards).
  double imbalance = 1.0;
  if (s.shards.size() > 1 && s.quanta > 0) {
    std::uint64_t mx = 0;
    for (const StatusShard& sh : s.shards) mx = std::max(mx, sh.quanta);
    imbalance = static_cast<double>(mx) * static_cast<double>(s.shards.size()) /
                static_cast<double>(s.quanta);
  }
  // Guard budget consumption: the larger of wall-deadline and
  // vtime-budget fractions, plus a linear ETA-to-budget extrapolation
  // when any budget is armed and progress is nonzero.
  double budget_frac = 0.0;
  if (s.deadline_ms != 0) {
    budget_frac = std::max(budget_frac,
                           elapsed_ms / static_cast<double>(s.deadline_ms));
  }
  if (s.max_vtime_ticks != 0) {
    budget_frac = std::max(budget_frac,
                           static_cast<double>(s.vtime_max) /
                               static_cast<double>(s.max_vtime_ticks));
  }
  const bool have_eta = !s.finished && budget_frac > 0.0;
  const double eta_ms =
      have_eta ? elapsed_ms * std::max(0.0, 1.0 - budget_frac) / budget_frac
               : 0.0;

  std::ostringstream os;
  {
    char buf[64];
    const auto num = [&](double v) -> const char* {
      std::snprintf(buf, sizeof buf, "%.3f", v);
      return buf;
    };
    os << "{\"schema\":\"simany-status-v1\"";
    os << ",\"state\":\"" << state << '"';
    os << ",\"wall_ms\":" << num(elapsed_ms);
    os << ",\"rounds\":" << s.rounds;
    os << ",\"quanta\":" << s.quanta;
    os << ",\"quanta_per_sec\":" << num(qps);
    os << ",\"events\":" << s.events;
    os << ",\"events_per_sec\":" << num(eps);
    os << ",\"vtime_cycles\":{\"min\":" << cycles_floor(s.vtime_min)
       << ",\"max\":" << cycles_floor(s.vtime_max) << '}';
    os << ",\"drift_gap_cycles\":"
       << cycles_floor(s.vtime_max - std::min(s.vtime_min, s.vtime_max));
    os << ",\"live_tasks\":" << s.live_tasks;
    os << ",\"inflight_messages\":" << s.inflight_messages;
    os << ",\"mail_pending\":" << s.mail_pending;
    os << ",\"imbalance\":" << num(imbalance);
    os << ",\"shards\":[";
    for (std::size_t i = 0; i < s.shards.size(); ++i) {
      const StatusShard& sh = s.shards[i];
      if (i != 0) os << ',';
      os << "{\"id\":" << sh.id << ",\"quanta\":" << sh.quanta
         << ",\"now_min_cycles\":" << cycles_floor(sh.now_min)
         << ",\"now_max_cycles\":" << cycles_floor(sh.now_max)
         << ",\"live_tasks\":" << sh.live_tasks << '}';
    }
    os << "],\"guard\":{\"deadline_ms\":" << s.deadline_ms
       << ",\"elapsed_ms\":" << num(elapsed_ms)
       << ",\"max_vtime_cycles\":" << cycles_floor(s.max_vtime_ticks)
       << ",\"budget_fraction\":" << num(budget_frac) << '}';
    if (have_eta) {
      os << ",\"eta_ms\":" << num(eta_ms);
    } else {
      os << ",\"eta_ms\":null";
    }
    os << "}\n";
  }
  // Shared crash-safe writer (tmp + rename): pollers see either the
  // previous heartbeat or this one, never a torn file. fsync stays off
  // — heartbeat freshness matters more than power-loss durability, and
  // a per-barrier fsync would perturb host timing.
  try {
    io::AtomicWriteOptions opts;
    opts.fsync = false;
    io::atomic_write_file(path_, os.str(), opts);
  } catch (const SimError& e) {
    // Degrade, don't abort: the heartbeat is telemetry. Warn once with
    // the structured cause, then disable further writes.
    if (!disabled_) {
      disabled_ = true;
      std::cerr << "simany: warning: status heartbeat disabled ("
                << e.what() << ")\n";
    }
    return;
  }
  last_ = now;
  wrote_ = true;
  ++writes_;
}

}  // namespace simany::obs
