#include "mem/directory.h"

namespace simany::mem {

Directory::LineState& Directory::state(std::uint64_t line) {
  auto [it, inserted] = lines_.try_emplace(line);
  if (inserted) it->second.sharers.assign(num_cores_, false);
  return it->second;
}

CohOutcome Directory::on_read(net::CoreId core, std::uint64_t line) {
  LineState& st = state(line);
  CohOutcome out;
  if (st.writer != net::kInvalidCore && st.writer != core) {
    // Fetch the dirty line from the owner; the owner downgrades.
    out.action = CohAction::kRemoteDirty;
    out.peer = st.writer;
    out.sharers = 1;
    st.writer = net::kInvalidCore;
  } else if (!st.sharers[core]) {
    std::uint32_t others = 0;
    for (std::uint32_t c = 0; c < num_cores_; ++c) {
      if (c != core && st.sharers[c]) ++others;
    }
    out.action = others > 0 ? CohAction::kCleanShared : CohAction::kNone;
    out.sharers = others;
  }
  st.sharers[core] = true;
  return out;
}

CohOutcome Directory::on_write(net::CoreId core, std::uint64_t line,
                               std::vector<net::CoreId>* invalidated) {
  LineState& st = state(line);
  CohOutcome out;
  if (st.writer != net::kInvalidCore && st.writer != core) {
    out.action = CohAction::kRemoteDirty;
    out.peer = st.writer;
    out.sharers = 1;
    if (invalidated != nullptr) invalidated->push_back(st.writer);
  } else {
    std::uint32_t others = 0;
    net::CoreId last = net::kInvalidCore;
    for (std::uint32_t c = 0; c < num_cores_; ++c) {
      if (c != core && st.sharers[c]) {
        ++others;
        last = c;
        if (invalidated != nullptr) invalidated->push_back(c);
      }
    }
    if (others > 0) {
      out.action = CohAction::kInvalidate;
      out.peer = last;
      out.sharers = others;
    }
  }
  // Writer becomes the sole sharer and dirty owner.
  for (std::uint32_t c = 0; c < num_cores_; ++c) st.sharers[c] = (c == core);
  st.writer = core;
  return out;
}

void Directory::evict(net::CoreId core, std::uint64_t line) {
  auto it = lines_.find(line);
  if (it == lines_.end()) return;
  it->second.sharers[core] = false;
  if (it->second.writer == core) it->second.writer = net::kInvalidCore;
}

void Directory::drop_core(net::CoreId core) {
  // simlint: allow(det-unordered-iter) per-entry clear, order-free
  for (auto& [line, st] : lines_) {
    st.sharers[core] = false;
    if (st.writer == core) st.writer = net::kInvalidCore;
  }
}

}  // namespace simany::mem
