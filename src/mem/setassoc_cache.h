// A real set-associative LRU cache, used by the cycle-level baseline
// simulator for its split instruction/data L1s (paper SS V: the UNISIM
// reference models split L1s, unlike SiMany's pessimistic model).
#pragma once

#include <cstdint>
#include <vector>

namespace simany::mem {

class SetAssocCache {
 public:
  struct Config {
    std::uint32_t size_bytes = 16 * 1024;
    std::uint32_t line_bytes = 32;
    std::uint32_t ways = 4;
  };

  explicit SetAssocCache(Config cfg);

  struct AccessResult {
    bool hit = false;
    bool evicted_dirty = false;
    std::uint64_t evicted_line = 0;
  };

  /// Looks up the line containing `addr`; fills on miss (LRU victim).
  AccessResult access(std::uint64_t addr, bool write);

  /// Drops the line containing `addr` if present; returns true if it
  /// was present and dirty.
  bool invalidate_addr(std::uint64_t addr);

  [[nodiscard]] bool contains(std::uint64_t addr) const;

  void flush();

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

  /// Portable digest of the cache state (src/snapshot). Tags — and the
  /// set a line lands in — derive from host virtual addresses, which
  /// ASLR re-randomizes per process, so neither is reproducible across
  /// replays of the same timeline. The access *sequence* is, which
  /// makes the multiset of per-way (last-use stamp, valid, dirty)
  /// records portable: it is hashed commutatively (set placement may
  /// permute), together with the clock and hit/miss totals.
  [[nodiscard]] std::uint64_t state_digest() const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffu;
        h *= 1099511628211ULL;
      }
    };
    mix(clock_);
    mix(hits_);
    mix(misses_);
    mix(num_sets_);
    std::uint64_t sum = 0;
    for (const Way& w : ways_) {
      std::uint64_t z = w.lru + 0x9e3779b97f4a7c15ULL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z ^= static_cast<std::uint64_t>(w.valid) |
           (static_cast<std::uint64_t>(w.dirty) << 1);
      sum += (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    }
    mix(sum);
    return h;
  }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // larger = more recently used
    bool valid = false;
    bool dirty = false;
  };

  [[nodiscard]] std::uint64_t line_of(std::uint64_t addr) const noexcept {
    return addr / cfg_.line_bytes;
  }
  [[nodiscard]] std::uint32_t set_of(std::uint64_t line) const noexcept {
    return static_cast<std::uint32_t>(line % num_sets_);
  }

  Config cfg_;
  std::uint32_t num_sets_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::vector<Way> ways_;  // num_sets_ * cfg_.ways, row-major by set
};

}  // namespace simany::mem
