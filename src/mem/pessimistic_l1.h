// The paper's deliberately simple and pessimistic L1 model (SS V):
// "Data do not stay in the cache across function boundaries of the
// executed program." We track the set of lines touched since the last
// function boundary; a touched line hits (1 cycle), anything else
// misses to the next level. The benchmark annotates function boundaries
// explicitly (the instrumented program would do the same).
#pragma once

#include <cstdint>
#include <unordered_set>

#include "core/vtime.h"

namespace simany::mem {

class PessimisticL1 {
 public:
  explicit PessimisticL1(std::uint32_t line_bytes = 32)
      : line_bytes_(line_bytes) {}

  struct AccessResult {
    std::uint32_t hit_lines = 0;
    std::uint32_t miss_lines = 0;
  };

  /// Touches [addr, addr+bytes); every line becomes resident.
  AccessResult access(std::uint64_t addr, std::uint32_t bytes);

  /// Function boundary: the pessimistic model forgets everything.
  void flush() { resident_.clear(); }

  /// Drops one line (used by the coherence model on invalidation).
  void invalidate(std::uint64_t line) { resident_.erase(line); }

  [[nodiscard]] bool contains_line(std::uint64_t line) const {
    return resident_.contains(line);
  }
  [[nodiscard]] std::uint64_t line_of(std::uint64_t addr) const {
    return addr / line_bytes_;
  }
  [[nodiscard]] std::size_t resident_lines() const {
    return resident_.size();
  }
  [[nodiscard]] std::uint32_t line_bytes() const noexcept {
    return line_bytes_;
  }

  /// Portable digest of the model state (src/snapshot). Resident lines
  /// are keyed by *host virtual addresses*, which ASLR re-randomizes
  /// per process; the keys themselves are therefore not reproducible
  /// across runs. The resident *count* is: heap layout is allocator-
  /// deterministic relative to its base, and the base moves in units
  /// far coarser than a cache line, so line occupancy — and with it
  /// every hit/miss decision — replays identically. The digest covers
  /// exactly the portable part.
  [[nodiscard]] std::uint64_t state_digest() const noexcept {
    std::uint64_t z = resident_.size() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z ^= line_bytes_;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint32_t line_bytes_;
  std::unordered_set<std::uint64_t> resident_;
};

}  // namespace simany::mem
