// Directory-based cache-coherence *timing* model.
//
// SiMany normally ignores coherence delays on the optimistic shared-
// memory architecture, but enables them for the cycle-level validation
// (paper SS V: "we decided to enable the timings of cache coherence
// effects in SiMany during the validation"). This model tracks, per
// cache line, the set of sharer cores and the last writer, and reports
// what kind of coherence action a read or write triggers. The caller
// (engine or cyclesim) converts actions into cycle costs using
// MemParams and topological distances.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/topology.h"

namespace simany::mem {

enum class CohAction : std::uint8_t {
  kNone,          // private hit / no other copies involved
  kCleanShared,   // read of a line with only clean copies
  kRemoteDirty,   // line is dirty in another core's cache
  kInvalidate,    // write must invalidate other sharers
};

struct CohOutcome {
  CohAction action = CohAction::kNone;
  /// Core that owned the line dirty (for kRemoteDirty) or the farthest
  /// invalidated sharer (for kInvalidate); kInvalidCore otherwise.
  net::CoreId peer = net::kInvalidCore;
  /// Number of other sharers affected.
  std::uint32_t sharers = 0;
};

class Directory {
 public:
  explicit Directory(std::uint32_t num_cores) : num_cores_(num_cores) {}

  CohOutcome on_read(net::CoreId core, std::uint64_t line);

  /// Write (or upgrade). When `invalidated` is non-null it receives the
  /// ids of every other sharer whose copy must be invalidated, so a
  /// detailed simulator can actually drop those cache lines.
  CohOutcome on_write(net::CoreId core, std::uint64_t line,
                      std::vector<net::CoreId>* invalidated = nullptr);

  /// The line left `core`'s cache (eviction or explicit flush).
  void evict(net::CoreId core, std::uint64_t line);

  /// Drops all state for a core (used when its cache flushes).
  void drop_core(net::CoreId core);

  [[nodiscard]] std::size_t tracked_lines() const { return lines_.size(); }
  void clear() { lines_.clear(); }

  /// Portable digest of the sharer/writer table (src/snapshot). Line
  /// keys are host-virtual-address-derived and shift under ASLR, so
  /// they are excluded; what is hashed is the *multiset* of per-line
  /// occupancy records (writer core + sharer set) — core ids are
  /// architectural and stable — combined by addition, which is immune
  /// to both the unordered_map's iteration order and the uniform key
  /// shift between two replays of the same timeline.
  [[nodiscard]] std::uint64_t state_digest() const noexcept {
    std::uint64_t sum = 0;
    // simlint: allow(det-unordered-iter) commutative fold, order-free
    for (const auto& [line, st] : lines_) {
      std::uint64_t z =
          static_cast<std::uint64_t>(st.writer) + 0x9e3779b97f4a7c15ULL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      for (std::size_t i = 0; i < st.sharers.size(); ++i) {
        if (st.sharers[i]) z = (z ^ (i + 1)) * 0x94d049bb133111ebULL;
      }
      sum += (z ^ (z >> 27)) * 0xbf58476d1ce4e5b9ULL;
    }
    return sum + lines_.size();
  }

 private:
  struct LineState {
    std::vector<bool> sharers;  // indexed by core
    net::CoreId writer = net::kInvalidCore;  // dirty owner, if any
  };

  LineState& state(std::uint64_t line);

  std::uint32_t num_cores_;
  std::unordered_map<std::uint64_t, LineState> lines_;
};

}  // namespace simany::mem
