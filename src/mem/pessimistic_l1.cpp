#include "mem/pessimistic_l1.h"

namespace simany::mem {

PessimisticL1::AccessResult PessimisticL1::access(std::uint64_t addr,
                                                  std::uint32_t bytes) {
  AccessResult r;
  if (bytes == 0) bytes = 1;
  const std::uint64_t first = addr / line_bytes_;
  const std::uint64_t last = (addr + bytes - 1) / line_bytes_;
  for (std::uint64_t line = first; line <= last; ++line) {
    if (resident_.insert(line).second) {
      ++r.miss_lines;
    } else {
      ++r.hit_lines;
    }
  }
  return r;
}

}  // namespace simany::mem
