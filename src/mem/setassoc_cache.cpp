#include "mem/setassoc_cache.h"

#include <stdexcept>

namespace simany::mem {

SetAssocCache::SetAssocCache(Config cfg) : cfg_(cfg) {
  if (cfg_.line_bytes == 0 || cfg_.ways == 0 ||
      cfg_.size_bytes < cfg_.line_bytes * cfg_.ways) {
    throw std::invalid_argument("SetAssocCache: bad geometry");
  }
  num_sets_ = cfg_.size_bytes / (cfg_.line_bytes * cfg_.ways);
  if (num_sets_ == 0) num_sets_ = 1;
  ways_.assign(static_cast<std::size_t>(num_sets_) * cfg_.ways, Way{});
}

SetAssocCache::AccessResult SetAssocCache::access(std::uint64_t addr,
                                                  bool write) {
  AccessResult r;
  const std::uint64_t line = line_of(addr);
  const std::uint32_t set = set_of(line);
  Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  ++clock_;

  Way* victim = base;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == line) {
      way.lru = clock_;
      way.dirty = way.dirty || write;
      ++hits_;
      r.hit = true;
      return r;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  ++misses_;
  if (victim->valid && victim->dirty) {
    r.evicted_dirty = true;
    r.evicted_line = victim->tag;
  }
  victim->valid = true;
  victim->tag = line;
  victim->lru = clock_;
  victim->dirty = write;
  return r;
}

bool SetAssocCache::invalidate_addr(std::uint64_t addr) {
  const std::uint64_t line = line_of(addr);
  const std::uint32_t set = set_of(line);
  Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == line) {
      const bool was_dirty = way.dirty;
      way = Way{};
      return was_dirty;
    }
  }
  return false;
}

bool SetAssocCache::contains(std::uint64_t addr) const {
  const std::uint64_t line = addr / cfg_.line_bytes;
  const std::uint32_t set = static_cast<std::uint32_t>(line % num_sets_);
  const Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == line) return true;
  }
  return false;
}

void SetAssocCache::flush() {
  for (auto& way : ways_) way = Way{};
}

}  // namespace simany::mem
