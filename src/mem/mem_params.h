// Memory hierarchy timing parameters (paper SS V defaults).
#pragma once

#include <cstdint>

#include "core/vtime.h"

namespace simany::mem {

enum class MemoryModel : std::uint8_t {
  /// Single shared memory, uniform access latency, no coherence delays
  /// unless `coherence_timing` is set. The paper's "optimistic"
  /// architecture type for inherent-scalability studies.
  kShared,
  /// Fully distributed banks without hardware coherence; the run-time
  /// system moves data in cells (paper's "realistic" type).
  kDistributed,
};

struct MemParams {
  MemoryModel model = MemoryModel::kShared;

  /// Private L1 hit latency (paper: 1 cycle).
  Cycles l1_latency_cycles = 1;
  /// Uniform shared-memory access latency (paper: 10 cycles).
  Cycles shared_latency_cycles = 10;
  /// Per-core L2 latency in distributed mode (paper: 10 cycles).
  Cycles l2_latency_cycles = 10;
  /// Cache line granularity for the L1 model and coherence directory.
  std::uint32_t line_bytes = 32;

  /// Enables cache-coherence delay modeling on the shared architecture
  /// (the paper turns this on in SiMany for the cycle-level validation).
  bool coherence_timing = false;
  /// Extra latency to fetch a line dirty in another core's cache,
  /// in addition to per-hop network distance cost.
  Cycles coh_remote_transfer_cycles = 10;
  /// Per-hop cost component of remote transfers / invalidations.
  Cycles coh_per_hop_cycles = 2;
  /// Base cost of invalidating sharers on a write.
  Cycles coh_invalidate_cycles = 8;
};

}  // namespace simany::mem
