// Crash-safe artifact writes: tmp + fsync + rename + directory fsync.
//
// Every schema'd artifact the simulator emits (snapshots, autosave
// generations, status heartbeats, traces, metrics, reports) goes
// through this one writer so a reader can never observe a torn file
// at the destination path: either the old bytes are intact or the new
// bytes are complete. Failures surface as SimError with the I/O
// taxonomy codes (kIoNoSpace / kIoReadOnly / kIoError), never as a
// silently truncated file.
#pragma once

#include <cstdint>
#include <string>

#include "core/sim_error.h"

namespace simany::io {

/// Durability/verification knobs for one atomic replace.
struct AtomicWriteOptions {
  /// fsync the temp file before rename and the directory after. On for
  /// artifacts that must survive power loss (snapshots); off for the
  /// status heartbeat, whose freshness matters more than durability
  /// and whose cadence makes per-write fsyncs a perturbation risk.
  bool fsync = true;
  /// Re-open the renamed file and FNV-compare against the buffer that
  /// was written. Catches short writes the kernel accepted but a lower
  /// layer corrupted; only worth the extra read for checkpoints.
  bool verify_readback = false;
};

/// Atomically replace `path` with `size` bytes from `data`: write to
/// `path + ".tmp"`, optionally fsync, rename over `path`, optionally
/// fsync the parent directory. The temp file is unlinked on any
/// failure. Throws SimError (kIoNoSpace / kIoReadOnly / kIoError) with
/// the failing stage and errno name in the message.
void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size,
                       const AtomicWriteOptions& opts = {});

/// Convenience overload for composed text artifacts.
void atomic_write_file(const std::string& path, const std::string& body,
                       const AtomicWriteOptions& opts = {});

/// Map an errno from a failed artifact write onto the SimErrorCode I/O
/// taxonomy: ENOSPC/EDQUOT -> kIoNoSpace, EROFS/EACCES/EPERM ->
/// kIoReadOnly, everything else (EIO, 0, ...) -> kIoError.
[[nodiscard]] SimErrorCode io_error_code(int err) noexcept;

/// Throw a SimError carrying the taxonomy code for `err`. `what` names
/// the failing operation (e.g. "write", "rename"), `path` the artifact.
[[noreturn]] void throw_io_error(const std::string& what,
                                 const std::string& path, int err);

/// Write-fault injection shim for tests: arms a countdown so that the
/// Nth subsequent low-level write issued by atomic_write_file fails
/// with `err` (e.g. ENOSPC, EIO). `fail_after == 0` fails the next
/// write. Process-global and not thread-safe by design — test-only.
void set_write_fault(std::uint64_t fail_after, int err);

/// Disarm the injection shim (the default state).
void clear_write_fault();

}  // namespace simany::io
