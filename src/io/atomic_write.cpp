#include "io/atomic_write.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

namespace simany::io {

namespace {

// Test-only write-fault shim state (see set_write_fault).
bool g_fault_armed = false;
std::uint64_t g_fault_countdown = 0;
int g_fault_errno = 0;

// Returns the errno a faulted write should fail with, or 0 to proceed.
int consume_write_fault() {
  if (!g_fault_armed) return 0;
  if (g_fault_countdown > 0) {
    --g_fault_countdown;
    return 0;
  }
  g_fault_armed = false;
  return g_fault_errno;
}

const char* errno_name(int err) {
  switch (err) {
    case ENOSPC: return "ENOSPC";
    case EDQUOT: return "EDQUOT";
    case EROFS: return "EROFS";
    case EACCES: return "EACCES";
    case EPERM: return "EPERM";
    case EIO: return "EIO";
    case ENOENT: return "ENOENT";
    case EISDIR: return "EISDIR";
    default: return nullptr;
  }
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::uint64_t fnv1a64_bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// RAII fd + tmp-file cleanup: on any failure path the temp file must
// not linger next to the destination (ring scanners ignore *.tmp, but
// a retry would otherwise trip over a stale one on open(O_EXCL)).
struct TmpFile {
  std::string path;
  int fd = -1;
  bool keep = false;
  ~TmpFile() {
    if (fd >= 0) ::close(fd);
    if (!keep && !path.empty()) ::unlink(path.c_str());
  }
};

}  // namespace

SimErrorCode io_error_code(int err) noexcept {
  switch (err) {
    case ENOSPC:
    case EDQUOT:
      return SimErrorCode::kIoNoSpace;
    case EROFS:
    case EACCES:
    case EPERM:
      return SimErrorCode::kIoReadOnly;
    default:
      return SimErrorCode::kIoError;
  }
}

void throw_io_error(const std::string& what, const std::string& path,
                    int err) {
  const SimErrorCode code = io_error_code(err);
  SimError::Context ctx;
  ctx.code = code;
  ctx.cause = to_string(code);
  ctx.detail = static_cast<std::uint64_t>(err);
  std::string msg = "artifact write failed: " + what + " '" + path + "'";
  if (err != 0) {
    msg += ": ";
    if (const char* name = errno_name(err)) {
      msg += name;
      msg += " (";
      msg += std::strerror(err);
      msg += ")";
    } else {
      msg += std::strerror(err);
    }
  }
  throw SimError(std::move(msg), ctx);
}

void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size, const AtomicWriteOptions& opts) {
  if (path.empty()) throw_io_error("open", path, ENOENT);
  TmpFile tmp;
  tmp.path = path + ".tmp";
  // O_TRUNC rather than O_EXCL: a stale temp from a killed process
  // must not wedge every later write to the same artifact.
  tmp.fd = ::open(tmp.path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp.fd < 0) throw_io_error("open", tmp.path, errno);

  // Bounded chunks: a short write mid-stream (ENOSPC on a filling
  // disk) must be observable between chunks, and the fault shim gets a
  // realistic multi-write surface for large artifacts.
  constexpr std::size_t kChunk = 256u << 10;
  const auto* p = static_cast<const char*>(data);
  std::size_t off = 0;
  while (off < size) {
    if (const int err = consume_write_fault()) {
      throw_io_error("write", tmp.path, err);
    }
    const ssize_t n = ::write(tmp.fd, p + off, std::min(size - off, kChunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_io_error("write", tmp.path, errno);
    }
    off += static_cast<std::size_t>(n);
  }
  if (opts.fsync && ::fsync(tmp.fd) != 0) {
    throw_io_error("fsync", tmp.path, errno);
  }
  if (::close(tmp.fd) != 0) {
    tmp.fd = -1;
    throw_io_error("close", tmp.path, errno);
  }
  tmp.fd = -1;

  if (::rename(tmp.path.c_str(), path.c_str()) != 0) {
    throw_io_error("rename", path, errno);
  }
  tmp.keep = true;  // renamed away; nothing to unlink

  if (opts.fsync) {
    // Persist the rename itself: without the directory fsync a crash
    // can roll the directory entry back to the old file.
    const std::string dir = parent_dir(path);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd < 0) throw_io_error("open-dir", dir, errno);
    const int rc = ::fsync(dfd);
    const int err = errno;
    ::close(dfd);
    if (rc != 0) throw_io_error("fsync-dir", dir, err);
  }

  if (opts.verify_readback) {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> back{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
    if (!in.good() && !in.eof()) throw_io_error("readback", path, EIO);
    if (back.size() != size ||
        fnv1a64_bytes(back.data(), back.size()) != fnv1a64_bytes(data, size)) {
      throw_io_error("readback-digest", path, EIO);
    }
  }
}

void atomic_write_file(const std::string& path, const std::string& body,
                       const AtomicWriteOptions& opts) {
  atomic_write_file(path, body.data(), body.size(), opts);
}

void set_write_fault(std::uint64_t fail_after, int err) {
  g_fault_armed = true;
  g_fault_countdown = fail_after;
  g_fault_errno = err;
}

void clear_write_fault() {
  g_fault_armed = false;
  g_fault_countdown = 0;
  g_fault_errno = 0;
}

}  // namespace simany::io
