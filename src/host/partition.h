// Core-to-shard partitioning for the parallel host backend.
//
// Shards are contiguous, balanced ranges of core ids. All topology
// constructors in net/topology.h number cores row-major (meshes) or
// along the ring, so contiguous id ranges are contiguous tiles of the
// physical layout: most links stay inside a shard and cross-shard
// traffic is confined to tile borders, which is what makes the spatial
// drift window an effective per-shard lookahead.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/topology.h"

namespace simany::host {

struct PartitionPlan {
  /// Half-open [begin, end) core ranges, one per shard, ascending.
  std::vector<std::pair<net::CoreId, net::CoreId>> ranges;
  /// Owning shard of every core.
  std::vector<std::uint32_t> shard_of;

  [[nodiscard]] std::uint32_t num_shards() const noexcept {
    return static_cast<std::uint32_t>(ranges.size());
  }
};

/// Splits `num_cores` cores into `shards` contiguous ranges whose sizes
/// differ by at most one. `shards` is clamped to [1, num_cores].
[[nodiscard]] PartitionPlan make_partition(std::uint32_t num_cores,
                                           std::uint32_t shards);

}  // namespace simany::host
