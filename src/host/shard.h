// Per-shard host state for parallel execution.
//
// The parallel backend partitions simulated cores into shards and runs
// each shard's event loop on its own host thread in bulk-synchronous
// rounds. Everything a shard mutates while its round is running lives
// here (or in the CoreSim structures of its own cores): the ready/
// stalled scheduling queues, conservation counters, the fiber pool, a
// private network lane, and a private SimStats accumulator merged at
// the end of the run. Cross-shard effects travel as HostOp records
// through SPSC mailboxes and are applied by the destination shard at
// the start of its next round, after the epoch barrier.
//
// Everything in this header is SIMANY_SHARD_AFFINE territory in the
// core/phase_annotations.h vocabulary: a ShardState (and the CoreSims
// it owns) may be touched by its worker during rounds and by the
// single serial thread at the barrier — never by another shard's
// worker. tools/simlint enforces the phase/mailbox side of that
// contract; see docs/static_analysis.md.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <vector>

#include "core/fiber.h"
#include "core/message.h"
#include "core/sim_stats.h"
#include "core/vtime.h"
#include "net/network.h"

namespace simany::host {

/// Cross-shard operation kinds. kDeliver carries an ordinary simulated
/// message into a remote inbox; the rest are the paper's control
/// messages with "no architectural existence" (SS II) — they re-home
/// table mutations that the sequential engine performs as direct
/// cross-core writes, at zero virtual-time cost.
enum class HostOp : std::uint8_t {
  kDeliver,      // msg -> dst core's inbox (counts as in-flight)
  kBirthRetire,  // spawn arrived: erase msg.birth from core msg.dst
  kGroupInc,     // ++active of group msg.a (spawner side)
  kGroupDec,     // --active of group msg.a; completer msg.src at msg.sent
  kJoinQuery,    // park carried fiber on group msg.a (joiner msg.src)
  kLockAttempt,  // shared-memory lock msg.a wanted by msg.src at msg.sent
  kLockFree,     // shared-memory lock msg.a released by msg.src at msg.sent
  kCellCreate,   // insert cell msg.a (bytes msg.bytes, addr msg.b)
  kCellAttempt,  // shared-memory cell msg.a wanted (mode msg.b)
  kCellFree,     // shared-memory cell msg.a released by msg.src at msg.sent
};

/// A mailbox record: the operation plus its payload, reusing Message
/// fields (src, sent, a, b, fiber, ...) so task bodies and parked
/// joiner fibers can ride along. Move-only, like Message.
struct Routed {
  HostOp op = HostOp::kDeliver;
  Message msg;
};

/// Published snapshot of one core's synchronization-relevant state,
/// refreshed by its owning shard at the end of every round. Other
/// shards read these instead of live CoreSim fields: a frozen snapshot
/// is at most one round stale, which only makes drift limits more
/// conservative and keeps every cross-shard read race-free and
/// deterministic for a fixed shard count.
struct VtProxy {
  Tick now = 0;
  Tick births_min = kTickInfinity;
  bool anchor = false;
  /// Task-queue slots occupied (queued + reserved), for probe and
  /// migration scoring against remote neighbors.
  std::uint32_t occupied = 0;
  /// A fiber is installed or a joiner is resumable (counts as load).
  bool busy = false;
};

struct ShardState {
  explicit ShardState(std::uint32_t shard_id, net::CoreId begin,
                      net::CoreId end, std::size_t fiber_stack_bytes,
                      FiberBackend fiber_backend = FiberBackend::kAuto)
      : id(shard_id), core_begin(begin), core_end(end),
        pool(fiber_stack_bytes, fiber_backend) {}
  ShardState(const ShardState&) = delete;
  ShardState& operator=(const ShardState&) = delete;

  std::uint32_t id = 0;
  net::CoreId core_begin = 0;
  net::CoreId core_end = 0;  // half-open

  // Scheduling state (mirrors the former engine-global queues).
  std::deque<net::CoreId> ready;
  std::vector<net::CoreId> stalled;

  // Conservation counters, valid shard-locally at all times and
  // globally at barriers (mailbox transit tracked by mail_out/mail_in).
  // live_tasks is signed: a task spawned by shard A onto shard B
  // increments A's counter but decrements B's on completion, so only
  // the sum across shards is non-negative.
  std::int64_t live_tasks = 0;
  std::uint64_t inflight_messages = 0;
  std::uint64_t mail_out = 0;  // ops enqueued to other shards
  std::uint64_t mail_in = 0;   // ops applied from other shards

  Tick gmin_lb = 0;
  std::uint64_t limit_epoch = 1;
  Tick max_task_end = 0;
  std::uint64_t quantum_count = 0;

  FiberPool pool;
  net::Network::Lane lane;
  SimStats stats;

  // Scratch for the drift-limit BFS (sized num_cores).
  std::vector<std::uint32_t> bfs_epoch;
  std::uint32_t bfs_epoch_cur = 0;

  /// Round bookkeeping: set when the shard executed a quantum or
  /// applied mail this round; cleared by the serial barrier phase.
  bool progressed = false;
  std::exception_ptr error;

  /// Sum of this shard's core clocks, refreshed by host_publish at the
  /// tail of every round (the publish loop already walks those cores).
  /// The serial phase's global livelock watchdog folds these per-shard
  /// sums instead of rescanning every core each round.
  Tick round_now_sum = 0;

  /// This shard's contribution to the global drift lower bound (min
  /// over anchors' clocks and in-flight births + T), computed by the
  /// same host_publish walk. The serial phase folds the per-shard
  /// values and writes the global minimum back into every gmin_lb,
  /// keeping the drift-limit BFS pruning bound one round fresh without
  /// any O(cores) rescan.
  Tick round_gmin = kTickInfinity;

  /// Consecutive rounds in which this shard neither consumed a quantum
  /// nor applied mail. After two such rounds both proxy buffers already
  /// hold the shard's current tiles, so host_publish can be skipped
  /// entirely (host_round maintains the streak).
  std::uint32_t publish_streak = 0;

  /// Destination shards this shard pushed mail to since the last
  /// barrier (mail_touched_flag is the dedup bitmap, sized num_shards
  /// by host_setup). Lets the serial phase seal only mailboxes that
  /// actually carry traffic instead of all num_shards^2 of them.
  std::vector<std::uint32_t> mail_touched;
  std::vector<std::uint8_t> mail_touched_flag;

  /// Source shards whose mailbox into this shard was sealed with fresh
  /// traffic at the last barrier (drain_from_flag is the dedup bitmap).
  /// host_drain pops only these instead of probing all num_shards - 1
  /// incoming mailboxes every round.
  std::vector<std::uint32_t> drain_from;
  std::vector<std::uint8_t> drain_from_flag;

  // Guard-poll bookkeeping (engine guard_poll; see guard/guard_config.h).
  // All shard-local: polls run inside the shard's own round.
  std::uint64_t guard_quanta_at_poll = 0;  // quantum_count at last poll
  std::uint64_t guard_quanta_next = 0;     // quantum_count of next poll
  Tick guard_now_sum = 0;                  // sum of core clocks at last poll
  bool guard_baseline = false;             // guard_now_sum is valid
  std::uint32_t guard_stale_polls = 0;     // consecutive no-motion polls
  /// Set when a guard limit tripped: the shard's loop returns to the
  /// barrier early so the serial phase can abort the run.
  bool guard_stop = false;
};

}  // namespace simany::host
