#include "host/parallel_engine.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "core/engine.h"
#include "host/shard.h"
#include "obs/host_profile.h"
#include "obs/telemetry.h"

namespace simany::host {

namespace {

// Pin worker `w` to host CPU w (round-robin past the CPU count). A
// shard worker touches the same fiber stacks, CoreSim blocks and
// mailbox lines every round; parking it on one CPU keeps those caches
// warm across the epoch barrier instead of letting the OS migrate the
// thread between rounds. Host-side only — simulated results are a pure
// function of the shard count, never of placement. Best-effort: a
// failed (or unsupported) pin is simply ignored.
void pin_worker_thread(std::thread& t, std::uint32_t w) {
#if defined(__linux__)
  const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(w % ncpu, &set);
  (void)pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
#else
  (void)t;
  (void)w;
#endif
}

}  // namespace

ParallelHost::ParallelHost(Engine& engine, std::uint32_t workers)
    : engine_(engine), workers_(workers) {}

void ParallelHost::run() {
  Engine& e = engine_;
  const auto num_shards = static_cast<std::uint32_t>(e.shards_.size());
  const std::uint32_t width =
      std::min(std::max(workers_, 1u), num_shards);
  std::uint64_t budget = e.cfg_.host.round_quanta;
  if (budget == 0) budget = 512;

  if (width == 1) {
    // One worker would only ping-pong with the coordinator through the
    // condition variable (two context switches per round, and rounds
    // are numerous: each advances roughly one drift window). Running
    // the rounds inline visits the shards in the exact order worker 0
    // would, so the simulation is bit-identical to the threaded run.
    for (;;) {
      for (std::uint32_t s = 0; s < num_shards; ++s) {
        e.host_round(*e.shards_[s], budget);
      }
      if (e.host_serial_phase()) return;
    }
  }

  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t round = 0;      // bumped by main to release workers
  std::uint32_t remaining = 0;  // workers still inside this round
  bool stop = false;

  // When --profile-host is on, each worker stamps the wall-clock time it
  // spends parked at the epoch barrier (which brackets the serial phase
  // plus any straggler workers). The span is filed under the worker's
  // lowest-numbered shard, matching the "shard N / worker W" host track.
  obs::HostProfiler* const prof =
      e.telemetry_ != nullptr ? e.telemetry_->profiler() : nullptr;

  // simlint: role(worker_phase) — each instance runs one shard stripe
  auto worker = [&](std::uint32_t w) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::uint64_t bar_t0 = prof != nullptr ? prof->now_ns() : 0;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return stop || round > seen; });
        if (stop) return;
        seen = round;
      }
      if (prof != nullptr) {
        prof->record(w, obs::HostPhase::kBarrier, bar_t0, prof->now_ns());
      }
      for (std::uint32_t s = w; s < num_shards; s += width) {
        ShardState& sh = *e.shards_[s];
        if (sh.error) continue;  // keep barriers aligned, skip work
        try {
          e.host_round(sh, budget);
        } catch (...) {
          sh.error = std::current_exception();
        }
      }
      {
        std::lock_guard<std::mutex> lk(mu);
        if (--remaining == 0) cv.notify_all();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(width);
  for (std::uint32_t w = 0; w < width; ++w) {
    pool.emplace_back(worker, w);
    if (e.cfg_.host.pin_workers) pin_worker_thread(pool.back(), w);
  }

  std::exception_ptr err;
  bool done = false;
  while (!done) {
    {
      std::lock_guard<std::mutex> lk(mu);
      remaining = width;
      ++round;
    }
    cv.notify_all();
    {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return remaining == 0; });
    }
    // Workers are parked: the serial phase owns all shard state.
    try {
      done = e.host_serial_phase();
    } catch (...) {
      err = std::current_exception();
      done = true;
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu);
    stop = true;
  }
  cv.notify_all();
  for (auto& t : pool) t.join();
  if (err) std::rethrow_exception(err);
}

}  // namespace simany::host
