#include "host/partition.h"

#include <algorithm>
#include <stdexcept>

namespace simany::host {

PartitionPlan make_partition(std::uint32_t num_cores, std::uint32_t shards) {
  if (num_cores == 0) {
    throw std::invalid_argument("make_partition: zero cores");
  }
  const std::uint32_t s = std::clamp<std::uint32_t>(shards, 1, num_cores);
  PartitionPlan plan;
  plan.ranges.reserve(s);
  plan.shard_of.resize(num_cores);
  const std::uint32_t base = num_cores / s;
  const std::uint32_t extra = num_cores % s;
  net::CoreId begin = 0;
  for (std::uint32_t i = 0; i < s; ++i) {
    const net::CoreId end = begin + base + (i < extra ? 1 : 0);
    plan.ranges.emplace_back(begin, end);
    for (net::CoreId c = begin; c < end; ++c) plan.shard_of[c] = i;
    begin = end;
  }
  return plan;
}

}  // namespace simany::host
