// Worker-thread pool driving the sharded engine in bulk-synchronous
// rounds.
//
// Shard ownership is static: worker w owns shards w, w+W, w+2W, ...
// This is load-balanced by construction (shards are near-equal core
// ranges) and, more importantly, it guarantees every fiber is always
// resumed by the same host thread — the fiber implementation learns
// the scheduler stack on first entry, so migrating a shard between
// threads mid-run would corrupt fiber switching (and trip ASan's
// fiber-switch annotations).
//
// Round protocol (one mutex, one condition variable):
//   main: ++round, remaining = W, notify  -> workers run their shards
//   workers: host_round() per owned shard -> --remaining, last notifies
//   main: host_serial_phase() alone       -> repeat or stop
#pragma once

#include <cstdint>

namespace simany {
class Engine;
}

namespace simany::host {

class ParallelHost {
 public:
  ParallelHost(Engine& engine, std::uint32_t workers);
  ParallelHost(const ParallelHost&) = delete;
  ParallelHost& operator=(const ParallelHost&) = delete;

  /// Runs rounds until the serial phase reports completion, then joins
  /// the workers. Rethrows the first shard error or serial-phase
  /// exception after the pool is shut down.
  void run();

 private:
  Engine& engine_;
  std::uint32_t workers_;
};

}  // namespace simany::host
