// Unbounded single-producer/single-consumer mailbox.
//
// One mailbox exists per ordered shard pair (src, dst). The src shard's
// worker thread is the only producer; the dst shard's worker is the
// only consumer (it drains at the start of each round, after the epoch
// barrier has made everything the producer enqueued last round
// visible). A segmented ring keeps pushes allocation-free except once
// per kSegmentCapacity messages, and FIFO order per pair is exactly
// what the cross-shard protocol ordering arguments rely on (e.g. a
// group-increment is enqueued before the spawn that could decrement
// it).
//
// Visibility is round-aligned: pop() only yields messages enqueued
// before the last seal() call. The engine seals every mailbox in the
// serial barrier phase, so a drain in round k consumes exactly the
// messages pushed in rounds < k — never a message the producer happened
// to push earlier in the same round. Without the seal, the drained set
// would depend on wall-clock interleaving and the simulated timing
// would vary with the host thread count.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "core/phase_annotations.h"

namespace simany::host {

template <typename T>
class SpscMailbox {
 public:
  static constexpr std::size_t kSegmentCapacity = 64;

  SpscMailbox() {
    auto* s = new Segment();
    head_seg_ = s;
    tail_seg_ = s;
  }
  SpscMailbox(const SpscMailbox&) = delete;
  SpscMailbox& operator=(const SpscMailbox&) = delete;
  ~SpscMailbox() {
    Segment* s = head_seg_;
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_relaxed);
      delete s;
      s = next;
    }
  }

  /// Producer side. Safe concurrently with pop() from one consumer.
  SIMANY_MAILBOX_PRODUCER void push(T&& v) {
    Segment* s = tail_seg_;
    const std::size_t n = s->count.load(std::memory_order_relaxed);
    if (n == kSegmentCapacity) {
      auto* fresh = new Segment();
      fresh->items[0] = std::move(v);
      fresh->count.store(1, std::memory_order_release);
      s->next.store(fresh, std::memory_order_release);
      tail_seg_ = fresh;
    } else {
      s->items[n] = std::move(v);
      s->count.store(n + 1, std::memory_order_release);
    }
    pushed_.fetch_add(1, std::memory_order_release);
  }

  /// Barrier side: makes everything pushed so far visible to pop().
  /// Must be called from a point where the producer is quiescent and
  /// ordered before the consumer's next pop (the engine's serial phase
  /// runs under the round mutex, which provides both).
  SIMANY_SERIAL_ONLY void seal() {
    sealed_ = pushed_.load(std::memory_order_acquire);
  }

  /// Consumer side. Returns false once the sealed prefix is drained.
  SIMANY_MAILBOX_CONSUMER bool pop(T& out) {
    if (popped_ >= sealed_) return false;
    Segment* s = head_seg_;
    if (head_idx_ == kSegmentCapacity) {
      Segment* next = s->next.load(std::memory_order_acquire);
      if (next == nullptr) return false;
      delete s;
      head_seg_ = next;
      head_idx_ = 0;
      s = next;
    }
    if (head_idx_ >= s->count.load(std::memory_order_acquire)) return false;
    out = std::move(s->items[head_idx_++]);
    ++popped_;
    return true;
  }

 private:
  struct Segment {
    std::array<T, kSegmentCapacity> items;
    std::atomic<std::size_t> count{0};
    std::atomic<Segment*> next{nullptr};
  };

  // Consumer-owned cursor.
  Segment* head_seg_ = nullptr;
  std::size_t head_idx_ = 0;
  std::uint64_t popped_ = 0;
  // Written at the barrier, read by the consumer (ordered by the round
  // protocol's mutex, so a plain field is fine).
  std::uint64_t sealed_ = 0;
  // Producer-owned cursor.
  Segment* tail_seg_ = nullptr;
  std::atomic<std::uint64_t> pushed_{0};
};

}  // namespace simany::host
