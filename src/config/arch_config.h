// Complete description of a simulated architecture + simulator knobs.
//
// Mirrors the paper's experimental setup (SS V): PowerPC-405-like scalar
// cores over a 2D mesh (uniform / clustered / polymorphic), shared or
// distributed memory, link latency 1 cycle and bandwidth 128 B/cycle,
// maximum local drift T = 100 cycles, task-start overhead 10 cycles and
// join context switch 15 cycles.
#pragma once

#include <cstdint>
#include <vector>

#include "core/fiber.h"
#include "core/vtime.h"
#include "fault/fault_plan.h"
#include "guard/guard_config.h"
#include "mem/mem_params.h"
#include "net/network.h"
#include "net/topology.h"
#include "timing/cost_model.h"

namespace simany {

/// Costs charged by the simulated run-time system itself (paper SS V,
/// "Virtual Timing Parameters").
struct RuntimeCosts {
  /// Overhead of starting a task on a core, in addition to the time to
  /// receive the spawn message.
  Cycles task_start_cycles = 10;
  /// Context switch to a joining task resuming execution.
  Cycles join_switch_cycles = 15;
  /// Run-time processing of a PROBE / task-management message.
  Cycles msg_handle_cycles = 2;
  /// Task-queue capacity per core; PROBE reserves one slot.
  std::uint32_t task_queue_capacity = 2;
  /// Default wire sizes of run-time messages.
  std::uint32_t probe_msg_bytes = 8;
  std::uint32_t spawn_msg_bytes = 64;
  std::uint32_t ctrl_msg_bytes = 8;

  /// Heterogeneity-aware dispatch (the paper's future-work suggestion,
  /// SS VIII): probe targets and migration victims are scored by load
  /// divided by core speed, steering work toward faster cores on
  /// polymorphic machines. Off by default — the paper's run-time "is
  /// not particularly tuned for such architectures".
  bool speed_aware_dispatch = false;

  /// When true, probes consult stale neighbor-occupancy proxies kept
  /// up to date by architectural broadcast messages, exactly as the
  /// paper's run-time does (SS IV). When false (default) proxies are
  /// read instantly — equivalent to always-fresh broadcasts, cheaper
  /// to simulate; see the ablation bench for the difference.
  bool broadcast_occupancy = false;
};

/// Host execution backend (how the simulator itself runs, not what it
/// simulates).
enum class HostMode : std::uint8_t {
  /// Classic single-threaded event loop. Always used for cycle-level
  /// mode and whenever an observer/trace sink is attached.
  kSequential,
  /// Shard the simulated cores across host worker threads; each shard
  /// advances independently within the spatial-sync drift window and
  /// cross-shard traffic rides per-shard-pair mailboxes (paper SS VIII:
  /// spatial synchronization exposes abundant host parallelism).
  kParallel,
};

struct HostConfig {
  HostMode mode = HostMode::kSequential;
  /// Worker threads for kParallel (clamped to the shard count).
  std::uint32_t threads = 1;
  /// Shard count; 0 means one shard per worker thread. The simulated
  /// timing of a parallel run depends (deterministically) on the shard
  /// count, never on the thread count.
  std::uint32_t shards = 0;
  /// Scheduling quanta each shard may execute per round before the
  /// epoch barrier exchanges cross-shard messages and proxy snapshots.
  std::uint32_t round_quanta = 512;
  /// Pin worker threads to host CPUs (round-robin). Keeps a shard's
  /// cores, fiber stacks and mailbox cache lines on one core's caches
  /// across rounds; purely host-side, never affects simulated results.
  bool pin_workers = true;
};

/// Telemetry knobs persisted alongside the architecture so a config
/// file fully reproduces an instrumented run (src/obs,
/// docs/observability.md). Event collection itself is switched on by
/// attaching an obs::Telemetry to the engine, not by this struct.
struct ObsConfig {
  /// Virtual-time distance between metric samples, in cycles; 0
  /// disables periodic sampling (counters are still final-valued).
  std::uint64_t metrics_interval_cycles = 0;
  /// Record wall-clock spans of the host round phases per worker.
  bool profile_host = false;
};

/// Virtual-time synchronization scheme (paper SS II and SS VII).
enum class SyncScheme : std::uint8_t {
  /// SiMany's spatial synchronization: a core may lead the anchored
  /// time reachable through the topology by at most T per hop. Purely
  /// local and distributed.
  kSpatial,
  /// SlackSim-style bounded slack: a core may lead the *global*
  /// minimum active virtual time by at most T. Kept as an ablation
  /// baseline; requires global information every check.
  kBoundedSlack,
};

struct ArchConfig {
  net::Topology topology = net::Topology::mesh2d(1);
  /// Per-core speed factors; empty means every core runs at speed 1.
  std::vector<Speed> core_speeds;
  mem::MemParams mem;
  net::NetworkParams network;
  timing::CostTable cost_table;
  timing::BranchModel branch;
  RuntimeCosts runtime;
  HostConfig host;
  ObsConfig obs;
  /// Deterministic fault-injection plan (disabled by default); see
  /// fault/fault_plan.h and docs/fault_injection.md.
  fault::FaultPlan fault;
  /// Supervision limits — deadlines, watchdog, resource guards
  /// (disabled by default); see guard/guard_config.h and
  /// docs/robustness.md.
  guard::GuardConfig guard;

  /// Maximum local virtual-time drift T between topological neighbors,
  /// in cycles (paper reference value: 100).
  Cycles drift_t_cycles = 100;

  /// How the drift bound is enforced (default: the paper's scheme).
  SyncScheme sync_scheme = SyncScheme::kSpatial;

  /// Compute-chopping quantum of the cycle-level mode, in cycles.
  /// Smaller = finer event interleaving (closer to per-cycle
  /// simulation), slower to run.
  Cycles cl_quantum_cycles = 16;

  /// Master seed; per-core streams derive from it.
  std::uint64_t seed = 1;

  /// Stack size for task fibers.
  std::size_t fiber_stack_bytes = 256 * 1024;

  /// Fiber context-switch backend (core/fiber.h). kAuto resolves to the
  /// build default: the hand-rolled fast switch where available. Purely
  /// host-side — both backends produce identical simulated results.
  FiberBackend fiber_backend = FiberBackend::kAuto;

  [[nodiscard]] std::uint32_t num_cores() const noexcept {
    return topology.num_cores();
  }
  [[nodiscard]] Speed speed_of(std::uint32_t core) const noexcept {
    return core_speeds.empty() ? Speed{} : core_speeds[core];
  }
  [[nodiscard]] Tick drift_ticks() const noexcept {
    return ticks(drift_t_cycles);
  }

  /// Throws std::invalid_argument when inconsistent (disconnected
  /// topology, speed vector size mismatch, zero speeds, ...).
  void validate() const;

  // ---- Paper presets -------------------------------------------------

  /// Optimistic shared-memory architecture: uniform 2D mesh, private L1
  /// (1 cycle), uniform 10-cycle shared memory, no coherence delays.
  static ArchConfig shared_mesh(std::uint32_t cores);

  /// Realistic distributed-memory architecture: adds a per-core L2
  /// (10 cycles); shared data handled by the run-time in cells.
  static ArchConfig distributed_mesh(std::uint32_t cores);

  /// Replaces the topology with a clustered mesh: inter-cluster links
  /// 4 cycles, intra-cluster links 0.5 cycles (paper SS V).
  static ArchConfig clustered(ArchConfig base, std::uint32_t clusters);

  /// Makes the core mix polymorphic: every even core twice slower,
  /// every odd core faster by 3/2 — same cumulative computing power.
  static ArchConfig polymorphic(ArchConfig base);

  /// Enables the abstract coherence-delay model (validation mode).
  static ArchConfig with_coherence(ArchConfig base);
};

}  // namespace simany
