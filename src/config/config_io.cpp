#include "config/config_io.h"

#include <cmath>
#include <fstream>
#include <istream>
#include <tuple>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace simany {

namespace {

struct RawConfig {
  std::uint32_t cores = 0;
  std::string topology = "mesh";
  std::uint32_t clusters = 4;
  std::string topology_file;
  std::vector<std::tuple<net::CoreId, net::CoreId, net::LinkProps>> links;
  bool have_links = false;
  double link_latency_cycles = 1.0;
  std::uint32_t link_bandwidth = 128;
  ArchConfig cfg;  // scalar fields accumulate here
  bool polymorphic = false;
  std::vector<std::pair<std::uint32_t, Speed>> speeds;
};

[[noreturn]] void fail(std::size_t lineno, const std::string& what) {
  throw std::runtime_error("config parse error at line " +
                           std::to_string(lineno) + ": " + what);
}

bool parse_bool(const std::string& v, std::size_t lineno) {
  if (v == "on" || v == "true" || v == "1") return true;
  if (v == "off" || v == "false" || v == "0") return false;
  fail(lineno, "expected on/off, got '" + v + "'");
}

// Checked numeric parsing: arbitrary (possibly hostile) config text
// must produce a structured parse error, never a crash, a silent
// wrap-around (std::stoull accepts "-5"), or silently ignored trailing
// garbage ("12abc"). The permissive core lives in the public
// try_parse_* functions so the CLI applies the identical discipline.
std::uint64_t parse_u64(const std::string& v, std::size_t lineno) {
  std::uint64_t out = 0;
  if (!try_parse_u64(v, out)) {
    fail(lineno, "expected an unsigned integer, got '" + v + "'");
  }
  return out;
}

std::uint32_t parse_u32(const std::string& v, std::size_t lineno) {
  const std::uint64_t out = parse_u64(v, lineno);
  if (out > 0xffffffffULL) {
    fail(lineno, "value out of 32-bit range: '" + v + "'");
  }
  return static_cast<std::uint32_t>(out);
}

double parse_f64(const std::string& v, std::size_t lineno) {
  double out = 0.0;
  if (!try_parse_f64(v, out)) {
    fail(lineno, "expected a number, got '" + v + "'");
  }
  return out;
}

Speed parse_speed(const std::string& v, std::size_t lineno) {
  const auto slash = v.find('/');
  if (slash == std::string::npos) {
    const auto num = parse_u32(v, lineno);
    if (num == 0) fail(lineno, "zero speed");
    return Speed{num, 1};
  }
  const auto num = parse_u32(v.substr(0, slash), lineno);
  const auto den = parse_u32(v.substr(slash + 1), lineno);
  if (num == 0 || den == 0) fail(lineno, "zero speed component");
  return Speed{num, den};
}

}  // namespace

ArchConfig parse_config(std::istream& in) {
  RawConfig raw;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    auto next = [&]() -> std::string {
      std::string v;
      if (!(ls >> v)) fail(lineno, "missing value for '" + key + "'");
      return v;
    };
    auto next_u32 = [&]() -> std::uint32_t {
      return parse_u32(next(), lineno);
    };
    auto next_u64 = [&]() -> std::uint64_t {
      return parse_u64(next(), lineno);
    };
    auto next_prob = [&]() -> double {
      const double p = parse_f64(next(), lineno);
      if (!(p >= 0.0 && p <= 1.0)) fail(lineno, "probability outside [0, 1]");
      return p;
    };

    if (key == "cores") {
      raw.cores = next_u32();
    } else if (key == "topology") {
      raw.topology = next();
      if (raw.topology == "clustered") raw.clusters = next_u32();
    } else if (key == "topology_file") {
      raw.topology_file = next();
    } else if (key == "link") {
      const auto a = next_u32();
      const auto b = next_u32();
      net::LinkProps props;
      Tick lat = 0;
      if (ls >> lat) props.latency = lat;
      std::uint32_t bw = 0;
      if (ls >> bw) props.bandwidth_bytes_per_cycle = bw;
      raw.links.emplace_back(a, b, props);
      raw.have_links = true;
    } else if (key == "memory") {
      const auto v = next();
      if (v == "shared") {
        raw.cfg.mem.model = mem::MemoryModel::kShared;
      } else if (v == "distributed") {
        raw.cfg.mem.model = mem::MemoryModel::kDistributed;
      } else {
        fail(lineno, "unknown memory model '" + v + "'");
      }
    } else if (key == "coherence") {
      raw.cfg.mem.coherence_timing = parse_bool(next(), lineno);
    } else if (key == "drift_t") {
      raw.cfg.drift_t_cycles = next_u64();
    } else if (key == "sync") {
      const auto v = next();
      if (v == "spatial") {
        raw.cfg.sync_scheme = SyncScheme::kSpatial;
      } else if (v == "bounded-slack") {
        raw.cfg.sync_scheme = SyncScheme::kBoundedSlack;
      } else {
        fail(lineno, "unknown sync scheme '" + v + "'");
      }
    } else if (key == "seed") {
      raw.cfg.seed = next_u64();
    } else if (key == "link_latency") {
      raw.link_latency_cycles = parse_f64(next(), lineno);
      if (raw.link_latency_cycles < 0.0) fail(lineno, "negative link latency");
    } else if (key == "link_bandwidth") {
      raw.link_bandwidth = next_u32();
    } else if (key == "speed") {
      const auto core = next_u32();
      raw.speeds.emplace_back(core, parse_speed(next(), lineno));
    } else if (key == "polymorphic") {
      raw.polymorphic = true;
    } else if (key == "l1_latency") {
      raw.cfg.mem.l1_latency_cycles = next_u64();
    } else if (key == "shared_latency") {
      raw.cfg.mem.shared_latency_cycles = next_u64();
    } else if (key == "l2_latency") {
      raw.cfg.mem.l2_latency_cycles = next_u64();
    } else if (key == "line_bytes") {
      raw.cfg.mem.line_bytes = next_u32();
    } else if (key == "task_start") {
      raw.cfg.runtime.task_start_cycles = next_u64();
    } else if (key == "join_switch") {
      raw.cfg.runtime.join_switch_cycles = next_u64();
    } else if (key == "msg_handle") {
      raw.cfg.runtime.msg_handle_cycles = next_u64();
    } else if (key == "routing") {
      const auto v = next();
      if (v == "hops") {
        raw.cfg.network.routing = net::RouteWeighting::kHops;
      } else if (v == "latency") {
        raw.cfg.network.routing = net::RouteWeighting::kLatency;
      } else {
        fail(lineno, "unknown routing weighting '" + v + "'");
      }
    } else if (key == "cl_quantum") {
      raw.cfg.cl_quantum_cycles = next_u64();
    } else if (key == "task_queue") {
      raw.cfg.runtime.task_queue_capacity = next_u32();
    } else if (key == "speed_aware_dispatch") {
      raw.cfg.runtime.speed_aware_dispatch = parse_bool(next(), lineno);
    } else if (key == "broadcast_occupancy") {
      raw.cfg.runtime.broadcast_occupancy = parse_bool(next(), lineno);
    } else if (key == "host_mode") {
      const auto v = next();
      if (v == "sequential") {
        raw.cfg.host.mode = HostMode::kSequential;
      } else if (v == "parallel") {
        raw.cfg.host.mode = HostMode::kParallel;
      } else {
        fail(lineno, "unknown host mode '" + v + "'");
      }
    } else if (key == "host_threads") {
      raw.cfg.host.threads = next_u32();
    } else if (key == "host_shards") {
      raw.cfg.host.shards = next_u32();
    } else if (key == "host_round_quanta") {
      raw.cfg.host.round_quanta = next_u32();
    } else if (key == "host_pin_workers") {
      raw.cfg.host.pin_workers = parse_bool(next(), lineno);
    } else if (key == "fiber_backend") {
      const auto v = next();
      if (v == "auto") {
        raw.cfg.fiber_backend = FiberBackend::kAuto;
      } else if (v == "fast") {
        raw.cfg.fiber_backend = FiberBackend::kFast;
      } else if (v == "ucontext") {
        raw.cfg.fiber_backend = FiberBackend::kUcontext;
      } else {
        fail(lineno, "unknown fiber backend '" + v + "'");
      }
    } else if (key == "metrics_interval") {
      raw.cfg.obs.metrics_interval_cycles = next_u64();
    } else if (key == "profile_host") {
      raw.cfg.obs.profile_host = parse_bool(next(), lineno);
    } else if (key == "fault_seed") {
      raw.cfg.fault.seed = next_u64();
    } else if (key == "fault_msg_delay") {
      raw.cfg.fault.msg_delay_prob = next_prob();
      raw.cfg.fault.msg_delay_cycles = next_u64();
    } else if (key == "fault_msg_dup") {
      raw.cfg.fault.msg_dup_prob = next_prob();
    } else if (key == "fault_msg_drop") {
      raw.cfg.fault.msg_drop_prob = next_prob();
    } else if (key == "fault_retry") {
      raw.cfg.fault.retry_limit = next_u32();
      raw.cfg.fault.retry_timeout_cycles = next_u64();
    } else if (key == "fault_stall") {
      raw.cfg.fault.stall_prob = next_prob();
      raw.cfg.fault.stall_cycles = next_u64();
    } else if (key == "fault_spawn_fail") {
      raw.cfg.fault.spawn_fail_prob = next_prob();
    } else if (key == "fault_mem_spike") {
      raw.cfg.fault.mem_spike_prob = next_prob();
      raw.cfg.fault.mem_spike_cycles = next_u64();
    } else if (key == "fault_dead_cores") {
      raw.cfg.fault.dead_cores = next_u32();
    } else if (key == "fault_dead") {
      raw.cfg.fault.dead_core_list.push_back(next_u32());
    } else if (key == "fault_wedge") {
      raw.cfg.fault.wedge_core_list.push_back(next_u32());
    } else if (key == "guard_deadline_ms") {
      raw.cfg.guard.deadline_ms = next_u64();
    } else if (key == "guard_max_vtime") {
      raw.cfg.guard.max_vtime_cycles = next_u64();
    } else if (key == "guard_watchdog_rounds") {
      raw.cfg.guard.watchdog_rounds = next_u32();
    } else if (key == "guard_poll_quanta") {
      raw.cfg.guard.poll_quanta = next_u32();
    } else if (key == "guard_max_inbox") {
      raw.cfg.guard.max_inbox_depth = next_u32();
    } else if (key == "guard_max_fibers") {
      raw.cfg.guard.max_live_fibers = next_u32();
    } else {
      fail(lineno, "unknown keyword '" + key + "'");
    }
  }

  if (raw.cores == 0) {
    throw std::runtime_error("config parse error: missing 'cores'");
  }

  // Assemble the topology.
  ArchConfig cfg = std::move(raw.cfg);
  net::LinkProps props;
  props.latency =
      static_cast<Tick>(raw.link_latency_cycles * kTicksPerCycle + 0.5);
  props.bandwidth_bytes_per_cycle = raw.link_bandwidth;
  if (!raw.topology_file.empty()) {
    cfg.topology = net::Topology::load_file(raw.topology_file);
  } else if (raw.have_links) {
    net::Topology t(raw.cores);
    for (const auto& [a, b, p] : raw.links) t.add_link(a, b, p);
    cfg.topology = std::move(t);
  } else if (raw.topology == "mesh") {
    cfg.topology = net::Topology::mesh2d(raw.cores, props);
  } else if (raw.topology == "torus") {
    cfg.topology = net::Topology::torus2d(raw.cores, props);
  } else if (raw.topology == "ring") {
    cfg.topology = net::Topology::ring(raw.cores, props);
  } else if (raw.topology == "crossbar") {
    cfg.topology = net::Topology::crossbar(raw.cores, props);
  } else if (raw.topology == "clustered") {
    net::LinkProps intra = props;
    intra.latency = kTicksPerCycle / 2;
    net::LinkProps inter = props;
    inter.latency = 4 * kTicksPerCycle;
    cfg.topology = net::Topology::clustered_mesh2d(raw.cores, raw.clusters,
                                                   intra, inter);
  } else {
    throw std::runtime_error("config parse error: unknown topology '" +
                             raw.topology + "'");
  }

  if (raw.polymorphic) {
    cfg = ArchConfig::polymorphic(std::move(cfg));
  }
  if (!raw.speeds.empty()) {
    if (cfg.core_speeds.empty()) {
      cfg.core_speeds.assign(cfg.num_cores(), Speed{});
    }
    for (const auto& [core, speed] : raw.speeds) {
      if (core >= cfg.num_cores()) {
        throw std::runtime_error(
            "config parse error: speed core out of range");
      }
      cfg.core_speeds[core] = speed;
    }
  }
  cfg.validate();
  return cfg;
}

ArchConfig load_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open config file: " + path);
  return parse_config(in);
}

void save_config(const ArchConfig& cfg, std::ostream& out) {
  out << "# simany architecture configuration\n";
  out << "cores " << cfg.num_cores() << "\n";
  out << "memory "
      << (cfg.mem.model == mem::MemoryModel::kShared ? "shared"
                                                     : "distributed")
      << "\n";
  out << "coherence " << (cfg.mem.coherence_timing ? "on" : "off") << "\n";
  out << "drift_t " << cfg.drift_t_cycles << "\n";
  out << "sync "
      << (cfg.sync_scheme == SyncScheme::kSpatial ? "spatial"
                                                  : "bounded-slack")
      << "\n";
  out << "seed " << cfg.seed << "\n";
  out << "l1_latency " << cfg.mem.l1_latency_cycles << "\n";
  out << "shared_latency " << cfg.mem.shared_latency_cycles << "\n";
  out << "l2_latency " << cfg.mem.l2_latency_cycles << "\n";
  out << "line_bytes " << cfg.mem.line_bytes << "\n";
  out << "task_start " << cfg.runtime.task_start_cycles << "\n";
  out << "join_switch " << cfg.runtime.join_switch_cycles << "\n";
  out << "msg_handle " << cfg.runtime.msg_handle_cycles << "\n";
  out << "task_queue " << cfg.runtime.task_queue_capacity << "\n";
  out << "cl_quantum " << cfg.cl_quantum_cycles << "\n";
  out << "routing "
      << (cfg.network.routing == net::RouteWeighting::kHops ? "hops"
                                                            : "latency")
      << "\n";
  out << "speed_aware_dispatch "
      << (cfg.runtime.speed_aware_dispatch ? "on" : "off") << "\n";
  out << "broadcast_occupancy "
      << (cfg.runtime.broadcast_occupancy ? "on" : "off") << "\n";
  out << "host_mode "
      << (cfg.host.mode == HostMode::kParallel ? "parallel" : "sequential")
      << "\n";
  out << "host_threads " << cfg.host.threads << "\n";
  out << "host_shards " << cfg.host.shards << "\n";
  out << "host_round_quanta " << cfg.host.round_quanta << "\n";
  // Host-tuning keys are emitted only when non-default, like the fault
  // block, so untuned configs round-trip byte-identically with older
  // files.
  if (!cfg.host.pin_workers) {
    out << "host_pin_workers off\n";
  }
  if (cfg.fiber_backend != FiberBackend::kAuto) {
    out << "fiber_backend "
        << (cfg.fiber_backend == FiberBackend::kFast ? "fast" : "ucontext")
        << "\n";
  }
  // Telemetry keys are emitted only when set, like the fault block, so
  // uninstrumented configs round-trip byte-identically with older files.
  if (cfg.obs.metrics_interval_cycles != 0) {
    out << "metrics_interval " << cfg.obs.metrics_interval_cycles << "\n";
  }
  if (cfg.obs.profile_host) {
    out << "profile_host on\n";
  }
  // The fault block is emitted only when something can fire, so
  // fault-free configs round-trip byte-identically with older files.
  if (cfg.fault.enabled()) {
    const auto& f = cfg.fault;
    out << "fault_seed " << f.seed << "\n";
    if (f.msg_delay_prob > 0.0) {
      out << "fault_msg_delay " << f.msg_delay_prob << " "
          << f.msg_delay_cycles << "\n";
    }
    if (f.msg_dup_prob > 0.0) {
      out << "fault_msg_dup " << f.msg_dup_prob << "\n";
    }
    if (f.msg_drop_prob > 0.0) {
      out << "fault_msg_drop " << f.msg_drop_prob << "\n";
      out << "fault_retry " << f.retry_limit << " "
          << f.retry_timeout_cycles << "\n";
    }
    if (f.stall_prob > 0.0) {
      out << "fault_stall " << f.stall_prob << " " << f.stall_cycles << "\n";
    }
    if (f.spawn_fail_prob > 0.0) {
      out << "fault_spawn_fail " << f.spawn_fail_prob << "\n";
    }
    if (f.mem_spike_prob > 0.0) {
      out << "fault_mem_spike " << f.mem_spike_prob << " "
          << f.mem_spike_cycles << "\n";
    }
    if (f.dead_cores > 0) {
      out << "fault_dead_cores " << f.dead_cores << "\n";
    }
    for (const net::CoreId c : f.dead_core_list) {
      out << "fault_dead " << c << "\n";
    }
    for (const net::CoreId c : f.wedge_core_list) {
      out << "fault_wedge " << c << "\n";
    }
  }
  // Guard keys are emitted only when set, so unguarded configs
  // round-trip byte-identically with older files.
  {
    const guard::GuardConfig& g = cfg.guard;
    if (g.deadline_ms != 0) {
      out << "guard_deadline_ms " << g.deadline_ms << "\n";
    }
    if (g.max_vtime_cycles != 0) {
      out << "guard_max_vtime " << g.max_vtime_cycles << "\n";
    }
    if (g.watchdog_rounds != 0) {
      out << "guard_watchdog_rounds " << g.watchdog_rounds << "\n";
    }
    if (g.poll_quanta != guard::GuardConfig{}.poll_quanta) {
      out << "guard_poll_quanta " << g.poll_quanta << "\n";
    }
    if (g.max_inbox_depth != 0) {
      out << "guard_max_inbox " << g.max_inbox_depth << "\n";
    }
    if (g.max_live_fibers != 0) {
      out << "guard_max_fibers " << g.max_live_fibers << "\n";
    }
  }
  for (std::size_t c = 0; c < cfg.core_speeds.size(); ++c) {
    const Speed s = cfg.core_speeds[c];
    if (!s.is_unit()) {
      out << "speed " << c << " " << s.num << "/" << s.den << "\n";
    }
  }
  // Explicit link lines reproduce arbitrary topologies exactly.
  for (net::LinkId id = 0; id < cfg.topology.num_links(); ++id) {
    const auto& l = cfg.topology.link(id);
    out << "link " << l.a << " " << l.b << " " << l.props.latency << " "
        << l.props.bandwidth_bytes_per_cycle << "\n";
  }
}

bool try_parse_u64(const std::string& v, std::uint64_t& out) {
  if (v.empty() || v[0] == '-' || v[0] == '+') return false;
  std::size_t used = 0;
  try {
    out = std::stoull(v, &used);
  } catch (const std::exception&) {
    return false;
  }
  return used == v.size();
}

bool try_parse_u32(const std::string& v, std::uint32_t& out) {
  std::uint64_t wide = 0;
  if (!try_parse_u64(v, wide) || wide > 0xffffffffULL) return false;
  out = static_cast<std::uint32_t>(wide);
  return true;
}

bool try_parse_f64(const std::string& v, double& out) {
  if (v.empty()) return false;
  std::size_t used = 0;
  try {
    out = std::stod(v, &used);
  } catch (const std::exception&) {
    return false;
  }
  return used == v.size() && !std::isnan(out);
}

}  // namespace simany
