#include "config/arch_config.h"

#include <stdexcept>
#include <utility>

namespace simany {

void ArchConfig::validate() const {
  if (topology.num_cores() == 0) {
    throw std::invalid_argument("ArchConfig: no cores");
  }
  if (!topology.connected()) {
    throw std::invalid_argument("ArchConfig: topology is not connected");
  }
  if (!core_speeds.empty() && core_speeds.size() != topology.num_cores()) {
    throw std::invalid_argument(
        "ArchConfig: core_speeds size does not match core count");
  }
  for (const Speed& s : core_speeds) {
    if (s.num == 0 || s.den == 0) {
      throw std::invalid_argument("ArchConfig: zero speed component");
    }
  }
  if (runtime.task_queue_capacity == 0) {
    throw std::invalid_argument("ArchConfig: zero task queue capacity");
  }
  if (mem.line_bytes == 0) {
    throw std::invalid_argument("ArchConfig: zero cache line size");
  }
  fault.validate(topology.num_cores());
  guard.validate();
}

ArchConfig ArchConfig::shared_mesh(std::uint32_t cores) {
  ArchConfig cfg;
  cfg.topology = net::Topology::mesh2d(cores);
  cfg.mem.model = mem::MemoryModel::kShared;
  return cfg;
}

ArchConfig ArchConfig::distributed_mesh(std::uint32_t cores) {
  ArchConfig cfg;
  cfg.topology = net::Topology::mesh2d(cores);
  cfg.mem.model = mem::MemoryModel::kDistributed;
  return cfg;
}

ArchConfig ArchConfig::clustered(ArchConfig base, std::uint32_t clusters) {
  net::LinkProps intra;
  intra.latency = kTicksPerCycle / 2;  // 0.5 cycles
  net::LinkProps inter;
  inter.latency = 4 * kTicksPerCycle;  // 4 cycles
  base.topology = net::Topology::clustered_mesh2d(
      base.topology.num_cores(), clusters, intra, inter);
  return base;
}

ArchConfig ArchConfig::polymorphic(ArchConfig base) {
  base.core_speeds.assign(base.topology.num_cores(), Speed{});
  for (std::uint32_t c = 0; c < base.topology.num_cores(); ++c) {
    base.core_speeds[c] = (c % 2 == 0) ? Speed{1, 2} : Speed{3, 2};
  }
  return base;
}

ArchConfig ArchConfig::with_coherence(ArchConfig base) {
  base.mem.coherence_timing = true;
  return base;
}

}  // namespace simany
