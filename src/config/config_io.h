// Text-file round-trip for ArchConfig.
//
// The paper drives SiMany from configuration files ("Network topology
// is specified in a configuration file", SS III); this format covers
// the whole architecture description. Line-oriented, # comments:
//
//   cores 64
//   topology mesh | torus | ring | crossbar | clustered <n>
//   memory shared | distributed
//   coherence on | off
//   drift_t 100
//   sync spatial | bounded-slack
//   seed 1
//   link_latency <cycles, fractional ok: 0.5>
//   link_bandwidth <bytes/cycle>
//   speed <core> <num>/<den>
//   polymorphic                  # paper's alternating 1/2 and 3/2 mix
//   l1_latency / shared_latency / l2_latency / line_bytes <v>
//   task_start / join_switch / msg_handle <cycles>
//   task_queue <slots>
//   routing hops | latency
//   speed_aware_dispatch on|off
//   broadcast_occupancy on|off
//   topology_file <path>         # overrides the preset topology
//
// Order matters only in that `cores` must precede topology/speed lines.
#pragma once

#include <iosfwd>
#include <string>

#include "config/arch_config.h"

namespace simany {

/// Parses a configuration stream; throws std::runtime_error with a
/// line number on malformed input. The result is validate()d.
[[nodiscard]] ArchConfig parse_config(std::istream& in);

[[nodiscard]] ArchConfig load_config_file(const std::string& path);

/// Writes `cfg` such that parse_config reproduces it (the topology is
/// embedded as explicit link lines).
void save_config(const ArchConfig& cfg, std::ostream& out);

/// Checked numeric parsing for CLI/config text, the same discipline
/// the config parser applies internally: reject empty strings, sign
/// prefixes on unsigned values, silent wrap-around, and trailing junk
/// ("3x" is not 3). Return false instead of throwing so a CLI can
/// print its own usage message.
[[nodiscard]] bool try_parse_u64(const std::string& v, std::uint64_t& out);
[[nodiscard]] bool try_parse_u32(const std::string& v, std::uint32_t& out);
[[nodiscard]] bool try_parse_f64(const std::string& v, double& out);

}  // namespace simany
