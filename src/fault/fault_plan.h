// Deterministic fault-injection plan ("what can go wrong, and how
// often").
//
// A FaultPlan is part of the ArchConfig: it describes a reproducible
// adversarial environment for one simulation run — message delays,
// duplications and drops on the interconnect, transient core stalls,
// spawn-probe denials, memory-latency spikes, and permanently disabled
// cores. All of it derives from the plan seed alone: every individual
// fault decision is a stateless hash draw keyed on (seed, fault kind,
// stable per-stream counter), never a shared RNG stream, so decisions
// are identical regardless of host thread interleaving and the
// engine's determinism contract (timing is a function of the config
// and the shard count only) extends to faulty runs unchanged.
//
// Semantics of each knob are documented field by field; the executable
// half lives in fault/fault_injector.h. docs/fault_injection.md has
// the config-file schema and the reproduction workflow.
#pragma once

#include <cstdint>
#include <vector>

#include "core/vtime.h"
#include "net/topology.h"

namespace simany::fault {

/// One category of injected fault, as reported through SimStats and
/// EngineObserver::on_fault.
enum class FaultKind : std::uint8_t {
  kMsgDelay,     // extra interconnect latency on one message
  kMsgDuplicate, // a spurious copy occupied the wire (single delivery)
  kMsgDrop,      // an attempt was lost; masked by retransmission
  kCoreStall,    // a core froze for a fixed number of cycles
  kSpawnDenied,  // a probe was answered "busy" regardless of load
  kMemSpike,     // one memory access paid an extra latency spike
  kCoreDead,     // a core is permanently disabled for the whole run
  kCoreWedge,    // a core spins forever without advancing virtual time
};

[[nodiscard]] const char* to_string(FaultKind k) noexcept;

struct FaultPlan {
  /// Seed of the fault universe. Independent from ArchConfig::seed so
  /// the same workload can be replayed under different fault draws.
  std::uint64_t seed = 0;

  // ---- Interconnect faults (applied per architectural message) ------

  /// Probability a message is delayed by extra switch-level jitter of
  /// uniformly 1..msg_delay_cycles cycles beyond its modeled timing.
  /// Delays induce arrival-order inversions between messages of one
  /// sender, which is how reordering is exercised.
  double msg_delay_prob = 0.0;
  Cycles msg_delay_cycles = 200;

  /// Probability a spurious duplicate copy of a message is put on the
  /// wire. The copy books real link occupancy (bandwidth is consumed)
  /// but is deduplicated at the receiver: exactly one logical delivery
  /// ever happens, so protocol state is never double-applied.
  double msg_dup_prob = 0.0;

  /// Probability one transmission *attempt* is lost. Drops are masked
  /// by the retry path: each lost attempt still occupies its links,
  /// then the sender waits a timeout (doubling per attempt, capped)
  /// and retransmits. After retry_limit lost attempts the simulation
  /// aborts with a SimError carrying the fault context.
  double msg_drop_prob = 0.0;
  std::uint32_t retry_limit = 8;
  Cycles retry_timeout_cycles = 50;

  // ---- Core faults ---------------------------------------------------

  /// Probability a task start is preceded by a transient stall: the
  /// core spends stall_cycles of virtual time making no progress. The
  /// stall advances through the regular spatial-sync path, so
  /// neighbors are throttled by the drift bound exactly as for real
  /// work.
  double stall_prob = 0.0;
  Cycles stall_cycles = 500;

  /// Probability a spawn probe is denied ("busy") at the receiver even
  /// when a queue slot is free, exercising the conditional-spawn
  /// inline fallback and migration paths.
  double spawn_fail_prob = 0.0;

  /// Probability one annotated memory access pays an extra
  /// mem_spike_cycles of latency.
  double mem_spike_prob = 0.0;
  Cycles mem_spike_cycles = 100;

  // ---- Permanent core failures --------------------------------------

  /// Number of cores (picked deterministically from the seed; never
  /// core 0) that are dead for the whole run: they never execute
  /// tasks, are never probe or migration targets, and always deny
  /// probes. Their network interface stays alive — routers route
  /// through them and homed lock/cell/group tables they host are still
  /// serviced ("core-dead, NoC-alive").
  std::uint32_t dead_cores = 0;
  /// Explicitly disabled cores, unioned with the random picks. Core 0
  /// (which runs the root task) is rejected by validate().
  std::vector<net::CoreId> dead_core_list;

  /// Cores that *wedge*: the first task to start on a listed core
  /// enters a permanent spin that stays runnable but never advances
  /// its virtual clock — the fabricated-livelock vector the guard
  /// watchdog must detect. Unlike dead cores the wedged core looks
  /// healthy to probes and the NoC; unlike stalls it never recovers.
  /// Core 0 is allowed (wedging the root is a valid scenario).
  std::vector<net::CoreId> wedge_core_list;

  /// True when any fault can actually fire; a disabled plan costs the
  /// engine nothing (the injector is not even constructed).
  [[nodiscard]] bool enabled() const noexcept;

  /// Throws std::invalid_argument on out-of-range probabilities, dead
  /// core 0, dead cores out of range, or a plan that disables every
  /// core but core 0's neighborsless island (num_cores - 1 cap).
  void validate(std::uint32_t num_cores) const;

  /// The resolved set of dead cores for an n-core machine: explicit
  /// kills plus `dead_cores` deterministic seed-driven picks, sorted,
  /// unique, never containing core 0, capped at n - 1 entries.
  [[nodiscard]] std::vector<net::CoreId> dead_set(
      std::uint32_t num_cores) const;
};

}  // namespace simany::fault
