#include "fault/fault_plan.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/rng.h"

namespace simany::fault {

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kMsgDelay: return "msg-delay";
    case FaultKind::kMsgDuplicate: return "msg-duplicate";
    case FaultKind::kMsgDrop: return "msg-drop";
    case FaultKind::kCoreStall: return "core-stall";
    case FaultKind::kSpawnDenied: return "spawn-denied";
    case FaultKind::kMemSpike: return "mem-spike";
    case FaultKind::kCoreDead: return "core-dead";
    case FaultKind::kCoreWedge: return "core-wedge";
  }
  return "?";
}

bool FaultPlan::enabled() const noexcept {
  return msg_delay_prob > 0.0 || msg_dup_prob > 0.0 ||
         msg_drop_prob > 0.0 || stall_prob > 0.0 || spawn_fail_prob > 0.0 ||
         mem_spike_prob > 0.0 || dead_cores > 0 || !dead_core_list.empty() ||
         !wedge_core_list.empty();
}

namespace {

void check_prob(double p, const char* name) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string("FaultPlan::") + name +
                                " must be within [0, 1]");
  }
}

}  // namespace

void FaultPlan::validate(std::uint32_t num_cores) const {
  check_prob(msg_delay_prob, "msg_delay_prob");
  check_prob(msg_dup_prob, "msg_dup_prob");
  check_prob(msg_drop_prob, "msg_drop_prob");
  check_prob(stall_prob, "stall_prob");
  check_prob(spawn_fail_prob, "spawn_fail_prob");
  check_prob(mem_spike_prob, "mem_spike_prob");
  if (msg_delay_prob > 0.0 && msg_delay_cycles == 0) {
    throw std::invalid_argument(
        "FaultPlan::msg_delay_cycles must be nonzero when delays can fire");
  }
  if (stall_prob > 0.0 && stall_cycles == 0) {
    throw std::invalid_argument(
        "FaultPlan::stall_cycles must be nonzero when stalls can fire");
  }
  if (mem_spike_prob > 0.0 && mem_spike_cycles == 0) {
    throw std::invalid_argument(
        "FaultPlan::mem_spike_cycles must be nonzero when spikes can fire");
  }
  for (const net::CoreId c : dead_core_list) {
    if (c == 0) {
      throw std::invalid_argument(
          "FaultPlan::dead_core_list must not contain core 0 (it runs the "
          "root task)");
    }
    if (c >= num_cores) {
      throw std::invalid_argument("FaultPlan::dead_core_list entry " +
                                  std::to_string(c) + " is out of range");
    }
  }
  if (dead_cores >= num_cores) {
    throw std::invalid_argument(
        "FaultPlan::dead_cores must leave at least core 0 alive");
  }
  for (const net::CoreId c : wedge_core_list) {
    if (c >= num_cores) {
      throw std::invalid_argument("FaultPlan::wedge_core_list entry " +
                                  std::to_string(c) + " is out of range");
    }
  }
}

std::vector<net::CoreId> FaultPlan::dead_set(std::uint32_t num_cores) const {
  std::vector<std::uint8_t> dead(num_cores, 0);
  std::uint32_t count = 0;
  for (const net::CoreId c : dead_core_list) {
    if (c == 0 || c >= num_cores || dead[c]) continue;
    dead[c] = 1;
    ++count;
  }
  // Seeded picks on top of the explicit kills. One dedicated stream,
  // domain-separated from every per-decision hash draw.
  const std::uint32_t cap = num_cores > 0 ? num_cores - 1 : 0;
  const std::uint32_t want =
      std::min<std::uint32_t>(count + std::min(dead_cores, cap), cap);
  Rng rng(seed ^ 0xdead10ccULL * 0x9e3779b97f4a7c15ULL);
  while (count < want) {
    const auto c = static_cast<net::CoreId>(1 + rng.below(num_cores - 1));
    if (dead[c]) continue;
    dead[c] = 1;
    ++count;
  }
  std::vector<net::CoreId> out;
  out.reserve(count);
  for (net::CoreId c = 0; c < num_cores; ++c) {
    if (dead[c]) out.push_back(c);
  }
  return out;
}

}  // namespace simany::fault
