#include "fault/fault_injector.h"

#include <algorithm>
#include <sstream>

#include "core/sim_error.h"

namespace simany::fault {

namespace {

/// SplitMix64 finalizer: full-avalanche mixing of a 64-bit key.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint32_t num_cores)
    : plan_(plan),
      dead_flags_(num_cores, 0),
      wedge_flags_(num_cores, 0),
      dead_(plan.dead_set(num_cores)),
      lanes_(1),
      cores_(num_cores) {
  for (const net::CoreId c : dead_) dead_flags_[c] = 1;
  for (const net::CoreId c : plan_.wedge_core_list) {
    if (c < num_cores) wedge_flags_[c] = 1;
  }
}

void FaultInjector::bind_shards(std::uint32_t num_shards) {
  lanes_.assign(std::max<std::uint32_t>(num_shards, 1), LaneState{});
}

std::uint64_t FaultInjector::draw(FaultKind kind, std::uint64_t stream,
                                  std::uint64_t counter,
                                  std::uint64_t salt) const noexcept {
  // Chained finalizers keep every key component at full avalanche; a
  // plain xor of the raw components would correlate nearby counters.
  std::uint64_t h = mix64(plan_.seed ^ (static_cast<std::uint64_t>(kind) + 1) *
                                           0xd6e8feb86659fd93ULL);
  h = mix64(h ^ stream);
  h = mix64(h ^ counter);
  return mix64(h ^ salt);
}

double FaultInjector::unit(FaultKind kind, std::uint64_t stream,
                           std::uint64_t counter,
                           std::uint64_t salt) const noexcept {
  return static_cast<double>(draw(kind, stream, counter, salt) >> 11) *
         0x1.0p-53;
}

MsgFaults FaultInjector::on_message(const net::Network& net,
                                    net::Network::Lane& lane,
                                    std::uint32_t lane_id, net::CoreId src,
                                    net::CoreId dst, std::uint32_t bytes,
                                    Tick sent) {
  MsgFaults out;
  if (src == dst) {  // local delivery: no interconnect to fault
    out.arrival = net.send_on(lane, src, dst, bytes, sent);
    return out;
  }
  LaneState& ls = lanes_[lane_id];
  const std::uint64_t seq = ls.msg_seq++;

  // Drop/retransmit: each lost attempt occupies its links before
  // vanishing, then the sender backs off (doubling, capped at 64x) and
  // retries. Exhausting the budget is unmaskable: the simulated
  // machine has failed, and the run aborts with structured context.
  Tick depart = sent;
  if (plan_.msg_drop_prob > 0.0) {
    std::uint32_t attempt = 0;
    while (unit(FaultKind::kMsgDrop, lane_id, seq, attempt) <
           plan_.msg_drop_prob) {
      if (attempt == plan_.retry_limit) {
        std::ostringstream os;
        os << "message " << src << "->" << dst << " sent at tick " << sent
           << ": retry budget exhausted, all " << (attempt + 1)
           << " transmission attempts lost (fault plan seed " << plan_.seed
           << ", drop probability " << plan_.msg_drop_prob << ")";
        SimError::Context ctx{"msg-retry-exhausted", src, dst, sent,
                              attempt + 1, plan_.seed};
        ctx.code = SimErrorCode::kMsgRetryExhausted;
        throw SimError(os.str(), ctx);
      }
      (void)net.send_on(lane, src, dst, bytes, depart);
      const Tick backoff = ticks(plan_.retry_timeout_cycles)
                           << std::min<std::uint32_t>(attempt, 6);
      depart = sat_add(depart, backoff);
      ++attempt;
    }
    out.retries = attempt;
  }

  out.arrival = net.send_on(lane, src, dst, bytes, depart);

  if (plan_.msg_dup_prob > 0.0 &&
      unit(FaultKind::kMsgDuplicate, lane_id, seq, 0) < plan_.msg_dup_prob) {
    // The spurious copy consumes bandwidth; the receiver's sequence
    // numbers discard it, so only the primary delivery is modeled.
    (void)net.send_on(lane, src, dst, bytes, depart);
    out.duplicates = 1;
  }

  if (plan_.msg_delay_prob > 0.0 &&
      unit(FaultKind::kMsgDelay, lane_id, seq, 0) < plan_.msg_delay_prob) {
    const Cycles span = std::max<Cycles>(plan_.msg_delay_cycles, 1);
    out.delay = ticks(1 + draw(FaultKind::kMsgDelay, lane_id, seq, 1) % span);
    out.arrival = sat_add(out.arrival, out.delay);
  }

  // Reorder bookkeeping: an unperturbed send that lands before an
  // earlier perturbed one has observably overtaken it on this lane.
  if (out.delay > 0 || out.retries > 0) {
    ls.max_faulted_arrival = std::max(ls.max_faulted_arrival, out.arrival);
  } else if (out.arrival < ls.max_faulted_arrival) {
    out.reordered = true;
  }
  return out;
}

Tick FaultInjector::draw_task_stall(net::CoreId c) {
  if (plan_.stall_prob <= 0.0) return 0;
  const std::uint64_t seq = cores_[c].task_seq++;
  if (unit(FaultKind::kCoreStall, c, seq, 0) >= plan_.stall_prob) return 0;
  return ticks(plan_.stall_cycles);
}

bool FaultInjector::draw_spawn_denial(net::CoreId c) {
  if (plan_.spawn_fail_prob <= 0.0) return false;
  const std::uint64_t seq = cores_[c].probe_seq++;
  return unit(FaultKind::kSpawnDenied, c, seq, 0) < plan_.spawn_fail_prob;
}

Tick FaultInjector::draw_mem_spike(net::CoreId c) {
  if (plan_.mem_spike_prob <= 0.0) return 0;
  const std::uint64_t seq = cores_[c].mem_seq++;
  if (unit(FaultKind::kMemSpike, c, seq, 0) >= plan_.mem_spike_prob) return 0;
  return ticks(plan_.mem_spike_cycles);
}

}  // namespace simany::fault
