// Executable half of a FaultPlan: per-event fault decisions + effects.
//
// The injector is owned by the Engine (only when the plan is enabled)
// and consulted at four points: message posting, task start, probe
// handling, and annotated memory accesses. It makes every decision
// with a stateless SplitMix64-style hash over (plan seed, fault kind,
// stream id, stream counter) — no shared RNG stream — so outcomes are
// a pure function of the deterministic event sequence each stream
// sees:
//
//  * message draws are keyed per *shard lane* (the sending shard's
//    post order is deterministic for a fixed shard count, and a lane
//    is only ever touched by its owning host thread);
//  * task-start / probe / memory draws are keyed per *core* (those
//    events always execute on the core's owning shard).
//
// This matches the engine's host-parallel determinism contract: fault
// outcomes depend on the config and the shard count, never on host
// threads, and a 1-shard parallel run draws bit-identically to the
// sequential engine.
#pragma once

#include <cstdint>
#include <vector>

#include "core/phase_annotations.h"
#include "core/vtime.h"
#include "fault/fault_plan.h"
#include "net/network.h"

namespace simany::fault {

/// Outcome of the interconnect fault pass over one posted message.
struct MsgFaults {
  Tick arrival = 0;              // final (post-fault) arrival tick
  std::uint32_t retries = 0;     // lost attempts masked by retransmission
  std::uint32_t duplicates = 0;  // spurious copies booked on the wire
  Tick delay = 0;                // injected jitter beyond modeled timing
  bool reordered = false;        // arrival overtook a delayed message
};

class FaultInjector {
 public:
  /// Resolves the dead-core set. `num_cores` must match the engine's
  /// topology; the plan must already be validated.
  FaultInjector(const FaultPlan& plan, std::uint32_t num_cores);

  /// Sizes per-lane message-draw streams; called once per run from
  /// Engine::host_setup after the shard count is known.
  SIMANY_SERIAL_ONLY void bind_shards(std::uint32_t num_shards);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] bool core_dead(net::CoreId c) const noexcept {
    return dead_flags_[c] != 0;
  }
  /// Plan-wedged core: the first task to run on it spins forever
  /// without advancing virtual time (guard watchdog test vector).
  [[nodiscard]] bool core_wedged(net::CoreId c) const noexcept {
    return wedge_flags_[c] != 0;
  }
  [[nodiscard]] const std::vector<net::CoreId>& dead() const noexcept {
    return dead_;
  }

  /// Applies message faults for one send: books every lost attempt and
  /// duplicate on `lane` (they occupy real links), then books the
  /// surviving transmission and returns its perturbed arrival. Local
  /// sends (src == dst) are never faulted. Throws SimError with fault
  /// context when retry_limit attempts were all lost.
  SIMANY_SHARD_AFFINE
  MsgFaults on_message(const net::Network& net, net::Network::Lane& lane,
                       std::uint32_t lane_id, net::CoreId src,
                       net::CoreId dst, std::uint32_t bytes, Tick sent);

  /// Transient-stall draw at a task start on core `c`: the stall
  /// length in ticks, or 0.
  [[nodiscard]] Tick draw_task_stall(net::CoreId c);

  /// Spawn-failure draw when core `c` handles a probe: true => deny.
  [[nodiscard]] bool draw_spawn_denial(net::CoreId c);

  /// Memory-latency-spike draw for one access on core `c`: the extra
  /// cost in ticks, or 0.
  [[nodiscard]] Tick draw_mem_spike(net::CoreId c);

  /// Digest of every draw-stream cursor (src/snapshot): two injectors
  /// agree iff each lane and core stream has consumed the same number
  /// of draws — the injector's entire mutable state, since decisions
  /// are stateless hashes over (seed, kind, stream, counter).
  [[nodiscard]] std::uint64_t state_digest() const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffu;
        h *= 1099511628211ULL;
      }
    };
    for (const LaneState& l : lanes_) {
      mix(l.msg_seq);
      mix(l.max_faulted_arrival);
    }
    for (const CoreState& c : cores_) {
      mix(c.task_seq);
      mix(c.probe_seq);
      mix(c.mem_seq);
    }
    return h;
  }

 private:
  /// Stateless draw: uniform u64 from (seed, kind, stream, counter).
  [[nodiscard]] std::uint64_t draw(FaultKind kind, std::uint64_t stream,
                                   std::uint64_t counter,
                                   std::uint64_t salt) const noexcept;
  /// The draw as a uniform double in [0, 1).
  [[nodiscard]] double unit(FaultKind kind, std::uint64_t stream,
                            std::uint64_t counter,
                            std::uint64_t salt) const noexcept;

  FaultPlan plan_;
  std::vector<std::uint8_t> dead_flags_;
  std::vector<std::uint8_t> wedge_flags_;
  std::vector<net::CoreId> dead_;

  /// Per-shard-lane message stream; touched only by the owning host
  /// thread (same ownership discipline as net::Network::Lane).
  struct LaneState {
    std::uint64_t msg_seq = 0;
    /// Latest arrival among *faulted* sends; an unfaulted send landing
    /// before it has provably overtaken a perturbed message.
    Tick max_faulted_arrival = 0;
  };
  std::vector<LaneState> lanes_;

  /// Per-core streams for events that always run on the owning shard.
  struct CoreState {
    std::uint64_t task_seq = 0;
    std::uint64_t probe_seq = 0;
    std::uint64_t mem_seq = 0;
  };
  std::vector<CoreState> cores_;
};

}  // namespace simany::fault
