#include "timing/cost_model.h"

namespace simany::timing {

Cycles CostModel::block_cost(const InstMix& mix, Rng& rng) const {
  Cycles total = 0;
  total += table_.of(InstClass::kIntAlu) * mix.int_alu;
  total += table_.of(InstClass::kIntMul) * mix.int_mul;
  total += table_.of(InstClass::kFpAlu) * mix.fp_alu;
  total += table_.of(InstClass::kFpMulDiv) * mix.fp_mul_div;
  total += table_.of(InstClass::kBranchUncond) * mix.branches_static;
  total += table_.of(InstClass::kBranch) * mix.branches;

  // Resolving branches individually keeps the variance of real
  // predictors; with many branches this converges to the expectation.
  // For large counts we draw a binomial sample cheaply via the normal
  // approximation threshold: below it, loop; above it, expectation.
  constexpr std::uint32_t kExactThreshold = 64;
  if (mix.branches > 0) {
    std::uint32_t missed = 0;
    if (mix.branches <= kExactThreshold) {
      for (std::uint32_t i = 0; i < mix.branches; ++i) {
        if (!rng.chance(branches_.predict_rate)) ++missed;
      }
    } else {
      const double expected =
          (1.0 - branches_.predict_rate) * mix.branches;
      // Deterministic rounding with a random dither keeps the long-run
      // average exact without per-branch draws.
      missed = static_cast<std::uint32_t>(expected);
      if (rng.uniform() < expected - missed) ++missed;
    }
    total += branches_.mispredict_penalty * missed;
  }
  return total;
}

double CostModel::expected_block_cost(const InstMix& mix) const {
  double total = 0;
  total += double(table_.of(InstClass::kIntAlu)) * mix.int_alu;
  total += double(table_.of(InstClass::kIntMul)) * mix.int_mul;
  total += double(table_.of(InstClass::kFpAlu)) * mix.fp_alu;
  total += double(table_.of(InstClass::kFpMulDiv)) * mix.fp_mul_div;
  total += double(table_.of(InstClass::kBranchUncond)) * mix.branches_static;
  total += double(table_.of(InstClass::kBranch)) * mix.branches;
  total += (1.0 - branches_.predict_rate) *
           double(branches_.mispredict_penalty) * mix.branches;
  return total;
}

}  // namespace simany::timing
