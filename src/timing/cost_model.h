// Instruction-class cost model used for timing annotations.
//
// SiMany does not emulate the ISA: sequential blocks run natively and
// their virtual-time cost comes from annotations. The paper (SS III/V)
// groups instructions into classes — unconditional branches, conditional
// branches, common integer arithmetic, integer multiply, simple FP
// arithmetic, and FP multiply/divide — each with a single fixed cost,
// on a scalar 5-stage PowerPC-405-like pipeline. Conditional branches go
// through a probabilistic predictor (90 % success, 5-cycle penalty on a
// 5-deep pipeline); statically predictable branches instead fold a fixed
// penalty into the annotation.
#pragma once

#include <array>
#include <cstdint>

#include "core/rng.h"
#include "core/vtime.h"

namespace simany::timing {

enum class InstClass : std::uint8_t {
  kIntAlu = 0,    // common integer arithmetic / logic
  kIntMul,        // integer multiply (and divide)
  kFpAlu,         // simple floating-point arithmetic (add/sub/cmp)
  kFpMulDiv,      // floating-point multiply and divide
  kBranch,        // conditional branch (predictor applies)
  kBranchUncond,  // unconditional branch / statically known
  kCount
};

inline constexpr std::size_t kNumInstClasses =
    static_cast<std::size_t>(InstClass::kCount);

/// Per-class base costs in cycles. Defaults follow a scalar in-order
/// 5-stage pipeline with multi-cycle multiply and (soft-)FP units.
struct CostTable {
  std::array<Cycles, kNumInstClasses> cost{
      /*kIntAlu=*/1,
      /*kIntMul=*/4,
      /*kFpAlu=*/6,
      /*kFpMulDiv=*/18,
      /*kBranch=*/1,
      /*kBranchUncond=*/1,
  };

  [[nodiscard]] Cycles of(InstClass c) const noexcept {
    return cost[static_cast<std::size_t>(c)];
  }
  Cycles& of(InstClass c) noexcept {
    return cost[static_cast<std::size_t>(c)];
  }
};

/// Instruction counts for one annotated block. Benchmarks build these
/// where a profile run would have placed static annotations.
struct InstMix {
  std::uint32_t int_alu = 0;
  std::uint32_t int_mul = 0;
  std::uint32_t fp_alu = 0;
  std::uint32_t fp_mul_div = 0;
  std::uint32_t branches = 0;         // dynamically predicted
  std::uint32_t branches_static = 0;  // outcome known at compile time

  [[nodiscard]] InstMix operator*(std::uint32_t n) const noexcept {
    return InstMix{int_alu * n,  int_mul * n,  fp_alu * n,
                   fp_mul_div * n, branches * n, branches_static * n};
  }
  InstMix& operator+=(const InstMix& o) noexcept {
    int_alu += o.int_alu;
    int_mul += o.int_mul;
    fp_alu += o.fp_alu;
    fp_mul_div += o.fp_mul_div;
    branches += o.branches;
    branches_static += o.branches_static;
    return *this;
  }
};

struct BranchModel {
  /// Probability a dynamically predicted branch is correct.
  double predict_rate = 0.9;
  /// Pipeline flush cost on a misprediction (5-deep pipeline).
  Cycles mispredict_penalty = 5;
  /// Penalty folded in for statically mispredicted constructs
  /// (paper: "a 5-cycle penalty is applied to the mispredicted branch").
  Cycles static_mispredict_penalty = 5;
};

/// Full cost model: class table + branch behaviour. Branch outcomes draw
/// from the caller-supplied per-core RNG stream, keeping runs
/// reproducible per core.
class CostModel {
 public:
  CostModel() = default;
  CostModel(CostTable table, BranchModel branches) noexcept
      : table_(table), branches_(branches) {}

  /// Cycle cost of a block. Dynamically predicted branches are resolved
  /// one by one against `rng` (expected penalty = (1-p) * flush).
  [[nodiscard]] Cycles block_cost(const InstMix& mix, Rng& rng) const;

  /// Deterministic expected-value cost (no RNG), used by the
  /// cycle-level baseline and by tests.
  [[nodiscard]] double expected_block_cost(const InstMix& mix) const;

  [[nodiscard]] const CostTable& table() const noexcept { return table_; }
  [[nodiscard]] const BranchModel& branch_model() const noexcept {
    return branches_;
  }
  CostTable& table() noexcept { return table_; }
  BranchModel& branch_model() noexcept { return branches_; }

 private:
  CostTable table_;
  BranchModel branches_;
};

}  // namespace simany::timing
