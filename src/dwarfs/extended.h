// Extension dwarfs beyond the paper's six benchmarks — additional
// Berkeley-dwarf classes that exercise API corners the originals do
// not: dense linear algebra (compute-bound regularity), structured
// grids (iterative bulk-synchronous halo exchange), and MapReduce-style
// reduction (global lock contention). They appear in their own
// registry and bench, never in the paper-figure harnesses.
#pragma once

#include <cstdint>

#include "dwarfs/dwarfs.h"

namespace simany::dwarfs {

/// C = A x B over n x n doubles, recursive row-band tasks.
[[nodiscard]] TaskFn make_matmul(std::uint64_t seed, std::uint32_t n);

/// Jacobi 4-point stencil on an n x n grid for `iters` sweeps; row
/// bands synchronize per sweep through a task group, halo rows are
/// exchanged through cells on the distributed architecture.
[[nodiscard]] TaskFn make_stencil(std::uint64_t seed, std::uint32_t n,
                                  std::uint32_t iters);

/// Histogram of `n` samples into `bins` globally shared buckets
/// guarded by locks — a reduction with tunable contention.
[[nodiscard]] TaskFn make_histogram(std::uint64_t seed, std::size_t n,
                                    std::uint32_t bins);

/// Registry of the extension dwarfs (same shape as all_dwarfs()).
[[nodiscard]] const std::vector<DwarfSpec>& extended_dwarfs();

}  // namespace simany::dwarfs
