// Sparse matrix-vector multiply (paper SS V).
//
// Row-oriented (Harwell-Boeing-like CSR) matrix; recursively split
// row-range tasks. On the distributed architecture the rows a task is
// responsible for travel with the spawn message (the vector x is
// assumed broadcast), which matches the paper's observation that
// SpMxV causes little data movement and no cell contention.

#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "dwarfs/dwarfs.h"
#include "core/task_ctx.h"
#include "dwarfs/workloads.h"
#include "runtime/data.h"

namespace simany::dwarfs {

namespace {

constexpr std::uint32_t kRowGrain = 8;

// Per-nonzero: one multiply, one add, index arithmetic.
const timing::InstMix kNnzMix{.int_alu = 2, .fp_alu = 1, .fp_mul_div = 1,
                              .branches = 1};
// Per-row loop overhead.
const timing::InstMix kRowMix{.int_alu = 4, .branches = 1};

struct SpState {
  Csr a;
  std::vector<double> x;
  std::vector<double> y;
  GroupId group = kInvalidGroup;
  // Simulated addresses of the CSR arrays and vectors.
  std::uint64_t col_base = 0, val_base = 0, x_base = 0, y_base = 0;
};

[[nodiscard]] std::uint32_t range_bytes(const SpState& st, std::uint32_t r0,
                                        std::uint32_t r1) {
  const std::uint32_t nnz = st.a.row_ptr[r1] - st.a.row_ptr[r0];
  return nnz * 12 + (r1 - r0) * 4 + 16;
}

void sp_range_task(TaskCtx& ctx, const std::shared_ptr<SpState>& st,
                   std::uint32_t r0, std::uint32_t r1) {
  ctx.function_boundary();
  const bool distributed =
      ctx.memory_model() == mem::MemoryModel::kDistributed;
  while (r1 - r0 > kRowGrain) {
    const std::uint32_t mid = r0 + (r1 - r0) / 2;
    const std::uint32_t l = mid;
    const std::uint32_t r = r1;
    // Distributed: the spawned task's rows ship with the message.
    const std::uint32_t bytes =
        distributed ? range_bytes(*st, l, r) : 16;
    spawn_or_run(
        ctx, st->group,
        [st, l, r](TaskCtx& c) { sp_range_task(c, st, l, r); }, bytes);
    r1 = mid;
  }
  for (std::uint32_t row = r0; row < r1; ++row) {
    const std::uint32_t k0 = st->a.row_ptr[row];
    const std::uint32_t k1 = st->a.row_ptr[row + 1];
    const std::uint32_t nnz = k1 - k0;
    ctx.compute(kRowMix);
    // Stream the row's column indices and values.
    if (nnz > 0) {
      ctx.mem_read(st->col_base + k0 * 4, nnz * 4);
      ctx.mem_read(st->val_base + k0 * 8, nnz * 8);
    }
    double acc = 0;
    for (std::uint32_t k = k0; k < k1; ++k) {
      // Gather from x: irregular access pattern.
      ctx.mem_read(st->x_base + st->a.col_idx[k] * 8, 8);
      acc += st->a.values[k] * st->x[st->a.col_idx[k]];
    }
    ctx.compute(kNnzMix * nnz);
    st->y[row] = acc;
    ctx.mem_write(st->y_base + row * 8, 8);
  }
}

}  // namespace

TaskFn make_spmxv(std::uint64_t seed, std::uint32_t n,
                  std::uint32_t nnz_per_row) {
  return [seed, n, nnz_per_row](TaskCtx& ctx) {
    auto st = std::make_shared<SpState>();
    st->a = gen_csr(seed, n, nnz_per_row);
    st->x = gen_dense_vector(seed + 1, n);
    st->y.assign(n, 0.0);
    st->col_base = runtime::synth_alloc(st->a.col_idx.size() * 4);
    st->val_base = runtime::synth_alloc(st->a.values.size() * 8);
    st->x_base = runtime::synth_alloc(n * 8);
    st->y_base = runtime::synth_alloc(n * 8);
    st->group = ctx.make_group();
    if (n > 0) sp_range_task(ctx, st, 0, n);
    ctx.join(st->group);
    const auto expected = ref_spmxv(st->a, st->x);
    if (st->y != expected) {
      throw std::runtime_error("spmxv: wrong result");
    }
  };
}

}  // namespace simany::dwarfs
