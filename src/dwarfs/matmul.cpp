// Dense matrix multiply (extension dwarf — Berkeley "dense linear
// algebra" class, not part of the paper's six benchmarks).
//
// C = A x B over n x n doubles with recursive row-band splitting.
// Compute-bound and perfectly regular: the best-case scalability
// reference for the task runtime. B is treated as broadcast on the
// distributed architecture (like the SpMxV vector); the bands of A
// travel with their tasks.

#include <memory>
#include <stdexcept>
#include <vector>

#include "dwarfs/extended.h"
#include "core/task_ctx.h"
#include "runtime/data.h"

namespace simany::dwarfs {

namespace {

constexpr std::uint32_t kRowGrain = 4;

// Inner-product step: one multiply-add plus index arithmetic.
const timing::InstMix kMacMix{.int_alu = 1, .fp_alu = 1, .fp_mul_div = 1};
const timing::InstMix kRowLoopMix{.int_alu = 3, .branches = 1};

struct MmState {
  std::uint32_t n = 0;
  std::vector<double> a, b, c;
  std::uint64_t a_base = 0, b_base = 0, c_base = 0;
  GroupId group = kInvalidGroup;
};

void mm_band_task(TaskCtx& ctx, const std::shared_ptr<MmState>& st,
                  std::uint32_t r0, std::uint32_t r1) {
  ctx.function_boundary();
  const bool distributed =
      ctx.memory_model() == mem::MemoryModel::kDistributed;
  const std::uint32_t n = st->n;
  while (r1 - r0 > kRowGrain) {
    const std::uint32_t mid = r0 + (r1 - r0) / 2;
    const std::uint32_t lo = mid;
    const std::uint32_t hi = r1;
    // Distributed: the spawned band's rows of A ship with the task.
    const std::uint32_t bytes =
        distributed ? (hi - lo) * n * 8 + 16 : 16;
    spawn_or_run(
        ctx, st->group,
        [st, lo, hi](TaskCtx& c) { mm_band_task(c, st, lo, hi); }, bytes);
    r1 = mid;
  }
  for (std::uint32_t i = r0; i < r1; ++i) {
    ctx.compute(kRowLoopMix);
    // Stream the A row once; B columns stream per output element.
    ctx.mem_read(st->a_base + std::uint64_t{i} * n * 8, n * 8);
    for (std::uint32_t j = 0; j < n; ++j) {
      ctx.mem_read(st->b_base + std::uint64_t{j} * n * 8, n * 8);
      double acc = 0;
      for (std::uint32_t k = 0; k < n; ++k) {
        acc += st->a[std::size_t{i} * n + k] *
               st->b[std::size_t{j} * n + k];  // B stored transposed
      }
      ctx.compute(kMacMix * n);
      st->c[std::size_t{i} * n + j] = acc;
    }
    ctx.mem_write(st->c_base + std::uint64_t{i} * n * 8, n * 8);
  }
}

}  // namespace

TaskFn make_matmul(std::uint64_t seed, std::uint32_t n) {
  return [seed, n](TaskCtx& ctx) {
    auto st = std::make_shared<MmState>();
    st->n = n;
    Rng rng(seed);
    st->a.resize(std::size_t{n} * n);
    st->b.resize(std::size_t{n} * n);
    st->c.assign(std::size_t{n} * n, 0.0);
    for (auto& v : st->a) v = rng.uniform() - 0.5;
    for (auto& v : st->b) v = rng.uniform() - 0.5;
    st->a_base = runtime::synth_alloc(st->a.size() * 8);
    st->b_base = runtime::synth_alloc(st->b.size() * 8);
    st->c_base = runtime::synth_alloc(st->c.size() * 8);
    st->group = ctx.make_group();
    if (n > 0) mm_band_task(ctx, st, 0, n);
    ctx.join(st->group);
    // Native reference with identical accumulation order.
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        double acc = 0;
        for (std::uint32_t k = 0; k < n; ++k) {
          acc += st->a[std::size_t{i} * n + k] *
                 st->b[std::size_t{j} * n + k];
        }
        if (acc != st->c[std::size_t{i} * n + j]) {
          throw std::runtime_error("matmul: wrong result");
        }
      }
    }
  };
}

}  // namespace simany::dwarfs
