// Jacobi 4-point stencil (extension dwarf — Berkeley "structured
// grids" class).
//
// Iterative bulk-synchronous computation: each sweep partitions the
// grid into row bands, one task per band, joined per iteration — the
// coarse-synchronization pattern the paper's dwarfs avoid (SS V notes
// they deliberately avoided algorithms with frequent global
// synchronization; this extension measures exactly that cost). On the
// distributed architecture each band's boundary rows live in cells:
// neighbors acquire them read-only each sweep (halo exchange).

#include <algorithm>
#include <array>
#include <memory>
#include <stdexcept>
#include <vector>

#include "dwarfs/extended.h"
#include "core/task_ctx.h"
#include "runtime/data.h"

namespace simany::dwarfs {

namespace {

// Per-point: 3 adds, 1 multiply-by-0.25, loads handled separately.
const timing::InstMix kPointMix{.int_alu = 2, .fp_alu = 3, .fp_mul_div = 1,
                                .branches = 1};

struct StState {
  std::uint32_t n = 0;
  std::uint32_t bands = 0;
  std::vector<double> cur, next;
  std::uint64_t cur_base = 0, next_base = 0;
  // Boundary-row cells per band: [band][0] = top row, [band][1] =
  // bottom row (distributed halo exchange).
  std::vector<std::array<CellId, 2>> halo;
  GroupId group = kInvalidGroup;
};

void sweep_band(TaskCtx& ctx, const std::shared_ptr<StState>& st,
                std::uint32_t band, std::uint32_t r0, std::uint32_t r1) {
  ctx.function_boundary();
  const std::uint32_t n = st->n;
  const bool distributed =
      ctx.memory_model() == mem::MemoryModel::kDistributed;
  // Halo exchange: read the neighbor bands' boundary rows.
  if (distributed) {
    if (band > 0) {
      const CellId above = st->halo[band - 1][1];
      CellGuard guard(ctx, above, AccessMode::kRead);
    }
    if (band + 1 < st->bands) {
      const CellId below = st->halo[band + 1][0];
      CellGuard guard(ctx, below, AccessMode::kRead);
    }
  } else {
    if (r0 > 0) ctx.mem_read(st->cur_base + std::uint64_t{r0 - 1} * n * 8, n * 8);
    if (r1 < n) ctx.mem_read(st->cur_base + std::uint64_t{r1} * n * 8, n * 8);
  }
  for (std::uint32_t i = r0; i < r1; ++i) {
    ctx.mem_read(st->cur_base + std::uint64_t{i} * n * 8, n * 8);
    for (std::uint32_t j = 0; j < n; ++j) {
      const auto at = [&](std::uint32_t r, std::uint32_t c) -> double {
        if (r >= n || c >= n) return 0.0;  // fixed zero boundary
        return st->cur[std::size_t{r} * n + c];
      };
      st->next[std::size_t{i} * n + j] =
          0.25 * (at(i - 1, j) + at(i + 1, j) + at(i, j - 1) +
                  at(i, j + 1));
    }
    ctx.compute(kPointMix * n);
    ctx.mem_write(st->next_base + std::uint64_t{i} * n * 8, n * 8);
  }
}

}  // namespace

TaskFn make_stencil(std::uint64_t seed, std::uint32_t n,
                    std::uint32_t iters) {
  return [seed, n, iters](TaskCtx& ctx) {
    auto st = std::make_shared<StState>();
    st->n = n;
    Rng rng(seed);
    st->cur.resize(std::size_t{n} * n);
    st->next.assign(std::size_t{n} * n, 0.0);
    for (auto& v : st->cur) v = rng.uniform();
    const auto reference_start = st->cur;  // for the native reference
    st->cur_base = runtime::synth_alloc(st->cur.size() * 8);
    st->next_base = runtime::synth_alloc(st->next.size() * 8);

    // One band per ~8 rows, at least one.
    st->bands = std::max(1u, n / 8);
    const std::uint32_t band_rows = (n + st->bands - 1) / st->bands;
    st->halo.resize(st->bands);
    for (std::uint32_t b = 0; b < st->bands; ++b) {
      const CoreId home = b % ctx.num_cores();
      st->halo[b][0] = ctx.make_cell_at(n * 8, home);
      st->halo[b][1] = ctx.make_cell_at(n * 8, home);
    }

    for (std::uint32_t it = 0; it < iters; ++it) {
      st->group = ctx.make_group();
      for (std::uint32_t b = 0; b < st->bands; ++b) {
        const std::uint32_t r0 = b * band_rows;
        const std::uint32_t r1 = std::min(n, r0 + band_rows);
        if (r0 >= r1) continue;
        spawn_or_run(
            ctx, st->group,
            [st, b, r0, r1](TaskCtx& c) { sweep_band(c, st, b, r0, r1); },
            /*arg_bytes=*/24);
      }
      ctx.join(st->group);  // bulk-synchronous step
      std::swap(st->cur, st->next);
      std::swap(st->cur_base, st->next_base);
    }

    // Native reference: identical sweeps from the recorded start.
    std::vector<double> ref = reference_start;
    std::vector<double> tmp(ref.size());
    for (std::uint32_t it = 0; it < iters; ++it) {
      for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = 0; j < n; ++j) {
          const auto at = [&](std::uint32_t r, std::uint32_t c) -> double {
            if (r >= n || c >= n) return 0.0;
            return ref[std::size_t{r} * n + c];
          };
          tmp[std::size_t{i} * n + j] =
              0.25 * (at(i - 1, j) + at(i + 1, j) + at(i, j - 1) +
                      at(i, j + 1));
        }
      }
      std::swap(ref, tmp);
    }
    if (ref != st->cur) {
      throw std::runtime_error("stencil: wrong result");
    }
  };
}

}  // namespace simany::dwarfs
