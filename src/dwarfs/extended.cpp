#include "dwarfs/extended.h"

#include <algorithm>
#include <cmath>

namespace simany::dwarfs {

const std::vector<DwarfSpec>& extended_dwarfs() {
  static const std::vector<DwarfSpec> specs = [] {
    std::vector<DwarfSpec> v;
    v.push_back(DwarfSpec{
        "matmul",
        [](std::uint64_t seed, double f) {
          // factor 1.0 -> 192x192 (~14M flops), floor 24.
          const auto n = static_cast<std::uint32_t>(std::max(
              24.0, std::round(192.0 * std::sqrt(std::max(f, 1e-6)))));
          return make_matmul(seed, n);
        }});
    v.push_back(DwarfSpec{
        "stencil",
        [](std::uint64_t seed, double f) {
          const auto n = static_cast<std::uint32_t>(std::max(
              24.0, std::round(256.0 * std::sqrt(std::max(f, 1e-6)))));
          return make_stencil(seed, n, /*iters=*/4);
        }});
    v.push_back(DwarfSpec{
        "histogram",
        [](std::uint64_t seed, double f) {
          const auto n = static_cast<std::size_t>(
              std::max(2048.0, std::round(200000.0 * f)));
          return make_histogram(seed, n, /*bins=*/64);
        }});
    return v;
  }();
  return specs;
}

}  // namespace simany::dwarfs
