// Octree update traversal (paper SS V): updates every object in a
// depth-6 octree, as in game or graphics scene-graph passes. Almost no
// data sharing between subtrees, so it exposes pure task-distribution
// behaviour.

#include <atomic>
#include <memory>
#include <stdexcept>

#include "dwarfs/dwarfs.h"
#include "core/task_ctx.h"
#include "dwarfs/workloads.h"
#include "runtime/data.h"

namespace simany::dwarfs {

namespace {

// Per-node object update: a small transform.
const timing::InstMix kNodeUpdateMix{.int_alu = 4, .fp_alu = 8,
                                     .fp_mul_div = 2, .branches = 2};

struct OcState {
  PlainOctree tree;
  // Host-side verification counter; atomic because tasks on different
  // shards finish concurrently under the parallel host.
  std::atomic<std::uint64_t> visited{0};
  GroupId group = kInvalidGroup;
  std::uint64_t tree_base = 0;  // simulated address of nodes[]
};

void oc_task(TaskCtx& ctx, const std::shared_ptr<OcState>& st,
             std::int32_t node) {
  ctx.function_boundary();
  auto& n = st->tree.nodes[static_cast<std::size_t>(node)];
  const std::uint64_t node_addr =
      st->tree_base +
      static_cast<std::uint64_t>(node) * sizeof(PlainOctree::Node);
  ctx.mem_read(node_addr, 40);
  ctx.compute(kNodeUpdateMix);
  n.payload += 1.0;
  st->visited.fetch_add(1, std::memory_order_relaxed);
  ctx.mem_write(node_addr + 32, 8);
  for (std::int32_t ch : n.child) {
    if (ch < 0) continue;
    spawn_or_run(
        ctx, st->group,
        [st, ch](TaskCtx& c) { oc_task(c, st, ch); },
        /*arg_bytes=*/16);
  }
}

}  // namespace

TaskFn make_octree_update(std::uint64_t seed, std::uint32_t depth,
                          double branch_p) {
  return [seed, depth, branch_p](TaskCtx& ctx) {
    auto st = std::make_shared<OcState>();
    st->tree = gen_octree(seed, depth, branch_p);
    st->tree_base = runtime::synth_alloc(st->tree.nodes.size() *
                                         sizeof(PlainOctree::Node));
    std::vector<double> before;
    before.reserve(st->tree.nodes.size());
    for (const auto& n : st->tree.nodes) before.push_back(n.payload);
    st->group = ctx.make_group();
    oc_task(ctx, st, 0);
    ctx.join(st->group);
    if (st->visited.load() != st->tree.nodes.size()) {
      throw std::runtime_error("octree: node visit count mismatch");
    }
    for (std::size_t i = 0; i < before.size(); ++i) {
      if (st->tree.nodes[i].payload != before[i] + 1.0) {
        throw std::runtime_error("octree: payload not updated");
      }
    }
  };
}

}  // namespace simany::dwarfs
