// Deterministic synthetic workload generators for the dwarf benchmarks.
//
// The paper uses 50 random arrays/lists of 100k elements (Quicksort),
// 50 random graphs of 1000 nodes / 2000 edges (Connected Components),
// 50 graphs of 2000 nodes / ~3000 edges (Dijkstra), 128/200-body sets
// (Barnes-Hut), Matrix-Market + random sparse matrices (SpMxV) and 50
// random depth-6 octrees (Octree). Everything here reproduces those
// shapes from a seed; the Matrix-Market collection is replaced by
// synthetic banded+random patterns (see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rng.h"

namespace simany::dwarfs {

// ---- Arrays / lists --------------------------------------------------

[[nodiscard]] std::vector<std::int64_t> gen_array(std::uint64_t seed,
                                                  std::size_t n);

// ---- Graphs ------------------------------------------------------------

struct Graph {
  std::uint32_t n = 0;
  /// adj[u] = list of (v, weight); undirected edges appear twice.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> adj;

  [[nodiscard]] std::size_t num_edges_directed() const {
    std::size_t m = 0;
    for (const auto& a : adj) m += a.size();
    return m;
  }
};

/// Random undirected multigraph-free graph with `n` nodes and about
/// `m` undirected edges, weights in [1, max_weight].
[[nodiscard]] Graph gen_graph(std::uint64_t seed, std::uint32_t n,
                              std::uint32_t m,
                              std::uint32_t max_weight = 16);

// ---- N-body -------------------------------------------------------------

struct Body {
  double x = 0, y = 0, z = 0;
  double mass = 1.0;
};

[[nodiscard]] std::vector<Body> gen_bodies(std::uint64_t seed,
                                           std::size_t n);

/// Linearized octree over the bodies' bounding cube. `node[i]` children
/// are indices into the same vector; leaves reference a body.
struct Octree {
  struct Node {
    double cx = 0, cy = 0, cz = 0;  // center of mass
    double mass = 0;
    double half = 0;                // half-width of this cube
    std::int32_t child[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    std::int32_t body = -1;         // leaf: index into bodies
  };
  std::vector<Node> nodes;
  [[nodiscard]] bool empty() const noexcept { return nodes.empty(); }
};

/// Builds the Barnes-Hut octree (this phase is untimed, per paper SS V).
[[nodiscard]] Octree build_octree(const std::vector<Body>& bodies);

/// A standalone random octree of the given depth for the Octree-update
/// dwarf: children exist with probability `branch_p` below the root.
struct PlainOctree {
  struct Node {
    std::int32_t child[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    double payload = 0;
  };
  std::vector<Node> nodes;  // node 0 is the root
};

[[nodiscard]] PlainOctree gen_octree(std::uint64_t seed,
                                     std::uint32_t depth,
                                     double branch_p = 0.55);

// ---- Sparse matrices -----------------------------------------------------

/// Compressed sparse row matrix with values.
struct Csr {
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::vector<std::uint32_t> row_ptr;  // rows + 1
  std::vector<std::uint32_t> col_idx;
  std::vector<double> values;
  [[nodiscard]] std::size_t nnz() const noexcept { return col_idx.size(); }
};

/// Random square CSR matrix with ~`nnz_per_row` nonzeros per row, mixing
/// a diagonal band (Matrix-Market-like structure) with random fill.
[[nodiscard]] Csr gen_csr(std::uint64_t seed, std::uint32_t n,
                          std::uint32_t nnz_per_row);

[[nodiscard]] std::vector<double> gen_dense_vector(std::uint64_t seed,
                                                   std::size_t n);

// ---- Native reference algorithms (for result verification) --------------

/// Component label (minimum node id in the component) for each node.
[[nodiscard]] std::vector<std::uint32_t> ref_components(const Graph& g);

/// Single-source shortest distances from node 0 (UINT64_MAX = absent).
[[nodiscard]] std::vector<std::uint64_t> ref_dijkstra(const Graph& g);

/// y = A * x.
[[nodiscard]] std::vector<double> ref_spmxv(const Csr& a,
                                            const std::vector<double>& x);

}  // namespace simany::dwarfs
