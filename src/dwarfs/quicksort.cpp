// Parallel Quicksort, both paper variants (SS V).
//
// Shared memory: works on an array in place; after each pivot step a
// new task is spawned for one sub-array while the current task keeps
// the other. Distributed memory: works on lists to avoid shipping
// whole sub-arrays; each pivot step partitions its list into three
// (less / equal / greater) and sends the "less" list to a spawned
// task — the pivots implicitly form a binary search tree whose in-order
// run concatenation is the sorted output.

#include <algorithm>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "dwarfs/dwarfs.h"
#include "core/phase_annotations.h"
#include "core/task_ctx.h"
#include "dwarfs/workloads.h"
#include "runtime/data.h"

namespace simany::dwarfs {

namespace {

constexpr std::size_t kSeqCutoff = 64;

// Per-element partition work: two compares + index bookkeeping.
const timing::InstMix kPartitionPerElem{.int_alu = 3, .branches = 1};
// Per-element x log(cutoff) small-sort work.
const timing::InstMix kSmallSortPerStep{.int_alu = 4, .branches = 1};
// Pivot selection (median of three).
const timing::InstMix kPivotMix{.int_alu = 6, .branches = 3};

[[nodiscard]] std::int64_t median3(std::int64_t a, std::int64_t b,
                                   std::int64_t c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

// ---- Shared-memory variant -------------------------------------------

struct QsShared {
  runtime::OwnedVector<std::int64_t> arr;
  GroupId group = kInvalidGroup;
};

void qs_small_sort(TaskCtx& ctx, const std::shared_ptr<QsShared>& st,
                   std::size_t lo, std::size_t hi) {
  const std::size_t len = hi - lo;
  if (len == 0) return;
  st->arr.read_range(ctx, lo, len);
  // ~len * log2(len) comparison steps.
  std::size_t steps = len;
  for (std::size_t l = len; l > 1; l >>= 1) steps += len;
  ctx.compute(kSmallSortPerStep * static_cast<std::uint32_t>(steps));
  auto& v = st->arr.raw();
  std::sort(v.begin() + static_cast<std::ptrdiff_t>(lo),
            v.begin() + static_cast<std::ptrdiff_t>(hi));
  st->arr.write_range(ctx, lo, len);
}

void qs_task(TaskCtx& ctx, std::shared_ptr<QsShared> st, std::size_t lo,
             std::size_t hi) {
  ctx.function_boundary();
  while (hi - lo > kSeqCutoff) {
    auto& v = st->arr.raw();
    const std::size_t len = hi - lo;
    const std::int64_t pivot =
        median3(v[lo], v[lo + len / 2], v[hi - 1]);
    ctx.compute(kPivotMix);
    st->arr.read_range(ctx, lo, len);
    ctx.compute(kPartitionPerElem * static_cast<std::uint32_t>(len));
    // Three-way partition guarantees progress on duplicate keys.
    const auto base = v.begin();
    const auto m1 =
        std::partition(base + static_cast<std::ptrdiff_t>(lo),
                       base + static_cast<std::ptrdiff_t>(hi),
                       [pivot](std::int64_t x) { return x < pivot; });
    const auto m2 = std::partition(
        m1, base + static_cast<std::ptrdiff_t>(hi),
        [pivot](std::int64_t x) { return x == pivot; });
    st->arr.write_range(ctx, lo, len);
    const auto left_len = static_cast<std::size_t>(m1 - base) - lo;
    const std::size_t right_lo = static_cast<std::size_t>(m2 - base);
    if (left_len > 0) {
      const std::size_t l = lo;
      const std::size_t r = lo + left_len;
      spawn_or_run(
          ctx, st->group,
          [st, l, r](TaskCtx& c) { qs_task(c, st, l, r); },
          /*arg_bytes=*/16);
    }
    lo = right_lo;
  }
  qs_small_sort(ctx, st, lo, hi);
}

// ---- Distributed-memory (list) variant ----------------------------------

struct QsDist {
  GroupId group = kInvalidGroup;
  // Sorted runs produced by leaf tasks. Host-side bookkeeping for
  // verification only; disjoint value ranges by construction. Leaf
  // tasks on different shards finish concurrently under the parallel
  // host, hence the mutex (never touched by the cost model).
  std::mutex mu;
  std::vector<std::vector<std::int64_t>> runs SIMANY_GUARDED_BY(mu);
};

void qd_emit_run(const std::shared_ptr<QsDist>& st,
                 std::vector<std::int64_t> run) {
  if (run.empty()) return;
  std::lock_guard<std::mutex> lk(st->mu);
  st->runs.push_back(std::move(run));
}

void qd_task(TaskCtx& ctx, std::shared_ptr<QsDist> st,
             std::vector<std::int64_t> seg) {
  ctx.function_boundary();
  // This task's list segment in the simulated address space.
  const std::uint64_t seg_base = runtime::synth_alloc(seg.size() * 8);
  while (seg.size() > kSeqCutoff) {
    const std::size_t len = seg.size();
    const std::int64_t pivot =
        median3(seg[0], seg[len / 2], seg[len - 1]);
    ctx.compute(kPivotMix);
    // List traversal: the segment is local to this task (it arrived
    // with the spawn), so these are core-local reads.
    ctx.mem_read(seg_base, static_cast<std::uint32_t>(len * 8));
    ctx.compute(kPartitionPerElem * static_cast<std::uint32_t>(len));
    std::vector<std::int64_t> less, equal, greater;
    for (std::int64_t x : seg) {
      if (x < pivot) {
        less.push_back(x);
      } else if (x == pivot) {
        equal.push_back(x);
      } else {
        greater.push_back(x);
      }
    }
    qd_emit_run(st, std::move(equal));
    if (!less.empty()) {
      // The "less" list travels with the task: transfer cost is the
      // actual list size.
      const auto bytes = static_cast<std::uint32_t>(
          less.size() * sizeof(std::int64_t) + 16);
      spawn_or_run(
          ctx, st->group,
          [st, sub = std::move(less)](TaskCtx& c) mutable {
            qd_task(c, st, std::move(sub));
          },
          bytes);
    }
    seg = std::move(greater);
  }
  if (!seg.empty()) {
    ctx.mem_read(seg_base, static_cast<std::uint32_t>(seg.size() * 8));
    std::size_t steps = seg.size();
    for (std::size_t l = seg.size(); l > 1; l >>= 1) steps += seg.size();
    ctx.compute(kSmallSortPerStep * static_cast<std::uint32_t>(steps));
    std::sort(seg.begin(), seg.end());
    qd_emit_run(st, std::move(seg));
  }
}

}  // namespace

TaskFn make_quicksort_shared(std::uint64_t seed, std::size_t n) {
  return [seed, n](TaskCtx& ctx) {
    auto data = gen_array(seed, n);
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    auto st = std::make_shared<QsShared>();
    st->arr = runtime::OwnedVector<std::int64_t>(std::move(data));
    st->group = ctx.make_group();
    qs_task(ctx, st, 0, n);
    ctx.join(st->group);
    if (st->arr.raw() != expected) {
      throw std::runtime_error("quicksort (shared): wrong result");
    }
  };
}

TaskFn make_quicksort_distributed(std::uint64_t seed, std::size_t n) {
  return [seed, n](TaskCtx& ctx) {
    auto data = gen_array(seed, n);
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    auto st = std::make_shared<QsDist>();
    st->group = ctx.make_group();
    qd_task(ctx, st, std::move(data));
    ctx.join(st->group);
    // In-order BST concatenation: runs have disjoint value ranges, so
    // ordering them by first element reconstructs the sorted list.
    std::sort(st->runs.begin(), st->runs.end(),
              [](const auto& a, const auto& b) { return a[0] < b[0]; });
    std::vector<std::int64_t> result;
    result.reserve(n);
    for (const auto& run : st->runs) {
      result.insert(result.end(), run.begin(), run.end());
    }
    if (result != expected) {
      throw std::runtime_error("quicksort (distributed): wrong result");
    }
  };
}

TaskFn make_quicksort(std::uint64_t seed, std::size_t n) {
  return [seed, n](TaskCtx& ctx) {
    if (ctx.memory_model() == mem::MemoryModel::kDistributed) {
      make_quicksort_distributed(seed, n)(ctx);
    } else {
      make_quicksort_shared(seed, n)(ctx);
    }
  };
}

}  // namespace simany::dwarfs
