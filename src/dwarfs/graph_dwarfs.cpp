// Connected Components and Dijkstra (paper SS V).
//
// Both are speculative graph explorations with contended per-node
// state: Connected Components launches depth-first label propagation
// from every node in parallel (min node id wins); Dijkstra propagates
// tentative distances, re-exploring paths when a shorter distance
// arrives (the Capsule-style algorithm of [29]). Per-node state lives
// in run-time cells, so contention surfaces as lock serialization on
// the shared architecture and as data movement on the distributed one.

#include <limits>
#include <memory>
#include <stdexcept>

#include "dwarfs/dwarfs.h"
#include "core/task_ctx.h"
#include "dwarfs/workloads.h"
#include "runtime/data.h"

namespace simany::dwarfs {

namespace {

// Tag/distance comparison and update inside the critical section.
const timing::InstMix kUpdateMix{.int_alu = 4, .branches = 1};
// Per-edge traversal bookkeeping.
const timing::InstMix kEdgeMix{.int_alu = 5, .branches = 1};

struct CcState {
  Graph g;
  std::vector<std::uint32_t> tag;
  std::unique_ptr<runtime::CellArray> cells;
  GroupId group = kInvalidGroup;
  // Flat adjacency layout in the simulated address space.
  std::uint64_t adj_base = 0;
  std::vector<std::uint32_t> eoff;  // per-node first-edge index
};

/// Builds the simulated-address layout of a graph's adjacency lists.
template <class State>
void layout_graph(State& st) {
  st.eoff.assign(st.g.n + 1, 0);
  for (std::uint32_t u = 0; u < st.g.n; ++u) {
    st.eoff[u + 1] = st.eoff[u] +
                     static_cast<std::uint32_t>(st.g.adj[u].size());
  }
  st.adj_base = runtime::synth_alloc(std::uint64_t{st.eoff[st.g.n]} * 8);
}

void cc_visit(TaskCtx& ctx, const std::shared_ptr<CcState>& st,
              std::uint32_t node, std::uint32_t label) {
  ctx.function_boundary();
  ctx.cell_acquire(st->cells->cell(node), AccessMode::kWrite);
  ctx.compute(kUpdateMix);
  const bool improved = label < st->tag[node];
  if (improved) st->tag[node] = label;
  ctx.cell_release(st->cells->cell(node));
  if (!improved) return;
  const auto& edges = st->g.adj[node];
  for (std::size_t k = 0; k < edges.size(); ++k) {
    ctx.mem_read(st->adj_base + (st->eoff[node] + k) * 8, 8);
    ctx.compute(kEdgeMix);
    const std::uint32_t next = edges[k].first;
    spawn_or_run(
        ctx, st->group,
        [st, next, label](TaskCtx& c) { cc_visit(c, st, next, label); },
        /*arg_bytes=*/16);
  }
}

struct DjState {
  Graph g;
  std::vector<std::uint64_t> dist;
  std::unique_ptr<runtime::CellArray> cells;
  GroupId group = kInvalidGroup;
  std::uint64_t adj_base = 0;
  std::vector<std::uint32_t> eoff;
};

void dj_visit(TaskCtx& ctx, const std::shared_ptr<DjState>& st,
              std::uint32_t node, std::uint64_t d) {
  ctx.function_boundary();
  ctx.cell_acquire(st->cells->cell(node), AccessMode::kWrite);
  ctx.compute(kUpdateMix);
  const bool improved = d < st->dist[node];
  if (improved) st->dist[node] = d;
  ctx.cell_release(st->cells->cell(node));
  if (!improved) return;
  const auto& edges = st->g.adj[node];
  for (std::size_t k = 0; k < edges.size(); ++k) {
    ctx.mem_read(st->adj_base + (st->eoff[node] + k) * 8, 8);
    ctx.compute(kEdgeMix);
    const std::uint32_t next = edges[k].first;
    const std::uint64_t nd = d + edges[k].second;
    spawn_or_run(
        ctx, st->group,
        [st, next, nd](TaskCtx& c) { dj_visit(c, st, next, nd); },
        /*arg_bytes=*/24);
  }
}

}  // namespace

TaskFn make_connected_components(std::uint64_t seed, std::uint32_t nodes,
                                 std::uint32_t edges) {
  return [seed, nodes, edges](TaskCtx& ctx) {
    auto st = std::make_shared<CcState>();
    st->g = gen_graph(seed, nodes, edges);
    layout_graph(*st);
    st->tag.assign(nodes, std::numeric_limits<std::uint32_t>::max());
    st->cells = std::make_unique<runtime::CellArray>(ctx, nodes, 8);
    st->group = ctx.make_group();
    // Depth-first searches launched from lots of nodes in parallel.
    for (std::uint32_t i = 0; i < nodes; ++i) {
      const std::uint32_t root = i;
      spawn_or_run(
          ctx, st->group,
          [st, root](TaskCtx& c) { cc_visit(c, st, root, root); },
          /*arg_bytes=*/16);
    }
    ctx.join(st->group);
    const auto expected = ref_components(st->g);
    if (st->tag != expected) {
      throw std::runtime_error("connected components: wrong result");
    }
  };
}

TaskFn make_dijkstra(std::uint64_t seed, std::uint32_t nodes,
                     std::uint32_t edges) {
  return [seed, nodes, edges](TaskCtx& ctx) {
    auto st = std::make_shared<DjState>();
    st->g = gen_graph(seed, nodes, edges);
    layout_graph(*st);
    st->dist.assign(nodes, std::numeric_limits<std::uint64_t>::max());
    st->cells = std::make_unique<runtime::CellArray>(ctx, nodes, 16);
    st->group = ctx.make_group();
    dj_visit(ctx, st, 0, 0);
    ctx.join(st->group);
    const auto expected = ref_dijkstra(st->g);
    if (st->dist != expected) {
      throw std::runtime_error("dijkstra: wrong result");
    }
  };
}

}  // namespace simany::dwarfs
