#include "dwarfs/dwarfs.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace simany::dwarfs {

namespace {

[[nodiscard]] std::size_t scaled(double base, double factor,
                                 std::size_t floor_value) {
  const double v = base * factor;
  return std::max(floor_value, static_cast<std::size_t>(std::llround(v)));
}

std::vector<DwarfSpec> build_all() {
  std::vector<DwarfSpec> v;
  // Paper dataset shapes at factor 1.0 (SS V, "Benchmarks").
  v.push_back(DwarfSpec{
      "barnes-hut",
      [](std::uint64_t seed, double f) {
        return make_barnes_hut(seed, scaled(200, f, 64));
      }});
  v.push_back(DwarfSpec{
      "connected-components",
      [](std::uint64_t seed, double f) {
        const auto n =
            static_cast<std::uint32_t>(scaled(1000, f, 48));
        return make_connected_components(seed, n, 2 * n);
      }});
  v.push_back(DwarfSpec{
      "dijkstra",
      [](std::uint64_t seed, double f) {
        const auto n =
            static_cast<std::uint32_t>(scaled(2000, f, 48));
        return make_dijkstra(seed, n, (3 * n) / 2);
      }});
  v.push_back(DwarfSpec{
      "quicksort",
      [](std::uint64_t seed, double f) {
        return make_quicksort(seed, scaled(100000, f, 256));
      }});
  v.push_back(DwarfSpec{
      "spmxv",
      [](std::uint64_t seed, double f) {
        const auto n =
            static_cast<std::uint32_t>(scaled(4000, f, 64));
        return make_spmxv(seed, n, 16);
      }});
  v.push_back(DwarfSpec{
      "octree",
      [](std::uint64_t seed, double f) {
        // Depth 6 as in the paper; the branching probability scales
        // the node count.
        const double p = 0.3 + 0.25 * std::min(1.0, f);
        return make_octree_update(seed, 6, p);
      }});
  return v;
}

}  // namespace

const std::vector<DwarfSpec>& all_dwarfs() {
  static const std::vector<DwarfSpec> specs = build_all();
  return specs;
}

const std::vector<DwarfSpec>& validation_dwarfs() {
  static const std::vector<DwarfSpec> specs = [] {
    std::vector<DwarfSpec> v;
    for (const auto& s : all_dwarfs()) {
      if (s.name == "barnes-hut" || s.name == "connected-components" ||
          s.name == "quicksort" || s.name == "spmxv") {
        v.push_back(s);
      }
    }
    return v;
  }();
  return specs;
}

const DwarfSpec& dwarf_by_name(const std::string& name) {
  for (const auto& s : all_dwarfs()) {
    if (s.name == name) return s;
  }
  throw std::out_of_range("unknown dwarf: " + name);
}

}  // namespace simany::dwarfs
