#include "dwarfs/workloads.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

namespace simany::dwarfs {

std::vector<std::int64_t> gen_array(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.next() >> 16);
  return v;
}

Graph gen_graph(std::uint64_t seed, std::uint32_t n, std::uint32_t m,
                std::uint32_t max_weight) {
  if (n == 0) throw std::invalid_argument("gen_graph: empty graph");
  Rng rng(seed);
  Graph g;
  g.n = n;
  g.adj.resize(n);
  std::set<std::pair<std::uint32_t, std::uint32_t>> used;
  std::uint32_t placed = 0;
  std::uint32_t attempts = 0;
  const std::uint32_t max_attempts = m * 20 + 100;
  while (placed < m && attempts < max_attempts) {
    ++attempts;
    auto a = static_cast<std::uint32_t>(rng.below(n));
    auto b = static_cast<std::uint32_t>(rng.below(n));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (!used.insert({a, b}).second) continue;
    const auto w =
        static_cast<std::uint32_t>(1 + rng.below(max_weight));
    g.adj[a].emplace_back(b, w);
    g.adj[b].emplace_back(a, w);
    ++placed;
  }
  return g;
}

std::vector<Body> gen_bodies(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Body> bodies(n);
  for (auto& b : bodies) {
    b.x = rng.uniform() * 2.0 - 1.0;
    b.y = rng.uniform() * 2.0 - 1.0;
    b.z = rng.uniform() * 2.0 - 1.0;
    b.mass = 0.5 + rng.uniform();
  }
  return bodies;
}

namespace {

// Recursive octree insertion used by build_octree.
struct OctreeBuilder {
  const std::vector<Body>& bodies;
  Octree tree;

  std::int32_t make_node(double cx, double cy, double cz, double half) {
    Octree::Node n;
    n.cx = cx;
    n.cy = cy;
    n.cz = cz;
    n.half = half;
    tree.nodes.push_back(n);
    return static_cast<std::int32_t>(tree.nodes.size() - 1);
  }

  [[nodiscard]] static int octant(const Octree::Node& n, const Body& b) {
    return (b.x >= n.cx ? 1 : 0) | (b.y >= n.cy ? 2 : 0) |
           (b.z >= n.cz ? 4 : 0);
  }

  void insert(std::int32_t node, std::int32_t body_idx, int depth) {
    Octree::Node& n0 = tree.nodes[node];
    const bool is_empty_leaf = n0.body < 0 && n0.child[0] < 0 &&
                               n0.child[1] < 0 && n0.child[2] < 0 &&
                               n0.child[3] < 0 && n0.child[4] < 0 &&
                               n0.child[5] < 0 && n0.child[6] < 0 &&
                               n0.child[7] < 0;
    if (is_empty_leaf) {
      tree.nodes[node].body = body_idx;
      return;
    }
    // Depth guard against coincident points.
    if (depth > 64) return;
    if (tree.nodes[node].body >= 0) {
      const std::int32_t old = tree.nodes[node].body;
      tree.nodes[node].body = -1;
      insert_into_child(node, old, depth);
    }
    insert_into_child(node, body_idx, depth);
  }

  void insert_into_child(std::int32_t node, std::int32_t body_idx,
                         int depth) {
    const Body& b = bodies[body_idx];
    const int o = octant(tree.nodes[node], b);
    if (tree.nodes[node].child[o] < 0) {
      const Octree::Node n = tree.nodes[node];
      const double h = n.half / 2;
      const double cx = n.cx + ((o & 1) ? h : -h);
      const double cy = n.cy + ((o & 2) ? h : -h);
      const double cz = n.cz + ((o & 4) ? h : -h);
      const std::int32_t child = make_node(cx, cy, cz, h);
      tree.nodes[node].child[o] = child;
    }
    insert(tree.nodes[node].child[o], body_idx, depth + 1);
  }

  void summarize(std::int32_t node) {
    Octree::Node& n = tree.nodes[node];
    if (n.body >= 0) {
      const Body& b = bodies[n.body];
      n.mass = b.mass;
      n.cx = b.x;
      n.cy = b.y;
      n.cz = b.z;
      return;
    }
    double m = 0, x = 0, y = 0, z = 0;
    for (std::int32_t ch : n.child) {
      if (ch < 0) continue;
      summarize(ch);
      const Octree::Node& c = tree.nodes[ch];
      m += c.mass;
      x += c.cx * c.mass;
      y += c.cy * c.mass;
      z += c.cz * c.mass;
    }
    n.mass = m;
    if (m > 0) {
      n.cx = x / m;
      n.cy = y / m;
      n.cz = z / m;
    }
  }
};

}  // namespace

Octree build_octree(const std::vector<Body>& bodies) {
  OctreeBuilder builder{bodies, {}};
  if (bodies.empty()) return std::move(builder.tree);
  double half = 1e-9;
  for (const Body& b : bodies) {
    half = std::max({half, std::abs(b.x), std::abs(b.y), std::abs(b.z)});
  }
  builder.make_node(0, 0, 0, half * 1.01);
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    builder.insert(0, static_cast<std::int32_t>(i), 0);
  }
  builder.summarize(0);
  return std::move(builder.tree);
}

namespace {
void gen_octree_rec(PlainOctree& t, Rng& rng, std::int32_t node,
                    std::uint32_t depth, double branch_p) {
  if (depth == 0) return;
  for (int o = 0; o < 8; ++o) {
    if (!rng.chance(branch_p)) continue;
    PlainOctree::Node child;
    child.payload = rng.uniform();
    t.nodes.push_back(child);
    const auto idx = static_cast<std::int32_t>(t.nodes.size() - 1);
    t.nodes[node].child[o] = idx;
    gen_octree_rec(t, rng, idx, depth - 1, branch_p);
  }
}
}  // namespace

PlainOctree gen_octree(std::uint64_t seed, std::uint32_t depth,
                       double branch_p) {
  Rng rng(seed);
  PlainOctree t;
  t.nodes.push_back(PlainOctree::Node{});
  gen_octree_rec(t, rng, 0, depth, branch_p);
  return t;
}

Csr gen_csr(std::uint64_t seed, std::uint32_t n, std::uint32_t nnz_per_row) {
  Rng rng(seed);
  Csr a;
  a.rows = n;
  a.cols = n;
  a.row_ptr.reserve(n + 1);
  a.row_ptr.push_back(0);
  for (std::uint32_t r = 0; r < n; ++r) {
    // Half banded structure, half random fill (Matrix-Market-ish).
    std::set<std::uint32_t> cols;
    cols.insert(r);  // diagonal
    const std::uint32_t band = nnz_per_row / 2;
    for (std::uint32_t k = 0; k < band; ++k) {
      const std::int64_t off =
          static_cast<std::int64_t>(rng.below(2 * band + 1)) - band;
      const std::int64_t cc = static_cast<std::int64_t>(r) + off;
      if (cc >= 0 && cc < static_cast<std::int64_t>(n)) {
        cols.insert(static_cast<std::uint32_t>(cc));
      }
    }
    while (cols.size() < nnz_per_row && cols.size() < n) {
      cols.insert(static_cast<std::uint32_t>(rng.below(n)));
    }
    for (std::uint32_t cidx : cols) {
      a.col_idx.push_back(cidx);
      a.values.push_back(rng.uniform() * 2.0 - 1.0);
    }
    a.row_ptr.push_back(static_cast<std::uint32_t>(a.col_idx.size()));
  }
  return a;
}

std::vector<double> gen_dense_vector(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform() * 2.0 - 1.0;
  return v;
}

std::vector<std::uint32_t> ref_components(const Graph& g) {
  // Union-find with min-id labels.
  std::vector<std::uint32_t> parent(g.n);
  for (std::uint32_t i = 0; i < g.n; ++i) parent[i] = i;
  std::function<std::uint32_t(std::uint32_t)> find =
      [&](std::uint32_t x) -> std::uint32_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::uint32_t u = 0; u < g.n; ++u) {
    for (const auto& [v, w] : g.adj[u]) {
      const std::uint32_t ru = find(u);
      const std::uint32_t rv = find(v);
      if (ru != rv) parent[std::max(ru, rv)] = std::min(ru, rv);
    }
  }
  std::vector<std::uint32_t> label(g.n);
  for (std::uint32_t i = 0; i < g.n; ++i) label[i] = find(i);
  return label;
}

std::vector<std::uint64_t> ref_dijkstra(const Graph& g) {
  constexpr auto kInf = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> dist(g.n, kInf);
  using Item = std::pair<std::uint64_t, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[0] = 0;
  pq.emplace(0, 0);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    for (const auto& [v, w] : g.adj[u]) {
      const std::uint64_t nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        pq.emplace(nd, v);
      }
    }
  }
  return dist;
}

std::vector<double> ref_spmxv(const Csr& a, const std::vector<double>& x) {
  std::vector<double> y(a.rows, 0.0);
  for (std::uint32_t r = 0; r < a.rows; ++r) {
    double acc = 0;
    for (std::uint32_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      acc += a.values[k] * x[a.col_idx[k]];
    }
    y[r] = acc;
  }
  return y;
}

}  // namespace simany::dwarfs
