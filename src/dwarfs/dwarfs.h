// The dwarf-like benchmark suite (paper SS V, "Benchmarks").
//
// Six task-parallel kernels following the Berkeley dwarf philosophy,
// each written once against the TaskCtx programming model so it runs
// on the virtual-time engine, the cycle-level baseline and the native
// executor unchanged. Every root task verifies its own result against
// a native reference and throws std::runtime_error on a mismatch.
//
// Quicksort adapts per memory model like the paper's two versions:
// the shared-memory variant partitions an array in place, while the
// distributed variant works on lists whose elements travel with the
// spawned tasks (pivot steps build a binary search tree of runs).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/sim_types.h"

namespace simany::dwarfs {

// ---- Individual factories ---------------------------------------------
// Each returns a self-contained, self-verifying root task. All state is
// owned by the closure; a TaskFn can be handed to exactly one run.

[[nodiscard]] TaskFn make_quicksort_shared(std::uint64_t seed,
                                           std::size_t n);
[[nodiscard]] TaskFn make_quicksort_distributed(std::uint64_t seed,
                                                std::size_t n);
/// Picks the right Quicksort variant from ctx.memory_model() at run
/// time (what the registry uses).
[[nodiscard]] TaskFn make_quicksort(std::uint64_t seed, std::size_t n);

[[nodiscard]] TaskFn make_connected_components(std::uint64_t seed,
                                               std::uint32_t nodes,
                                               std::uint32_t edges);
[[nodiscard]] TaskFn make_dijkstra(std::uint64_t seed, std::uint32_t nodes,
                                   std::uint32_t edges);
[[nodiscard]] TaskFn make_barnes_hut(std::uint64_t seed,
                                     std::size_t bodies);
[[nodiscard]] TaskFn make_spmxv(std::uint64_t seed, std::uint32_t n,
                                std::uint32_t nnz_per_row);
[[nodiscard]] TaskFn make_octree_update(std::uint64_t seed,
                                        std::uint32_t depth,
                                        double branch_p);

// ---- Registry --------------------------------------------------------

struct DwarfSpec {
  std::string name;
  /// Builds the root task for one dataset. `factor` scales the paper's
  /// dataset sizes (1.0 = paper scale); benches default well below 1
  /// and record the factor used in EXPERIMENTS.md.
  std::function<TaskFn(std::uint64_t seed, double factor)> make_root;
};

/// All six dwarfs in the paper's presentation order.
[[nodiscard]] const std::vector<DwarfSpec>& all_dwarfs();

/// The four dwarfs used in the cycle-level validation figures (Fig 5/6).
[[nodiscard]] const std::vector<DwarfSpec>& validation_dwarfs();

/// Lookup by name; throws std::out_of_range for unknown names.
[[nodiscard]] const DwarfSpec& dwarf_by_name(const std::string& name);

}  // namespace simany::dwarfs
