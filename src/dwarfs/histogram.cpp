// Histogram reduction (extension dwarf — MapReduce class).
//
// Map: range tasks bucket their slice of samples into a private local
// histogram (pure compute + streaming reads). Reduce: each task merges
// its local histogram into globally shared per-stripe buckets guarded
// by locks — contention scales inversely with the stripe count, making
// this a tunable lock-contention study.

#include <memory>
#include <stdexcept>
#include <vector>

#include "dwarfs/extended.h"
#include "core/task_ctx.h"
#include "runtime/data.h"

namespace simany::dwarfs {

namespace {

constexpr std::size_t kGrain = 512;
constexpr std::uint32_t kStripes = 8;  // locks guarding the global bins

const timing::InstMix kBucketMix{.int_alu = 3, .branches = 1};
const timing::InstMix kMergeMix{.int_alu = 2};

struct HgState {
  std::vector<std::uint32_t> samples;  // values in [0, bins)
  std::uint64_t samples_base = 0;
  std::uint32_t bins = 0;
  std::vector<std::uint64_t> global;   // shared bins
  std::uint64_t global_base = 0;
  std::vector<LockId> stripe_locks;
  GroupId group = kInvalidGroup;
};

void hg_range_task(TaskCtx& ctx, const std::shared_ptr<HgState>& st,
                   std::size_t lo, std::size_t hi) {
  ctx.function_boundary();
  while (hi - lo > kGrain) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::size_t l = mid;
    const std::size_t r = hi;
    spawn_or_run(
        ctx, st->group,
        [st, l, r](TaskCtx& c) { hg_range_task(c, st, l, r); },
        /*arg_bytes=*/16);
    hi = mid;
  }
  // Map: private local histogram.
  std::vector<std::uint64_t> local(st->bins, 0);
  ctx.mem_read(st->samples_base + lo * 4,
               static_cast<std::uint32_t>((hi - lo) * 4));
  for (std::size_t i = lo; i < hi; ++i) ++local[st->samples[i]];
  ctx.compute(kBucketMix * static_cast<std::uint32_t>(hi - lo));
  // Reduce: merge under the stripe locks.
  const std::uint32_t bins_per_stripe =
      (st->bins + kStripes - 1) / kStripes;
  for (std::uint32_t s = 0; s < kStripes; ++s) {
    const std::uint32_t b0 = s * bins_per_stripe;
    const std::uint32_t b1 = std::min(st->bins, b0 + bins_per_stripe);
    if (b0 >= b1) continue;
    LockGuard guard(ctx, st->stripe_locks[s]);
    ctx.mem_read(st->global_base + b0 * 8, (b1 - b0) * 8);
    for (std::uint32_t b = b0; b < b1; ++b) st->global[b] += local[b];
    ctx.compute(kMergeMix * (b1 - b0));
    ctx.mem_write(st->global_base + b0 * 8, (b1 - b0) * 8);
  }
}

}  // namespace

TaskFn make_histogram(std::uint64_t seed, std::size_t n,
                      std::uint32_t bins) {
  return [seed, n, bins](TaskCtx& ctx) {
    auto st = std::make_shared<HgState>();
    st->bins = bins;
    Rng rng(seed);
    st->samples.resize(n);
    for (auto& s : st->samples) {
      s = static_cast<std::uint32_t>(rng.below(bins));
    }
    st->samples_base = runtime::synth_alloc(n * 4);
    st->global.assign(bins, 0);
    st->global_base = runtime::synth_alloc(std::uint64_t{bins} * 8);
    for (std::uint32_t s = 0; s < kStripes; ++s) {
      st->stripe_locks.push_back(ctx.make_lock());
    }
    st->group = ctx.make_group();
    if (n > 0) hg_range_task(ctx, st, 0, n);
    ctx.join(st->group);
    // Native reference.
    std::vector<std::uint64_t> expected(bins, 0);
    for (std::uint32_t s : st->samples) ++expected[s];
    if (expected != st->global) {
      throw std::runtime_error("histogram: wrong result");
    }
  };
}

}  // namespace simany::dwarfs
