// Barnes-Hut N-body force phase (paper SS V).
//
// Only the force-computation phase is simulated; the octree is built
// natively and assumed broadcast to all cores before the phase starts,
// exactly as the paper does. Bodies are partitioned over recursively
// split range tasks; each body's force is an independent traversal of
// the tree with the theta opening criterion.

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "dwarfs/dwarfs.h"
#include "core/task_ctx.h"
#include "dwarfs/workloads.h"
#include "runtime/data.h"
#include "runtime/native_sim.h"

namespace simany::dwarfs {

namespace {

constexpr double kTheta = 0.5;
constexpr double kSoftening = 1e-6;
constexpr std::size_t kBodyGrain = 4;

// Distance computation per visited tree node.
const timing::InstMix kVisitMix{.int_alu = 2, .fp_alu = 6, .fp_mul_div = 4,
                                .branches = 2};
// Force accumulation for an accepted node/leaf interaction.
const timing::InstMix kForceMix{.fp_alu = 6, .fp_mul_div = 5};

struct BhState {
  std::vector<Body> bodies;
  Octree tree;
  std::vector<double> fx, fy, fz;
  GroupId group = kInvalidGroup;
  std::uint64_t tree_base = 0;  // simulated address of nodes[]
  std::uint64_t force_base = 0;
};

void bh_accumulate(TaskCtx& ctx, const BhState& st, std::int32_t node,
                   std::size_t body, double& fx, double& fy, double& fz) {
  const Octree::Node& n = st.tree.nodes[static_cast<std::size_t>(node)];
  const Body& b = st.bodies[body];
  ctx.mem_read(st.tree_base + static_cast<std::uint64_t>(node) *
                                 sizeof(Octree::Node),
               64);
  ctx.compute(kVisitMix);
  const double dx = n.cx - b.x;
  const double dy = n.cy - b.y;
  const double dz = n.cz - b.z;
  const double dist2 = dx * dx + dy * dy + dz * dz + kSoftening;
  const double dist = std::sqrt(dist2);
  const bool is_leaf = n.body >= 0;
  if (is_leaf || (2.0 * n.half) / dist < kTheta) {
    if (is_leaf && static_cast<std::size_t>(n.body) == body) return;
    ctx.compute(kForceMix);
    const double f = n.mass * b.mass / (dist2 * dist);
    fx += f * dx;
    fy += f * dy;
    fz += f * dz;
    return;
  }
  for (std::int32_t ch : n.child) {
    if (ch >= 0) bh_accumulate(ctx, st, ch, body, fx, fy, fz);
  }
}

void bh_range_task(TaskCtx& ctx, const std::shared_ptr<BhState>& st,
                   std::size_t lo, std::size_t hi) {
  ctx.function_boundary();
  while (hi - lo > kBodyGrain) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::size_t l = mid;
    const std::size_t r = hi;
    spawn_or_run(
        ctx, st->group,
        [st, l, r](TaskCtx& c) { bh_range_task(c, st, l, r); },
        /*arg_bytes=*/16);
    hi = mid;
  }
  for (std::size_t b = lo; b < hi; ++b) {
    double fx = 0, fy = 0, fz = 0;
    if (!st->tree.empty()) bh_accumulate(ctx, *st, 0, b, fx, fy, fz);
    st->fx[b] = fx;
    st->fy[b] = fy;
    st->fz[b] = fz;
    ctx.mem_write(st->force_base + b * 24, 24);
  }
}

}  // namespace

TaskFn make_barnes_hut(std::uint64_t seed, std::size_t bodies) {
  return [seed, bodies](TaskCtx& ctx) {
    auto st = std::make_shared<BhState>();
    st->bodies = gen_bodies(seed, bodies);
    st->tree = build_octree(st->bodies);  // untimed: broadcast assumed
    st->tree_base = runtime::synth_alloc(st->tree.nodes.size() *
                                         sizeof(Octree::Node));
    st->force_base = runtime::synth_alloc(bodies * 24);
    st->fx.assign(bodies, 0);
    st->fy.assign(bodies, 0);
    st->fz.assign(bodies, 0);
    st->group = ctx.make_group();
    if (bodies > 0) bh_range_task(ctx, st, 0, bodies);
    ctx.join(st->group);
    // Native reference: identical traversal through a no-op context
    // gives bit-identical doubles.
    runtime::NativeCtx ref;
    for (std::size_t b = 0; b < bodies; ++b) {
      double fx = 0, fy = 0, fz = 0;
      if (!st->tree.empty()) bh_accumulate(ref, *st, 0, b, fx, fy, fz);
      if (fx != st->fx[b] || fy != st->fy[b] || fz != st->fz[b]) {
        throw std::runtime_error("barnes-hut: wrong force result");
      }
    }
  };
}

}  // namespace simany::dwarfs
