// Runtime invariant checking for the SiMany engine ("simcheck").
//
// The paper's correctness argument rests on a handful of distributed
// invariants (SS II): neighbor drift <= T, global drift <= diameter x T,
// idle-core shadow times = min(neighbor) + T, birth-time throttling of
// spawning parents, lock/cell-holder exemption, and causal message
// delivery. The engine enforces them implicitly through its scheduling
// logic; InvariantChecker re-verifies them *independently* from the
// observer hooks, using the literal shadow-time fixpoint semantics
// rather than the engine's pruned BFS, so a bug in either formulation
// is caught by their disagreement.
//
// Usage:
//   check::InvariantChecker checker;
//   checker.attach(engine);          // engine.set_observer(&checker)
//   engine.run(...);                 // throws check::CheckError on the
//                                    // first violated invariant
//
// Checks run only while attached: a detached engine pays one pointer
// null-check per event. The static entry points (check_state,
// check_message, drift_limit_of) operate on plain EngineInspect data,
// so tests can fabricate states with injected violations and verify
// each one is caught and correctly named.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine_observer.h"
#include "core/inspect.h"
#include "core/sim_types.h"
#include "core/vtime.h"
#include "net/topology.h"

namespace simany {
class Engine;
}

namespace simany::check {

/// The machine-checkable engine invariants (PAPER.md SS II).
enum class Invariant : std::uint8_t {
  kNeighborDrift,   // core ran past a direct neighbor anchor's time + T
  kShadowDrift,     // bound through idle cores (shadow times) violated
  kBirthDrift,      // parent ran past an in-flight child's birth + T
  kMonotonicTime,   // a core's virtual time moved backwards
  kCausalDelivery,  // arrival before send time + minimal path latency
  kHoldDepth,       // hold_depth disagrees with held locks/cells
  kConservation,    // live-task / in-flight-message accounting broken
  kWakeValidity,    // a core woke from a stall without its limit rising
  kDeadCoreActivity,  // a fault-plan-disabled core executed task work
};

[[nodiscard]] const char* to_string(Invariant inv) noexcept;

struct Violation {
  Invariant invariant = Invariant::kConservation;
  CoreId core = net::kInvalidCore;
  std::string detail;  // names the invariant and the offending values
};

/// Thrown on the first violation when CheckOptions::throw_on_violation
/// is set (the default). what() names the invariant.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(Violation v);
  [[nodiscard]] const Violation& violation() const noexcept { return v_; }

 private:
  Violation v_;
};

struct CheckOptions {
  /// Verify the drift bound on every Nth compute advance (1 = all).
  /// Each verification recomputes the limit from scratch; raise this
  /// for long checked runs.
  std::uint64_t advance_sample = 1;
  /// Full-state audit (conservation, hold depths, birth tracking)
  /// every N scheduling quanta.
  std::uint64_t audit_interval = 64;
  /// Throw CheckError at the first violation. When false, violations
  /// accumulate in violations() instead.
  bool throw_on_violation = true;
};

class InvariantChecker final : public EngineObserver {
 public:
  explicit InvariantChecker(CheckOptions opts = {});

  /// Registers this checker as `engine`'s observer and captures the
  /// topology. The checker must outlive the engine's run().
  void attach(Engine& engine);

  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  /// Number of individual invariant verifications performed.
  [[nodiscard]] std::uint64_t checks_performed() const noexcept {
    return checks_;
  }
  /// Injected-fault events observed through on_fault. Lets tests
  /// assert the invariants above were exercised *under* faults.
  [[nodiscard]] std::uint64_t faults_observed() const noexcept {
    return faults_observed_;
  }

  // ---- Stateless checking core (used directly by negative tests) ----

  /// The checker's own drift limit for core `c`: the shadow-time
  /// fixpoint over `topo` (iterative relaxation to convergence),
  /// deliberately a different algorithm from the engine's pruned BFS.
  /// Includes other cores' anchors and births, and `c`'s own births.
  [[nodiscard]] static Tick drift_limit_of(const EngineInspect& state,
                                           const net::Topology& topo,
                                           CoreId c);

  /// Verifies the drift-bound family (neighbor / shadow / birth, with
  /// holder exemption), hold-depth sanity and conservation accounting
  /// on a snapshot. Returns every violation found.
  [[nodiscard]] static std::vector<Violation> check_state(
      const EngineInspect& state, const net::Topology& topo);

  /// Verifies causal delivery of one message: arrival >= sent, and for
  /// networked messages arrival >= sent + hops x min_link_latency.
  /// `direct` marks synthetic local deliveries (no network traversal).
  [[nodiscard]] static std::vector<Violation> check_message(
      const Message& m, const net::Topology& topo, bool direct);

  // ---- EngineObserver ----

  void on_run_begin(const Engine& e) override;
  void on_run_end(const Engine& e) override;
  void on_advance(const Engine& e, CoreId c, Tick from, Tick to,
                  AdvanceKind kind, bool exempt) override;
  void on_message_posted(const Engine& e, const Message& m,
                         bool direct) override;
  void on_task_start(const Engine& e, CoreId c, Tick at) override;
  void on_task_birth(const Engine& e, CoreId parent, Tick birth) override;
  void on_task_arrival(const Engine& e, CoreId parent, CoreId dst,
                       Tick birth) override;
  void on_wake(const Engine& e, CoreId c, Tick at, Tick new_limit) override;
  void on_lock_acquired(const Engine& e, CoreId c, LockId id) override;
  void on_lock_released(const Engine& e, CoreId c, LockId id) override;
  void on_cell_acquired(const Engine& e, CoreId c, CellId id) override;
  void on_cell_released(const Engine& e, CoreId c, CellId id) override;
  void on_fault(const Engine& e, fault::FaultKind kind, CoreId core, Tick at,
                std::uint64_t magnitude) override;
  void on_quantum_end(const Engine& e) override;
  void on_deadlock(const Engine& e) override;

 private:
  void report(Violation v);
  void audit(const Engine& e);
  [[nodiscard]] std::uint32_t hops(CoreId src, CoreId dst);

  CheckOptions opts_;
  const net::Topology* topo_ = nullptr;
  bool virtual_time_mode_ = true;
  bool spatial_sync_ = true;
  Tick min_link_latency_ = 0;

  std::vector<Violation> violations_;
  std::uint64_t checks_ = 0;
  std::uint64_t faults_observed_ = 0;
  std::uint64_t compute_advances_ = 0;
  std::uint64_t quanta_ = 0;

  /// Cores the attached engine's fault plan disabled; they must never
  /// start tasks or appear with task state in audits.
  std::vector<std::uint8_t> dead_;

  // Event-tracked mirrors of engine state, compared during audits.
  std::vector<Tick> last_now_;                  // per-core monotonicity
  std::vector<int> tracked_holds_;              // locks + cells held
  std::vector<std::vector<Tick>> tracked_births_;
  std::vector<std::vector<std::uint32_t>> hop_cache_;  // per-src BFS
};

}  // namespace simany::check
