#include "check/invariant_checker.h"

#include <algorithm>
#include <sstream>

#include "check/deadlock.h"
#include "core/engine.h"

namespace simany::check {

namespace {

/// Minimum over a core's in-flight birth timestamps, or infinity.
Tick min_birth(const CoreInspect& c) {
  if (c.births.empty()) return kTickInfinity;
  return *std::min_element(c.births.begin(), c.births.end());
}

/// Shortest-path relaxation of per-core seed values with edge weight T,
/// run to fixpoint (Bellman-Ford; converges in <= num_cores rounds).
/// This is the literal shadow-time semantics from the paper: an idle
/// core's proxy is min over its neighbors + T, applied everywhere until
/// nothing changes.
std::vector<Tick> relax_to_fixpoint(std::vector<Tick> val,
                                    const net::Topology& topo, Tick t) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (CoreId v = 0; v < topo.num_cores(); ++v) {
      for (CoreId nb : topo.neighbors(v)) {
        const Tick cand = sat_add(val[nb], t);
        if (cand < val[v]) {
          val[v] = cand;
          changed = true;
        }
      }
    }
  }
  return val;
}

/// SlackSim-style global window: min over anchors and births, plus T.
Tick bounded_slack_limit_of(const EngineInspect& state) {
  Tick gmin = kTickInfinity;
  for (const CoreInspect& c : state.cores) {
    if (c.anchor) gmin = std::min(gmin, c.now);
    gmin = std::min(gmin, min_birth(c));
  }
  return sat_add(gmin, state.drift_ticks);
}

Tick min_link_latency_of(const net::Topology& topo) {
  Tick lat = kTickInfinity;
  for (net::LinkId l = 0; l < topo.num_links(); ++l) {
    lat = std::min(lat, topo.link(l).props.latency);
  }
  return lat == kTickInfinity ? 0 : lat;
}

std::string fmt_violation(Invariant inv, const std::string& what) {
  std::ostringstream os;
  os << "[" << to_string(inv) << "] " << what;
  return os.str();
}

}  // namespace

const char* to_string(Invariant inv) noexcept {
  switch (inv) {
    case Invariant::kNeighborDrift: return "neighbor-drift";
    case Invariant::kShadowDrift: return "shadow-drift";
    case Invariant::kBirthDrift: return "birth-drift";
    case Invariant::kMonotonicTime: return "monotonic-time";
    case Invariant::kCausalDelivery: return "causal-delivery";
    case Invariant::kHoldDepth: return "hold-depth";
    case Invariant::kConservation: return "conservation";
    case Invariant::kWakeValidity: return "wake-validity";
    case Invariant::kDeadCoreActivity: return "dead-core-activity";
  }
  return "?";
}

CheckError::CheckError(Violation v)
    : std::runtime_error(fmt_violation(v.invariant, v.detail)),
      v_(std::move(v)) {}

InvariantChecker::InvariantChecker(CheckOptions opts) : opts_(opts) {
  if (opts_.advance_sample == 0) opts_.advance_sample = 1;
  if (opts_.audit_interval == 0) opts_.audit_interval = 1;
}

void InvariantChecker::attach(Engine& engine) {
  topo_ = &engine.config().topology;
  virtual_time_mode_ = (engine.mode() == ExecutionMode::kVirtualTime);
  spatial_sync_ = (engine.config().sync_scheme == SyncScheme::kSpatial);
  min_link_latency_ = min_link_latency_of(*topo_);
  const std::uint32_t n = topo_->num_cores();
  last_now_.assign(n, 0);
  tracked_holds_.assign(n, 0);
  tracked_births_.assign(n, {});
  hop_cache_.assign(n, {});
  dead_.assign(n, 0);
  for (const net::CoreId c : engine.config().fault.dead_set(n)) dead_[c] = 1;
  engine.set_observer(this);
}

void InvariantChecker::report(Violation v) {
  if (opts_.throw_on_violation) throw CheckError(std::move(v));
  violations_.push_back(std::move(v));
}

std::uint32_t InvariantChecker::hops(CoreId src, CoreId dst) {
  auto& row = hop_cache_[src];
  if (row.empty()) row = topo_->distances_from(src);
  return row[dst];
}

// ---------------------------------------------------------------------
// Stateless checking core
// ---------------------------------------------------------------------

Tick InvariantChecker::drift_limit_of(const EngineInspect& state,
                                      const net::Topology& topo, CoreId c) {
  const Tick t = state.drift_ticks;
  std::vector<Tick> seed(topo.num_cores(), kTickInfinity);
  for (CoreId v = 0; v < topo.num_cores(); ++v) {
    const CoreInspect& ci = state.cores[v];
    // A core's own anchored time never constrains itself, but its own
    // in-flight births do (birth + T, one conceptual hop to the child).
    if (v != c && ci.anchor) seed[v] = ci.now;
    seed[v] = std::min(seed[v], sat_add(min_birth(ci), t));
  }
  return relax_to_fixpoint(std::move(seed), topo, t)[c];
}

std::vector<Violation> InvariantChecker::check_state(
    const EngineInspect& state, const net::Topology& topo) {
  std::vector<Violation> out;
  const Tick t = state.drift_ticks;
  const std::uint32_t n = topo.num_cores();

  // Anchor-only and birth-only shadow fixpoints, shared across cores so
  // violation classification can tell which constraint family failed.
  // (The per-core exclusion of a core's own anchor means the shared
  // fixpoint is a lower bound on each core's true limit; a shared-value
  // "violation" where the core itself is the binding anchor is refined
  // below with an exact per-core recomputation.)
  std::vector<Tick> anchor_seed(n, kTickInfinity);
  std::vector<Tick> birth_seed(n, kTickInfinity);
  for (CoreId v = 0; v < n; ++v) {
    if (state.cores[v].anchor) anchor_seed[v] = state.cores[v].now;
    birth_seed[v] = sat_add(min_birth(state.cores[v]), t);
  }
  const std::vector<Tick> anchor_fix =
      relax_to_fixpoint(anchor_seed, topo, t);
  const std::vector<Tick> birth_fix = relax_to_fixpoint(birth_seed, topo, t);

  for (CoreId c = 0; c < n; ++c) {
    const CoreInspect& ci = state.cores[c];

    // Hold-depth sanity. The converse (hold_depth < resources whose
    // holder field names c) can transiently occur while a grant message
    // is in flight, so only the sound direction is checked.
    if (ci.hold_depth < 0) {
      std::ostringstream os;
      os << "core " << c << " has negative hold_depth " << ci.hold_depth;
      out.push_back({Invariant::kHoldDepth, c, os.str()});
    }
    std::size_t held = 0;
    for (const LockInspect& lk : state.locks) {
      if (lk.held && lk.holder == c) ++held;
    }
    for (const CellInspect& cell : state.cells) {
      if (cell.locked && cell.holder == c) ++held;
    }
    if (held > static_cast<std::size_t>(std::max(0, ci.hold_depth))) {
      std::ostringstream os;
      os << "core " << c << " holds " << held
         << " locks/cells but hold_depth is " << ci.hold_depth
         << " (holder not exempt from spatial sync)";
      out.push_back({Invariant::kHoldDepth, c, os.str()});
    }

    // Drift-bound family. Holders are exempt (paper SS II-B).
    if (ci.hold_depth > 0) continue;
    const Tick limit = drift_limit_of(state, topo, c);
    if (ci.now <= limit) continue;

    // Classify: direct neighbor anchor beats shadow path beats births.
    Tick neighbor_bound = kTickInfinity;
    for (CoreId nb : topo.neighbors(c)) {
      if (state.cores[nb].anchor) {
        neighbor_bound =
            std::min(neighbor_bound, sat_add(state.cores[nb].now, t));
      }
    }
    Invariant inv;
    Tick bound;
    if (ci.now > neighbor_bound) {
      inv = Invariant::kNeighborDrift;
      bound = neighbor_bound;
    } else if (ci.now > anchor_fix[c]) {
      inv = Invariant::kShadowDrift;
      bound = anchor_fix[c];
    } else {
      inv = Invariant::kBirthDrift;
      bound = std::min(birth_fix[c], sat_add(min_birth(ci), t));
    }
    std::ostringstream os;
    os << "core " << c << " at vt=" << ci.now << " exceeds its drift limit "
       << bound << " (T=" << t << " ticks); "
       << (inv == Invariant::kNeighborDrift
               ? "a direct neighbor anchor binds it"
               : inv == Invariant::kShadowDrift
                     ? "an anchor reached through idle (shadow) cores "
                       "binds it"
                     : "an in-flight spawned task's birth time binds it");
    out.push_back({inv, c, os.str()});
  }

  // Conservation. Every live task is running, queued, resumable, parked
  // on a group, or riding a TASK_SPAWN message; every in-flight message
  // sits in exactly one inbox. Only meaningful at engine safe points.
  std::uint64_t inbox_total = 0;
  std::uint64_t carried = state.inflight_spawns;
  for (const CoreInspect& ci : state.cores) {
    inbox_total += ci.inbox_len;
    carried += (ci.has_fiber ? 1 : 0) + ci.queue_len + ci.resumables;
  }
  for (const GroupInspect& g : state.groups) {
    carried += g.joiner_cores.size();
  }
  if (inbox_total != state.inflight_messages) {
    std::ostringstream os;
    os << "messages in inboxes (" << inbox_total
       << ") != inflight_messages counter (" << state.inflight_messages
       << ")";
    out.push_back({Invariant::kConservation, net::kInvalidCore, os.str()});
  }
  if (carried != state.live_tasks) {
    std::ostringstream os;
    os << "tasks accounted for (" << carried << ": fibers+queued+resumable"
       << "+joiners+inflight spawns) != live_tasks counter ("
       << state.live_tasks << ")";
    out.push_back({Invariant::kConservation, net::kInvalidCore, os.str()});
  }
  return out;
}

std::vector<Violation> InvariantChecker::check_message(
    const Message& m, const net::Topology& topo, bool direct) {
  std::vector<Violation> out;
  if (m.arrival < m.sent) {
    std::ostringstream os;
    os << to_string(m.kind) << " " << m.src << "->" << m.dst
       << " arrives at " << m.arrival << " before it was sent at " << m.sent;
    out.push_back({Invariant::kCausalDelivery, m.dst, os.str()});
    return out;
  }
  if (direct || m.src == m.dst || m.src >= topo.num_cores() ||
      m.dst >= topo.num_cores()) {
    return out;
  }
  const Tick floor_lat = sat_mul(topo.distances_from(m.src)[m.dst],
                                 min_link_latency_of(topo));
  if (m.arrival < sat_add(m.sent, floor_lat)) {
    std::ostringstream os;
    os << to_string(m.kind) << " " << m.src << "->" << m.dst << " sent at "
       << m.sent << " arrives at " << m.arrival
       << ", faster than the minimal path latency " << floor_lat
       << " ticks allows";
    out.push_back({Invariant::kCausalDelivery, m.dst, os.str()});
  }
  return out;
}

// ---------------------------------------------------------------------
// Live observer
// ---------------------------------------------------------------------

void InvariantChecker::on_run_begin(const Engine& e) {
  // attach() normally ran already; tolerate set_observer() direct use.
  if (topo_ == nullptr) {
    topo_ = &e.config().topology;
    virtual_time_mode_ = (e.mode() == ExecutionMode::kVirtualTime);
    spatial_sync_ = (e.config().sync_scheme == SyncScheme::kSpatial);
    min_link_latency_ = min_link_latency_of(*topo_);
    const std::uint32_t n = topo_->num_cores();
    last_now_.assign(n, 0);
    tracked_holds_.assign(n, 0);
    tracked_births_.assign(n, {});
    hop_cache_.assign(n, {});
    dead_.assign(n, 0);
    for (const net::CoreId c : e.config().fault.dead_set(n)) dead_[c] = 1;
  }
}

void InvariantChecker::on_run_end(const Engine& e) { audit(e); }

void InvariantChecker::on_advance(const Engine& e, CoreId c, Tick from,
                                  Tick to, AdvanceKind kind, bool exempt) {
  ++checks_;
  if (to < from) {
    std::ostringstream os;
    os << "core " << c << " moved backwards from vt=" << from
       << " to vt=" << to;
    report({Invariant::kMonotonicTime, c, os.str()});
  }
  if (to < last_now_[c]) {
    std::ostringstream os;
    os << "core " << c << " advance to vt=" << to
       << " is behind its previously observed time " << last_now_[c];
    report({Invariant::kMonotonicTime, c, os.str()});
  }
  last_now_[c] = to;

  // The drift bound constrains annotated compute only; runtime charges
  // and arrival-time jumps follow message causality instead, and
  // lock/cell holders are exempt. Compute steps are clamped to the
  // engine's cached limit, which never exceeds the true current limit
  // (anchors only move forward; new constraints invalidate the cache),
  // so checking at the post-advance state is exact: no false positives.
  if (!virtual_time_mode_ || kind != AdvanceKind::kCompute || exempt) {
    return;
  }
  if (++compute_advances_ % opts_.advance_sample != 0) return;
  const EngineInspect state = e.inspect();
  const Tick limit = spatial_sync_
                         ? drift_limit_of(state, *topo_, c)
                         : std::min(bounded_slack_limit_of(state),
                                    sat_add(min_birth(state.cores[c]),
                                            state.drift_ticks));
  if (to > limit) {
    std::ostringstream os;
    os << "core " << c << " compute-advanced from vt=" << from
       << " to vt=" << to << " past its independently recomputed drift "
       << "limit " << limit << " (T=" << state.drift_ticks << " ticks)";
    report({spatial_sync_ ? Invariant::kShadowDrift
                          : Invariant::kNeighborDrift,
            c, os.str()});
  }
}

void InvariantChecker::on_message_posted(const Engine& e, const Message& m,
                                         bool direct) {
  (void)e;
  ++checks_;
  if (m.arrival < m.sent) {
    std::ostringstream os;
    os << to_string(m.kind) << " " << m.src << "->" << m.dst
       << " arrives at " << m.arrival << " before it was sent at " << m.sent;
    report({Invariant::kCausalDelivery, m.dst, os.str()});
    return;
  }
  if (direct || m.src == m.dst) return;
  const Tick floor_lat =
      sat_mul(hops(m.src, m.dst), min_link_latency_);
  if (m.arrival < sat_add(m.sent, floor_lat)) {
    std::ostringstream os;
    os << to_string(m.kind) << " " << m.src << "->" << m.dst << " sent at "
       << m.sent << " arrives at " << m.arrival
       << ", faster than the minimal path latency " << floor_lat
       << " ticks allows";
    report({Invariant::kCausalDelivery, m.dst, os.str()});
  }
}

void InvariantChecker::on_task_start(const Engine& e, CoreId c, Tick at) {
  (void)e;
  ++checks_;
  if (c < dead_.size() && dead_[c]) {
    std::ostringstream os;
    os << "core " << c << " started a task at vt=" << at
       << " but is permanently disabled by the fault plan";
    report({Invariant::kDeadCoreActivity, c, os.str()});
  }
}

void InvariantChecker::on_fault(const Engine& e, fault::FaultKind kind,
                                CoreId core, Tick at,
                                std::uint64_t magnitude) {
  (void)e;
  (void)at;
  ++checks_;
  ++faults_observed_;
  if (topo_ != nullptr && core >= topo_->num_cores()) {
    std::ostringstream os;
    os << "fault event " << fault::to_string(kind) << " names core " << core
       << ", which does not exist";
    report({Invariant::kConservation, core, os.str()});
  }
  if (magnitude == 0) {
    std::ostringstream os;
    os << "fault event " << fault::to_string(kind) << " at core " << core
       << " reports zero magnitude";
    report({Invariant::kConservation, core, os.str()});
  }
}

void InvariantChecker::on_task_birth(const Engine& e, CoreId parent,
                                     Tick birth) {
  (void)e;
  tracked_births_[parent].push_back(birth);
}

void InvariantChecker::on_task_arrival(const Engine& e, CoreId parent,
                                       CoreId dst, Tick birth) {
  (void)e;
  ++checks_;
  auto& births = tracked_births_[parent];
  const auto it = std::find(births.begin(), births.end(), birth);
  if (it == births.end()) {
    std::ostringstream os;
    os << "core " << parent << " retired a spawn birth " << birth
       << " (arrived at core " << dst << ") that was never recorded";
    report({Invariant::kConservation, parent, os.str()});
    return;
  }
  births.erase(it);
}

void InvariantChecker::on_wake(const Engine& e, CoreId c, Tick at,
                               Tick new_limit) {
  (void)e;
  ++checks_;
  if (new_limit <= at) {
    std::ostringstream os;
    os << "core " << c << " woke from a sync stall at vt=" << at
       << " but its new drift limit " << new_limit
       << " does not allow progress";
    report({Invariant::kWakeValidity, c, os.str()});
  }
}

void InvariantChecker::on_lock_acquired(const Engine& e, CoreId c,
                                        LockId id) {
  (void)e;
  (void)id;
  ++tracked_holds_[c];
}

void InvariantChecker::on_lock_released(const Engine& e, CoreId c,
                                        LockId id) {
  (void)e;
  ++checks_;
  if (--tracked_holds_[c] < 0) {
    std::ostringstream os;
    os << "core " << c << " released lock " << id
       << " it did not hold (tracked hold count went negative)";
    report({Invariant::kHoldDepth, c, os.str()});
  }
}

void InvariantChecker::on_cell_acquired(const Engine& e, CoreId c,
                                        CellId id) {
  (void)e;
  (void)id;
  ++tracked_holds_[c];
}

void InvariantChecker::on_cell_released(const Engine& e, CoreId c,
                                        CellId id) {
  (void)e;
  ++checks_;
  if (--tracked_holds_[c] < 0) {
    std::ostringstream os;
    os << "core " << c << " released cell " << id
       << " it did not hold (tracked hold count went negative)";
    report({Invariant::kHoldDepth, c, os.str()});
  }
}

void InvariantChecker::on_quantum_end(const Engine& e) {
  if (++quanta_ % opts_.audit_interval != 0) return;
  audit(e);
}

void InvariantChecker::on_deadlock(const Engine& e) {
  // Replace the engine's terse deadlock error with a structured
  // wait-for analysis of the full frozen state.
  throw DeadlockError(analyze_deadlock(e.inspect(), *topo_));
}

void InvariantChecker::audit(const Engine& e) {
  ++checks_;
  const EngineInspect state = e.inspect();

  // Conservation counters (same accounting as Engine::audit_counters,
  // recomputed here from the snapshot rather than trusted).
  std::uint64_t inbox_total = 0;
  std::uint64_t carried = state.inflight_spawns;
  for (const CoreInspect& ci : state.cores) {
    inbox_total += ci.inbox_len;
    carried += (ci.has_fiber ? 1 : 0) + ci.queue_len + ci.resumables;
  }
  for (const GroupInspect& g : state.groups) carried += g.joiner_cores.size();
  if (inbox_total != state.inflight_messages) {
    std::ostringstream os;
    os << "messages in inboxes (" << inbox_total
       << ") != inflight_messages counter (" << state.inflight_messages
       << ")";
    report({Invariant::kConservation, net::kInvalidCore, os.str()});
  }
  if (carried != state.live_tasks) {
    std::ostringstream os;
    os << "tasks accounted for (" << carried
       << ") != live_tasks counter (" << state.live_tasks << ")";
    report({Invariant::kConservation, net::kInvalidCore, os.str()});
  }

  // Event-tracked mirrors vs engine state.
  for (const CoreInspect& ci : state.cores) {
    if (ci.dead && (ci.has_fiber || ci.queue_len > 0 || ci.resumables > 0)) {
      std::ostringstream os;
      os << "dead core " << ci.id << " holds task state (fiber="
         << ci.has_fiber << ", queued=" << ci.queue_len
         << ", resumables=" << ci.resumables << ")";
      report({Invariant::kDeadCoreActivity, ci.id, os.str()});
    }
    if (ci.hold_depth != tracked_holds_[ci.id]) {
      std::ostringstream os;
      os << "core " << ci.id << " hold_depth " << ci.hold_depth
         << " disagrees with " << tracked_holds_[ci.id]
         << " lock/cell acquisitions observed";
      report({Invariant::kHoldDepth, ci.id, os.str()});
    }
    if (ci.now < last_now_[ci.id]) {
      std::ostringstream os;
      os << "core " << ci.id << " is at vt=" << ci.now
         << ", behind its previously observed time " << last_now_[ci.id];
      report({Invariant::kMonotonicTime, ci.id, os.str()});
    }
    last_now_[ci.id] = ci.now;
    auto tracked = tracked_births_[ci.id];
    auto actual = ci.births;
    std::sort(tracked.begin(), tracked.end());
    std::sort(actual.begin(), actual.end());
    if (tracked != actual) {
      std::ostringstream os;
      os << "core " << ci.id << " birth records (" << actual.size()
         << ") disagree with the " << tracked.size()
         << " in-flight spawns observed";
      report({Invariant::kConservation, ci.id, os.str()});
    }
  }
}

}  // namespace simany::check
