#include "check/deadlock.h"

#include <algorithm>
#include <sstream>

namespace simany::check {

namespace {

/// The core whose anchored time (or birth record) binds `c`'s drift
/// limit: argmin over other cores of contribution + T x distance.
/// Returns kInvalidCore when nothing constrains c.
CoreId binding_anchor(const EngineInspect& state, const net::Topology& topo,
                      CoreId c, Tick* bound_out) {
  const Tick t = state.drift_ticks;
  const std::vector<std::uint32_t> dist = topo.distances_from(c);
  CoreId best_core = net::kInvalidCore;
  Tick best = kTickInfinity;
  for (CoreId v = 0; v < topo.num_cores(); ++v) {
    const CoreInspect& ci = state.cores[v];
    Tick contrib = kTickInfinity;
    if (v != c && ci.anchor) {
      contrib = sat_add(ci.now, sat_mul(t, dist[v]));
    }
    if (!ci.births.empty()) {
      const Tick mb = *std::min_element(ci.births.begin(), ci.births.end());
      contrib = std::min(
          contrib,
          sat_add(mb, sat_mul(t, static_cast<Tick>(dist[v]) + 1)));
    }
    if (contrib < best) {
      best = contrib;
      best_core = v;
    }
  }
  if (bound_out != nullptr) *bound_out = best;
  return best_core;
}

/// DFS cycle search over the core->core subset of the wait-for edges.
/// Returns the cycle as c0 -> ... -> c0, or empty.
std::vector<CoreId> find_cycle(const std::vector<WaitEdge>& edges,
                               std::uint32_t num_cores) {
  std::vector<std::vector<CoreId>> adj(num_cores);
  for (const WaitEdge& e : edges) {
    if (e.from != net::kInvalidCore && e.to != net::kInvalidCore) {
      adj[e.from].push_back(e.to);
    }
  }
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(num_cores, kWhite);
  std::vector<CoreId> parent(num_cores, net::kInvalidCore);
  // Iterative DFS keeping an explicit stack of (node, next-edge index).
  for (CoreId root = 0; root < num_cores; ++root) {
    if (color[root] != kWhite) continue;
    std::vector<std::pair<CoreId, std::size_t>> stack;
    stack.emplace_back(root, 0);
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < adj[u].size()) {
        const CoreId v = adj[u][next++];
        if (color[v] == kGray) {
          // Back edge u -> v closes a cycle v -> ... -> u -> v.
          std::vector<CoreId> cycle{v};
          for (CoreId w = u; w != v; w = parent[w]) cycle.push_back(w);
          std::reverse(cycle.begin() + 1, cycle.end());
          cycle.push_back(v);
          return cycle;
        }
        if (color[v] == kWhite) {
          color[v] = kGray;
          parent[v] = u;
          stack.emplace_back(v, 0);
        }
      } else {
        color[u] = kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace

std::string DeadlockReport::to_string() const {
  std::ostringstream os;
  os << summary;
  if (!cycle.empty()) {
    os << "\nwait-for cycle: ";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i > 0) os << " -> ";
      os << "core " << cycle[i];
    }
  }
  for (const WaitEdge& e : edges) {
    os << "\n  core " << e.from << ": " << e.reason;
  }
  return os.str();
}

DeadlockReport analyze_deadlock(const EngineInspect& state,
                                const net::Topology& topo) {
  DeadlockReport rep;

  for (const LockInspect& lk : state.locks) {
    for (CoreId w : lk.waiters) {
      std::ostringstream os;
      os << "waits for lock " << lk.id << " held by core " << lk.holder;
      rep.edges.push_back({w, lk.held ? lk.holder : net::kInvalidCore,
                           os.str()});
    }
  }
  for (const CellInspect& cell : state.cells) {
    for (CoreId w : cell.waiters) {
      std::ostringstream os;
      os << "waits for cell " << cell.id << " held by core " << cell.holder;
      rep.edges.push_back({w, cell.locked ? cell.holder : net::kInvalidCore,
                           os.str()});
    }
  }
  for (const GroupInspect& g : state.groups) {
    if (g.joiner_cores.empty()) continue;
    for (CoreId w : g.joiner_cores) {
      std::ostringstream os;
      os << "parked joining group " << g.id << " (" << g.active
         << " member tasks still active)";
      // The group's remaining tasks are not attributable to one core
      // from the snapshot, so this edge has no core target; the cores
      // actually running them show up through their own wait edges.
      rep.edges.push_back({w, net::kInvalidCore, os.str()});
    }
  }
  for (const CoreInspect& ci : state.cores) {
    if (ci.sync_stalled) {
      Tick bound = kTickInfinity;
      const CoreId anchor = binding_anchor(state, topo, ci.id, &bound);
      std::ostringstream os;
      os << "spatial-sync stalled at vt=" << ci.now << " (limit " << bound
         << " set by core " << anchor << ")";
      rep.edges.push_back({ci.id, anchor, os.str()});
    }
    if (ci.waiting_reply && ci.inbox_len == 0) {
      rep.edges.push_back(
          {ci.id, net::kInvalidCore,
           "blocked awaiting a protocol reply that is not in flight"});
    }
  }

  rep.cycle = find_cycle(rep.edges, topo.num_cores());

  // Distinguish an injected failure mode from a protocol bug: when the
  // only cores still holding work (running, queued, resumable or
  // undelivered inbox traffic) are ones the fault plan permanently
  // disabled, the machine did not deadlock — it was partitioned dead.
  std::uint32_t dead_count = 0;
  std::uint32_t dead_with_work = 0;
  bool any_work = false;
  bool live_has_work = false;
  for (const CoreInspect& ci : state.cores) {
    if (ci.dead) ++dead_count;
    const bool work = ci.has_fiber || ci.queue_len > 0 ||
                      ci.resumables > 0 || ci.inbox_len > 0;
    if (!work) continue;
    any_work = true;
    if (ci.dead) {
      ++dead_with_work;
    } else {
      live_has_work = true;
    }
  }
  rep.all_dead_partition = dead_count > 0 && any_work && !live_has_work;

  std::ostringstream os;
  if (rep.all_dead_partition) {
    os << "all-dead partition: the " << dead_with_work
       << " core(s) still holding work are permanently disabled by the "
       << "fault plan (" << dead_count
       << " dead total) — not a protocol deadlock (live_tasks="
       << state.live_tasks << ", inflight_messages="
       << state.inflight_messages << ")";
  } else {
    os << "simulated deadlock: no core can advance (live_tasks="
       << state.live_tasks << ", inflight_messages="
       << state.inflight_messages << ", " << rep.edges.size()
       << " wait-for edges)";
    if (rep.has_cycle()) {
      os << "; circular wait among " << (rep.cycle.size() - 1) << " cores";
    } else {
      os << "; no circular wait found (lost wake or resource starvation)";
    }
  }
  rep.summary = os.str();
  return rep;
}

DeadlockError::DeadlockError(DeadlockReport report)
    : std::runtime_error(report.to_string()), report_(std::move(report)) {}

}  // namespace simany::check
