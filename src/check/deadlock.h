// Stall/deadlock analysis: wait-for graph construction and cycle
// detection over a frozen engine snapshot.
//
// When no core can make progress the engine throws a terse error;
// analyze_deadlock turns the frozen state into a structured diagnosis:
// who waits on whom (lock/cell waiters, group joiners, spatial-sync
// stalls, outstanding replies), whether the waits form a cycle, and a
// human-readable summary naming every participant. InvariantChecker
// throws DeadlockError with this report from its on_deadlock hook.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "core/inspect.h"
#include "core/sim_types.h"
#include "net/topology.h"

namespace simany::check {

/// One wait-for relation. `to == net::kInvalidCore` means the waited-on
/// party cannot be resolved to a core (e.g. a group with no runnable
/// member task); `reason` always explains the wait.
struct WaitEdge {
  CoreId from = net::kInvalidCore;
  CoreId to = net::kInvalidCore;
  std::string reason;
};

struct DeadlockReport {
  std::vector<WaitEdge> edges;
  /// A wait-for cycle if one exists: c0 -> c1 -> ... -> c0 (first core
  /// repeated at the end). Empty when the stall is acyclic (resource
  /// starvation / lost wake rather than circular wait).
  std::vector<CoreId> cycle;
  /// Every core still holding pending work is permanently disabled by
  /// the run's fault plan: the stall is an injected failure mode, not
  /// a protocol deadlock.
  bool all_dead_partition = false;
  std::string summary;

  [[nodiscard]] bool has_cycle() const noexcept { return !cycle.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Builds the wait-for graph from a frozen snapshot and looks for a
/// cycle. Pure function of the snapshot; usable on fabricated states.
[[nodiscard]] DeadlockReport analyze_deadlock(const EngineInspect& state,
                                              const net::Topology& topo);

/// Thrown by InvariantChecker::on_deadlock in place of the engine's
/// plain runtime_error. what() carries the full report text.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(DeadlockReport report);
  [[nodiscard]] const DeadlockReport& report() const noexcept {
    return report_;
  }

 private:
  DeadlockReport report_;
};

}  // namespace simany::check
