// Conservation re-verification for critical-path reports (simcheck).
//
// analyze_critical_path() attributes every tick of a run's completion
// time to exactly one cause segment — a property the analyzer
// establishes by construction (backward walk over contiguous
// intervals). check_critpath() re-derives it independently from the
// finished report: segments must be sorted, gap-free and overlap-free,
// start at virtual time zero, end exactly at the run's completion
// time, and the per-cause tick totals must re-sum to the same value.
// Any disagreement is reported as an Invariant::kConservation
// violation, mirroring the engine's own accounting audits.
#pragma once

#include <vector>

#include "check/invariant_checker.h"
#include "core/vtime.h"

namespace simany::obs {
struct CritPathReport;
}

namespace simany::check {

/// Verifies the report's conservation properties against the run's
/// completion time (`completion_ticks`, SimStats::completion in
/// ticks). Returns every violation found (empty = report is sound).
[[nodiscard]] std::vector<Violation> check_critpath(
    const obs::CritPathReport& report, Tick completion_ticks);

}  // namespace simany::check
