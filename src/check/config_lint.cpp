#include "check/config_lint.h"

#include <numeric>
#include <sstream>

namespace simany::check {

namespace {

/// Union-find over core ids, for zero-latency-cycle detection.
class DisjointSet {
 public:
  explicit DisjointSet(std::uint32_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Returns false when a and b were already connected (union closes a
  /// cycle).
  bool unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::uint32_t> parent_;
};

class Linter {
 public:
  explicit Linter(const ArchConfig& cfg) : cfg_(cfg) {}

  std::vector<LintDiag> run() {
    const net::Topology& topo = cfg_.topology;
    const std::uint32_t n = topo.num_cores();

    // -- Topology shape ------------------------------------------------
    if (n == 0) {
      error("SC001", "topology has no cores",
            "construct the topology with at least one core");
      return std::move(diags_);  // nothing else is checkable
    }
    if (!topo.connected()) {
      error("SC002",
            "topology is disconnected: some cores cannot reach others",
            "add links until every core is reachable; disconnected "
            "cores can never receive spawns and spatial sync degenerates");
    }
    for (net::CoreId c = 0; c < n; ++c) {
      if (n > 1 && topo.neighbors(c).empty()) {
        std::ostringstream os;
        os << "core " << c << " has no links";
        error("SC003", os.str(),
              "isolated cores silently contribute nothing to the "
              "simulated machine");
        break;  // SC002 already covers the rest; one example suffices
      }
    }

    // -- Link properties ----------------------------------------------
    DisjointSet zero_links(n);
    bool zero_cycle = false;
    for (net::LinkId l = 0; l < topo.num_links(); ++l) {
      const net::Link& link = topo.link(l);
      if (link.props.bandwidth_bytes_per_cycle == 0) {
        std::ostringstream os;
        os << "link " << link.a << "-" << link.b << " has zero bandwidth";
        error("SC004", os.str(),
              "serialization delay divides by bandwidth; use >= 1 "
              "byte/cycle");
      }
      if (link.props.latency == 0 &&
          !zero_links.unite(link.a, link.b)) {
        zero_cycle = true;
      }
    }
    if (zero_cycle) {
      error("SC005", "zero-latency links form a cycle",
            "messages could circulate without virtual time passing; "
            "give at least one link in every cycle a nonzero latency");
    }

    // -- Spatial synchronization --------------------------------------
    if (cfg_.drift_t_cycles == 0 && topo.diameter() >= 1) {
      error("SC006",
            "drift bound T is 0 on a multi-hop topology",
            "with T=0 no core may ever lead a neighbor, so any compute "
            "annotation stalls forever; the paper's reference value is "
            "T=100 cycles");
    }
    if (ticks(cfg_.drift_t_cycles) == kTickInfinity) {
      error("SC007", "drift bound T saturates the tick range",
            "T*kTicksPerCycle must stay below 2^64-1 ticks for drift "
            "windows to be meaningful");
    }

    // -- Core speeds ---------------------------------------------------
    if (!cfg_.core_speeds.empty() && cfg_.core_speeds.size() != n) {
      std::ostringstream os;
      os << "core_speeds has " << cfg_.core_speeds.size()
         << " entries for " << n << " cores";
      error("SC008", os.str(),
            "leave core_speeds empty for uniform speed or provide one "
            "rational per core");
    }
    for (std::size_t i = 0; i < cfg_.core_speeds.size(); ++i) {
      const Speed s = cfg_.core_speeds[i];
      if (s.num == 0 || s.den == 0) {
        std::ostringstream os;
        os << "core " << i << " has speed " << s.num << "/" << s.den;
        error("SC009", os.str(),
              "speed numerator and denominator must both be nonzero");
        continue;
      }
      // A one-cycle cost on this core is kTicksPerCycle * den / num
      // ticks; when num does not divide that, costs round up per block
      // and accumulated virtual time depends on annotation granularity.
      if ((kTicksPerCycle * s.den) % s.num != 0) {
        std::ostringstream os;
        os << "core " << i << " speed " << s.num << "/" << s.den
           << " is not exactly representable on the " << kTicksPerCycle
           << "-ticks-per-cycle grid";
        warn("SC010", os.str(),
             "per-block round-up makes timing depend on annotation "
             "granularity; prefer speeds whose numerator divides "
             "kTicksPerCycle*den (2, 3, 4, 6, 12, ...)");
      }
    }

    // -- Run-time system ----------------------------------------------
    if (cfg_.runtime.task_queue_capacity == 0) {
      error("SC011", "task_queue_capacity is 0",
            "probes can never reserve a slot, so no task can ever be "
            "spawned remotely");
    }

    // -- Memory & network ---------------------------------------------
    if (cfg_.mem.line_bytes == 0) {
      error("SC012", "cache line_bytes is 0",
            "line-granularity math divides by line_bytes");
    } else if ((cfg_.mem.line_bytes & (cfg_.mem.line_bytes - 1)) != 0) {
      std::ostringstream os;
      os << "cache line_bytes " << cfg_.mem.line_bytes
         << " is not a power of two";
      warn("SC013", os.str(),
           "set-associative index/tag splitting assumes power-of-two "
           "lines");
    }
    if (cfg_.network.chunk_bytes == 0) {
      error("SC014", "network chunk_bytes is 0",
            "messages are cut into chunks; chunking divides by "
            "chunk_bytes");
    }

    // -- Simulator knobs ----------------------------------------------
    if (cfg_.cl_quantum_cycles == 0) {
      warn("SC015", "cl_quantum_cycles is 0",
           "the cycle-level scheduler clamps it to 1; set it explicitly "
           "to the intended chopping quantum");
    }
    if (cfg_.fiber_stack_bytes < 64 * 1024) {
      std::ostringstream os;
      os << "fiber_stack_bytes " << cfg_.fiber_stack_bytes
         << " is below 64 KiB";
      warn("SC016", os.str(),
           "task bodies run natively on these stacks; deep call chains "
           "will overflow silently");
    }

    return std::move(diags_);
  }

 private:
  void error(const char* code, std::string message, std::string hint) {
    diags_.push_back({LintSeverity::kError, code, std::move(message),
                      std::move(hint)});
  }
  void warn(const char* code, std::string message, std::string hint) {
    diags_.push_back({LintSeverity::kWarning, code, std::move(message),
                      std::move(hint)});
  }

  const ArchConfig& cfg_;
  std::vector<LintDiag> diags_;
};

}  // namespace

std::vector<LintDiag> lint_config(const ArchConfig& cfg) {
  return Linter(cfg).run();
}

bool has_errors(const std::vector<LintDiag>& diags) noexcept {
  for (const LintDiag& d : diags) {
    if (d.severity == LintSeverity::kError) return true;
  }
  return false;
}

std::string format_diags(const std::vector<LintDiag>& diags) {
  std::ostringstream os;
  for (const LintDiag& d : diags) {
    os << (d.severity == LintSeverity::kError ? "error " : "warning ")
       << d.code << ": " << d.message;
    if (!d.hint.empty()) os << " (" << d.hint << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace simany::check
