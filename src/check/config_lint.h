// Static configuration lint for ArchConfig / topology.
//
// ArchConfig::validate() rejects configurations the engine cannot run
// at all; lint_config goes further and flags configurations that run
// but simulate something degenerate or subtly wrong: disconnected or
// isolated cores, zero-latency link cycles, a zero drift bound on a
// multi-hop mesh (guaranteed spatial-sync deadlock pressure), speed
// rationals the tick grid cannot represent exactly (nondeterministic
// rounding across configs), saturating drift windows, and similar.
//
// Each diagnostic carries a stable SCxxx code (useful in CI logs and
// tests), a severity, a message and a remediation hint.
#pragma once

#include <string>
#include <vector>

#include "config/arch_config.h"

namespace simany::check {

enum class LintSeverity : std::uint8_t {
  kWarning,  // legal but probably not what was intended
  kError,    // will misbehave: refuse to run this configuration
};

struct LintDiag {
  LintSeverity severity = LintSeverity::kWarning;
  /// Stable diagnostic code, "SC001"... — grep-able and test-able.
  const char* code = "";
  std::string message;
  std::string hint;
};

/// Runs every lint rule; diagnostics are ordered by rule code.
[[nodiscard]] std::vector<LintDiag> lint_config(const ArchConfig& cfg);

[[nodiscard]] bool has_errors(const std::vector<LintDiag>& diags) noexcept;

/// One line per diagnostic: "error SC003: <message> (<hint>)".
[[nodiscard]] std::string format_diags(const std::vector<LintDiag>& diags);

}  // namespace simany::check
