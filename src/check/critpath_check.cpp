#include "check/critpath_check.h"

#include <array>
#include <string>

#include "obs/critpath.h"

namespace simany::check {

namespace {

void add(std::vector<Violation>& out, CoreId core, std::string detail) {
  Violation v;
  v.invariant = Invariant::kConservation;
  v.core = core;
  v.detail = "critpath conservation: " + std::move(detail);
  out.push_back(std::move(v));
}

}  // namespace

std::vector<Violation> check_critpath(const obs::CritPathReport& r,
                                      Tick completion_ticks) {
  std::vector<Violation> out;

  if (r.total_ticks != completion_ticks) {
    add(out, r.terminal_core,
        "report total " + std::to_string(r.total_ticks) +
            " != run completion " + std::to_string(completion_ticks));
  }

  if (r.segments.empty()) {
    if (r.total_ticks != 0) {
      add(out, r.terminal_core,
          "empty segment list but total " + std::to_string(r.total_ticks));
    }
    return out;
  }

  if (r.segments.front().t0 != 0) {
    add(out, r.segments.front().core,
        "first segment starts at " +
            std::to_string(r.segments.front().t0) + ", not 0");
  }
  if (r.segments.back().t1 != r.total_ticks) {
    add(out, r.segments.back().core,
        "last segment ends at " + std::to_string(r.segments.back().t1) +
            ", total is " + std::to_string(r.total_ticks));
  }

  Tick seg_sum = 0;
  std::array<Tick, obs::kNumCritCauses> cause_sum{};
  for (std::size_t i = 0; i < r.segments.size(); ++i) {
    const obs::CritSegment& s = r.segments[i];
    if (s.t1 < s.t0) {
      add(out, s.core,
          "segment " + std::to_string(i) + " inverted [" +
              std::to_string(s.t0) + ", " + std::to_string(s.t1) + ")");
      continue;
    }
    if (i > 0 && s.t0 != r.segments[i - 1].t1) {
      add(out, s.core,
          "segment " + std::to_string(i) + " starts at " +
              std::to_string(s.t0) + " but previous ended at " +
              std::to_string(r.segments[i - 1].t1));
    }
    seg_sum += s.len();
    const auto c = static_cast<std::size_t>(s.cause);
    if (c >= obs::kNumCritCauses) {
      add(out, s.core,
          "segment " + std::to_string(i) + " has out-of-range cause " +
              std::to_string(c));
      continue;
    }
    cause_sum[c] += s.len();
  }

  if (seg_sum != r.total_ticks) {
    add(out, r.terminal_core,
        "segment lengths sum to " + std::to_string(seg_sum) +
            ", total is " + std::to_string(r.total_ticks));
  }
  Tick cause_total = 0;
  for (std::size_t c = 0; c < obs::kNumCritCauses; ++c) {
    cause_total += r.cause_ticks[c];
    if (r.cause_ticks[c] != cause_sum[c]) {
      add(out, r.terminal_core,
          std::string("cause ") + obs::to_string(
              static_cast<obs::CritCause>(c)) +
              " books " + std::to_string(r.cause_ticks[c]) +
              " ticks, segments carry " + std::to_string(cause_sum[c]));
    }
  }
  if (cause_total != r.total_ticks) {
    add(out, r.terminal_core,
        "cause totals sum to " + std::to_string(cause_total) +
            ", total is " + std::to_string(r.total_ticks));
  }
  return out;
}

}  // namespace simany::check
