// Message timing over the interconnect, with per-link contention.
//
// Every architectural message (task spawn, probe, data request/response,
// ...) is timed hop by hop along its shortest-path route. Each directed
// link keeps a next-free tick; a message occupies the link for its
// serialization time, so concurrent traffic queues up — the paper calls
// out that, unlike BigSim, SiMany models contention on individual links
// (SS VII). Chunking and router penalty are tunable per paper SS III.
#pragma once

#include <cstdint>
#include <vector>

#include "core/vtime.h"
#include "net/routing.h"
#include "net/topology.h"

namespace simany::net {

struct NetworkParams {
  /// Fixed per-hop router processing cost.
  Cycles router_penalty_cycles = 1;
  /// Messages are cut into chunks of this many bytes.
  std::uint32_t chunk_bytes = 64;
  /// Per-chunk processing cost added at each hop.
  Cycles chunk_process_cycles = 1;
  /// When false, links are treated as infinitely wide (no queueing);
  /// serialization delay still applies.
  bool model_contention = true;
  /// Route selection: minimal hops (default, XY-like) or minimal
  /// accumulated link latency (detours around slow links).
  RouteWeighting routing = RouteWeighting::kHops;
};

struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hops = 0;
  /// Total ticks messages spent queued behind busy links.
  Tick contention_ticks = 0;
};

class Network {
 public:
  Network(const Topology& topo, NetworkParams params = {});

  /// Timing for a `bytes`-sized message leaving `src` at `depart`
  /// toward `dst`. Updates link occupancy. Returns the arrival tick at
  /// `dst`. src == dst is legal and returns `depart` (local delivery).
  Tick send(CoreId src, CoreId dst, std::uint32_t bytes, Tick depart);

  /// Pure timing query: what would arrival be without booking the links.
  [[nodiscard]] Tick estimate(CoreId src, CoreId dst, std::uint32_t bytes,
                              Tick depart) const;

  [[nodiscard]] const RoutingTable& routing() const noexcept {
    return routing_;
  }
  [[nodiscard]] const Topology& topology() const noexcept { return *topo_; }
  [[nodiscard]] const NetworkParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }

  /// Clears contention state and statistics (links become free).
  void reset();

 private:
  struct DirectedOccupancy {
    Tick next_free_fwd = 0;  // a -> b
    Tick next_free_rev = 0;  // b -> a
  };

  /// Serialization + chunk-processing cost of a message on one link.
  [[nodiscard]] Tick transfer_ticks(const LinkProps& props,
                                    std::uint32_t bytes) const;

  Tick route(CoreId src, CoreId dst, std::uint32_t bytes, Tick depart,
             bool book, NetworkStats* stats,
             std::vector<DirectedOccupancy>* occupancy) const;

  const Topology* topo_;
  RoutingTable routing_;
  NetworkParams params_;
  mutable std::vector<DirectedOccupancy> occupancy_;
  NetworkStats stats_;
};

}  // namespace simany::net
