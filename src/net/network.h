// Message timing over the interconnect, with per-link contention.
//
// Every architectural message (task spawn, probe, data request/response,
// ...) is timed hop by hop along its shortest-path route. Each directed
// link keeps a next-free tick; a message occupies the link for its
// serialization time, so concurrent traffic queues up — the paper calls
// out that, unlike BigSim, SiMany models contention on individual links
// (SS VII). Chunking and router penalty are tunable per paper SS III.
//
// Contention state lives in a Lane: a private copy of every directed
// link's next-free tick plus the traffic statistics accumulated through
// it. The sequential engine uses the network's built-in default lane;
// the parallel host gives each shard its own lane so booking links never
// shares mutable state across host threads, and merges the per-lane
// statistics at the end of the run.
#pragma once

#include <cstdint>
#include <vector>

#include "core/vtime.h"
#include "net/routing.h"
#include "net/topology.h"

namespace simany::net {

struct NetworkParams {
  /// Fixed per-hop router processing cost.
  Cycles router_penalty_cycles = 1;
  /// Messages are cut into chunks of this many bytes.
  std::uint32_t chunk_bytes = 64;
  /// Per-chunk processing cost added at each hop.
  Cycles chunk_process_cycles = 1;
  /// When false, links are treated as infinitely wide (no queueing);
  /// serialization delay still applies.
  bool model_contention = true;
  /// Route selection: minimal hops (default, XY-like) or minimal
  /// accumulated link latency (detours around slow links).
  RouteWeighting routing = RouteWeighting::kHops;
};

struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hops = 0;
  /// Total ticks messages spent queued behind busy links.
  Tick contention_ticks = 0;

  void merge(const NetworkStats& o) noexcept {
    messages += o.messages;
    bytes += o.bytes;
    hops += o.hops;
    contention_ticks = sat_add(contention_ticks, o.contention_ticks);
  }
};

class Network {
 public:
  struct DirectedOccupancy {
    Tick next_free_fwd = 0;  // a -> b
    Tick next_free_rev = 0;  // b -> a
  };

  /// Independent contention state + statistics. Lanes never alias, so
  /// concurrent host threads may each book links on their own lane.
  struct Lane {
    std::vector<DirectedOccupancy> occupancy;
    NetworkStats stats;
  };

  Network(const Topology& topo, NetworkParams params = {});

  /// A fresh lane (all links free) sized for this topology.
  [[nodiscard]] Lane make_lane() const {
    return Lane{std::vector<DirectedOccupancy>(topo_->num_links()), {}};
  }

  /// Timing for a `bytes`-sized message leaving `src` at `depart`
  /// toward `dst`, booking links on `lane`. Returns the arrival tick at
  /// `dst`. src == dst is legal and returns `depart` (local delivery).
  Tick send_on(Lane& lane, CoreId src, CoreId dst, std::uint32_t bytes,
               Tick depart) const;

  /// Pure timing query against `lane` without booking the links.
  [[nodiscard]] Tick estimate_on(const Lane& lane, CoreId src, CoreId dst,
                                 std::uint32_t bytes, Tick depart) const;

  /// Convenience wrappers over the built-in default lane (sequential
  /// engine path).
  Tick send(CoreId src, CoreId dst, std::uint32_t bytes, Tick depart) {
    return send_on(lane_, src, dst, bytes, depart);
  }
  [[nodiscard]] Tick estimate(CoreId src, CoreId dst, std::uint32_t bytes,
                              Tick depart) const {
    return estimate_on(lane_, src, dst, bytes, depart);
  }

  [[nodiscard]] const RoutingTable& routing() const noexcept {
    return routing_;
  }
  [[nodiscard]] const Topology& topology() const noexcept { return *topo_; }
  [[nodiscard]] const NetworkParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] const NetworkStats& stats() const noexcept {
    return lane_.stats;
  }
  [[nodiscard]] Lane& default_lane() noexcept { return lane_; }

  /// Clears the default lane's contention state and statistics.
  void reset();

 private:
  /// Serialization + chunk-processing cost of a message on one link.
  [[nodiscard]] Tick transfer_ticks(const LinkProps& props,
                                    std::uint32_t bytes) const;

  Tick route(CoreId src, CoreId dst, std::uint32_t bytes, Tick depart,
             bool book, NetworkStats* stats,
             std::vector<DirectedOccupancy>* occupancy) const;

  const Topology* topo_;
  RoutingTable routing_;
  NetworkParams params_;
  Lane lane_;
};

}  // namespace simany::net
