#include "net/routing.h"

#include <deque>
#include <queue>
#include <stdexcept>

namespace simany::net {

namespace {

/// One dimension-ordered step along a wrapping dimension of `size`
/// nodes: the shorter way around, ties toward increasing coordinates.
/// With size == 2 both directions name the same node, which is why
/// torus2d legitimately omits wrap links in 2-wide dimensions.
std::uint32_t ring_step(std::uint32_t cur, std::uint32_t dst,
                        std::uint32_t size) noexcept {
  const std::uint32_t fwd = (dst + size - cur) % size;
  const std::uint32_t bwd = size - fwd;
  return fwd <= bwd ? (cur + 1) % size : (cur + size - 1) % size;
}

std::uint32_t ring_dist(std::uint32_t cur, std::uint32_t dst,
                        std::uint32_t size) noexcept {
  const std::uint32_t fwd = (dst + size - cur) % size;
  return fwd <= size - fwd ? fwd : size - fwd;
}

std::uint32_t abs_diff(std::uint32_t a, std::uint32_t b) noexcept {
  return a > b ? a - b : b - a;
}

}  // namespace

RoutingTable::RoutingTable(const Topology& topo, RouteWeighting weighting)
    : n_(topo.num_cores()),
      weighting_(weighting),
      regular_(topo.regular()) {
  if (!topo.connected()) {
    throw std::invalid_argument("RoutingTable: topology is not connected");
  }
  // Closed form needs minimal-hop semantics and route choices that
  // cannot depend on per-link timing.
  closed_form_ = weighting_ == RouteWeighting::kHops &&
                 regular_.form != RegularForm::kNone &&
                 regular_.uniform_links;
  if (closed_form_) return;
  // CSR snapshot for lazy row builds. Appending both directions of
  // each link in id order reproduces Topology's per-node adjacency
  // insertion order exactly — the tie-break order the former eager
  // build used.
  const std::uint32_t m = topo.num_links();
  adj_offset_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (LinkId l = 0; l < m; ++l) {
    const Link& lk = topo.link(l);
    ++adj_offset_[lk.a + 1];
    ++adj_offset_[lk.b + 1];
  }
  for (std::uint32_t c = 0; c < n_; ++c) adj_offset_[c + 1] += adj_offset_[c];
  adj_.resize(static_cast<std::size_t>(m) * 2);
  adj_latency_.resize(static_cast<std::size_t>(m) * 2);
  std::vector<std::uint32_t> fill(adj_offset_.begin(), adj_offset_.end() - 1);
  for (LinkId l = 0; l < m; ++l) {
    const Link& lk = topo.link(l);
    adj_[fill[lk.a]] = lk.b;
    adj_latency_[fill[lk.a]++] = lk.props.latency;
    adj_[fill[lk.b]] = lk.a;
    adj_latency_[fill[lk.b]++] = lk.props.latency;
  }
  rows_ = std::vector<std::atomic<Row*>>(n_);
}

RoutingTable::~RoutingTable() {
  for (auto& slot : rows_) {
    delete slot.load(std::memory_order_acquire);
  }
}

std::size_t RoutingTable::rows_built() const noexcept {
  std::size_t built = 0;
  for (const auto& slot : rows_) {
    if (slot.load(std::memory_order_acquire) != nullptr) ++built;
  }
  return built;
}

CoreId RoutingTable::dor_next(CoreId from, CoreId to) const noexcept {
  const std::uint32_t cols = regular_.cols;
  switch (regular_.form) {
    case RegularForm::kCrossbar:
      return to;
    case RegularForm::kRing:
      return ring_step(from, to, regular_.cols);
    case RegularForm::kMesh2D: {
      const std::uint32_t fr = from / cols, fc = from % cols;
      const std::uint32_t tr = to / cols, tc = to % cols;
      if (fc != tc) return fr * cols + (fc < tc ? fc + 1 : fc - 1);
      return (fr < tr ? fr + 1 : fr - 1) * cols + fc;
    }
    case RegularForm::kTorus2D: {
      const std::uint32_t fr = from / cols, fc = from % cols;
      const std::uint32_t tr = to / cols, tc = to % cols;
      if (fc != tc) return fr * cols + ring_step(fc, tc, cols);
      return ring_step(fr, tr, regular_.rows) * cols + fc;
    }
    case RegularForm::kNone: break;
  }
  return kInvalidCore;  // unreachable: closed_form_ implies a form
}

std::uint32_t RoutingTable::dor_hops(CoreId from, CoreId to) const noexcept {
  const std::uint32_t cols = regular_.cols;
  switch (regular_.form) {
    case RegularForm::kCrossbar:
      return from == to ? 0 : 1;
    case RegularForm::kRing:
      return ring_dist(from, to, regular_.cols);
    case RegularForm::kMesh2D:
      return abs_diff(from / cols, to / cols) +
             abs_diff(from % cols, to % cols);
    case RegularForm::kTorus2D:
      return ring_dist(from / cols, to / cols, regular_.rows) +
             ring_dist(from % cols, to % cols, cols);
    case RegularForm::kNone: break;
  }
  return 0;  // unreachable: closed_form_ implies a form
}

std::unique_ptr<RoutingTable::Row> RoutingTable::build_row(CoreId to) const {
  auto row = std::make_unique<Row>();
  row->next.assign(n_, kInvalidCore);
  row->dist.assign(n_, ~std::uint32_t{0});
  if (weighting_ == RouteWeighting::kHops) {
    // BFS rooted at the destination: for every core we record the
    // first hop of a shortest path toward `to`. Scanning neighbors in
    // insertion order with a FIFO queue makes the choice
    // deterministic.
    std::deque<CoreId> queue{to};
    row->dist[to] = 0;
    row->next[to] = to;
    while (!queue.empty()) {
      const CoreId c = queue.front();
      queue.pop_front();
      for (std::uint32_t e = adj_offset_[c]; e < adj_offset_[c + 1]; ++e) {
        const CoreId nb = adj_[e];
        if (row->dist[nb] == ~std::uint32_t{0}) {
          row->dist[nb] = row->dist[c] + 1;
          row->next[nb] = c;  // step from nb toward `to` via c
          queue.push_back(nb);
        }
      }
    }
    return row;
  }
  // Latency weighting: Dijkstra rooted at the destination, with
  // deterministic (cost, node-id) ordering. dist records the hop count
  // *of the chosen route*.
  std::vector<Tick> cost(n_, kTickInfinity);
  using Item = std::pair<Tick, CoreId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  cost[to] = 0;
  row->dist[to] = 0;
  row->next[to] = to;
  pq.emplace(0, to);
  while (!pq.empty()) {
    const auto [c_cost, c] = pq.top();
    pq.pop();
    if (c_cost != cost[c]) continue;
    for (std::uint32_t e = adj_offset_[c]; e < adj_offset_[c + 1]; ++e) {
      const CoreId nb = adj_[e];
      const Tick nc = c_cost + adj_latency_[e];
      // Strict improvement only: ties resolve by the deterministic
      // (cost, node-id) pop order and neighbor scan order.
      if (nc < cost[nb]) {
        cost[nb] = nc;
        row->next[nb] = c;
        row->dist[nb] = row->dist[c] + 1;
        pq.emplace(nc, nb);
      }
    }
  }
  return row;
}

const RoutingTable::Row& RoutingTable::row(CoreId to) const {
  std::atomic<Row*>& slot = rows_[to];
  if (Row* existing = slot.load(std::memory_order_acquire)) {
    return *existing;
  }
  std::unique_ptr<Row> built = build_row(to);
  Row* expected = nullptr;
  if (slot.compare_exchange_strong(expected, built.get(),
                                   std::memory_order_release,
                                   std::memory_order_acquire)) {
    return *built.release();
  }
  // Another worker installed this destination first; both builds are
  // bit-identical, so ours is simply discarded.
  return *expected;
}

CoreId RoutingTable::next_hop(CoreId from, CoreId to) const {
  if (from >= n_ || to >= n_) {
    throw std::out_of_range("RoutingTable::next_hop: core id out of range");
  }
  if (from == to) return to;
  if (closed_form_) return dor_next(from, to);
  return row(to).next[from];
}

std::vector<CoreId> RoutingTable::path(CoreId from, CoreId to) const {
  std::vector<CoreId> result;
  CoreId cur = from;
  while (cur != to) {
    cur = next_hop(cur, to);
    result.push_back(cur);
  }
  return result;
}

std::uint32_t RoutingTable::hops(CoreId from, CoreId to) const {
  if (from >= n_ || to >= n_) {
    throw std::out_of_range("RoutingTable::hops: core id out of range");
  }
  if (from == to) return 0;
  if (closed_form_) return dor_hops(from, to);
  return row(to).dist[from];
}

}  // namespace simany::net
