#include "net/routing.h"

#include <deque>
#include <queue>
#include <stdexcept>

namespace simany::net {

RoutingTable::RoutingTable(const Topology& topo, RouteWeighting weighting)
    : n_(topo.num_cores()),
      weighting_(weighting),
      next_(static_cast<std::size_t>(n_) * n_, kInvalidCore),
      dist_(static_cast<std::size_t>(n_) * n_, ~std::uint32_t{0}) {
  if (!topo.connected()) {
    throw std::invalid_argument("RoutingTable: topology is not connected");
  }
  if (weighting_ == RouteWeighting::kHops) {
    // BFS rooted at each destination `to`: for every core we record
    // the first hop of a shortest path toward `to`. Scanning neighbors
    // in insertion order with a FIFO queue makes the choice
    // deterministic.
    for (CoreId to = 0; to < n_; ++to) {
      std::deque<CoreId> queue{to};
      dist_[idx(to, to)] = 0;
      next_[idx(to, to)] = to;
      while (!queue.empty()) {
        const CoreId c = queue.front();
        queue.pop_front();
        for (CoreId nb : topo.neighbors(c)) {
          if (dist_[idx(nb, to)] == ~std::uint32_t{0}) {
            dist_[idx(nb, to)] = dist_[idx(c, to)] + 1;
            next_[idx(nb, to)] = c;  // step from nb toward `to` via c
            queue.push_back(nb);
          }
        }
      }
    }
    return;
  }
  // Latency weighting: Dijkstra rooted at each destination, with
  // deterministic (cost, node-id) ordering. dist_ records the hop
  // count *of the chosen route*.
  std::vector<Tick> cost(n_);
  for (CoreId to = 0; to < n_; ++to) {
    std::fill(cost.begin(), cost.end(), kTickInfinity);
    using Item = std::pair<Tick, CoreId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    cost[to] = 0;
    dist_[idx(to, to)] = 0;
    next_[idx(to, to)] = to;
    pq.emplace(0, to);
    while (!pq.empty()) {
      const auto [c_cost, c] = pq.top();
      pq.pop();
      if (c_cost != cost[c]) continue;
      for (CoreId nb : topo.neighbors(c)) {
        const auto link = topo.link_between(c, nb);
        const Tick w = topo.link(*link).props.latency;
        const Tick nc = c_cost + w;
        // Strict improvement only: ties resolve by the deterministic
        // (cost, node-id) pop order and neighbor scan order.
        if (nc < cost[nb]) {
          cost[nb] = nc;
          next_[idx(nb, to)] = c;
          dist_[idx(nb, to)] = dist_[idx(c, to)] + 1;
          pq.emplace(nc, nb);
        }
      }
    }
  }
}

CoreId RoutingTable::next_hop(CoreId from, CoreId to) const {
  if (from >= n_ || to >= n_) {
    throw std::out_of_range("RoutingTable::next_hop: core id out of range");
  }
  return next_[idx(from, to)];
}

std::vector<CoreId> RoutingTable::path(CoreId from, CoreId to) const {
  std::vector<CoreId> result;
  CoreId cur = from;
  while (cur != to) {
    cur = next_hop(cur, to);
    result.push_back(cur);
  }
  return result;
}

std::uint32_t RoutingTable::hops(CoreId from, CoreId to) const {
  if (from >= n_ || to >= n_) {
    throw std::out_of_range("RoutingTable::hops: core id out of range");
  }
  return dist_[idx(from, to)];
}

}  // namespace simany::net
