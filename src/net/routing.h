// Deterministic shortest-path routing over an arbitrary topology.
//
// Regular fabrics (the common case: uniform meshes, tori, rings,
// crossbars from the Topology presets) are routed in *closed form* —
// dimension-ordered arithmetic per hop, no table at all — so a
// 1024-core mesh pays nothing up front instead of ~35 ms of O(n^2) BFS
// precompute, and a MuchiSim-scale multi-chip target pays nothing
// instead of minutes. Irregular graphs fall back to next-hop table
// rows built lazily, one search per *requested destination*, installed
// with a CAS so concurrent shard workers can share the table without
// locks (row contents are deterministic, so the install winner is
// irrelevant).
//
// Closed-form routes are dimension-ordered: column (X) first, then row
// (Y); tori and rings take the shorter way around with ties broken
// toward increasing ids. Table rows break ties toward the first
// neighbor in link insertion order. Both are pure functions of the
// topology, so every run routes identically — the property the engine's
// determinism contract needs.
//
// Two weightings:
//  * kHops (default) — minimal hop count, like XY/dimension-ordered
//    routing in real meshes (and what the paper's uniform meshes
//    imply);
//  * kLatency — minimal accumulated link latency, which can prefer a
//    longer-hop detour around slow links (useful on clustered or
//    irregular interconnects). Always table-driven.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/topology.h"

namespace simany::net {

enum class RouteWeighting : std::uint8_t {
  kHops,     // fewest links
  kLatency,  // smallest summed link latency
};

class RoutingTable {
 public:
  explicit RoutingTable(const Topology& topo,
                        RouteWeighting weighting = RouteWeighting::kHops);
  ~RoutingTable();
  RoutingTable(const RoutingTable&) = delete;
  RoutingTable& operator=(const RoutingTable&) = delete;

  /// Next core on the shortest path from `from` toward `to`.
  /// Returns `to` when from == to. Safe to call concurrently.
  [[nodiscard]] CoreId next_hop(CoreId from, CoreId to) const;

  /// Full path from `from` to `to`, excluding `from`, including `to`.
  [[nodiscard]] std::vector<CoreId> path(CoreId from, CoreId to) const;

  /// Hop count between two cores (count of links on the chosen route;
  /// under kLatency weighting this is the detour's length, not the
  /// topological distance).
  [[nodiscard]] std::uint32_t hops(CoreId from, CoreId to) const;

  [[nodiscard]] RouteWeighting weighting() const noexcept {
    return weighting_;
  }

  [[nodiscard]] std::uint32_t num_cores() const noexcept { return n_; }

  /// True when routes come from dimension-ordered arithmetic and no
  /// table row will ever be built.
  [[nodiscard]] bool closed_form() const noexcept { return closed_form_; }

  /// Table rows materialized so far (always 0 in closed form; grows on
  /// demand otherwise). Exposed for tests and benchmarks.
  [[nodiscard]] std::size_t rows_built() const noexcept;

 private:
  /// One destination's worth of routing data: for every source core,
  /// the first hop toward `to` and the hop count of the chosen route.
  struct Row {
    std::vector<CoreId> next;
    std::vector<std::uint32_t> dist;
  };

  [[nodiscard]] const Row& row(CoreId to) const;
  [[nodiscard]] std::unique_ptr<Row> build_row(CoreId to) const;
  [[nodiscard]] CoreId dor_next(CoreId from, CoreId to) const noexcept;
  [[nodiscard]] std::uint32_t dor_hops(CoreId from,
                                       CoreId to) const noexcept;

  std::uint32_t n_ = 0;
  RouteWeighting weighting_ = RouteWeighting::kHops;
  RegularInfo regular_;
  bool closed_form_ = false;

  // Compact CSR copy of the graph for lazy row builds (empty in closed
  // form). Neighbor order per node matches Topology's link insertion
  // order, so lazily built rows are bit-identical to the former eager
  // ones. Owning a copy keeps the table independent of the Topology's
  // lifetime.
  std::vector<std::uint32_t> adj_offset_;  // [n_+1]
  std::vector<CoreId> adj_;                // neighbor ids, 2 per link
  std::vector<Tick> adj_latency_;          // parallel to adj_ (kLatency)

  // Lazily installed rows, one atomic slot per destination.
  mutable std::vector<std::atomic<Row*>> rows_;
};

}  // namespace simany::net
