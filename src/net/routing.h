// Deterministic shortest-path routing over an arbitrary topology.
//
// Routes are precomputed as next-hop tables, one search per
// destination, with ties broken toward the lowest neighbor id so that
// every run routes identically. This supports the paper's "arbitrary
// network organizations" requirement while keeping per-message routing
// O(path length).
//
// Two weightings:
//  * kHops (default) — minimal hop count, like XY/dimension-ordered
//    routing in real meshes (and what the paper's uniform meshes
//    imply);
//  * kLatency — minimal accumulated link latency, which can prefer a
//    longer-hop detour around slow links (useful on clustered or
//    irregular interconnects).
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"

namespace simany::net {

enum class RouteWeighting : std::uint8_t {
  kHops,     // fewest links
  kLatency,  // smallest summed link latency
};

class RoutingTable {
 public:
  explicit RoutingTable(const Topology& topo,
                        RouteWeighting weighting = RouteWeighting::kHops);

  /// Next core on the shortest path from `from` toward `to`.
  /// Returns `to` when from == to.
  [[nodiscard]] CoreId next_hop(CoreId from, CoreId to) const;

  /// Full path from `from` to `to`, excluding `from`, including `to`.
  [[nodiscard]] std::vector<CoreId> path(CoreId from, CoreId to) const;

  /// Hop count between two cores (count of links on the chosen route;
  /// under kLatency weighting this is the detour's length, not the
  /// topological distance).
  [[nodiscard]] std::uint32_t hops(CoreId from, CoreId to) const;

  [[nodiscard]] RouteWeighting weighting() const noexcept {
    return weighting_;
  }

  [[nodiscard]] std::uint32_t num_cores() const noexcept { return n_; }

 private:
  [[nodiscard]] std::size_t idx(CoreId from, CoreId to) const noexcept {
    return static_cast<std::size_t>(from) * n_ + to;
  }
  std::uint32_t n_ = 0;
  RouteWeighting weighting_ = RouteWeighting::kHops;
  std::vector<CoreId> next_;           // [from][to] -> neighbor of from
  std::vector<std::uint32_t> dist_;    // [from][to] -> hop count
};

}  // namespace simany::net
