// Interconnect topology: an undirected graph of cores with per-link
// latency and bandwidth.
//
// The paper (SS III, "Architecture Variability") specifies topologies as
// adjacency matrices in configuration files, with independently tunable
// per-link latency and bandwidth, and exercises uniform 2D meshes,
// clustered meshes and polymorphic variants. This module provides the
// graph representation, those presets, a text-file format, and graph
// queries the engine needs (neighbor lists, diameter, connectivity).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/vtime.h"

namespace simany::net {

using CoreId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr CoreId kInvalidCore = ~CoreId{0};
inline constexpr LinkId kInvalidLink = ~LinkId{0};

/// Timing properties of one (undirected) link.
struct LinkProps {
  /// Traversal latency in ticks (sub-cycle values are legal: clustered
  /// meshes use 0.5-cycle intra-cluster links).
  Tick latency = kTicksPerCycle;
  /// Bytes transferred per cycle; serialization delay of a message is
  /// ceil(bytes / bandwidth) cycles. Paper baseline: 128 B/cycle.
  std::uint32_t bandwidth_bytes_per_cycle = 128;
};

/// One endpoint pair plus link properties.
struct Link {
  CoreId a = kInvalidCore;
  CoreId b = kInvalidCore;
  LinkProps props;
};

/// Recognized regular structure, if any. Preset builders stamp this
/// after wiring their links; any direct add_link() afterwards resets it
/// to kNone (the caller has made the graph irregular). RoutingTable
/// uses it to route regular fabrics in closed form — dimension-ordered
/// arithmetic instead of an O(cores^2) precomputed table.
enum class RegularForm : std::uint8_t {
  kNone,
  kMesh2D,    // rows x cols grid, row-major ids
  kTorus2D,   // mesh plus wrap links (only in dimensions of size > 2)
  kRing,      // cycle of cols nodes (rows == 1)
  kCrossbar,  // fully connected (rows == 1)
};

struct RegularInfo {
  RegularForm form = RegularForm::kNone;
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  /// Every link shares identical props. Closed-form routing requires
  /// this: with non-uniform links (clustered meshes) the latency-aware
  /// table may legitimately prefer detours, so those fall back to the
  /// lazily built table.
  bool uniform_links = false;
};

class Topology {
 public:
  Topology() = default;
  explicit Topology(std::uint32_t num_cores) : adjacency_(num_cores) {}

  /// Adds an undirected link between `a` and `b`. Duplicate links and
  /// self-loops are rejected.
  LinkId add_link(CoreId a, CoreId b, LinkProps props = {});

  [[nodiscard]] std::uint32_t num_cores() const noexcept {
    return static_cast<std::uint32_t>(adjacency_.size());
  }
  [[nodiscard]] std::uint32_t num_links() const noexcept {
    return static_cast<std::uint32_t>(links_.size());
  }

  /// Neighbor core ids of `c`, in insertion order (deterministic).
  [[nodiscard]] std::span<const CoreId> neighbors(CoreId c) const;

  /// Link between `a` and `b`, if any.
  [[nodiscard]] std::optional<LinkId> link_between(CoreId a, CoreId b) const;

  [[nodiscard]] const Link& link(LinkId id) const { return links_.at(id); }
  [[nodiscard]] Link& link(LinkId id) { return links_.at(id); }

  /// True if every core can reach every other core.
  [[nodiscard]] bool connected() const;

  /// Largest topological distance between any two cores (in hops).
  /// Returns 0 for a single-core topology.
  [[nodiscard]] std::uint32_t diameter() const;

  /// Hop distances from `src` to every core (BFS).
  [[nodiscard]] std::vector<std::uint32_t> distances_from(CoreId src) const;

  /// Regular structure stamped by the preset that built this topology
  /// (kNone for manual or parsed graphs, or after any later add_link).
  [[nodiscard]] const RegularInfo& regular() const noexcept {
    return regular_;
  }

  // ---- Presets ------------------------------------------------------

  /// Uniform 2D mesh. `cores` must be a perfect square or 2*square
  /// (e.g. 8 = 4x2); otherwise the closest rows x cols factorization
  /// with rows <= cols is used.
  static Topology mesh2d(std::uint32_t cores, LinkProps props = {});

  /// 2D mesh split into `clusters` square tiles: links whose endpoints
  /// lie in different tiles get `inter`, links inside a tile get
  /// `intra`. Paper SS V: inter-cluster 4 cycles, intra-cluster 0.5.
  static Topology clustered_mesh2d(std::uint32_t cores,
                                   std::uint32_t clusters, LinkProps intra,
                                   LinkProps inter);

  /// Ring of `cores` nodes.
  static Topology ring(std::uint32_t cores, LinkProps props = {});

  /// 2D torus (mesh with wrap-around links).
  static Topology torus2d(std::uint32_t cores, LinkProps props = {});

  /// Fully connected crossbar.
  static Topology crossbar(std::uint32_t cores, LinkProps props = {});

  /// Mesh side lengths used by mesh2d for a given core count.
  static std::pair<std::uint32_t, std::uint32_t> mesh_dims(
      std::uint32_t cores);

  // ---- Text format ---------------------------------------------------
  // Line-oriented:
  //   cores <N>
  //   link <a> <b> [latency_ticks [bandwidth]]
  //   # comments and blank lines ignored

  static Topology parse(std::istream& in);
  static Topology load_file(const std::string& path);
  void save(std::ostream& out) const;

 private:
  std::vector<std::vector<CoreId>> adjacency_;
  std::vector<std::vector<LinkId>> adjacent_links_;
  std::vector<Link> links_;
  RegularInfo regular_;
};

}  // namespace simany::net
