#include "net/network.h"

#include <algorithm>
#include <stdexcept>

namespace simany::net {

Network::Network(const Topology& topo, NetworkParams params)
    : topo_(&topo), routing_(topo, params.routing), params_(params) {
  lane_ = make_lane();
}

Tick Network::transfer_ticks(const LinkProps& props,
                             std::uint32_t bytes) const {
  if (bytes == 0) return 0;
  const std::uint32_t bw = props.bandwidth_bytes_per_cycle;
  const Cycles serialization = (bytes + bw - 1) / bw;
  const std::uint32_t chunks =
      (bytes + params_.chunk_bytes - 1) / params_.chunk_bytes;
  return ticks(serialization) + ticks(params_.chunk_process_cycles) * chunks;
}

Tick Network::route(CoreId src, CoreId dst, std::uint32_t bytes, Tick depart,
                    bool book, NetworkStats* stats,
                    std::vector<DirectedOccupancy>* occupancy) const {
  if (src == dst) return depart;
  Tick t = depart;
  CoreId cur = src;
  std::uint64_t hop_count = 0;
  Tick queued = 0;
  while (cur != dst) {
    const CoreId nxt = routing_.next_hop(cur, dst);
    const auto link_id = topo_->link_between(cur, nxt);
    if (!link_id) {
      throw std::logic_error("Network::route: next hop has no link");
    }
    const Link& link = topo_->link(*link_id);
    const Tick xfer = transfer_ticks(link.props, bytes);

    Tick start = t;
    if (params_.model_contention) {
      DirectedOccupancy& occ = (*occupancy)[*link_id];
      Tick& next_free = (link.a == cur) ? occ.next_free_fwd
                                        : occ.next_free_rev;
      start = std::max(t, next_free);
      queued += start - t;
      if (book) next_free = start + xfer;
    }
    t = start + link.props.latency + xfer +
        ticks(params_.router_penalty_cycles);
    cur = nxt;
    ++hop_count;
  }
  if (stats != nullptr) {
    ++stats->messages;
    stats->bytes += bytes;
    stats->hops += hop_count;
    stats->contention_ticks += queued;
  }
  return t;
}

Tick Network::send_on(Lane& lane, CoreId src, CoreId dst, std::uint32_t bytes,
                      Tick depart) const {
  return route(src, dst, bytes, depart, /*book=*/true, &lane.stats,
               &lane.occupancy);
}

Tick Network::estimate_on(const Lane& lane, CoreId src, CoreId dst,
                          std::uint32_t bytes, Tick depart) const {
  auto scratch = lane.occupancy;
  return route(src, dst, bytes, depart, /*book=*/false, nullptr, &scratch);
}

void Network::reset() {
  std::fill(lane_.occupancy.begin(), lane_.occupancy.end(),
            DirectedOccupancy{});
  lane_.stats = NetworkStats{};
}

}  // namespace simany::net
