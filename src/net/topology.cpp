#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace simany::net {

LinkId Topology::add_link(CoreId a, CoreId b, LinkProps props) {
  if (a >= num_cores() || b >= num_cores()) {
    throw std::out_of_range("Topology::add_link: core id out of range");
  }
  if (a == b) {
    throw std::invalid_argument("Topology::add_link: self-loop");
  }
  if (link_between(a, b).has_value()) {
    throw std::invalid_argument("Topology::add_link: duplicate link");
  }
  if (props.bandwidth_bytes_per_cycle == 0) {
    throw std::invalid_argument("Topology::add_link: zero bandwidth");
  }
  // Any externally added link invalidates a preset's regularity claim;
  // presets stamp regular_ after their own add_link calls.
  regular_ = RegularInfo{};
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{a, b, props});
  adjacent_links_.resize(adjacency_.size());
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  adjacent_links_[a].push_back(id);
  adjacent_links_[b].push_back(id);
  return id;
}

std::span<const CoreId> Topology::neighbors(CoreId c) const {
  return adjacency_.at(c);
}

std::optional<LinkId> Topology::link_between(CoreId a, CoreId b) const {
  if (a >= num_cores() || b >= num_cores()) return std::nullopt;
  if (a >= adjacent_links_.size()) return std::nullopt;
  for (LinkId id : adjacent_links_[a]) {
    const Link& l = links_[id];
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return id;
  }
  return std::nullopt;
}

std::vector<std::uint32_t> Topology::distances_from(CoreId src) const {
  constexpr auto kUnreached = ~std::uint32_t{0};
  std::vector<std::uint32_t> dist(num_cores(), kUnreached);
  if (src >= num_cores()) return dist;
  std::deque<CoreId> queue{src};
  dist[src] = 0;
  while (!queue.empty()) {
    const CoreId c = queue.front();
    queue.pop_front();
    for (CoreId n : neighbors(c)) {
      if (dist[n] == kUnreached) {
        dist[n] = dist[c] + 1;
        queue.push_back(n);
      }
    }
  }
  return dist;
}

bool Topology::connected() const {
  if (num_cores() <= 1) return true;
  const auto dist = distances_from(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == ~std::uint32_t{0}; });
}

std::uint32_t Topology::diameter() const {
  std::uint32_t best = 0;
  for (CoreId c = 0; c < num_cores(); ++c) {
    const auto dist = distances_from(c);
    for (std::uint32_t d : dist) {
      if (d == ~std::uint32_t{0}) {
        throw std::logic_error("Topology::diameter on disconnected graph");
      }
      best = std::max(best, d);
    }
  }
  return best;
}

std::pair<std::uint32_t, std::uint32_t> Topology::mesh_dims(
    std::uint32_t cores) {
  if (cores == 0) throw std::invalid_argument("mesh_dims: zero cores");
  auto rows = static_cast<std::uint32_t>(std::sqrt(double(cores)));
  while (rows > 1 && cores % rows != 0) --rows;
  return {rows, cores / rows};
}

Topology Topology::mesh2d(std::uint32_t cores, LinkProps props) {
  const auto [rows, cols] = mesh_dims(cores);
  Topology t(cores);
  auto id = [cols = cols](std::uint32_t r, std::uint32_t c) {
    return r * cols + c;
  };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.add_link(id(r, c), id(r, c + 1), props);
      if (r + 1 < rows) t.add_link(id(r, c), id(r + 1, c), props);
    }
  }
  t.regular_ = RegularInfo{RegularForm::kMesh2D, rows, cols, true};
  return t;
}

Topology Topology::clustered_mesh2d(std::uint32_t cores,
                                    std::uint32_t clusters, LinkProps intra,
                                    LinkProps inter) {
  if (clusters == 0) {
    throw std::invalid_argument("clustered_mesh2d: zero clusters");
  }
  const auto [rows, cols] = mesh_dims(cores);
  // Split the mesh into a grid of cluster tiles.
  const auto [crows, ccols] = mesh_dims(clusters);
  const std::uint32_t tile_r = (rows + crows - 1) / crows;
  const std::uint32_t tile_c = (cols + ccols - 1) / ccols;
  Topology t(cores);
  auto id = [cols = cols](std::uint32_t r, std::uint32_t c) {
    return r * cols + c;
  };
  auto cluster_of = [&](std::uint32_t r, std::uint32_t c) {
    return (r / tile_r) * ccols + (c / tile_c);
  };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        const bool cross = cluster_of(r, c) != cluster_of(r, c + 1);
        t.add_link(id(r, c), id(r, c + 1), cross ? inter : intra);
      }
      if (r + 1 < rows) {
        const bool cross = cluster_of(r, c) != cluster_of(r + 1, c);
        t.add_link(id(r, c), id(r + 1, c), cross ? inter : intra);
      }
    }
  }
  // Grid-shaped but non-uniform: latency-aware routing may prefer
  // detours here, so no closed-form claim (uniform_links = false).
  t.regular_ = RegularInfo{RegularForm::kMesh2D, rows, cols, false};
  return t;
}

Topology Topology::ring(std::uint32_t cores, LinkProps props) {
  Topology t(cores);
  if (cores == 1) {
    t.regular_ = RegularInfo{RegularForm::kRing, 1, cores, true};
    return t;
  }
  for (std::uint32_t c = 0; c + 1 < cores; ++c) t.add_link(c, c + 1, props);
  if (cores > 2) t.add_link(cores - 1, 0, props);
  t.regular_ = RegularInfo{RegularForm::kRing, 1, cores, true};
  return t;
}

Topology Topology::torus2d(std::uint32_t cores, LinkProps props) {
  const auto [rows, cols] = mesh_dims(cores);
  Topology t = mesh2d(cores, props);
  auto id = [cols = cols](std::uint32_t r, std::uint32_t c) {
    return r * cols + c;
  };
  if (cols > 2) {
    for (std::uint32_t r = 0; r < rows; ++r) {
      t.add_link(id(r, cols - 1), id(r, 0), props);
    }
  }
  if (rows > 2) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      t.add_link(id(rows - 1, c), id(0, c), props);
    }
  }
  t.regular_ = RegularInfo{RegularForm::kTorus2D, rows, cols, true};
  return t;
}

Topology Topology::crossbar(std::uint32_t cores, LinkProps props) {
  Topology t(cores);
  for (std::uint32_t a = 0; a < cores; ++a) {
    for (std::uint32_t b = a + 1; b < cores; ++b) t.add_link(a, b, props);
  }
  t.regular_ = RegularInfo{RegularForm::kCrossbar, 1, cores, true};
  return t;
}

Topology Topology::parse(std::istream& in) {
  Topology t;
  std::string line;
  std::size_t lineno = 0;
  bool have_cores = false;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank line
    if (keyword == "cores") {
      std::uint32_t n = 0;
      if (!(ls >> n) || n == 0) {
        throw std::runtime_error("topology parse error at line " +
                                 std::to_string(lineno) + ": bad core count");
      }
      t = Topology(n);
      have_cores = true;
    } else if (keyword == "link") {
      if (!have_cores) {
        throw std::runtime_error(
            "topology parse error: 'link' before 'cores'");
      }
      CoreId a = 0, b = 0;
      if (!(ls >> a >> b)) {
        throw std::runtime_error("topology parse error at line " +
                                 std::to_string(lineno) + ": bad link");
      }
      LinkProps props;
      Tick lat = 0;
      if (ls >> lat) props.latency = lat;
      std::uint32_t bw = 0;
      if (ls >> bw) props.bandwidth_bytes_per_cycle = bw;
      t.add_link(a, b, props);
    } else {
      throw std::runtime_error("topology parse error at line " +
                               std::to_string(lineno) + ": unknown keyword '" +
                               keyword + "'");
    }
  }
  if (!have_cores) {
    throw std::runtime_error("topology parse error: missing 'cores'");
  }
  return t;
}

Topology Topology::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open topology file: " + path);
  return parse(in);
}

void Topology::save(std::ostream& out) const {
  out << "cores " << num_cores() << "\n";
  for (const Link& l : links_) {
    out << "link " << l.a << " " << l.b << " " << l.props.latency << " "
        << l.props.bandwidth_bytes_per_cycle << "\n";
  }
}

}  // namespace simany::net
