// Byte-level primitives of the snapshot wire format.
//
// Everything in a `simany-snapshot-v1` file is little-endian and
// fixed-width, written through ByteWriter and read back through the
// bounds-checked ByteReader. The reader never trusts a length it read:
// every get reports failure instead of walking past the buffer, so the
// adversarial-corpus tests (tests/test_snapshot_hardening.cpp) can
// throw arbitrary bytes at the parser under ASan/UBSan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace simany::snapshot {

/// FNV-1a 64-bit, the repo-wide fingerprint primitive (telemetry and
/// golden traces use the same constants).
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

[[nodiscard]] inline std::uint64_t fnv1a64(const void* data, std::size_t n,
                                           std::uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view s,
                                           std::uint64_t h = kFnvOffset) {
  return fnv1a64(s.data(), s.size(), h);
}

/// Folds one 64-bit word into a running FNV state (used by the
/// state_digest helpers, which hash values rather than buffers).
[[nodiscard]] inline std::uint64_t fnv_mix(std::uint64_t h,
                                           std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

/// Append-only little-endian encoder over a std::vector<uint8_t>.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (i * 8)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (i * 8)));
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_->insert(out_->end(), p, p + n);
  }

  [[nodiscard]] std::size_t size() const noexcept { return out_->size(); }

 private:
  std::vector<std::uint8_t>* out_;
};

/// Bounds-checked little-endian decoder. Every accessor returns false
/// (leaving the output untouched) instead of reading past the end; the
/// caller turns that into a structured SimError.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t n)
      : data_(data), size_(n) {}

  [[nodiscard]] bool u8(std::uint8_t& v) noexcept {
    if (size_ - pos_ < 1) return false;
    v = data_[pos_++];
    return true;
  }
  [[nodiscard]] bool u32(std::uint32_t& v) noexcept {
    if (size_ - pos_ < 4) return false;
    std::uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<std::uint32_t>(data_[pos_ + i]) << (i * 8);
    }
    pos_ += 4;
    v = r;
    return true;
  }
  [[nodiscard]] bool u64(std::uint64_t& v) noexcept {
    if (size_ - pos_ < 8) return false;
    std::uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<std::uint64_t>(data_[pos_ + i]) << (i * 8);
    }
    pos_ += 8;
    v = r;
    return true;
  }
  /// Borrows `n` raw bytes from the buffer (no copy).
  [[nodiscard]] bool bytes(const std::uint8_t*& p, std::size_t n) noexcept {
    if (size_ - pos_ < n) return false;
    p = data_ + pos_;
    pos_ += n;
    return true;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace simany::snapshot
