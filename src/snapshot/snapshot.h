// The `simany-snapshot-v1` container format.
//
// Layout (all integers little-endian; see docs/snapshot.md for the
// full specification):
//
//   magic            8 bytes  "SIMANYSS"
//   version          u32      1
//   header_bytes     u32      length prefix of the header block
//   header block     header_bytes bytes (fields below, in order)
//   image_bytes      u64      length prefix of the state image
//   image_digest     u64      FNV-1a64 of the image bytes
//   image            image_bytes bytes (engine_codec.h canonical form)
//   file_digest      u64      FNV-1a64 of everything above
//
// The header identifies the run (config/workload fingerprints, seed,
// execution mode) and locates the capture point (quanta cursor, shard
// geometry). Restore refuses any identity mismatch with a structured
// SimError before touching the image.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sim_error.h"

namespace simany::snapshot {

inline constexpr char kMagic[8] = {'S', 'I', 'M', 'A', 'N', 'Y', 'S', 'S'};
inline constexpr std::uint32_t kFormatVersion = 1;
/// Sanity cap on the header length prefix: the v1 header is well under
/// this, and a corrupt prefix must not drive a huge read.
inline constexpr std::uint32_t kMaxHeaderBytes = 4096;

/// Header flag bits.
inline constexpr std::uint8_t kFlagTelemetry = 1u << 0;  // telemetry attached
inline constexpr std::uint8_t kFlagFaultPlan = 1u << 1;  // fault plan enabled

struct SnapshotHeader {
  std::uint64_t config_fp = 0;    // config_fingerprint() of the run
  std::uint64_t workload_fp = 0;  // caller-declared workload identity
  std::uint64_t seed = 0;
  std::uint8_t mode = 0;  // ExecutionMode as u8
  std::uint8_t flags = 0;
  std::uint32_t shards = 1;
  std::uint32_t round_quanta = 0;  // parallel round budget in effect
  std::uint32_t num_cores = 0;
  std::uint64_t cursor_requested = 0;  // plan's at_quanta (0: periodic/final)
  /// Plan's periodic cadence. Recorded so a restoring engine can
  /// replay the writer's exact barrier schedule on the sequential
  /// host (barrier-visit bookkeeping is part of the verified image).
  std::uint64_t every_quanta = 0;
  std::uint64_t cursor_actual = 0;  // total quanta at the capture barrier
  std::uint64_t host_rounds = 0;    // barrier count at capture
};

struct SnapshotFile {
  SnapshotHeader header;
  std::vector<std::uint8_t> image;
};

/// Serializes `file` into the container bytes (header digests filled
/// in here, not by the caller).
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(
    const SnapshotFile& file);

/// Parses container bytes. Every structural defect — short buffer, bad
/// magic, oversized length prefix, digest mismatch, trailing garbage —
/// throws SimError{kSnapshotCorrupt}; an unknown version throws the
/// same code with the version in Context::detail (forward refusal).
[[nodiscard]] SnapshotFile decode_snapshot(const std::uint8_t* data,
                                           std::size_t size);

[[nodiscard]] SnapshotFile read_snapshot_file(const std::string& path);
void write_snapshot_file(const std::string& path, const SnapshotFile& file);

/// Convenience workload fingerprint for callers (CLI, tests): hashes a
/// workload name plus its scalar parameters. Any scheme works as long
/// as writer and restorer agree; this one keeps them consistent.
[[nodiscard]] std::uint64_t workload_fingerprint(const std::string& name,
                                                 std::uint64_t seed,
                                                 double factor);

}  // namespace simany::snapshot

namespace simany {
struct ArchConfig;
enum class ExecutionMode : std::uint8_t;

namespace snapshot {

/// Identity fingerprint of (architecture, simulator knobs, execution
/// mode). Host-performance fields (mode/threads/shard geometry, worker
/// pinning, profiling) are normalized out: shard count and round_quanta
/// are architectural *inputs* of a parallel timeline and travel as
/// explicit header fields instead, so one config fingerprint covers a
/// run under every host backend.
[[nodiscard]] std::uint64_t config_fingerprint(const ArchConfig& cfg,
                                               ExecutionMode mode);

}  // namespace snapshot
}  // namespace simany
