// The RunHook implementation behind snapshot_to / restore_from.
//
// Write mode drives a SnapshotPlan: it steers the sequential host's
// barrier schedule onto the requested cursors (seq_budget), captures
// the canonical image at the matching quiesce point and writes the
// container file. Verify mode drives a restore: the engine re-executes
// the identical timeline from tick 0 (same config, seed, workload and
// shard geometry — all enforced by Engine::restore_from before this
// hook is armed), and at the snapshot's cursor the reconstructed image
// is byte-compared against the stored one. A single differing byte
// aborts the run with SimError{kSnapshotMismatch} naming the diverged
// section; on success the run simply continues to completion, which is
// what "resume" means under deterministic re-execution (see
// docs/snapshot.md for why raw fiber stacks are never serialized).
#pragma once

#include <cstdint>
#include <vector>

#include "snapshot/plan.h"
#include "snapshot/run_hook.h"
#include "snapshot/snapshot.h"

namespace simany::snapshot {

class Controller final : public RunHook {
 public:
  /// Write mode: capture per `plan` during the coming run().
  explicit Controller(SnapshotPlan plan);
  /// Verify mode: prove the coming run() passes through `file`'s
  /// state, byte-exactly, at its cursor. `forced_cursors` are ancestor
  /// capture cursors (resume chains) whose barriers the replay must
  /// also land exactly; sorted/deduplicated here.
  explicit Controller(SnapshotFile file,
                      std::vector<std::uint64_t> forced_cursors = {});

  [[nodiscard]] std::uint64_t seq_budget(std::uint64_t done) override;
  void at_barrier(Engine& engine, bool finished) override;
  void cl_quantum(Engine& engine, std::uint64_t done) override;

  /// Verify mode: true once the stored image matched (consulted by
  /// Engine tests; write mode always reports true).
  [[nodiscard]] bool verified() const noexcept {
    return mode_ == Mode::kWrite || verified_;
  }

  /// Build a container file from the engine's quiesced state — the one
  /// header-assembly path shared by the plan-driven capture above and
  /// the autosave ring (src/recover), so every generation records the
  /// identical identity/geometry fields. `total` is the quanta cursor
  /// of the current quiesce point; `at_quanta`/`every_quanta` land in
  /// the header as the schedule a future replay must mirror. Friend
  /// access to Engine makes this the only sanctioned way to snapshot
  /// outside the Controller itself.
  [[nodiscard]] static SnapshotFile build(Engine& engine,
                                          std::uint64_t workload_fp,
                                          std::uint64_t at_quanta,
                                          std::uint64_t every_quanta,
                                          std::uint64_t total);

 private:
  enum class Mode : std::uint8_t { kWrite, kVerify };

  void capture(Engine& engine, std::uint64_t total);
  void verify(Engine& engine, std::uint64_t total);

  Mode mode_;
  SnapshotPlan plan_;  // write mode; verify mode mirrors the writer's
                       // plan from the header to replay its schedule
  SnapshotFile file_;  // verify mode only
  bool oneshot_done_ = false;
  bool verified_ = false;
  bool captured_any_ = false;
  std::uint64_t periodic_next_ = 0;  // next periodic boundary (write)
};

}  // namespace simany::snapshot
