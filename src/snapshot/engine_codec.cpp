#include "snapshot/engine_codec.h"

#include <algorithm>
#include <array>

#include "core/engine.h"
#include "fault/fault_injector.h"
#include "obs/telemetry.h"
#include "snapshot/wire.h"

namespace simany::snapshot {

namespace {

/// Serializes one SimStats counter block. Integer counters only:
/// wall_seconds is host wall clock (excluded by design), and the
/// completion/network/core fields of a *shard* block are covered where
/// they live (max_task_end, lane stats, per-core busy ticks).
void put_stats(ByteWriter& w, const SimStats& s) {
  w.u64(s.completion_ticks);
  w.u64(s.tasks_spawned);
  w.u64(s.tasks_inlined);
  w.u64(s.tasks_migrated);
  w.u64(s.probes_sent);
  w.u64(s.probes_denied);
  w.u64(s.messages);
  w.u64(s.sync_stalls);
  w.u64(s.fiber_switches);
  w.u64(s.joins_suspended);
  w.u64(s.limit_recomputes);
  w.u64(s.faults_injected);
  w.u64(s.fault_msgs_delayed);
  w.u64(s.fault_msgs_duplicated);
  w.u64(s.fault_msgs_dropped);
  w.u64(s.fault_msg_retries);
  w.u64(s.fault_msgs_reordered);
  w.u64(s.fault_core_stalls);
  w.u64(s.fault_spawn_denials);
  w.u64(s.fault_mem_spikes);
  w.u64(s.fault_core_wedges);
  w.u32(s.fault_dead_cores);
  w.u64(s.guard_inbox_overflows);
  w.u64(s.guard_fiber_overflows);
  w.u64(s.inbox_depth_peak);
  w.u64(s.live_fibers_peak);
  w.u64(s.parallelism_samples);
  w.u64(s.parallelism_sum);
  w.u64(s.parallelism_max);
  w.u64(s.drift_max_ticks);
}

void put_message(ByteWriter& w, const Message& m) {
  w.u8(static_cast<std::uint8_t>(m.kind));
  w.u32(m.src);
  w.u32(m.dst);
  w.u64(m.sent);
  w.u64(m.arrival);
  w.u32(m.bytes);
  w.u64(m.a);
  w.u64(m.b);
  // Task bodies and parked fibers cannot be byte-serialized (they are
  // host closures / stacks); their presence plus the resume metadata is
  // what the determinism contract needs to match.
  w.boolean(static_cast<bool>(m.task));
  w.u64(m.group);
  w.u64(m.birth);
  w.boolean(m.fiber != nullptr);
  w.u64(m.fiber_group);
  w.u64(m.parked_at);
  w.boolean(m.direct);
}

}  // namespace

void EngineCodec::append_state(const Engine& e, std::vector<std::uint8_t>& out,
                               std::vector<ImageSection>* sections) {
  ByteWriter w(out);
  const auto mark = [&](const char* name) {
    if (sections != nullptr) sections->push_back({name, out.size()});
  };

  mark("engine");
  w.u32(static_cast<std::uint32_t>(e.cores_.size()));
  w.u32(e.num_shards_);
  w.u8(static_cast<std::uint8_t>(e.mode_));
  w.u64(e.host_rounds_);
  w.u64(e.synth_addr_next_);
  // Normalized to zero: a pending cancellation is the host's reason for
  // stopping, not architectural state. An emergency capture taken on
  // the abort path would otherwise bake the abort code into the image
  // and never verify against the (cancel-free) resume replay.
  w.u8(0);

  mark("shards");
  for (const auto& shp : e.shards_) {
    const host::ShardState& sh = *shp;
    w.u64(sh.quantum_count);
    w.i64(sh.live_tasks);
    w.u64(sh.inflight_messages);
    w.u64(sh.mail_out);
    w.u64(sh.mail_in);
    w.u64(sh.gmin_lb);
    w.u64(sh.limit_epoch);
    w.u64(sh.max_task_end);
    w.u32(static_cast<std::uint32_t>(sh.ready.size()));
    for (const net::CoreId id : sh.ready) w.u32(id);
    w.u32(static_cast<std::uint32_t>(sh.stalled.size()));
    for (const net::CoreId id : sh.stalled) w.u32(id);
    w.u32(static_cast<std::uint32_t>(sh.lane.occupancy.size()));
    for (const auto& occ : sh.lane.occupancy) {
      w.u64(occ.next_free_fwd);
      w.u64(occ.next_free_rev);
    }
    w.u64(sh.lane.stats.messages);
    w.u64(sh.lane.stats.bytes);
    w.u64(sh.lane.stats.hops);
    w.u64(sh.lane.stats.contention_ticks);
    put_stats(w, sh.stats);
    // The shard's guard_* poll bookkeeping is deliberately absent: a
    // tripped deadline returns out of guard_poll before the watchdog
    // updates, so those fields record "state at the last wall-clean
    // poll" — which an emergency capture can never replay-match. Like
    // cancel_code above, they are host supervision state, not
    // architectural state.
  }

  mark("cores");
  for (const auto& cptr : e.cores_) {
    const Engine::CoreSim& c = *cptr;
    w.u64(c.now);
    w.u64(c.busy);
    w.u32(c.reserved);
    w.u64(c.births_min);
    w.u32(static_cast<std::uint32_t>(c.births.size()));
    for (const Tick b : c.births) w.u64(b);
    w.boolean(c.dead);
    w.boolean(c.wedge_reported);
    w.boolean(c.sync_stalled);
    w.boolean(c.waiting_reply);
    w.boolean(c.park_pending);
    w.u64(c.park_group);
    w.boolean(c.reply_ready);
    if (c.reply_ready) put_message(w, c.reply);
    w.u32(c.reserved_target);
    w.u32(c.probe_rr);
    w.u32(static_cast<std::uint32_t>(c.occ_proxy.size()));
    for (const std::uint32_t o : c.occ_proxy) w.u32(o);
    w.u64(c.cached_limit);
    w.u64(c.limit_epoch);
    w.boolean(c.in_ready);
    w.u64(c.cl_stamp);
    w.i64(c.hold_depth);
    const std::array<std::uint64_t, 4> rng = c.rng.state();
    for (const std::uint64_t word : rng) w.u64(word);
    w.boolean(c.fiber != nullptr);
    w.u64(c.fiber_group);
    w.u32(static_cast<std::uint32_t>(c.resumables.size()));
    for (const auto& pf : c.resumables) {
      w.u64(pf.task_group);
      w.u64(pf.parked_at);
    }
    w.u32(static_cast<std::uint32_t>(c.task_queue.size()));
    for (const auto& pt : c.task_queue) {
      w.u64(pt.group);
      w.u64(pt.arrival);
    }
    w.u32(static_cast<std::uint32_t>(c.inbox.size()));
    c.inbox.for_each([&](const Message& m) { put_message(w, m); });
    w.u32(static_cast<std::uint32_t>(c.groups.size()));
    for (const auto& grp : c.groups) {
      w.u32(grp.active);
      w.u32(static_cast<std::uint32_t>(grp.joiners.size()));
      for (const auto& j : grp.joiners) {
        w.u32(j.core);
        w.u64(j.task_group);
        w.u64(j.parked_at);
      }
    }
    w.u32(static_cast<std::uint32_t>(c.locks.size()));
    for (const auto& lk : c.locks) {
      w.u32(lk.home);
      w.boolean(lk.held);
      w.u32(lk.holder);
      w.u32(static_cast<std::uint32_t>(lk.waiters.size()));
      for (const net::CoreId wc : lk.waiters) w.u32(wc);
    }
    std::vector<CellId> cell_ids;
    cell_ids.reserve(c.cells.size());
    // simlint: allow(det-unordered-iter) keys collected then sorted
    for (const auto& kv : c.cells) cell_ids.push_back(kv.first);
    std::sort(cell_ids.begin(), cell_ids.end());
    w.u32(static_cast<std::uint32_t>(cell_ids.size()));
    for (const CellId id : cell_ids) {
      const Engine::Cell& cell = c.cells.at(id);
      w.u64(id);
      w.u32(cell.home);
      w.u32(cell.bytes);
      w.u64(cell.synth_addr);
      w.boolean(cell.locked);
      w.u32(cell.holder);
      w.u8(static_cast<std::uint8_t>(cell.holder_mode));
      w.u32(static_cast<std::uint32_t>(cell.waiters.size()));
      for (const auto& wt : cell.waiters) {
        w.u32(wt.core);
        w.u8(static_cast<std::uint8_t>(wt.mode));
      }
    }
    w.u32(c.cell_seq);
    w.u64(c.synth_addr_next);
    std::vector<CellId> held_ids;
    held_ids.reserve(c.held_cells.size());
    // simlint: allow(det-unordered-iter) keys collected then sorted
    for (const auto& kv : c.held_cells) held_ids.push_back(kv.first);
    std::sort(held_ids.begin(), held_ids.end());
    w.u32(static_cast<std::uint32_t>(held_ids.size()));
    for (const CellId id : held_ids) {
      const auto& hc = c.held_cells.at(id);
      w.u64(id);
      w.u8(static_cast<std::uint8_t>(hc.mode));
      w.u32(hc.bytes);
      w.u64(hc.synth_addr);
    }
    w.u64(c.l1.state_digest());
    w.boolean(c.dcache != nullptr);
    if (c.dcache != nullptr) w.u64(c.dcache->state_digest());
    w.boolean(c.icache != nullptr);
    if (c.icache != nullptr) w.u64(c.icache->state_digest());
  }

  mark("proxies");
  for (const auto* arr : {&e.proxy_, &e.proxy_next_}) {
    w.u32(static_cast<std::uint32_t>(arr->size()));
    for (const host::VtProxy& p : *arr) {
      w.u64(p.now);
      w.u64(p.births_min);
      w.boolean(p.anchor);
      w.u32(p.occupied);
      w.boolean(p.busy);
    }
  }

  mark("cl-heap");
  w.u32(static_cast<std::uint32_t>(e.cl_heap_.size()));
  for (const auto& ent : e.cl_heap_) {
    w.u64(ent.key);
    w.u32(ent.id);
    w.u64(ent.stamp);
  }

  mark("directory");
  w.u64(e.directory_.state_digest());

  mark("fault");
  w.boolean(e.fault_ != nullptr);
  if (e.fault_ != nullptr) w.u64(e.fault_->state_digest());

  mark("telemetry");
  w.boolean(e.telemetry_ != nullptr);
  if (e.telemetry_ != nullptr) w.u64(e.telemetry_->state_digest());

  mark("guard");
  w.u64(e.guard_round_now_sum_);
  w.u64(e.guard_round_quanta_);
  w.boolean(e.guard_round_baseline_);
  w.u32(e.guard_stale_rounds_);
}

std::uint64_t EngineCodec::digest(const Engine& e) {
  std::vector<std::uint8_t> image;
  append_state(e, image);
  return fnv1a64(image.data(), image.size());
}

std::uint64_t EngineCodec::total_quanta(const Engine& e) {
  std::uint64_t total = 0;
  for (const auto& shp : e.shards_) total += shp->quantum_count;
  return total;
}

std::uint32_t EngineCodec::shard_count(const Engine& e) {
  return e.num_shards_;
}

const char* EngineCodec::section_at(const std::vector<ImageSection>& sections,
                                    std::size_t off) {
  const char* name = "engine";
  for (const ImageSection& s : sections) {
    if (s.begin > off) break;
    name = s.name;
  }
  return name;
}

}  // namespace simany::snapshot
