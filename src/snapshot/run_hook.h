// The engine-side seam of the snapshot subsystem.
//
// Engine owns a RunHook (null unless snapshot_to/restore_from armed
// one) and calls these three virtuals from its scheduling loops; the
// concrete Controller lives in the snapshot library. Dependency-free
// (core/engine.h includes this header), so core never links against
// snapshot code — the virtual dispatch is the entire coupling.
#pragma once

#include <cstdint>

#include "core/sim_error.h"

namespace simany {
class Engine;
}

namespace simany::snapshot {

/// Callbacks threaded through the engine's run loops. All three run in
/// single-threaded contexts: seq_budget from the sequential driver
/// loop, at_barrier from the serial barrier phase, cl_quantum from the
/// cycle-level main loop — so implementations may freely walk engine
/// state (the same phase contract simlint enforces for the engine's
/// own SIMANY_SERIAL_ONLY members).
class RunHook {
 public:
  virtual ~RunHook() = default;

  /// Sequential host only: quanta the driver loop may execute before
  /// the next serial-phase visit, given `done` executed so far. Lets a
  /// hook land a barrier on an exact cursor; return ~0 for "no limit"
  /// (the shard then runs until blocked, exactly the un-hooked loop).
  [[nodiscard]] virtual std::uint64_t seq_budget(std::uint64_t done) = 0;

  /// Serial barrier phase, every visit, both host backends. `finished`
  /// is the termination verdict this barrier computed; the hook
  /// observes quiesced state but must not mutate simulated state.
  virtual void at_barrier(Engine& engine, bool finished) = 0;

  /// Cycle-level loop, after each quantum (`done` executed so far).
  /// The CL loop is serial-only, so this is a quiesce point too.
  virtual void cl_quantum(Engine& engine, std::uint64_t done) = 0;

  /// Guard abort notification, called at the top of guard_abort while
  /// the fibers are still intact — *before* unwind_all_fibers tears
  /// the architectural state down. The serial-phase context makes this
  /// a quiesce point on the sequential and cycle-level hosts; on the
  /// parallel host the round a worker flagged may be partially
  /// executed, so hooks that capture state must check the shard count.
  /// Default no-op: existing hooks ignore aborts.
  virtual void at_abort(Engine& /*engine*/, SimErrorCode /*code*/) {}
};

}  // namespace simany::snapshot
