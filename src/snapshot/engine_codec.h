// Canonical binary image of a quiesced engine.
//
// EngineCodec walks every piece of architectural and host-visible
// state the determinism contract covers — core clocks, inboxes,
// run-time tables, shard queues, RNG streams, fault/telemetry/guard
// progress — and appends it to a byte buffer in one fixed canonical
// order (unordered containers are emitted sorted or digested
// order-independently). Two engines at the same quiesce point of the
// same timeline produce byte-identical images, which is the whole
// verification story: restore never parses the image back, it rebuilds
// the state by deterministic re-execution and byte-compares.
//
// The codec is a friend of Engine and must only run while the engine
// is quiesced (serial barrier phase / CL loop — the same contexts the
// RunHook fires in).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace simany {
class Engine;
}

namespace simany::snapshot {

/// One named span of the image, for divergence diagnostics: when a
/// verify pass finds the first mismatching byte, the section name
/// turns "offset 10423 differs" into "core state differs".
struct ImageSection {
  const char* name;
  std::size_t begin;  // offset of the section's first byte
};

class EngineCodec {
 public:
  /// Appends the canonical image of `e` to `out`; when `sections` is
  /// non-null, records where each named section starts.
  static void append_state(const Engine& e, std::vector<std::uint8_t>& out,
                           std::vector<ImageSection>* sections = nullptr);

  /// FNV-1a64 of the canonical image (Engine::state_digest forwards
  /// here; also the per-round probe in tests/test_determinism.cpp).
  [[nodiscard]] static std::uint64_t digest(const Engine& e);

  /// Total scheduling quanta executed so far (sum over shards) — the
  /// snapshot cursor coordinate.
  [[nodiscard]] static std::uint64_t total_quanta(const Engine& e);

  /// Active shard count (the autosave hook refuses emergency captures
  /// on the parallel host, where an interrupted round is not a
  /// replayable cursor).
  [[nodiscard]] static std::uint32_t shard_count(const Engine& e);

  /// Name of the section containing image offset `off`.
  [[nodiscard]] static const char* section_at(
      const std::vector<ImageSection>& sections, std::size_t off);
};

}  // namespace simany::snapshot
