// Fan-out RunHook: lets several hooks share the engine's single seam.
//
// Engine::add_run_hook wraps coexisting hooks in one of these — e.g. a
// verify-mode Controller (replaying a resume) plus the autosave ring's
// capture hook. Budgets combine by minimum (every hook's target cursor
// still lands on an exact barrier); notifications fan out in arming
// order, which callers rely on: the verify hook must observe a barrier
// before the autosave hook decides whether to capture at it.
#pragma once

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "snapshot/run_hook.h"

namespace simany::snapshot {

class HookChain final : public RunHook {
 public:
  void add(std::unique_ptr<RunHook> hook) {
    hooks_.push_back(std::move(hook));
  }

  [[nodiscard]] std::uint64_t seq_budget(std::uint64_t done) override {
    std::uint64_t budget = ~std::uint64_t{0};
    for (auto& h : hooks_) budget = std::min(budget, h->seq_budget(done));
    return budget;
  }

  void at_barrier(Engine& engine, bool finished) override {
    for (auto& h : hooks_) h->at_barrier(engine, finished);
  }

  void cl_quantum(Engine& engine, std::uint64_t done) override {
    for (auto& h : hooks_) h->cl_quantum(engine, done);
  }

  void at_abort(Engine& engine, SimErrorCode code) override {
    for (auto& h : hooks_) h->at_abort(engine, code);
  }

  [[nodiscard]] std::size_t size() const noexcept { return hooks_.size(); }

 private:
  std::vector<std::unique_ptr<RunHook>> hooks_;
};

}  // namespace simany::snapshot
