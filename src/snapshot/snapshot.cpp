#include "snapshot/snapshot.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "config/arch_config.h"
#include "config/config_io.h"
#include "core/engine.h"
#include "io/atomic_write.h"
#include "snapshot/wire.h"

namespace simany::snapshot {

namespace {

[[noreturn]] void corrupt(const std::string& what, std::uint64_t detail = 0) {
  SimError::Context ctx;
  ctx.code = SimErrorCode::kSnapshotCorrupt;
  ctx.cause = to_string(SimErrorCode::kSnapshotCorrupt);
  ctx.detail = detail;
  throw SimError("snapshot: " + what, ctx);
}

void put_header(ByteWriter& w, const SnapshotHeader& h) {
  w.u64(h.config_fp);
  w.u64(h.workload_fp);
  w.u64(h.seed);
  w.u8(h.mode);
  w.u8(h.flags);
  w.u32(h.shards);
  w.u32(h.round_quanta);
  w.u32(h.num_cores);
  w.u64(h.cursor_requested);
  w.u64(h.every_quanta);
  w.u64(h.cursor_actual);
  w.u64(h.host_rounds);
}

[[nodiscard]] bool get_header(ByteReader& r, SnapshotHeader& h) {
  return r.u64(h.config_fp) && r.u64(h.workload_fp) && r.u64(h.seed) &&
         r.u8(h.mode) && r.u8(h.flags) && r.u32(h.shards) &&
         r.u32(h.round_quanta) && r.u32(h.num_cores) &&
         r.u64(h.cursor_requested) && r.u64(h.every_quanta) &&
         r.u64(h.cursor_actual) && r.u64(h.host_rounds);
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const SnapshotFile& file) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.bytes(kMagic, sizeof(kMagic));
  w.u32(kFormatVersion);

  std::vector<std::uint8_t> header;
  ByteWriter hw(header);
  put_header(hw, file.header);
  w.u32(static_cast<std::uint32_t>(header.size()));
  w.bytes(header.data(), header.size());

  w.u64(file.image.size());
  w.u64(fnv1a64(file.image.data(), file.image.size()));
  w.bytes(file.image.data(), file.image.size());

  w.u64(fnv1a64(out.data(), out.size()));
  return out;
}

SnapshotFile decode_snapshot(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  const std::uint8_t* magic = nullptr;
  if (!r.bytes(magic, sizeof(kMagic))) corrupt("file shorter than magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    corrupt("bad magic (not a simany snapshot)");
  }
  std::uint32_t version = 0;
  if (!r.u32(version)) corrupt("truncated before version");
  if (version != kFormatVersion) {
    corrupt("unsupported snapshot version " + std::to_string(version) +
                " (this build reads version " +
                std::to_string(kFormatVersion) + ")",
            version);
  }
  std::uint32_t header_bytes = 0;
  if (!r.u32(header_bytes)) corrupt("truncated before header length");
  if (header_bytes > kMaxHeaderBytes) {
    corrupt("header length " + std::to_string(header_bytes) +
                " exceeds cap " + std::to_string(kMaxHeaderBytes),
            header_bytes);
  }
  const std::uint8_t* hdr = nullptr;
  if (!r.bytes(hdr, header_bytes)) corrupt("truncated inside header");
  SnapshotFile file;
  {
    ByteReader hr(hdr, header_bytes);
    if (!get_header(hr, file.header)) corrupt("header block too short");
    // Longer-than-known headers would be how a v1.x adds fields; v1
    // readers must treat unknown tail bytes as corruption, not skip
    // them, because the image they frame could mean anything.
    if (hr.remaining() != 0) {
      corrupt("header block carries " + std::to_string(hr.remaining()) +
              " unknown trailing bytes");
    }
  }
  std::uint64_t image_bytes = 0;
  std::uint64_t image_digest = 0;
  if (!r.u64(image_bytes)) corrupt("truncated before image length");
  if (!r.u64(image_digest)) corrupt("truncated before image digest");
  if (image_bytes > r.remaining()) {
    corrupt("image length " + std::to_string(image_bytes) +
                " exceeds file remainder " + std::to_string(r.remaining()),
            image_bytes);
  }
  const std::uint8_t* img = nullptr;
  if (!r.bytes(img, static_cast<std::size_t>(image_bytes))) {
    corrupt("truncated inside image");
  }
  if (fnv1a64(img, static_cast<std::size_t>(image_bytes)) != image_digest) {
    corrupt("image digest mismatch");
  }
  const std::size_t digest_pos = r.pos();
  std::uint64_t file_digest = 0;
  if (!r.u64(file_digest)) corrupt("truncated before file digest");
  if (fnv1a64(data, digest_pos) != file_digest) {
    corrupt("file digest mismatch");
  }
  if (r.remaining() != 0) {
    corrupt(std::to_string(r.remaining()) + " trailing bytes after digest");
  }
  file.image.assign(img, img + image_bytes);
  return file;
}

SnapshotFile read_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) corrupt("cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (in.bad()) corrupt("read error on '" + path + "'");
  return decode_snapshot(bytes.data(), bytes.size());
}

void write_snapshot_file(const std::string& path, const SnapshotFile& file) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(file);
  // Atomic replace with fsync + readback: a crash mid-checkpoint must
  // never leave a torn file at the destination — a reader sees either
  // the previous generation intact or this one complete.
  io::AtomicWriteOptions opts;
  opts.fsync = true;
  opts.verify_readback = true;
  io::atomic_write_file(path, bytes.data(), bytes.size(), opts);
}

std::uint64_t workload_fingerprint(const std::string& name,
                                   std::uint64_t seed, double factor) {
  std::uint64_t h = fnv1a64(name);
  h = fnv_mix(h, seed);
  // Hash the decimal rendering, not the raw double bits: callers that
  // compute the factor differently but print the same value agree.
  std::ostringstream os;
  os << factor;
  return fnv1a64(os.str(), h);
}

std::uint64_t config_fingerprint(const ArchConfig& cfg, ExecutionMode mode) {
  ArchConfig norm = cfg;
  // Host-performance knobs never change the simulated timeline for a
  // fixed (shards, round_quanta); those two travel in the snapshot
  // header instead so restore can adopt them explicitly.
  norm.host = HostConfig{};
  norm.obs.profile_host = false;
  // Wall-clock guard limits are host conditions, not identity; the
  // deterministic budgets (vtime, watchdog) stay in.
  norm.guard.deadline_ms = 0;
  std::ostringstream os;
  save_config(norm, os);
  std::uint64_t h = fnv1a64(os.str());
  return fnv_mix(h, static_cast<std::uint64_t>(mode));
}

}  // namespace simany::snapshot
