// Controller implementation plus the Engine-side snapshot API
// (snapshot_to / restore_from / state_digest). These are members of
// Engine but live in the snapshot library: core stays free of any
// snapshot dependency (it only calls the RunHook virtuals), and only
// programs that actually use snapshots link this code.

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.h"
#include "snapshot/controller.h"
#include "snapshot/engine_codec.h"
#include "snapshot/hook_chain.h"
#include "snapshot/snapshot.h"

namespace simany::snapshot {

namespace {

[[noreturn]] void mismatch(const std::string& what, std::uint64_t detail = 0,
                           std::uint64_t at = 0) {
  SimError::Context ctx;
  ctx.code = SimErrorCode::kSnapshotMismatch;
  ctx.cause = to_string(SimErrorCode::kSnapshotMismatch);
  ctx.detail = detail;
  ctx.at_tick = at;
  throw SimError("snapshot: " + what, ctx);
}

}  // namespace

Controller::Controller(SnapshotPlan plan)
    : mode_(Mode::kWrite), plan_(std::move(plan)),
      periodic_next_(plan_.every_quanta) {}

Controller::Controller(SnapshotFile file,
                       std::vector<std::uint64_t> forced_cursors)
    : mode_(Mode::kVerify), file_(std::move(file)) {
  // Mirror the writer's plan so the sequential host replays the exact
  // barrier schedule of the capture run: serial-phase bookkeeping
  // (host_rounds, the guard watchdog's round counters) is part of the
  // verified image, so the replay must visit the same barriers.
  plan_.at_quanta = file_.header.cursor_requested;
  plan_.every_quanta = file_.header.every_quanta;
  plan_.forced_cursors = std::move(forced_cursors);
  std::sort(plan_.forced_cursors.begin(), plan_.forced_cursors.end());
  plan_.forced_cursors.erase(std::unique(plan_.forced_cursors.begin(),
                                         plan_.forced_cursors.end()),
                             plan_.forced_cursors.end());
}

std::uint64_t Controller::seq_budget(std::uint64_t done) {
  const bool oneshot_open =
      mode_ == Mode::kWrite ? !oneshot_done_ : !verified_;
  std::uint64_t target = ~std::uint64_t{0};
  if (plan_.at_quanta != 0 && oneshot_open && plan_.at_quanta > done) {
    target = std::min(target, plan_.at_quanta);
  }
  if (plan_.every_quanta != 0) {
    target = std::min(target,
                      (done / plan_.every_quanta + 1) * plan_.every_quanta);
  }
  // Forced ancestor cursors (resume chains): land a barrier on every
  // cursor an earlier generation's capture once forced, so the replay
  // turns the serial phase exactly as often as the original run did.
  for (const std::uint64_t f : plan_.forced_cursors) {  // sorted ascending
    if (f > done) {
      target = std::min(target, f);
      break;
    }
  }
  return target == ~std::uint64_t{0} ? target : target - done;
}

void Controller::at_barrier(Engine& engine, bool finished) {
  const std::uint64_t total = EngineCodec::total_quanta(engine);
  if (mode_ == Mode::kVerify) {
    if (verified_) return;
    const std::uint64_t cursor = file_.header.cursor_actual;
    if (total >= cursor) {
      if (total != cursor) {
        mismatch("replay reached a barrier at " + std::to_string(total) +
                     " quanta, past the snapshot cursor " +
                     std::to_string(cursor) +
                     " — the schedule diverged (host geometry changed?)",
                 total, cursor);
      }
      verify(engine, total);
    } else if (finished) {
      mismatch("run finished at " + std::to_string(total) +
                   " quanta, before the snapshot cursor " +
                   std::to_string(cursor),
               total, cursor);
    }
    return;
  }
  if (plan_.every_quanta != 0 && total >= periodic_next_) {
    capture(engine, total);
    periodic_next_ = (total / plan_.every_quanta + 1) * plan_.every_quanta;
  }
  if (plan_.at_quanta != 0 && !oneshot_done_ &&
      (total >= plan_.at_quanta || finished)) {
    capture(engine, total);
    oneshot_done_ = true;
  }
  // A plan that configured no trigger (or whose periodic cadence the
  // run never reached) still yields its final quiesced state, so the
  // checkpoint file always exists after a completed run.
  if (finished && !captured_any_) capture(engine, total);
}

void Controller::cl_quantum(Engine& engine, std::uint64_t done) {
  if (mode_ == Mode::kVerify) {
    if (!verified_ && done >= file_.header.cursor_actual) {
      // Called after every quantum, so the first crossing is exact.
      verify(engine, done);
    }
    return;
  }
  if (plan_.every_quanta != 0 && done >= periodic_next_) {
    capture(engine, done);
    periodic_next_ = (done / plan_.every_quanta + 1) * plan_.every_quanta;
  }
  if (plan_.at_quanta != 0 && !oneshot_done_ && done >= plan_.at_quanta) {
    capture(engine, done);
    oneshot_done_ = true;
  }
}

SnapshotFile Controller::build(Engine& engine, std::uint64_t workload_fp,
                               std::uint64_t at_quanta,
                               std::uint64_t every_quanta,
                               std::uint64_t total) {
  SnapshotFile f;
  SnapshotHeader& h = f.header;
  h.config_fp = config_fingerprint(engine.cfg_, engine.mode_);
  h.workload_fp = workload_fp;
  h.seed = engine.cfg_.seed;
  h.mode = static_cast<std::uint8_t>(engine.mode_);
  h.flags = static_cast<std::uint8_t>(
      (engine.telemetry_ != nullptr ? kFlagTelemetry : 0) |
      (engine.fault_ != nullptr ? kFlagFaultPlan : 0));
  h.shards = engine.num_shards_;
  // Record the *effective* round budget (the parallel host substitutes
  // 512 for 0), so restore adopts a concrete value.
  h.round_quanta = engine.num_shards_ > 1 && engine.cfg_.host.round_quanta == 0
                       ? 512
                       : engine.cfg_.host.round_quanta;
  h.num_cores = engine.cfg_.num_cores();
  h.cursor_requested = at_quanta;
  h.every_quanta = every_quanta;
  h.cursor_actual = total;
  h.host_rounds = engine.host_rounds_;
  EngineCodec::append_state(engine, f.image);
  return f;
}

void Controller::capture(Engine& engine, std::uint64_t total) {
  const SnapshotFile f =
      build(engine, plan_.workload_fp, plan_.at_quanta, plan_.every_quanta,
            total);
  write_snapshot_file(plan_.path, f);
  captured_any_ = true;
}

void Controller::verify(Engine& engine, std::uint64_t total) {
  std::vector<std::uint8_t> image;
  std::vector<ImageSection> sections;
  EngineCodec::append_state(engine, image, &sections);
  if (image != file_.image) {
    const std::size_t lim = std::min(image.size(), file_.image.size());
    std::size_t off = lim;
    for (std::size_t i = 0; i < lim; ++i) {
      if (image[i] != file_.image[i]) {
        off = i;
        break;
      }
    }
    mismatch("state verification failed at quanta cursor " +
                 std::to_string(total) + ": replayed image diverges at byte " +
                 std::to_string(off) + " of " + std::to_string(lim) +
                 " (section '" + EngineCodec::section_at(sections, off) +
                 "', stored " + std::to_string(file_.image.size()) +
                 " bytes, replayed " + std::to_string(image.size()) + ")",
             off, total);
  }
  verified_ = true;
}

}  // namespace simany::snapshot

namespace simany {

void Engine::add_run_hook(std::unique_ptr<snapshot::RunHook> hook) {
  if (ran_) throw std::logic_error("Engine::add_run_hook after run()");
  if (hook == nullptr) return;
  if (snap_hook_ == nullptr) {
    snap_hook_ = std::move(hook);
    return;
  }
  // Wrap the existing hook in a chain (or append to one): arming a
  // second hook must never silently drop the first.
  auto* chain = dynamic_cast<snapshot::HookChain*>(snap_hook_.get());
  if (chain == nullptr) {
    auto fresh = std::make_unique<snapshot::HookChain>();
    fresh->add(std::move(snap_hook_));
    chain = fresh.get();
    snap_hook_ = std::move(fresh);
  }
  chain->add(std::move(hook));
}

void Engine::snapshot_to(const snapshot::SnapshotPlan& plan) {
  if (ran_) throw std::logic_error("Engine::snapshot_to after run()");
  if (plan.path.empty()) {
    throw std::invalid_argument("Engine::snapshot_to: plan.path is empty");
  }
  add_run_hook(std::make_unique<snapshot::Controller>(plan));
}

void Engine::restore_from(const std::string& path, std::uint64_t workload_fp,
                          const std::vector<std::uint64_t>& forced_cursors) {
  if (ran_) throw std::logic_error("Engine::restore_from after run()");
  snapshot::SnapshotFile file = snapshot::read_snapshot_file(path);
  const snapshot::SnapshotHeader& h = file.header;
  const auto refuse = [&](const std::string& what, std::uint64_t want,
                          std::uint64_t got) {
    SimError::Context ctx;
    ctx.code = SimErrorCode::kSnapshotMismatch;
    ctx.cause = to_string(SimErrorCode::kSnapshotMismatch);
    ctx.detail = got;
    throw SimError("snapshot: refusing '" + path + "': " + what +
                       " (snapshot " + std::to_string(want) +
                       ", this engine " + std::to_string(got) + ")",
                   ctx);
  };
  if (h.mode != static_cast<std::uint8_t>(mode_)) {
    refuse("execution mode differs", h.mode,
           static_cast<std::uint8_t>(mode_));
  }
  const std::uint64_t cfg_fp = snapshot::config_fingerprint(cfg_, mode_);
  if (h.config_fp != cfg_fp) {
    refuse("config fingerprint differs", h.config_fp, cfg_fp);
  }
  if (h.workload_fp != workload_fp) {
    refuse("workload fingerprint differs", h.workload_fp, workload_fp);
  }
  if (h.seed != cfg_.seed) refuse("seed differs", h.seed, cfg_.seed);
  if (h.num_cores != cfg_.num_cores()) {
    refuse("core count differs", h.num_cores, cfg_.num_cores());
  }
  const bool tele = (h.flags & snapshot::kFlagTelemetry) != 0;
  if (tele != (telemetry_ != nullptr)) {
    refuse("telemetry attachment differs (attach telemetry before "
           "restore_from, exactly as the capture run did)",
           tele ? 1 : 0, telemetry_ != nullptr ? 1 : 0);
  }
  // Adopt the snapshot's host geometry: shard count and round budget
  // are inputs of the simulated timeline (determinism contract), so
  // the replay must run the writer's. Worker threads stay whatever
  // this engine was configured with — a pure performance knob, which
  // is how a 4-shard snapshot restores into a single-threaded engine.
  if (h.shards > 1) {
    if (obs_ != nullptr || trace_ != nullptr || cfg_.mem.coherence_timing) {
      refuse("snapshot has " + std::to_string(h.shards) +
                 " shards but an observer/trace sink/coherence timing "
                 "pins this engine to the sequential host",
             h.shards, 1);
    }
    cfg_.host.mode = HostMode::kParallel;
    cfg_.host.shards = h.shards;
    cfg_.host.round_quanta = h.round_quanta;
    cfg_.host.threads = std::max<std::uint32_t>(1, cfg_.host.threads);
  } else {
    cfg_.host.mode = HostMode::kSequential;
  }
  add_run_hook(std::make_unique<snapshot::Controller>(std::move(file),
                                                      forced_cursors));
}

std::uint64_t Engine::state_digest() const {
  return snapshot::EngineCodec::digest(*this);
}

}  // namespace simany
