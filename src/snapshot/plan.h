// Snapshot request description, engine-facing.
//
// Dependency-free on purpose: core/engine.h includes this header (the
// snapshot_to API takes a plan by value), and the snapshot library in
// turn links against simany_core — keeping this header free of any
// snapshot-internal types breaks the cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace simany::snapshot {

/// What Engine::snapshot_to should capture during the coming run().
///
/// Cursors are measured in *scheduling quanta* (the sum of every
/// shard's quantum_count), the engine's deterministic unit of progress:
/// unlike virtual time, which several cores inhabit at once, the
/// quantum sequence is totally ordered for a fixed (shard count,
/// round_quanta) and therefore names a unique quiesce point.
struct SnapshotPlan {
  /// Destination file. Periodic captures overwrite it in place, so the
  /// file always holds the most recent checkpoint.
  std::string path;
  /// One-shot capture at the first barrier where total quanta reach
  /// this cursor (0 = disabled). If the run finishes earlier, the final
  /// quiesced state is captured instead.
  std::uint64_t at_quanta = 0;
  /// Periodic capture cadence in quanta (0 = disabled).
  std::uint64_t every_quanta = 0;
  /// Caller-provided fingerprint of the workload (root task + its
  /// parameters). The engine cannot hash a TaskFn, so restore relies on
  /// the caller presenting the same value to refuse foreign state.
  std::uint64_t workload_fp = 0;
  /// Extra sequential-host barrier cursors this run must land exactly,
  /// beyond at/every (sorted, deduplicated by the supervisor). An
  /// autosave resume chain records here every ancestor generation's
  /// capture cursor: the serial-phase bookkeeping those barriers
  /// mutated (host_rounds, watchdog counters) is part of the verified
  /// image, so a replay that skipped them would diverge byte-wise.
  std::vector<std::uint64_t> forced_cursors;
};

}  // namespace simany::snapshot
