#include "mem/directory.h"

#include <gtest/gtest.h>

namespace simany::mem {
namespace {

TEST(Directory, FirstReadIsPlainMiss) {
  Directory dir(4);
  const auto out = dir.on_read(0, 100);
  EXPECT_EQ(out.action, CohAction::kNone);
  EXPECT_EQ(out.sharers, 0u);
}

TEST(Directory, SecondReaderSeesCleanShared) {
  Directory dir(4);
  (void)dir.on_read(0, 100);
  const auto out = dir.on_read(1, 100);
  EXPECT_EQ(out.action, CohAction::kCleanShared);
  EXPECT_EQ(out.sharers, 1u);
}

TEST(Directory, RereadByLocalSharerIsSilent) {
  Directory dir(4);
  (void)dir.on_read(0, 100);
  const auto out = dir.on_read(0, 100);
  EXPECT_EQ(out.action, CohAction::kNone);
}

TEST(Directory, WriteInvalidatesSharers) {
  Directory dir(4);
  (void)dir.on_read(0, 100);
  (void)dir.on_read(1, 100);
  (void)dir.on_read(3, 100);
  std::vector<net::CoreId> inv;
  const auto out = dir.on_write(2, 100, &inv);
  EXPECT_EQ(out.action, CohAction::kInvalidate);
  EXPECT_EQ(out.sharers, 3u);
  EXPECT_EQ(inv.size(), 3u);
}

TEST(Directory, ReadAfterRemoteWriteFetchesDirty) {
  Directory dir(4);
  (void)dir.on_write(2, 100);
  const auto out = dir.on_read(0, 100);
  EXPECT_EQ(out.action, CohAction::kRemoteDirty);
  EXPECT_EQ(out.peer, 2u);
}

TEST(Directory, WriteAfterRemoteWriteFetchesDirty) {
  Directory dir(4);
  (void)dir.on_write(2, 100);
  std::vector<net::CoreId> inv;
  const auto out = dir.on_write(1, 100, &inv);
  EXPECT_EQ(out.action, CohAction::kRemoteDirty);
  EXPECT_EQ(out.peer, 2u);
  ASSERT_EQ(inv.size(), 1u);
  EXPECT_EQ(inv[0], 2u);
}

TEST(Directory, WriterRewriteIsSilent) {
  Directory dir(4);
  (void)dir.on_write(2, 100);
  const auto out = dir.on_write(2, 100);
  EXPECT_EQ(out.action, CohAction::kNone);
}

TEST(Directory, ReadDowngradesWriter) {
  Directory dir(4);
  (void)dir.on_write(2, 100);
  (void)dir.on_read(0, 100);  // downgrade
  // Now both are clean sharers; a re-read by another core is clean.
  const auto out = dir.on_read(1, 100);
  EXPECT_EQ(out.action, CohAction::kCleanShared);
  EXPECT_EQ(out.sharers, 2u);
}

TEST(Directory, WriterReadingOwnDirtyLineIsSilent) {
  Directory dir(4);
  (void)dir.on_write(2, 100);
  const auto out = dir.on_read(2, 100);
  EXPECT_EQ(out.action, CohAction::kNone);
}

TEST(Directory, EvictClearsSharerAndOwner) {
  Directory dir(4);
  (void)dir.on_write(2, 100);
  dir.evict(2, 100);
  const auto out = dir.on_read(0, 100);
  EXPECT_EQ(out.action, CohAction::kNone);
}

TEST(Directory, EvictUnknownLineIsNoop) {
  Directory dir(4);
  dir.evict(0, 12345);  // must not throw
  EXPECT_EQ(dir.tracked_lines(), 0u);
}

TEST(Directory, DropCoreClearsAllItsState) {
  Directory dir(4);
  (void)dir.on_write(1, 10);
  (void)dir.on_read(1, 20);
  dir.drop_core(1);
  EXPECT_EQ(dir.on_read(0, 10).action, CohAction::kNone);
  EXPECT_EQ(dir.on_read(0, 20).action, CohAction::kNone);
}

TEST(Directory, LinesAreIndependent) {
  Directory dir(4);
  (void)dir.on_write(0, 1);
  const auto out = dir.on_write(1, 2);
  EXPECT_EQ(out.action, CohAction::kNone);
  EXPECT_EQ(dir.tracked_lines(), 2u);
}

TEST(Directory, ClearResets) {
  Directory dir(4);
  (void)dir.on_write(0, 1);
  dir.clear();
  EXPECT_EQ(dir.tracked_lines(), 0u);
  EXPECT_EQ(dir.on_read(1, 1).action, CohAction::kNone);
}

}  // namespace
}  // namespace simany::mem
