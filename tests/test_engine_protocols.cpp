// Run-time protocol behaviour: probe/reservation, join, locks, cells,
// migration.
#include <gtest/gtest.h>

#include "config/arch_config.h"
#include "core/engine.h"

namespace simany {
namespace {

TEST(Protocols, ProbeReservationFillsQueue) {
  // With queue capacity 2 and a 2-core line, at most 2 reservations can
  // be outstanding on the neighbor; further probes return false
  // without sending (occupancy proxy) or with a NACK.
  ArchConfig cfg = ArchConfig::shared_mesh(2);
  cfg.runtime.task_queue_capacity = 2;
  Engine sim(cfg);
  int granted = 0;
  (void)sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    // Burst 6 probes/spawns without giving the neighbor time to drain.
    for (int i = 0; i < 6; ++i) {
      if (ctx.probe()) {
        ++granted;
        ctx.spawn(g, [](TaskCtx& c) { c.compute(100000); });
      }
    }
    ctx.join(g);
  });
  // First fills the slot + the running task; not all 6 can be granted.
  EXPECT_GE(granted, 1);
  EXPECT_LT(granted, 6);
}

TEST(Protocols, JoinWithoutSpawnsReturnsImmediately) {
  Engine sim(ArchConfig::shared_mesh(4));
  const auto stats = sim.run([](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    ctx.join(g);
    ctx.compute(10);
  });
  EXPECT_EQ(stats.joins_suspended, 0u);
}

TEST(Protocols, JoinSuspendsAndResumes) {
  Engine sim(ArchConfig::shared_mesh(2));
  const auto stats = sim.run([](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    ASSERT_TRUE(ctx.probe());
    ctx.spawn(g, [](TaskCtx& c) { c.compute(5000); });
    ctx.join(g);  // must suspend: the child is still running
  });
  EXPECT_EQ(stats.joins_suspended, 1u);
  // Join context switch (15 cycles) charged on resume (paper SS V).
  EXPECT_GT(stats.completion_cycles(), 5000u);
}

TEST(Protocols, MultipleGroupsAreIndependent) {
  Engine sim(ArchConfig::shared_mesh(8));
  std::vector<int> done(2, 0);
  (void)sim.run([&](TaskCtx& ctx) {
    const GroupId g1 = ctx.make_group();
    const GroupId g2 = ctx.make_group();
    spawn_or_run(ctx, g1, [&](TaskCtx& c) {
      c.compute(100);
      done[0] = 1;
    });
    spawn_or_run(ctx, g2, [&](TaskCtx& c) {
      c.compute(200);
      done[1] = 1;
    });
    ctx.join(g1);
    ctx.join(g2);
  });
  EXPECT_EQ(done, (std::vector<int>{1, 1}));
}

TEST(Protocols, NestedSpawnsIntoSameGroup) {
  Engine sim(ArchConfig::shared_mesh(16));
  int leaves = 0;
  (void)sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    // Tree of tasks all joined by the root through one group.
    std::function<void(TaskCtx&, int)> node = [&](TaskCtx& c, int depth) {
      if (depth == 0) {
        ++leaves;
        c.compute(50);
        return;
      }
      for (int i = 0; i < 2; ++i) {
        spawn_or_run(c, g, [&node, depth](TaskCtx& cc) {
          node(cc, depth - 1);
        });
      }
    };
    node(ctx, 4);
    ctx.join(g);
  });
  EXPECT_EQ(leaves, 16);
}

TEST(Protocols, MigrationSpreadsFlatFanout) {
  // A flat loop of spawns from one core can only reach its direct
  // neighbors by itself; progressive migration must spread the work
  // beyond them (paper SS IV).
  Engine sim(ArchConfig::shared_mesh(16));
  const auto stats = sim.run([](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    for (int i = 0; i < 200; ++i) {
      spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(500); });
    }
    ctx.join(g);
  });
  EXPECT_GT(stats.tasks_migrated, 0u);
  std::size_t busy_cores = 0;
  for (Tick b : stats.core_busy_ticks) {
    if (b > 0) ++busy_cores;
  }
  // Core 0 has only 2 mesh neighbors; diffusion must beat 3 busy cores.
  EXPECT_GT(busy_cores, 3u);
}

TEST(Protocols, DistributedLockRoundTrip) {
  // Lock homed on core 0; a task on another core must acquire it via
  // LOCK_REQUEST/LOCK_GRANT messages.
  Engine sim(ArchConfig::distributed_mesh(4));
  int in_cs = 0;
  bool overlap = false;
  (void)sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    const LockId lk = ctx.make_lock();  // home = core 0
    for (int i = 0; i < 6; ++i) {
      spawn_or_run(ctx, g, [&, lk](TaskCtx& c) {
        c.lock(lk);
        if (++in_cs != 1) overlap = true;
        c.compute(300);
        --in_cs;
        c.unlock(lk);
      });
    }
    ctx.join(g);
  });
  EXPECT_FALSE(overlap);
}

TEST(Protocols, CellExclusionAcrossCores) {
  Engine sim(ArchConfig::distributed_mesh(4));
  int holders = 0;
  bool overlap = false;
  (void)sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    const CellId cell = ctx.make_cell_at(128, 2);
    for (int i = 0; i < 8; ++i) {
      spawn_or_run(ctx, g, [&, cell](TaskCtx& c) {
        c.cell_acquire(cell, AccessMode::kWrite);
        if (++holders != 1) overlap = true;
        c.compute(100);
        --holders;
        c.cell_release(cell);
      });
    }
    ctx.join(g);
  });
  EXPECT_FALSE(overlap);
}

TEST(Protocols, RemoteCellCostsMoreThanLocal) {
  // Acquiring a far-away cell must cost more virtual time than a local
  // one (DATA_REQUEST/DATA_RESPONSE round trip over the mesh).
  auto run = [](CoreId home) {
    Engine sim(ArchConfig::distributed_mesh(16));
    return sim
        .run([home](TaskCtx& ctx) {
          const CellId cell = ctx.make_cell_at(256, home);
          for (int i = 0; i < 20; ++i) {
            ctx.cell_acquire(cell, AccessMode::kRead);
            ctx.cell_release(cell);
          }
        })
        .completion_ticks;
  };
  EXPECT_GT(run(15), run(0));  // 0 = local to the root core
}

TEST(Protocols, BiggerCellTransfersCostMore) {
  auto run = [](std::uint32_t bytes) {
    Engine sim(ArchConfig::distributed_mesh(16));
    return sim
        .run([bytes](TaskCtx& ctx) {
          const CellId cell = ctx.make_cell_at(bytes, 15);
          for (int i = 0; i < 10; ++i) {
            ctx.cell_acquire(cell, AccessMode::kWrite);
            ctx.cell_release(cell);
          }
        })
        .completion_ticks;
  };
  EXPECT_GT(run(8192), run(8));
}

TEST(Protocols, CellWaitersServedInOrder) {
  Engine sim(ArchConfig::distributed_mesh(4));
  std::vector<int> order;
  (void)sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    const CellId cell = ctx.make_cell(64);
    ctx.cell_acquire(cell, AccessMode::kWrite);
    // Launch contenders while the root still holds the cell.
    for (int i = 0; i < 4; ++i) {
      spawn_or_run(ctx, g, [&, cell, i](TaskCtx& c) {
        c.cell_acquire(cell, AccessMode::kRead);
        order.push_back(i);
        c.cell_release(cell);
      });
    }
    ctx.compute(20000);
    ctx.cell_release(cell);
    ctx.join(g);
  });
  EXPECT_EQ(order.size(), 4u);
}

TEST(Protocols, SpawnArgBytesAffectTransferTime) {
  auto run = [](std::uint32_t arg_bytes) {
    Engine sim(ArchConfig::distributed_mesh(4));
    return sim
        .run([arg_bytes](TaskCtx& ctx) {
          const GroupId g = ctx.make_group();
          for (int i = 0; i < 10; ++i) {
            if (ctx.probe()) {
              ctx.spawn(g, [](TaskCtx& c) { c.compute(10); }, arg_bytes);
            }
          }
          ctx.join(g);
        })
        .completion_ticks;
  };
  EXPECT_GT(run(100000), run(8));
}

TEST(Protocols, MessageStatsCount) {
  Engine sim(ArchConfig::shared_mesh(2));
  const auto stats = sim.run([](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    ASSERT_TRUE(ctx.probe());
    ctx.spawn(g, [](TaskCtx& c) { c.compute(10); });
    ctx.join(g);
  });
  // PROBE + PROBE_ACK + TASK_SPAWN + JOINER_REQUEST at minimum.
  EXPECT_GE(stats.messages, 4u);
  EXPECT_EQ(stats.probes_sent, 1u);
  EXPECT_EQ(stats.tasks_spawned, 1u);
}

}  // namespace
}  // namespace simany
