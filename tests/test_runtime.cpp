// Native executor and data facades.
#include <gtest/gtest.h>

#include "config/arch_config.h"
#include "core/engine.h"
#include "runtime/data.h"
#include "runtime/native_sim.h"

namespace simany::runtime {
namespace {

TEST(NativeCtx, SpawnRunsInline) {
  NativeCtx ctx;
  int order = 0;
  int child_at = -1;
  const GroupId g = ctx.make_group();
  EXPECT_FALSE(ctx.probe());
  spawn_or_run(ctx, g, [&](TaskCtx&) { child_at = order++; });
  const int after = order++;
  ctx.join(g);
  EXPECT_EQ(child_at, 0);
  EXPECT_EQ(after, 1);
}

TEST(NativeCtx, AllOperationsAreNoopsButIdsFlow) {
  NativeCtx ctx;
  const CellId c1 = ctx.make_cell(64);
  const CellId c2 = ctx.make_cell_at(64, 0);
  EXPECT_NE(c1, c2);
  ctx.cell_acquire(c1, AccessMode::kWrite);
  ctx.cell_release(c1);
  const LockId l = ctx.make_lock();
  ctx.lock(l);
  ctx.unlock(l);
  ctx.compute(1000);
  ctx.mem_read(0, 8);
  EXPECT_EQ(ctx.now_cycles(), 0u);
  EXPECT_EQ(ctx.num_cores(), 1u);
}

TEST(NativeCtx, RngIsDeterministicPerSeed) {
  NativeCtx a(5), b(5);
  EXPECT_EQ(a.rng().next(), b.rng().next());
}

TEST(RunNative, MeasuresNonNegativeTime) {
  const double secs = run_native([](TaskCtx& ctx) {
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
    ctx.compute(10);
  });
  EXPECT_GE(secs, 0.0);
}

TEST(SynthAlloc, AlignedAndDisjoint) {
  const auto a = synth_alloc(100);
  const auto b = synth_alloc(10);
  const auto c = synth_alloc(1);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_GE(c, b + 10);
}

TEST(OwnedVector, ReadsAndWritesValues) {
  NativeCtx ctx;
  OwnedVector<int> v(4, 7);
  EXPECT_EQ(v.read(ctx, 2), 7);
  v.write(ctx, 2, 42);
  EXPECT_EQ(v.read(ctx, 2), 42);
  EXPECT_EQ(v.raw(2), 42);
}

TEST(OwnedVector, AddressesAreContiguousAndAligned) {
  OwnedVector<std::int64_t> v(10);
  EXPECT_EQ(v.addr_of(0) % 64, 0u);
  EXPECT_EQ(v.addr_of(3), v.addr_of(0) + 24);
}

TEST(OwnedVector, FromExistingVector) {
  NativeCtx ctx;
  OwnedVector<int> v(std::vector<int>{1, 2, 3});
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.read(ctx, 1), 2);
}

TEST(CellArray, RoundRobinCreatesOnePerElement) {
  Engine sim(ArchConfig::distributed_mesh(4));
  (void)sim.run([](TaskCtx& ctx) {
    CellArray cells(ctx, 10, 16, Placement::kRoundRobin);
    EXPECT_EQ(cells.size(), 10u);
    // All ids distinct.
    for (std::size_t i = 0; i < 10; ++i) {
      for (std::size_t j = i + 1; j < 10; ++j) {
        EXPECT_NE(cells.cell(i), cells.cell(j));
      }
    }
  });
}

TEST(CellArray, BlockAndLocalPlacementsWork) {
  Engine sim(ArchConfig::distributed_mesh(4));
  (void)sim.run([](TaskCtx& ctx) {
    CellArray block(ctx, 8, 8, Placement::kBlock);
    CellArray local(ctx, 8, 8, Placement::kLocal);
    // Local cells are free to acquire repeatedly (all on this core).
    for (std::size_t i = 0; i < 8; ++i) {
      ctx.cell_acquire(local.cell(i), AccessMode::kRead);
      ctx.cell_release(local.cell(i));
    }
    (void)block;
  });
}

TEST(MakeCellAt, RejectsBadHome) {
  Engine sim(ArchConfig::distributed_mesh(4));
  EXPECT_THROW(
      (void)sim.run([](TaskCtx& ctx) { (void)ctx.make_cell_at(8, 99); }),
      std::out_of_range);
}

}  // namespace
}  // namespace simany::runtime
